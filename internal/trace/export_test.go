package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace makes a small trace with nesting, concurrency, counters and
// a histogram — enough structure to exercise both exporters.
func buildTrace() *Tracer {
	tr := New()
	root := tr.StartSpan(nil, "rewire.map").WithStr("kernel", "fft")
	prop := tr.StartSpan(root, "propagate")
	p1 := tr.StartSpan(prop, "probe").WithInt("anchor", 3)
	p2 := tr.StartSpan(prop, "probe").WithInt("anchor", 7)
	p1.End()
	p2.End()
	prop.End()
	gen := tr.StartSpan(root, "placement_enum")
	gen.WithBool("ok", true).End()
	root.End()
	tr.Counter("route.expansions").Add(123)
	tr.Counter("placements.tried").Add(45)
	tr.Histogram("cluster.size").Observe(4)
	return tr
}

func TestWriteJSONL(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	counters := map[string]int64{}
	spanCount := 0
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			t.Fatalf("invalid JSON line: %s", line)
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		typ, _ := rec["type"].(string)
		if typ == "" {
			t.Fatalf("line without type: %s", line)
		}
		types = append(types, typ)
		switch typ {
		case "span":
			spanCount++
			if rec["name"] == "" || rec["id"] == nil {
				t.Errorf("span line missing fields: %s", line)
			}
			if rec["dur_us"].(float64) < 0 {
				t.Errorf("negative duration: %s", line)
			}
		case "counter":
			counters[rec["name"].(string)] = int64(rec["value"].(float64))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if types[0] != "meta" {
		t.Errorf("first line type %q, want meta", types[0])
	}
	if spanCount != 5 {
		t.Errorf("got %d span lines, want 5", spanCount)
	}
	if counters["route.expansions"] != 123 || counters["placements.tried"] != 45 {
		t.Errorf("counter lines = %v", counters)
	}
	if !strings.Contains(strings.Join(types, ","), "histogram") {
		t.Errorf("no histogram line in %v", types)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var xEvents, cEvents int
	tidOf := map[string][]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Dur <= 0 {
				t.Errorf("X event %q has dur %v", e.Name, e.Dur)
			}
			if e.Tid < 1 {
				t.Errorf("X event %q has tid %d", e.Name, e.Tid)
			}
			tidOf[e.Name] = append(tidOf[e.Name], e.Tid)
		case "C":
			cEvents++
			if e.Args["value"] == nil {
				t.Errorf("C event %q without value", e.Name)
			}
		}
	}
	if xEvents != 5 {
		t.Errorf("got %d X events, want 5", xEvents)
	}
	if cEvents != 2 {
		t.Errorf("got %d C events, want 2", cEvents)
	}
	// The two concurrent probes must land on distinct tracks.
	if tids := tidOf["probe"]; len(tids) == 2 && tids[0] == tids[1] {
		t.Errorf("concurrent probes share tid %d", tids[0])
	}
}

func TestExportDisabledTracerFails(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err == nil {
		t.Error("WriteJSONL on nil tracer did not error")
	}
	if err := tr.WriteChromeTrace(&buf); err == nil {
		t.Error("WriteChromeTrace on nil tracer did not error")
	}
}
