package mapping

import (
	"rewire/internal/arch"
	"rewire/internal/dfg"
)

// ClassOf maps an operation kind to the functional-unit class it needs.
func ClassOf(k dfg.OpKind) arch.OpClass {
	switch {
	case k.IsMem():
		return arch.ClassMem
	case k.IsMul():
		return arch.ClassMul
	case k.IsDiv():
		return arch.ClassDiv
	default:
		return arch.ClassALU
	}
}

// MII returns the theoretical minimum initiation interval of a kernel on
// an architecture: the maximum of the recurrence bound and the resource
// bounds — overall PE count, memory PEs, bank ports, and (on
// heterogeneous fabrics) each operation class against the PEs that
// implement it.
func MII(g *dfg.Graph, a *arch.CGRA) int {
	mii := g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts())
	if a.PECaps == nil {
		return mii
	}
	counts := make([]int, arch.NumOpClasses)
	for _, n := range g.Nodes {
		counts[ClassOf(n.Op)]++
	}
	for cl := arch.OpClass(0); cl < arch.NumOpClasses; cl++ {
		if counts[cl] == 0 {
			continue
		}
		supp := a.CountSupporting(cl)
		if supp == 0 {
			return 1 << 20 // unmappable: operations with no capable PE
		}
		if b := (counts[cl] + supp - 1) / supp; b > mii {
			mii = b
		}
	}
	return mii
}
