// Package sim is a cycle-accurate functional simulator of the CGRA: it
// executes a generated configuration (package config) cycle by cycle —
// ALUs with operand muxes, registered mesh links, register files, and
// prologue gating — against the same synthetic memory as the reference
// interpreter (package interp). A mapping is functionally correct iff
// the simulated store stream equals the interpreter's trace, which makes
// Verify the strongest end-to-end check in the repository: it covers the
// kernel IR lowering, the mapping, the routing, and the configuration
// generation in one comparison.
//
// Timing model (matching the MRRG): everything reads last cycle's
// latches and writes its own latch for next cycle. An operation placed
// at absolute time T executes at cycles T, T+II, T+2*II, ... (iteration
// = (cycle-T)/II); earlier firings of its modulo slot are suppressed by
// prologue gating, exactly like the predicated prologue of a modulo-
// scheduled loop, so loop-carried reads of iterations before the first
// see zeroed pipeline state — the interpreter's convention.
package sim

import (
	"fmt"

	"rewire/internal/arch"
	"rewire/internal/config"
	"rewire/internal/dfg"
	"rewire/internal/interp"
)

// Machine is the simulated CGRA state.
type Machine struct {
	cfg *config.Config

	// Latched state, read at cycle c, written for cycle c+1.
	inLatch [][]int64 // [pe][dir]: value arrived from neighbour
	aluOut  []int64   // [pe]: ALU output latch
	regs    [][]int64 // [pe][reg]

	// next-cycle versions.
	nInLatch [][]int64
	nAluOut  []int64
	nRegs    [][]int64

	// minTime is the earliest scheduled operation time: simulation starts
	// there so iteration numbers line up.
	minTime int

	trace *interp.Trace
}

// New builds a machine for a configuration, with all state zeroed.
func New(cfg *config.Config) *Machine {
	a := cfg.Arch
	mk := func() [][]int64 {
		out := make([][]int64, a.NumPEs())
		for i := range out {
			out[i] = make([]int64, int(arch.NumDirs))
		}
		return out
	}
	mkRegs := func() [][]int64 {
		out := make([][]int64, a.NumPEs())
		for i := range out {
			out[i] = make([]int64, a.Regs)
		}
		return out
	}
	m := &Machine{
		cfg:      cfg,
		inLatch:  mk(),
		nInLatch: mk(),
		aluOut:   make([]int64, a.NumPEs()),
		nAluOut:  make([]int64, a.NumPEs()),
		regs:     mkRegs(),
		nRegs:    mkRegs(),
		trace:    &interp.Trace{Stores: map[int][]int64{}},
	}
	m.minTime = 0
	for pe := range cfg.PEs {
		for t := range cfg.PEs[pe] {
			if n := cfg.PEs[pe][t]; n.Node >= 0 && n.NodeTime < m.minTime {
				m.minTime = n.NodeTime
			}
		}
	}
	return m
}

// read resolves a mux select against the current latches of pe.
func (m *Machine) read(pe int, s config.Src) int64 {
	switch s.Kind {
	case config.SrcALU:
		return m.aluOut[pe]
	case config.SrcIn:
		return m.inLatch[pe][s.Dir]
	case config.SrcReg:
		return m.regs[pe][s.Reg]
	default:
		return 0
	}
}

// step advances the machine by one cycle (absolute cycle c).
func (m *Machine) step(c int) {
	cfg := m.cfg
	a := cfg.Arch
	t := ((c % cfg.II) + cfg.II) % cfg.II

	for pe := 0; pe < a.NumPEs(); pe++ {
		pc := &cfg.PEs[pe][t]

		// ALU: scheduled operation (with prologue gating), route-through
		// forward, or hold zero.
		switch {
		case pc.Node >= 0 && c >= pc.NodeTime:
			iter := (c - pc.NodeTime) / cfg.II
			m.nAluOut[pe] = m.execute(pe, pc, iter)
		case pc.Forward.Kind != config.SrcNone:
			m.nAluOut[pe] = m.read(pe, pc.Forward)
		default:
			m.nAluOut[pe] = 0
		}

		// Registers: explicit write, keep, or dead (zero).
		for r := range pc.Regs {
			switch pc.Regs[r].Kind {
			case config.SrcKeep:
				m.nRegs[pe][r] = m.regs[pe][r]
			case config.SrcNone:
				m.nRegs[pe][r] = 0
			default:
				m.nRegs[pe][r] = m.read(pe, pc.Regs[r])
			}
		}

		// Output links: drive the neighbour's input latch for next cycle.
		for d := arch.Dir(0); d < arch.NumDirs; d++ {
			nbr := a.Neighbor(pe, d)
			if nbr < 0 {
				continue
			}
			// Which input latch of nbr receives from pe: the direction of
			// pe as seen from nbr.
			back := oppositeDir(d)
			if pc.Links[d].Kind == config.SrcNone {
				m.nInLatch[nbr][back] = 0
			} else {
				m.nInLatch[nbr][back] = m.read(pe, pc.Links[d])
			}
		}
	}

	m.inLatch, m.nInLatch = m.nInLatch, m.inLatch
	m.aluOut, m.nAluOut = m.nAluOut, m.aluOut
	m.regs, m.nRegs = m.nRegs, m.regs
}

func oppositeDir(d arch.Dir) arch.Dir {
	switch d {
	case arch.North:
		return arch.South
	case arch.South:
		return arch.North
	case arch.East:
		return arch.West
	case arch.West:
		return arch.East
	}
	panic("sim: bad direction")
}

// execute runs one scheduled operation at the given iteration.
func (m *Machine) execute(pe int, pc *config.PECycle, iter int) int64 {
	node := m.cfg.DFG.Nodes[pc.Node]
	switch node.Op {
	case dfg.OpLoad:
		if iter < 0 {
			return 0
		}
		return interp.LoadValue(node.Name, iter)
	case dfg.OpConst:
		return interp.ImmValue(node.Name, 0)
	default:
		ops := make([]int64, len(pc.Operands))
		for slot, src := range pc.Operands {
			if src.Kind == config.SrcNone {
				ops[slot] = interp.ImmValue(node.Name, slot)
			} else {
				ops[slot] = m.read(pe, src)
			}
		}
		out := interp.Eval(node.Op, ops)
		if node.Op == dfg.OpStore && iter >= 0 {
			m.trace.Stores[pc.Node] = append(m.trace.Stores[pc.Node], out)
		}
		return out
	}
}

// Run executes the configuration for the given number of loop iterations
// and returns the observed store trace.
func Run(cfg *config.Config, iterations int) (*interp.Trace, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("sim: negative iteration count")
	}
	m := New(cfg)
	// Simulate until the last store of the last iteration has fired: the
	// latest scheduled time plus iterations*II.
	maxTime := 0
	for pe := range cfg.PEs {
		for t := range cfg.PEs[pe] {
			if n := cfg.PEs[pe][t]; n.Node >= 0 && n.NodeTime > maxTime {
				maxTime = n.NodeTime
			}
		}
	}
	end := maxTime + iterations*cfg.II + 1
	for c := m.minTime; c < end; c++ {
		m.step(c)
	}
	// Clip every store stream to the requested iteration count (late
	// stores of earlier iterations may interleave with early stores of
	// later ones, but per node the stream is ordered by iteration).
	for node, vals := range m.trace.Stores {
		if len(vals) > iterations {
			m.trace.Stores[node] = vals[:iterations]
		}
	}
	return m.trace, nil
}

// Verify generates the configuration for a mapping, simulates it, and
// compares the store trace against the reference interpreter: the
// end-to-end functional check of the whole stack.
func Verify(cfg *config.Config, iterations int) error {
	want, err := interp.Run(cfg.DFG, iterations)
	if err != nil {
		return err
	}
	got, err := Run(cfg, iterations)
	if err != nil {
		return err
	}
	// Store nodes that never fired would be missing from got.
	for node := range want.Stores {
		if _, ok := got.Stores[node]; !ok {
			return fmt.Errorf("sim: store node %d (%s) never executed", node, cfg.DFG.Nodes[node].Name)
		}
	}
	if err := want.Equal(got); err != nil {
		return fmt.Errorf("sim: trace mismatch: %w", err)
	}
	return nil
}
