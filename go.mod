module rewire

go 1.22
