// Package portfolio races heterogeneous mapper backends — Rewire, PF*
// and SA, with room for a future exact mapper — against each other per
// II under one shared budget. No single backend is fastest on every
// kernel shape; the portfolio's wall-clock is the minimum over its
// backends for each kernel, behind the same deterministic commit
// contract the speculative II sweep established.
//
// The scheduler is a flattening of (II, backend) pairs onto the
// existing sweep engine. "Lowest feasible II wins, fixed backend
// priority breaks same-II ties" is exactly "first success in the total
// order (II ascending, priority descending)", so lane k stands for
// II = MII + k/B and backend = Order[k%B], and sweep.Run's in-order
// commit over lane indices implements the whole contract: a success at
// one II cancels all lanes at higher IIs immediately (they are higher
// lane indices), a same-II lower-priority lane is likewise above the
// winner and gets cancelled once the winner is known, and lanes at or
// below the winner are never cancelled — so the committed (II,
// backend, mapping) and the merged effort stats are bit-identical at
// every parallelism width, including width 1 (the priority-ordered
// serial schedule). Per-lane seeds come from sweep.SeedForBackend, so
// every lane is a pure function of (run seed, backend, II). See
// docs/CONCURRENCY.md, "Layer 4".
package portfolio

import (
	"context"
	"strings"
	"sync"
	"time"

	"rewire/internal/arch"
	"rewire/internal/core"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/obs"
	"rewire/internal/pathfinder"
	"rewire/internal/sa"
	"rewire/internal/stats"
	"rewire/internal/sweep"
	"rewire/internal/trace"
)

// LaneOptions is the per-lane slice of the portfolio's run options a
// backend attempt receives: the shared budget plus the run's
// observability handles. Lane carries the backend's own canonical name
// so its diag attempts and progress events stay distinguishable from
// same-II rivals.
type LaneOptions struct {
	TimePerII time.Duration
	Tracer    *trace.Tracer
	Logger    *obs.Logger
	Diag      *diag.Collector
	Progress  *diag.Bus
	Lane      string
}

// Backend is one registered mapper the portfolio can race.
type Backend struct {
	// Name is the canonical lane label ("rewire", "pathfinder", "sa").
	Name string
	// StatName is the display name the backend's own stats use
	// ("Rewire", "PF*", "SA").
	StatName string
	// Attempt runs exactly one II attempt with an externally derived
	// seed: no internal II sweep, no run lifecycle (the portfolio owns
	// diag Begin/Commit and run_start/run_end). It must be a pure
	// function of (g, a, ii, seed) — all randomness from seed, all
	// mutable state owned — so lanes stay independent.
	Attempt func(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, lane LaneOptions) (*mapping.Mapping, stats.Result, bool)
}

// The registry. Order is the fixed priority list, highest first: a tie
// at the same II commits the earliest backend in Order. Registration
// order is priority order; the three built-ins occupy the top slots
// and future backends (an exact/SAT mapper, say) append below them via
// Register.
var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
	order    []string
)

func init() {
	Register(Backend{Name: "rewire", StatName: "Rewire", Attempt: rewireAttempt})
	Register(Backend{Name: "pathfinder", StatName: "PF*", Attempt: pathfinderAttempt})
	Register(Backend{Name: "sa", StatName: "SA", Attempt: saAttempt})
}

// Register adds a backend at the lowest priority (the end of Order).
// Registering an existing name replaces its implementation in place,
// keeping its priority. Backend names must already be canonical:
// lower-case, no aliases.
func Register(b Backend) {
	if b.Name == "" || b.Attempt == nil {
		panic("portfolio: Register needs a name and an attempt function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[b.Name]; !exists {
		order = append(order, b.Name)
	}
	registry[b.Name] = b
}

// Order returns the registered backend names in priority order,
// highest first.
func Order() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}

// Canonical resolves a backend subset — aliases folded, duplicates
// dropped, re-sorted into registry priority order — and returns it as
// the canonical comma-joined string used by fingerprints and flags.
// nil/empty selects every registered backend. The subset's order never
// carries meaning: priority is fixed by the registry, so "sa,rewire"
// and "rewire,sa" are the same portfolio (and the same cache key).
func Canonical(names []string) (string, error) {
	bs, err := resolve(names)
	if err != nil {
		return "", err
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.Name
	}
	return strings.Join(parts, ","), nil
}

// ParseBackends splits a comma-separated backend list into names,
// dropping empty elements; "" yields nil (meaning all backends).
func ParseBackends(csv string) []string {
	if strings.TrimSpace(csv) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// resolve canonicalises a backend subset into Backend values in
// priority order.
func resolve(names []string) ([]Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	want := map[string]bool{}
	if len(names) == 0 {
		for _, n := range order {
			want[n] = true
		}
	}
	for _, n := range names {
		c, ok := canonicalNameLocked(n)
		if !ok {
			return nil, &UnknownBackendError{Name: n, Known: append([]string(nil), order...)}
		}
		want[c] = true
	}
	var bs []Backend
	for _, n := range order {
		if want[n] {
			bs = append(bs, registry[n])
		}
	}
	return bs, nil
}

// canonicalNameLocked is canonicalName with regMu already held.
func canonicalNameLocked(name string) (string, bool) {
	switch s := strings.ToLower(strings.TrimSpace(name)); s {
	case "rewire":
		return "rewire", true
	case "pf", "pf*", "pathfinder":
		return "pathfinder", true
	case "sa":
		return "sa", true
	default:
		_, exists := registry[s]
		return s, exists
	}
}

// UnknownBackendError reports a backend name no registered backend
// answers to.
type UnknownBackendError struct {
	Name  string
	Known []string
}

func (e *UnknownBackendError) Error() string {
	return "portfolio: unknown backend \"" + e.Name + "\" (registered: " + strings.Join(e.Known, ", ") + ")"
}

// Options tunes one portfolio run. Zero values select the defaults.
type Options struct {
	// Seed drives all randomness: each lane's stream is
	// sweep.SeedForBackend(Seed, backend, II).
	Seed int64
	// MaxII caps the explored initiation intervals (default 32).
	MaxII int
	// TimePerII bounds the wall-clock each lane spends on its II
	// (default 10s), the same budget a single-backend run would get.
	TimePerII time.Duration
	// Backends selects the racing subset by name or alias; nil/empty
	// races every registered backend. Priority is always registry
	// order, never the order given here.
	Backends []string
	// Parallelism is the lane window: how many (backend, II) lanes may
	// run concurrently. 0 defaults to the backend count, so every
	// backend races at the lowest unresolved II; 1 is the serial
	// schedule (priority-ordered backends per II, lowest II first),
	// which commits the identical result. This multiplies on top of
	// each backend's own intra-attempt parallelism — see the
	// oversubscription math in docs/CONCURRENCY.md, "Layer 4".
	Parallelism int

	// Tracer/Logger/Diag/Progress are shared by the portfolio and every
	// lane; all nil-safe, all free when off.
	Tracer   *trace.Tracer
	Logger   *obs.Logger
	Diag     *diag.Collector
	Progress *diag.Bus
}

func (o Options) withDefaults() Options {
	if o.MaxII == 0 {
		o.MaxII = 32
	}
	if o.TimePerII == 0 {
		o.TimePerII = 10 * time.Second
	}
	return o
}

// Map races the portfolio to completion.
func Map(g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	return MapCtx(context.Background(), g, a, opt)
}

// laneOut is one lane's outcome.
type laneOut struct {
	m  *mapping.Mapping
	st stats.Result
}

// laneTally is one lane's wall-clock accounting, written exactly once
// by the lane's goroutine. Reads happen only after sweep.Run returns,
// which drains every launched lane first, so the slice needs no lock.
type laneTally struct {
	launched  bool
	cancelled bool
	elapsedMS int64
}

// MapCtx is Map with cancellation. The committed result is always the
// one from the highest-priority backend that succeeds at the lowest
// feasible II, bit-identical at every Parallelism including the serial
// schedule; see the package comment for the argument. An invalid
// Backends subset panics — callers validate user input at their
// boundary with Canonical.
func MapCtx(ctx context.Context, g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	opt = opt.withDefaults()
	backends, err := resolve(opt.Backends)
	if err != nil {
		panic(err.Error())
	}
	nb := len(backends)

	res := stats.Result{Mapper: "Portfolio", Kernel: g.Name, Arch: a.Name}
	res.MII = mapping.MII(g, a)
	start := time.Now()

	tr := opt.Tracer
	root := tr.StartSpan(nil, "portfolio.map").
		WithStr("kernel", g.Name).WithStr("arch", a.Name).WithInt("mii", int64(res.MII)).
		WithInt("backends", int64(nb))
	defer root.End()
	lg := opt.Logger.With("mapper", "portfolio", "kernel", g.Name, "arch", a.Name)
	lg.Debug("map start", "mii", res.MII, "max_ii", opt.MaxII, "backends", nb, "lane_window", opt.Parallelism)
	opt.Diag.Begin(g, a, "Portfolio", res.MII)
	opt.Progress.Publish(diag.Event{Type: "run_start", Mapper: "portfolio",
		Kernel: g.Name, Arch: a.Name, MII: res.MII})

	// Lane k is backend Order[k%nb] at II = MII + k/nb: II ascending,
	// priority descending within an II — the total order the commit
	// contract requires.
	mii := res.MII
	nLanes := (opt.MaxII - mii + 1) * nb
	laneOf := func(k int) (ii int, lane string) {
		return mii + k/nb, backends[k%nb].Name
	}
	tallies := make([]laneTally, nLanes)

	attempt := func(actx context.Context, k int) (laneOut, bool) {
		ii := mii + k/nb
		b := backends[k%nb]
		seed := sweep.SeedForBackend(opt.Seed, b.Name, ii)
		t0 := time.Now()
		m, st, ok := b.Attempt(actx, g, a, ii, seed, LaneOptions{
			TimePerII: opt.TimePerII, Tracer: tr, Logger: opt.Logger,
			Diag: opt.Diag, Progress: opt.Progress, Lane: b.Name,
		})
		tallies[k] = laneTally{
			launched: true,
			// Torn down by a rival lane's win, not by the caller.
			cancelled: actx.Err() != nil && ctx.Err() == nil,
			elapsedMS: time.Since(t0).Milliseconds(),
		}
		return laneOut{m: m, st: st}, ok
	}

	// The default window is one lane per backend even when that exceeds
	// GOMAXPROCS: a failing lane waits out its TimePerII deadline with
	// idle CPU to spare, so racing overlaps those waits where the
	// serial schedule would pay them back to back. (Measured: on one
	// core the width-3 race runs the Fig. 6 set ~25% faster than
	// width 1.)
	w := opt.Parallelism
	if w == 0 {
		w = nb
	}
	win, winLane, below, ok := sweep.Run(ctx, 0, nLanes-1, attempt, sweep.Options{
		Parallelism: w, Tracer: tr, Parent: root, Logger: lg,
		Progress: opt.Progress, Lane: laneOf,
	})

	// Merge effort counters in lane order: `below` holds every lane
	// under the winner ascending, and those lanes are never cancelled
	// (sweep's contract), so the merged totals are deterministic at any
	// width. RemapIterations arrives pre-folded per lane (PF* remaps,
	// SA moves), so a plain sum keeps it meaningful across backends.
	for _, o := range below {
		mergeEffort(&res, &o.st)
	}
	winnerBackend := ""
	if ok {
		mergeEffort(&res, &win.st)
		res.Success = true
		res.II, winnerBackend = laneOf(winLane)
	}
	res.Duration = time.Since(start)
	res.Portfolio = buildPortfolioStats(backends, tallies, winLane, winnerBackend, ok)

	if ok {
		opt.Diag.SetWinner(winnerBackend)
		opt.Diag.Commit(true, res.II)
		opt.Progress.Publish(diag.Event{Type: "run_end", II: res.II, Outcome: "ok", Lane: winnerBackend})
		lg.Info("mapped", "ii", res.II, "mii", res.MII, "winner", winnerBackend,
			"duration_ms", res.Duration.Milliseconds())
		root.WithStr("winner", winnerBackend)
		return win.m, res
	}
	opt.Diag.Commit(false, 0)
	opt.Progress.Publish(diag.Event{Type: "run_end", Outcome: "failed"})
	lg.Warn("mapping failed", "mii", res.MII, "max_ii", opt.MaxII,
		"duration_ms", res.Duration.Milliseconds())
	return nil, res
}

// mergeEffort folds one lane's effort counters into the run total.
func mergeEffort(dst *stats.Result, src *stats.Result) {
	dst.RemapIterations += src.RemapIterations
	dst.ClusterAmendments += src.ClusterAmendments
	dst.PlacementsTried += src.PlacementsTried
	dst.VerifyAttempts += src.VerifyAttempts
	dst.VerifySuccesses += src.VerifySuccesses
	dst.RouterExpansions += src.RouterExpansions
}

// buildPortfolioStats aggregates per-lane tallies into per-backend
// accounting. WinnerBackend and Won are deterministic; Launched,
// Cancelled and WastedMS are wall-clock accounting that varies with
// parallelism width, like Duration.
func buildPortfolioStats(backends []Backend, tallies []laneTally, winLane int, winner string, ok bool) *stats.PortfolioStats {
	ps := &stats.PortfolioStats{WinnerBackend: winner}
	nb := len(backends)
	per := make([]stats.BackendLanes, nb)
	for i, b := range backends {
		per[i].Backend = b.Name
		if ok && b.Name == winner {
			per[i].Won = 1
		}
	}
	for k, t := range tallies {
		if !t.launched {
			continue
		}
		bl := &per[k%nb]
		bl.Launched++
		if t.cancelled {
			bl.Cancelled++
		}
		// Wasted = wall-clock whose outcome was discarded: lanes above
		// the winner when one committed, cancelled lanes otherwise.
		if (ok && k > winLane) || (!ok && t.cancelled) {
			bl.WastedMS += t.elapsedMS
		}
	}
	ps.PerBackend = per
	return ps
}

// rewireAttempt adapts core.AttemptII to the backend contract.
func rewireAttempt(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, lane LaneOptions) (*mapping.Mapping, stats.Result, bool) {
	return core.AttemptII(ctx, g, a, ii, seed, core.Options{
		TimePerII: lane.TimePerII, Tracer: lane.Tracer, Logger: lane.Logger,
		Diag: lane.Diag, Progress: lane.Progress, Lane: lane.Lane,
	})
}

// pathfinderAttempt adapts pathfinder.AttemptII to the backend contract.
func pathfinderAttempt(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, lane LaneOptions) (*mapping.Mapping, stats.Result, bool) {
	return pathfinder.AttemptII(ctx, g, a, ii, seed, pathfinder.Options{
		TimePerII: lane.TimePerII, Tracer: lane.Tracer, Logger: lane.Logger,
		Diag: lane.Diag, Progress: lane.Progress, Lane: lane.Lane,
	})
}

// saAttempt adapts sa.AttemptII to the backend contract.
func saAttempt(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, lane LaneOptions) (*mapping.Mapping, stats.Result, bool) {
	return sa.AttemptII(ctx, g, a, ii, seed, sa.Options{
		TimePerII: lane.TimePerII, Tracer: lane.Tracer, Logger: lane.Logger,
		Diag: lane.Diag, Progress: lane.Progress, Lane: lane.Lane,
	})
}
