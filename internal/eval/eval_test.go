package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rewire/internal/kernels"
	"rewire/internal/stats"
)

func TestCombosMatchPaperCount(t *testing.T) {
	cs := Combos()
	if len(cs) != 47 {
		t.Fatalf("combos = %d, want the paper's 47", len(cs))
	}
	// Every referenced kernel must exist.
	for _, cb := range cs {
		if _, err := kernels.Get(cb.Kernel); err != nil {
			t.Errorf("combo references unknown kernel: %v", err)
		}
	}
	// All four architectures present.
	archs := map[string]int{}
	for _, cb := range cs {
		archs[cb.Arch.Name]++
	}
	for _, name := range []string{"4x4r4", "8x8r4", "4x4r2", "4x4r1"} {
		if archs[name] == 0 {
			t.Errorf("no combos on %s", name)
		}
	}
	// Table I's list is the 4x4r1 set.
	if archs["4x4r1"] != 8 {
		t.Errorf("4x4r1 combos = %d, want 8 (Table I set)", archs["4x4r1"])
	}
}

func TestMIIOfSaneBounds(t *testing.T) {
	for _, cb := range Combos() {
		mii := MIIOf(cb)
		if mii < 1 || mii > 20 {
			t.Errorf("%s on %s: MII = %d out of sane range", cb.Kernel, cb.Arch.Name, mii)
		}
	}
}

func TestRunSingleCombo(t *testing.T) {
	cb := Combo{Kernel: "mvt", Arch: Combos()[0].Arch}
	m, res := Run("PF*", cb, Config{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil || !res.Success {
		t.Fatalf("PF* failed on an easy combo: %v", res)
	}
	if res.Mapper != "PF*" || res.Kernel != "mvt" {
		t.Fatalf("result mislabelled: %v", res)
	}
}

func TestRunUnknownMapperPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run("nope", Combos()[0], Config{})
}

// fakeResults builds a Results with synthetic data so the report
// formatting is testable without hours of mapping.
func fakeResults() *Results {
	r := &Results{Combos: Combos(), ByRun: map[string]stats.Result{}}
	for i, cb := range r.Combos {
		mii := 2
		for mi, m := range Mappers {
			res := stats.Result{
				Mapper: m, Kernel: cb.Kernel, Arch: cb.Arch.Name,
				Success: true, MII: mii, II: mii + mi, // Rewire best, SA worst
				Duration:        time.Duration(1+mi) * 10 * time.Millisecond,
				RemapIterations: 100 * mi,
				VerifyAttempts:  20, VerifySuccesses: 19,
			}
			if m == "SA" && i%5 == 0 {
				res.Success = false // sprinkle SA failures
			}
			r.ByRun[runKey(m, cb)] = res
		}
	}
	return r
}

func TestReportSections(t *testing.T) {
	r := fakeResults()
	var buf bytes.Buffer
	r.Report(&buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 5", "Figure 6", "Table I", "Summary",
		"4x4r4", "8x8r4", "4x4r2", "4x4r1",
		"Rewire vs PF*", "Rewire vs SA",
		"verification success: 95.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// SA failures rendered as '-' in Figure 5.
	if !strings.Contains(out, "-") {
		t.Error("failed runs must render as '-'")
	}
}

func TestGeomeanSpeedup(t *testing.T) {
	r := fakeResults()
	// Rewire II = MII, PF* = MII+1 everywhere: speedup = (mii+1)/mii = 1.5
	// at mii=2.
	got := r.geomeanSpeedup("PF*")
	if got < 1.49 || got > 1.51 {
		t.Fatalf("speedup = %v, want 1.5", got)
	}
	// Compile time: PF* 20ms vs Rewire 10ms -> 2.0x.
	ct := r.geomeanTimeReduction("PF*")
	if ct < 1.99 || ct > 2.01 {
		t.Fatalf("time reduction = %v, want 2.0", ct)
	}
}

func TestSummaryCountsOptimal(t *testing.T) {
	r := fakeResults()
	var buf bytes.Buffer
	r.Summary(&buf)
	if !strings.Contains(buf.String(), "optimal: 47, optimal-or-near-optimal: 47") {
		t.Fatalf("summary counts wrong:\n%s", buf.String())
	}
}
