package kernels

import (
	"strings"
	"testing"

	"rewire/internal/dfg"
)

func TestAllKernelsLoadAndValidate(t *testing.T) {
	names := Names()
	if len(names) < 16 {
		t.Fatalf("only %d kernels registered", len(names))
	}
	for _, n := range names {
		g, err := Load(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid DFG: %v", n, err)
		}
		if g.Name != n {
			t.Errorf("%s: DFG name %q", n, g.Name)
		}
	}
}

func TestKernelSizesMatchPaperRange(t *testing.T) {
	// The paper reports 26-51 nodes with an average of 38; our transcribed
	// bodies span 22-41 with a similar average. Enforce the envelope so
	// kernel edits cannot silently drift out of the evaluated regime.
	total := 0
	for _, n := range Names() {
		g := MustLoad(n)
		nodes := g.NumNodes()
		if nodes < 20 || nodes > 51 {
			t.Errorf("%s: %d nodes outside [20,51]", n, nodes)
		}
		total += nodes
	}
	avg := float64(total) / float64(len(Names()))
	if avg < 25 || avg > 42 {
		t.Errorf("average kernel size %.1f outside [25,42]", avg)
	}
}

func TestKernelMemoryPressureBounded(t *testing.T) {
	// Memory ops need memory-capable PEs; if a kernel is almost all
	// loads/stores it degenerates into a bank-bandwidth benchmark.
	for _, n := range Names() {
		g := MustLoad(n)
		frac := float64(g.MemOps()) / float64(g.NumNodes())
		if frac > 0.6 {
			t.Errorf("%s: %.0f%% memory ops", n, 100*frac)
		}
		if g.MemOps() == 0 {
			t.Errorf("%s: no memory ops at all", n)
		}
	}
}

func TestKnownRecurrences(t *testing.T) {
	cases := map[string]int{
		"crc":        8, // two 8-deep bit-serial CRC recurrences
		"gramsch":    3, // three chained accumulator updates
		"gesummv":    1, // independent single-node accumulators
		"gesummv(u)": 2, // unrolling chains the accumulators in pairs
		"stencil2d":  1,
	}
	for name, want := range cases {
		if got := MustLoad(name).RecMII(); got != want {
			t.Errorf("%s: RecMII = %d, want %d", name, got, want)
		}
	}
}

func TestUnrolledVariantsDoubleBaseBody(t *testing.T) {
	base := MustLoad("gesummv")
	unrolled := MustLoad("gesummv(u)")
	if unrolled.NumNodes() < 2*base.NumNodes()-4 {
		t.Errorf("gesummv(u) nodes = %d, base = %d; expected roughly double",
			unrolled.NumNodes(), base.NumNodes())
	}
	if unrolled.MemOps() <= base.MemOps() {
		t.Error("unrolled variant should have more memory ops")
	}
}

func TestGetUnknownKernel(t *testing.T) {
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("err = %v", err)
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("Load must propagate registry errors")
	}
}

func TestSuitesCovered(t *testing.T) {
	suites := map[string]int{}
	for _, n := range Names() {
		k, _ := Get(n)
		suites[k.Suite]++
	}
	for _, s := range []string{"polybench", "machsuite", "mibench"} {
		if suites[s] == 0 {
			t.Errorf("no kernels from %s", s)
		}
	}
}

func TestEveryKernelHasStore(t *testing.T) {
	for _, n := range Names() {
		g := MustLoad(n)
		stores := 0
		for _, v := range g.Nodes {
			if v.Op == dfg.OpStore {
				stores++
			}
		}
		if stores == 0 {
			t.Errorf("%s: kernel produces no output stores", n)
		}
	}
}
