// Package route implements routing over the MRRG: finding a minimum-cost
// chain of routing resources of an exact latency between a producer FU
// and a consumer FU. Latency is exact because in a modulo schedule the
// consumer's execution cycle is fixed by its placement; the value must
// arrive on that cycle, not merely by it.
//
// The search runs over layered states (resource, elapsed): every MRRG
// adjacency step advances elapsed by one cycle, so a route of latency L
// visits exactly L-1 intermediate resources at elapsed 1..L-1. The cost
// of a resource may depend on the phase (= elapsed) at which it is
// crossed, which lets PathFinder-style congestion negotiation and
// strict free-only routing share one engine.
package route

import (
	"container/heap"

	"rewire/internal/mrrg"
)

// CostFn prices using resource n at the given phase for the net being
// routed. ok=false forbids the resource entirely. Costs must be
// non-negative.
type CostFn func(n mrrg.Node, phase int) (cost float64, ok bool)

// StrictCost returns a CostFn admitting only resources that are free or
// already held by (net, phase), at unit cost — the final, conflict-free
// routing regime used by Rewire's verification and by committed routes.
func StrictCost(st *mrrg.State, net mrrg.Net) CostFn {
	return func(n mrrg.Node, phase int) (float64, bool) {
		if !st.Usable(n, net, phase) {
			return 0, false
		}
		if occ, _ := st.Occupant(n); occ == net {
			return 0.05, true // sharing an own-net resource is nearly free
		}
		return 1, true
	}
}

// Router finds exact-latency paths on one MRRG. It reuses internal
// buffers across calls, so a Router is not safe for concurrent use.
type Router struct {
	g      *mrrg.Graph
	maxLat int

	dist  []float64
	from  []int32
	stamp []int32
	epoch int32
	pq    stateHeap

	// Expansions counts states popped from the queue across all calls;
	// the evaluation uses it as a hardware-independent work measure.
	Expansions int64
}

// NewRouter builds a router for g accepting latencies up to maxLat. A
// good bound is a few IIs plus the mesh diameter; latencies beyond that
// produce unprofitably long routes anyway.
func NewRouter(g *mrrg.Graph, maxLat int) *Router {
	if maxLat < 1 {
		maxLat = 1
	}
	n := g.NumNodes() * (maxLat + 1)
	return &Router{
		g:      g,
		maxLat: maxLat,
		dist:   make([]float64, n),
		from:   make([]int32, n),
		stamp:  make([]int32, n),
	}
}

// MaxLat returns the largest latency this router accepts.
func (r *Router) MaxLat() int { return r.maxLat }

// DefaultMaxLat is a reasonable routing-latency bound for an
// architecture at a given II: wandering longer than two full IIs plus
// the mesh diameter is never profitable in practice.
func DefaultMaxLat(rows, cols, ii int) int {
	d := rows + cols + 2*ii + 2
	if d < 8 {
		d = 8
	}
	return d
}

type state struct {
	node    mrrg.Node
	elapsed int32
	cost    float64
}

type stateHeap []state

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FindPath returns the minimum-cost chain of lat-1 routing resources
// carrying a value from the FU node src (where the producer executes) to
// the FU node dst (where the consumer executes, lat cycles later). The
// chain excludes both FUs. ok is false if no path of that exact latency
// exists under the cost function.
//
// The returned path never repeats a resource (a repeat would collide
// with a neighbouring iteration); when the cheapest path would repeat,
// up to three increasingly constrained retries look for a simple
// alternative.
func (r *Router) FindPath(src, dst mrrg.Node, lat int, cost CostFn) (path []mrrg.Node, ok bool) {
	if lat < 1 || lat > r.maxLat {
		return nil, false
	}
	banned := map[mrrg.Node]bool{}
	for attempt := 0; attempt < 3; attempt++ {
		p, found := r.findOnce(src, dst, lat, cost, banned)
		if !found {
			return nil, false
		}
		if dup := firstDuplicate(p); dup != mrrg.Invalid {
			banned[dup] = true
			continue
		}
		return p, true
	}
	return nil, false
}

func (r *Router) findOnce(src, dst mrrg.Node, lat int, cost CostFn, banned map[mrrg.Node]bool) ([]mrrg.Node, bool) {
	r.epoch++
	idx := func(n mrrg.Node, e int) int { return int(n)*(r.maxLat+1) + e }
	arch := r.g.Arch
	dstPE := r.g.PE(dst)
	// tooFar prunes states that cannot possibly reach the destination FU
	// in the remaining cycles: a value held by resource n needs at least
	// one cycle to enter a FU at FeedsPE(n), plus one registered mesh hop
	// per Manhattan step from there (admissible, so no path is lost).
	tooFar := func(n mrrg.Node, e int) bool {
		fp := r.g.FeedsPE(n)
		need := 1
		if fp != dstPE {
			need = arch.Manhattan(fp, dstPE) + 1
		}
		return e+need > lat
	}
	r.pq = r.pq[:0]
	heap.Push(&r.pq, state{node: src, elapsed: 0, cost: 0})
	si := idx(src, 0)
	r.stamp[si] = r.epoch
	r.dist[si] = 0
	r.from[si] = -1
	if tooFar(src, 0) {
		return nil, false
	}

	for len(r.pq) > 0 {
		cur := heap.Pop(&r.pq).(state)
		r.Expansions++
		ci := idx(cur.node, int(cur.elapsed))
		if cur.cost > r.dist[ci] {
			continue // stale entry
		}
		if cur.node == dst && int(cur.elapsed) == lat {
			return r.reconstruct(src, dst, lat, idx), true
		}
		if int(cur.elapsed) >= lat {
			continue
		}
		nextE := int(cur.elapsed) + 1
		for _, nxt := range r.g.Succs(cur.node) {
			// The final hop must be exactly the destination FU; routing
			// through other FUs mid-path is allowed (move operations).
			if nextE == lat {
				if nxt != dst {
					continue
				}
				// Entering the consumer FU costs nothing extra: the
				// consumer's own placement already reserved it.
				r.relax(idx, nxt, nextE, cur, 0)
				continue
			}
			if nxt == dst && r.g.Kind(nxt) == mrrg.KindFU {
				// Passing through the consumer FU before the arrival
				// cycle would collide with the consumer's reservation.
				continue
			}
			if tooFar(nxt, nextE) || banned[nxt] {
				continue
			}
			c, usable := cost(nxt, nextE)
			if !usable {
				continue
			}
			r.relax(idx, nxt, nextE, cur, c)
		}
	}
	return nil, false
}

func (r *Router) relax(idx func(mrrg.Node, int) int, nxt mrrg.Node, e int, cur state, c float64) {
	ni := idx(nxt, e)
	nc := cur.cost + c
	if r.stamp[ni] == r.epoch && r.dist[ni] <= nc {
		return
	}
	r.stamp[ni] = r.epoch
	r.dist[ni] = nc
	r.from[ni] = int32(idx(cur.node, int(cur.elapsed)))
	heap.Push(&r.pq, state{node: nxt, elapsed: int32(e), cost: nc})
}

func (r *Router) reconstruct(src, dst mrrg.Node, lat int, idx func(mrrg.Node, int) int) []mrrg.Node {
	path := make([]mrrg.Node, lat-1)
	cur := idx(dst, lat)
	for e := lat - 1; e >= 1; e-- {
		cur = int(r.from[cur])
		path[e-1] = mrrg.Node(cur / (r.maxLat + 1))
	}
	return path
}

func firstDuplicate(path []mrrg.Node) mrrg.Node {
	if len(path) < 2 {
		return mrrg.Invalid
	}
	seen := make(map[mrrg.Node]bool, len(path))
	for _, n := range path {
		if seen[n] {
			return n
		}
		seen[n] = true
	}
	return mrrg.Invalid
}
