package kernelir

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"rewire/internal/dfg"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func lower(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	g, err := Lower(parse(t, src))
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return g
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("t = a[i] + 2 # comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	want := []tokKind{tokIdent, tokAssign, tokIdent, tokLBracket, tokIdent, tokRBracket, tokOp, tokNumber, tokNewline, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexShiftOperators(t *testing.T) {
	toks, err := lex("t = x << 2\nu = x >> 1\n")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.kind == tokOp {
			ops = append(ops, tk.text)
		}
	}
	if len(ops) != 2 || ops[0] != "<<" || ops[1] != ">>" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestLexRejectsBadChar(t *testing.T) {
	if _, err := lex("t = a ? b\n"); err == nil {
		t.Fatal("expected error on '?'")
	}
	if _, err := lex("t = a < b\n"); err == nil {
		t.Fatal("expected error on single '<'")
	}
}

func TestParseDirectives(t *testing.T) {
	p := parse(t, `
kernel foo
param alpha, beta
induction k
t = a[k] * alpha
`)
	if p.Name != "foo" || p.Induction != "k" {
		t.Fatalf("name/induction = %q/%q", p.Name, p.Induction)
	}
	if !p.Params["alpha"] || !p.Params["beta"] {
		t.Fatalf("params = %v", p.Params)
	}
	if len(p.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
}

func TestParsePrecedence(t *testing.T) {
	p := parse(t, "t = a[i] + b[i] * c[i]\n")
	bin, ok := p.Stmts[0].RHS.(Bin)
	if !ok || bin.Op != "+" {
		t.Fatalf("top op = %v", p.Stmts[0].RHS)
	}
	if inner, ok := bin.R.(Bin); !ok || inner.Op != "*" {
		t.Fatalf("mul must bind tighter: %v", p.Stmts[0].RHS)
	}
}

func TestParseParens(t *testing.T) {
	p := parse(t, "t = (a[i] + b[i]) * c[i]\n")
	bin := p.Stmts[0].RHS.(Bin)
	if bin.Op != "*" {
		t.Fatalf("top op = %q, want *", bin.Op)
	}
}

func TestParseIndexForms(t *testing.T) {
	p := parse(t, "t = a[i+1] + a[i-1] + a[2] + b[j][i]\n")
	reads := collectReads(p.Stmts[0].RHS)
	keys := make([]string, len(reads))
	for i, r := range reads {
		keys[i] = refKey(r.Array, r.Index)
	}
	want := []string{"a[i+1]", "a[i-1]", "a[2]", "b[j][i]"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func collectReads(e Expr) []ArrayRead {
	switch x := e.(type) {
	case ArrayRead:
		return []ArrayRead{x}
	case Bin:
		return append(collectReads(x.L), collectReads(x.R)...)
	case Call:
		var out []ArrayRead
		for _, a := range x.Args {
			out = append(out, collectReads(a)...)
		}
		return out
	}
	return nil
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                            // empty body
		"t = \n",                      // missing expr
		"a[i] += b[i]\n",              // += to array
		"param alpha\nalpha = a[i]\n", // assign to param
		"t = foo(a[i])\n",             // unknown function
		"t = max(a[i])\n",             // wrong arity
		"t = a[i] @ 1\n",              // @ after array... parsed as ident then bad
		"t = s@0\n",                   // zero delay
		"kernel\n t = a[i]\n",         // kernel without name
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLowerSimpleExpr(t *testing.T) {
	g := lower(t, "kernel k\nc[i] = a[i] * b[i]\n")
	// ld a, ld b, mul, st = 4 nodes.
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4\n%s", g.NumNodes(), g.DOT())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if g.MemOps() != 3 {
		t.Fatalf("mem ops = %d, want 3", g.MemOps())
	}
}

func TestLowerLoadCSE(t *testing.T) {
	g := lower(t, "kernel k\nc[i] = a[i] * a[i] + a[i+1]\n")
	loads := 0
	for _, n := range g.Nodes {
		if n.Op == dfg.OpLoad {
			loads++
		}
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (a[i] CSE'd, a[i+1] separate)\n%s", loads, g.DOT())
	}
}

func TestLowerParamIsImmediate(t *testing.T) {
	g := lower(t, "kernel k\nparam alpha\nc[i] = a[i] * alpha\n")
	// ld, mul, st; mul has exactly one in-edge.
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	for _, n := range g.Nodes {
		if n.Op == dfg.OpMul && len(g.InEdges(n.ID)) != 1 {
			t.Fatalf("mul in-edges = %d, want 1", len(g.InEdges(n.ID)))
		}
	}
}

func TestLowerAccumulatorSelfEdge(t *testing.T) {
	g := lower(t, "kernel k\ns += a[i] * b[i]\nout[i] = s\n")
	var acc *dfg.Node
	for _, n := range g.Nodes {
		if n.Name == "s" {
			acc = n
		}
	}
	if acc == nil {
		t.Fatalf("no accumulator node:\n%s", g.DOT())
	}
	selfLoop := false
	for _, eid := range g.OutEdges(acc.ID) {
		e := g.Edges[eid]
		if e.To == acc.ID && e.Dist == 1 {
			selfLoop = true
		}
	}
	if !selfLoop {
		t.Fatalf("accumulator lacks distance-1 self edge:\n%s", g.DOT())
	}
	if g.RecMII() != 1 {
		t.Fatalf("RecMII = %d, want 1 (single-node recurrence)", g.RecMII())
	}
}

func TestLowerChainedAccumulators(t *testing.T) {
	g := lower(t, "kernel k\ns += a[i]\ns += b[i]\nout[i] = s\n")
	// First += reads final def (second +=) at distance 1; second reads
	// first at distance 0. Cycle of 2 adds, distance 1 => RecMII 2.
	if got := g.RecMII(); got != 2 {
		t.Fatalf("RecMII = %d, want 2\n%s", got, g.DOT())
	}
}

func TestLowerDelayedRead(t *testing.T) {
	g := lower(t, "kernel k\nt = a[i] + 1\nout[i] = t + t@2\n")
	found := false
	for _, e := range g.Edges {
		if e.Dist == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing distance-2 edge:\n%s", g.DOT())
	}
}

func TestLowerMinMax(t *testing.T) {
	g := lower(t, "kernel k\nout[i] = max(a[i], b[i])\n")
	var cmp, sel int
	for _, n := range g.Nodes {
		switch n.Op {
		case dfg.OpCmp:
			cmp++
		case dfg.OpSelect:
			sel++
		}
	}
	if cmp != 1 || sel != 1 {
		t.Fatalf("cmp=%d sel=%d, want 1/1\n%s", cmp, sel, g.DOT())
	}
}

func TestLowerSelAndCmp(t *testing.T) {
	g := lower(t, "kernel k\nc = cmp(a[i], b[i])\nout[i] = sel(c, a[i], b[i])\n")
	for _, n := range g.Nodes {
		if n.Op == dfg.OpSelect && len(g.InEdges(n.ID)) != 3 {
			t.Fatalf("select in-edges = %d, want 3", len(g.InEdges(n.ID)))
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []string{
		"kernel k\nt = x\n",                 // undefined scalar
		"kernel k\nparam a\nt = a + 1\n",    // loop-invariant expression
		"kernel k\nparam a\nout[i] = a\n",   // loop-invariant store
		"kernel k\nt = s@1\n",               // pure delayed read assignment
		"kernel k\ns += a[i]\ni = s\n",      // assign to induction var
		"kernel k\nparam p\nt = a[i]+p@1\n", // delayed param read
		"kernel k\nout[i] = t@1\n",          // delayed read of never-assigned scalar... lowered as store of defer
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := Lower(p); err == nil {
			t.Errorf("Lower(%q) succeeded, want error", src)
		}
	}
}

const dotpSrc = `
kernel dotp
param alpha
t = a[i] * b[i]
s += t * alpha
c[i] = t + s@1
`

func TestUnrollFactor1Identity(t *testing.T) {
	p := parse(t, dotpSrc)
	u, err := Unroll(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u != p {
		t.Fatal("factor-1 unroll must return the program unchanged")
	}
}

func TestUnrollDoublesBody(t *testing.T) {
	p := parse(t, dotpSrc)
	u := MustUnroll(p, 2)
	if len(u.Stmts) != 2*len(p.Stmts) {
		t.Fatalf("stmts = %d, want %d", len(u.Stmts), 2*len(p.Stmts))
	}
	g0 := MustLower(p)
	g1 := MustLower(u)
	if g1.NumNodes() <= g0.NumNodes() {
		t.Fatalf("unrolled DFG not larger: %d vs %d", g1.NumNodes(), g0.NumNodes())
	}
}

func TestUnrollShiftsIndices(t *testing.T) {
	p := parse(t, "kernel k\nc[i] = a[i+1] * b[i]\n")
	u := MustUnroll(p, 2)
	second := u.Stmts[1]
	if got := second.LHS.String(); got != "c[i+1]" {
		t.Fatalf("copy-1 store target = %q, want c[i+1]", got)
	}
	reads := collectReads(second.RHS)
	if k := refKey(reads[0].Array, reads[0].Index); k != "a[i+2]" {
		t.Fatalf("copy-1 load = %q, want a[i+2]", k)
	}
}

func TestUnrollAccumulatorChain(t *testing.T) {
	p := parse(t, "kernel k\ns += a[i]\nout[i] = s\n")
	u := MustUnroll(p, 2)
	g := MustLower(u)
	// Two adds in a distance-1 cycle => RecMII 2; and the recurrence must
	// span both copies (copy 0 reads copy 1's value from last iteration).
	if got := g.RecMII(); got != 2 {
		t.Fatalf("RecMII = %d, want 2\n%s", got, g.DOT())
	}
}

func TestUnrollDelayedReadCrossesCopies(t *testing.T) {
	p := parse(t, "kernel k\nt = a[i] + 1\nout[i] = t + t@1\n")
	u := MustUnroll(p, 2)
	g := MustLower(u)
	// In the unrolled body, copy 1's t@1 refers to copy 0's t in the SAME
	// unrolled iteration (distance 0), and copy 0's t@1 refers to copy 1's
	// t one unrolled iteration back (distance 1).
	d0, d1 := 0, 0
	for _, e := range g.Edges {
		switch e.Dist {
		case 0:
			d0++
		case 1:
			d1++
		}
	}
	if d1 != 1 {
		t.Fatalf("want exactly 1 distance-1 edge, got %d\n%s", d1, g.DOT())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = d0
}

func TestUnrollDeepDelay(t *testing.T) {
	p := parse(t, "kernel k\nt = a[i] + 1\nout[i] = t + t@3\n")
	u := MustUnroll(p, 2)
	g := MustLower(u)
	// t@3 from copy 0: slot -3 -> copy 1, delay 2. From copy 1: slot -2 ->
	// copy 1... floor(-2/2) = -1, r = 0 -> copy 0 delay 1.
	want := map[int]int{2: 1, 1: 1}
	got := map[int]int{}
	for _, e := range g.Edges {
		if e.Dist > 0 {
			got[e.Dist]++
		}
	}
	for d, n := range want {
		if got[d] != n {
			t.Fatalf("distance histogram = %v, want %v\n%s", got, want, g.DOT())
		}
	}
}

func TestUnrollRejectsBadFactor(t *testing.T) {
	p := parse(t, dotpSrc)
	if _, err := Unroll(p, 0); err == nil {
		t.Fatal("expected error for factor 0")
	}
}

func TestIndexShiftAndString(t *testing.T) {
	ix := Index{Terms: []Term{{"i", 1}, {"j", -1}}, Const: 2}
	if got := ix.String(); got != "i-j+2" {
		t.Fatalf("String = %q", got)
	}
	sh := ix.Shift("i", 3)
	if got := sh.String(); got != "i-j+5" {
		t.Fatalf("shifted = %q", got)
	}
	if ix.Const != 2 {
		t.Fatal("Shift mutated the receiver")
	}
	zero := Index{Terms: []Term{}}
	if zero.String() != "0" {
		t.Fatalf("zero index = %q", zero.String())
	}
}

func TestPropUnrolledKernelsAlwaysValidate(t *testing.T) {
	// Generate random straight-line kernels where every statement only
	// references previously defined temporaries (or delayed reads of
	// them), then check that every unroll factor lowers to a valid DFG
	// with the expected statement count.
	f := func(seedRaw uint32, factorRaw uint8) bool {
		seed := int(seedRaw)
		factor := 1 + int(factorRaw%3)
		var b strings.Builder
		b.WriteString("kernel rnd\n")
		b.WriteString("t0 = a[i] + b[i]\n")
		n := 2 + seed%6
		for s := 1; s <= n; s++ {
			prev := (seed + s) % s // a previously defined temp index
			switch (seed + 3*s) % 4 {
			case 0:
				fmt.Fprintf(&b, "t%d = t%d * c[i+%d]\n", s, prev, s%3)
			case 1:
				fmt.Fprintf(&b, "t%d = t%d + t%d@%d\n", s, prev, prev, 1+s%2)
			case 2:
				fmt.Fprintf(&b, "t%d = t%d - d[i-%d]\n", s, prev, s%2)
			default:
				fmt.Fprintf(&b, "t%d = max(t%d, e[i])\n", s, prev)
			}
		}
		fmt.Fprintf(&b, "s += t%d\n", n)
		b.WriteString("out[i] = s\n")
		p, err := Parse(b.String())
		if err != nil {
			return false
		}
		u, err := Unroll(p, factor)
		if err != nil {
			return false
		}
		if len(u.Stmts) != factor*len(p.Stmts) {
			return false
		}
		g, err := Lower(u)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
