// Package kernels provides the benchmark loop kernels used in the paper's
// evaluation (PolyBench, MachSuite and MiBench selections), written in the
// kernelir loop-kernel IR and lowered to DFGs on demand.
//
// The paper extracts DFGs from C sources with a compiler frontend; here
// each kernel's innermost loop body is transcribed into the IR with the
// same operation mix (loads, stores, arithmetic, compare/select) and
// dependency structure (reductions become distance-1 recurrences). DFG
// sizes span roughly 13-44 nodes with the registered set averaging ~30,
// matching the paper's reported 26-51 range in spirit. Kernels whose
// natural body is small are registered in unrolled form (suffix "(u)",
// unroll factor 2), exactly as the paper does for bicg(u) and gesummv(u).
package kernels

import (
	"fmt"
	"sort"

	"rewire/internal/dfg"
	"rewire/internal/kernelir"
)

// Kernel is a registry entry: an IR source plus an unroll factor.
type Kernel struct {
	// Name is the registry key, e.g. "gramsch" or "bicg(u)".
	Name string
	// Suite records the benchmark suite of origin.
	Suite string
	// Source is the kernelir text of the (un-unrolled) loop body.
	Source string
	// Unroll is the unroll factor applied before lowering (1 = none).
	Unroll int
}

var registry = map[string]Kernel{}

func register(name, suite, source string, unroll int) {
	if _, dup := registry[name]; dup {
		panic("kernels: duplicate registration of " + name)
	}
	registry[name] = Kernel{Name: name, Suite: suite, Source: source, Unroll: unroll}
}

// Names returns all registered kernel names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the registry entry for name.
func Get(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("kernels: unknown kernel %q (known: %v)", name, Names())
	}
	return k, nil
}

// Load parses, unrolls and lowers the named kernel to a DFG.
func Load(name string) (*dfg.Graph, error) {
	k, err := Get(name)
	if err != nil {
		return nil, err
	}
	prog, err := kernelir.Parse(k.Source)
	if err != nil {
		return nil, fmt.Errorf("kernel %q: %w", name, err)
	}
	if k.Unroll > 1 {
		prog, err = kernelir.Unroll(prog, k.Unroll)
		if err != nil {
			return nil, fmt.Errorf("kernel %q: %w", name, err)
		}
	}
	g, err := kernelir.Lower(prog)
	if err != nil {
		return nil, fmt.Errorf("kernel %q: %w", name, err)
	}
	g.Name = name
	return g, nil
}

// MustLoad is Load that panics on error; the registry is static, so a
// failure is a build bug caught by the package tests.
func MustLoad(name string) *dfg.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

func init() {
	// --- PolyBench ---

	// Gram-Schmidt orthogonalisation: project q onto a, subtract, and
	// accumulate the norm of the residual (three elements per iteration).
	register("gramsch", "polybench", `
kernel gramsch
param rkk
t0 = q[i] * a[i]
s += t0
t1 = q[i+1] * a[i+1]
s += t1
t2 = q[i+2] * a[i+2]
s += t2
u0 = a[i] - s@1 * q[i]
anew[i] = u0 * rkk
u1 = a[i+1] - s@1 * q[i+1]
anew[i+1] = u1 * rkk
u2 = a[i+2] - s@1 * q[i+2]
anew[i+2] = u2 * rkk
n += u0 * u0
n += u1 * u1
n += u2 * u2
nrm[i] = n@1 >> 1
`, 1)

	// LU decomposition with forward substitution: three-term row update
	// and pivot division for both the L column and the solution vector.
	register("ludcmp", "polybench", `
kernel ludcmp
param pivot
w = a[i] - l[i] * u[i]
w2 = w - l[i+1] * u[i+1]
w3 = w2 - l[i+2] * u[i+2]
lnew[i] = w3 / pivot
x = b[i] - l[i] * y[i]
x2 = x - l[i+1] * y[i+1]
x3 = x2 - l[i+2] * y[i+2]
ynew[i] = x3 / pivot
s += w3 * x3
chk[i] = s
`, 1)

	// LU factorisation rank-1 update across four trailing columns.
	register("lu", "polybench", `
kernel lu
param inv_akk
f = a[i] * inv_akk
lcol[i] = f
t0 = b[i] - f * r0[i]
bnew[i] = t0
t1 = c[i] - f * r1[i]
cnew[i] = t1
t2 = d[i] - f * r2[i]
dnew[i] = t2
t3 = e[i] - f * r3[i]
enew[i] = t3
s += t0 * t1
s += t2 * t3
res[i] = s
`, 1)

	// GEMVER: two rank-1 updates plus scaled matrix-vector products, two
	// elements per iteration.
	register("gemver", "polybench", `
kernel gemver
param beta, alpha
a1 = a[i] + u1[i] * v1[i]
a2 = a1 + u2[i] * v2[i]
anew[i] = a2
x1 = x[i] + a2 * y[i] * beta
xnew[i] = x1
b1 = a[i+1] + u1[i+1] * v1[i+1]
b2 = b1 + u2[i+1] * v2[i+1]
anew[i+1] = b2
x2 = x[i+1] + b2 * y[i+1] * beta
xnew[i+1] = x2
w = x1 * alpha + x2 * alpha
wv[i] = w
s += w
chk[i] = s
`, 1)

	// Cholesky factorisation: four-term symmetric rank updates for the
	// diagonal column and one off-diagonal column.
	register("cholesky", "polybench", `
kernel cholesky
param inv_ljj
s0 = a0[i] - l0[i] * l0[i]
s1 = s0 - l1[i] * l1[i]
s2 = s1 - l2[i] * l2[i]
s3 = s2 - l3[i] * l3[i]
lout[i] = s3 * inv_ljj
t0 = b0[i] - l0[i] * m0[i]
t1 = t0 - l1[i] * m1[i]
t2 = t1 - l2[i] * m2[i]
t3 = t2 - l3[i] * m3[i]
mout[i] = t3 * inv_ljj
acc += s3 * t3
diag[i] = acc
`, 1)

	// GESUMMV: y = alpha*A*x + beta*B*x, two row dot-products per
	// iteration. Small body; also registered unrolled below.
	register("gesummv", "polybench", `
kernel gesummv
param alpha, beta
ta += a[i] * x[i]
tb += b[i] * x[i]
ta2 += a[i+1] * x[i+1]
tb2 += b[i+1] * x[i+1]
y0 = ta@1 * alpha + tb@1 * beta
yout[i] = y0
y1 = ta2@1 * alpha + tb2@1 * beta
yout[i+1] = y1
`, 1)
	register("gesummv(u)", "polybench", registry["gesummv"].Source, 2)

	// ATAX: y = A^T(Ax) with six matrix rows resident per iteration.
	register("atax", "polybench", `
kernel atax
t0 += a0[i] * x[i]
t1 += a1[i] * x[i]
t2 += a2[i] * x[i]
t3 += a3[i] * x[i]
t4 += a4[i] * x[i]
t5 += a5[i] * x[i]
y0 = a0[i] * t0@1 + a1[i] * t1@1
y1 = a2[i] * t2@1 + a3[i] * t3@1
y2 = a4[i] * t4@1 + a5[i] * t5@1
ya = y0 + y1
ynew[i] = ya + y2
s += ya
chk[i] = s
`, 1)

	// BiCG: s = A^T r and q = A p in one pass. Small body, registered in
	// the unrolled form the paper evaluates.
	register("bicg(u)", "polybench", `
kernel bicg
s0 += a[i] * r[i]
s1 += a2[i] * r[i]
q0 = a[i] * p[i] + a2[i] * p2[i]
qout[i] = q0
`, 2)

	// MVT: x1 = x1 + A y1, x2 = x2 + A^T y2, two elements per iteration.
	register("mvt", "polybench", `
kernel mvt
x1a += a[i] * y1[i]
x1b += a[i+1] * y1[i+1]
x2a += b[i] * y2[i]
x2b += b[i+1] * y2[i+1]
u = x1a@1 + x1b@1
v = x2a@1 + x2b@1
xout[i] = u + v
w = u * v
wout[i] = w
d = u - v
dout[i] = d
s += w
chk[i] = s
`, 1)

	// DOITGEN: multi-resolution tensor contraction over six slices.
	register("doitgen", "polybench", `
kernel doitgen
s0 += a[i] * c4a[i]
s1 += a[i] * c4b[i]
s2 += a[i] * c4c[i]
s3 += a[i] * c4d[i]
s4 += a[i] * c4e[i]
s5 += a[i] * c4f[i]
b0 = s0@1 + s1@1
b1 = s2@1 + s3@1
b2 = s4@1 + s5@1
bb = b0 * b1 * b2
out[i] = b0 + b1
out2[i] = bb - b0
acc += bb
chk[i] = acc
`, 1)

	// GEMM: C = alpha*A*B + beta*C over four output columns.
	register("gemm", "polybench", `
kernel gemm
param alpha, beta
s0 += a[i] * b0[i]
s1 += a[i] * b1[i]
s2 += a[i] * b2[i]
s3 += a[i] * b3[i]
c0[i] = s0@1 * alpha + c0in[i] * beta
c1[i] = s1@1 * alpha + c1in[i] * beta
c2[i] = s2@1 * alpha + c2in[i] * beta
c3[i] = s3@1 * alpha + c3in[i] * beta
`, 1)

	// --- MachSuite ---

	// FFT: one radix-2 complex butterfly plus running magnitude.
	register("fft", "machsuite", `
kernel fft
xr = ar[i] + br[i] * wr[i] - bi[i] * wi[i]
xi = ai[i] + br[i] * wi[i] + bi[i] * wr[i]
yr = ar[i] - br[i] * wr[i] + bi[i] * wi[i]
yi = ai[i] - br[i] * wi[i] - bi[i] * wr[i]
outxr[i] = xr
outxi[i] = xi
outyr[i] = yr
outyi[i] = yi
s += xr * yr
s += xi * yi
mag[i] = s
`, 1)

	// 9-point 2D stencil with residual accumulation.
	register("stencil2d", "machsuite", `
kernel stencil2d
param c0, c1, c2, c3
t = a[i][j] * c0
t1 = t + a[i-1][j] * c1
t2 = t1 + a[i+1][j] * c1
t3 = t2 + a[i][j-1] * c2
t4 = t3 + a[i][j+1] * c2
t5 = t4 + a[i-1][j-1] * c3
t6 = t5 + a[i-1][j+1] * c3
t7 = t6 + a[i+1][j-1] * c3
t8 = t7 + a[i+1][j+1] * c3
out[i][j] = t8
d = t8 - a[i][j]
diff[i][j] = d
s += d * d
err[i][j] = s
`, 1)

	// SpMV in 6-wide ELLPACK form with a row max for scaling.
	register("spmv", "machsuite", `
kernel spmv
v0 = val0[i] * x0[i]
v1 = val1[i] * x1[i]
v2 = val2[i] * x2[i]
v3 = val3[i] * x3[i]
v4 = val4[i] * x4[i]
v5 = val5[i] * x5[i]
r0 = v0 + v1
r1 = v2 + v3
r2 = v4 + v5
row = r0 + r1 + r2
yout[i] = row
s += row
norm[i] = s
mx = max(r0, r1)
mout[i] = mx
`, 1)

	// Viterbi: two-state trellis step with path metric selection.
	register("viterbi", "machsuite", `
kernel viterbi
p0 = path0[i] + t00[i]
p1 = path1[i] + t10[i]
m0 = max(p0, p1)
new0[i] = m0 + emit0[i]
p2 = path0[i] + t01[i]
p3 = path1[i] + t11[i]
m1 = max(p2, p3)
new1[i] = m1 + emit1[i]
d = m0 - m1
dout[i] = d
best = max(m0, m1)
bout[i] = best
s += best
chk[i] = s
`, 1)

	// --- MiBench ---

	// SUSAN edge response: squared differences against six neighbours,
	// threshold compare/select, running sum and gradient max.
	register("susan", "mibench", `
kernel susan
param thresh
d0 = img[i] - img[i-1]
d1 = img[i] - img[i+1]
d2 = img[i] - img[i-4]
d3 = img[i] - img[i+4]
d4 = img[i] - img[i-5]
d5 = img[i] - img[i+5]
a0 = d0 * d0
a1 = d1 * d1
a2 = d2 * d2
a3 = d3 * d3
a4 = d4 * d4
a5 = d5 * d5
e0 = a0 + a1
e1 = a2 + a3
e2 = a4 + a5
usan = e0 + e1 + e2
c = cmp(usan, thresh)
edge = sel(c, usan, 0)
eout[i] = edge
s += usan
sout[i] = s
g = max(e0, e1)
gout[i] = g
`, 1)

	// CRC32: two interleaved 3-round bit-serial CRC chains. The chains
	// are genuine long recurrences (RecMII 5), exercising the mappers on
	// recurrence-limited kernels.
	register("crc", "mibench", `
kernel crc
param poly
t0 = crc1@1 ^ data[i]
t1 = (t0 >> 1) ^ (poly & t0)
t2 = (t1 >> 1) ^ (poly & t1)
t3 = (t2 >> 1) ^ (poly & t2)
crc1 = t3 ^ check[i]
out[i] = crc1
u0 = crc2@1 ^ data2[i]
u1 = (u0 >> 1) ^ (poly & u0)
u2 = (u1 >> 1) ^ (poly & u1)
u3 = (u2 >> 1) ^ (poly & u2)
crc2 = u3 ^ check2[i]
out2[i] = crc2
s += crc1 & mask[i]
sout[i] = s
`, 1)
}
