// Package metrics is the online half of the observability layer: a
// stdlib-only, process-wide metrics registry — counters, gauges and
// fixed-bucket histograms, optionally labelled — that renders the
// Prometheus text exposition format (v0.0.4) for scraping, plus a
// bridge that folds a finished trace.Tracer's per-run counters and
// histograms into the registry so the offline JSONL names and the
// online metric names stay mechanically mappable.
//
// Naming convention (enforced by CheckName at registration):
//
//	rewire_<subsystem>_<name>_<unit>
//
// all lower-case, underscore-separated, at least three segments after
// the rewire_ prefix is counted in; counters end in _total, histograms
// and gauges end in a unit (_seconds, _bytes, _requests, _units for
// dimensionless counts). The reserved exposition suffixes _bucket,
// _sum and _count are rejected as base names. One sanctioned
// exception: gauges ending in _info (Prometheus info-metric
// convention, e.g. rewire_build_info) pin their value to 1 and carry
// the payload in labels, so the suffix stands in for the unit.
//
// Like internal/trace, the API is nil-safe: a nil *Registry hands out
// nil collectors and every method on a nil Counter, Gauge or Histogram
// is a single pointer check (pinned by TestDisabledMetricsZeroAlloc).
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type discriminates metric families.
type Type uint8

// Metric family types. TypeFloatCounter is a counter whose value is a
// float64 (e.g. cumulative GC pause seconds); it renders as "counter"
// in the exposition, where Prometheus counters are floats anyway — the
// split only exists internally because integer counters get a cheaper
// atomic add.
const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
	TypeFloatCounter
)

func (t Type) String() string {
	switch t {
	case TypeCounter, TypeFloatCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// nameRE is the repo naming convention: rewire_ prefix and at least
// three further lower-case segments (subsystem, name, unit).
var nameRE = regexp.MustCompile(`^rewire(_[a-z][a-z0-9]*){3,}$`)

// infoRE matches the one sanctioned exception to the unit-suffix rule:
// Prometheus-convention info gauges (rewire_build_info and friends),
// whose value is pinned to 1 and whose payload lives in the labels. The
// _info suffix is itself the "unit", so two segments suffice.
var infoRE = regexp.MustCompile(`^rewire(_[a-z][a-z0-9]*)+_info$`)

// labelRE is the Prometheus label-name grammar (we additionally forbid
// the reserved "le").
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// CheckName validates a metric family name against the repo convention
// (see the package comment). It is exported so tests — including the
// counter-name audit — and code generating names from trace counters
// can enforce the same rule the registry applies.
func CheckName(name string, typ Type) error {
	if strings.HasSuffix(name, "_info") {
		// Info gauges carry their payload in labels with the value pinned
		// to 1 (Prometheus convention); only gauges may use the suffix.
		if typ != TypeGauge {
			return fmt.Errorf("metrics: %s %q: the _info suffix is reserved for info gauges", typ, name)
		}
		if !infoRE.MatchString(name) {
			return fmt.Errorf("metrics: info gauge %q does not match rewire_<name>_info", name)
		}
		return nil
	}
	if !nameRE.MatchString(name) {
		return fmt.Errorf("metrics: name %q does not match rewire_<subsystem>_<name>_<unit>", name)
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return fmt.Errorf("metrics: name %q ends in reserved exposition suffix %s", name, suffix)
		}
	}
	isTotal := strings.HasSuffix(name, "_total")
	isCounter := typ == TypeCounter || typ == TypeFloatCounter
	if isCounter && !isTotal {
		return fmt.Errorf("metrics: counter %q must end in _total", name)
	}
	if !isCounter && isTotal {
		return fmt.Errorf("metrics: %s %q must not end in _total", typ, name)
	}
	return nil
}

// Registry is a set of metric families. All methods are safe for
// concurrent use; a nil *Registry is the disabled registry (every
// getter returns nil, and nil collectors no-op).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and one child
// per observed label-value combination.
type family struct {
	name   string
	help   string
	typ    Type
	labels []string
	bounds []float64 // histogram upper bounds, ascending, +Inf implicit

	mu       sync.Mutex
	children map[string]*child
}

// child is one labelled series of a family.
type child struct {
	values []string // label values, aligned with family.labels

	// counter / gauge state (gauges store float64 bits).
	num atomic.Uint64

	// histogram state, guarded by hmu so a render sees a consistent
	// (counts, sum, count) triple.
	hmu    sync.Mutex
	counts []int64 // per-bucket (non-cumulative); len(bounds)+1, last = +Inf
	sum    float64
	count  int64
}

// register returns the named family, creating it on first use, and
// panics on a convention violation or a redefinition with a different
// type or label schema — both are programming errors, not runtime
// conditions.
func (r *Registry) register(name, help string, typ Type, bounds []float64, labels []string) *family {
	if err := CheckName(name, typ); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("metrics: bad label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s redefined with different type or labels", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, labels: labels,
		bounds: bounds, children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the child for the given label values, creating it on
// first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[key]
	if c == nil {
		c = &child{values: append([]string(nil), values...)}
		if f.typ == TypeHistogram {
			c.counts = make([]int64, len(f.bounds)+1)
		}
		f.children[key] = c
	}
	return c
}

// Counter is a monotonically increasing metric. A nil *Counter ignores
// every method.
type Counter struct{ c *child }

// Add increments the counter by d (negative deltas are dropped —
// counters only go up).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.c.num.Add(uint64(d))
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return int64(c.c.num.Load())
}

// FloatCounter is a monotonically increasing metric with a float64
// value, for cumulative quantities that are not integers (GC pause
// seconds). A nil *FloatCounter ignores every method.
type FloatCounter struct{ c *child }

// Add increments the counter by d (negative and NaN deltas are dropped —
// counters only go up).
func (c *FloatCounter) Add(d float64) {
	if c == nil || !(d > 0) {
		return
	}
	for {
		old := c.c.num.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.c.num.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.c.num.Load())
}

// Gauge is a metric that can go up and down. A nil *Gauge ignores
// every method.
type Gauge struct{ c *child }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.c.num.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.c.num.Load()
		if g.c.num.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.c.num.Load())
}

// Histogram records a distribution over fixed buckets. A nil
// *Histogram ignores every method.
type Histogram struct {
	c *child
	b []float64 // the family's bucket bounds
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	c := h.c
	c.hmu.Lock()
	c.count++
	c.sum += v
	c.counts[bucketIndex(h.b, v)]++
	c.hmu.Unlock()
}

// bucketIndex returns the first bucket whose upper bound is >= v
// (le-inclusive, as Prometheus defines it), or the +Inf bucket.
func bucketIndex(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// addRaw folds pre-aggregated bucket counts (non-cumulative, aligned
// with the histogram's bounds; overflow in the last slot) into the
// histogram — the trace bridge uses this to merge a run's power-of-two
// histogram without replaying samples.
func (h *Histogram) addRaw(counts []int64, sum float64, count int64) {
	if h == nil {
		return
	}
	c := h.c
	c.hmu.Lock()
	for i, n := range counts {
		if i >= len(c.counts) {
			c.counts[len(c.counts)-1] += n
			continue
		}
		c.counts[i] += n
	}
	c.sum += sum
	c.count += count
	c.hmu.Unlock()
}

// DefBuckets are the default latency buckets (seconds), spanning
// sub-millisecond router calls to multi-minute mapping runs.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

// Pow2Buckets returns upper bounds 1, 3, 7, ..., 2^(n)-1: the inclusive
// upper bounds of internal/trace's power-of-two histogram buckets, so
// bridged histograms lose no precision.
func Pow2Buckets(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(uint64(1)<<(i+1) - 1)
	}
	return out
}

// NewCounter registers (or fetches) an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.NewCounterVec(name, help).With()
}

// NewCounterVec registers (or fetches) a counter family with the given
// label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, TypeCounter, nil, labels)}
}

// NewFloatCounter registers (or fetches) an unlabelled float counter.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	if r == nil {
		return nil
	}
	return &FloatCounter{c: r.register(name, help, TypeFloatCounter, nil, nil).get(nil)}
}

// NewGauge registers (or fetches) an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.NewGaugeVec(name, help).With()
}

// NewGaugeVec registers (or fetches) a gauge family with the given
// label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, TypeGauge, nil, labels)}
}

// NewHistogram registers (or fetches) an unlabelled histogram with the
// given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.NewHistogramVec(name, help, buckets).With()
}

// NewHistogramVec registers (or fetches) a histogram family with the
// given buckets and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bs) {
		panic(fmt.Sprintf("metrics: %s buckets are not ascending", name))
	}
	return &HistogramVec{f: r.register(name, help, TypeHistogram, bs, labels)}
}

// CounterVec is a labelled counter family. A nil vec hands out nil
// counters.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (aligned with the
// label names the vec was registered with).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{c: v.f.get(values)}
}

// GaugeVec is a labelled gauge family. A nil vec hands out nil gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{c: v.f.get(values)}
}

// HistogramVec is a labelled histogram family. A nil vec hands out nil
// histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{c: v.f.get(values), b: v.f.bounds}
}
