// Package eval is the experiment harness: it reruns the paper's full
// evaluation — Figure 5 (mapping quality as II across four CGRA
// configurations), Figure 6 (compilation time), Table I (single-node
// remapping iterations) and the §V summary statistics — over the three
// mappers (Rewire, PF*, SA) and prints the same rows/series the paper
// reports.
package eval

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rewire/internal/arch"
	"rewire/internal/core"
	"rewire/internal/dfg"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/sa"
	"rewire/internal/stats"
)

// Config tunes an evaluation run.
type Config struct {
	// Seed makes the whole evaluation reproducible.
	Seed int64
	// TimePerII is each mapper's per-II budget (the paper allowed one
	// hour on a Xeon; the default here is 2s, which preserves the
	// comparison's shape at laptop scale).
	TimePerII time.Duration
	// MaxII caps the II sweep (default 32).
	MaxII int
	// Verbose streams one line per finished run to Out.
	Verbose bool
	// Out receives progress and reports (required).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.TimePerII == 0 {
		c.TimePerII = 2 * time.Second
	}
	if c.MaxII == 0 {
		c.MaxII = 32
	}
	return c
}

// Combo is one benchmark-architecture configuration of the evaluation.
type Combo struct {
	Kernel string
	Arch   *arch.CGRA
}

// Combos returns the 47 benchmark-architecture configurations evaluated
// in the paper (§V: "This evaluation uses 47 different DFG and
// architecture combinations"), distributed over the four CGRA presets.
// The 4x4 one-register list is exactly Table I's benchmark set; unrolled
// kernels concentrate on the 8x8 fabric, as in the paper.
func Combos() []Combo {
	lists := []struct {
		a       *arch.CGRA
		kernels []string
	}{
		{arch.New4x4(4), []string{
			"atax", "bicg(u)", "cholesky", "crc", "doitgen", "fft", "gemver",
			"gesummv", "gramsch", "lu", "ludcmp", "mvt", "stencil2d", "viterbi",
		}},
		{arch.New8x8(4), []string{
			"atax", "bicg(u)", "cholesky", "doitgen", "fft", "gemm", "gemver",
			"gesummv(u)", "gramsch", "lu", "ludcmp", "spmv", "susan",
		}},
		{arch.New4x4(2), []string{
			"atax", "cholesky", "doitgen", "fft", "gemm", "gesummv",
			"gramsch", "lu", "ludcmp", "mvt", "spmv", "viterbi",
		}},
		{arch.New4x4(1), []string{
			"gramsch", "ludcmp", "lu", "gemver", "cholesky", "gesummv",
			"atax", "bicg(u)",
		}},
	}
	var out []Combo
	for _, l := range lists {
		for _, k := range l.kernels {
			out = append(out, Combo{Kernel: k, Arch: l.a})
		}
	}
	return out
}

// Mappers in the order the paper reports them.
var Mappers = []string{"Rewire", "PF*", "SA"}

// Run maps one combo with one mapper under the config's budgets.
func Run(mapper string, cb Combo, cfg Config) (*mapping.Mapping, stats.Result) {
	return RunDFG(mapper, kernels.MustLoad(cb.Kernel), cb.Arch, cfg)
}

// RunDFG maps an arbitrary DFG (not necessarily a registry kernel) on an
// architecture with one of the three mappers.
func RunDFG(mapper string, g *dfg.Graph, a *arch.CGRA, cfg Config) (*mapping.Mapping, stats.Result) {
	cfg = cfg.withDefaults()
	switch mapper {
	case "Rewire":
		return core.Map(g, a, core.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
		})
	case "PF*":
		return pathfinder.Map(g, a, pathfinder.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
		})
	case "SA":
		return sa.Map(g, a, sa.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
		})
	default:
		panic("eval: unknown mapper " + mapper)
	}
}

// Results is the full evaluation outcome, indexed by mapper then combo
// key.
type Results struct {
	Combos  []Combo
	ByRun   map[string]stats.Result // key: mapper + "|" + comboKey
	Elapsed time.Duration
}

func comboKey(cb Combo) string { return cb.Kernel + "@" + cb.Arch.Name }

func runKey(mapper string, cb Combo) string { return mapper + "|" + comboKey(cb) }

// Get returns the recorded result for a mapper/combo pair.
func (r *Results) Get(mapper string, cb Combo) (stats.Result, bool) {
	res, ok := r.ByRun[runKey(mapper, cb)]
	return res, ok
}

// RunAll executes every mapper on every combo.
func RunAll(cfg Config) *Results {
	cfg = cfg.withDefaults()
	out := &Results{Combos: Combos(), ByRun: map[string]stats.Result{}}
	start := time.Now()
	for _, cb := range out.Combos {
		for _, mapper := range Mappers {
			_, res := Run(mapper, cb, cfg)
			out.ByRun[runKey(mapper, cb)] = res
			if cfg.Verbose {
				fmt.Fprintln(cfg.Out, res)
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out
}

// MIIOf computes the theoretical minimum II of a combo.
func MIIOf(cb Combo) int {
	g := kernels.MustLoad(cb.Kernel)
	return mapping.MII(g, cb.Arch)
}

// archOrder returns the distinct architectures in evaluation order.
func (r *Results) archOrder() []*arch.CGRA {
	var order []*arch.CGRA
	seen := map[string]bool{}
	for _, cb := range r.Combos {
		if !seen[cb.Arch.Name] {
			seen[cb.Arch.Name] = true
			order = append(order, cb.Arch)
		}
	}
	return order
}

// combosOn returns the combos for one architecture, kernel-sorted.
func (r *Results) combosOn(a *arch.CGRA) []Combo {
	var out []Combo
	for _, cb := range r.Combos {
		if cb.Arch.Name == a.Name {
			out = append(out, cb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// fmtII renders an II cell: the value, "-" for a failed mapping.
func fmtII(res stats.Result, ok bool) string {
	if !ok || !res.Success {
		return "-"
	}
	return fmt.Sprintf("%d", res.II)
}
