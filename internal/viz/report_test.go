package viz

import (
	"strings"
	"testing"

	"rewire/internal/diag"
)

func sampleReport() *diag.Report {
	return &diag.Report{
		Schema: diag.SchemaID, Kernel: "fig6", Arch: "cgra4x4", Rows: 4, Cols: 4,
		Mapper: "Rewire", Success: false, MII: 2,
		Attempts: []diag.AttemptReport{
			{II: 2, Attempt: 0, Outcome: "failed", DurMS: 12.5, Rounds: 40,
				Convergence: []int{8, 6, 5, 5, 4, 4, 4, 4}, Contested: 3},
			{II: 3, Attempt: 0, Outcome: "cancelled", DurMS: 3.1, Rounds: 7},
		},
		Contested: []diag.ResourceReport{
			{Resource: "link(5,S)@t1", Kind: "link", PE: 5, Time: 1, TimesContested: 9,
				Contenders: []string{"mul3", "add7"}, FinalOccupant: "mul3"},
			{Resource: "fu(10)@t0", Kind: "fu", PE: 10, Time: 0, TimesContested: 4,
				Contenders: []string{"ld2"}},
		},
		Unroutable: []diag.EdgeReport{
			{Edge: 7, From: "mul3", To: "st9", II: 2, Latency: 1},
		},
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty series sparkline = %q", got)
	}
	got := Sparkline([]int{0, 4, 8})
	if want := "▁▄█"; got != want {
		t.Fatalf("sparkline = %q, want %q", got, want)
	}
	// All-zero series renders lowest level, not a division by zero.
	if got := Sparkline([]int{0, 0}); got != "▁▁" {
		t.Fatalf("zero series sparkline = %q", got)
	}
}

func TestPressureHeatmap(t *testing.T) {
	r := sampleReport()
	h := PressureHeatmap(r)
	if !strings.Contains(h, "hottest PE = 9") {
		t.Fatalf("heatmap missing hottest count:\n%s", h)
	}
	// 4 rows of cells plus the header line.
	if lines := strings.Count(h, "\n"); lines != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", lines, h)
	}
	if !strings.Contains(h, "   9") || !strings.Contains(h, "   4") {
		t.Fatalf("heatmap missing per-PE counts:\n%s", h)
	}
	if !strings.Contains(PressureHeatmap(nil), "no fabric geometry") {
		t.Fatal("nil report heatmap lacks the geometry note")
	}
	empty := &diag.Report{Rows: 2, Cols: 2}
	if !strings.Contains(PressureHeatmap(empty), "no contention recorded") {
		t.Fatal("contention-free heatmap lacks the empty note")
	}
}

func TestRenderReport(t *testing.T) {
	out := RenderReport(sampleReport())
	for _, want := range []string{
		"fig6", "FAILED", "MII=2",
		"II=2", "failed", "█▆▅▅▄▄▄▄", // timeline with sparkline
		"link(5,S)@t1", "fought over by mul3, add7", "held by mul3",
		"e7", "mul3 -> st9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if got := RenderReport(nil); !strings.Contains(got, "no diagnostics") {
		t.Fatalf("nil report = %q", got)
	}
	ok := sampleReport()
	ok.Success, ok.II, ok.Cached = true, 3, true
	out = RenderReport(ok)
	if !strings.Contains(out, "mapped at II=3") || !strings.Contains(out, "served from cache") {
		t.Fatalf("success report wrong:\n%s", out)
	}
}

func TestRenderReportHTML(t *testing.T) {
	out := RenderReportHTML(sampleReport())
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		"fig6", "FAILED", "link(5,S)@t1", "mul3, add7",
		"class=\"heat\"", "background:rgb(255,0,0)", // hottest cell fully red
		"e7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html report missing %q", want)
		}
	}
	// Labels are escaped: a hostile kernel name cannot inject markup.
	evil := sampleReport()
	evil.Kernel = "<script>alert(1)</script>"
	out = RenderReportHTML(evil)
	if strings.Contains(out, "<script>") {
		t.Fatal("kernel name not HTML-escaped")
	}
	if !strings.Contains(RenderReportHTML(nil), "no diagnostics collected") {
		t.Fatal("nil report html lacks the empty note")
	}
}
