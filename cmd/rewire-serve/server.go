package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rewire"
	"rewire/internal/buildinfo"
	"rewire/internal/dist"
	"rewire/internal/ledger"
	"rewire/internal/metrics"
	"rewire/internal/mrrg"
	"rewire/internal/obs"
	"rewire/internal/portfolio"
	"rewire/internal/resultcache"
	"rewire/internal/trace"
	"rewire/internal/viz"
)

// serverConfig sizes the daemon.
type serverConfig struct {
	// Workers bounds how many mapping runs execute concurrently; further
	// requests queue on the semaphore until a slot frees or their
	// timeout expires. The same fixed-pool discipline as the PR 1
	// evaluation harness (eval.RunCombos), applied to request traffic.
	Workers int
	// RequestTimeout bounds one request's total wall-clock, queue wait
	// included.
	RequestTimeout time.Duration
	// MaxTimePerII / MaxII cap what a request may ask for, so a single
	// client cannot park a worker on an hour-long sweep.
	MaxTimePerII time.Duration
	MaxII        int
	// FlightSize is the flight recorder's ring capacity.
	FlightSize int
	// CacheSize is the result cache's capacity in finished mappings.
	// Zero or negative disables the cache (the historical behaviour);
	// the rewire-serve binary defaults it to 512 via -result-cache.
	CacheSize int
	// MaxBatch caps how many entries one POST /map/batch may carry.
	MaxBatch int
	// JobTimeout bounds one async job's wall-clock (admission wait
	// included) — the async analogue of RequestTimeout.
	JobTimeout time.Duration
	// JobCapacity bounds the async job table (running plus retained
	// completed jobs); completed jobs are evicted oldest-first to make
	// room, and submissions are rejected only when every slot is still
	// running.
	JobCapacity int
	// Ledger, when non-nil, is the persistent QoR store every retired
	// run appends to (the -ledger flag opens a file-backed one). When
	// nil the server falls back to an in-memory ledger so GET /qor
	// always has the process's own history to aggregate.
	Ledger *ledger.Ledger
}

func (c serverConfig) withDefaults() serverConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxTimePerII <= 0 {
		c.MaxTimePerII = 10 * time.Second
	}
	if c.MaxII <= 0 {
		c.MaxII = 32
	}
	if c.FlightSize <= 0 {
		c.FlightSize = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobCapacity <= 0 {
		c.JobCapacity = 256
	}
	return c
}

// server is the mapping daemon: a bounded worker pool around the
// mapping engine, a metrics registry every run folds into, a flight
// recorder of recent runs, and the HTTP surface over all of it.
type server struct {
	cfg    serverConfig
	lg     *obs.Logger
	reg    *metrics.Registry
	sem    chan struct{} // worker-pool slots
	flight *flightRecorder
	cache  *rewire.ResultCache // nil when CacheSize <= 0
	jobs   *jobTable
	ready  atomic.Bool
	led    *ledger.Ledger
	proc   *metrics.ProcessCollector

	mReqs     *metrics.CounterVec // rewire_map_requests_total{mapper,outcome}
	mInflight *metrics.Gauge      // rewire_serve_inflight_requests
	mQueued   *metrics.Gauge      // rewire_serve_queued_requests
	mDur      *metrics.HistogramVec
	mQueueDur *metrics.Histogram
	mII       *metrics.HistogramVec
	mSlack    *metrics.HistogramVec
	mAmend    *metrics.HistogramVec

	// Batch and async surface counters.
	mBatchReqs    *metrics.Counter    // rewire_serve_batch_requests_total
	mBatchEntries *metrics.Counter    // rewire_serve_batch_entries_total
	mBatchDeduped *metrics.Counter    // rewire_serve_batch_deduped_total
	mJobs         *metrics.CounterVec // rewire_serve_async_jobs_total{state}

	// Portfolio lane accounting, labelled by backend.
	mPfLanes     *metrics.CounterVec // rewire_portfolio_lanes_total{backend}
	mPfWins      *metrics.CounterVec // rewire_portfolio_lane_wins_total{backend}
	mPfCancelled *metrics.CounterVec // rewire_portfolio_cancelled_total{backend}
	mPfWastedMS  *metrics.CounterVec // rewire_portfolio_wasted_ms_total{backend}

	// Diagnostics surface.
	mDiagReports  *metrics.CounterVec // rewire_diag_reports_total{outcome}
	mDiagContest  *metrics.Histogram  // rewire_diag_contested_resources_units
	mDiagProgress *metrics.Counter    // rewire_map_progress_events_total

	// Substrate and result cache counters, exported by diffing the
	// cumulative stats on each scrape (counters may only move forward,
	// so the handler adds deltas since the previous export).
	mMRRGHits   *metrics.Counter
	mMRRGMisses *metrics.Counter
	mDistHits   *metrics.Counter
	mDistMisses *metrics.Counter
	mRCHits     *metrics.Counter // rewire_resultcache_hits_total
	mRCMisses   *metrics.Counter // rewire_resultcache_misses_total
	mRCEvicts   *metrics.Counter // rewire_resultcache_evictions_total
	mRCShared   *metrics.Counter // rewire_resultcache_singleflight_shared_total
	cacheMu     sync.Mutex
	lastCache   [8]int64 // mrrg h/m, dist h/m, resultcache h/m/evict/shared
}

func newServer(cfg serverConfig, lg *obs.Logger) *server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &server{
		cfg:    cfg,
		lg:     lg,
		reg:    reg,
		sem:    make(chan struct{}, cfg.Workers),
		flight: newFlightRecorder(cfg.FlightSize),

		mReqs: reg.NewCounterVec("rewire_map_requests_total",
			"POST /map requests by mapper and outcome (ok, failed, invalid, timeout, overload).",
			"mapper", "outcome"),
		mInflight: reg.NewGauge("rewire_serve_inflight_requests",
			"Mapping runs currently executing on the worker pool."),
		mQueued: reg.NewGauge("rewire_serve_queued_requests",
			"Requests waiting for a worker-pool slot."),
		mDur: reg.NewHistogramVec("rewire_map_duration_seconds",
			"Wall-clock time of one mapping run.", metrics.DefBuckets, "mapper"),
		mQueueDur: reg.NewHistogram("rewire_serve_queue_wait_seconds",
			"Time requests spent waiting for a worker-pool slot.", metrics.DefBuckets),
		mII: reg.NewHistogramVec("rewire_map_ii_units",
			"Achieved initiation interval of successful mappings.", metrics.Pow2Buckets(8), "mapper"),
		mSlack: reg.NewHistogramVec("rewire_map_ii_slack_units",
			"Achieved II minus the theoretical MII (0 = optimal).", metrics.Pow2Buckets(6), "mapper"),
		mAmend: reg.NewHistogramVec("rewire_map_amendment_rounds_units",
			"Cluster amendment rounds per run (Rewire's remapping analogue).", metrics.Pow2Buckets(10), "mapper"),
		mMRRGHits: reg.NewCounter("rewire_mrrg_cache_hits_total",
			"Sessions served an already-built modulo routing resource graph."),
		mMRRGMisses: reg.NewCounter("rewire_mrrg_cache_misses_total",
			"Sessions that had to build a new modulo routing resource graph."),
		mDistHits: reg.NewCounter("rewire_dist_cache_hits_total",
			"Routers served a precomputed PE distance oracle."),
		mDistMisses: reg.NewCounter("rewire_dist_cache_misses_total",
			"Routers that had to compute a PE distance oracle (reverse BFS)."),
		mRCHits: reg.NewCounter("rewire_resultcache_hits_total",
			"Mapping requests served a finished mapping from the result cache (lookup plus deep copy, no compile)."),
		mRCMisses: reg.NewCounter("rewire_resultcache_misses_total",
			"Mapping requests that had to compile (result-cache misses; singleflight leaders)."),
		mRCEvicts: reg.NewCounter("rewire_resultcache_evictions_total",
			"Finished mappings dropped by the result cache's LRU bound."),
		mRCShared: reg.NewCounter("rewire_resultcache_singleflight_shared_total",
			"Requests that adopted a concurrent identical compile's result instead of compiling."),
		mBatchReqs: reg.NewCounter("rewire_serve_batch_requests_total",
			"POST /map/batch requests."),
		mBatchEntries: reg.NewCounter("rewire_serve_batch_entries_total",
			"Mapping entries across all batch requests."),
		mBatchDeduped: reg.NewCounter("rewire_serve_batch_deduped_total",
			"Batch entries served by copying a same-fingerprint entry's result within the batch."),
		mJobs: reg.NewCounterVec("rewire_serve_async_jobs_total",
			"Async mapping jobs by lifecycle event (submitted, completed, rejected).", "state"),
		mPfLanes: reg.NewCounterVec("rewire_portfolio_lanes_total",
			"Portfolio lanes launched, by backend.", "backend"),
		mPfWins: reg.NewCounterVec("rewire_portfolio_lane_wins_total",
			"Portfolio runs committed from this backend's lane (the race winner).", "backend"),
		mPfCancelled: reg.NewCounterVec("rewire_portfolio_cancelled_total",
			"Portfolio lanes cancelled after a higher-priority or lower-II lane won.", "backend"),
		mPfWastedMS: reg.NewCounterVec("rewire_portfolio_wasted_ms_total",
			"Wall-clock milliseconds spent on portfolio lanes whose outcome was discarded.", "backend"),
		mDiagReports: reg.NewCounterVec("rewire_diag_reports_total",
			"Mapping post-mortem reports collected, by run outcome (ok, failed).", "outcome"),
		mDiagContest: reg.NewHistogram("rewire_diag_contested_resources_units",
			"Distinct contested fabric resources per collected report.", metrics.Pow2Buckets(10)),
		mDiagProgress: reg.NewCounter("rewire_map_progress_events_total",
			"Progress events published on async jobs' live streams (drop-oldest retention; see /map/events/{id})."),
	}
	// The process gauges (uptime, goroutines, heap) and the
	// rewire_build_info identity gauge live in the shared collector;
	// metricsHandler refreshes them on every scrape.
	s.proc = metrics.RegisterProcess(reg)
	if cfg.CacheSize > 0 {
		s.cache = rewire.NewResultCache(cfg.CacheSize)
	}
	s.led = cfg.Ledger
	if s.led == nil {
		s.led = ledger.NewMemory()
	}
	s.jobs = newJobTable(cfg.JobCapacity)
	return s
}

// mux wires the HTTP surface.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /map", s.handleMap)
	m.HandleFunc("POST /map/batch", s.handleBatch)
	m.HandleFunc("POST /map/submit", s.handleSubmit)
	m.HandleFunc("GET /map/result/{id}", s.handleResult)
	m.HandleFunc("GET /map/events/{id}", s.handleEvents)
	m.Handle("GET /metrics", s.metricsHandler())
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /readyz", s.handleReadyz)
	m.HandleFunc("GET /qor", s.handleQoR)
	m.HandleFunc("GET /qor.html", s.handleQoRHTML)
	m.HandleFunc("GET /runs", s.handleRuns)
	m.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	m.HandleFunc("GET /runs/{id}/report", s.handleRunReport)
	m.HandleFunc("GET /runs/{id}/report.html", s.handleRunReportHTML)
	m.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m
}

// mapRequest is the POST /map body. Exactly one of Kernel (a bundled
// benchmark name) or KernelSrc (loop-kernel IR source) selects the
// kernel; Arch names a preset grid ("4x4r4") and ArchADL overrides it
// with a full ADL spec.
type mapRequest struct {
	Kernel    string `json:"kernel,omitempty"`
	KernelSrc string `json:"kernel_src,omitempty"`
	Unroll    int    `json:"unroll,omitempty"`
	Arch      string `json:"arch,omitempty"`
	ArchADL   string `json:"arch_adl,omitempty"`
	Mapper    string `json:"mapper,omitempty"` // rewire (default), pathfinder, sa, portfolio
	Seed      int64  `json:"seed,omitempty"`
	MaxII     int    `json:"max_ii,omitempty"`
	TimePerII int    `json:"time_per_ii_ms,omitempty"`
	// PortfolioBackends restricts a "portfolio" run to a comma-separated
	// backend subset (default: every registered backend). Part of the
	// result fingerprint — a subset may commit a different mapping.
	PortfolioBackends string `json:"portfolio_backends,omitempty"`
	// PortfolioParallelism is the portfolio lane window (0 = one lane per
	// backend, 1 = serial priority order). Clamped like
	// SweepParallelism; the committed result is width-independent.
	PortfolioParallelism int `json:"portfolio_parallelism,omitempty"`
	// SweepParallelism asks for a speculative II-sweep window (see
	// docs/CONCURRENCY.md, "Layer 3"). The server clamps it so that
	// Workers x window never oversubscribes GOMAXPROCS; the committed
	// mapping is bit-identical at every width, so clamping only affects
	// wall-clock.
	SweepParallelism int  `json:"sweep_parallelism,omitempty"`
	Render           bool `json:"render,omitempty"` // include the ASCII schedule grid
}

// mapResponse is the POST /map answer. TraceURL points at the flight
// recorder's Chrome-trace download for this run while it stays in the
// ring.
type mapResponse struct {
	RunID      string           `json:"run_id"`
	Success    bool             `json:"success"`
	Mapper     string           `json:"mapper"`
	Kernel     string           `json:"kernel"`
	Arch       string           `json:"arch"`
	II         int              `json:"ii,omitempty"`
	MII        int              `json:"mii"`
	DurationMS float64          `json:"duration_ms"`
	Error      string           `json:"error,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Grid       string           `json:"grid,omitempty"`
	TraceURL   string           `json:"trace_url"`
	// Cached marks a result served from the result cache (or by sharing
	// a concurrent identical compile): no compile ran for this request,
	// and DurationMS is the populating compile's cost — what the hit
	// saved. See docs/CACHING.md.
	Cached bool `json:"cached,omitempty"`
	// Deduped marks a batch entry answered by copying another entry of
	// the same batch with an identical fingerprint (it shares that
	// entry's run_id and trace).
	Deduped bool `json:"deduped,omitempty"`
	// ReportURL points at the run's post-mortem report while it stays in
	// the flight recorder; Report inlines its top-line summary on failed
	// runs, so a polling client learns what the fabric fought over
	// without a second request.
	ReportURL string              `json:"report_url,omitempty"`
	Report    *rewire.DiagSummary `json:"report,omitempty"`
	// WinnerBackend names the backend whose lane a successful portfolio
	// run committed ("rewire", "pathfinder", "sa"); empty for
	// single-mapper runs.
	WinnerBackend string `json:"winner_backend,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// parseMapRequest validates the body against the server's caps and
// resolves kernel and architecture.
func (s *server) parseMapRequest(req *mapRequest) (*rewire.DFG, *rewire.CGRA, rewire.MapperName, error) {
	var mapper rewire.MapperName
	switch strings.ToLower(req.Mapper) {
	case "", "rewire":
		mapper = rewire.MapperRewire
	case "pathfinder", "pf", "pf*":
		mapper = rewire.MapperPathFinder
	case "sa":
		mapper = rewire.MapperSA
	case "portfolio":
		mapper = rewire.MapperPortfolio
	default:
		return nil, nil, "", fmt.Errorf("unknown mapper %q (want rewire, pathfinder, sa or portfolio)", req.Mapper)
	}
	if mapper != rewire.MapperPortfolio && (req.PortfolioBackends != "" || req.PortfolioParallelism != 0) {
		return nil, nil, "", fmt.Errorf("portfolio_backends/portfolio_parallelism require mapper \"portfolio\", not %q", req.Mapper)
	}
	if req.PortfolioParallelism < 0 {
		return nil, nil, "", fmt.Errorf("portfolio_parallelism %d must be >= 0", req.PortfolioParallelism)
	}
	if mapper == rewire.MapperPortfolio {
		if _, err := portfolio.Canonical(portfolio.ParseBackends(req.PortfolioBackends)); err != nil {
			return nil, nil, "", err
		}
	}
	if req.MaxII < 0 || req.MaxII > s.cfg.MaxII {
		return nil, nil, "", fmt.Errorf("max_ii %d out of range (server cap %d)", req.MaxII, s.cfg.MaxII)
	}
	if d := time.Duration(req.TimePerII) * time.Millisecond; d < 0 || d > s.cfg.MaxTimePerII {
		return nil, nil, "", fmt.Errorf("time_per_ii_ms %d out of range (server cap %s)", req.TimePerII, s.cfg.MaxTimePerII)
	}
	if req.SweepParallelism < 0 {
		return nil, nil, "", fmt.Errorf("sweep_parallelism %d must be >= 0", req.SweepParallelism)
	}

	var (
		g   *rewire.DFG
		err error
	)
	switch {
	case req.Kernel != "" && req.KernelSrc != "":
		return nil, nil, "", errors.New("set kernel or kernel_src, not both")
	case req.Kernel != "":
		g, err = rewire.LoadKernel(req.Kernel)
	case req.KernelSrc != "":
		g, err = rewire.ParseKernel(req.KernelSrc, req.Unroll)
	default:
		return nil, nil, "", errors.New("missing kernel (bundled name) or kernel_src (kernel IR)")
	}
	if err != nil {
		return nil, nil, "", err
	}

	var cgra *rewire.CGRA
	switch {
	case req.ArchADL != "":
		cgra, err = rewire.ParseArch(req.ArchADL)
	case req.Arch != "":
		cgra, err = parseArchName(req.Arch)
	default:
		return nil, nil, "", errors.New("missing arch (e.g. \"4x4r4\") or arch_adl")
	}
	if err != nil {
		return nil, nil, "", err
	}
	return g, cgra, mapper, nil
}

// parseArchName accepts "ROWSxCOLSrREGS" names, mirroring rewire-map's
// -arch flag.
func parseArchName(sarch string) (*rewire.CGRA, error) {
	var rows, cols, regs int
	if _, err := fmt.Sscanf(strings.ToLower(sarch), "%dx%dr%d", &rows, &cols, &regs); err != nil {
		return nil, fmt.Errorf("bad arch %q (want e.g. 4x4r4): %v", sarch, err)
	}
	switch {
	case rows == 4 && cols == 4:
		return rewire.New4x4(regs), nil
	case rows == 8 && cols == 8:
		return rewire.New8x8(regs), nil
	case cols > 4:
		return rewire.NewCGRA(sarch, rows, cols, regs, rows, 0, cols-1), nil
	default:
		return rewire.NewCGRA(sarch, rows, cols, regs, 2, 0), nil
	}
}

// handleMap serves POST /map: admission through the worker pool, one
// traced mapping run, metrics fold, flight-recorder entry, JSON answer.
func (s *server) handleMap(w http.ResponseWriter, r *http.Request) {
	runID := obs.NewRunID()
	lg := s.lg.WithRun(runID)

	var req mapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.mReqs.With("unknown", "invalid").Inc()
		lg.Warn("bad request body", "err", err)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON body: " + err.Error()})
		return
	}
	g, cgra, mapper, err := s.parseMapRequest(&req)
	if err != nil {
		s.mReqs.With(strings.ToLower(req.Mapper), "invalid").Inc()
		lg.Warn("invalid mapping request", "err", err)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// Admission: wait for a worker-pool slot, bounded by the request
	// timeout and the client hanging up.
	deadline := time.NewTimer(s.cfg.RequestTimeout)
	defer deadline.Stop()
	queued := time.Now()
	s.mQueued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.mQueued.Add(-1)
	case <-deadline.C:
		s.mQueued.Add(-1)
		s.mReqs.With(string(mapper), "overload").Inc()
		lg.Warn("request timed out waiting for a worker", "queue_wait_ms", time.Since(queued).Milliseconds())
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "no mapping worker became free in time; retry later"})
		return
	case <-r.Context().Done():
		s.mQueued.Add(-1)
		s.mReqs.With(string(mapper), "canceled").Inc()
		return
	}
	s.mQueueDur.Observe(time.Since(queued).Seconds())
	s.mInflight.Add(1)
	// The slot and the inflight gauge are released exactly once, on
	// whichever path the run actually ends (in time or in the
	// background after a 504) — no defers, they would double-release.
	release := func() {
		s.mInflight.Add(-1)
		<-s.sem
	}

	// Run the mapper on its own goroutine so a budget overrun cannot
	// hold the HTTP response past the request timeout. The run context
	// derives from the request: a client disconnect — or an explicit
	// cancel on the 504 path — tears down the whole II sweep, in-flight
	// speculative attempts included, within one mapper inner-loop
	// iteration. The worker slot frees only once the torn-down run has
	// fully returned, so abandoned runs can neither over-subscribe the
	// pool nor leave speculative goroutines running against it.
	opts := s.buildOpts(&req, mapper, lg, nil)
	lg.Info("mapping request", "mapper", string(mapper), "kernel", g.Name,
		"arch", cgra.Name, "seed", req.Seed, "time_per_ii_ms", opts.TimePerII.Milliseconds(),
		"sweep_window", opts.SweepParallelism)

	runCtx, cancelRun := context.WithCancel(r.Context())
	type outcome struct {
		m    *rewire.Mapping
		res  rewire.Result
		cout rewire.CacheOutcome
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		m, res, cout, err := rewire.MapCached(runCtx, g, cgra, opts)
		done <- outcome{m: m, res: res, cout: cout, err: err}
	}()

	select {
	case out := <-done:
		cancelRun()
		release()
		s.mReqs.With(string(mapper), boolOutcome(out.res.Success)).Inc()
		s.finishRun(w, lg, runID, &req, opts, g, cgra, out.m, out.res, out.cout, out.err)
	case <-r.Context().Done():
		// Client hung up mid-run: tear the sweep down and give the slot
		// back only after every speculative attempt has unwound.
		cancelRun()
		out := <-done
		release()
		s.mReqs.With(string(mapper), "canceled").Inc()
		lg.Warn("client disconnected mid-run; sweep torn down")
		s.recordRun(lg, runID, &req, opts, g, cgra, out.res, out.cout)
	case <-deadline.C:
		s.mReqs.With(string(mapper), "timeout").Inc()
		lg.Warn("mapping run exceeded the request timeout", "timeout_ms", s.cfg.RequestTimeout.Milliseconds())
		writeJSON(w, http.StatusGatewayTimeout,
			errorResponse{Error: fmt.Sprintf("mapping exceeded the %s request timeout", s.cfg.RequestTimeout)})
		// Cancel, then drain in the background so the torn-down run is
		// still recorded; its worker slot frees only once the sweep has
		// fully unwound (fast — cancellation lands within one iteration),
		// which is what keeps abandoned runs from over-subscribing the
		// pool or leaking speculative attempts past their request.
		cancelRun()
		go func() {
			out := <-done
			release()
			s.recordRun(lg, runID, &req, opts, g, cgra, out.res, out.cout)
		}()
	}
}

// clampSweep caps a request's speculative II-sweep window so that the
// worst case — every worker slot running a maximally speculative sweep —
// stays within GOMAXPROCS: cap = max(1, GOMAXPROCS/Workers).
func (s *server) clampSweep(want int) int {
	cap_ := runtime.GOMAXPROCS(0) / s.cfg.Workers
	if cap_ < 1 {
		cap_ = 1
	}
	if want > cap_ {
		return cap_
	}
	if want < 1 {
		return 1
	}
	return want
}

// boolOutcome maps a run's success flag to the requests_total outcome
// label.
func boolOutcome(ok bool) string {
	if ok {
		return "ok"
	}
	return "failed"
}

// buildOpts builds one run's engine options from a validated request:
// effective budgets, clamped sweep window, a private tracer and
// diagnostics collector, the request-scoped logger, and the server's
// shared result cache. bus is the async job's progress stream (nil for
// synchronous runs: nothing subscribes before the answer, so there is
// nothing to stream to).
func (s *server) buildOpts(req *mapRequest, mapper rewire.MapperName, lg *obs.Logger, bus *rewire.ProgressBus) rewire.Options {
	opts := rewire.Options{
		Mapper:           mapper,
		Seed:             req.Seed,
		TimePerII:        effectiveTPI(req),
		MaxII:            req.MaxII,
		SweepParallelism: s.clampSweep(req.SweepParallelism),
		Tracer:           rewire.NewTracer(),
		Logger:           obs.New(lg.Slog()),
		Cache:            s.cache,
		Diag:             rewire.NewDiagCollector(),
		Progress:         bus,
	}
	if mapper == rewire.MapperPortfolio {
		opts.PortfolioBackends = portfolio.ParseBackends(req.PortfolioBackends)
		// A zero width races one lane per backend; resolve it here so the
		// same oversubscription clamp as the sweep window applies. The
		// committed result is width-independent, so clamping only affects
		// wall-clock.
		want := req.PortfolioParallelism
		if want == 0 {
			want = len(opts.PortfolioBackends)
			if want == 0 {
				want = len(portfolio.Order())
			}
		}
		opts.PortfolioParallelism = s.clampSweep(want)
	}
	return opts
}

// effectiveTPI resolves a request's per-II budget to what the engine
// will actually run with. Fingerprinting uses the same resolution, so
// "default budget" and "2000ms" share a cache entry.
func effectiveTPI(req *mapRequest) time.Duration {
	if req.TimePerII == 0 {
		return 2 * time.Second
	}
	return time.Duration(req.TimePerII) * time.Millisecond
}

// finishRun records a completed run and writes the success/failure
// answer.
func (s *server) finishRun(w http.ResponseWriter, lg *obs.Logger, runID string, req *mapRequest,
	opts rewire.Options, g *rewire.DFG, cgra *rewire.CGRA,
	m *rewire.Mapping, res rewire.Result, cout rewire.CacheOutcome, mapErr error) {
	rec := s.recordRun(lg, runID, req, opts, g, cgra, res, cout)
	resp := buildMapResponse(runID, opts, m, res, rec, cout, mapErr, req.Render)
	// A valid request whose kernel has no feasible schedule is a result,
	// not a server error: 200 with success=false.
	writeJSON(w, http.StatusOK, resp)
}

// buildMapResponse renders one finished (or cache-served) run as the
// wire answer shared by /map, /map/batch entries and async jobs.
func buildMapResponse(runID string, opts rewire.Options, m *rewire.Mapping, res rewire.Result,
	rec runRecord, cout rewire.CacheOutcome, mapErr error, render bool) mapResponse {
	resp := mapResponse{
		RunID:      runID,
		Success:    res.Success,
		Mapper:     string(opts.Mapper),
		Kernel:     res.Kernel,
		Arch:       res.Arch,
		II:         res.II,
		MII:        res.MII,
		DurationMS: float64(res.Duration.Microseconds()) / 1000,
		Counters:   rec.Counters,
		TraceURL:   "/runs/" + runID + "/trace",
		Cached:     cout.Hit,
		ReportURL:  "/runs/" + runID + "/report",
	}
	if mapErr != nil {
		resp.Error = mapErr.Error()
	}
	if res.Portfolio != nil {
		resp.WinnerBackend = res.Portfolio.WinnerBackend
	}
	if !res.Success {
		resp.Report = rec.report.Summary()
	}
	if render && m != nil {
		resp.Grid = rewire.Render(m)
	}
	return resp
}

// recordRun folds the run's tracer into the metrics registry, files
// the flight-recorder entry and appends the run to the QoR ledger. It
// is the single bookkeeping point for every completion path — the
// on-time answer, the detached post-timeout drain, batch entries and
// async jobs. g and cgra carry the compiled graph and fabric for the
// ledger's content fingerprints.
func (s *server) recordRun(lg *obs.Logger, runID string, req *mapRequest,
	opts rewire.Options, g *rewire.DFG, cgra *rewire.CGRA,
	res rewire.Result, cout rewire.CacheOutcome) runRecord {
	// requests_total is incremented by the caller (exactly once per
	// request, whatever the outcome label); this method records the
	// run-quality metrics, which apply on every completion path.
	mapper := string(opts.Mapper)
	s.mDur.With(mapper).Observe(res.Duration.Seconds())
	if res.Success {
		s.mII.With(mapper).Observe(float64(res.II))
		s.mSlack.With(mapper).Observe(float64(res.II - res.MII))
	}
	s.mAmend.With(mapper).Observe(float64(res.ClusterAmendments))
	if res.Portfolio != nil {
		for _, b := range res.Portfolio.PerBackend {
			s.mPfLanes.With(b.Backend).Add(int64(b.Launched))
			s.mPfWins.With(b.Backend).Add(int64(b.Won))
			s.mPfCancelled.With(b.Backend).Add(int64(b.Cancelled))
			s.mPfWastedMS.With(b.Backend).Add(b.WastedMS)
		}
	}
	metrics.FoldTracer(s.reg, opts.Tracer)
	report := opts.Diag.Report()
	if report != nil {
		s.mDiagReports.With(boolOutcome(res.Success)).Inc()
		s.mDiagContest.Observe(float64(len(report.Contested)))
	}

	rec := runRecord{
		ID:         runID,
		Time:       time.Now().UTC(),
		Kernel:     res.Kernel,
		Arch:       res.Arch,
		Mapper:     mapper,
		Seed:       req.Seed,
		Success:    res.Success,
		II:         res.II,
		MII:        res.MII,
		DurationMS: float64(res.Duration.Microseconds()) / 1000,
		Counters:   opts.Tracer.CounterTotals(),
		tracer:     opts.Tracer,
		report:     report,
	}
	if res.Portfolio != nil {
		rec.WinnerBackend = res.Portfolio.WinnerBackend
	}
	s.flight.add(rec)

	e := ledger.Entry{
		Source: "serve",
		Kernel: res.Kernel, Arch: res.Arch, Mapper: mapper, Seed: req.Seed,
		Success: res.Success, Cached: cout.Hit || cout.Shared,
		II: res.II, MII: res.MII,
		CompileMS:     float64(res.Duration.Microseconds()) / 1000,
		WinnerBackend: rec.WinnerBackend,
	}
	if g != nil && cgra != nil {
		fpReq := resultcache.Request{
			Mapper: mapper, Seed: req.Seed, TimePerII: opts.TimePerII, MaxII: req.MaxII,
		}
		if opts.Mapper == rewire.MapperPortfolio {
			// Canonical already validated in parseMapRequest.
			fpReq.Backends, _ = portfolio.Canonical(opts.PortfolioBackends)
		}
		e.DFGFP, e.ArchFP, e.OptsFP = ledger.Fingerprints(g, cgra, fpReq)
	}
	e.AttachReport(report)
	if err := s.led.Append(e); err != nil {
		lg.Error("ledger append failed", "err", err)
	}

	lg.Info("run recorded", "mapper", mapper, "kernel", res.Kernel, "arch", res.Arch,
		"success", res.Success, "ii", res.II, "mii", res.MII,
		"duration_ms", res.Duration.Milliseconds())
	return rec
}

// qorResponse is the GET /qor answer: the ledger's aggregate view.
type qorResponse struct {
	Runs   int            `json:"runs"`
	Groups []qorGroup     `json:"groups"`
	Ledger string         `json:"ledger,omitempty"` // backing file, "" when in-memory
	Build  buildinfo.Info `json:"build"`
}

// qorGroup is one (kernel, arch, mapper) aggregate on the wire.
type qorGroup struct {
	Kernel      string  `json:"kernel"`
	Arch        string  `json:"arch"`
	Mapper      string  `json:"mapper"`
	Runs        int     `json:"runs"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	BestII      int     `json:"best_ii,omitempty"`
	MII         int     `json:"mii"`
	MedianMS    float64 `json:"median_compile_ms"`
	LastTSMS    int64   `json:"last_ts_ms"`
}

// handleQoR serves the ledger aggregates as JSON.
func (s *server) handleQoR(w http.ResponseWriter, _ *http.Request) {
	entries := s.led.Entries()
	groups := ledger.Aggregate(entries)
	out := qorResponse{Runs: len(entries), Groups: make([]qorGroup, 0, len(groups)),
		Ledger: s.led.Path(), Build: buildinfo.Get()}
	for _, g := range groups {
		out.Groups = append(out.Groups, qorGroup{
			Kernel: g.Kernel, Arch: g.Arch, Mapper: g.Mapper,
			Runs: g.Runs, Successes: g.Successes, SuccessRate: g.SuccessRate(),
			BestII: g.BestII, MII: g.MII,
			MedianMS: ledger.Median(g.CompileMS), LastTSMS: g.LastTSMS,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQoRHTML serves the QoR dashboard as a self-contained page.
func (s *server) handleQoRHTML(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, viz.RenderQoRHTML(s.led.Entries()))
}

// metricsHandler refreshes the process gauges and cache counters, then
// renders.
func (s *server) metricsHandler() http.Handler {
	inner := s.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.proc.Refresh()
		s.refreshCacheCounters()
		inner.ServeHTTP(w, r)
	})
}

// refreshCacheCounters folds the cumulative cache stats — process-wide
// substrate caches plus this server's result cache — into the registry
// counters as deltas since the previous scrape (the mutex keeps
// concurrent scrapes from double-counting a delta).
func (s *server) refreshCacheCounters() {
	mh, mm := mrrg.CacheStats()
	dh, dm := dist.CacheStats()
	rc := s.cache.Stats() // nil cache reads all-zero
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.mMRRGHits.Add(mh - s.lastCache[0])
	s.mMRRGMisses.Add(mm - s.lastCache[1])
	s.mDistHits.Add(dh - s.lastCache[2])
	s.mDistMisses.Add(dm - s.lastCache[3])
	s.mRCHits.Add(rc.Hits - s.lastCache[4])
	s.mRCMisses.Add(rc.Misses - s.lastCache[5])
	s.mRCEvicts.Add(rc.Evictions - s.lastCache[6])
	s.mRCShared.Add(rc.SingleflightShared - s.lastCache[7])
	s.lastCache = [8]int64{mh, mm, dh, dm, rc.Hits, rc.Misses, rc.Evictions, rc.SingleflightShared}
}

// handleHealthz: liveness — the process answers.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz: readiness — warmup done and not draining.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "warming up"})
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// warmup loads the kernel registry once so the first request doesn't
// pay for it, then flips readiness.
func (s *server) warmup() {
	for _, name := range rewire.Kernels() {
		if _, err := rewire.LoadKernel(name); err != nil {
			s.lg.Error("kernel failed to load during warmup", "kernel", name, "err", err)
		}
	}
	s.ready.Store(true)
	s.lg.Info("ready", "workers", s.cfg.Workers, "flight_size", s.cfg.FlightSize)
}

// handleRuns serves the flight recorder, newest first.
func (s *server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.list())
}

// handleRunTrace serves one recorded run's Chrome trace.
func (s *server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.flight.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("run %q is not in the flight recorder (keeps the last %d runs)", id, s.cfg.FlightSize)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "run_"+id+".trace.json"))
	if err := rec.tracer.WriteChromeTrace(w); err != nil {
		s.lg.Error("trace export failed", "run_id", id, "err", err)
	}
}

// handleRunReport serves one recorded run's post-mortem as JSON
// (schema "rewire-report-v1").
func (s *server) handleRunReport(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reportFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, rec.report)
}

// handleRunReportHTML serves the same report as a self-contained HTML
// page.
func (s *server) handleRunReportHTML(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reportFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, rewire.RenderReportHTML(rec.report))
}

// reportFor resolves {id} to a flight-recorder entry that carries a
// report, writing the 404 itself otherwise.
func (s *server) reportFor(w http.ResponseWriter, r *http.Request) (runRecord, bool) {
	id := r.PathValue("id")
	rec, ok := s.flight.get(id)
	if !ok || rec.report == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("run %q has no report in the flight recorder (keeps the last %d runs)", id, s.cfg.FlightSize)})
		return runRecord{}, false
	}
	return rec, true
}

// runRecord is one flight-recorder entry: the run summary plus the
// retained tracer backing the /runs/{id}/trace download.
type runRecord struct {
	ID         string           `json:"run_id"`
	Time       time.Time        `json:"time"`
	Kernel     string           `json:"kernel"`
	Arch       string           `json:"arch"`
	Mapper     string           `json:"mapper"`
	Seed       int64            `json:"seed"`
	Success    bool             `json:"success"`
	II         int              `json:"ii,omitempty"`
	MII        int              `json:"mii"`
	DurationMS float64          `json:"duration_ms"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	// WinnerBackend names the backend whose lane a portfolio run
	// committed; empty for single-mapper runs.
	WinnerBackend string `json:"winner_backend,omitempty"`

	tracer *trace.Tracer
	report *rewire.DiagReport
}

// flightRecorder is a fixed-size ring of the last N runs. Old entries
// fall off the back, releasing their tracers (and span memory) to GC —
// the daemon's trace retention is bounded by construction.
type flightRecorder struct {
	mu   sync.Mutex
	buf  []runRecord
	next int
	full bool
}

func newFlightRecorder(n int) *flightRecorder {
	return &flightRecorder{buf: make([]runRecord, n)}
}

func (f *flightRecorder) add(rec runRecord) {
	f.mu.Lock()
	f.buf[f.next] = rec
	f.next = (f.next + 1) % len(f.buf)
	if f.next == 0 {
		f.full = true
	}
	f.mu.Unlock()
}

// list returns the recorded runs, newest first.
func (f *flightRecorder) list() []runRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.buf)
	}
	out := make([]runRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.buf[(f.next-i+len(f.buf))%len(f.buf)])
	}
	return out
}

func (f *flightRecorder) get(id string) (runRecord, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.buf {
		if r.ID == id {
			return r, true
		}
	}
	return runRecord{}, false
}
