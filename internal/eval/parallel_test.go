package eval

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// smallCombos is a cheap cross-section of the evaluation: a few easy
// kernels on the friendliest fabric, enough for the worker pool to
// interleave runs without making the test slow.
func smallCombos() []Combo {
	all := Combos()
	var out []Combo
	for _, cb := range all {
		if cb.Arch.Name != "4x4r4" {
			continue
		}
		switch cb.Kernel {
		case "atax", "fft", "mvt", "viterbi":
			out = append(out, cb)
		}
	}
	return out
}

// TestRunCombosParallelMatchesSerial is the harness determinism test:
// the same seed at -j 1 and -j 4 must give identical per-combo
// (II, Success) for every mapper, and the verbose progress stream must
// come out in the same canonical order.
//
// Every mapper is work-bounded (RemapsPerII, Patience×Restarts,
// AttemptsPerII) as well as time-bounded; runs are identical across job
// counts exactly when the work bounds bind first, so the test uses a
// wall-clock budget generous enough that contention between workers
// cannot starve a run below its work bound (see docs/CONCURRENCY.md).
func TestRunCombosParallelMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	combos := smallCombos()
	if len(combos) < 3 {
		t.Fatalf("small combo set too small: %d", len(combos))
	}
	base := Config{Seed: 9, TimePerII: time.Hour, MaxII: 12}

	var serialLog, parallelLog bytes.Buffer
	serialCfg := base
	serialCfg.Jobs, serialCfg.Verbose, serialCfg.Out = 1, true, &serialLog
	parallelCfg := base
	parallelCfg.Jobs, parallelCfg.Verbose, parallelCfg.Out = 4, true, &parallelLog

	serial := RunCombos(serialCfg, combos)
	parallel := RunCombos(parallelCfg, combos)

	for _, cb := range combos {
		for _, m := range Mappers {
			s, sok := serial.Get(m, cb)
			p, pok := parallel.Get(m, cb)
			if sok != pok || s.Success != p.Success || s.II != p.II {
				t.Errorf("%s on %s@%s: serial (II=%d ok=%v) vs parallel (II=%d ok=%v)",
					m, cb.Kernel, cb.Arch.Name, s.II, s.Success, p.II, p.Success)
			}
		}
	}

	// The progress streams must list runs in the same order. Durations
	// differ run to run, so compare only the order-bearing prefix of
	// each line (mapper + kernel + arch + status).
	sLines := bytes.Split(serialLog.Bytes(), []byte("\n"))
	pLines := bytes.Split(parallelLog.Bytes(), []byte("\n"))
	if len(sLines) != len(pLines) {
		t.Fatalf("progress line counts differ: %d vs %d", len(sLines), len(pLines))
	}
	for i := range sLines {
		sp, pp := linePrefix(sLines[i]), linePrefix(pLines[i])
		if !bytes.Equal(sp, pp) {
			t.Errorf("progress line %d differs:\n  serial:   %s\n  parallel: %s", i, sp, pp)
		}
	}
}

// linePrefix strips the timing tail of a stats.Result line ("...ms
// remaps=..."), keeping the deterministic identity and status columns.
func linePrefix(line []byte) []byte {
	if i := bytes.Index(line, []byte(")")); i >= 0 {
		return line[:i+1] // "... II=n (MII=m)" / "... FAILED (MII=m)"
	}
	return line
}

// TestRunCombosJobsCap checks that oversized pools degrade gracefully:
// more workers than tasks must not deadlock or drop results.
func TestRunCombosJobsCap(t *testing.T) {
	combos := smallCombos()[:1]
	cfg := Config{Seed: 3, TimePerII: 200 * time.Millisecond, MaxII: 12, Jobs: 32}
	r := RunCombos(cfg, combos)
	if len(r.ByRun) != len(Mappers) {
		t.Fatalf("results = %d, want %d", len(r.ByRun), len(Mappers))
	}
}
