package dfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the classic a->{b,c}->d DFG.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddNode("a", OpLoad)
	b := g.AddNode("b", OpAdd)
	c := g.AddNode("c", OpMul)
	d := g.AddNode("d", OpStore)
	g.AddEdge(a, b, 0)
	g.AddEdge(a, c, 0)
	g.AddEdge(b, d, 0)
	g.AddEdge(c, d, 0)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g := New("t")
	for i := 0; i < 5; i++ {
		if id := g.AddNode("x", OpAdd); id != i {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestParentsChildrenDistinctSorted(t *testing.T) {
	g := New("t")
	a := g.AddNode("a", OpAdd)
	b := g.AddNode("b", OpAdd)
	c := g.AddNode("c", OpAdd)
	// Two parallel edges a->c plus b->c: Parents must deduplicate.
	g.AddEdge(a, c, 0)
	g.AddEdge(a, c, 0)
	g.AddEdge(b, c, 0)
	p := g.Parents(c)
	if len(p) != 2 || p[0] != a || p[1] != b {
		t.Fatalf("Parents(c) = %v, want [%d %d]", p, a, b)
	}
	ch := g.Children(a)
	if len(ch) != 1 || ch[0] != c {
		t.Fatalf("Children(a) = %v, want [%d]", ch, c)
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if e.Dist == 0 && pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderRejectsCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddNode("a", OpAdd)
	b := g.AddNode("b", OpAdd)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected error on distance-0 cycle")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject distance-0 cycle")
	}
}

func TestTopoOrderAllowsRecurrenceCycle(t *testing.T) {
	g := New("acc")
	a := g.AddNode("acc", OpAdd)
	b := g.AddNode("use", OpAdd)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1) // loop-carried back edge
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("recurrence cycle must be allowed: %v", err)
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	g := New("self")
	a := g.AddNode("a", OpAdd)
	g.Edges = append(g.Edges, &Edge{ID: 0, From: a, To: a, Dist: 0})
	g.outs[a] = append(g.outs[a], 0)
	g.ins[a] = append(g.ins[a], 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected self-loop rejection")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New("t")
	g.AddNode("a", OpAdd)
	g.AddEdge(0, 7, 0)
}

func TestRecMIINoRecurrence(t *testing.T) {
	if got := diamond(t).RecMII(); got != 1 {
		t.Fatalf("RecMII = %d, want 1", got)
	}
}

func TestRecMIISimpleAccumulator(t *testing.T) {
	// acc -> mul -> acc with dist 1: cycle latency 2, distance 1 => RecMII 2.
	g := New("acc")
	a := g.AddNode("acc", OpAdd)
	m := g.AddNode("mul", OpMul)
	g.AddEdge(a, m, 0)
	g.AddEdge(m, a, 1)
	if got := g.RecMII(); got != 2 {
		t.Fatalf("RecMII = %d, want 2", got)
	}
}

func TestRecMIILongCycleDist2(t *testing.T) {
	// 4-node cycle, total distance 2 => RecMII = ceil(4/2) = 2.
	g := New("c4")
	n := []int{g.AddNode("a", OpAdd), g.AddNode("b", OpAdd), g.AddNode("c", OpAdd), g.AddNode("d", OpAdd)}
	g.AddEdge(n[0], n[1], 0)
	g.AddEdge(n[1], n[2], 1)
	g.AddEdge(n[2], n[3], 0)
	g.AddEdge(n[3], n[0], 1)
	if got := g.RecMII(); got != 2 {
		t.Fatalf("RecMII = %d, want 2", got)
	}
}

func TestRecMIITightSelfRecurrence(t *testing.T) {
	// Chain of 3 inside a dist-1 cycle => RecMII 3.
	g := New("chain3")
	a := g.AddNode("a", OpAdd)
	b := g.AddNode("b", OpAdd)
	c := g.AddNode("c", OpAdd)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 1)
	if got := g.RecMII(); got != 3 {
		t.Fatalf("RecMII = %d, want 3", got)
	}
}

func TestResMII(t *testing.T) {
	g := New("res")
	for i := 0; i < 20; i++ {
		op := OpAdd
		if i < 6 {
			op = OpLoad
		}
		g.AddNode("x", op)
	}
	// 20 ops / 16 PEs => 2; 6 mem / 4 memPEs => 2; 6 mem / 2 banks => 3.
	if got := g.ResMII(16, 4, 2); got != 3 {
		t.Fatalf("ResMII = %d, want 3", got)
	}
	// Plenty of everything => ceil(20/64) = 1.
	if got := g.ResMII(64, 16, 8); got != 1 {
		t.Fatalf("ResMII = %d, want 1", got)
	}
}

func TestResMIIMemWithoutMemPEs(t *testing.T) {
	g := New("m")
	g.AddNode("ld", OpLoad)
	if got := g.ResMII(16, 0, 2); got < 1<<20 {
		t.Fatalf("ResMII = %d, want effectively infinite", got)
	}
}

func TestASAPDiamond(t *testing.T) {
	g := diamond(t)
	asap, err := g.ASAP(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if asap[i] != w {
			t.Fatalf("ASAP = %v, want %v", asap, want)
		}
	}
}

func TestASAPInfeasibleBelowRecMII(t *testing.T) {
	g := New("acc")
	a := g.AddNode("a", OpAdd)
	b := g.AddNode("b", OpAdd)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 1) // RecMII 2
	if _, err := g.ASAP(1); err == nil {
		t.Fatal("ASAP(1) must fail when RecMII is 2")
	}
	if _, err := g.ASAP(2); err != nil {
		t.Fatalf("ASAP(2) should succeed: %v", err)
	}
}

func TestALAPRespectsEdgesAndHorizon(t *testing.T) {
	g := diamond(t)
	alap, err := g.ALAP(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if alap[e.To]-alap[e.From] < OpLatency-e.Dist*1 {
			t.Fatalf("ALAP %v violates edge %d->%d", alap, e.From, e.To)
		}
	}
	for _, v := range alap {
		if v > 5 {
			t.Fatalf("ALAP %v exceeds horizon", alap)
		}
	}
	if alap[3] != 5 {
		t.Fatalf("sink ALAP = %d, want horizon 5", alap[3])
	}
}

func TestALAPHorizonTooSmall(t *testing.T) {
	g := diamond(t)
	if _, err := g.ALAP(1, 1); err == nil {
		t.Fatal("expected failure: horizon 1 < critical path 2")
	}
}

func TestCriticalPathLen(t *testing.T) {
	if got := diamond(t).CriticalPathLen(); got != 3 {
		t.Fatalf("CriticalPathLen = %d, want 3", got)
	}
}

func TestLongestPathWithin(t *testing.T) {
	g := diamond(t)
	all := []bool{true, true, true, true}
	if got := g.LongestPathWithin(all); got != 2 {
		t.Fatalf("LongestPathWithin(all) = %d, want 2 edges", got)
	}
	sub := []bool{false, true, false, true}
	if got := g.LongestPathWithin(sub); got != 1 {
		t.Fatalf("LongestPathWithin({b,d}) = %d, want 1", got)
	}
	if got := g.LongestPathWithin([]bool{true}); got != 0 {
		t.Fatalf("singleton longest path = %d, want 0", got)
	}
}

func TestUndirectedDistances(t *testing.T) {
	g := diamond(t)
	d := g.UndirectedDistances([]bool{true})
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("UndirectedDistances = %v, want %v", d, want)
		}
	}
}

func TestDOTContainsAllNodesAndEdges(t *testing.T) {
	g := diamond(t)
	g.AddEdge(3, 0, 1)
	dot := g.DOT()
	if !strings.Contains(dot, "n0 ->") || !strings.Contains(dot, "style=dashed") {
		t.Fatalf("DOT output missing content:\n%s", dot)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddNode("extra", OpAdd)
	if g.NumNodes() == c.NumNodes() {
		t.Fatal("clone shares node storage with original")
	}
	if c.Edges[0].From != g.Edges[0].From {
		t.Fatal("clone lost edge data")
	}
}

func TestOpKindString(t *testing.T) {
	if OpMul.String() != "mul" || OpStore.String() != "store" {
		t.Fatal("OpKind names wrong")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Fatal("IsMem misclassifies")
	}
}

// --- property tests ---

func randCfg(seed int64) (RandomConfig, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return RandomConfig{
		Nodes:     2 + rng.Intn(40),
		EdgeProb:  rng.Float64() * 0.25,
		MemFrac:   rng.Float64() * 0.4,
		RecurProb: rng.Float64() * 0.3,
		MaxFanIn:  2,
	}, rng
}

func TestPropRandomGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		cfg, rng := randCfg(seed)
		g := Random(rng, cfg)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTopoOrderIsPermutationRespectingEdges(t *testing.T) {
	f := func(seed int64) bool {
		cfg, rng := randCfg(seed)
		g := Random(rng, cfg)
		order, err := g.TopoOrder()
		if err != nil || len(order) != g.NumNodes() {
			return false
		}
		pos := make([]int, g.NumNodes())
		seen := make([]bool, g.NumNodes())
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		for _, e := range g.Edges {
			if e.Dist == 0 && pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropASAPFeasibleAtRecMII(t *testing.T) {
	f := func(seed int64) bool {
		cfg, rng := randCfg(seed)
		g := Random(rng, cfg)
		rec := g.RecMII()
		if rec < 1 {
			return false
		}
		// Feasible at RecMII, and every ASAP satisfies all constraints.
		asap, err := g.ASAP(rec)
		if err != nil {
			return false
		}
		for _, e := range g.Edges {
			if asap[e.To] < asap[e.From]+OpLatency-rec*e.Dist {
				return false
			}
		}
		// Infeasible one below RecMII unless RecMII == 1.
		if rec > 1 {
			if _, err := g.ASAP(rec - 1); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropALAPBoundsASAP(t *testing.T) {
	f := func(seed int64) bool {
		cfg, rng := randCfg(seed)
		g := Random(rng, cfg)
		ii := g.RecMII()
		asap, err := g.ASAP(ii)
		if err != nil {
			return false
		}
		maxT := 0
		for _, v := range asap {
			if v > maxT {
				maxT = v
			}
		}
		alap, err := g.ALAP(ii, maxT)
		if err != nil {
			return false
		}
		for i := range asap {
			if asap[i] > alap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
