// Simulate: take a kernel from source to silicon-in-software — map it,
// lower the mapping to the CGRA's cycle-by-cycle configuration, execute
// that configuration on the cycle-accurate simulator, and check the
// observed store stream against the reference interpreter.
package main

import (
	"fmt"
	"log"

	"rewire"
)

const kernelSrc = `
kernel ewma
param alpha
# exponentially weighted moving average with a running peak detector
x = in[i] * alpha
avg += x
out[i] = avg
pk = max(avg, avg@1)
peak[i] = pk
`

func main() {
	g, err := rewire.ParseKernel(kernelSrc, 1)
	if err != nil {
		log.Fatal(err)
	}
	cgra := rewire.New4x4(2)
	fmt.Println(g.Stats())

	m, res, err := rewire.Map(g, cgra, rewire.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped at II=%d (MII %d)\n\n", res.II, res.MII)

	// Lower to the hardware configuration and show the config words.
	cfg, err := rewire.GenerateConfig(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cfg.Disassemble())

	// Run 8 loop iterations on the cycle-accurate machine.
	const iterations = 8
	got, err := rewire.Simulate(cfg, iterations)
	if err != nil {
		log.Fatal(err)
	}
	want, err := rewire.Interpret(g, iterations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated store streams:")
	for node, vals := range got.Stores {
		fmt.Printf("  %-12s %v\n", g.Nodes[node].Name, vals)
	}
	if err := want.Equal(got); err != nil {
		log.Fatalf("simulation diverged from reference: %v", err)
	}
	fmt.Println("\nsimulation matches the reference interpreter — the mapping,")
	fmt.Println("routing and generated configuration are functionally correct.")
}
