package route

import (
	"math/rand"
	"testing"

	"rewire/internal/arch"
	"rewire/internal/mrrg"
)

// TestTorusWrapNotOverPruned is the regression test for the Manhattan
// over-prune bug: arch.Manhattan deliberately ignores wrap links, so the
// old Manhattan-based feasibility prune rejected exact-latency states
// that a torus wrap link makes reachable. The oracle-based prune must
// keep them.
func TestTorusWrapNotOverPruned(t *testing.T) {
	a := arch.New("torus4x4", 4, 4, 2, 2, 0)
	a.Torus = true
	g := mrrg.New(a, 4)
	r := NewRouter(g, DefaultMaxLat(4, 4, 4))

	// Premise of the regression: PE 0 -> PE 3 is one west wrap hop, but
	// Manhattan says three mesh hops, so the old prune rejected lat 2.
	if a.Manhattan(0, 3)+1 <= 2 {
		t.Fatal("premise broken: Manhattan no longer over-estimates the wrap pair")
	}
	if got := r.NeedCycles(0, 3); got != 2 {
		t.Fatalf("NeedCycles(0,3) on torus = %d, want 2 (one wrap hop + FU entry)", got)
	}
	path, ok := r.FindPath(g.FU(0, 0), g.FU(3, 2), 2, freeCost, 1)
	if !ok || len(path) != 1 {
		t.Fatalf("wrap-link route lost to the prune: path=%v ok=%v", path, ok)
	}
	if path[0] != g.Link(0, arch.West, 1) {
		t.Fatalf("expected the west wrap link, got %s", g.String(path[0]))
	}

	// Corner to corner: two wrap hops instead of Manhattan's six.
	if got := r.NeedCycles(0, 15); got != 3 {
		t.Fatalf("NeedCycles(0,15) on torus = %d, want 3", got)
	}
	if _, ok := r.FindPath(g.FU(0, 0), g.FU(15, 3), 3, freeCost, 1); !ok {
		t.Fatal("corner-to-corner wrap route at latency 3 not found")
	}
}

// refMinCost is an independent layered-Dijkstra reference for findOnce:
// no heuristic, no distance-oracle prune, no scratch reuse — just the
// admission rules (final hop must be the destination FU at cost 0, the
// destination FU is untouchable mid-path, CostFn gates everything else).
// It returns the minimum total path cost for the exact latency.
func refMinCost(g *mrrg.Graph, src, dst mrrg.Node, lat int, cost CostFn) (float64, bool) {
	type key struct {
		n mrrg.Node
		e int
	}
	type item struct {
		n mrrg.Node
		e int
		c float64
	}
	dist := map[key]float64{{src, 0}: 0}
	pq := []item{{src, 0, 0}}
	for len(pq) > 0 {
		mi := 0
		for i := range pq {
			if pq[i].c < pq[mi].c {
				mi = i
			}
		}
		cur := pq[mi]
		pq[mi] = pq[len(pq)-1]
		pq = pq[:len(pq)-1]
		if d, seen := dist[key{cur.n, cur.e}]; seen && cur.c > d {
			continue
		}
		if cur.n == dst && cur.e == lat {
			return cur.c, true
		}
		if cur.e >= lat {
			continue
		}
		ne := cur.e + 1
		for _, nxt := range g.Succs(cur.n) {
			step := 0.0
			if ne == lat {
				if nxt != dst {
					continue
				}
			} else {
				if nxt == dst && g.Kind(nxt) == mrrg.KindFU {
					continue
				}
				c, usable := cost(nxt, ne)
				if !usable {
					continue
				}
				step = c
			}
			nc := cur.c + step
			k := key{nxt, ne}
			if d, seen := dist[k]; seen && d <= nc {
				continue
			}
			dist[k] = nc
			pq = append(pq, item{nxt, ne, nc})
		}
	}
	return 0, false
}

func pathCost(path []mrrg.Node, cost CostFn) float64 {
	total := 0.0
	for i, n := range path {
		c, ok := cost(n, i+1)
		if !ok {
			return -1
		}
		total += c
	}
	return total
}

// TestAStarMatchesDijkstraCosts checks the optimality claim bit for bit:
// over random fabrics (mesh and torus), random endpoints/latencies, and
// random FP-exact cost tables with unusable resources, findOnce with the
// exact floor returns paths whose total cost equals the reference
// Dijkstra minimum, and fails exactly when the reference fails. floor=0
// (pure Dijkstra ordering) must agree too.
func TestAStarMatchesDijkstraCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	costs := []float64{0.25, 0.5, 1, 2} // exact binary fractions: sums are FP-exact
	for trial := 0; trial < 150; trial++ {
		rows := 3 + rng.Intn(2)
		cols := 3 + rng.Intn(2)
		a := arch.New("rt", rows, cols, 1+rng.Intn(2), 2, 0)
		a.Torus = rng.Intn(2) == 0
		ii := 1 + rng.Intn(3)
		g := mrrg.New(a, ii)
		r := NewRouter(g, DefaultMaxLat(rows, cols, ii))

		// Phase-dependent random cost table; ~1/8 of lookups unusable.
		tbl := make([]uint8, g.NumNodes()*(r.MaxLat()+1))
		for i := range tbl {
			tbl[i] = uint8(rng.Intn(8))
		}
		cost := func(n mrrg.Node, phase int) (float64, bool) {
			v := tbl[int(n)*(r.MaxLat()+1)+phase%(r.MaxLat()+1)]
			if v == 7 {
				return 0, false
			}
			return costs[v%4], true
		}

		src := g.FU(rng.Intn(a.NumPEs()), rng.Intn(ii))
		dst := g.FU(rng.Intn(a.NumPEs()), rng.Intn(ii))
		lat := 1 + rng.Intn(8)
		want, wantOK := refMinCost(g, src, dst, lat, cost)

		for _, floor := range []float64{0.25, 0} {
			ban := bumpEpoch(&r.banEpoch, r.banStamp)
			path, ok := r.findOnce(src, dst, lat, cost, floor, ban)
			if ok != wantOK {
				t.Fatalf("trial %d floor %v: found=%v, reference says %v (lat %d)", trial, floor, ok, wantOK, lat)
			}
			if !ok {
				continue
			}
			if got := pathCost(path, cost); got != want {
				t.Fatalf("trial %d floor %v: path cost %v != Dijkstra minimum %v", trial, floor, got, want)
			}
		}
	}
}

// TestFindPathDeterministic pins the deterministic tie-break: two fresh
// routers over the same graph must return identical paths for an
// identical call sequence, and a reused router must agree with a fresh
// one (epoch-stamped scratch may not leak across calls).
func TestFindPathDeterministic(t *testing.T) {
	a := arch.New("det", 4, 4, 2, 2, 0)
	a.Torus = true
	g := mrrg.New(a, 3)
	r1 := NewRouter(g, DefaultMaxLat(4, 4, 3))
	r2 := NewRouter(g, DefaultMaxLat(4, 4, 3))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		src := g.FU(rng.Intn(16), rng.Intn(3))
		dst := g.FU(rng.Intn(16), rng.Intn(3))
		lat := 1 + rng.Intn(8)
		p1, ok1 := r1.FindPath(src, dst, lat, freeCost, 1)
		fresh := NewRouter(g, DefaultMaxLat(4, 4, 3))
		p2, ok2 := r2.FindPath(src, dst, lat, freeCost, 1)
		p3, ok3 := fresh.FindPath(src, dst, lat, freeCost, 1)
		if ok1 != ok2 || ok1 != ok3 {
			t.Fatalf("call %d: ok diverged: %v/%v/%v", i, ok1, ok2, ok3)
		}
		for j := range p1 {
			if p1[j] != p2[j] || p1[j] != p3[j] {
				t.Fatalf("call %d: paths diverged at hop %d", i, j)
			}
		}
	}
}
