// Package sweep implements the speculative initiation-interval sweep
// engine shared by the three mappers (Rewire, PF*, SA). An II sweep
// explores II = MII, MII+1, ... until one II admits a valid mapping;
// the attempts are independent until one succeeds, so a bounded window
// of them may run concurrently. The engine launches up to Parallelism
// attempts at the lowest unresolved IIs, slides the window upward as
// low IIs fail, cancels every attempt above an II that succeeded (their
// outcome can no longer matter), and commits deterministically: the
// committed result is always the lowest feasible II's, and attempts at
// or below the committed II are never cancelled, so they run exactly as
// the serial sweep would.
//
// Determinism contract: an Attempt must be a pure function of its II —
// derive all randomness via SeedForII, own all mutable state, and share
// only immutable inputs with concurrent attempts. Under that contract
// the committed (II, result) and the ordered list of failed results
// below it are bit-identical at every Parallelism, including 1 (the
// serial sweep). See docs/CONCURRENCY.md, "Layer 3".
package sweep

import (
	"context"
	"time"

	"rewire/internal/diag"
	"rewire/internal/obs"
	"rewire/internal/trace"
)

// Attempt runs one II attempt and reports whether the II is feasible.
// ctx is cancelled when the attempt's outcome can no longer be
// committed (a lower II succeeded, or the whole run was cancelled); a
// cancelled attempt should return promptly — poll via a Pacer — and its
// result is discarded either way.
type Attempt[R any] func(ctx context.Context, ii int) (R, bool)

// Options tunes one sweep.
type Options struct {
	// Parallelism is the speculative window width: how many II attempts
	// may run concurrently. 0 or 1 is the serial sweep (still executed
	// through the engine, so instrumentation and cancellation behave
	// identically).
	Parallelism int
	// Tracer receives the sweep span, one sweep.attempt span per attempt,
	// and the sweep.* work counters. nil disables tracing.
	Tracer *trace.Tracer
	// Parent is the span the sweep span nests under (usually the
	// mapper's root span). nil with a non-nil Tracer makes it a root.
	Parent *trace.Span
	// Logger receives sweep-level debug records. nil disables logging.
	Logger *obs.Logger
	// Progress receives one ii_start event per launched II attempt and
	// one ii_end event per received result — the sweep-boundary feed of
	// the live progress stream (see internal/diag). nil disables
	// publishing at one pointer check per boundary.
	Progress *diag.Bus
	// Lane maps an attempt index onto the (II, lane label) it stands
	// for. The engine sweeps a contiguous index range and by default an
	// index is its own II with an empty lane label; portfolio racing
	// flattens (II, backend) pairs onto indices and installs Lane so
	// spans and progress events report the real II and the backend
	// label instead of the raw index. nil is the identity.
	Lane func(i int) (ii int, lane string)
}

// slot is one in-flight or finished attempt.
type slot[R any] struct {
	ii         int
	cancel     context.CancelFunc
	cancelSent bool
	val        R
	ok         bool
	elapsed    time.Duration
}

// Run sweeps ii = lo..hi through attempt and commits the lowest
// feasible II. It returns the committed value and II, the failed values
// of every II below the committed one in ascending order, and whether
// any II succeeded (on failure, below holds every attempted II's value
// lo..hi ascending). Cancelling ctx aborts the sweep: in-flight
// attempts are cancelled, drained, and the sweep reports failure.
func Run[R any](ctx context.Context, lo, hi int, attempt Attempt[R], opt Options) (winner R, winnerII int, below []R, ok bool) {
	var zero R
	if hi < lo {
		return zero, 0, nil, false
	}
	w := opt.Parallelism
	if w < 1 {
		w = 1
	}
	if span := hi - lo + 1; w > span {
		w = span
	}

	tr := opt.Tracer
	launchedCtr := tr.Counter("sweep.attempts")
	specCtr := tr.Counter("sweep.speculative")
	cancelCtr := tr.Counter("sweep.cancelled")
	wastedCtr := tr.Counter("sweep.wasted_ms")
	sweepSpan := tr.StartSpan(opt.Parent, "sweep").
		WithInt("lo", int64(lo)).WithInt("hi", int64(hi)).WithInt("window", int64(w))
	lg := opt.Logger
	laneOf := func(i int) (int, string) {
		if opt.Lane != nil {
			return opt.Lane(i)
		}
		return i, ""
	}

	results := make(chan *slot[R])
	pending := map[int]*slot[R]{} // launched, result not yet received
	done := map[int]*slot[R]{}    // received, not yet consumed in II order
	next := lo                    // next II to launch
	resolve := lo                 // lowest unresolved II
	lowestOK := hi + 1            // lowest II known feasible so far

	launch := func(ii int) {
		actx, cancel := context.WithCancel(ctx)
		s := &slot[R]{ii: ii, cancel: cancel}
		pending[ii] = s
		launchedCtr.Add(1)
		eventII, lane := laneOf(ii)
		opt.Progress.Publish(diag.Event{Type: "ii_start", II: eventII, Lane: lane})
		if ii > resolve {
			specCtr.Add(1)
		}
		go func() {
			t0 := time.Now()
			asp := tr.StartSpan(sweepSpan, "sweep.attempt").WithInt("ii", int64(eventII))
			if lane != "" {
				asp.WithStr("lane", lane)
			}
			s.val, s.ok = attempt(actx, ii)
			s.elapsed = time.Since(t0)
			asp.WithBool("ok", s.ok).WithBool("cancelled", actx.Err() != nil).End()
			results <- s
		}()
	}
	// cancelAbove signals every in-flight attempt above ii; the engine
	// still drains their results (no goroutine outlives Run).
	cancelAbove := func(ii int) {
		for pi, p := range pending {
			if pi > ii && !p.cancelSent {
				p.cancelSent = true
				p.cancel()
				cancelCtr.Add(1)
			}
		}
	}
	// drainWasted awaits every in-flight attempt and books the wall-clock
	// of each discarded outcome, done leftovers included.
	drainWasted := func() {
		for len(pending) > 0 {
			s := <-results
			delete(pending, s.ii)
			eventII, lane := laneOf(s.ii)
			opt.Progress.Publish(diag.Event{Type: "ii_end", II: eventII, Lane: lane, Outcome: "cancelled"})
			wastedCtr.Add(s.elapsed.Milliseconds())
		}
		for _, s := range done {
			wastedCtr.Add(s.elapsed.Milliseconds())
		}
	}

	for {
		// Consume strictly in II order, so the commit decision never
		// depends on completion order. Consuming before topping up keeps
		// the resolve cursor honest: a freshly received result advances it
		// before the next launch is classified as speculative or not.
		if s, have := done[resolve]; have {
			delete(done, resolve)
			if s.ok {
				cancelAbove(s.ii)
				drainWasted()
				committedII, committedLane := laneOf(s.ii)
				sweepSpan.WithInt("committed_ii", int64(committedII)).WithBool("ok", true)
				if committedLane != "" {
					sweepSpan.WithStr("lane", committedLane)
				}
				sweepSpan.End()
				if lg.On() {
					lg.Debug("sweep committed", "ii", committedII, "failed_below", len(below))
				}
				return s.val, s.ii, below, true
			}
			below = append(below, s.val)
			resolve++
			continue
		}

		// Top up the window with the lowest IIs that can still matter: at
		// most w in flight, never above a known-feasible II, none once the
		// caller cancelled the whole sweep.
		if ctx.Err() == nil {
			ceil := hi
			if lowestOK-1 < ceil {
				ceil = lowestOK - 1
			}
			for len(pending) < w && next <= ceil {
				launch(next)
				next++
			}
		}

		if len(pending) == 0 {
			// Nothing in flight and nothing consumable: either every II in
			// [lo, hi] failed, or the caller cancelled the sweep before the
			// remaining IIs launched.
			drainWasted()
			sweepSpan.WithBool("ok", false).End()
			return zero, 0, below, false
		}

		s := <-results
		delete(pending, s.ii)
		done[s.ii] = s
		eventII, lane := laneOf(s.ii)
		switch {
		case s.ok:
			opt.Progress.Publish(diag.Event{Type: "ii_end", II: eventII, Lane: lane, Outcome: "ok"})
		case s.cancelSent:
			opt.Progress.Publish(diag.Event{Type: "ii_end", II: eventII, Lane: lane, Outcome: "cancelled"})
		default:
			opt.Progress.Publish(diag.Event{Type: "ii_end", II: eventII, Lane: lane, Outcome: "failed"})
		}
		if s.ok && s.ii < lowestOK {
			lowestOK = s.ii
			// Attempts above a feasible II are moot; attempts at or below
			// it keep running untouched (one of them is the commit).
			cancelAbove(s.ii)
		}
	}
}
