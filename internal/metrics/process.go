package metrics

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"rewire/internal/buildinfo"
)

// ProcessCollector owns the process-health metrics every rewire daemon
// exports — uptime, live goroutines, allocated heap, and the garbage
// collector's pause/cycle/pacing telemetry — plus the rewire_build_info
// identity gauge. Registering once and calling Refresh from the scrape
// handler keeps the values current without a background goroutine; the
// build-info gauge is constant (value 1, the identity lives in its
// labels) and needs no refresh.
//
// The GC metrics matter to this repo specifically because the mapping
// hot paths are pool-backed (docs/PERFORMANCE.md, "Memory
// architecture"): a regression that un-pools a hot buffer shows up in
// production as rising rewire_process_gc_pause_seconds_total and
// gc_cycles rates long before anyone reruns the benchmarks.
//
// A nil *ProcessCollector (from registering on a nil registry) is the
// disabled collector: Refresh is a no-op.
type ProcessCollector struct {
	start  time.Time
	uptime *Gauge
	goros  *Gauge
	heap   *Gauge

	gcPause  *FloatCounter
	gcCycles *Gauge
	nextGC   *Gauge
	// lastPauseNs tracks the previously exported PauseTotalNs so each
	// Refresh adds only the delta to the monotonic pause counter; CAS
	// keeps concurrent scrapes from double-counting a delta.
	lastPauseNs atomic.Uint64
}

// RegisterProcess registers the process gauges on reg and returns the
// collector whose Refresh updates them. The build-info gauge is set
// here, once, from the binary's own build metadata.
func RegisterProcess(reg *Registry) *ProcessCollector {
	if reg == nil {
		return nil
	}
	bi := buildinfo.Get()
	reg.NewGaugeVec("rewire_build_info",
		"Build identity of the running binary (value is always 1; the identity is in the labels).",
		"go_version", "vcs_revision", "modified").
		With(bi.GoVersion, bi.Revision, strconv.FormatBool(bi.Modified)).Set(1)
	return &ProcessCollector{
		start: time.Now(),
		uptime: reg.NewGauge("rewire_process_uptime_seconds",
			"Seconds since the process started."),
		goros: reg.NewGauge("rewire_process_goroutines_units",
			"Live goroutines."),
		heap: reg.NewGauge("rewire_process_heap_alloc_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc)."),
		gcPause: reg.NewFloatCounter("rewire_process_gc_pause_seconds_total",
			"Cumulative stop-the-world GC pause time (runtime.MemStats.PauseTotalNs)."),
		gcCycles: reg.NewGauge("rewire_process_gc_cycles_units",
			"Completed GC cycles since process start (runtime.MemStats.NumGC)."),
		nextGC: reg.NewGauge("rewire_process_next_gc_bytes",
			"Heap size at which the next GC cycle triggers (runtime.MemStats.NextGC)."),
	}
}

// Refresh snapshots the process state into the gauges. Call it from the
// scrape handler, before rendering. Safe on nil.
func (p *ProcessCollector) Refresh() {
	if p == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.uptime.Set(time.Since(p.start).Seconds())
	p.goros.Set(float64(runtime.NumGoroutine()))
	p.heap.Set(float64(ms.HeapAlloc))
	for {
		old := p.lastPauseNs.Load()
		if ms.PauseTotalNs <= old {
			break
		}
		if p.lastPauseNs.CompareAndSwap(old, ms.PauseTotalNs) {
			p.gcPause.Add(float64(ms.PauseTotalNs-old) / 1e9)
			break
		}
	}
	p.gcCycles.Set(float64(ms.NumGC))
	p.nextGC.Set(float64(ms.NextGC))
}
