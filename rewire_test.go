package rewire

import (
	"strings"
	"testing"
	"time"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	if mii := MII(g, cgra); mii < 1 {
		t.Fatalf("MII = %d", mii)
	}
	m, res, err := Map(g, cgra, Options{Seed: 1, TimePerII: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.II < res.MII {
		t.Fatalf("bad result: %v", res)
	}
	if !strings.Contains(Render(m), "cycle 0") {
		t.Fatal("render missing schedule")
	}
	if u, err := RenderUtilisation(m); err != nil || !strings.Contains(u, "fu") {
		t.Fatalf("utilisation: %v %q", err, u)
	}
	if rt, err := RenderRoutes(m); err != nil || rt == "" {
		t.Fatalf("routes: %v", err)
	}
}

func TestAllMappersViaFacade(t *testing.T) {
	g, err := LoadKernel("gesummv")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	for _, name := range []MapperName{MapperRewire, MapperPathFinder, MapperSA} {
		m, res, err := Map(g, cgra, Options{Mapper: name, Seed: 1, TimePerII: 2 * time.Second})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Validate(m); err != nil {
			t.Errorf("%s produced invalid mapping: %v", name, err)
		}
		if res.Mapper == "" {
			t.Errorf("%s: result not labelled", name)
		}
	}
}

func TestMapUnknownMapper(t *testing.T) {
	g, _ := LoadKernel("mvt")
	if _, _, err := Map(g, New4x4(4), Options{Mapper: "magic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMapReportsFailure(t *testing.T) {
	g, _ := LoadKernel("crc") // RecMII 8
	_, res, err := Map(g, New4x4(4), Options{Seed: 1, MaxII: 3, TimePerII: time.Second})
	if err == nil {
		t.Fatal("expected failure below RecMII")
	}
	if res.Success {
		t.Fatal("result claims success")
	}
	if !strings.Contains(err.Error(), "MII=8") {
		t.Fatalf("error should carry MII: %v", err)
	}
}

func TestParseKernelWithUnroll(t *testing.T) {
	src := `
kernel saxpy
param alpha
t = a[i] * alpha + b[i]
y[i] = t
`
	base, err := ParseKernel(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := ParseKernel(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if unrolled.NumNodes() != 2*base.NumNodes() {
		t.Fatalf("unroll: %d vs %d nodes", unrolled.NumNodes(), base.NumNodes())
	}
	if _, err := ParseKernel("not a kernel ?!", 1); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestKernelsRegistryExposed(t *testing.T) {
	names := Kernels()
	if len(names) < 16 {
		t.Fatalf("only %d kernels exposed", len(names))
	}
	for _, n := range names {
		if _, err := LoadKernel(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := LoadKernel("bogus"); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestNewCGRACustom(t *testing.T) {
	c := NewCGRA("test", 3, 5, 2, 2, 0, 4)
	if c.NumPEs() != 15 || c.NumMemPEs() != 6 {
		t.Fatalf("custom CGRA wrong: %v", c)
	}
}

func TestFacadeConfigSimulateEnergy(t *testing.T) {
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Map(g, New4x4(4), Options{Mapper: MapperPathFinder, Seed: 1, TimePerII: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c, err := GenerateConfig(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Disassemble(), "cycle 0") {
		t.Fatal("disassembly empty")
	}
	got, err := Simulate(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Interpret(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Equal(got); err != nil {
		t.Fatal(err)
	}
	if err := VerifyExecution(m, 5); err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateEnergy(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyPerIteration() <= 0 {
		t.Fatal("no energy estimated")
	}
}

func TestFacadeBundleRoundTrip(t *testing.T) {
	g, err := LoadKernel("gesummv")
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Map(g, New4x4(4), Options{Mapper: MapperPathFinder, Seed: 2, TimePerII: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	data, err := SaveMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMapping(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMapping([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeADL(t *testing.T) {
	c, err := ParseArch("cgra t\ngrid 5 x 5\nregs 2\nbanks 3\nmemcols 0 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPEs() != 25 || c.NumMemPEs() != 10 {
		t.Fatalf("parsed: %v", c)
	}
	if _, err := ParseArch(FormatArch(c)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if _, err := ParseArch("grid bogus\n"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
