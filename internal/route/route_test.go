package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

func freeCost(n mrrg.Node, phase int) (float64, bool) { return 1, true }

func sess(t *testing.T, g *dfg.Graph, a *arch.CGRA, ii int) (*mapping.Session, *Router) {
	t.Helper()
	s := mapping.NewSession(mapping.New(g, a, ii))
	return s, ForSession(s)
}

func pair() *dfg.Graph {
	g := dfg.New("pair")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	g.AddEdge(a, b, 0)
	return g
}

func TestAdjacentHopLatencyTwo(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 4)
	src := s.Graph.FU(0, 0)
	dst := s.Graph.FU(1, 2) // east neighbour, 2 cycles later
	path, ok := r.FindPath(src, dst, 2, freeCost, 1)
	if !ok || len(path) != 1 {
		t.Fatalf("path=%v ok=%v", path, ok)
	}
	if path[0] != s.Graph.Link(0, arch.East, 1) {
		t.Fatalf("unexpected hop %s", s.Graph.String(path[0]))
	}
}

func TestSamePEForwardLatencyOne(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 4)
	path, ok := r.FindPath(s.Graph.FU(5, 1), s.Graph.FU(5, 2), 1, freeCost, 1)
	if !ok || len(path) != 0 {
		t.Fatalf("path=%v ok=%v", path, ok)
	}
}

func TestImpossibleLatencyFails(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 4)
	// Distance-3 PE in 2 cycles: impossible.
	if _, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(3, 2), 2, freeCost, 1); ok {
		t.Fatal("found impossible path")
	}
	// Latency 0 or beyond maxLat.
	if _, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(0, 0), 0, freeCost, 1); ok {
		t.Fatal("latency 0 accepted")
	}
	if _, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(0, 1), r.MaxLat()+1, freeCost, 1); ok {
		t.Fatal("latency beyond maxLat accepted")
	}
}

func TestDwellUsesRegister(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 4)
	// Same PE, 3 cycles: must dwell 2 cycles via a register or wander.
	path, ok := r.FindPath(s.Graph.FU(2, 0), s.Graph.FU(2, 3), 3, freeCost, 1)
	if !ok || len(path) != 2 {
		t.Fatalf("path=%v ok=%v", path, ok)
	}
}

func TestRoutingAroundBlockedResources(t *testing.T) {
	g := pair()
	a := arch.New4x4(2)
	s, r := sess(t, g, a, 4)
	st := s.State
	// Block the direct east link at the needed phase.
	direct := s.Graph.Link(0, arch.East, 1)
	if err := st.Reserve(direct, 99, 1); err != nil {
		t.Fatal(err)
	}
	cost := StrictCost(st, 7)
	// Latency 2 now impossible (only the east link does it in one hop).
	if _, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(1, 2), 2, cost, StrictSharedCost); ok {
		t.Fatal("route through foreign reservation")
	}
	// Latency 3 detours (e.g. south then northeast, or reg dwell + hop).
	path, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(1, 3), 3, cost, StrictSharedCost)
	if !ok {
		t.Fatal("no detour found")
	}
	for _, n := range path {
		if n == direct {
			t.Fatal("detour used the blocked link")
		}
	}
}

func TestOwnNetSharingIsCheap(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 4)
	st := s.State
	// Pretend net 7 already routed through the east link at phase 1.
	link := s.Graph.Link(0, arch.East, 1)
	if err := st.Reserve(link, 7, 1); err != nil {
		t.Fatal(err)
	}
	path, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(1, 2), 2, StrictCost(st, 7), StrictSharedCost)
	if !ok || len(path) != 1 || path[0] != link {
		t.Fatal("same-net same-phase resource not reused")
	}
	// Same net but wrong phase is a conflict.
	st2 := mrrg.NewState(s.Graph)
	if err := st2.Reserve(link, 7, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(1, 2), 2, StrictCost(st2, 7), StrictSharedCost); ok {
		t.Fatal("cross-phase sharing allowed")
	}
}

func TestSelfEdgeWholeIILoop(t *testing.T) {
	g := dfg.New("acc")
	a := g.AddNode("acc", dfg.OpAdd)
	g.AddEdge(a, a, 1)
	s, r := sess(t, g, arch.New4x4(4), 3)
	if err := s.PlaceNode(0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := Edge(s, r, 0); err != nil {
		t.Fatal(err)
	}
	if len(s.M.Routes[0]) != 2 {
		t.Fatalf("self-edge route length %d, want II-1=2", len(s.M.Routes[0]))
	}
	if err := mapping.Validate(s.M); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeHelperRoutesAndCommits(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 2)
	if err := s.PlaceNode(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := Edge(s, r, 0); err != nil {
		t.Fatal(err)
	}
	if !s.M.Routed(0) {
		t.Fatal("edge not committed")
	}
	if err := s.CheckPath(0, s.M.Routes[0]); err == nil {
		// CheckPath on an already-routed edge still passes structurally.
		_ = err
	}
}

func TestNodeEdgesRollsBackOnFailure(t *testing.T) {
	// v has two parents; make the second unroutable and check the first
	// edge's resources are released.
	g := dfg.New("fan")
	p1 := g.AddNode("p1", dfg.OpAdd)
	p2 := g.AddNode("p2", dfg.OpAdd)
	v := g.AddNode("v", dfg.OpAdd)
	g.AddEdge(p1, v, 0)
	g.AddEdge(p2, v, 0)
	s, r := sess(t, g, arch.New4x4(1), 2)
	if err := s.PlaceNode(p1, 1, 1); err != nil {
		t.Fatal(err)
	}
	// p2 far away with impossible timing: latency 1 from PE 15 to PE 2.
	if err := s.PlaceNode(p2, 15, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(v, 2, 2); err != nil {
		t.Fatal(err)
	}
	before := s.State.CountOccupied()
	if err := NodeEdges(s, r, v); err == nil {
		t.Fatal("expected failure")
	}
	if got := s.State.CountOccupied(); got != before {
		t.Fatalf("rollback leaked: %d -> %d reservations", before, got)
	}
}

// Property: any path FindPath returns passes the session's structural
// validator and reserves cleanly, for random placements.
func TestPropFoundPathsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ii := 1 + rng.Intn(4)
		a := arch.New4x4(1 + rng.Intn(3))
		g := pair()
		s := mapping.NewSession(mapping.New(g, a, ii))
		r := ForSession(s)
		peA := rng.Intn(16)
		peB := rng.Intn(16)
		tA := rng.Intn(ii)
		lat := 1 + rng.Intn(r.MaxLat()-1)
		tB := tA + lat
		if peA == peB && tA%ii == tB%ii {
			return true // both endpoints on one FU slot: not placeable
		}
		if err := s.PlaceNode(0, peA, tA); err != nil {
			return false
		}
		if err := s.PlaceNode(1, peB, tB); err != nil {
			return false
		}
		path, ok := r.FindPath(s.Graph.FU(peA, tA), s.Graph.FU(peB, tB), lat, StrictCost(s.State, 0), StrictSharedCost)
		if !ok {
			return true // nothing found is fine; validity is what we check
		}
		if err := s.RouteEdge(0, path); err != nil {
			return false
		}
		return mapping.Validate(s.M) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: strict routing never returns a path overlapping foreign
// reservations.
func TestPropStrictRoutingAvoidsForeignNets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ii := 2 + rng.Intn(3)
		a := arch.New4x4(2)
		s := mapping.NewSession(mapping.New(pair(), a, ii))
		r := ForSession(s)
		// Scatter foreign reservations.
		for i := 0; i < 40; i++ {
			n := mrrg.Node(rng.Intn(s.Graph.NumNodes()))
			if s.Graph.Valid(n) && s.State.Free(n) {
				if err := s.State.Reserve(n, 500, rng.Intn(6)); err != nil {
					return false
				}
			}
		}
		if err := s.PlaceNode(0, rng.Intn(16), rng.Intn(ii)); err != nil {
			return true
		}
		lat := 1 + rng.Intn(6)
		if err := s.PlaceNode(1, rng.Intn(16), s.M.Place[0].Time+lat); err != nil {
			return true
		}
		path, ok := r.FindPath(
			s.Graph.FU(s.M.Place[0].PE, s.M.Place[0].Time),
			s.Graph.FU(s.M.Place[1].PE, s.M.Place[1].Time),
			lat, StrictCost(s.State, 0), StrictSharedCost)
		if !ok {
			return true
		}
		for _, n := range path {
			if occ, _ := s.State.Occupant(n); occ != mrrg.NoNet && occ != 0 {
				return false
			}
		}
		return s.RouteEdge(0, path) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPathBanRetryAvoidsDuplicates(t *testing.T) {
	// A long same-PE dwell with a single register forces the search to
	// consider wandering; the router must never return a path that
	// revisits a resource.
	s, r := sess(t, pair(), arch.New4x4(1), 3)
	for lat := 1; lat <= r.MaxLat(); lat++ {
		path, ok := r.FindPath(s.Graph.FU(5, 0), s.Graph.FU(5, lat%3), lat, freeCost, 1)
		if !ok {
			continue
		}
		seen := map[mrrg.Node]bool{}
		for _, n := range path {
			if seen[n] {
				t.Fatalf("lat %d: duplicate resource %s", lat, s.Graph.String(n))
			}
			seen[n] = true
		}
	}
}

func TestRouterExpansionCounter(t *testing.T) {
	s, r := sess(t, pair(), arch.New4x4(2), 3)
	before := r.Expansions
	r.FindPath(s.Graph.FU(0, 0), s.Graph.FU(15, 0), 9, freeCost, 1)
	if r.Expansions <= before {
		t.Fatal("expansion counter did not advance")
	}
}

func TestDefaultMaxLatFloor(t *testing.T) {
	if DefaultMaxLat(1, 1, 1) < 8 {
		t.Fatal("max latency floor lost")
	}
	if DefaultMaxLat(8, 8, 6) < 8+8+12 {
		t.Fatal("max latency does not scale")
	}
}
