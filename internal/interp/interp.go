// Package interp is the reference functional semantics of a DFG: it
// executes the loop kernel iteration by iteration, producing the exact
// store stream a correct CGRA execution must reproduce. The simulator
// (package sim) runs the placed-and-routed configuration cycle by cycle
// against the same synthetic memory and must match this stream —
// end-to-end functional verification of the whole mapping stack.
//
// Semantics shared with the simulator:
//
//   - values are int64 with wrap-around arithmetic;
//   - a load's value is a deterministic function of its node name (the
//     canonical array reference) and the iteration number;
//   - an operand slot with no feeding edge is an immediate whose value
//     derives from the node name and slot (the IR folds params and
//     literals into operations, so the DFG does not carry them);
//   - a loop-carried read of iteration i-d with i < d yields zero
//     (hardware pipelines start from zeroed registers/latches).
package interp

import (
	"fmt"
	"hash/fnv"

	"rewire/internal/dfg"
)

// LoadValue is the synthetic memory content returned by the load node
// named name at the given iteration.
func LoadValue(name string, iteration int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()%100_003) + int64(iteration)*7
}

// ImmValue is the immediate filling an unfed operand slot of the node
// named name.
func ImmValue(name string, slot int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	fmt.Fprintf(h, "#%d", slot)
	return int64(h.Sum64() % 1009)
}

// Eval applies one operation to its operand values. ops is indexed by
// operand slot; missing slots must already be filled with ImmValue.
func Eval(op dfg.OpKind, ops []int64) int64 {
	get := func(i int) int64 {
		if i < len(ops) {
			return ops[i]
		}
		return 0
	}
	a, b := get(0), get(1)
	switch op {
	case dfg.OpAdd:
		return a + b
	case dfg.OpSub:
		return a - b
	case dfg.OpMul:
		return a * b
	case dfg.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case dfg.OpShl:
		return a << uint(b&63)
	case dfg.OpShr:
		return int64(uint64(a) >> uint(b&63))
	case dfg.OpAnd:
		return a & b
	case dfg.OpOr:
		return a | b
	case dfg.OpXor:
		return a ^ b
	case dfg.OpCmp:
		if a > b {
			return 1
		}
		return 0
	case dfg.OpSelect:
		if a != 0 {
			return b
		}
		return get(2)
	case dfg.OpConst, dfg.OpLoad, dfg.OpStore:
		// Handled by the caller (loads read memory, stores record, const
		// yields its immediate); pass slot 0 through for stores.
		return a
	default:
		panic(fmt.Sprintf("interp: unknown op %v", op))
	}
}

// Store is one recorded memory write.
type Store struct {
	// Node is the store node's ID; Name its canonical array reference.
	Node int
	Name string
	// Iteration is the loop iteration that produced the write.
	Iteration int
	// Value is the written value.
	Value int64
}

// Trace is the complete observable behaviour of a kernel execution: the
// ordered store stream per store node.
type Trace struct {
	// Stores maps store node ID -> values by iteration.
	Stores map[int][]int64
}

// Equal compares two traces and describes the first difference.
func (t *Trace) Equal(o *Trace) error {
	if len(t.Stores) != len(o.Stores) {
		return fmt.Errorf("interp: store node sets differ: %d vs %d", len(t.Stores), len(o.Stores))
	}
	for node, vals := range t.Stores {
		ovals, ok := o.Stores[node]
		if !ok {
			return fmt.Errorf("interp: store node %d missing", node)
		}
		if len(vals) != len(ovals) {
			return fmt.Errorf("interp: store node %d: %d vs %d writes", node, len(vals), len(ovals))
		}
		for i := range vals {
			if vals[i] != ovals[i] {
				return fmt.Errorf("interp: store node %d iteration %d: %d vs %d", node, i, vals[i], ovals[i])
			}
		}
	}
	return nil
}

// Run executes iterations 0..iterations-1 of the kernel and returns its
// trace. The DFG must validate (acyclic distance-0 subgraph).
func Run(g *dfg.Graph, iterations int) (*Trace, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// maxOperand[v]: highest slot index the node uses (fed or immediate).
	// Fed slots come from edges; binary ALU ops always have 2 slots,
	// select 3, so unfed trailing slots still get immediates.
	vals := make([][]int64, iterations) // vals[i][v]
	for i := range vals {
		vals[i] = make([]int64, g.NumNodes())
	}
	trace := &Trace{Stores: map[int][]int64{}}
	for i := 0; i < iterations; i++ {
		for _, v := range order {
			node := g.Nodes[v]
			switch node.Op {
			case dfg.OpLoad:
				vals[i][v] = LoadValue(node.Name, i)
			case dfg.OpConst:
				vals[i][v] = ImmValue(node.Name, 0)
			default:
				ops := Operands(g, v, func(producer, dist int) int64 {
					if i-dist < 0 {
						return 0
					}
					return vals[i-dist][producer]
				})
				out := Eval(node.Op, ops)
				vals[i][v] = out
				if node.Op == dfg.OpStore {
					trace.Stores[v] = append(trace.Stores[v], out)
				}
			}
		}
	}
	return trace, nil
}

// Arity returns how many operand slots an operation reads.
func Arity(op dfg.OpKind) int {
	switch op {
	case dfg.OpSelect:
		return 3
	case dfg.OpLoad, dfg.OpConst:
		return 0
	case dfg.OpStore:
		return 1
	default:
		return 2
	}
}

// Operands assembles node v's operand values: fed slots call read with
// the producer and edge distance; unfed slots take the node's immediate.
func Operands(g *dfg.Graph, v int, read func(producer, dist int) int64) []int64 {
	node := g.Nodes[v]
	n := Arity(node.Op)
	for _, eid := range g.InEdges(v) {
		if s := g.Edges[eid].Operand + 1; s > n {
			n = s
		}
	}
	ops := make([]int64, n)
	fed := make([]bool, n)
	for _, eid := range g.InEdges(v) {
		e := g.Edges[eid]
		ops[e.Operand] = read(e.From, e.Dist)
		fed[e.Operand] = true
	}
	for s := range ops {
		if !fed[s] {
			ops[s] = ImmValue(node.Name, s)
		}
	}
	return ops
}
