package kernelir

import "testing"

func TestIndexStringCanonical(t *testing.T) {
	cases := []struct {
		ix   Index
		want string
	}{
		{Index{Terms: []Term{{"i", 1}}}, "i"},
		{Index{Terms: []Term{{"i", 1}}, Const: 2}, "i+2"},
		{Index{Terms: []Term{{"i", 1}}, Const: -1}, "i-1"},
		{Index{Terms: []Term{{"i", -1}}}, "-i"},
		{Index{Terms: []Term{{"i", 2}}}, "2i"},
		{Index{Terms: []Term{}}, "0"},
		{Index{Terms: []Term{{"i", 0}}, Const: 3}, "3"},
		{Index{Terms: []Term{{"i", 1}, {"j", 1}}}, "i+j"},
	}
	for _, c := range cases {
		if got := c.ix.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.ix, got, c.want)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Name: "s"}
	if r.String() != "s" || r.IsArray() {
		t.Fatal("scalar ref wrong")
	}
	a := Ref{Name: "m", Index: []Index{
		{Terms: []Term{{"i", 1}}},
		{Terms: []Term{{"j", 1}}, Const: 1},
	}}
	if a.String() != "m[i][j+1]" || !a.IsArray() {
		t.Fatalf("array ref = %q", a.String())
	}
}

func TestExprStrings(t *testing.T) {
	e := Bin{Op: "+", L: ArrayRead{Array: "a", Index: []Index{{Terms: []Term{{"i", 1}}}}},
		R: Scalar{Name: "t", Delay: 2}}
	if e.String() != "(a[i] + t@2)" {
		t.Fatalf("bin = %q", e.String())
	}
	c := Call{Fn: "max", Args: []Expr{Num{Val: 3}, Scalar{Name: "x"}}}
	if c.String() != "max(3, x)" {
		t.Fatalf("call = %q", c.String())
	}
}

func TestShiftOnlyAffectsVariable(t *testing.T) {
	ix := Index{Terms: []Term{{"i", 2}, {"j", 1}}, Const: 1}
	sh := ix.Shift("i", 3)
	if sh.Const != 1+2*3 {
		t.Fatalf("const = %d", sh.Const)
	}
	if sh.Coeff("j") != 1 || sh.Coeff("i") != 2 {
		t.Fatal("coefficients changed")
	}
	none := ix.Shift("k", 5)
	if none.Const != ix.Const {
		t.Fatal("shift of absent variable changed the index")
	}
}

func TestRefKeyDedup(t *testing.T) {
	a := refKey("a", []Index{{Terms: []Term{{"i", 1}}, Const: 1}})
	b := refKey("a", []Index{{Terms: []Term{{"i", 1}}, Const: 1}})
	if a != b || a != "a[i+1]" {
		t.Fatalf("keys %q vs %q", a, b)
	}
}
