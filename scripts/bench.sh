#!/usr/bin/env bash
# bench.sh — track the performance trajectory across PRs.
#
# Runs the substrate micro-benchmarks (BenchmarkSub*) and the Figure 6
# compilation-time benchmarks, then emits BENCH_<date>.json: one record
# per benchmark with ns/op, B/op, allocs/op and any custom metrics
# (sumII, fails, ...). Compare two files to see whether a PR moved the
# hot paths.
#
# Usage:
#   scripts/bench.sh                # writes BENCH_YYYY-MM-DD.json in the repo root
#   scripts/bench.sh out.json       # explicit output path
#   BENCHTIME=2000x scripts/bench.sh  # override -benchtime (default 1x)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
benchtime="${BENCHTIME:-1x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running Sub + Fig6 benchmarks (benchtime $benchtime)..." >&2
# -timeout 0: the Fig6 benchmarks run the full mappers, which at large
# -benchtime values outlives go test's default 10m limit.
go test -run '^$' -bench 'BenchmarkSub|BenchmarkFig6' -benchmem \
	-benchtime "$benchtime" -timeout 0 . | tee "$raw" >&2

# Parse `go test -bench` lines into JSON. A line looks like:
#   BenchmarkSubRouter  2000  43163 ns/op  4015 B/op  249 allocs/op  3 sumII
go run ./scripts/benchjson "$raw" >"$out"
echo "wrote $out" >&2
