package mrrg

import "fmt"

// Net identifies the value travelling through routing resources: the DFG
// node ID of the producer.
type Net int32

// NoNet marks a free resource.
const NoNet Net = -1

// State is the mutable occupancy of an MRRG. Each resource is held by at
// most one (net, phase) pair:
//
//   - net is the producing DFG node, so a value fanning out to several
//     consumers can share resources (a route tree);
//   - phase is the number of cycles since the value was produced. In a
//     modulo schedule the same resource slot recurs every II cycles, and
//     each iteration of the loop produces a fresh value of the net: two
//     routes of one net may share a resource only when they cross it at
//     the same phase, otherwise two different iterations' values would
//     occupy one wire or register simultaneously.
//
// A per-resource reference count lets overlapping route segments of one
// net reserve and release independently.
type State struct {
	G     *Graph
	occ   []Net
	phase []int32
	ref   []int32

	// mark is an epoch-stamped per-node scratch set that rides the pooled
	// State so hot loops (route-path validity checks, flood dedup) can
	// test-and-set node membership without allocating a map per call. A
	// node is in the current set iff mark[n] == markEpoch; MarkBegin
	// starts a fresh empty set in O(1). Not copied by Clone and never
	// observable in mapping results.
	mark      []int32
	markEpoch int32
}

// blankState returns a State with right-sized (but uninitialised)
// buffers for g, reusing a recycled one when the pool has it.
func (g *Graph) blankState() *State {
	if v := g.statePool.Get(); v != nil {
		return v.(*State)
	}
	back := make([]int32, 3*g.numNodes)
	return &State{
		G:     g,
		occ:   make([]Net, g.numNodes),
		phase: back[:g.numNodes:g.numNodes],
		ref:   back[g.numNodes : 2*g.numNodes : 2*g.numNodes],
		mark:  back[2*g.numNodes:],
	}
}

// NewState returns an all-free occupancy for g, drawing the buffers from
// the graph's recycle pool when possible.
func NewState(g *Graph) *State {
	s := g.blankState()
	for i := range s.occ {
		s.occ[i] = NoNet
	}
	for i := range s.phase {
		s.phase[i] = 0
	}
	for i := range s.ref {
		s.ref[i] = 0
	}
	return s
}

// Clone returns an independent copy of the occupancy (the static graph is
// shared). Rewire uses clones to trial-route candidate placements.
func (s *State) Clone() *State {
	c := s.G.blankState()
	copy(c.occ, s.occ)
	copy(c.phase, s.phase)
	copy(c.ref, s.ref)
	return c
}

// Recycle returns s's buffers to its graph's pool for reuse by a later
// NewState or Clone. The caller must not touch s afterwards; sessions
// call this through mapping.Session.Close when they are done.
func (s *State) Recycle() {
	if s == nil || s.G == nil {
		return
	}
	s.G.statePool.Put(s)
}

// MarkBegin empties the State's node-mark scratch set in O(1) by
// advancing the epoch. The set survives until the next MarkBegin (or
// epoch wrap, after which it is explicitly cleared).
func (s *State) MarkBegin() {
	s.markEpoch++
	if s.markEpoch == 0 { // wrapped: stale stamps could alias, clear them
		clear(s.mark)
		s.markEpoch = 1
	}
}

// Mark adds n to the current mark set.
func (s *State) Mark(n Node) { s.mark[n] = s.markEpoch }

// Marked reports whether n is in the current mark set.
func (s *State) Marked(n Node) bool { return s.mark[n] == s.markEpoch }

// Occupant returns the net holding n (NoNet if free) and its phase.
func (s *State) Occupant(n Node) (Net, int) { return s.occ[n], int(s.phase[n]) }

// Free reports whether n is valid and unoccupied.
func (s *State) Free(n Node) bool { return s.G.valid[n] && s.occ[n] == NoNet }

// Usable reports whether (net, phase) may use n: n is valid and either
// free or already held by the same net at the same phase.
func (s *State) Usable(n Node, net Net, phase int) bool {
	return s.G.valid[n] && (s.occ[n] == NoNet || (s.occ[n] == net && int(s.phase[n]) == phase))
}

// Reserve claims n for (net, phase). It returns an error if n is invalid
// or held by a different net or phase.
func (s *State) Reserve(n Node, net Net, phase int) error {
	if !s.G.valid[n] {
		return fmt.Errorf("mrrg: reserve of invalid resource %s", s.G.String(n))
	}
	if s.occ[n] != NoNet && (s.occ[n] != net || int(s.phase[n]) != phase) {
		return fmt.Errorf("mrrg: %s held by net %d phase %d (want net %d phase %d)",
			s.G.String(n), s.occ[n], s.phase[n], net, phase)
	}
	s.occ[n] = net
	s.phase[n] = int32(phase)
	s.ref[n]++
	return nil
}

// Release drops one reference of net on n, freeing the resource when the
// last reference goes. Releasing a resource the net does not hold is a
// bookkeeping bug and panics.
func (s *State) Release(n Node, net Net) {
	if s.occ[n] != net || s.ref[n] <= 0 {
		panic(fmt.Sprintf("mrrg: release of %s by net %d, but occupant=%d refs=%d",
			s.G.String(n), net, s.occ[n], s.ref[n]))
	}
	s.ref[n]--
	if s.ref[n] == 0 {
		s.occ[n] = NoNet
		s.phase[n] = 0
	}
}

// ReservePath claims path[i] for (net, startPhase+i), rolling back on the
// first failure. For an edge route, startPhase is 1 (the producer FU is
// phase 0).
func (s *State) ReservePath(path []Node, net Net, startPhase int) error {
	for i, n := range path {
		if err := s.Reserve(n, net, startPhase+i); err != nil {
			for j := 0; j < i; j++ {
				s.Release(path[j], net)
			}
			return err
		}
	}
	return nil
}

// ReleasePath drops one reference of net on every node of path.
func (s *State) ReleasePath(path []Node, net Net) {
	for _, n := range path {
		s.Release(n, net)
	}
}

// FreeBankPort returns a free bank-port node at modulo time t, or Invalid
// if all ports are taken that cycle.
func (s *State) FreeBankPort(t int) Node {
	for p := 0; p < s.G.Arch.BankPorts(); p++ {
		if n := s.G.Bank(p, t); s.occ[n] == NoNet {
			return n
		}
	}
	return Invalid
}

// CountOccupied returns how many resources are currently held; used by
// tests and congestion metrics.
func (s *State) CountOccupied() int {
	n := 0
	for _, o := range s.occ {
		if o != NoNet {
			n++
		}
	}
	return n
}
