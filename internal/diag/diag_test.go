package diag

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// tinyRun builds a 2-node mapping session with one contested resource
// for the resolution tests.
func tinyRun(t *testing.T) (*dfg.Graph, *arch.CGRA, *mapping.Session) {
	t.Helper()
	g := dfg.New("tiny")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	g.AddEdge(a, b, 0)
	cgra := arch.New4x4(2)
	m := mapping.New(g, cgra, 2)
	sess := mapping.NewSession(m)
	if err := sess.PlaceNode(a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.PlaceNode(b, 1, 1); err != nil {
		t.Fatal(err)
	}
	return g, cgra, sess
}

func TestDisabledNilZeroAlloc(t *testing.T) {
	var c *Collector
	var b *Bus
	att := c.StartII(2, 0)
	n := testing.AllocsPerRun(1000, func() {
		c.Begin(nil, nil, "", 0)
		c.Commit(false, 0)
		att.Round(3)
		att.Contend(mrrg.Node(7), mrrg.Net(1))
		att.Finish(false, nil)
		b.Publish(Event{Type: "round", II: 2, Ill: 3})
	})
	if n != 0 {
		t.Fatalf("disabled diag path allocates %v allocs/op, want 0", n)
	}
	if c.Enabled() || b.Enabled() {
		t.Fatal("nil collector/bus report enabled")
	}
	if c.Report() != nil {
		t.Fatal("nil collector produced a report")
	}
	if _, err := parseNilBusExport(b); err == nil {
		t.Fatal("nil bus export should error")
	}
}

func parseNilBusExport(b *Bus) (int, error) {
	var buf bytes.Buffer
	return buf.Len(), b.WriteJSONL(&buf)
}

func TestCollectorReport(t *testing.T) {
	g, cgra, sess := tinyRun(t)
	defer sess.Close()
	c := NewCollector()
	c.Begin(g, cgra, "PF*", 2)

	att := c.StartII(2, 0)
	att.Round(2)
	att.Round(1)
	fu := sess.Graph.FU(0, 0)
	att.Contend(fu, mrrg.Net(1))
	att.Contend(fu, mrrg.Net(0))
	att.Contend(fu, mrrg.Net(1))
	att.Finish(false, sess)
	c.Commit(false, 0)

	r := c.Report()
	if r.Schema != SchemaID || r.Kernel != "tiny" || r.Mapper != "PF*" || r.Success {
		t.Fatalf("report header wrong: %+v", r)
	}
	if len(r.Attempts) != 1 || r.Attempts[0].Outcome != "failed" || r.Attempts[0].Rounds != 2 {
		t.Fatalf("attempt timeline wrong: %+v", r.Attempts)
	}
	if got := r.Attempts[0].Convergence; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("convergence series wrong: %v", got)
	}
	if len(r.Contested) != 1 {
		t.Fatalf("want 1 contested resource, got %+v", r.Contested)
	}
	top := r.Contested[0]
	if top.TimesContested != 3 || top.Kind != "fu" || top.PE != 0 {
		t.Fatalf("contested resource wrong: %+v", top)
	}
	if len(top.Contenders) != 2 || top.Contenders[0] != "a" || top.Contenders[1] != "b" {
		t.Fatalf("contenders wrong: %v", top.Contenders)
	}
	if top.FinalOccupant != "a" {
		t.Fatalf("final occupant %q, want a (node a holds FU(0,0))", top.FinalOccupant)
	}
	// The single edge a->b is unrouted with both endpoints placed.
	if len(r.Unroutable) != 1 || r.Unroutable[0].From != "a" || r.Unroutable[0].To != "b" {
		t.Fatalf("unroutable list wrong: %+v", r.Unroutable)
	}
	s := r.Summary()
	if s.Outcome != "failed" || s.Unroutable != 1 || len(s.TopContested) != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !strings.Contains(s.TopContested[0], "3x") {
		t.Fatalf("summary top line %q lacks the contention count", s.TopContested[0])
	}
}

func TestReportMergesAcrossAttemptsTopK(t *testing.T) {
	g, cgra, sess := tinyRun(t)
	defer sess.Close()
	c := NewCollector()
	c.Begin(g, cgra, "Rewire", 2)
	fu := sess.Graph.FU(0, 0)
	for i := 0; i < 3; i++ {
		att := c.StartII(2+i, 0)
		att.Contend(fu, mrrg.Net(0))
		att.Contend(sess.Graph.FU(i+1, 0), mrrg.Net(1))
		att.Finish(false, sess)
	}
	r := c.ReportTopK(2)
	if len(r.Contested) != 2 {
		t.Fatalf("topK=2 kept %d resources", len(r.Contested))
	}
	if r.Contested[0].TimesContested != 3 {
		t.Fatalf("merge across attempts lost counts: %+v", r.Contested[0])
	}
	if len(r.Attempts) != 3 {
		t.Fatalf("timeline has %d attempts, want 3", len(r.Attempts))
	}
}

func TestStartIIConcurrent(t *testing.T) {
	g, cgra, sess := tinyRun(t)
	defer sess.Close()
	c := NewCollector()
	c.Begin(g, cgra, "SA", 2)
	var wg sync.WaitGroup
	for ii := 2; ii < 10; ii++ {
		wg.Add(1)
		go func(ii int) {
			defer wg.Done()
			att := c.StartII(ii, 0)
			att.Round(1)
			att.Contend(mrrg.Node(ii), mrrg.Net(0))
			att.Finish(false, nil)
		}(ii)
	}
	wg.Wait()
	r := c.Report()
	if len(r.Attempts) != 8 {
		t.Fatalf("want 8 attempts, got %d", len(r.Attempts))
	}
	for i := 1; i < len(r.Attempts); i++ {
		if r.Attempts[i].II < r.Attempts[i-1].II {
			t.Fatalf("timeline not II-sorted: %+v", r.Attempts)
		}
	}
}

func TestBusRetainDropOldest(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: "round", Round: i})
	}
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	if ev[0].Round != 6 || ev[3].Round != 9 {
		t.Fatalf("drop-oldest kept wrong window: %+v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("sequence not monotonic: %+v", ev)
		}
	}
	pub, dropped := b.Stats()
	if pub != 10 || dropped != 6 {
		t.Fatalf("stats = (%d, %d), want (10, 6)", pub, dropped)
	}
}

func TestBusSubscribeReplayAndLive(t *testing.T) {
	b := NewBus(8)
	b.Publish(Event{Type: "run_start"})
	b.Publish(Event{Type: "ii_start", II: 2})
	ch, cancel := b.Subscribe(8)
	defer cancel()
	b.Publish(Event{Type: "run_end", Outcome: "ok"})
	b.Close()
	var got []Event
	for e := range ch {
		got = append(got, e)
	}
	if len(got) != 3 {
		t.Fatalf("subscriber saw %d events, want 3 (2 replayed + 1 live): %+v", len(got), got)
	}
	if got[0].Type != "run_start" || got[2].Type != "run_end" {
		t.Fatalf("event order wrong: %+v", got)
	}
	// Subscribing after Close replays and closes immediately.
	ch2, cancel2 := b.Subscribe(0)
	defer cancel2()
	n := 0
	for range ch2 {
		n++
	}
	if n != 3 {
		t.Fatalf("post-close subscriber saw %d events, want 3", n)
	}
	// Publish after Close is a no-op.
	b.Publish(Event{Type: "round"})
	if len(b.Events()) != 3 {
		t.Fatal("publish after close retained an event")
	}
}

func TestBusWriteJSONL(t *testing.T) {
	b := NewBus(2)
	b.Publish(Event{Type: "run_start", Mapper: "rewire"})
	b.Publish(Event{Type: "ii_start", II: 3})
	b.Publish(Event{Type: "run_end", Outcome: "failed"})
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no meta line")
	}
	var meta struct {
		Type, Format       string
		Events             int
		Published, Dropped uint64
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Type != "meta" || meta.Format != ProgressSchemaID || meta.Events != 2 || meta.Published != 3 || meta.Dropped != 1 {
		t.Fatalf("meta wrong: %+v", meta)
	}
	lines := 0
	var last Event
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if lines != 2 || last.Type != "run_end" || last.Seq != 3 {
		t.Fatalf("event lines wrong: n=%d last=%+v", lines, last)
	}
}

func TestConvergenceSeriesCapped(t *testing.T) {
	c := NewCollector()
	att := c.StartII(2, 0)
	for i := 0; i < maxConvergence+100; i++ {
		att.Round(i)
	}
	att.Finish(false, nil)
	r := c.Report()
	if r.Attempts[0].Rounds != maxConvergence+100 {
		t.Fatalf("rounds counter %d, want %d", r.Attempts[0].Rounds, maxConvergence+100)
	}
	if len(r.Attempts[0].Convergence) != maxConvergence {
		t.Fatalf("convergence series %d points, want cap %d", len(r.Attempts[0].Convergence), maxConvergence)
	}
}

func BenchmarkDiagDisabled(b *testing.B) {
	var c *Collector
	var bus *Bus
	att := c.StartII(2, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		att.Round(1)
		att.Contend(mrrg.Node(3), mrrg.Net(1))
		bus.Publish(Event{Type: "round", II: 2})
	}
}

func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: "round", II: 2, Round: i})
	}
}
