package sim

import (
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/config"
	"rewire/internal/pathfinder"
)

// TestVerifyOnTorus runs the full pipeline on a wrap-around fabric: the
// mapper can exploit torus links and the simulator must still reproduce
// the reference trace (wrap links exercise the in-latch direction logic).
func TestVerifyOnTorus(t *testing.T) {
	a := arch.New("torus4x4", 4, 4, 2, 2, 0)
	a.Torus = true
	g := fromIR(t, `
kernel tor
t = a[i] - b[i]
u = t * t
s += u
out[i] = s
d = t >> 1
out2[i] = d
`)
	m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: 3, TimePerII: 3 * time.Second, CandidateBeam: 8})
	if m == nil {
		t.Fatalf("mapping failed on torus: %v", res)
	}
	cfg, err := config.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cfg, 8); err != nil {
		t.Fatal(err)
	}
}

// TestTorusWrapLatencyMapped checks the mapper exploits wrap links at
// exact latencies the Manhattan bound calls impossible: an edge between
// opposite corners routed in fewer cycles than the non-wrap distance.
// This guards the oracle-based feasibility prune end to end (a Manhattan
// prune anywhere in the pipeline would reject the placement or route).
func TestTorusWrapLatencyMapped(t *testing.T) {
	a := arch.New("torwrap", 4, 4, 2, 2, 0)
	a.Torus = true
	g := fromIR(t, `
kernel wrap
t = a[i] + b[i]
out[i] = t
`)
	m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: 1, TimePerII: 3 * time.Second})
	if m == nil {
		t.Fatalf("mapping failed on torus: %v", res)
	}
	cfg, err := config.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(cfg, 8); err != nil {
		t.Fatal(err)
	}
}

// TestTorusUsesWrapLinks checks that torus adjacency is actually richer:
// a corner PE has four neighbours instead of two.
func TestTorusUsesWrapLinks(t *testing.T) {
	a := arch.New("t", 4, 4, 1, 1, 0)
	a.Torus = true
	n := 0
	for d := arch.Dir(0); d < arch.NumDirs; d++ {
		if a.Neighbor(0, d) >= 0 {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("torus corner has %d neighbours, want 4", n)
	}
}
