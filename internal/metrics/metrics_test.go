package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"rewire/internal/trace"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("rewire_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up; negative deltas drop
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.NewGauge("rewire_test_queue_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.NewHistogram("rewire_test_latency_seconds", "lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rewire_test_latency_seconds_bucket{le="1"} 2`,
		`rewire_test_latency_seconds_bucket{le="2"} 3`,
		`rewire_test_latency_seconds_bucket{le="4"} 4`,
		`rewire_test_latency_seconds_bucket{le="+Inf"} 5`,
		`rewire_test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("rewire_test_requests_total", "reqs", "mapper", "outcome")
	v.With("rewire", "ok").Add(2)
	v.With("rewire", "ok").Inc() // same child
	v.With("sa", "failed").Inc()
	if got := v.With("rewire", "ok").Value(); got != 3 {
		t.Fatalf("child = %d, want 3", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `rewire_test_requests_total{mapper="rewire",outcome="ok"} 3`) {
		t.Fatalf("labelled line missing:\n%s", sb.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad convention", func() { r.NewCounter("requests_total", "x") })
	mustPanic("counter without _total", func() { r.NewCounter("rewire_test_requests_count", "x") })
	mustPanic("gauge with _total", func() { r.NewGauge("rewire_test_depth_total", "x") })
	mustPanic("reserved suffix", func() { r.NewGauge("rewire_test_queue_sum", "x") })
	mustPanic("reserved label le", func() { r.NewHistogramVec("rewire_test_lat_seconds", "x", nil, "le") })
	r.NewCounter("rewire_test_ops_total", "x")
	mustPanic("type redefinition", func() { r.NewGauge("rewire_test_ops_total", "x") })
	mustPanic("label redefinition", func() { r.NewCounterVec("rewire_test_ops_total", "x", "mapper") })
	mustPanic("wrong label arity", func() {
		r.NewCounterVec("rewire_test_more_total", "x", "a", "b").With("only-one")
	})
	// Re-registering identically is fine and returns the same series.
	c := r.NewCounter("rewire_test_ops_total", "x")
	c.Inc()
	if got := r.NewCounter("rewire_test_ops_total", "x").Value(); got != 1 {
		t.Fatalf("re-registered counter = %d, want 1", got)
	}
}

func TestNilRegistryAndCollectors(t *testing.T) {
	var r *Registry
	c := r.NewCounter("rewire_x_y_total", "x")
	g := r.NewGauge("rewire_x_y_units", "x")
	h := r.NewHistogram("rewire_x_y_seconds", "x", nil)
	cv := r.NewCounterVec("rewire_x_z_total", "x", "l")
	fc := r.NewFloatCounter("rewire_x_w_total", "x")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	cv.With("v").Inc()
	fc.Add(0.25)
	if c.Value() != 0 || g.Value() != 0 || fc.Value() != 0 {
		t.Fatal("nil collectors hold values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	FoldTracer(r, trace.New()) // nil registry fold is a no-op
	FoldTracer(NewRegistry(), nil)
}

func TestDisabledMetricsZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.NewCounter("rewire_x_y_total", "x")
	g := r.NewGauge("rewire_x_y_units", "x")
	h := r.NewHistogram("rewire_x_y_seconds", "x", nil)
	fc := r.NewFloatCounter("rewire_x_w_total", "x")
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.5)
		fc.Add(0.5)
	})
	if n != 0 {
		t.Fatalf("disabled metrics allocate %v allocs/op, want 0", n)
	}
}

// FloatCounter semantics: monotonic float accumulation, negative and
// NaN deltas dropped, rendered as a counter with a float value.
func TestFloatCounter(t *testing.T) {
	r := NewRegistry()
	fc := r.NewFloatCounter("rewire_gc_pause_seconds_total", "x")
	fc.Add(0.5)
	fc.Add(0.25)
	fc.Add(-1)         // dropped: counters only go up
	fc.Add(math.NaN()) // dropped
	fc.Add(0)          // no-op
	if got := fc.Value(); got != 0.75 {
		t.Fatalf("value = %v, want 0.75", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, "# TYPE rewire_gc_pause_seconds_total counter") {
		t.Errorf("float counter not typed as counter:\n%s", body)
	}
	if !strings.Contains(body, "rewire_gc_pause_seconds_total 0.75") {
		t.Errorf("float counter value missing:\n%s", body)
	}
	// The counter naming rule applies: a float counter without _total
	// must be rejected at registration.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("float counter without _total accepted")
			}
		}()
		r.NewFloatCounter("rewire_gc_pause_seconds", "x")
	}()
}

func BenchmarkMetricsDisabled(b *testing.B) {
	var r *Registry
	c := r.NewCounter("rewire_x_y_total", "x")
	h := r.NewHistogram("rewire_x_y_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

// TestConcurrentUpdatesDuringRender is the race test: writers hammer
// every collector type while readers render the exposition format.
// Run with -race (the CI race job includes this package).
func TestConcurrentUpdatesDuringRender(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("rewire_race_ops_total", "x", "worker")
	g := r.NewGauge("rewire_race_depth_units", "x")
	hv := r.NewHistogramVec("rewire_race_latency_seconds", "x", []float64{1, 2, 4}, "worker")

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id))
			c := cv.With(lbl)
			h := hv.With(lbl)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 8))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			var sb strings.Builder
			r.WritePrometheus(&sb)
			if !strings.Contains(sb.String(), `rewire_race_ops_total{worker="a"} 500`) {
				t.Fatalf("final render lost updates:\n%s", sb.String())
			}
			return
		default:
		}
	}
}

// pipelineCounters and pipelineHistograms are the offline trace metric
// catalog: every Counter()/Histogram() name the mappers register (see
// docs/OBSERVABILITY.md). Adding a pipeline counter means adding it
// here, which keeps the online bridge audited.
var pipelineCounters = []string{
	"route.expansions",
	"route.findpath.calls",
	"route.findpath.found",
	"placements.tried",
	"placements.pruned",
	"verify.attempts",
	"verify.successes",
	"cluster.amendments",
	"propagate.tuples",
	"propagate.tuples_deduped",
	"intersect.pcandidates",
	"pf.remaps",
	"sa.moves",
	"sweep.attempts",
	"sweep.speculative",
	"sweep.cancelled",
	"sweep.wasted_ms",
}

var pipelineHistograms = []string{
	"cluster.size",
	"intersect.pcandidates_per_node",
}

// TestBridgeNamesFollowConvention is the counter-name audit: every
// offline trace name must bridge to an online name that passes
// CheckName, and the bridge must be injective over the catalog.
func TestBridgeNamesFollowConvention(t *testing.T) {
	seen := map[string]string{}
	for _, n := range pipelineCounters {
		b := BridgeCounterName(n)
		if err := CheckName(b, TypeCounter); err != nil {
			t.Errorf("counter %s bridges to non-conforming %s: %v", n, b, err)
		}
		if prev, dup := seen[b]; dup {
			t.Errorf("bridge collision: %s and %s both map to %s", prev, n, b)
		}
		seen[b] = n
	}
	for _, n := range pipelineHistograms {
		b := BridgeHistogramName(n)
		if err := CheckName(b, TypeHistogram); err != nil {
			t.Errorf("histogram %s bridges to non-conforming %s: %v", n, b, err)
		}
		if prev, dup := seen[b]; dup {
			t.Errorf("bridge collision: %s and %s both map to %s", prev, n, b)
		}
		seen[b] = n
	}
}

func TestFoldTracer(t *testing.T) {
	tr := trace.New()
	tr.Counter("route.expansions").Add(100)
	tr.Counter("placements.tried").Add(7)
	for _, v := range []int64{1, 2, 4, 15} {
		tr.Histogram("cluster.size").Observe(v)
	}
	r := NewRegistry()
	FoldTracer(r, tr)
	FoldTracer(r, tr) // folds accumulate across runs

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"rewire_route_expansions_total 200",
		"rewire_placements_tried_total 14",
		`rewire_cluster_size_units_bucket{le="1"} 2`,
		`rewire_cluster_size_units_bucket{le="15"} 8`,
		`rewire_cluster_size_units_bucket{le="+Inf"} 8`,
		"rewire_cluster_size_units_sum 44",
		"rewire_cluster_size_units_count 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fold output missing %q:\n%s", want, out)
		}
	}
}
