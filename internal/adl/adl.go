// Package adl parses a small architecture description language for CGRA
// fabrics, in the spirit of CGRA-ME's architecture specifications: grid
// size, register files, memory banks and columns, torus links, and
// heterogeneous per-PE capabilities — so new fabrics can be described in
// text files instead of Go code.
//
// Example:
//
//	# a 6x6 area-reduced fabric
//	cgra myfabric
//	grid 6 x 6
//	regs 2
//	banks 4
//	memcols 0 5
//	torus off
//	strip mul keep 0 7 14 21 28 35   # multipliers on the diagonal only
//	strip div keep 0                 # one divider
//
// Directives may appear in any order; later directives override earlier
// ones. Comments run from '#' to end of line.
package adl

import (
	"fmt"
	"strconv"
	"strings"

	"rewire/internal/arch"
)

// Parse builds a CGRA from an ADL description.
func Parse(src string) (*arch.CGRA, error) {
	spec := &builder{
		name:  "custom",
		rows:  4,
		cols:  4,
		regs:  2,
		banks: 2,
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := spec.directive(fields); err != nil {
			return nil, fmt.Errorf("adl: line %d: %w", lineNo+1, err)
		}
	}
	return spec.build()
}

// MustParse is Parse that panics on error, for static fabric definitions.
func MustParse(src string) *arch.CGRA {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

type stripSpec struct {
	class arch.OpClass
	keep  []int
}

type builder struct {
	name       string
	rows, cols int
	regs       int
	banks      int
	memCols    []int
	torus      bool
	strips     []stripSpec
	sawMemCols bool
}

func (b *builder) directive(fields []string) error {
	switch fields[0] {
	case "cgra":
		if len(fields) != 2 {
			return fmt.Errorf("cgra takes exactly one name")
		}
		b.name = fields[1]
	case "grid":
		// "grid R x C" or "grid R C".
		args := dropX(fields[1:])
		if len(args) != 2 {
			return fmt.Errorf("grid takes ROWS x COLS")
		}
		var err error
		if b.rows, err = atoiMin(args[0], 1); err != nil {
			return fmt.Errorf("grid rows: %w", err)
		}
		if b.cols, err = atoiMin(args[1], 1); err != nil {
			return fmt.Errorf("grid cols: %w", err)
		}
	case "regs":
		if len(fields) != 2 {
			return fmt.Errorf("regs takes one count")
		}
		v, err := atoiMin(fields[1], 0)
		if err != nil {
			return fmt.Errorf("regs: %w", err)
		}
		b.regs = v
	case "banks":
		if len(fields) != 2 {
			return fmt.Errorf("banks takes one count")
		}
		v, err := atoiMin(fields[1], 0)
		if err != nil {
			return fmt.Errorf("banks: %w", err)
		}
		b.banks = v
	case "memcols":
		b.sawMemCols = true
		b.memCols = b.memCols[:0]
		for _, f := range fields[1:] {
			v, err := atoiMin(f, 0)
			if err != nil {
				return fmt.Errorf("memcols: %w", err)
			}
			b.memCols = append(b.memCols, v)
		}
	case "torus":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			return fmt.Errorf("torus takes on|off")
		}
		b.torus = fields[1] == "on"
	case "strip":
		if len(fields) < 3 || fields[2] != "keep" {
			return fmt.Errorf("strip takes: strip CLASS keep PE...")
		}
		cl, err := classByName(fields[1])
		if err != nil {
			return err
		}
		sp := stripSpec{class: cl}
		for _, f := range fields[3:] {
			v, err := atoiMin(f, 0)
			if err != nil {
				return fmt.Errorf("strip keep list: %w", err)
			}
			sp.keep = append(sp.keep, v)
		}
		b.strips = append(b.strips, sp)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func (b *builder) build() (*arch.CGRA, error) {
	if !b.sawMemCols {
		b.memCols = []int{0}
		if b.cols > 4 {
			b.memCols = append(b.memCols, b.cols-1)
		}
	}
	for _, c := range b.memCols {
		if c >= b.cols {
			return nil, fmt.Errorf("adl: memory column %d outside grid of %d columns", c, b.cols)
		}
	}
	cgra := arch.New(b.name, b.rows, b.cols, b.regs, b.banks, b.memCols...)
	cgra.Torus = b.torus
	for _, sp := range b.strips {
		for _, pe := range sp.keep {
			if pe >= cgra.NumPEs() {
				return nil, fmt.Errorf("adl: strip keeps PE %d outside the %d-PE grid", pe, cgra.NumPEs())
			}
		}
		cgra.StripClass(sp.class, sp.keep...)
	}
	return cgra, nil
}

func classByName(name string) (arch.OpClass, error) {
	for cl := arch.OpClass(0); cl < arch.NumOpClasses; cl++ {
		if cl.String() == name {
			return cl, nil
		}
	}
	return 0, fmt.Errorf("unknown operation class %q (alu, mul, div, mem)", name)
}

func dropX(fields []string) []string {
	out := fields[:0:0]
	for _, f := range fields {
		if f != "x" && f != "X" {
			out = append(out, f)
		}
	}
	return out
}

func atoiMin(s string, min int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if v < min {
		return 0, fmt.Errorf("%d below minimum %d", v, min)
	}
	return v, nil
}

// Format renders an architecture back into ADL text (round-trippable for
// homogeneous and stripped fabrics).
func Format(c *arch.CGRA) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cgra %s\n", c.Name)
	fmt.Fprintf(&b, "grid %d x %d\n", c.Rows, c.Cols)
	fmt.Fprintf(&b, "regs %d\n", c.Regs)
	fmt.Fprintf(&b, "banks %d\n", c.Banks)
	var cols []string
	for col := 0; col < c.Cols; col++ {
		if c.MemPE[c.PEIndex(0, col)] {
			cols = append(cols, strconv.Itoa(col))
		}
	}
	fmt.Fprintf(&b, "memcols %s\n", strings.Join(cols, " "))
	if c.Torus {
		b.WriteString("torus on\n")
	}
	if c.PECaps != nil {
		for cl := arch.OpClass(0); cl < arch.NumOpClasses; cl++ {
			var keep []string
			stripped := false
			for pe := 0; pe < c.NumPEs(); pe++ {
				if c.Caps(pe).Has(cl) {
					keep = append(keep, strconv.Itoa(pe))
				} else {
					stripped = true
				}
			}
			if stripped {
				fmt.Fprintf(&b, "strip %s keep %s\n", cl, strings.Join(keep, " "))
			}
		}
	}
	return b.String()
}
