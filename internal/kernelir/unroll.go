package kernelir

import (
	"fmt"
	"sync"
)

// Unroll returns a new Program whose loop body is the original body
// replicated `factor` times, with the induction variable shifted by the
// copy number in every subscript. It is the IR-level equivalent of loop
// unrolling in the compiler frontend (the paper uses unroll factor 2 to
// stress the mappers, marked "(u)" in Figure 5).
//
// Scalar temporaries are renamed per copy. Accumulator statements are
// rewritten into a chain of plain adds: copy u reads copy u-1's value,
// and copy 0 reads the last copy's value from the previous (unrolled)
// iteration, preserving the recurrence with distance 1. Delayed reads
// `x@d` are retargeted to the copy that holds the requested value, with
// the delay divided by the unroll factor.
func Unroll(prog *Program, factor int) (*Program, error) {
	if factor < 1 {
		return nil, fmt.Errorf("kernel %q: unroll factor %d < 1", prog.Name, factor)
	}
	if factor == 1 {
		return prog, nil
	}
	u := unrollerPool.Get().(*unroller)
	u.prog, u.factor = prog, factor
	defer func() {
		u.prog = nil
		clear(u.accCount)
		clear(u.accSeq)
		clear(u.curAcc)
		unrollerPool.Put(u)
	}()
	// Pre-scan: which scalars are accumulators, and how many accumulator
	// statements each has per body copy (their per-copy final alias is the
	// last one).
	accCount := u.accCount
	for _, s := range prog.Stmts {
		if s.Acc {
			accCount[s.LHS.Name]++
		}
	}
	out := &Program{
		Name:      prog.Name + "_u" + fmt.Sprint(factor),
		Induction: prog.Induction,
		Params:    prog.Params,
		Stmts:     make([]Stmt, 0, factor*len(prog.Stmts)),
	}
	for copyNo := 0; copyNo < factor; copyNo++ {
		u.copyNo = copyNo
		clear(u.accSeq)
		// Before any accumulator statement of this copy runs, an
		// accumulator read refers to the previous copy's final alias (or,
		// for copy 0, the last copy's final alias one iteration back).
		for name := range accCount {
			if copyNo == 0 {
				u.curAcc[name] = Scalar{Name: accAlias(name, factor-1, accCount[name]-1), Delay: 1}
			} else {
				u.curAcc[name] = Scalar{Name: accAlias(name, copyNo-1, accCount[name]-1)}
			}
		}
		for _, s := range prog.Stmts {
			ns, err := u.stmt(s)
			if err != nil {
				return nil, err
			}
			out.Stmts = append(out.Stmts, ns)
		}
	}
	return out, nil
}

// MustUnroll is Unroll that panics on error.
func MustUnroll(prog *Program, factor int) *Program {
	p, err := Unroll(prog, factor)
	if err != nil {
		panic(err)
	}
	return p
}

type unroller struct {
	prog     *Program
	factor   int
	copyNo   int
	accCount map[string]int // accumulator -> += statements per copy
	accSeq   map[string]int // accumulator -> += statements seen in this copy
	curAcc   map[string]Expr
}

// unrollerPool recycles the per-call scratch of Unroll (the three
// accumulator-tracking maps) across calls, mirroring lowererPool.
var unrollerPool = sync.Pool{New: func() any {
	return &unroller{
		accCount: map[string]int{},
		accSeq:   map[string]int{},
		curAcc:   map[string]Expr{},
	}
}}

// accAlias names the k-th accumulator definition of scalar `name` in body
// copy `copyNo`. '$' cannot appear in source identifiers, so aliases never
// collide with user names.
func accAlias(name string, copyNo, k int) string {
	return fmt.Sprintf("%s$%d_%d", name, copyNo, k)
}

// tempAlias names a per-copy scalar temporary.
func tempAlias(name string, copyNo int) string {
	return fmt.Sprintf("%s$%d", name, copyNo)
}

func (u *unroller) stmt(s Stmt) (Stmt, error) {
	rhs, err := u.expr(s.RHS, s.Line)
	if err != nil {
		return Stmt{}, err
	}
	switch {
	case s.Acc:
		name := s.LHS.Name
		k := u.accSeq[name]
		u.accSeq[name] = k + 1
		alias := accAlias(name, u.copyNo, k)
		prev := u.curAcc[name]
		u.curAcc[name] = Scalar{Name: alias}
		return Stmt{
			LHS:  Ref{Name: alias},
			RHS:  Bin{Op: "+", L: prev, R: rhs},
			Line: s.Line,
		}, nil
	case s.LHS.IsArray():
		return Stmt{
			LHS:  Ref{Name: s.LHS.Name, Index: u.shiftAll(s.LHS.Index)},
			RHS:  rhs,
			Line: s.Line,
		}, nil
	default:
		return Stmt{
			LHS:  Ref{Name: tempAlias(s.LHS.Name, u.copyNo)},
			RHS:  rhs,
			Line: s.Line,
		}, nil
	}
}

func (u *unroller) shiftAll(idx []Index) []Index {
	out := make([]Index, len(idx))
	for i, ix := range idx {
		out[i] = ix.Shift(u.prog.Induction, u.copyNo)
	}
	return out
}

func (u *unroller) expr(e Expr, line int) (Expr, error) {
	switch x := e.(type) {
	case Num:
		return x, nil
	case ArrayRead:
		return ArrayRead{Array: x.Array, Index: u.shiftAll(x.Index)}, nil
	case Bin:
		l, err := u.expr(x.L, line)
		if err != nil {
			return nil, err
		}
		r, err := u.expr(x.R, line)
		if err != nil {
			return nil, err
		}
		return Bin{Op: x.Op, L: l, R: r}, nil
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := u.expr(a, line)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return Call{Fn: x.Fn, Args: args}, nil
	case Scalar:
		return u.scalar(x, line)
	default:
		return nil, fmt.Errorf("line %d: unknown expression %T in unroll", line, e)
	}
}

func (u *unroller) scalar(x Scalar, line int) (Expr, error) {
	if u.prog.Params[x.Name] {
		return x, nil
	}
	isAcc := u.accCount[x.Name] > 0
	if x.Delay == 0 {
		if isAcc {
			return u.curAcc[x.Name], nil
		}
		return Scalar{Name: tempAlias(x.Name, u.copyNo)}, nil
	}
	// Delayed read: the value the scalar had x.Delay original iterations
	// ago. Original-iteration slot u.copyNo - Delay maps to body copy r of
	// the unrolled iteration floor(slot/factor) iterations back.
	slot := u.copyNo - x.Delay
	q := floorDiv(slot, u.factor)
	r := slot - q*u.factor
	delay := -q
	if delay < 0 {
		return nil, fmt.Errorf("line %d: internal unroll error for %s (negative delay)", line, x)
	}
	if isAcc {
		return Scalar{Name: accAlias(x.Name, r, u.accCount[x.Name]-1), Delay: delay}, nil
	}
	return Scalar{Name: tempAlias(x.Name, r), Delay: delay}, nil
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
