// Package trace is the mapper's structured tracing and metrics layer:
// hierarchical spans with wall-clock timestamps and key/value attributes
// around every pipeline phase (DFG construction, MRRG build, initial
// mapping, cluster amendment, probe propagation, tuple intersection,
// Placement(U) enumeration, routing verification), plus named counters
// and histograms that aggregate correctly across worker pools.
//
// The entire API is nil-safe: a nil *Tracer is the disabled tracer, and
// every method on a nil Tracer, Span, Counter or Histogram is a single
// pointer check that returns immediately without allocating. Mapper hot
// paths therefore carry instrumentation unconditionally; the disabled
// cost is ~zero (pinned by BenchmarkTracerDisabled and
// TestDisabledTracerZeroAlloc).
//
// Two exporters turn a finished trace into files: WriteJSONL (one JSON
// record per line: meta, spans, counters, histograms) and
// WriteChromeTrace (the Chrome trace_event format, loadable in
// chrome://tracing or https://ui.perfetto.dev). See docs/OBSERVABILITY.md.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans, counters and histograms for one traced run. All
// methods are safe for concurrent use; the span lane bookkeeping and the
// event buffer are guarded by one mutex, counters are atomics.
//
// The zero value is not usable; construct with New. A nil *Tracer is the
// disabled tracer.
type Tracer struct {
	mu       sync.Mutex
	t0       time.Time
	spans    []SpanRecord
	laneTops []*Span // lane -> innermost open span, nil = free lane
	nextID   uint64

	cmu      sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// New returns an enabled tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{
		t0:       time.Now(),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the tracer records anything. It is the guard
// call sites use to skip work that only produces span attributes.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is one open interval of the trace. A nil *Span (from a disabled
// tracer) accepts every method as a no-op.
type Span struct {
	tr     *Tracer
	par    *Span
	id     uint64
	parent uint64 // 0 = root
	name   string
	lane   int
	start  time.Duration
	attrs  []Attr
}

// Attr is one key/value span attribute. Exactly one of the value fields
// is meaningful, selected by Kind.
type Attr struct {
	Key  string
	Kind AttrKind
	Int  int64
	Str  string
	Bool bool
}

// AttrKind discriminates Attr values.
type AttrKind uint8

// Attribute kinds.
const (
	KindInt AttrKind = iota
	KindStr
	KindBool
)

// Value returns the attribute's value as an interface (for export).
func (a Attr) Value() any {
	switch a.Kind {
	case KindStr:
		return a.Str
	case KindBool:
		return a.Bool
	default:
		return a.Int
	}
}

// SpanRecord is one completed span, as exported.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Lane   int           // export track (Chrome tid); nesting-correct per lane
	Start  time.Duration // since the tracer's start
	Dur    time.Duration
	Attrs  []Attr
}

// StartSpan opens a span under parent (nil parent = root span). On a nil
// tracer it returns nil, and every method of the returned nil span is a
// no-op — callers never need to branch.
//
// Lanes: a child reuses its parent's lane when the parent is the lane's
// innermost open span (the sequential case); concurrent siblings get
// fresh lanes. Lanes become Chrome trace tids, so nested spans render
// as stacked slices and parallel work renders as parallel tracks.
func (t *Tracer) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{tr: t, par: parent, id: t.nextID, name: name, start: time.Since(t.t0)}
	if parent != nil {
		s.parent = parent.id
	}
	lane := -1
	if parent != nil && parent.lane < len(t.laneTops) && t.laneTops[parent.lane] == parent {
		lane = parent.lane
	} else {
		for i, top := range t.laneTops {
			if top == nil {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(t.laneTops)
			t.laneTops = append(t.laneTops, nil)
		}
	}
	s.lane = lane
	t.laneTops[lane] = s
	return s
}

// WithInt attaches an integer attribute and returns the span (chainable).
func (s *Span) WithInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindInt, Int: v})
	return s
}

// WithStr attaches a string attribute and returns the span (chainable).
func (s *Span) WithStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindStr, Str: v})
	return s
}

// WithBool attaches a boolean attribute and returns the span (chainable).
func (s *Span) WithBool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindBool, Bool: v})
	return s
}

// End closes the span and records it. Ending a span twice records it
// twice; don't. Spans still open when an exporter runs are not exported.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	end := time.Since(t.t0)
	t.spans = append(t.spans, SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Lane:   s.lane,
		Start:  s.start,
		Dur:    end - s.start,
		Attrs:  s.attrs,
	})
	if t.laneTops[s.lane] == s {
		if s.par != nil && s.par.lane == s.lane {
			t.laneTops[s.lane] = s.par
		} else {
			t.laneTops[s.lane] = nil
		}
	}
}

// Counter is a named monotonic (or at least additive) metric. Adds are
// atomic, so one Counter may be shared by every worker of a pool. A nil
// *Counter (from a disabled tracer) ignores Add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use. On a nil
// tracer it returns nil (whose Add is a no-op). Resolve counters once
// outside loops; Add in the loop.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	c := t.counters[name]
	if c == nil {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// CounterTotals snapshots every counter's total, keyed by name.
func (t *Tracer) CounterTotals() map[string]int64 {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for name, c := range t.counters {
		out[name] = c.Value()
	}
	return out
}

// Histogram records a distribution as count/sum/min/max plus power-of-two
// bucket counts (bucket i holds values in [2^(i-1), 2^i), bucket 0 holds
// <= 0 and 1). Observes take one short mutex hold; a nil *Histogram
// ignores Observe.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [32]int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v int64) int {
	b := 0
	for v > 1 && b < 31 {
		v >>= 1
		b++
	}
	return b
}

// HistStats is an exported histogram snapshot.
type HistStats struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets are the power-of-two bucket counts, trimmed of trailing
	// zeros: Buckets[0] counts values <= 1, Buckets[i] counts values in
	// [2^i, 2^(i+1)). The metrics bridge folds them into Prometheus
	// histograms without replaying samples.
	Buckets []int64 `json:"buckets,omitempty"`
}

func (h *Histogram) stats() HistStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		st.Mean = float64(h.sum) / float64(h.count)
	}
	top := len(h.buckets)
	for top > 0 && h.buckets[top-1] == 0 {
		top--
	}
	if top > 0 {
		st.Buckets = append([]int64(nil), h.buckets[:top]...)
	}
	return st
}

// Histogram returns the named histogram, creating it on first use. On a
// nil tracer it returns nil (whose Observe is a no-op).
func (t *Tracer) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{}
		t.hists[name] = h
	}
	return h
}

// HistogramStats snapshots every histogram, keyed by name.
func (t *Tracer) HistogramStats() map[string]HistStats {
	if t == nil {
		return nil
	}
	t.cmu.Lock()
	defer t.cmu.Unlock()
	out := make(map[string]HistStats, len(t.hists))
	for name, h := range t.hists {
		out[name] = h.stats()
	}
	return out
}

// Spans snapshots the completed spans in end order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// sortedCounterNames returns counter names in deterministic order.
func (t *Tracer) sortedCounterNames() []string {
	names := make([]string, 0, len(t.counters))
	for n := range t.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sortedHistNames returns histogram names in deterministic order.
func (t *Tracer) sortedHistNames() []string {
	names := make([]string, 0, len(t.hists))
	for n := range t.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
