package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLoggerIsSafe(t *testing.T) {
	var lg *Logger
	if lg.On() {
		t.Fatal("nil logger reports On")
	}
	if lg.Slog() != nil {
		t.Fatal("nil logger has a slog")
	}
	// Every method must no-op, including through With chains.
	lg.Debug("d", "k", 1)
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	if got := lg.With("a", 1).WithRun("abc"); got != nil {
		t.Fatalf("With on nil logger = %v, want nil", got)
	}
	lg.With("a", 1).Info("through the chain")
}

func TestDisabledLoggerZeroAlloc(t *testing.T) {
	var lg *Logger
	n := testing.AllocsPerRun(1000, func() {
		// The guarded pattern warm code uses...
		if lg.On() {
			lg.Debug("round", "i", 42)
		}
		// ...and the bare no-attribute call.
		lg.Info("tick")
	})
	if n != 0 {
		t.Fatalf("disabled logger allocates %v allocs/op, want 0", n)
	}
}

func BenchmarkLoggerDisabled(b *testing.B) {
	var lg *Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if lg.On() {
			lg.Debug("round", "i", i)
		}
		lg.Info("tick")
	}
}

func TestSetupLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := Setup(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "shown") {
		t.Fatalf("warn line missing: %q", out)
	}
	if _, err := Setup(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := Setup(&buf, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestSetupJSONAndRunID(t *testing.T) {
	var buf bytes.Buffer
	lg, err := Setup(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.WithRun("deadbeef00000001").Info("mapped", "ii", 4)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["run_id"] != "deadbeef00000001" {
		t.Fatalf("run_id = %v", rec["run_id"])
	}
	if rec["ii"] != float64(4) {
		t.Fatalf("ii = %v", rec["ii"])
	}
}

func TestNewRunIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewRunID()
		if len(id) != 16 {
			t.Fatalf("run id %q is not 16 chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate run id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}
