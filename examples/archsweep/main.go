// Archsweep: explore how architecture parameters change achievable
// performance — sweep register-file sizes and array sizes for one kernel
// and report the achieved II, the way an architect would size a CGRA for
// a workload (§V-A's register-pressure study generalised).
package main

import (
	"fmt"
	"log"
	"time"

	"rewire"
)

func main() {
	g, err := rewire.LoadKernel("gramsch")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Stats())
	fmt.Println()

	fmt.Println("register-file sweep on the 4x4 fabric:")
	fmt.Printf("%-8s %4s %4s %10s\n", "arch", "MII", "II", "compile")
	for _, regs := range []int{1, 2, 4, 8} {
		cgra := rewire.New4x4(regs)
		report(g, cgra)
	}

	fmt.Println()
	fmt.Println("array-size sweep with 4 registers per PE:")
	fmt.Printf("%-8s %4s %4s %10s\n", "arch", "MII", "II", "compile")
	for _, build := range []func() *rewire.CGRA{
		func() *rewire.CGRA { return rewire.NewCGRA("2x2r4", 2, 2, 4, 1, 0) },
		func() *rewire.CGRA { return rewire.New4x4(4) },
		func() *rewire.CGRA { return rewire.NewCGRA("6x6r4", 6, 6, 4, 4, 0, 5) },
		func() *rewire.CGRA { return rewire.New8x8(4) },
	} {
		report(g, build())
	}
}

func report(g *rewire.DFG, cgra *rewire.CGRA) {
	m, res, err := rewire.Map(g, cgra, rewire.Options{Seed: 3, TimePerII: 2 * time.Second})
	if err != nil {
		fmt.Printf("%-8s %4d %4s %10s\n", cgra.Name, res.MII, "-", "failed")
		return
	}
	_ = m
	fmt.Printf("%-8s %4d %4d %10s\n", cgra.Name, res.MII, res.II, res.Duration.Round(time.Millisecond))
}
