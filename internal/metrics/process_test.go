package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// RegisterProcess must expose the three process gauges and the
// build-info identity gauge, and Refresh must land real values in the
// exposition.
func TestProcessCollectorExposition(t *testing.T) {
	reg := NewRegistry()
	pc := RegisterProcess(reg)
	pc.Refresh()

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()

	for _, want := range []string{
		"rewire_build_info{",
		"rewire_process_uptime_seconds",
		"rewire_process_goroutines_units",
		"rewire_process_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition misses %s:\n%s", want, body)
		}
	}
	// The info gauge's value is pinned to 1 and its labels carry the
	// identity.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "rewire_build_info{") {
			if !strings.HasSuffix(line, " 1") {
				t.Errorf("build info gauge not pinned to 1: %q", line)
			}
			for _, l := range []string{"go_version=", "vcs_revision=", "modified="} {
				if !strings.Contains(line, l) {
					t.Errorf("build info gauge misses label %s: %q", l, line)
				}
			}
		}
		if strings.HasPrefix(line, "rewire_process_goroutines_units ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("goroutine gauge not refreshed: %q", line)
			}
		}
	}
}

// The _info suffix is an exception for gauges only; counters and
// histograms must still be rejected, as must malformed info names.
func TestInfoNameRule(t *testing.T) {
	if err := CheckName("rewire_build_info", TypeGauge); err != nil {
		t.Errorf("rewire_build_info rejected for a gauge: %v", err)
	}
	if err := CheckName("rewire_build_info", TypeCounter); err == nil {
		t.Error("rewire_build_info accepted for a counter")
	}
	if err := CheckName("rewire_info", TypeGauge); err == nil {
		t.Error("rewire_info (no name segment) accepted")
	}
}

// A nil collector (nil registry) must no-op.
func TestProcessCollectorNil(t *testing.T) {
	var reg *Registry
	pc := RegisterProcess(reg)
	pc.Refresh() // must not panic
}
