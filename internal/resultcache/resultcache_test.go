package resultcache

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
	"rewire/internal/stats"
)

// testMapping builds a tiny but structurally complete mapping by hand:
// two placed nodes, one routed edge, no bank ports.
func testMapping(t *testing.T) *mapping.Mapping {
	t.Helper()
	g := dfg.New("tiny")
	a0 := g.AddNode("a", dfg.OpAdd)
	a1 := g.AddNode("b", dfg.OpAdd)
	g.AddEdge(a0, a1, 0)
	m := mapping.New(g, arch.New4x4(2), 2)
	m.Place[a0] = mapping.Placement{PE: 0, Time: 0}
	m.Place[a1] = mapping.Placement{PE: 1, Time: 1}
	m.Routes[0] = []mrrg.Node{}
	return m
}

func key(s string) Key { return Key{DFG: s, Arch: "arch", Opts: "opts"} }

func TestKeyCanonicalisation(t *testing.T) {
	g := dfg.New("k")
	n0 := g.AddNode("x", dfg.OpAdd)
	n1 := g.AddNode("y", dfg.OpMul)
	g.AddEdge(n0, n1, 1)
	a := arch.New4x4(4)

	base := KeyFor(g, a, Request{Mapper: "rewire", Seed: 1, TimePerII: time.Second, MaxII: 32})

	// Mapper aliases collapse onto one canonical key.
	for _, alias := range []string{"Rewire", "REWIRE", ""} {
		k := KeyFor(g, a, Request{Mapper: alias, Seed: 1, TimePerII: time.Second, MaxII: 32})
		if k != base {
			t.Errorf("alias %q produced a different key", alias)
		}
	}
	pf := KeyFor(g, a, Request{Mapper: "PF*", Seed: 1, TimePerII: time.Second, MaxII: 32})
	if pf != KeyFor(g, a, Request{Mapper: "pathfinder", Seed: 1, TimePerII: time.Second, MaxII: 32}) {
		t.Error("PF* and pathfinder should share a key")
	}
	if pf == base {
		t.Error("pathfinder and rewire must not share a key")
	}

	// Every fingerprint-relevant option must move the key.
	for name, req := range map[string]Request{
		"seed":  {Mapper: "rewire", Seed: 2, TimePerII: time.Second, MaxII: 32},
		"tpi":   {Mapper: "rewire", Seed: 1, TimePerII: 2 * time.Second, MaxII: 32},
		"maxII": {Mapper: "rewire", Seed: 1, TimePerII: time.Second, MaxII: 16},
	} {
		if KeyFor(g, a, req) == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	// DFG content moves the key: an extra edge, a renamed node.
	g2 := g.Clone()
	g2.AddEdge(n1, n0, 1)
	if KeyFor(g2, a, Request{Mapper: "rewire", Seed: 1, TimePerII: time.Second, MaxII: 32}) == base {
		t.Error("adding an edge did not change the key")
	}
	g3 := g.Clone()
	g3.Nodes[0].Name = "renamed"
	if KeyFor(g3, a, Request{Mapper: "rewire", Seed: 1, TimePerII: time.Second, MaxII: 32}) == base {
		t.Error("renaming a node did not change the key")
	}

	// Architecture identity moves the key.
	if KeyFor(g, arch.New4x4(2), Request{Mapper: "rewire", Seed: 1, TimePerII: time.Second, MaxII: 32}) == base {
		t.Error("changing the architecture did not change the key")
	}
}

func TestLRUEvictionAndStats(t *testing.T) {
	c := New(2)
	m := testMapping(t)
	c.Put(key("a"), m, stats.Result{Success: true})
	c.Put(key("b"), m, stats.Result{Success: true})
	if _, _, ok := c.Get(key("a")); !ok { // bump "a": now "b" is LRU
		t.Fatal("expected hit on a")
	}
	c.Put(key("c"), m, stats.Result{Success: true}) // evicts "b"
	if _, _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived eviction")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("entries/capacity = %d/%d, want 2/2", st.Entries, st.Capacity)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

// TestHitIsolation is the cache-correctness guardrail: a returned
// mapping must be isolated from caller mutation in both directions —
// mutating a hit must not corrupt the stored entry, and mutating the
// mapping that populated the cache must not corrupt later hits.
func TestHitIsolation(t *testing.T) {
	c := New(0)
	orig := testMapping(t)
	want := orig.Clone()
	c.Put(key("iso"), orig, stats.Result{Success: true, II: 2})

	// Mutate the mapping the entry was populated from.
	orig.Place[0] = mapping.Placement{PE: 13, Time: 9}
	orig.Routes[0] = append(orig.Routes[0], mrrg.Node(42))
	orig.BankPorts[0] = mrrg.Node(7)

	hit, _, ok := c.Get(key("iso"))
	if !ok {
		t.Fatal("expected a hit")
	}
	assertSameMapping(t, "hit after mutating the source", want, hit)

	// Mutate the hit itself: placements, routes, bank ports.
	hit.Place[1] = mapping.Placement{PE: 15, Time: 3}
	hit.Routes[0] = append(hit.Routes[0], mrrg.Node(99))
	hit.BankPorts[1] = mrrg.Node(5)

	again, _, ok := c.Get(key("iso"))
	if !ok {
		t.Fatal("expected a second hit")
	}
	assertSameMapping(t, "hit after mutating a previous hit", want, again)
	if &again.Place[0] == &hit.Place[0] {
		t.Fatal("two hits share placement backing storage")
	}
}

func assertSameMapping(t *testing.T, what string, want, got *mapping.Mapping) {
	t.Helper()
	if got.II != want.II ||
		!reflect.DeepEqual(want.Place, got.Place) ||
		!reflect.DeepEqual(want.Routes, got.Routes) ||
		!reflect.DeepEqual(want.BankPorts, got.BankPorts) {
		t.Fatalf("%s: mapping diverged from the stored entry:\nwant %+v\ngot  %+v", what, want, got)
	}
}

// TestDoSingleflight: N concurrent identical requests run exactly one
// compile; the rest share the leader's result as independent copies.
func TestDoSingleflight(t *testing.T) {
	c := New(0)
	tmpl := testMapping(t)
	var compiles atomic.Int32
	const n = 16

	var wg sync.WaitGroup
	results := make([]*mapping.Mapping, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, res, _, err := c.Do(context.Background(), key("sf"), func() (*mapping.Mapping, stats.Result) {
				compiles.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open for the waiters
				return tmpl.Clone(), stats.Result{Success: true, II: 2}
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if m == nil || !res.Success {
				t.Error("Do returned no mapping")
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1 (singleflight must collapse identical requests)", got)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.SingleflightShared+st.Hits != n-1 {
		t.Fatalf("shared+hits = %d+%d, want %d callers served without compiling",
			st.SingleflightShared, st.Hits, n-1)
	}
	// Every caller owns an isolated copy.
	for i := 1; i < n; i++ {
		if results[i] == results[0] {
			t.Fatal("two callers received the same *Mapping")
		}
	}
	results[0].Place[0].PE = 77
	if results[1].Place[0].PE == 77 {
		t.Fatal("callers share placement backing storage")
	}
}

func TestDoFailureSharedButNotCached(t *testing.T) {
	c := New(0)
	var compiles atomic.Int32
	fail := func() (*mapping.Mapping, stats.Result) {
		compiles.Add(1)
		return nil, stats.Result{Success: false}
	}
	for i := 0; i < 2; i++ {
		m, res, out, err := c.Do(context.Background(), key("fail"), fail)
		if err != nil || m != nil || res.Success || out.Hit {
			t.Fatalf("round %d: m=%v res=%+v out=%+v err=%v", i, m, res, out, err)
		}
	}
	if got := compiles.Load(); got != 2 {
		t.Fatalf("compiles = %d, want 2 (failures must not be cached)", got)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after failures, want 0", c.Len())
	}
}

// TestDoCanceledLeaderPromotesWaiter: a leader torn down by its own
// context must not poison waiters with the spurious failure — a live
// waiter retries and becomes the new leader.
func TestDoCanceledLeaderPromotesWaiter(t *testing.T) {
	c := New(0)
	tmpl := testMapping(t)
	var compiles atomic.Int32

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		defer close(leaderOut)
		m, _, _, _ := c.Do(leaderCtx, key("promote"), func() (*mapping.Mapping, stats.Result) {
			compiles.Add(1)
			close(leaderIn)
			<-leaderCtx.Done() // the compile honours its context, like MapCtx
			return nil, stats.Result{}
		})
		if m != nil {
			t.Error("cancelled leader should report failure")
		}
	}()
	<-leaderIn

	waiterOut := make(chan *mapping.Mapping, 1)
	go func() {
		m, _, _, err := c.Do(context.Background(), key("promote"), func() (*mapping.Mapping, stats.Result) {
			compiles.Add(1)
			return tmpl.Clone(), stats.Result{Success: true}
		})
		if err != nil {
			t.Errorf("waiter Do: %v", err)
		}
		waiterOut <- m
	}()

	// Give the waiter time to join the flight, then cancel the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	<-leaderOut

	select {
	case m := <-waiterOut:
		if m == nil {
			t.Fatal("waiter inherited the cancelled leader's failure instead of recompiling")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed after leader cancellation")
	}
	if got := compiles.Load(); got != 2 {
		t.Fatalf("compiles = %d, want 2 (cancelled leader, then promoted waiter)", got)
	}
}

// TestDoWaiterContext: a waiter whose own context expires mid-wait
// returns the context error without a mapping.
func TestDoWaiterContext(t *testing.T) {
	c := New(0)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), key("wait"), func() (*mapping.Mapping, stats.Result) {
			close(started)
			<-release
			return nil, stats.Result{}
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	m, _, _, err := c.Do(ctx, key("wait"), func() (*mapping.Mapping, stats.Result) {
		t.Error("expired waiter must not compile")
		return nil, stats.Result{}
	})
	close(release)
	if err == nil || m != nil {
		t.Fatalf("want context error and nil mapping, got m=%v err=%v", m, err)
	}
}

// TestNilCacheIsDisabled: the nil cache computes every time and never
// panics, matching the repo's nil-safe observability idiom.
func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	var compiles atomic.Int32
	for i := 0; i < 2; i++ {
		m, _, out, err := c.Do(context.Background(), key("nil"), func() (*mapping.Mapping, stats.Result) {
			compiles.Add(1)
			return testMapping(t), stats.Result{Success: true}
		})
		if err != nil || m == nil || out.Hit {
			t.Fatalf("nil cache Do: m=%v out=%+v err=%v", m, out, err)
		}
	}
	if compiles.Load() != 2 {
		t.Fatal("nil cache must compute every call")
	}
	if _, _, ok := c.Get(key("nil")); ok {
		t.Fatal("nil cache must miss")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
	c.Put(key("nil"), testMapping(t), stats.Result{})
}
