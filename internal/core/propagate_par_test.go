package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/stats"
)

// illAmender builds an amender over a real PF* initial mapping (the
// state Rewire amends in production) so propagateAll sees realistic
// anchor sets.
func illAmender(t *testing.T, kernel string, seed int64) *amender {
	t.Helper()
	g := kernels.MustLoad(kernel)
	a := arch.New4x4(4)
	m := mapping.New(g, a, mapping.MII(g, a))
	var res stats.Result
	sess, router := pathfinder.BuildInitial(m, seed, &res)
	return &amender{
		g:      g,
		sess:   sess,
		router: router,
		rng:    rand.New(rand.NewSource(seed)),
		res:    &res,
		opt:    Options{}.withDefaults(),
	}
}

// TestPropagateAllParallelMatchesSerial floods the same cluster with the
// worker pool and serially and demands bit-identical propagations: same
// anchor keys, same tuple sets per PE, and same extracted probe paths
// (i.e. identical parent trees where it matters).
func TestPropagateAllParallelMatchesSerial(t *testing.T) {
	// This machine may have GOMAXPROCS=1, which would silently take the
	// serial path; force a real pool.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	tested := 0
	for _, kernel := range []string{"atax", "fft", "gramsch"} {
		// The props map is owned by the amender's scratch (a second
		// propagateAll on one amender would recycle the first result), so
		// run serial and parallel on two identically-seeded amenders: same
		// initial mapping, same cluster rip-ups, same session state.
		amS := illAmender(t, kernel, 7)
		amP := illAmender(t, kernel, 7)
		ill := amS.sess.IllMapped()
		if len(ill) == 0 {
			continue // this initial mapping needed no amendment
		}
		tested++
		uS := amS.buildCluster(ill)
		uP := amP.buildCluster(amP.sess.IllMapped())

		amS.opt.SerialPropagation = true
		serial := amS.propagateAll(uS)
		parallel := amP.propagateAll(uP)

		if len(serial) != len(parallel) {
			t.Fatalf("%s: anchor count differs: serial %d, parallel %d", kernel, len(serial), len(parallel))
		}
		for key, ps := range serial {
			pp, ok := parallel[key]
			if !ok {
				t.Fatalf("%s: anchor key %d missing from parallel result", kernel, key)
			}
			comparePropagations(t, kernel, key, ps, pp)
		}
		releaseProps(serial)
		releaseProps(parallel)
	}
	if tested == 0 {
		t.Fatal("every initial mapping was already valid; no propagation compared")
	}
}

func comparePropagations(t *testing.T, kernel string, key int, a, b *propagation) {
	t.Helper()
	if a.source != b.source || a.forward != b.forward || a.srcTime != b.srcTime || a.rounds != b.rounds {
		t.Fatalf("%s anchor %d: header differs: (%d %v %d %d) vs (%d %v %d %d)", kernel, key,
			a.source, a.forward, a.srcTime, a.rounds, b.source, b.forward, b.srcTime, b.rounds)
	}
	if a.nArrivePEs != b.nArrivePEs {
		t.Fatalf("%s anchor %d: tuple PE sets differ: %d vs %d PEs", kernel, key, a.nArrivePEs, b.nArrivePEs)
	}
	numPEs := len(a.arrive)
	if n := len(b.arrive); n > numPEs {
		numPEs = n
	}
	for pe := 0; pe < numPEs; pe++ {
		al, bl := a.cyclesAt(pe), b.cyclesAt(pe)
		if len(al) != len(bl) {
			t.Fatalf("%s anchor %d PE %d: %d vs %d tuples", kernel, key, pe, len(al), len(bl))
		}
		for i := range al {
			if al[i].cycles != bl[i].cycles {
				t.Fatalf("%s anchor %d PE %d tuple %d: cycles %d vs %d",
					kernel, key, pe, i, al[i].cycles, bl[i].cycles)
			}
			// The probe paths behind the tuples must match too: the
			// verification fast path replays them into real routes.
			pa := a.extractPath(al[i], al[i].cycles)
			pb := b.extractPath(bl[i], bl[i].cycles)
			if len(pa) != len(pb) {
				t.Fatalf("%s anchor %d PE %d tuple %d: path length %d vs %d",
					kernel, key, pe, i, len(pa), len(pb))
			}
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("%s anchor %d PE %d tuple %d: path[%d] = %v vs %v",
						kernel, key, pe, i, j, pa[j], pb[j])
				}
			}
		}
	}
}

// TestReleasePropsRecycles checks the scratch lifecycle: released parent
// arrays go back to the pool and a released propagation cannot be
// extracted from again.
func TestReleasePropsRecycles(t *testing.T) {
	am := illAmender(t, "atax", 3)
	ill := am.sess.IllMapped()
	if len(ill) == 0 {
		t.Skip("initial mapping already valid; nothing to flood")
	}
	u := am.buildCluster(ill)
	props := am.propagateAll(u)
	if len(props) == 0 {
		t.Fatal("no propagations to release")
	}
	plist := make([]*propagation, 0, len(props))
	for _, p := range props {
		plist = append(plist, p)
	}
	releaseProps(props)
	if len(props) != 0 {
		t.Fatalf("releaseProps left %d entries in the map", len(props))
	}
	for _, p := range plist {
		if p.par != nil {
			t.Fatal("parent array not released")
		}
		if p.visited != nil {
			t.Fatal("visited scratch retained past the flood")
		}
	}
	// Double release must be a no-op, not a double pool put: the map is
	// already empty, so nothing can be returned to the pool twice.
	releaseProps(props)
}

// TestMapWithParallelPropagationMatchesSerial runs the full mapper both
// ways on one kernel: the end-to-end results (II, expansions, trial
// counts) must be identical since the floods are. The per-II budget is
// effectively unbounded so the work limits (AttemptsPerII,
// ClusterFailBudget) terminate the search — wall-clock cutoffs would
// make the two runs diverge on a loaded machine or under -race (see
// docs/CONCURRENCY.md).
func TestMapWithParallelPropagationMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	g := kernels.MustLoad("doitgen")
	a := arch.New4x4(4)
	_, serial := Map(g, a, Options{Seed: 5, TimePerII: time.Hour, SerialPropagation: true})
	_, parallel := Map(g, a, Options{Seed: 5, TimePerII: time.Hour})
	if serial.Success != parallel.Success || serial.II != parallel.II {
		t.Fatalf("II differs: serial %+v, parallel %+v", serial, parallel)
	}
	if serial.PlacementsTried != parallel.PlacementsTried ||
		serial.RouterExpansions != parallel.RouterExpansions ||
		serial.VerifyAttempts != parallel.VerifyAttempts {
		t.Fatalf("work counters differ: serial %+v, parallel %+v", serial, parallel)
	}
}
