// Package mrrg builds the Modulo Routing Resource Graph of a CGRA: the
// hardware resources (ALUs, mesh links, registers, memory-bank ports)
// time-extended to II cycles with wrap-around, following DRESC. Mapping a
// DFG means assigning each operation to an FU resource and each dependency
// to a chain of routing resources through this graph.
//
// Timing model (uniform one-cycle steps):
//
//   - FU(pe,t) executes an operation during cycle t; its latched result
//     can be consumed or moved during t+1.
//   - Link(pe,d,t) carries a value over the mesh wire leaving pe in
//     direction d during cycle t; the value is latched at the neighbour
//     and usable during t+1.
//   - Reg(pe,r,t) holds a value in register r of pe during cycle t; it
//     remains usable at pe during t+1.
//   - A free FU may also forward a value unchanged (a move/route
//     operation), so routes may pass through FUs, as in SPR/PathFinder
//     CGRA mappers.
//
// All times are modulo II: a resource used at time t is used at t, t+II,
// t+2*II, ... of the steady-state schedule, so a single route must never
// use the same MRRG node twice (the second use would collide with another
// iteration's value in flight).
//
// Bank(p,t) nodes are not routing resources: a memory operation placed on
// an FU at time t additionally reserves one bank port at t.
package mrrg

import (
	"fmt"
	"sync"

	"rewire/internal/arch"
)

// Kind classifies an MRRG resource.
type Kind uint8

// Resource kinds.
const (
	KindFU Kind = iota
	KindLink
	KindReg
	KindBank
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindFU:
		return "fu"
	case KindLink:
		return "link"
	case KindReg:
		return "reg"
	case KindBank:
		return "bank"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node identifies one MRRG resource instance (a resource at a specific
// modulo time slot).
type Node int32

// Invalid marks a nonexistent node (e.g. a boundary link).
const Invalid Node = -1

// Graph is the static MRRG for one (architecture, II) pair. It is
// immutable after construction; mutable occupancy lives in State.
type Graph struct {
	Arch *arch.CGRA
	II   int

	slotsPerPE int // FU + links + registers
	numSlots   int // static resources: PEs' slots then bank ports
	numNodes   int // numSlots * II

	kind   []Kind
	pe     []int32 // owning PE, -1 for banks
	valid  []bool  // false for boundary links
	feedPE []int32 // PE whose FU can consume this resource's value next cycle

	// Adjacency is stored CSR-style: one flat arena of edge endpoints per
	// direction plus per-node offsets, built in two passes (count, then
	// fill) so construction does a handful of allocations instead of one
	// per node. Succs(n) and Preds(n) are subslices of these arenas.
	succData []Node
	succOff  []int32 // len numNodes+1; node n's successors at [off[n], off[n+1])
	predData []Node
	predOff  []int32

	// statePool recycles State scratch buffers (sized to this graph) so
	// the many short-lived sessions of an II sweep or eval run reuse
	// occupancy arrays instead of reallocating them. See State.Recycle.
	statePool sync.Pool
}

// New builds the MRRG of cgra time-extended to ii cycles.
func New(cgra *arch.CGRA, ii int) *Graph {
	if ii < 1 {
		panic(fmt.Sprintf("mrrg: II must be >= 1, got %d", ii))
	}
	g := &Graph{Arch: cgra, II: ii}
	g.slotsPerPE = 1 + int(arch.NumDirs) + cgra.Regs
	g.numSlots = cgra.NumPEs()*g.slotsPerPE + cgra.BankPorts()
	g.numNodes = g.numSlots * ii

	g.kind = make([]Kind, g.numNodes)
	g.valid = make([]bool, g.numNodes)
	peBack := make([]int32, 2*g.numNodes)
	g.pe = peBack[:g.numNodes:g.numNodes]
	g.feedPE = peBack[g.numNodes:]

	g.classify()
	g.connect()
	return g
}

// node packs (slot, t) into a Node id.
func (g *Graph) node(slot, t int) Node { return Node(slot*g.II + t) }

// Slot returns the static resource index of n (same resource across all
// time steps).
func (g *Graph) Slot(n Node) int { return int(n) / g.II }

// Time returns the modulo time step of n.
func (g *Graph) Time(n Node) int { return int(n) % g.II }

// NumNodes returns the total node count (including invalid boundary
// links, which have no adjacency).
func (g *Graph) NumNodes() int { return g.numNodes }

// FU returns the ALU node of pe at modulo time t.
func (g *Graph) FU(pe, t int) Node { return g.node(pe*g.slotsPerPE, g.wrap(t)) }

// Link returns the output-link node of pe in direction d at time t; it
// may be an invalid node on the mesh boundary (check Valid).
func (g *Graph) Link(pe int, d arch.Dir, t int) Node {
	return g.node(pe*g.slotsPerPE+1+int(d), g.wrap(t))
}

// Reg returns register r of pe at time t.
func (g *Graph) Reg(pe, r, t int) Node {
	return g.node(pe*g.slotsPerPE+1+int(arch.NumDirs)+r, g.wrap(t))
}

// Bank returns memory-bank port p at time t.
func (g *Graph) Bank(p, t int) Node {
	return g.node(g.Arch.NumPEs()*g.slotsPerPE+p, g.wrap(t))
}

// wrap reduces an absolute time to a modulo slot.
func (g *Graph) wrap(t int) int {
	t %= g.II
	if t < 0 {
		t += g.II
	}
	return t
}

// Kind returns the resource kind of n.
func (g *Graph) Kind(n Node) Kind { return g.kind[n] }

// PE returns the PE owning n (-1 for bank ports).
func (g *Graph) PE(n Node) int { return int(g.pe[n]) }

// Valid reports whether n is a physically present resource (boundary
// links are allocated but invalid).
func (g *Graph) Valid(n Node) bool { return g.valid[n] }

// FeedsPE returns the PE whose FU can consume this resource's value in
// the next cycle: the neighbour for links, the owning PE for FUs and
// registers, -1 for banks.
func (g *Graph) FeedsPE(n Node) int { return int(g.feedPE[n]) }

// Succs returns the resources reachable from n one cycle later. The
// slice is owned by the graph and must not be mutated or appended to.
func (g *Graph) Succs(n Node) []Node { return g.succData[g.succOff[n]:g.succOff[n+1]] }

// Preds returns the resources that can reach n from one cycle earlier.
// The slice is owned by the graph and must not be mutated or appended to.
func (g *Graph) Preds(n Node) []Node { return g.predData[g.predOff[n]:g.predOff[n+1]] }

// LinkDir returns the mesh direction of a link resource; it panics on
// other kinds.
func (g *Graph) LinkDir(n Node) arch.Dir {
	if g.kind[n] != KindLink {
		panic("mrrg: LinkDir of " + g.String(n))
	}
	return arch.Dir(g.Slot(n)%g.slotsPerPE - 1)
}

// RegIndex returns the register number of a register resource; it panics
// on other kinds.
func (g *Graph) RegIndex(n Node) int {
	if g.kind[n] != KindReg {
		panic("mrrg: RegIndex of " + g.String(n))
	}
	return g.Slot(n)%g.slotsPerPE - 1 - int(arch.NumDirs)
}

// BankIndex returns the port number of a bank resource; it panics on
// other kinds.
func (g *Graph) BankIndex(n Node) int {
	if g.kind[n] != KindBank {
		panic("mrrg: BankIndex of " + g.String(n))
	}
	return g.Slot(n) - g.Arch.NumPEs()*g.slotsPerPE
}

// String renders a node for diagnostics, e.g. "fu(pe5)@2" or
// "link(pe3,E)@0".
func (g *Graph) String(n Node) string {
	if n < 0 || int(n) >= g.numNodes {
		return fmt.Sprintf("node(%d)", int(n))
	}
	t := g.Time(n)
	slot := g.Slot(n)
	peSlots := g.Arch.NumPEs() * g.slotsPerPE
	if slot >= peSlots {
		return fmt.Sprintf("bank(%d)@%d", slot-peSlots, t)
	}
	pe := slot / g.slotsPerPE
	local := slot % g.slotsPerPE
	switch {
	case local == 0:
		return fmt.Sprintf("fu(pe%d)@%d", pe, t)
	case local <= int(arch.NumDirs):
		return fmt.Sprintf("link(pe%d,%s)@%d", pe, arch.Dir(local-1), t)
	default:
		return fmt.Sprintf("reg(pe%d,r%d)@%d", pe, local-1-int(arch.NumDirs), t)
	}
}

func (g *Graph) classify() {
	a := g.Arch
	for peIdx := 0; peIdx < a.NumPEs(); peIdx++ {
		for t := 0; t < g.II; t++ {
			fu := g.FU(peIdx, t)
			g.kind[fu] = KindFU
			g.pe[fu] = int32(peIdx)
			g.valid[fu] = true
			g.feedPE[fu] = int32(peIdx)
			for d := arch.Dir(0); d < arch.NumDirs; d++ {
				ln := g.Link(peIdx, d, t)
				g.kind[ln] = KindLink
				g.pe[ln] = int32(peIdx)
				nbr := a.Neighbor(peIdx, d)
				g.valid[ln] = nbr >= 0
				g.feedPE[ln] = int32(nbr)
			}
			for r := 0; r < a.Regs; r++ {
				rg := g.Reg(peIdx, r, t)
				g.kind[rg] = KindReg
				g.pe[rg] = int32(peIdx)
				g.valid[rg] = true
				g.feedPE[rg] = int32(peIdx)
			}
		}
	}
	for p := 0; p < a.BankPorts(); p++ {
		for t := 0; t < g.II; t++ {
			bk := g.Bank(p, t)
			g.kind[bk] = KindBank
			g.pe[bk] = -1
			g.valid[bk] = true
			g.feedPE[bk] = -1
		}
	}
}

// connect wires the time-step adjacency into the CSR arenas. All edges
// go from time t to time (t+1) mod II. The edge set is enumerated twice
// by forEachEdge — once to count per-node degrees, once to fill the
// arenas — so per-node successor and predecessor order is exactly the
// enumeration order, which routing determinism depends on.
func (g *Graph) connect() {
	// Counting pass. offs doubles as both offset tables: after the prefix
	// sum, succOff[n] is the start of node n's successor run (likewise
	// predOff for predecessors).
	offs := make([]int32, 2*(g.numNodes+1))
	succOff := offs[: g.numNodes+1 : g.numNodes+1]
	predOff := offs[g.numNodes+1:]
	edges := 0
	g.forEachEdge(func(from, to Node) {
		succOff[from+1]++
		predOff[to+1]++
		edges++
	})
	for i := 0; i < g.numNodes; i++ {
		succOff[i+1] += succOff[i]
		predOff[i+1] += predOff[i]
	}
	g.succOff = succOff
	g.predOff = predOff

	// Fill pass, with a cursor per node starting at its offset.
	data := make([]Node, 2*edges)
	g.succData = data[:edges:edges]
	g.predData = data[edges:]
	curs := make([]int32, 2*g.numNodes)
	succCur := curs[:g.numNodes:g.numNodes]
	predCur := curs[g.numNodes:]
	copy(succCur, succOff[:g.numNodes])
	copy(predCur, predOff[:g.numNodes])
	g.forEachEdge(func(from, to Node) {
		g.succData[succCur[from]] = to
		succCur[from]++
		g.predData[predCur[to]] = from
		predCur[to]++
	})
}

// forEachEdge enumerates every valid MRRG edge in a fixed, deterministic
// order, invoking add(from, to) for each. connect runs it twice (count
// and fill); the order must be identical across both passes.
func (g *Graph) forEachEdge(add func(from, to Node)) {
	a := g.Arch
	addEdgeAllowSelf := func(from, to Node) {
		if !g.valid[from] || !g.valid[to] {
			return
		}
		add(from, to)
	}
	addEdge := func(from, to Node) {
		// At II=1 a dwell edge (reg r -> reg r) or a link/reg self edge
		// would mean one value instance occupying the resource for two
		// consecutive cycles, always colliding with the next iteration's
		// value. The only legal self edge is FU -> FU forwarding, where
		// the implicit ALU output register holds each value for exactly
		// one cycle (added via addEdgeAllowSelf below).
		if from == to {
			return
		}
		addEdgeAllowSelf(from, to)
	}
	// exits appends every resource the value held "at pe" during cycle t
	// can occupy during t+1: the pe's FU (consume or forward), its output
	// links, and its registers.
	exits := func(from Node, pe, t1 int) {
		if g.kind[from] == KindFU {
			addEdgeAllowSelf(from, g.FU(pe, t1))
		} else {
			addEdge(from, g.FU(pe, t1))
		}
		for d := arch.Dir(0); d < arch.NumDirs; d++ {
			addEdge(from, g.Link(pe, d, t1))
		}
		for r := 0; r < a.Regs; r++ {
			addEdge(from, g.Reg(pe, r, t1))
		}
	}
	for pe := 0; pe < a.NumPEs(); pe++ {
		for t := 0; t < g.II; t++ {
			t1 := (t + 1) % g.II
			// FU result is held at its own PE.
			exits(g.FU(pe, t), pe, t1)
			// A link's value is latched at the neighbour.
			for d := arch.Dir(0); d < arch.NumDirs; d++ {
				ln := g.Link(pe, d, t)
				if nbr := a.Neighbor(pe, d); nbr >= 0 {
					exits(ln, nbr, t1)
				}
			}
			// A register's value stays at its own PE. Dwelling keeps
			// using the same register, so only reg r -> reg r.
			for r := 0; r < a.Regs; r++ {
				rg := g.Reg(pe, r, t)
				addEdge(rg, g.FU(pe, t1))
				for d := arch.Dir(0); d < arch.NumDirs; d++ {
					addEdge(rg, g.Link(pe, d, t1))
				}
				addEdge(rg, g.Reg(pe, r, t1))
			}
		}
	}
}
