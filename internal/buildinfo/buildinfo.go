// Package buildinfo reads the binary's own identity — Go toolchain
// version, VCS revision, commit time and dirty-worktree flag — from the
// build metadata the Go linker stamps into every binary
// (runtime/debug.ReadBuildInfo). It is what ties an observed run to the
// code that produced it: the QoR ledger stamps every entry with it, the
// four CLIs print it under -version, and rewire-serve exports it as the
// rewire_build_info gauge.
//
// Binaries built from a source tarball (or under `go test`) carry no
// VCS metadata; the fields then report "unknown" rather than failing,
// so callers never need to guard.
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info is the build identity of the running binary.
type Info struct {
	// GoVersion is the toolchain that built the binary (e.g. "go1.22.1").
	GoVersion string `json:"go_version"`
	// Revision is the full VCS commit hash, or "unknown" when the binary
	// was built outside a checkout (tarball builds, go test).
	Revision string `json:"vcs_revision"`
	// Time is the commit time (RFC3339) when known, "" otherwise.
	Time string `json:"vcs_time,omitempty"`
	// Modified reports a dirty worktree at build time: the revision alone
	// does not identify the code.
	Modified bool `json:"vcs_modified"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the binary's build identity. The first call reads
// runtime/debug.ReadBuildInfo; later calls return the cached value.
func Get() Info {
	once.Do(func() {
		cached = read()
	})
	return cached
}

func read() Info {
	info := Info{GoVersion: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				info.Revision = s.Value
			}
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// ShortRevision returns the first 12 characters of the revision — the
// customary short hash — or the full value when shorter.
func (i Info) ShortRevision() string {
	if len(i.Revision) > 12 {
		return i.Revision[:12]
	}
	return i.Revision
}

// String renders the identity on one line, the -version output of the
// CLIs: "rewire <rev> (<go version>[, modified])".
func (i Info) String() string {
	s := "rewire " + i.ShortRevision() + " (" + i.GoVersion
	if i.Modified {
		s += ", modified"
	}
	return s + ")"
}
