package rewire

import (
	"testing"
	"time"
)

// TestIntegrationAllKernelsOnBaseline maps every bundled kernel on the
// paper's baseline 4x4 fabric with Rewire and independently validates
// each result. Run with -short to skip (it takes a couple of minutes).
func TestIntegrationAllKernelsOnBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	cgra := New4x4(4)
	for _, name := range Kernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := LoadKernel(name)
			if err != nil {
				t.Fatal(err)
			}
			m, res, err := Map(g, cgra, Options{Seed: 1, TimePerII: 1500 * time.Millisecond})
			if err != nil {
				t.Fatalf("mapping failed: %v", err)
			}
			if err := Validate(m); err != nil {
				t.Fatalf("invalid mapping: %v", err)
			}
			if res.II < res.MII {
				t.Fatalf("II %d below theoretical MII %d", res.II, res.MII)
			}
			if res.II > res.MII+5 {
				// Wall-clock budgets make achieved II load-sensitive;
				// surface outliers without failing CI on a busy machine.
				t.Logf("warning: II %d far above MII %d (budget/load sensitive)", res.II, res.MII)
			}
			// Functional check: the mapping computes the right values on
			// the cycle-accurate simulator.
			if err := VerifyExecution(m, 4); err != nil {
				t.Fatalf("functional verification: %v", err)
			}
		})
	}
}

// TestIntegrationPresetCoverage maps a representative kernel on all four
// paper architectures with all three mappers.
func TestIntegrationPresetCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	g, err := LoadKernel("ludcmp")
	if err != nil {
		t.Fatal(err)
	}
	for _, cgra := range []*CGRA{New4x4(4), New8x8(4), New4x4(2), New4x4(1)} {
		for _, mapper := range []MapperName{MapperRewire, MapperPathFinder, MapperSA} {
			m, res, err := Map(g, cgra, Options{
				Mapper: mapper, Seed: 2, TimePerII: 1500 * time.Millisecond,
			})
			if err != nil {
				// SA legitimately fails tight configurations (the paper's
				// Figure 5 has missing SA bars); Rewire and PF* must not.
				if mapper == MapperSA {
					t.Logf("SA failed on %s (expected on tight configs): %v", cgra.Name, res)
					continue
				}
				t.Errorf("%s failed on %s: %v", mapper, cgra.Name, err)
				continue
			}
			if err := Validate(m); err != nil {
				t.Errorf("%s on %s: invalid mapping: %v", mapper, cgra.Name, err)
			}
		}
	}
}

// TestIntegrationAmendSAMapping exercises the orthogonality API: amend a
// partially-built SA placement.
func TestIntegrationAmendSAMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	g, err := LoadKernel("viterbi")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	m, res, err := Map(g, cgra, Options{Mapper: MapperSA, Seed: 4, TimePerII: 2 * time.Second})
	if err != nil {
		t.Skipf("SA could not produce a base mapping: %v", res)
	}
	// Corrupt it: drop a third of the routes, then let Rewire repair.
	broken := m.Clone()
	for e := range broken.Routes {
		if e%3 == 0 {
			broken.Routes[e] = nil
		}
	}
	repaired, ares, err := Amend(broken, Options{Seed: 4, TimePerII: 5 * time.Second})
	if err != nil {
		t.Fatalf("amend failed: %v (%v)", err, ares)
	}
	if err := Validate(repaired); err != nil {
		t.Fatal(err)
	}
	if repaired.II != m.II {
		t.Fatalf("amend changed II %d -> %d", m.II, repaired.II)
	}
}
