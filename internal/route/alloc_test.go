package route

import (
	"testing"

	"rewire/internal/arch"
	"rewire/internal/mrrg"
)

// TestFindPathAllocs pins the router hot path's allocation budget: one
// allocation per successful call (the returned path, which callers
// retain) and zero per failed call. A regression here means the banned
// set, duplicate detector, or priority queue started allocating again.
func TestFindPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := mrrg.New(arch.New8x8(4), 4)
	st := mrrg.NewState(g)
	r := NewRouter(g, DefaultMaxLat(8, 8, 4))
	cost := StrictCost(st, 1)

	src, dst := g.FU(0, 0), g.FU(9, 1)
	if _, ok := r.FindPath(src, dst, 5, cost, 1); !ok {
		t.Fatal("setup route must exist")
	}
	got := testing.AllocsPerRun(100, func() {
		if _, ok := r.FindPath(src, dst, 5, cost, 1); !ok {
			t.Fatal("route vanished")
		}
	})
	if got > 1 {
		t.Errorf("successful FindPath allocates %.1f/op, want <= 1 (the returned path)", got)
	}

	// An impossible latency fails before searching; an unreachable exact
	// latency fails after searching. Neither may allocate.
	got = testing.AllocsPerRun(100, func() {
		if _, ok := r.FindPath(src, dst, 2, cost, 1); ok {
			t.Fatal("latency 2 to a Manhattan-3 PE should be unroutable")
		}
	})
	if got > 0 {
		t.Errorf("failed FindPath allocates %.1f/op, want 0", got)
	}
}

// TestRouterTrimsQueue checks the retained-capacity cap: after a search
// whose queue grew past maxRetainedPQ, the router must not pin that
// peak-size buffer. The overgrown queue is injected directly — typical
// fabrics drain the queue too fast to reach the cap organically, which
// is exactly why an occasional pathological search would otherwise pin
// its peak allocation for the router's lifetime.
func TestRouterTrimsQueue(t *testing.T) {
	g := mrrg.New(arch.New8x8(4), 4)
	st := mrrg.NewState(g)
	r := NewRouter(g, DefaultMaxLat(8, 8, 4))
	cost := StrictCost(st, 1)

	r.pq = make(stateHeap, 0, 4*maxRetainedPQ)
	if _, ok := r.FindPath(g.FU(0, 0), g.FU(9, 1), 5, cost, 1); !ok {
		t.Fatal("route must exist")
	}
	if cap(r.pq) > maxRetainedPQ {
		t.Errorf("router retains pq capacity %d after FindPath, cap is %d", cap(r.pq), maxRetainedPQ)
	}
	// And routing still works with the fresh queue.
	if _, ok := r.FindPath(g.FU(0, 0), g.FU(9, 1), 5, cost, 1); !ok {
		t.Fatal("route must survive the trim")
	}
}
