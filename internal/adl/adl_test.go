package adl

import (
	"strings"
	"testing"

	"rewire/internal/arch"
)

func TestParseFullSpec(t *testing.T) {
	c, err := Parse(`
# a 6x6 area-reduced fabric
cgra myfabric
grid 6 x 6
regs 3
banks 4
memcols 0 5
torus off
strip mul keep 0 7 14 21 28 35
strip div keep 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "myfabric" || c.Rows != 6 || c.Cols != 6 || c.Regs != 3 || c.Banks != 4 {
		t.Fatalf("parsed: %+v", c)
	}
	if c.NumMemPEs() != 12 {
		t.Fatalf("mem PEs = %d, want 12", c.NumMemPEs())
	}
	if c.CountSupporting(arch.ClassMul) != 6 {
		t.Fatalf("mul PEs = %d, want 6", c.CountSupporting(arch.ClassMul))
	}
	if c.CountSupporting(arch.ClassDiv) != 1 {
		t.Fatalf("div PEs = %d, want 1", c.CountSupporting(arch.ClassDiv))
	}
	if c.Torus {
		t.Fatal("torus should be off")
	}
}

func TestParseDefaults(t *testing.T) {
	c, err := Parse("cgra mini\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 4 || c.Cols != 4 || c.Regs != 2 || c.Banks != 2 {
		t.Fatalf("defaults: %+v", c)
	}
	// Default memory on the left column only (narrow grid).
	if c.NumMemPEs() != 4 {
		t.Fatalf("mem PEs = %d", c.NumMemPEs())
	}
	// Wide grids get both outer columns by default.
	w, err := Parse("grid 4 x 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if w.NumMemPEs() != 8 {
		t.Fatalf("wide default mem PEs = %d, want 8", w.NumMemPEs())
	}
}

func TestParseGridWithoutX(t *testing.T) {
	c, err := Parse("grid 3 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 || c.Cols != 5 {
		t.Fatalf("grid = %dx%d", c.Rows, c.Cols)
	}
}

func TestParseTorus(t *testing.T) {
	c, err := Parse("torus on\n")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Torus {
		t.Fatal("torus not enabled")
	}
	if c.Neighbor(0, arch.North) < 0 {
		t.Fatal("torus wrap missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"grid 0 x 4\n",                   // zero rows
		"grid 4\n",                       // missing cols
		"regs -1\n",                      // negative
		"regs\n",                         // missing arg
		"banks two\n",                    // not a number
		"memcols 9\n",                    // outside default 4-col grid
		"torus maybe\n",                  // bad flag
		"strip mul 0 1\n",                // missing keep
		"strip warp keep 0\n",            // unknown class
		"grid 2 x 2\nstrip mul keep 9\n", // keep outside grid
		"quantum 7\n",                    // unknown directive
		"cgra\n",                         // missing name
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `
cgra rt
grid 4 x 4
regs 2
banks 2
memcols 0
strip mul keep 5 10
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(Format(c))
	if err != nil {
		t.Fatalf("re-parse of Format output failed: %v\n%s", err, Format(c))
	}
	if c2.Name != c.Name || c2.Rows != c.Rows || c2.Cols != c.Cols ||
		c2.Regs != c.Regs || c2.Banks != c.Banks || c2.NumMemPEs() != c.NumMemPEs() {
		t.Fatalf("round trip changed the fabric:\n%s", Format(c2))
	}
	for cl := arch.OpClass(0); cl < arch.NumOpClasses; cl++ {
		if c.CountSupporting(cl) != c2.CountSupporting(cl) {
			t.Fatalf("class %v changed: %d vs %d", cl, c.CountSupporting(cl), c2.CountSupporting(cl))
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("grid zero x 4\n")
}

func TestLaterDirectivesOverride(t *testing.T) {
	c, err := Parse("regs 1\nregs 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs != 8 {
		t.Fatalf("regs = %d, want the later 8", c.Regs)
	}
	if !strings.Contains(Format(c), "regs 8") {
		t.Fatal("format lost override")
	}
}
