// Package rewire is a from-scratch reproduction of "Rewire: Advancing
// CGRA Mapping Through a Consolidated Routing Paradigm" (DAC 2025): a
// complete CGRA mapping stack — loop-kernel IR, DFG analyses, CGRA and
// modulo-routing-resource-graph models, an exact-latency router — with
// three mappers on top: Rewire (the paper's multi-node consolidated
// routing paradigm), PF* (a PathFinder-style negotiated-congestion
// baseline) and SA (a simulated-annealing baseline).
//
// Quick start:
//
//	g, _ := rewire.LoadKernel("fft")
//	cgra := rewire.New4x4(4)
//	m, res, err := rewire.Map(g, cgra, rewire.Options{})
//	fmt.Println(res, err)
//	fmt.Print(rewire.Render(m))
//
// The full evaluation harness behind the paper's Figure 5, Figure 6 and
// Table I lives in cmd/rewire-experiments.
package rewire

import (
	"context"
	"fmt"
	"io"
	"time"

	"rewire/internal/adl"
	"rewire/internal/arch"
	"rewire/internal/bundle"
	"rewire/internal/config"
	"rewire/internal/core"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/interp"
	"rewire/internal/kernelir"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/obs"
	"rewire/internal/pathfinder"
	"rewire/internal/portfolio"
	"rewire/internal/power"
	"rewire/internal/resultcache"
	"rewire/internal/sa"
	"rewire/internal/sim"
	"rewire/internal/stats"
	"rewire/internal/trace"
	"rewire/internal/viz"
)

// Re-exported core types. Aliases keep the implementation in internal
// packages while giving users real names to hold.
type (
	// CGRA describes a target architecture (grid, registers, banks).
	CGRA = arch.CGRA
	// DFG is a data-flow graph of a loop kernel.
	DFG = dfg.Graph
	// Mapping is a placed-and-routed modulo schedule.
	Mapping = mapping.Mapping
	// Result carries mapping quality and compilation-effort metrics.
	Result = stats.Result
	// Config is a generated cycle-by-cycle CGRA configuration.
	Config = config.Config
	// Trace is the observable store stream of an execution.
	Trace = interp.Trace
	// EnergyReport is a per-iteration activity and energy estimate.
	EnergyReport = power.Report
	// Tracer collects hierarchical phase spans, counters and histograms
	// from a mapping run. A nil *Tracer is the disabled tracer: every
	// method is a no-op costing one pointer check, so instrumented code
	// needs no guards. Export with WriteChromeTrace (Perfetto-loadable)
	// or WriteJSONL. See docs/OBSERVABILITY.md.
	Tracer = trace.Tracer
	// Logger emits structured per-run log records (log/slog underneath).
	// A nil *Logger is the disabled logger: every method is a no-op
	// costing one pointer check. See NewLogger and docs/OBSERVABILITY.md.
	Logger = obs.Logger
	// ResultCache is a bounded, LRU-evicting, singleflight-collapsing
	// cache of finished mappings, content-addressed by the canonical
	// (DFG, architecture, options) fingerprint triple. A nil
	// *ResultCache is the disabled cache. See NewResultCache, MapCached
	// and docs/CACHING.md.
	ResultCache = resultcache.Cache
	// CacheOutcome reports how a MapCached call was satisfied: Hit
	// (served without compiling) and Shared (by waiting on a concurrent
	// identical compile).
	CacheOutcome = resultcache.Outcome
	// DiagCollector accumulates a mapping post-mortem: the per-II attempt
	// timeline, amendment-round convergence series, contested-resource
	// attribution on failed attempts, and the unroutable-edge list. A nil
	// *DiagCollector is the disabled collector: every method is a no-op
	// costing one pointer check. See NewDiagCollector and
	// docs/OBSERVABILITY.md.
	DiagCollector = diag.Collector
	// DiagReport is the structured post-mortem a DiagCollector renders
	// after the run (schema "rewire-report-v1"). Marshal it as JSON or
	// render it with RenderReport/RenderReportHTML.
	DiagReport = diag.Report
	// DiagSummary is a report's top-line condensation (outcome, IIs
	// attempted, the few most contested resources), sized for embedding
	// in API error answers.
	DiagSummary = diag.Summary
	// ProgressBus is a bounded drop-oldest broadcast bus of coarse
	// progress events (run, II and amendment-round boundaries). A nil
	// *ProgressBus is the disabled bus: Publish is a no-op costing one
	// pointer check. See NewProgressBus and docs/OBSERVABILITY.md.
	ProgressBus = diag.Bus
	// ProgressEvent is one progress-bus event (schema
	// "rewire-progress-v1").
	ProgressEvent = diag.Event
)

// NewResultCache builds a result cache bounded to capacity finished
// mappings (0 means the default, resultcache.DefaultCapacity). Pass it
// in Options.Cache to make Map/MapCtx consult and populate it.
func NewResultCache(capacity int) *ResultCache { return resultcache.New(capacity) }

// NewTracer returns an enabled tracer to pass in Options.Tracer.
func NewTracer() *Tracer { return trace.New() }

// NewDiagCollector returns an enabled diagnostics collector to pass in
// Options.Diag. After the run, Report() (or ReportTopK) renders the
// post-mortem.
func NewDiagCollector() *DiagCollector { return diag.NewCollector() }

// NewProgressBus returns an enabled progress bus retaining up to
// capacity events (0 means diag.DefaultBusCapacity). Pass it in
// Options.Progress, Subscribe for live streams, and Close it when the
// run's consumers are done.
func NewProgressBus(capacity int) *ProgressBus { return diag.NewBus(capacity) }

// NewLogger builds a structured logger writing to w to pass in
// Options.Logger. Level is "debug", "info", "warn" or "error"; format
// is "text" or "json". Both CLIs and the rewire-serve daemon use this
// same setup, so log flags mean the same thing everywhere.
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	return obs.Setup(w, level, format)
}

// MapperName selects which mapping algorithm Map uses.
type MapperName string

// Available mappers.
const (
	MapperRewire     MapperName = "rewire"
	MapperPathFinder MapperName = "pathfinder"
	MapperSA         MapperName = "sa"
	// MapperPortfolio races the registered backends (Rewire, PF*, SA)
	// per II under one shared budget and commits the result of the
	// highest-priority backend that succeeds at the lowest feasible II
	// — deterministic at every parallelism width. See
	// internal/portfolio and docs/CONCURRENCY.md, "Layer 4".
	MapperPortfolio MapperName = "portfolio"
)

// Options tunes Map. The zero value maps with Rewire under default
// budgets.
type Options struct {
	// Mapper selects the algorithm (default MapperRewire).
	Mapper MapperName
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// TimePerII bounds the wall-clock per attempted II (default 10s).
	TimePerII time.Duration
	// MaxII caps the initiation-interval sweep (default 32).
	MaxII int
	// SweepParallelism is the speculative II-sweep window: how many II
	// attempts may run concurrently (0 or 1 is the serial sweep). The
	// committed mapping and II are bit-identical at every width — only
	// wall-clock changes. See docs/CONCURRENCY.md, "Layer 3".
	SweepParallelism int
	// PortfolioBackends selects which backends MapperPortfolio races
	// (by canonical name or alias: "rewire", "pathfinder"/"pf"/"pf*",
	// "sa"). Empty races every registered backend. The subset can
	// change the committed mapping (a higher-priority backend may win a
	// tie), so it participates in the cache fingerprint; the order
	// given here never matters — priority is fixed by the registry.
	// Ignored by the single mappers.
	PortfolioBackends []string
	// PortfolioParallelism is the portfolio lane window: how many
	// (backend, II) lanes race concurrently. 0 defaults to the backend
	// count; 1 is the serial schedule. Like SweepParallelism it changes
	// wall-clock only, never the committed mapping. Ignored by the
	// single mappers.
	PortfolioParallelism int
	// Tracer, when non-nil, records phase spans and counters for the run
	// (see NewTracer). Nil — the default — costs one pointer check per
	// instrumentation point.
	Tracer *Tracer
	// Logger, when non-nil, receives structured run- and II-level log
	// records (see NewLogger). Nil — the default — disables logging at
	// the same one-pointer-check cost as the tracer.
	Logger *Logger
	// Cache, when non-nil, makes Map/MapCtx consult and populate a
	// content-addressed cache of finished mappings before compiling: a
	// hit is a lookup plus one deep copy, never a recompile, and
	// concurrent identical requests collapse into a single compile.
	// Returned mappings are always caller-owned copies. Only the
	// fingerprint-relevant fields above participate in the cache key
	// (see optionFingerprintClass and docs/CACHING.md).
	Cache *ResultCache
	// Diag, when non-nil, collects the mapping post-mortem (attempt
	// timeline, contested resources, unroutable edges) for the run; read
	// it back with Diag.Report() afterwards. Nil — the default — disables
	// collection at one pointer check per site. Diagnostics observe the
	// search and never feed back into it.
	Diag *DiagCollector
	// Progress, when non-nil, receives coarse live progress events
	// (run/II/round boundaries) during the run; subscribe to stream them.
	// Nil — the default — disables publishing at one pointer check per
	// boundary. The caller owns the bus lifecycle (Close it after the
	// run); mappers only publish.
	Progress *ProgressBus
}

// optionFingerprintClass classifies every Options field as cache-key
// relevant (true: it can change the committed mapping) or explicitly
// exempt (false: wall-clock-only or observer-only — SweepParallelism
// commits bit-identical mappings at every width per the PR 5
// determinism matrix, tracers and loggers never feed back into the
// search, and the cache handle itself is not part of what it caches).
// TestOptionsFingerprintHonesty fails the build of any Options field
// added without a classification here, keeping the fingerprint honest
// by construction.
var optionFingerprintClass = map[string]bool{
	"Mapper":               true,
	"Seed":                 true,
	"TimePerII":            true,
	"MaxII":                true,
	"SweepParallelism":     false,
	"PortfolioBackends":    true,
	"PortfolioParallelism": false,
	"Tracer":               false,
	"Logger":               false,
	"Cache":                false,
	"Diag":                 false,
	"Progress":             false,
}

// CacheKey returns the canonical content-address of one mapping
// request: the string form of the (DFG fingerprint, architecture
// fingerprint, options fingerprint) triple. Equal keys commit
// bit-identical mappings. The serve daemon uses it to deduplicate
// batch entries before compiling.
func CacheKey(g *DFG, cgra *CGRA, opt Options) string {
	return cacheKeyFor(g, cgra, opt).String()
}

func cacheKeyFor(g *DFG, cgra *CGRA, opt Options) resultcache.Key {
	req := resultcache.Request{
		Mapper:    string(opt.Mapper),
		Seed:      opt.Seed,
		TimePerII: opt.TimePerII,
		MaxII:     opt.MaxII,
	}
	if opt.Mapper == MapperPortfolio {
		// The backend subset is part of what the portfolio computes;
		// Canonical folds aliases and ordering so equivalent subsets
		// share a key. Invalid subsets were rejected by validMapper.
		csv, err := portfolio.Canonical(opt.PortfolioBackends)
		if err != nil {
			panic(err.Error())
		}
		req.Backends = csv
	}
	return resultcache.KeyFor(g, cgra, req)
}

// New4x4 builds the paper's 4x4 CGRA preset with the given register-file
// size (two memory banks on the left-most column).
func New4x4(regs int) *CGRA { return arch.New4x4(regs) }

// New8x8 builds the paper's 8x8 CGRA preset with the given register-file
// size (eight banks, memory access on both outer columns).
func New8x8(regs int) *CGRA { return arch.New8x8(regs) }

// NewCGRA builds a custom architecture: rows x cols PEs with regs
// registers each, banks memory banks, and loads/stores allowed on the
// PEs of the listed columns.
func NewCGRA(name string, rows, cols, regs, banks int, memCols ...int) *CGRA {
	return arch.New(name, rows, cols, regs, banks, memCols...)
}

// Kernels lists the bundled benchmark kernels (PolyBench, MachSuite and
// MiBench selections used in the paper's evaluation).
func Kernels() []string { return kernels.Names() }

// LoadKernel lowers a bundled benchmark kernel to a DFG.
func LoadKernel(name string) (*DFG, error) { return kernels.Load(name) }

// ParseKernel compiles loop-kernel IR source (see internal/kernelir for
// the language) to a DFG, optionally unrolling the body first. An
// unroll factor of 0 or 1 means no unrolling.
func ParseKernel(src string, unroll int) (*DFG, error) {
	prog, err := kernelir.Parse(src)
	if err != nil {
		return nil, err
	}
	if unroll > 1 {
		prog, err = kernelir.Unroll(prog, unroll)
		if err != nil {
			return nil, err
		}
	}
	return kernelir.Lower(prog)
}

// Map places and routes the kernel onto the CGRA, minimising the
// initiation interval. It returns the mapping (nil when no valid mapping
// was found within the budgets), the instrumentation record, and an
// error describing a failed mapping.
func Map(g *DFG, cgra *CGRA, opt Options) (*Mapping, Result, error) {
	return MapCtx(context.Background(), g, cgra, opt)
}

// MapCtx is Map with cancellation: cancelling ctx aborts the II sweep
// promptly (in-flight attempts unwind within one inner-loop iteration)
// and the call reports a failed mapping. rewire-serve uses this to tear
// down speculative work when a client disconnects or times out. When
// Options.Cache is set the compile goes through the result cache; use
// MapCached to additionally learn whether it hit.
func MapCtx(ctx context.Context, g *DFG, cgra *CGRA, opt Options) (*Mapping, Result, error) {
	m, res, _, err := MapCached(ctx, g, cgra, opt)
	return m, res, err
}

// MapCached is MapCtx plus the cache outcome. With Options.Cache nil
// it compiles unconditionally and reports a zero outcome; with a cache
// it returns a stored mapping when the request's fingerprint is known
// (a deep copy — caller-owned, mutating it cannot corrupt the cache),
// collapses concurrent identical requests into one compile, and stores
// successful results for later requests. Failed mappings are never
// cached: failure can be budget-dependent, so only successes are
// content-addressable. See docs/CACHING.md.
func MapCached(ctx context.Context, g *DFG, cgra *CGRA, opt Options) (*Mapping, Result, CacheOutcome, error) {
	if err := validMapper(opt); err != nil {
		return nil, Result{}, CacheOutcome{}, err
	}
	if opt.Cache == nil {
		m, res := mapUncached(ctx, g, cgra, opt)
		return m, res, CacheOutcome{}, noMappingErr(m, g, cgra, opt, res)
	}
	m, res, out, err := opt.Cache.Do(ctx, cacheKeyFor(g, cgra, opt), func() (*Mapping, Result) {
		return mapUncached(ctx, g, cgra, opt)
	})
	if err != nil {
		return nil, res, out, fmt.Errorf("rewire: mapping %q on %s aborted: %w", g.Name, cgra.Name, err)
	}
	if out.Hit || out.Shared {
		// The mappers never ran for this caller, so its collector saw
		// nothing: record the served outcome and flag it as cached.
		opt.Diag.Begin(g, cgra, res.Mapper, res.MII)
		opt.Diag.Commit(res.Success, res.II)
		opt.Diag.MarkCached()
	}
	return m, res, out, noMappingErr(m, g, cgra, opt, res)
}

// mapUncached dispatches to the selected mapper. The mapper is already
// validated.
func mapUncached(ctx context.Context, g *DFG, cgra *CGRA, opt Options) (*Mapping, Result) {
	switch opt.Mapper {
	case MapperPortfolio:
		return portfolio.MapCtx(ctx, g, cgra, portfolio.Options{
			Seed: opt.Seed, TimePerII: opt.TimePerII, MaxII: opt.MaxII,
			Backends: opt.PortfolioBackends, Parallelism: opt.PortfolioParallelism,
			Tracer: opt.Tracer, Logger: opt.Logger,
			Diag: opt.Diag, Progress: opt.Progress,
		})
	case MapperPathFinder:
		return pathfinder.MapCtx(ctx, g, cgra, pathfinder.Options{
			Seed: opt.Seed, TimePerII: opt.TimePerII, MaxII: opt.MaxII,
			SweepParallelism: opt.SweepParallelism,
			Tracer:           opt.Tracer, Logger: opt.Logger,
			Diag: opt.Diag, Progress: opt.Progress,
		})
	case MapperSA:
		return sa.MapCtx(ctx, g, cgra, sa.Options{
			Seed: opt.Seed, TimePerII: opt.TimePerII, MaxII: opt.MaxII,
			SweepParallelism: opt.SweepParallelism,
			Tracer:           opt.Tracer, Logger: opt.Logger,
			Diag: opt.Diag, Progress: opt.Progress,
		})
	default: // MapperRewire or ""
		return core.MapCtx(ctx, g, cgra, core.Options{
			Seed: opt.Seed, TimePerII: opt.TimePerII, MaxII: opt.MaxII,
			SweepParallelism: opt.SweepParallelism,
			Tracer:           opt.Tracer, Logger: opt.Logger,
			Diag: opt.Diag, Progress: opt.Progress,
		})
	}
}

func validMapper(opt Options) error {
	switch opt.Mapper {
	case MapperRewire, MapperPathFinder, MapperSA, "":
		return nil
	case MapperPortfolio:
		if _, err := portfolio.Canonical(opt.PortfolioBackends); err != nil {
			return fmt.Errorf("rewire: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("rewire: unknown mapper %q", opt.Mapper)
	}
}

// noMappingErr converts a nil mapping into the standard failure error.
func noMappingErr(m *Mapping, g *DFG, cgra *CGRA, opt Options, res Result) error {
	if m != nil {
		return nil
	}
	return fmt.Errorf("rewire: no valid mapping for %q on %s within II<=%d (MII=%d)",
		g.Name, cgra.Name, maxOr(opt.MaxII, 32), res.MII)
}

func maxOr(v, dflt int) int {
	if v == 0 {
		return dflt
	}
	return v
}

// Validate independently re-checks a mapping: placements on compatible
// exclusive FUs, all dependencies routed conflict-free with exact
// latencies, memory ops holding bank ports.
func Validate(m *Mapping) error { return mapping.Validate(m) }

// MII returns the theoretical minimum initiation interval of a kernel on
// an architecture (max of the recurrence and resource bounds).
func MII(g *DFG, cgra *CGRA) int {
	return mapping.MII(g, cgra)
}

// Render draws the mapping as per-cycle ASCII grids of the PE array.
func Render(m *Mapping) string { return viz.MappingGrid(m) }

// RenderRoutes lists every routed edge with its resource chain.
func RenderRoutes(m *Mapping) (string, error) { return viz.RouteTable(m) }

// RenderUtilisation summarises fabric occupancy (ALU/link/register/bank).
func RenderUtilisation(m *Mapping) (string, error) { return viz.Utilisation(m) }

// RenderReport renders a mapping post-mortem as readable ASCII: the II
// attempt timeline with convergence sparklines, a contention pressure
// heatmap over the fabric grid, the most contested resources and the
// unroutable edges. Safe on a nil report.
func RenderReport(r *DiagReport) string { return viz.RenderReport(r) }

// RenderReportHTML renders the post-mortem as a self-contained HTML
// page with a colour-graded heatmap. Safe on a nil report.
func RenderReportHTML(r *DiagReport) string { return viz.RenderReportHTML(r) }

// Amend repairs an arbitrary partial or congested mapping at its own II
// without building a new one from scratch — Rewire is orthogonal to the
// mapper that produced the input ("can take any initial mapping from
// other mappers", §I). The input is left untouched; the repaired copy is
// returned.
func Amend(m *Mapping, opt Options) (*Mapping, Result, error) {
	return core.Amend(m, core.Options{
		Seed: opt.Seed, TimePerII: opt.TimePerII, MaxII: opt.MaxII,
		Tracer: opt.Tracer, Logger: opt.Logger,
		Diag: opt.Diag, Progress: opt.Progress,
	})
}

// GenerateConfig lowers a valid mapping to the cycle-by-cycle hardware
// configuration (per-PE operation, operand muxes, link drivers, register
// writes, bank-port schedule) that the CGRA executes.
func GenerateConfig(m *Mapping) (*Config, error) { return config.Generate(m) }

// Simulate executes a configuration on the cycle-accurate CGRA simulator
// for the given number of loop iterations and returns the observed store
// trace.
func Simulate(c *Config, iterations int) (*Trace, error) { return sim.Run(c, iterations) }

// Interpret runs the reference interpreter over the DFG: the store
// trace a functionally correct execution must reproduce.
func Interpret(g *DFG, iterations int) (*Trace, error) { return interp.Run(g, iterations) }

// VerifyExecution generates a mapping's configuration, simulates it, and
// compares the store stream with the reference interpreter — end-to-end
// functional verification of placement, routing and configuration.
func VerifyExecution(m *Mapping, iterations int) error {
	c, err := config.Generate(m)
	if err != nil {
		return err
	}
	return sim.Verify(c, iterations)
}

// EstimateEnergy reports the per-iteration activity and normalised
// dynamic energy of a mapping (operation mix, link toggles, register
// writes) under the default per-event model.
func EstimateEnergy(m *Mapping) (*EnergyReport, error) { return power.EstimateMapping(m) }

// ParseArch builds a CGRA from an architecture-description-language
// spec (see internal/adl for the format): grid, registers, banks,
// memory columns, torus links, heterogeneous capability stripping.
func ParseArch(src string) (*CGRA, error) { return adl.Parse(src) }

// FormatArch renders an architecture back into ADL text.
func FormatArch(c *CGRA) string { return adl.Format(c) }

// SaveMapping serialises a valid mapping to a self-contained JSON bundle
// (DFG, ADL architecture, placements, routes, bank ports).
func SaveMapping(m *Mapping) ([]byte, error) { return bundle.Marshal(m) }

// LoadMapping decodes a JSON bundle into a fully re-validated mapping.
func LoadMapping(data []byte) (*Mapping, error) { return bundle.Unmarshal(data) }
