package sa

import (
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
)

func tinyChain() *dfg.Graph {
	g := dfg.New("tiny")
	ld := g.AddNode("ld", dfg.OpLoad)
	m1 := g.AddNode("m1", dfg.OpMul)
	st := g.AddNode("st", dfg.OpStore)
	g.AddEdge(ld, m1, 0)
	g.AddEdge(m1, st, 0)
	return g
}

func TestMapTinyChain(t *testing.T) {
	m, res := Map(tinyChain(), arch.New4x4(4), Options{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil || !res.Success {
		t.Fatalf("failed: %v", res)
	}
	if err := mapping.Validate(m); err != nil {
		t.Fatal(err)
	}
	if res.II > res.MII+1 {
		t.Fatalf("II = %d vs MII %d: tiny chain should be easy", res.II, res.MII)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := kernels.MustLoad("gesummv")
	a := arch.New4x4(4)
	_, r1 := Map(g, a, Options{Seed: 9, TimePerII: 2 * time.Second})
	_, r2 := Map(g, a, Options{Seed: 9, TimePerII: 2 * time.Second})
	if r1.II != r2.II || r1.RemapIterations != r2.RemapIterations {
		t.Fatalf("same seed diverged: %v vs %v", r1, r2)
	}
}

func TestMoveCountsAsRemapIterations(t *testing.T) {
	g := kernels.MustLoad("mvt")
	_, res := Map(g, arch.New4x4(4), Options{Seed: 1, TimePerII: 2 * time.Second})
	if res.Success && res.RemapIterations <= 0 {
		t.Fatalf("iterations = %d; SA must count its moves", res.RemapIterations)
	}
}

func TestEdgeCostPenalisesInfeasibleLatency(t *testing.T) {
	g := tinyChain()
	an := newAnnealer(g, arch.New4x4(2), 2, nil, nil)
	// Manually place producer and consumer impossibly: same cycle.
	if err := an.sess.PlaceNode(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := an.sess.PlaceNode(1, 5, 0); err != nil {
		t.Fatal(err)
	}
	if c := an.edgeCost(0); c < penaltyUnroutable {
		t.Fatalf("cost %d should include infeasibility penalty", c)
	}
	// Feasible placement costs just the latency.
	an.sess.UnplaceNode(1)
	if err := an.sess.PlaceNode(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if c := an.edgeCost(0); c != 2 {
		t.Fatalf("cost = %d, want latency 2", c)
	}
}

func TestRouteAllRollsBackOnFailure(t *testing.T) {
	// Two producers feeding one consumer through a single-register
	// corridor can fail; whatever happens, a failed routeAll must leave
	// no reservations behind beyond placements.
	g := kernels.MustLoad("gemver")
	an := newAnnealer(g, arch.New4x4(1), 5, nil, nil)
	// No placements: routeAll must report false (unplaced nodes).
	if an.routeAll() {
		t.Fatal("routeAll with unplaced nodes must fail")
	}
}

func TestFailsGracefullyWhenImpossible(t *testing.T) {
	// crc needs II >= 8 (recurrence); MaxII 3 must fail and report it.
	g := kernels.MustLoad("crc")
	m, res := Map(g, arch.New4x4(4), Options{Seed: 1, MaxII: 3, TimePerII: time.Second})
	if m != nil || res.Success {
		t.Fatal("expected failure")
	}
	if res.MII != 8 {
		t.Fatalf("MII = %d, want 8", res.MII)
	}
}
