// Command rewire-dfg inspects benchmark kernels: statistics, theoretical
// II bounds per architecture, and Graphviz dumps of the data-flow graph.
//
// Usage:
//
//	rewire-dfg -kernel gramsch          # stats + MII table
//	rewire-dfg -kernel gramsch -dot     # DOT on stdout
//	rewire-dfg -src my_kernel.ir -unroll 2 -dot
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire"
	"rewire/internal/arch"
	"rewire/internal/buildinfo"
)

func main() {
	var (
		kernel  = flag.String("kernel", "", "bundled kernel name")
		src     = flag.String("src", "", "path to a kernel-IR source file (alternative to -kernel)")
		unroll  = flag.Int("unroll", 1, "unroll factor applied to -src kernels")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		version = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	var (
		g   *rewire.DFG
		err error
	)
	switch {
	case *kernel != "" && *src != "":
		fatalf("use either -kernel or -src, not both")
	case *kernel != "":
		g, err = rewire.LoadKernel(*kernel)
	case *src != "":
		var text []byte
		text, err = os.ReadFile(*src)
		if err == nil {
			g, err = rewire.ParseKernel(string(text), *unroll)
		}
	default:
		fatalf("one of -kernel or -src is required (bundled kernels: %v)", rewire.Kernels())
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *dot {
		fmt.Print(g.DOT())
		return
	}
	fmt.Println(g.Stats())
	fmt.Printf("recurrence MII: %d\ncritical path:  %d\n\n", g.RecMII(), g.CriticalPathLen())
	fmt.Printf("%-8s %4s\n", "arch", "MII")
	for _, a := range arch.Presets() {
		fmt.Printf("%-8s %4d\n", a.Name, rewire.MII(g, a))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rewire-dfg: "+format+"\n", args...)
	os.Exit(1)
}
