package rewire

import (
	"encoding/json"
	"testing"
	"time"
)

// TestFailedMappingReportNamesContention is the post-mortem acceptance
// test: a hard kernel squeezed onto a register-starved fabric at its
// MII under a small budget fails, and the collected report must say
// where the fight happened — at least one contested resource with the
// DFG ops that fought over it — plus a coherent attempt timeline and a
// well-paired progress-event stream.
func TestFailedMappingReportNamesContention(t *testing.T) {
	g, err := LoadKernel("gramsch")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(1)
	dc := NewDiagCollector()
	bus := NewProgressBus(0)
	mii := MII(g, cgra)
	m, res, mapErr := Map(g, cgra, Options{
		Mapper: MapperPathFinder, Seed: 1,
		TimePerII: 300 * time.Millisecond, MaxII: mii,
		Diag: dc, Progress: bus,
	})
	bus.Close()
	if m != nil || mapErr == nil {
		t.Skipf("gramsch unexpectedly mapped at MII=%d; cannot exercise the failure post-mortem", mii)
	}

	r := dc.Report()
	if r == nil || r.Success {
		t.Fatalf("report = %+v, want a failure report", r)
	}
	if r.Kernel != "gramsch" || r.Mapper != "PF*" || r.MII != res.MII {
		t.Fatalf("report identity wrong: %+v", r)
	}
	if r.Rows != 4 || r.Cols != 4 {
		t.Fatalf("report geometry = %dx%d, want 4x4", r.Rows, r.Cols)
	}
	if len(r.Attempts) == 0 {
		t.Fatal("report has no attempt timeline")
	}
	for _, a := range r.Attempts {
		if a.Outcome != "failed" && a.Outcome != "cancelled" {
			t.Fatalf("failed run's attempt outcome = %q", a.Outcome)
		}
	}
	if len(r.Contested) == 0 {
		t.Fatal("failure report names no contested resources")
	}
	named := false
	for _, cr := range r.Contested {
		if cr.TimesContested < 1 || cr.Resource == "" {
			t.Fatalf("malformed contested entry: %+v", cr)
		}
		if len(cr.Contenders) > 0 {
			named = true
		}
	}
	if !named {
		t.Fatal("no contested resource names its contending DFG ops")
	}

	// The report is JSON-stable and round-trips.
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back DiagReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != "rewire-report-v1" {
		t.Fatalf("schema = %q", back.Schema)
	}

	// The rendered post-mortem names the top contested resource too.
	if txt := RenderReport(r); txt == "" || len(txt) < 40 {
		t.Fatalf("rendered report implausibly short: %q", txt)
	}

	// The progress stream is coherent: monotonic sequence, run_start
	// first, run_end last, and paired ii/attempt boundaries.
	evs := bus.Events()
	if len(evs) < 4 {
		t.Fatalf("progress stream has %d events, want at least run/ii/attempt boundaries", len(evs))
	}
	if evs[0].Type != "run_start" {
		t.Fatalf("first event = %q, want run_start", evs[0].Type)
	}
	if last := evs[len(evs)-1]; last.Type != "run_end" || last.Outcome != "failed" {
		t.Fatalf("last event = %+v, want failed run_end", last)
	}
	starts, ends := 0, 0
	for i, ev := range evs {
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not monotonic at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		switch ev.Type {
		case "attempt_start":
			starts++
		case "attempt_end":
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("attempt boundaries unpaired: %d starts, %d ends", starts, ends)
	}
}

// TestSuccessfulMappingReport: a successful run's report records the
// committed II and an attempt timeline ending in "mapped".
func TestSuccessfulMappingReport(t *testing.T) {
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	dc := NewDiagCollector()
	m, res, err := Map(g, cgra, Options{Seed: 1, TimePerII: 2 * time.Second, Diag: dc})
	if err != nil {
		t.Fatal(err)
	}
	r := dc.Report()
	if !r.Success || r.II != res.II || r.II != m.II {
		t.Fatalf("report outcome = success=%v II=%d, want II=%d", r.Success, r.II, res.II)
	}
	mapped := false
	for _, a := range r.Attempts {
		if a.Outcome == "mapped" && a.II == res.II {
			mapped = true
		}
	}
	if !mapped {
		t.Fatalf("no mapped attempt at the committed II in %+v", r.Attempts)
	}
}

// TestCachedHitReportMarksCached: a result-cache hit fills the
// caller's collector with the served outcome and flags it cached.
func TestCachedHitReportMarksCached(t *testing.T) {
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	opt := Options{Seed: 1, TimePerII: 2 * time.Second, Cache: NewResultCache(4)}
	if _, _, err := Map(g, cgra, opt); err != nil {
		t.Fatal(err)
	}
	opt.Diag = NewDiagCollector()
	_, res, err := Map(g, cgra, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Diag.Report()
	if !r.Cached || !r.Success || r.II != res.II {
		t.Fatalf("cached-hit report = cached=%v success=%v II=%d, want cached success at II=%d",
			r.Cached, r.Success, r.II, res.II)
	}
	if len(r.Attempts) != 0 {
		t.Fatalf("cached hit fabricated %d attempts", len(r.Attempts))
	}
}
