package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rewire/internal/ledger"
	"rewire/internal/obs"
)

// testServer builds a ready daemon with short budgets on an httptest
// listener.
func testServer(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	lg, err := obs.Setup(io.Discard, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(cfg, lg)
	s.ready.Store(true)
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return ts
}

// postMap sends one mapping request and decodes the response.
func postMap(t *testing.T, ts *httptest.Server, body string) (mapResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/map", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out mapResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("bad response JSON: %v", err)
		}
	}
	return out, resp.StatusCode
}

func get(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestMapEndToEnd(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, FlightSize: 8})
	out, code := postMap(t, ts,
		`{"kernel":"mvt","arch":"4x4r4","mapper":"rewire","seed":1,"time_per_ii_ms":2000,"render":true}`)
	if code != http.StatusOK {
		t.Fatalf("POST /map = %d", code)
	}
	if !out.Success {
		t.Fatalf("mapping failed: %+v", out)
	}
	if out.II < out.MII || out.MII < 1 {
		t.Fatalf("implausible II=%d MII=%d", out.II, out.MII)
	}
	if out.RunID == "" || out.Grid == "" {
		t.Fatalf("missing run_id or grid: %+v", out)
	}
	if out.Counters["route.expansions"] == 0 {
		t.Fatalf("no router work recorded: %v", out.Counters)
	}

	// The run must be visible in the flight recorder...
	runsBody, code := get(t, ts.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /runs = %d", code)
	}
	var runs []runRecord
	if err := json.Unmarshal([]byte(runsBody), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != out.RunID {
		t.Fatalf("flight recorder = %+v, want the one run", runs)
	}

	// ...its trace must download and parse as a Chrome trace...
	traceBody, code := get(t, ts.URL+out.TraceURL)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d", out.TraceURL, code)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceBody), &doc); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete spans")
	}

	// ...and the metrics must show the request and the bridged counters.
	mBody, code := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		`rewire_map_requests_total{mapper="rewire",outcome="ok"} 1`,
		"rewire_route_expansions_total",
		"rewire_map_duration_seconds_bucket",
		"rewire_process_uptime_seconds",
		"rewire_mrrg_cache_hits_total",
		"rewire_mrrg_cache_misses_total",
		"rewire_dist_cache_hits_total",
		"rewire_dist_cache_misses_total",
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPortfolioMapEndToEnd drives a portfolio request through POST /map
// and checks the racing surface: the answer names the winning backend,
// the lane counters move, and the run's post-mortem report carries the
// winner.
func TestPortfolioMapEndToEnd(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, FlightSize: 8})
	out, code := postMap(t, ts,
		`{"kernel":"mvt","arch":"4x4r4","mapper":"portfolio","seed":7,"time_per_ii_ms":2000}`)
	if code != http.StatusOK {
		t.Fatalf("POST /map = %d", code)
	}
	if !out.Success {
		t.Fatalf("portfolio mapping failed: %+v", out)
	}
	if out.WinnerBackend == "" {
		t.Fatalf("successful portfolio run names no winner: %+v", out)
	}

	// The flight recorder entry carries the winner too.
	runsBody, code := get(t, ts.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /runs = %d", code)
	}
	var runs []runRecord
	if err := json.Unmarshal([]byte(runsBody), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].WinnerBackend != out.WinnerBackend {
		t.Fatalf("flight recorder winner = %+v, want %q", runs, out.WinnerBackend)
	}

	// The post-mortem report names the winner.
	reportBody, code := get(t, ts.URL+out.ReportURL)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d", out.ReportURL, code)
	}
	var report struct {
		WinnerBackend string `json:"winner_backend"`
	}
	if err := json.Unmarshal([]byte(reportBody), &report); err != nil {
		t.Fatal(err)
	}
	if report.WinnerBackend != out.WinnerBackend {
		t.Fatalf("report winner %q != response winner %q", report.WinnerBackend, out.WinnerBackend)
	}

	// The lane counters must have moved: exactly one win for the winner,
	// one launched lane per backend per raced II at minimum.
	mBody, code := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	wantWin := fmt.Sprintf(`rewire_portfolio_lane_wins_total{backend=%q} 1`, out.WinnerBackend)
	if !strings.Contains(mBody, wantWin) {
		t.Errorf("/metrics missing %q", wantWin)
	}
	wantLane := fmt.Sprintf(`rewire_portfolio_lanes_total{backend=%q}`, out.WinnerBackend)
	if !strings.Contains(mBody, wantLane) {
		t.Errorf("/metrics missing %q", wantLane)
	}
}

// TestConcurrentMapRequests hammers POST /map from several goroutines;
// under -race this is the daemon's interleaving test (CI runs it).
func TestConcurrentMapRequests(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 4, FlightSize: 8})
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kernel":"mvt","arch":"4x4r4","seed":%d,"time_per_ii_ms":2000}`, seed)
			resp, err := http.Post(ts.URL+"/map", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out mapResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if !out.Success {
				errs <- fmt.Errorf("seed %d: mapping failed", seed)
			}
		}(i + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	body, _ := get(t, ts.URL+"/runs")
	var runs []runRecord
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != n {
		t.Fatalf("flight recorder has %d runs, want %d", len(runs), n)
	}
}

// TestRepeatRequestHitsResultCache: the second identical POST /map is
// served from the result cache — marked cached, same mapping, and the
// resultcache hit counter moves.
func TestRepeatRequestHitsResultCache(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, CacheSize: 32})
	body := `{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000}`

	first, code := postMap(t, ts, body)
	if code != http.StatusOK || !first.Success {
		t.Fatalf("first request: code=%d %+v", code, first)
	}
	if first.Cached {
		t.Fatal("first request claims to be cached")
	}
	second, code := postMap(t, ts, body)
	if code != http.StatusOK || !second.Success {
		t.Fatalf("second request: code=%d %+v", code, second)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from the result cache")
	}
	if second.II != first.II || second.MII != first.MII {
		t.Fatalf("cached answer differs: first II=%d, second II=%d", first.II, second.II)
	}
	if second.RunID == first.RunID {
		t.Fatal("cache hit reused the first request's run_id")
	}

	// A near-identical request (different seed) must compile.
	third, code := postMap(t, ts, `{"kernel":"mvt","arch":"4x4r4","seed":2,"time_per_ii_ms":2000}`)
	if code != http.StatusOK || third.Cached {
		t.Fatalf("near-identical request: code=%d cached=%v, want a fresh compile", code, third.Cached)
	}

	mBody, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"rewire_resultcache_hits_total 1",
		"rewire_resultcache_misses_total 2",
		"rewire_resultcache_evictions_total 0",
		"rewire_resultcache_singleflight_shared_total 0",
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBatchDedup: a 3-entry batch with 2 identical entries compiles
// twice, answers three times in order, and counts the dedup.
func TestBatchDedup(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, CacheSize: 32})
	body := `{"requests":[
		{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000},
		{"kernel":"atax","arch":"4x4r4","seed":1,"time_per_ii_ms":2000},
		{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000}
	]}`
	resp, err := http.Post(ts.URL+"/map/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /map/batch = %d", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	if out.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", out.Deduped)
	}
	// Order preserved: mvt, atax, mvt.
	for i, wantKernel := range []string{"mvt", "atax", "mvt"} {
		r := out.Results[i]
		if !r.Success || r.Kernel != wantKernel {
			t.Fatalf("result %d = %+v, want successful %s", i, r, wantKernel)
		}
	}
	if out.Results[0].Deduped || out.Results[1].Deduped || !out.Results[2].Deduped {
		t.Fatalf("dedup flags wrong: %v %v %v",
			out.Results[0].Deduped, out.Results[1].Deduped, out.Results[2].Deduped)
	}
	if out.Results[2].RunID != out.Results[0].RunID {
		t.Fatal("deduped entry does not share its representative's run")
	}
	if out.Results[2].II != out.Results[0].II {
		t.Fatal("deduped entry's II differs from its representative")
	}

	mBody, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"rewire_serve_batch_requests_total 1",
		"rewire_serve_batch_entries_total 3",
		"rewire_serve_batch_deduped_total 1",
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The whole batch is rejected only for structural reasons; a single
	// invalid entry fails alone.
	mixed := `{"requests":[{"kernel":"nope","arch":"4x4r4"},{"kernel":"mvt","arch":"4x4r4","time_per_ii_ms":2000}]}`
	resp2, err := http.Post(ts.URL+"/map/batch", "application/json", strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 batchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Results[0].Error == "" || out2.Results[0].Success {
		t.Fatalf("invalid entry did not fail: %+v", out2.Results[0])
	}
	if !out2.Results[1].Success {
		t.Fatalf("valid entry failed alongside an invalid sibling: %+v", out2.Results[1])
	}

	// Structural failures: empty batch and over-cap batch.
	for _, bad := range []string{`{}`, `{"requests":[]}`} {
		r, err := http.Post(ts.URL+"/map/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty batch = %d, want 400", r.StatusCode)
		}
	}
}

// TestSubmitPollRoundTrip: POST /map/submit answers 202 immediately;
// polling GET /map/result/{id} eventually yields the finished run.
func TestSubmitPollRoundTrip(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, CacheSize: 32})
	resp, err := http.Post(ts.URL+"/map/submit", "application/json",
		strings.NewReader(`{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.JobID == "" || sub.Status != "running" {
		t.Fatalf("submit = %d %+v, want 202 running", resp.StatusCode, sub)
	}

	deadline := time.Now().Add(30 * time.Second)
	var out mapResponse
	for {
		body, code := get(t, ts.URL+sub.ResultURL)
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &out); err != nil {
				t.Fatal(err)
			}
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("poll = %d, want 200 or 202", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !out.Success || out.RunID != sub.JobID {
		t.Fatalf("job result = %+v, want success under job id %s", out, sub.JobID)
	}

	// The async run retires into the same flight recorder ring.
	runsBody, _ := get(t, ts.URL+"/runs")
	var runs []runRecord
	if err := json.Unmarshal([]byte(runsBody), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != sub.JobID {
		t.Fatalf("flight recorder = %+v, want the async run", runs)
	}

	// Unknown job: 404. Invalid submission: 400, synchronously.
	if _, code := get(t, ts.URL+"/map/result/doesnotexist"); code != http.StatusNotFound {
		t.Fatalf("unknown job poll = %d, want 404", code)
	}
	badResp, err := http.Post(ts.URL+"/map/submit", "application/json",
		strings.NewReader(`{"kernel":"nope","arch":"4x4r4"}`))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit = %d, want 400", badResp.StatusCode)
	}

	mBody, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`rewire_serve_async_jobs_total{state="submitted"} 1`,
		`rewire_serve_async_jobs_total{state="completed"} 1`,
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobTableEviction pins the capacity discipline: completed jobs
// make room oldest-first; a table full of running jobs rejects.
func TestJobTableEviction(t *testing.T) {
	tb := newJobTable(2)
	if !tb.submit("a", nil) || !tb.submit("b", nil) {
		t.Fatal("empty table rejected submissions")
	}
	if tb.submit("c", nil) {
		t.Fatal("table full of running jobs accepted a third")
	}
	tb.complete("a", mapResponse{RunID: "a"})
	if !tb.submit("c", nil) {
		t.Fatal("completed job was not evicted to make room")
	}
	if _, _, ok := tb.get("a"); ok {
		t.Fatal("evicted job still addressable")
	}
	if _, running, ok := tb.get("b"); !ok || !running {
		t.Fatal("running job lost")
	}
	tb.complete("b", mapResponse{RunID: "b"})
	if resp, running, ok := tb.get("b"); !ok || running || resp.RunID != "b" {
		t.Fatalf("completed job state wrong: ok=%v running=%v resp=%+v", ok, running, resp)
	}
}

func TestMapValidation(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 1, MaxII: 16, MaxTimePerII: time.Second})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"kernel":`},
		{"no kernel", `{"arch":"4x4r4"}`},
		{"both kernels", `{"kernel":"mvt","kernel_src":"x","arch":"4x4r4"}`},
		{"unknown kernel", `{"kernel":"nope","arch":"4x4r4"}`},
		{"no arch", `{"kernel":"mvt"}`},
		{"bad arch", `{"kernel":"mvt","arch":"tiny"}`},
		{"bad mapper", `{"kernel":"mvt","arch":"4x4r4","mapper":"ilp"}`},
		{"over max_ii cap", `{"kernel":"mvt","arch":"4x4r4","max_ii":99}`},
		{"over time cap", `{"kernel":"mvt","arch":"4x4r4","time_per_ii_ms":60000}`},
		{"unknown backend", `{"kernel":"mvt","arch":"4x4r4","mapper":"portfolio","portfolio_backends":"rewire,ilp"}`},
		{"backends without portfolio", `{"kernel":"mvt","arch":"4x4r4","mapper":"rewire","portfolio_backends":"sa"}`},
		{"negative portfolio window", `{"kernel":"mvt","arch":"4x4r4","mapper":"portfolio","portfolio_parallelism":-1}`},
	}
	for _, tc := range cases {
		if _, code := postMap(t, ts, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Validation failures count as requests but never touch the pool.
	body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, `outcome="invalid"`) {
		t.Error("/metrics has no invalid-outcome samples")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	lg, _ := obs.Setup(io.Discard, "info", "text")
	s := newServer(serverConfig{}, lg)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	if _, code := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if _, code := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warmup = %d, want 503", code)
	}
	s.ready.Store(true)
	if _, code := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after warmup = %d", code)
	}
}

func TestRunTraceNotFound(t *testing.T) {
	ts := testServer(t, serverConfig{})
	if _, code := get(t, ts.URL+"/runs/doesnotexist/trace"); code != http.StatusNotFound {
		t.Fatalf("missing run trace = %d, want 404", code)
	}
}

func TestKernelSrcMapping(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 1})
	src := "kernel axpy\nparam a\ny[i] = a * x[i] + y[i]\n"
	body, _ := json.Marshal(mapRequest{KernelSrc: src, Arch: "4x4r4", TimePerII: 2000})
	out, code := postMap(t, ts, string(body))
	if code != http.StatusOK {
		t.Fatalf("kernel_src map = %d", code)
	}
	if !out.Success {
		t.Fatalf("axpy failed to map: %+v", out)
	}
}

// slowMapBody is a mapping request that reliably runs for several
// seconds: PF* on gramsch@8x8r4 fails a few IIs before committing, so
// cancelling it mid-sweep exercises the teardown path, not a race with
// natural completion.
const slowMapBody = `{"kernel":"gramsch","arch":"8x8r4","mapper":"pathfinder","seed":1,"time_per_ii_ms":5000,"sweep_parallelism":4}`

// waitInflightZero polls /metrics until the inflight gauge reads zero,
// failing the test if teardown takes longer than the bound. A cancelled
// sweep unwinds within one mapper inner-loop iteration, so the bound is
// generous.
func waitInflightZero(t *testing.T, ts *httptest.Server, bound time.Duration) {
	t.Helper()
	deadline := time.Now().Add(bound)
	for {
		body, _ := get(t, ts.URL+"/metrics")
		if strings.Contains(body, "rewire_serve_inflight_requests 0") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker slot not released within %s of cancellation", bound)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClientDisconnectTearsDownSweep is the slot-accounting regression
// test: a client hanging up mid-sweep must tear down every speculative
// II attempt and release the worker slot promptly — long before the
// abandoned run would have finished on its own.
func TestClientDisconnectTearsDownSweep(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 1, RequestTimeout: 60 * time.Second, FlightSize: 8})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/map", strings.NewReader(slowMapBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Let the run get past admission and into the sweep, then hang up.
	time.Sleep(300 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request unexpectedly completed")
	}

	// The single worker slot must come back well before the ~multi-second
	// natural completion of the abandoned run: cancellation reaches every
	// speculative attempt and the slot frees only after they unwind.
	waitInflightZero(t, ts, 5*time.Second)

	body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, `outcome="canceled"`) {
		t.Error("/metrics has no canceled-outcome sample")
	}

	// With the slot free, the next request on the width-1 pool must be
	// served immediately.
	out, code := postMap(t, ts, `{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000}`)
	if code != http.StatusOK || !out.Success {
		t.Fatalf("follow-up request after disconnect: code=%d success=%v", code, out.Success)
	}
}

// TestRequestTimeoutTearsDownSweep: a 504 must cancel the in-flight
// sweep; the worker slot frees once the torn-down run returns, and the
// run still lands in the flight recorder.
func TestRequestTimeoutTearsDownSweep(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 1, RequestTimeout: 400 * time.Millisecond, FlightSize: 8})

	resp, err := http.Post(ts.URL+"/map", "application/json", strings.NewReader(slowMapBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow request = %d, want 504", resp.StatusCode)
	}

	waitInflightZero(t, ts, 5*time.Second)

	// The torn-down run is still recorded (as a failed run) once drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, _ := get(t, ts.URL+"/runs")
		var runs []runRecord
		if err := json.Unmarshal([]byte(body), &runs); err == nil && len(runs) == 1 {
			if runs[0].Success {
				t.Fatal("torn-down run recorded as successful")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("torn-down run never reached the flight recorder")
		}
		time.Sleep(50 * time.Millisecond)
	}

	body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, `outcome="timeout"`) {
		t.Error("/metrics has no timeout-outcome sample")
	}
}

// TestSweepParallelismClamp pins the oversubscription math: the
// per-request window is capped at GOMAXPROCS/Workers (floored at 1).
func TestSweepParallelismClamp(t *testing.T) {
	lg, _ := obs.Setup(io.Discard, "info", "text")
	s := newServer(serverConfig{Workers: runtime.GOMAXPROCS(0)}, lg)
	if got := s.clampSweep(64); got != 1 {
		t.Fatalf("clampSweep(64) with Workers=GOMAXPROCS = %d, want 1", got)
	}
	s2 := newServer(serverConfig{Workers: 1}, lg)
	if got := s2.clampSweep(10_000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("clampSweep(10000) with Workers=1 = %d, want GOMAXPROCS", got)
	}
	if got := s2.clampSweep(0); got != 1 {
		t.Fatalf("clampSweep(0) = %d, want 1 (serial default)", got)
	}
	if _, code := postMap(t, testServer(t, serverConfig{}),
		`{"kernel":"mvt","arch":"4x4r4","sweep_parallelism":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative sweep_parallelism = %d, want 400", code)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := newFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.add(runRecord{ID: fmt.Sprintf("r%d", i)})
	}
	got := f.list()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []string{"r4", "r3", "r2"} {
		if got[i].ID != want {
			t.Fatalf("list[%d] = %s, want %s (newest first)", i, got[i].ID, want)
		}
	}
	if _, ok := f.get("r1"); ok {
		t.Fatal("evicted run still addressable")
	}
	if _, ok := f.get("r3"); !ok {
		t.Fatal("retained run not addressable")
	}
}

func TestMetricsExpositionContentType(t *testing.T) {
	ts := testServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
}

// TestQoREndpoints maps once against a file-backed ledger and checks
// that the run shows up in GET /qor, renders on /qor.html, lands in
// the ledger file, and that /metrics carries the build-info and
// process gauges.
func TestQoREndpoints(t *testing.T) {
	dir := t.TempDir()
	led, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	ts := testServer(t, serverConfig{Workers: 2, FlightSize: 8, Ledger: led})

	out, code := postMap(t, ts,
		`{"kernel":"mvt","arch":"4x4r4","mapper":"rewire","seed":1,"time_per_ii_ms":2000}`)
	if code != http.StatusOK || !out.Success {
		t.Fatalf("POST /map = %d success=%v", code, out.Success)
	}

	body, code := get(t, ts.URL+"/qor")
	if code != http.StatusOK {
		t.Fatalf("GET /qor = %d", code)
	}
	var qor qorResponse
	if err := json.Unmarshal([]byte(body), &qor); err != nil {
		t.Fatalf("bad /qor JSON: %v", err)
	}
	if qor.Runs != 1 || len(qor.Groups) != 1 {
		t.Fatalf("/qor = %+v, want 1 run in 1 group", qor)
	}
	g := qor.Groups[0]
	if g.Kernel != "mvt" || g.Arch != "4x4r4" || g.Mapper != "rewire" ||
		g.Successes != 1 || g.BestII == 0 {
		t.Errorf("/qor group wrong: %+v", g)
	}
	if qor.Ledger == "" || qor.Build.GoVersion == "" {
		t.Errorf("/qor misses ledger path or build info: %+v", qor)
	}

	html, code := get(t, ts.URL+"/qor.html")
	if code != http.StatusOK || !strings.Contains(html, "mvt@4x4r4") {
		t.Errorf("GET /qor.html = %d, dashboard misses the run", code)
	}

	// The run must be durable: the ledger file parses and holds it.
	es, err := ledger.ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].Source != "serve" || es[0].DFGFP == "" {
		t.Errorf("ledger file = %+v, want one serve entry with fingerprints", es)
	}
	if es[0].Attempts == 0 {
		t.Errorf("ledger entry has no attempt summary: %+v", es[0])
	}

	mBody, code := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"rewire_build_info{",
		"rewire_process_uptime_seconds",
		"rewire_process_goroutines_units",
		"rewire_process_heap_alloc_bytes",
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
