package sweep_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/core"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/sa"
	"rewire/internal/stats"
)

// The speculative sweep's contract: with the same seed, a width-W sweep
// commits a bit-identical (II, placement, routes, merged stats) result
// to the serial sweep, for every mapper. The per-II time budget must
// never bind: the mappers' own work bounds (remaps, restarts, attempt
// budgets) terminate each II on these kernels in well under a second
// natively, and a binding wall clock would make any sweep — serial
// included — timing-dependent. An hour absorbs the race detector's
// ~20x slowdown stacked with parallel-subtest contention in CI.
const detBudget = time.Hour

// runBoth maps the kernel serially and with a width-4 window.
func runBoth(t *testing.T, mapper string, kernel string, seed int64) (s, p *mapping.Mapping, sr, pr stats.Result) {
	t.Helper()
	a := arch.New4x4(4)
	run := func(window int) (*mapping.Mapping, stats.Result) {
		g := kernels.MustLoad(kernel)
		switch mapper {
		case "Rewire":
			return core.Map(g, a, core.Options{Seed: seed, TimePerII: detBudget, SweepParallelism: window})
		case "PF*":
			return pathfinder.Map(g, a, pathfinder.Options{Seed: seed, TimePerII: detBudget, SweepParallelism: window})
		case "SA":
			return sa.Map(g, a, sa.Options{Seed: seed, TimePerII: detBudget, SweepParallelism: window})
		}
		t.Fatalf("unknown mapper %q", mapper)
		return nil, stats.Result{}
	}
	s, sr = run(1)
	p, pr = run(4)
	return s, p, sr, pr
}

func TestSpeculativeSweepMatchesSerial(t *testing.T) {
	kernelsByMapper := map[string][]string{
		// Rewire and PF* are fast enough for two kernels per seed; SA's
		// blind moves make it the slowest, so it gets the smallest kernel.
		"Rewire": {"mvt", "gesummv"},
		"PF*":    {"mvt", "atax"},
		"SA":     {"mvt"},
	}
	seeds := []int64{1, 7, 42}
	for mapper, kns := range kernelsByMapper {
		for _, kernel := range kns {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", mapper, kernel, seed), func(t *testing.T) {
					t.Parallel()
					s, p, sr, pr := runBoth(t, mapper, kernel, seed)
					if sr.Success != pr.Success {
						t.Fatalf("success differs: serial %v vs speculative %v", sr.Success, pr.Success)
					}
					if sr.II != pr.II {
						t.Fatalf("II differs: serial %d vs speculative %d", sr.II, pr.II)
					}
					if (s == nil) != (p == nil) {
						t.Fatalf("mapping nil-ness differs: serial %v vs speculative %v", s == nil, p == nil)
					}
					if s == nil {
						return
					}
					if !reflect.DeepEqual(s.Place, p.Place) {
						t.Fatal("placements differ between serial and speculative sweeps")
					}
					if !reflect.DeepEqual(s.Routes, p.Routes) {
						t.Fatal("routes differ between serial and speculative sweeps")
					}
					if !reflect.DeepEqual(s.BankPorts, p.BankPorts) {
						t.Fatal("bank ports differ between serial and speculative sweeps")
					}
					// The merged effort statistics must match too: the sweep
					// folds only attempts at or below the committed II, in
					// ascending order, so speculation never leaks into them.
					if sr.PlacementsTried != pr.PlacementsTried ||
						sr.RouterExpansions != pr.RouterExpansions ||
						sr.RemapIterations != pr.RemapIterations ||
						sr.ClusterAmendments != pr.ClusterAmendments ||
						sr.VerifyAttempts != pr.VerifyAttempts {
						t.Fatalf("merged stats differ:\nserial      %+v\nspeculative %+v", sr, pr)
					}
				})
			}
		}
	}
}

// TestSweepSeedDerivationIsPerII pins the seed contract the determinism
// above rests on: re-running a single mapper at a different MaxII floor
// must not change what an II attempt does. With seeds derived per II
// (rather than one rng threaded across the sweep), attempt outcomes are
// independent of which IIs ran before them.
func TestSweepSeedDerivationIsPerII(t *testing.T) {
	g := kernels.MustLoad("mvt")
	a := arch.New4x4(4)
	m1, r1 := pathfinder.Map(g, a, pathfinder.Options{Seed: 3, TimePerII: detBudget})
	if m1 == nil {
		t.Skip("mvt did not map at the default budget")
	}
	// Start the sweep directly at the committed II: the attempt there must
	// reproduce the same mapping even though the failed lower IIs never ran.
	g2 := kernels.MustLoad("mvt")
	m2, r2 := pathfinder.Map(g2, a, pathfinder.Options{Seed: 3, TimePerII: detBudget, MaxII: r1.II})
	if m2 == nil || r2.II != r1.II {
		t.Fatalf("re-run at MaxII=%d failed (II %d)", r1.II, r2.II)
	}
	if !reflect.DeepEqual(m1.Place, m2.Place) || !reflect.DeepEqual(m1.Routes, m2.Routes) {
		t.Fatal("per-II attempt depended on sweep history")
	}
}
