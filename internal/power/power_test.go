package power

import (
	"strings"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/config"
	"rewire/internal/kernels"
	"rewire/internal/pathfinder"
)

func estimate(t *testing.T, kernel string) *Report {
	t.Helper()
	g := kernels.MustLoad(kernel)
	m, res := pathfinder.Map(g, arch.New4x4(4), pathfinder.Options{Seed: 1, TimePerII: 3 * time.Second, CandidateBeam: 8})
	if m == nil {
		t.Fatalf("mapping failed: %v", res)
	}
	r, err := EstimateMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOpCountsMatchDFG(t *testing.T) {
	g := kernels.MustLoad("mvt")
	r := estimate(t, "mvt")
	total := 0
	for _, n := range r.Ops {
		total += n
	}
	if total != g.NumNodes() {
		t.Fatalf("op events = %d, want every node once (%d)", total, g.NumNodes())
	}
	mem := r.Ops["load"] + r.Ops["store"]
	if mem != g.MemOps() {
		t.Fatalf("mem events = %d, want %d", mem, g.MemOps())
	}
}

func TestEnergyComposition(t *testing.T) {
	r := estimate(t, "fft")
	if r.Energy <= 0 {
		t.Fatal("no energy estimated")
	}
	var sum float64
	for _, e := range r.Breakdown {
		sum += e
	}
	if diff := sum - r.Energy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown sums to %f, total %f", sum, r.Energy)
	}
	if ov := r.RoutingOverhead(); ov <= 0 || ov >= 1 {
		t.Fatalf("routing overhead = %f, expected within (0,1)", ov)
	}
}

func TestModelWeightsApplied(t *testing.T) {
	// A custom model with free routing must yield lower energy than one
	// with expensive routing, on the same configuration.
	g := kernels.MustLoad("susan")
	m, res := pathfinder.Map(g, arch.New4x4(4), pathfinder.Options{Seed: 2, TimePerII: 3 * time.Second, CandidateBeam: 8})
	if m == nil {
		t.Fatalf("mapping failed: %v", res)
	}
	c, err := config.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	cheap := DefaultModel()
	cheap.LinkHop, cheap.RegWrite, cheap.MoveOp = 0, 0, 0
	lo := Estimate(c, cheap)
	hi := Estimate(c, DefaultModel())
	if lo.Energy >= hi.Energy {
		t.Fatalf("free routing (%f) should cost less than priced routing (%f)", lo.Energy, hi.Energy)
	}
	if lo.RoutingOverhead() != 0 {
		t.Fatal("free routing must have zero overhead fraction")
	}
}

func TestReportString(t *testing.T) {
	r := estimate(t, "gesummv")
	s := r.String()
	for _, want := range []string{"activity per iteration", "energy:", "linkhops", "compute"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
