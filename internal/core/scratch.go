package core

import (
	"math/rand"
	"sort"
	"sync"
)

// amendScratch is the pooled per-amendment working memory: every buffer
// the cluster loop (propagate → intersect → generate → grow) needs,
// recycled across rounds, attempts, and runs via a sync.Pool. One
// scratch belongs to exactly one amender at a time and is only touched
// from the amender's own goroutine (the propagation worker pool uses the
// separate global flood pools), so nothing here is synchronised.
//
// Everything in the scratch is pure workspace: recycling a dirty scratch
// from a failed or cancelled attempt must never change a mapping result.
// The dirty-pool determinism tests in scratch_test.go enforce that, and
// docs/PERFORMANCE.md ("Memory architecture") documents the contract.
type amendScratch struct {
	// mark is DFG-node-indexed epoch-stamped membership scratch shared by
	// anchor collection, representative-anchor DFS, and cluster seeding;
	// each user starts a fresh set with beginMark (O(1)).
	mark  []int64
	epoch int64

	// u is the single live cluster of the amendment (amenders repair one
	// cluster at a time).
	u cluster

	// anchor collection + propagation task dispatch (propagateAll).
	parentsBuf  []int
	childrenBuf []int
	tasks       []propTask
	results     []*propagation
	props       map[int]*propagation

	// representative-anchor DFS (repAnchors).
	repOut   []int
	repStack []int

	// intersect: per-node candidate lists (candBufs[i] backs the i-th
	// cluster node's pcands, all live simultaneously through generate),
	// source-constraint buffers, sorted-time intersection buffers, and
	// the candidate-spreading permutation.
	cands    map[int][]pcand
	candBufs [][]pcand
	fwdBuf   []srcConstraint
	bwdBuf   []srcConstraint
	timesA   []int
	timesB   []int
	permBuf  []int

	// cluster growth.
	queueBuf []int
	tiedBuf  []int

	// placement enumeration: the generator itself, the chosen-candidate
	// vector, and one routed-edge buffer per recursion depth (a depth's
	// routed list stays live while deeper levels enumerate, so one shared
	// buffer would corrupt the backtracking unwind).
	gen        generator
	chosenBuf  []pcand
	routedBufs [][]int
}

var amendScratchPool = sync.Pool{New: func() any {
	return &amendScratch{
		props: map[int]*propagation{},
		cands: map[int][]pcand{},
	}
}}

// getAmendScratch draws a scratch sized for a DFG with numNodes nodes.
func getAmendScratch(numNodes int) *amendScratch {
	s := amendScratchPool.Get().(*amendScratch)
	if len(s.mark) < numNodes {
		s.mark = make([]int64, numNodes)
		s.epoch = 0
	}
	return s
}

// putAmendScratch recycles a scratch, dropping references that would pin
// per-run objects (propagations, candidate data) past the run.
func putAmendScratch(s *amendScratch) {
	clear(s.props)
	clear(s.cands)
	for i := range s.results {
		s.results[i] = nil
	}
	s.gen = generator{}
	amendScratchPool.Put(s)
}

// beginMark starts a fresh empty mark set in O(1) and returns its epoch:
// node v is a member iff mark[v] == epoch.
func (s *amendScratch) beginMark() int64 {
	s.epoch++
	return s.epoch
}

// perm fills the scratch permutation buffer exactly as rand.Perm(n)
// would — the same Fisher-Yates loop consuming the same n Intn draws —
// so replacing rng.Perm with this buffer reuse cannot shift any
// downstream random draw or change the permutation.
func (s *amendScratch) perm(rng *rand.Rand, n int) []int {
	m := s.permBuf
	if cap(m) < n {
		m = make([]int, n)
	}
	m = m[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	s.permBuf = m
	return m
}

// sortedContains reports whether x occurs in ascending-sorted s.
func sortedContains(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}
