#!/usr/bin/env bash
# bench.sh — track the performance trajectory across PRs.
#
# Runs the substrate micro-benchmarks (BenchmarkSub*) and the Figure 6
# compilation-time benchmarks, then emits BENCH_<date>.json: one record
# per benchmark with ns/op, B/op, allocs/op and any custom metrics
# (sumII, fails, ...). Compare two files to see whether a PR moved the
# hot paths.
#
# Usage:
#   scripts/bench.sh                # writes BENCH_YYYY-MM-DD.json in the repo root
#   scripts/bench.sh out.json       # explicit output path
#   BENCHTIME=2000x scripts/bench.sh        # Fig6 -benchtime (default 1x)
#   MICRO_BENCHTIME=5000x scripts/bench.sh  # micro-bench -benchtime (default 500x)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
benchtime="${BENCHTIME:-1x}"
# The substrate micro-benchmarks are sub-millisecond, so they run at a
# fixed iteration count: per-op metrics like the router's expansions/op
# need averaging over many calls (at 1x a single pruned call reads 0,
# which benchdiff cannot gate), and the fixed count keeps them
# deterministic for the diff.
micro_benchtime="${MICRO_BENCHTIME:-500x}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running substrate micro-benchmarks (benchtime $micro_benchtime)..." >&2
# ./internal/core carries BenchmarkSubAmendScratch (the pooled amendment
# scratch is package-private, so its benchmark lives with the package).
go test -run '^$' -bench 'BenchmarkSub|BenchmarkFindPathCongested|BenchmarkMRRGCacheHit|BenchmarkResultCacheHit' -benchmem \
	-benchtime "$micro_benchtime" -timeout 0 . ./internal/core | tee "$raw" >&2

echo "running Fig6 benchmarks (benchtime $benchtime)..." >&2
# -timeout 0: the Fig6 benchmarks run the full mappers, which at large
# -benchtime values outlives go test's default 10m limit.
go test -run '^$' -bench 'BenchmarkFig6' -benchmem \
	-benchtime "$benchtime" -timeout 0 . | tee -a "$raw" >&2

# Serial vs speculative II-sweep speedup: BenchmarkFig6SweepSpeculative
# is BenchmarkFig6_8x8r4_PF with a width-4 window and commits the same
# IIs/mappings, so the ns/op ratio is pure wall-clock reclaimed.
# (the -N procs suffix is absent when GOMAXPROCS=1)
serial_ns=$(awk '$1 ~ /^BenchmarkFig6_8x8r4_PF(-[0-9]+)?$/ {print $3; exit}' "$raw")
spec_ns=$(awk '$1 ~ /^BenchmarkFig6SweepSpeculative(-[0-9]+)?$/ {print $3; exit}' "$raw")
if [[ -n "${serial_ns:-}" && -n "${spec_ns:-}" ]]; then
	awk -v s="$serial_ns" -v p="$spec_ns" 'BEGIN {
		printf "II-sweep speculation (8x8r4 PF*, window 4): %.2fx speedup, %.1fs serial -> %.1fs speculative\n", s/p, s/1e9, p/1e9
	}' >&2
fi

# Portfolio racing overhead: BenchmarkFig6Portfolio races all three
# backends per kernel and commits each kernel's best II, so the
# quality-matched baseline is Rewire (the highest-priority lane — SA is
# faster in wall-clock only because it settles for worse IIs). Racing
# must cost barely more than running Rewire alone: the target is
# <= 1.1x its ns/op on the same 4x4r2 kernel set.
pf_ns=$(awk '$1 ~ /^BenchmarkFig6Portfolio(-[0-9]+)?$/ {print $3; exit}' "$raw")
rw_ns=$(awk '$1 ~ /^BenchmarkFig6_4x4r2_Rewire(-[0-9]+)?$/ {print $3; exit}' "$raw")
if [[ -n "${pf_ns:-}" && -n "${rw_ns:-}" ]]; then
	awk -v p="$pf_ns" -v r="$rw_ns" 'BEGIN {
		printf "portfolio racing (4x4r2): %.2fx Rewire alone (target <= 1.1x), %.1fs Rewire -> %.1fs portfolio, same-or-better IIs\n", p/r, r/1e9, p/1e9
	}' >&2
fi

# Result-cache hit vs cold compile: BenchmarkResultCacheHit reports the
# warm-hit ns/op plus a one-off cold_ns metric (the compile that
# populated the cache), so the ratio is the work a hit skips.
hit_ns=$(awk '$1 ~ /^BenchmarkResultCacheHit(-[0-9]+)?$/ {print $3; exit}' "$raw")
cold_ns=$(awk '$1 ~ /^BenchmarkResultCacheHit(-[0-9]+)?$/ {for (i=4; i<NF; i++) if ($(i+1) == "cold_ns") print $i}' "$raw")
if [[ -n "${hit_ns:-}" && -n "${cold_ns:-}" ]]; then
	awk -v h="$hit_ns" -v c="$cold_ns" 'BEGIN {
		printf "result-cache hit (fft 4x4r4): %.0fx speedup, %.2fs cold compile -> %.1fus warm hit\n", c/h, c/1e9, h/1e3
	}' >&2
fi

# Parse `go test -bench` lines into JSON. A line looks like:
#   BenchmarkSubRouter  2000  43163 ns/op  4015 B/op  249 allocs/op  3 sumII
go run ./scripts/benchjson "$raw" >"$out"
echo "wrote $out" >&2
