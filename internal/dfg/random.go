package dfg

import "math/rand"

// RandomConfig controls Random DFG generation for tests and fuzzing.
type RandomConfig struct {
	// Nodes is the number of operations to generate (>= 1).
	Nodes int
	// EdgeProb is the probability of a forward edge between any ordered
	// node pair (i < j).
	EdgeProb float64
	// MemFrac is the fraction of nodes that are memory operations.
	MemFrac float64
	// RecurProb is the probability of adding a distance-1 back edge from a
	// node to one of its ancestors, forming a recurrence.
	RecurProb float64
	// MaxFanIn caps the number of in-edges per node (0 = unlimited). Real
	// ALUs are binary, so kernels use 2; random graphs may exceed it
	// unless capped.
	MaxFanIn int
}

// Random generates a structurally valid random DFG: nodes are created in
// index order and distance-0 edges only go from lower to higher indices,
// guaranteeing acyclicity. Distance-1 back edges model accumulators.
func Random(rng *rand.Rand, cfg RandomConfig) *Graph {
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	g := New("random")
	arith := []OpKind{OpAdd, OpSub, OpMul, OpShl, OpAnd, OpXor, OpCmp}
	for i := 0; i < cfg.Nodes; i++ {
		op := arith[rng.Intn(len(arith))]
		if rng.Float64() < cfg.MemFrac {
			if rng.Float64() < 0.7 {
				op = OpLoad
			} else {
				op = OpStore
			}
		}
		g.AddNode(nodeName(i), op)
	}
	fanIn := make([]int, cfg.Nodes)
	for j := 1; j < cfg.Nodes; j++ {
		for i := 0; i < j; i++ {
			if cfg.MaxFanIn > 0 && fanIn[j] >= cfg.MaxFanIn {
				break
			}
			if rng.Float64() < cfg.EdgeProb {
				g.AddEdge(i, j, 0)
				fanIn[j]++
			}
		}
	}
	// Keep the graph connected-ish: every node beyond the first gets at
	// least one in-edge from a random predecessor.
	for j := 1; j < cfg.Nodes; j++ {
		if fanIn[j] == 0 {
			g.AddEdge(rng.Intn(j), j, 0)
			fanIn[j]++
		}
	}
	for j := 1; j < cfg.Nodes; j++ {
		if rng.Float64() < cfg.RecurProb {
			g.AddEdge(j, rng.Intn(j), 1)
		}
	}
	return g
}

func nodeName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if i < len(letters) {
		return string(letters[i])
	}
	return "n" + string(letters[i%len(letters)]) + string(rune('0'+i/len(letters)%10))
}
