// Package ledger is the persistent QoR record: an append-only JSONL
// store of completed mapping runs. Every producer of results — the eval
// harness, rewire-experiments, the serve daemon's flight recorder —
// appends one Entry per finished run, keyed by the same content
// fingerprints the result cache uses, and stamped with the build
// identity of the binary that produced it. The ledger is what quality
// trends, regression gates (scripts/qordiff) and the QoR dashboard
// (internal/viz, /qor.html) are computed from.
//
// The file format follows the repo's meta-line-first JSONL convention
// (rewire-trace-v1, rewire-progress-v1): the first line is a meta
// record naming the format, every later line is one run. Appends are a
// single Write of a whole line under a mutex, so concurrent writers in
// one process can never interleave bytes; O_APPEND keeps separate
// processes sharing a file safe on POSIX filesystems.
//
// A nil *Ledger is the disabled ledger: Append is a no-op costing one
// pointer check and zero allocations (pinned by
// BenchmarkSubLedgerDisabled), so call sites never guard.
package ledger

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rewire/internal/arch"
	"rewire/internal/buildinfo"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/resultcache"
)

// FormatID identifies the ledger JSONL schema, carried in the meta
// line; scripts/tracecheck dispatches its validator on it.
const FormatID = "rewire-ledger-v1"

// FileName is the ledger file a directory-backed ledger appends to.
const FileName = "ledger.jsonl"

// memoryCap bounds the in-memory mirror a long-lived daemon keeps for
// /qor: the newest entries win, the file (when there is one) keeps
// everything.
const memoryCap = 8192

// Meta is the first line of a ledger file.
type Meta struct {
	Type      string         `json:"type"` // always "meta"
	Format    string         `json:"format"`
	CreatedMS int64          `json:"created_ms"`
	Build     buildinfo.Info `json:"build"`
}

// Entry is one completed mapping run. Entries are self-contained: the
// fingerprints identify what was compiled, the build info identifies
// the code that compiled it, so two ledger snapshots from different
// checkouts can be diffed without any shared state.
type Entry struct {
	Type string `json:"type"` // always "run"
	// TSMS is the completion time in Unix milliseconds. Append stamps it
	// when zero and clamps it monotonically non-decreasing per ledger,
	// so readers may rely on file order ≡ time order.
	TSMS int64 `json:"ts_ms"`
	// Source names the producer: "eval", "experiments" or "serve".
	Source string `json:"source"`

	Kernel string `json:"kernel"`
	Arch   string `json:"arch"`
	// Mapper is canonicalised by Append via resultcache.NormalizeMapper
	// so "PF*" (eval) and "pathfinder" (serve) land in the same group.
	Mapper string `json:"mapper"`
	Seed   int64  `json:"seed"`

	Success bool `json:"success"`
	// Cached marks a run served from the result cache; qordiff and the
	// dashboard exclude cached compile times from trend statistics.
	Cached    bool    `json:"cached,omitempty"`
	II        int     `json:"ii,omitempty"`
	MII       int     `json:"mii"`
	CompileMS float64 `json:"compile_ms"`
	// WinnerBackend names the portfolio backend whose lane produced the
	// committed mapping; empty for single-mapper runs (and for failed
	// portfolio runs). Absent in pre-portfolio snapshots, which older
	// and newer readers alike treat as empty.
	WinnerBackend string `json:"winner_backend,omitempty"`

	// DFGFP/ArchFP/OptsFP are sha256-short (16 hex chars) digests of the
	// result cache's canonical fingerprint components. The full
	// fingerprints are unbounded serialisations; the digests keep
	// entries one short line while preserving exact-identity grouping.
	DFGFP  string `json:"dfg_fp"`
	ArchFP string `json:"arch_fp"`
	OptsFP string `json:"opts_fp"`

	// Attempt/contention summary distilled from the diag post-mortem
	// (AttachReport): how hard the run was, not just how it ended.
	Attempts   int `json:"attempts,omitempty"`
	Rounds     int `json:"rounds,omitempty"`
	Contested  int `json:"contested,omitempty"`
	Unroutable int `json:"unroutable,omitempty"`

	Build buildinfo.Info `json:"build"`
}

// Ledger is an append-only run store. File-backed ledgers (Open) mirror
// the newest entries in memory so aggregation never re-reads the file;
// memory ledgers (NewMemory) are the mirror alone.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	lastTS  int64
	entries []Entry
}

// Open returns a ledger appending to <dir>/ledger.jsonl, creating the
// directory and the file (with its meta line) as needed. An existing
// file is reloaded into the in-memory mirror so aggregates survive a
// daemon restart.
func Open(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	path := filepath.Join(dir, FileName)
	l := &Ledger{path: path}
	if prev, _, err := ReadFile(path); err == nil {
		if len(prev) > memoryCap {
			prev = prev[len(prev)-memoryCap:]
		}
		l.entries = prev
		if n := len(prev); n > 0 {
			l.lastTS = prev[n-1].TSMS
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l.f = f
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if st.Size() == 0 {
		meta := Meta{Type: "meta", Format: FormatID,
			CreatedMS: time.Now().UnixMilli(), Build: buildinfo.Get()}
		line, _ := json.Marshal(meta)
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: meta: %w", err)
		}
	}
	return l, nil
}

// NewMemory returns a ledger with no backing file — the serve daemon's
// default, so /qor always has the process's own history to aggregate.
func NewMemory() *Ledger { return &Ledger{} }

// Path returns the backing file path, "" for memory ledgers. Safe on
// nil.
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append records one finished run. It stamps a monotonic timestamp,
// canonicalises the mapper name and fills missing build info, then
// writes the entry as a single line. Safe on nil (no-op, zero
// allocations).
func (l *Ledger) Append(e Entry) error {
	if l == nil {
		return nil
	}
	e.Type = "run"
	e.Mapper = resultcache.NormalizeMapper(e.Mapper)
	if e.Build.GoVersion == "" {
		e.Build = buildinfo.Get()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if e.TSMS == 0 {
		e.TSMS = time.Now().UnixMilli()
	}
	if e.TSMS < l.lastTS {
		e.TSMS = l.lastTS
	}
	l.lastTS = e.TSMS

	l.entries = append(l.entries, e)
	if len(l.entries) > memoryCap {
		l.entries = l.entries[len(l.entries)-memoryCap:]
	}
	if l.f == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: marshal: %w", err)
	}
	// One Write for line+newline: concurrent appenders (and O_APPEND
	// across processes) can reorder whole lines but never interleave.
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	return nil
}

// Entries returns a copy of the in-memory mirror, oldest first. Safe on
// nil (returns nil).
func (l *Ledger) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Close releases the backing file. Safe on nil and on memory ledgers.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Fingerprints digests the result cache's canonical fingerprint triple
// for one request into the sha256-short form ledger entries carry.
func Fingerprints(g *dfg.Graph, a *arch.CGRA, req resultcache.Request) (dfgFP, archFP, optsFP string) {
	k := resultcache.KeyFor(g, a, req)
	return hashShort(k.DFG), hashShort(k.Arch), hashShort(k.Opts)
}

func hashShort(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:8])
}

// AttachReport distils a diag post-mortem into the entry's attempt and
// contention summary. Safe on a nil report (leaves the entry as-is).
func (e *Entry) AttachReport(r *diag.Report) {
	if r == nil {
		return
	}
	e.Attempts = len(r.Attempts)
	for _, a := range r.Attempts {
		e.Rounds += a.Rounds
	}
	e.Contested = len(r.Contested)
	e.Unroutable = len(r.Unroutable)
}

// Read parses one ledger stream: a meta line declaring FormatID, then
// run entries. Lines of other types are skipped so the format can grow.
func Read(r io.Reader) ([]Entry, Meta, error) {
	var meta Meta
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, meta, fmt.Errorf("ledger: line %d: %w", n, err)
		}
		switch probe.Type {
		case "meta":
			if err := json.Unmarshal(line, &meta); err != nil {
				return nil, meta, fmt.Errorf("ledger: line %d: meta: %w", n, err)
			}
			if meta.Format != FormatID {
				return nil, meta, fmt.Errorf("ledger: line %d: format %q, want %q", n, meta.Format, FormatID)
			}
		case "run":
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, meta, fmt.Errorf("ledger: line %d: %w", n, err)
			}
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, meta, fmt.Errorf("ledger: %w", err)
	}
	if n == 0 {
		return nil, meta, fmt.Errorf("ledger: empty stream")
	}
	if meta.Format == "" {
		return nil, meta, fmt.Errorf("ledger: no %s meta line", FormatID)
	}
	return out, meta, nil
}

// ReadFile reads one ledger file.
func ReadFile(path string) ([]Entry, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	return Read(f)
}

// ReadSnapshot reads a ledger snapshot: a single JSONL file, or a
// directory whose *.jsonl files are merged and re-sorted by timestamp
// (stable, so same-millisecond entries keep file order). This is the
// input form scripts/qordiff takes.
func ReadSnapshot(path string) ([]Entry, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		es, _, err := ReadFile(path)
		return es, err
	}
	files, err := filepath.Glob(filepath.Join(path, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var all []Entry
	for _, f := range files {
		es, _, err := ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		all = append(all, es...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("ledger: no entries under %s", path)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].TSMS < all[j].TSMS })
	return all, nil
}

// Group aggregates every run of one (kernel, arch, mapper) triple, in
// timestamp order — the unit qordiff compares and the dashboard renders.
type Group struct {
	Kernel string
	Arch   string
	Mapper string

	Runs      int
	Successes int
	// BestII is the lowest II any successful run achieved, 0 when none
	// succeeded. MII is the lowest MII observed (MII can differ across
	// archs only, so within a group it is effectively constant).
	BestII int
	MII    int
	// IIs lists successful runs' IIs in time order (sparkline input).
	IIs []int
	// CompileMS lists non-cached runs' compile times in time order.
	CompileMS []float64
	LastTSMS  int64
	// WinnerCounts tallies portfolio wins per backend name; empty for
	// single-mapper groups (their entries carry no winner).
	WinnerCounts map[string]int
}

// SuccessRate is Successes/Runs, 0 for an empty group.
func (g Group) SuccessRate() float64 {
	if g.Runs == 0 {
		return 0
	}
	return float64(g.Successes) / float64(g.Runs)
}

// TopWinner returns the portfolio backend that won most often in this
// group and its share of the recorded wins; ("", 0) when the group has
// no winner records (every single-mapper group). Ties break
// alphabetically so rendering is deterministic.
func (g Group) TopWinner() (backend string, share float64) {
	total := 0
	for name, n := range g.WinnerCounts {
		total += n
		if n > g.WinnerCounts[backend] || (n == g.WinnerCounts[backend] && (backend == "" || name < backend)) {
			backend = name
		}
	}
	if total == 0 {
		return "", 0
	}
	return backend, float64(g.WinnerCounts[backend]) / float64(total)
}

// Aggregate groups entries by (kernel, arch, mapper) and returns the
// groups sorted by that triple — deterministic for diffing and
// rendering.
func Aggregate(entries []Entry) []Group {
	idx := map[[3]string]int{}
	var groups []Group
	for _, e := range entries {
		key := [3]string{e.Kernel, e.Arch, resultcache.NormalizeMapper(e.Mapper)}
		i, ok := idx[key]
		if !ok {
			i = len(groups)
			idx[key] = i
			groups = append(groups, Group{Kernel: key[0], Arch: key[1], Mapper: key[2]})
		}
		g := &groups[i]
		g.Runs++
		if e.Success {
			g.Successes++
			g.IIs = append(g.IIs, e.II)
			if g.BestII == 0 || e.II < g.BestII {
				g.BestII = e.II
			}
		}
		if e.MII > 0 && (g.MII == 0 || e.MII < g.MII) {
			g.MII = e.MII
		}
		if !e.Cached {
			g.CompileMS = append(g.CompileMS, e.CompileMS)
		}
		if e.WinnerBackend != "" {
			if g.WinnerCounts == nil {
				g.WinnerCounts = map[string]int{}
			}
			g.WinnerCounts[e.WinnerBackend]++
		}
		if e.TSMS > g.LastTSMS {
			g.LastTSMS = e.TSMS
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		return a.Mapper < b.Mapper
	})
	return groups
}

// Median returns the median of xs, 0 for an empty slice. It copies
// before sorting, so callers' time-ordered slices stay intact.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
