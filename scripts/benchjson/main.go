// Command benchjson converts `go test -bench` output into a JSON array,
// one record per benchmark line, so scripts/bench.sh can emit machine-
// readable BENCH_<date>.json files and the perf trajectory can be
// diffed across PRs.
//
// Input lines look like:
//
//	BenchmarkSubRouter  2000  43163 ns/op  4015 B/op  249 allocs/op  3.0 sumII
//
// Every "<value> <unit>" pair after the iteration count becomes a field
// keyed by unit ("ns/op", "B/op", "allocs/op", and custom b.ReportMetric
// units like "expansions/op" or "sumII"), so scripts/benchdiff can gate
// per-op work metrics alongside wall-clock.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole file: a stamped, ordered run.
type Output struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := Output{Date: time.Now().Format("2006-01-02"), Benchmarks: []Record{}}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "go: ") {
			out.GoVersion = strings.TrimPrefix(line, "go: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...--- FAIL" artifact
		}
		rec := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
