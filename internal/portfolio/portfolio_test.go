package portfolio

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/stats"
	"rewire/internal/sweep"
)

// detBudget must never bind: each backend's own work bounds terminate
// every lane on these kernels well under a second natively, and a
// binding wall clock would make any schedule — serial included —
// timing-dependent. An hour absorbs the race detector's ~20x slowdown.
const detBudget = time.Hour

// normalize strips the wall-clock-dependent accounting from a result so
// the rest can be compared bit-for-bit across parallelism widths:
// Duration always varies, and the portfolio lane tallies (Launched,
// Cancelled, WastedMS) count speculative work, which by design depends
// on the width. WinnerBackend and everything else must not.
func normalize(r stats.Result) stats.Result {
	r.Duration = 0
	if r.Portfolio != nil {
		p := *r.Portfolio
		p.PerBackend = append([]stats.BackendLanes(nil), p.PerBackend...)
		for i := range p.PerBackend {
			p.PerBackend[i].Launched = 0
			p.PerBackend[i].Cancelled = 0
			p.PerBackend[i].WastedMS = 0
		}
		r.Portfolio = &p
	}
	return r
}

// TestPortfolioDeterminismMatrix is the PR's acceptance matrix: the
// committed (II, placement, routes, merged stats, winner backend) is
// bit-identical at widths {1, 4, 8} for kernels × seeds {1, 7, 42}.
// Width 1 is the priority-ordered serial schedule, so equality with it
// proves the racing schedules commit exactly what "run the backends in
// priority order, lowest II first" would.
func TestPortfolioDeterminismMatrix(t *testing.T) {
	kernelNames := []string{"mvt", "atax"}
	seeds := []int64{1, 7, 42}
	widths := []int{1, 4, 8}
	for _, kernel := range kernelNames {
		for _, seed := range seeds {
			kernel, seed := kernel, seed
			t.Run(fmt.Sprintf("%s/seed%d", kernel, seed), func(t *testing.T) {
				t.Parallel()
				a := arch.New4x4(4)
				type outcome struct {
					m  *mapping.Mapping
					st stats.Result
				}
				var ref outcome
				for i, w := range widths {
					g := kernels.MustLoad(kernel)
					m, st := Map(g, a, Options{
						Seed: seed, TimePerII: detBudget, Parallelism: w,
					})
					if !st.Success {
						t.Fatalf("width %d: portfolio failed (mii %d)", w, st.MII)
					}
					if st.Portfolio == nil || st.Portfolio.WinnerBackend == "" {
						t.Fatalf("width %d: missing portfolio stats / winner", w)
					}
					if err := mapping.Validate(m); err != nil {
						t.Fatalf("width %d: invalid mapping: %v", w, err)
					}
					cur := outcome{m: m, st: normalize(st)}
					if i == 0 {
						ref = cur
						continue
					}
					if cur.st.II != ref.st.II {
						t.Fatalf("width %d: II %d != serial II %d", w, cur.st.II, ref.st.II)
					}
					if cur.st.Portfolio.WinnerBackend != ref.st.Portfolio.WinnerBackend {
						t.Fatalf("width %d: winner %q != serial winner %q",
							w, cur.st.Portfolio.WinnerBackend, ref.st.Portfolio.WinnerBackend)
					}
					if !reflect.DeepEqual(cur.m.Place, ref.m.Place) {
						t.Fatalf("width %d: placement differs from serial schedule", w)
					}
					if !reflect.DeepEqual(cur.m.Routes, ref.m.Routes) {
						t.Fatalf("width %d: routes differ from serial schedule", w)
					}
					if !reflect.DeepEqual(cur.st, ref.st) {
						t.Fatalf("width %d: merged stats differ from serial schedule:\n got %+v\nwant %+v",
							w, cur.st, ref.st)
					}
				}
			})
		}
	}
}

// TestPortfolioCancellationTeardown races a wide window, lets a lane
// win early (cancelling the rest), and asserts clean teardown: no
// goroutine outlives the run, and the pooled mapper state the
// cancelled lanes returned is not corrupted — a fresh serial run still
// commits the identical result.
func TestPortfolioCancellationTeardown(t *testing.T) {
	a := arch.New4x4(4)
	run := func(w int) (*mapping.Mapping, stats.Result) {
		g := kernels.MustLoad("mvt")
		return Map(g, a, Options{Seed: 7, TimePerII: detBudget, Parallelism: w})
	}
	// Warm pools and the scheduler outside the measurement.
	run(2)

	before := runtime.NumGoroutine()
	wm, wst := run(8)
	if !wst.Success {
		t.Fatal("wide portfolio run failed")
	}
	cancelledLanes := 0
	for _, b := range wst.Portfolio.PerBackend {
		cancelledLanes += b.Cancelled
	}
	if cancelledLanes == 0 {
		t.Fatal("width-8 run cancelled no lanes; teardown path not exercised")
	}
	// Every lane goroutine must be drained before MapCtx returns;
	// allow unrelated runtime goroutines a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked after early lane win: %d > %d\n%s",
			got, before, buf[:runtime.Stack(buf, true)])
	}

	sm, sst := run(1)
	if sst.II != wst.II || sst.Portfolio.WinnerBackend != wst.Portfolio.WinnerBackend {
		t.Fatalf("post-cancellation serial run diverged: II %d/%s vs %d/%s",
			sst.II, sst.Portfolio.WinnerBackend, wst.II, wst.Portfolio.WinnerBackend)
	}
	if !reflect.DeepEqual(sm.Place, wm.Place) || !reflect.DeepEqual(sm.Routes, wm.Routes) {
		t.Fatal("post-cancellation serial run committed a different mapping: pool state leaked")
	}
}

// TestPortfolioContextCancel aborts a run up front and asserts it
// reports failure without leaking lanes.
func TestPortfolioContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := kernels.MustLoad("mvt")
	m, st := MapCtx(ctx, g, arch.New4x4(4), Options{Seed: 1, TimePerII: detBudget, Parallelism: 4})
	if st.Success || m != nil {
		t.Fatal("cancelled portfolio run reported success")
	}
	if st.Portfolio == nil || st.Portfolio.WinnerBackend != "" {
		t.Fatalf("cancelled run should carry empty-winner portfolio stats, got %+v", st.Portfolio)
	}
}

func TestCanonicalBackends(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, "rewire,pathfinder,sa"},
		{[]string{"sa", "rewire"}, "rewire,sa"}, // registry priority, not input order
		{[]string{"PF*", "pf", "Pathfinder"}, "pathfinder"},
		{[]string{"Rewire", "SA", "rewire"}, "rewire,sa"},
	}
	for _, c := range cases {
		got, err := Canonical(c.in)
		if err != nil {
			t.Fatalf("Canonical(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Canonical(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := Canonical([]string{"rewire", "simplex"}); err == nil {
		t.Fatal("Canonical accepted an unknown backend")
	} else if _, ok := err.(*UnknownBackendError); !ok {
		t.Fatalf("want *UnknownBackendError, got %T", err)
	}
}

func TestParseBackends(t *testing.T) {
	if got := ParseBackends(""); got != nil {
		t.Fatalf("ParseBackends(\"\") = %v, want nil", got)
	}
	got := ParseBackends(" rewire, sa ,")
	if !reflect.DeepEqual(got, []string{"rewire", "sa"}) {
		t.Fatalf("ParseBackends = %v", got)
	}
}

// TestSeedForBackendDistinct guards the lane-seed contract: backends
// at the same II draw distinct streams, and each backend's lane seed
// is independent of the others' presence.
func TestSeedForBackendDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, b := range Order() {
		for ii := 2; ii < 6; ii++ {
			s := sweep.SeedForBackend(42, b, ii)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s@%d and %s", b, ii, prev)
			}
			seen[s] = fmt.Sprintf("%s@%d", b, ii)
		}
	}
}
