package main

import (
	"strings"
	"testing"
)

func out(recs ...Record) Output { return Output{Date: "2026-08-06", Benchmarks: recs} }

func rec(name string, ns, allocs float64) Record {
	return Record{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestNoRegression(t *testing.T) {
	base := out(rec("BenchmarkA", 1000, 5), rec("BenchmarkZero", 40, 0))
	cur := out(rec("BenchmarkA", 1100, 5), rec("BenchmarkZero", 35, 0))
	regs, _ := diff(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("regs = %v, want none (+10%% is inside threshold)", regs)
	}
}

func TestNsOpRegression(t *testing.T) {
	base := out(rec("BenchmarkA", 1000, 5))
	cur := out(rec("BenchmarkA", 1200, 5))
	regs, _ := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regs = %v, want one ns/op regression (+20%%)", regs)
	}
}

func TestThresholdIsExclusive(t *testing.T) {
	base := out(rec("BenchmarkA", 1000, 5))
	cur := out(rec("BenchmarkA", 1150, 5))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("exactly +15%% must pass, got %v", regs)
	}
}

func TestZeroAllocPin(t *testing.T) {
	base := out(rec("BenchmarkTracerDisabled", 2, 0))
	cur := out(rec("BenchmarkTracerDisabled", 2, 1))
	regs, _ := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want the zero-alloc pin to fail", regs)
	}
	// Nonzero-baseline allocs may drift inside the threshold.
	base = out(rec("BenchmarkBig", 1000, 100))
	cur = out(rec("BenchmarkBig", 1000, 110))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("+10%% on a nonzero alloc baseline must pass, got %v", regs)
	}
}

func TestNonzeroAllocRegressionGated(t *testing.T) {
	// Past the threshold, a nonzero-baseline allocs/op jump is a real
	// regression: allocation counts are deterministic, not runner noise.
	base := out(rec("BenchmarkBig", 1000, 100))
	cur := out(rec("BenchmarkBig", 1000, 150))
	regs, notes := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want one allocs/op regression (+50%%)", regs)
	}
	if s := regs[0].String(); strings.Contains(s, "zero-alloc pin") {
		t.Fatalf("nonzero-baseline regression mislabelled as a pin break: %s", s)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "allocs/op") {
		t.Fatalf("notes missing the allocs/op delta:\n%s", strings.Join(notes, "\n"))
	}
	// Improvements are noted, never failed.
	cur = out(rec("BenchmarkBig", 1000, 40))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("an allocs/op improvement must pass, got %v", regs)
	}
}

func TestMissingBenchesTolerated(t *testing.T) {
	base := out(rec("BenchmarkGone", 1000, 0))
	cur := out(rec("BenchmarkNew", 1000, 0))
	regs, notes := diff(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("missing benches must not regress, got %v", regs)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"only in baseline: BenchmarkGone", "only in current: BenchmarkNew"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestSelfDiffIsClean(t *testing.T) {
	base := out(rec("BenchmarkA", 1000, 5), rec("BenchmarkZero", 40, 0))
	if regs, _ := diff(base, base, 0.15); len(regs) != 0 {
		t.Fatalf("self diff regressed: %v", regs)
	}
}

func recM(name string, metrics map[string]float64) Record {
	return Record{Name: name, Iterations: 1, Metrics: metrics}
}

func TestBytesPerOpGated(t *testing.T) {
	// B/op regressions past the threshold fail even when allocs/op is
	// flat: the same number of allocations, each one bigger.
	base := out(recM("BenchmarkSubLower", map[string]float64{"ns/op": 1000, "allocs/op": 100, "B/op": 10000}))
	cur := out(recM("BenchmarkSubLower", map[string]float64{"ns/op": 1000, "allocs/op": 100, "B/op": 20000}))
	regs, notes := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "B/op" {
		t.Fatalf("regs = %v, want one B/op regression (+100%%)", regs)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "B/op") {
		t.Fatalf("notes missing the B/op delta:\n%s", strings.Join(notes, "\n"))
	}
	// Inside the threshold: noted, not failed.
	cur = out(recM("BenchmarkSubLower", map[string]float64{"ns/op": 1000, "allocs/op": 100, "B/op": 11000}))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("+10%% B/op must pass, got %v", regs)
	}
	// Improvements are never failed.
	cur = out(recM("BenchmarkSubLower", map[string]float64{"ns/op": 1000, "allocs/op": 100, "B/op": 4000}))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("a B/op improvement must pass, got %v", regs)
	}
}

func TestZeroBytesPin(t *testing.T) {
	// A zero-B/op baseline is a pin like zero allocs: any growth fails.
	base := out(recM("BenchmarkTracerDisabled", map[string]float64{"ns/op": 2, "allocs/op": 0, "B/op": 0}))
	cur := out(recM("BenchmarkTracerDisabled", map[string]float64{"ns/op": 2, "allocs/op": 0, "B/op": 16}))
	regs, _ := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "B/op" {
		t.Fatalf("regs = %v, want the zero-B/op pin to fail", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "pin broken") {
		t.Fatalf("pin break not labelled: %s", s)
	}
}

func TestCustomPerOpMetricGated(t *testing.T) {
	base := out(recM("BenchmarkSubRouter", map[string]float64{"ns/op": 1000, "expansions/op": 200}))
	cur := out(recM("BenchmarkSubRouter", map[string]float64{"ns/op": 1000, "expansions/op": 300}))
	regs, notes := diff(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "expansions/op" {
		t.Fatalf("regs = %v, want one expansions/op regression (+50%%)", regs)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "expansions/op") {
		t.Fatalf("notes missing the expansions/op delta:\n%s", strings.Join(notes, "\n"))
	}
	// Inside the threshold: noted but not failed.
	cur = out(recM("BenchmarkSubRouter", map[string]float64{"ns/op": 1000, "expansions/op": 210}))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("+5%% expansions/op must pass, got %v", regs)
	}
}

func TestCustomMetricOnlyInOneFileTolerated(t *testing.T) {
	// A metric added this PR has no baseline value; the diff must not
	// fail (nor crash) on the asymmetry. Quality metrics without the
	// "/op" suffix (sumII, fails) are never gated.
	base := out(recM("BenchmarkA", map[string]float64{"ns/op": 1000, "sumII": 30}))
	cur := out(recM("BenchmarkA", map[string]float64{"ns/op": 1000, "sumII": 45, "expansions/op": 50}))
	if regs, _ := diff(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("asymmetric/quality metrics must not regress, got %v", regs)
	}
}
