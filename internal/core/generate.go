package core

import (
	"rewire/internal/mrrg"
	"rewire/internal/route"
	"rewire/internal/trace"
)

// generate implements Algorithm 2: build Placement(U) by assigning
// candidates to cluster nodes in topological order, pruning with
// execution-cycle data-dependency constraints against already-chosen
// nodes, and verifying through routing. Verification is incremental
// (forward checking): as soon as a node is tentatively placed, every
// edge to an already-placed endpoint — mapped anchors and earlier
// cluster nodes — is routed, reusing the propagation probe paths where
// possible; a node whose edges cannot route is rejected on the spot
// instead of poisoning a full Placement(U). The first complete verified
// placement is committed.
func (a *amender) generate(u *cluster, cands map[int][]pcand, props map[int]*propagation, budget *int) bool {
	gs := a.tr.StartSpan(a.cur, "placement_enum").WithInt("budget", int64(*budget))
	for _, v := range u.nodes {
		if len(cands[v]) == 0 {
			gs.WithBool("ok", false).End()
			return false // some node has no candidate at all
		}
	}
	scr := a.scratch()
	chosen := scr.chosenBuf
	if cap(chosen) < len(u.nodes) {
		chosen = make([]pcand, len(u.nodes))
	}
	chosen = chosen[:len(u.nodes)]
	scr.chosenBuf = chosen
	gen := &scr.gen
	*gen = generator{
		a:      a,
		u:      u,
		cands:  cands,
		props:  props,
		chosen: chosen,
		budget: budget,
		span:   gs,
		scr:    scr,
	}
	ok := gen.assign(0)
	gs.WithBool("ok", ok).End()
	return ok
}

type generator struct {
	a      *amender
	u      *cluster
	cands  map[int][]pcand
	props  map[int]*propagation
	chosen []pcand
	budget *int
	span   *trace.Span   // the placement_enum span; parent of verify spans
	scr    *amendScratch // owns the per-depth routed-edge buffers
}

// assign recursively picks a candidate for the i-th cluster node (the
// index-vector iteration of Algorithm 2, realised as backtracking with
// incremental routing verification). The amortised pacer check is also
// where a cancelled speculative II attempt bails out of the enumeration.
func (g *generator) assign(i int) bool {
	if *g.budget <= 0 || g.a.pace.Expired() {
		return false
	}
	if i == len(g.u.nodes) {
		return true
	}
	v := g.u.nodes[i]
	for _, c := range g.cands[v] {
		g.a.res.PlacementsTried++
		g.a.ctr.placementsTried.Add(1)
		if !g.admissible(i, v, c) {
			g.a.ctr.placementsPruned.Add(1)
			continue
		}
		if g.a.sess.PlaceNode(v, c.pe, c.T) != nil {
			g.a.ctr.placementsPruned.Add(1)
			continue
		}
		// Only routed placement trials count against the budget; the
		// cheap execution-cycle rejections above are nearly free.
		*g.budget--
		g.a.res.VerifyAttempts++
		g.a.ctr.verifyAttempts.Add(1)
		vs := g.a.tr.StartSpan(g.span, "verify").
			WithInt("node", int64(v)).WithInt("pe", int64(c.pe)).WithInt("t", int64(c.T))
		routed, ok := g.routeNode(i, v)
		vs.WithBool("ok", ok).End()
		if ok {
			g.a.res.VerifySuccesses++
			g.a.ctr.verifySuccesses.Add(1)
			g.chosen[i] = c
			if g.assign(i + 1) {
				return true
			}
		}
		for _, eid := range routed {
			g.a.sess.UnrouteEdge(eid)
		}
		g.a.sess.UnplaceNode(v)
		if *g.budget <= 0 {
			return false
		}
	}
	return false
}

// admissible applies the cheap execution-cycle pruning of Algorithm 2
// (lines 6-8) before any resources are touched: FU-slot exclusivity and
// latency feasibility against every already-chosen cluster node that v
// depends on.
func (g *generator) admissible(i, v int, c pcand) bool {
	if g.a.opt.DisableCyclePruning {
		return true // ablation: let placement and routing reject instead
	}
	ii := g.a.sess.M.II
	slot := ((c.T % ii) + ii) % ii
	for j := 0; j < i; j++ {
		cw := g.chosen[j]
		if cw.pe == c.pe && ((cw.T%ii)+ii)%ii == slot {
			return false // same FU slot
		}
	}
	for _, eid := range g.a.g.InEdges(v) {
		e := g.a.g.Edges[eid]
		if e.From == v || !g.u.contains(e.From) {
			continue
		}
		if j, ok := g.indexOf(e.From, i); ok {
			if !g.latOK(g.chosen[j], c, e.Dist) {
				return false
			}
		}
	}
	for _, eid := range g.a.g.OutEdges(v) {
		e := g.a.g.Edges[eid]
		if e.To == v || !g.u.contains(e.To) {
			continue
		}
		if j, ok := g.indexOf(e.To, i); ok {
			if !g.latOK(c, g.chosen[j], e.Dist) {
				return false
			}
		}
	}
	return true
}

// latOK checks the producer->consumer cycle constraint for an in-cluster
// edge: latency at least 1, at least the oracle's exact minimum routing
// latency (exact on torus wrap links, where a Manhattan bound would
// reject routable candidates), and within the router's bound.
func (g *generator) latOK(from, to pcand, dist int) bool {
	lat := to.T - from.T + dist*g.a.sess.M.II
	if lat < 1 || lat > g.a.router.MaxLat() {
		return false
	}
	return lat >= g.a.router.NeedCycles(from.pe, to.pe)
}

func (g *generator) indexOf(v, limit int) (int, bool) {
	for j := 0; j < limit; j++ {
		if g.u.nodes[j] == v {
			return j, true
		}
	}
	return 0, false
}

// routeNode routes every edge of v whose other endpoint is placed,
// returning the edges committed and whether all succeeded. The returned
// slice is the depth-i scratch buffer — one buffer per recursion depth,
// because depth i's routed list must survive while assign(i+1) runs.
func (g *generator) routeNode(i, v int) ([]int, bool) {
	a := g.a
	for len(g.scr.routedBufs) <= i {
		g.scr.routedBufs = append(g.scr.routedBufs, nil)
	}
	done := g.scr.routedBufs[i][:0]
	defer func() { g.scr.routedBufs[i] = done }()
	tryEdge := func(eid int) bool {
		e := a.g.Edges[eid]
		if !a.sess.M.Placed(e.From) || !a.sess.M.Placed(e.To) || a.sess.M.Routed(eid) {
			return true
		}
		if !g.routeOne(eid) {
			return false
		}
		done = append(done, eid)
		return true
	}
	// In-edges first, then out-edges, skipping the one overlap (a self
	// edge appears in both lists) — the same order the old concatenate-
	// and-dedup walk produced.
	for _, eid := range a.g.InEdges(v) {
		if !tryEdge(eid) {
			return done, false
		}
	}
	for _, eid := range a.g.OutEdges(v) {
		if e := a.g.Edges[eid]; e.From == v && e.To == v {
			continue
		}
		if !tryEdge(eid) {
			return done, false
		}
	}
	return done, true
}

// routeOne routes a single edge, trying the propagation-recorded path
// first (the reuse of wire information), then the router.
func (g *generator) routeOne(eid int) bool {
	a := g.a
	e := a.g.Edges[eid]
	lat := a.sess.M.Latency(eid)
	if lat < 1 {
		return false
	}
	// Fast path: a probe from the producer anchor already walked a route
	// to the consumer's PE with exactly this cycle count.
	if p := propOf(g.props, e.From, true); p != nil && !g.u.contains(e.From) && !a.opt.DisableTuplePaths {
		toPE := a.sess.M.Place[e.To].PE
		if ar, ok := p.hasCycle(toPE, lat); ok {
			path := p.extractPath(ar, lat)
			if a.sess.RouteEdge(eid, path) == nil {
				return true
			}
		}
	}
	// Symmetric fast path for backward probes from a consumer anchor.
	if p := propOf(g.props, e.To, false); p != nil && !g.u.contains(e.To) && !a.opt.DisableTuplePaths {
		fromPE := a.sess.M.Place[e.From].PE
		if ar, ok := p.hasCycle(fromPE, lat); ok {
			path := p.extractPath(ar, lat)
			if a.sess.RouteEdge(eid, path) == nil {
				return true
			}
		}
	}
	src := a.sess.Graph.FU(a.sess.M.Place[e.From].PE, a.sess.M.Place[e.From].Time)
	dst := a.sess.Graph.FU(a.sess.M.Place[e.To].PE, a.sess.M.Place[e.To].Time)
	path, found := a.router.FindPath(src, dst, lat,
		route.StrictCost(a.sess.State, mrrg.Net(e.From)), route.StrictFloor(a.sess, e.From))
	if !found {
		return false
	}
	return a.sess.RouteEdge(eid, path) == nil
}
