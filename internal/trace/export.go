package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// jsonlSpan is the JSONL span record.
type jsonlSpan struct {
	Type    string         `json:"type"` // "span"
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Lane    int            `json:"lane"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes the trace as one JSON record per line: a meta
// header, every completed span in start order, then counters and
// histograms sorted by name. Every line is an independent JSON object,
// so the stream is greppable and tail-safe.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a disabled (nil) tracer")
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	enc := json.NewEncoder(w)
	meta := struct {
		Type     string `json:"type"` // "meta"
		Format   string `json:"format"`
		Started  string `json:"started"`
		Spans    int    `json:"spans"`
		Counters int    `json:"counters"`
	}{Type: "meta", Format: "rewire-trace-v1", Started: t.t0.Format(time.RFC3339Nano), Spans: len(spans)}

	t.cmu.Lock()
	meta.Counters = len(t.counters)
	t.cmu.Unlock()
	if err := enc.Encode(meta); err != nil {
		return err
	}

	for _, s := range spans {
		rec := jsonlSpan{
			Type: "span", ID: s.ID, Parent: s.Parent, Name: s.Name, Lane: s.Lane,
			StartUS: micros(s.Start), DurUS: micros(s.Dur), Attrs: attrMap(s.Attrs),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}

	totals := t.CounterTotals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rec := struct {
			Type  string `json:"type"` // "counter"
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}{Type: "counter", Name: n, Value: totals[n]}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}

	hists := t.HistogramStats()
	hnames := make([]string, 0, len(hists))
	for n := range hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		rec := struct {
			Type string `json:"type"` // "histogram"
			Name string `json:"name"`
			HistStats
		}{Type: "histogram", Name: n, HistStats: hists[n]}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event record. Spans export as complete
// ("X") events; counters as counter ("C") events sampled once at the end
// of the trace (Perfetto renders them as counter tracks).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON format:
// open the file in chrome://tracing or drag it into
// https://ui.perfetto.dev. Span lanes become thread tracks, so nested
// phases stack and parallel probe floods render side by side.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a disabled (nil) tracer")
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	const pid = 1
	events := make([]chromeEvent, 0, len(spans)+8)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": "rewire"},
	})
	var endTS time.Duration
	for _, s := range spans {
		if e := s.Start + s.Dur; e > endTS {
			endTS = e
		}
		args := attrMap(s.Attrs)
		if s.Parent != 0 {
			if args == nil {
				args = map[string]any{}
			}
			args["span_id"] = s.ID
			args["parent_id"] = s.Parent
		}
		dur := micros(s.Dur)
		if dur <= 0 {
			dur = 0.001 // zero-width slices are dropped by some viewers
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Ts: micros(s.Start), Dur: &dur,
			Pid: pid, Tid: s.Lane + 1, Args: args,
		})
	}

	totals := t.CounterTotals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		events = append(events, chromeEvent{
			Name: n, Ph: "C", Ts: micros(endTS), Pid: pid, Tid: 0,
			Args: map[string]any{"value": totals[n]},
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
