package viz

// The QoR dashboard: renders a ledger snapshot — every recorded run,
// grouped by (kernel, arch, mapper) — as readable ASCII and as a
// self-contained HTML page. Served live by rewire-serve at /qor.html
// and printable offline from any ledger file.

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"rewire/internal/ledger"
)

// RenderQoR renders the QoR dashboard as ASCII: a per-group quality
// table with II-over-time sparklines, a compile-time trend table, and
// the pairwise mapper win-rate matrix. Safe on an empty snapshot.
func RenderQoR(entries []ledger.Entry) string {
	var b strings.Builder
	groups := ledger.Aggregate(entries)
	fmt.Fprintf(&b, "QoR dashboard: %d runs in %d groups\n", len(entries), len(groups))
	if len(groups) == 0 {
		b.WriteString("  (ledger is empty)\n")
		return b.String()
	}

	b.WriteString("\nmapping quality (per kernel@arch and mapper):\n")
	fmt.Fprintf(&b, "  %-22s %-10s %5s %5s %6s %4s %-15s %s\n",
		"combo", "mapper", "runs", "ok%", "bestII", "MII", "winner", "II over time")
	for _, g := range groups {
		best := "-"
		if g.BestII > 0 {
			best = fmt.Sprintf("%d", g.BestII)
		}
		fmt.Fprintf(&b, "  %-22s %-10s %5d %4.0f%% %6s %4d %-15s %s\n",
			g.Kernel+"@"+g.Arch, g.Mapper, g.Runs, 100*g.SuccessRate(), best, g.MII,
			winnerCell(g), Sparkline(g.IIs))
	}

	b.WriteString("\ncompile-time trend (non-cached runs):\n")
	fmt.Fprintf(&b, "  %-22s %-10s %5s %10s %10s  %s\n",
		"combo", "mapper", "runs", "median ms", "last ms", "trend")
	for _, g := range groups {
		if len(g.CompileMS) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-22s %-10s %5d %10.1f %10.1f  %s\n",
			g.Kernel+"@"+g.Arch, g.Mapper, len(g.CompileMS),
			ledger.Median(g.CompileMS), g.CompileMS[len(g.CompileMS)-1],
			Sparkline(msSeries(g.CompileMS)))
	}

	mappers, wins, comp := winMatrix(groups)
	if len(mappers) > 1 {
		b.WriteString("\nmapper win rate (row beats column on best II per combo):\n")
		fmt.Fprintf(&b, "  %-12s", "")
		for _, m := range mappers {
			fmt.Fprintf(&b, " %10s", m)
		}
		b.WriteByte('\n')
		for i, m := range mappers {
			fmt.Fprintf(&b, "  %-12s", m)
			for j := range mappers {
				b.WriteString(" " + winCell(i, j, wins, comp))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderQoRHTML renders the same dashboard as a self-contained HTML
// page.
func RenderQoRHTML(entries []ledger.Entry) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>rewire QoR dashboard</title>\n<style>\n")
	b.WriteString(`body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}
h1{font-size:1.3em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse} td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
.spark{font-family:monospace} .num{text-align:right}
`)
	b.WriteString("</style></head><body>\n")
	esc := html.EscapeString
	groups := ledger.Aggregate(entries)
	fmt.Fprintf(&b, "<h1>rewire QoR dashboard</h1>\n<p>%d runs in %d groups</p>\n",
		len(entries), len(groups))
	if len(groups) == 0 {
		b.WriteString("<p>ledger is empty</p></body></html>\n")
		return b.String()
	}

	b.WriteString("<h2>mapping quality</h2>\n<table><tr><th>combo</th><th>mapper</th>" +
		"<th>runs</th><th>success</th><th>best II</th><th>MII</th><th>winner</th><th>II over time</th></tr>\n")
	for _, g := range groups {
		best := "-"
		if g.BestII > 0 {
			best = fmt.Sprintf("%d", g.BestII)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%d</td>"+
			"<td class=\"num\">%.0f%%</td><td class=\"num\">%s</td><td class=\"num\">%d</td>"+
			"<td>%s</td><td class=\"spark\">%s</td></tr>\n",
			esc(g.Kernel+"@"+g.Arch), esc(g.Mapper), g.Runs, 100*g.SuccessRate(),
			best, g.MII, esc(winnerCell(g)), Sparkline(g.IIs))
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>compile-time trend (non-cached runs)</h2>\n<table><tr><th>combo</th>" +
		"<th>mapper</th><th>runs</th><th>median ms</th><th>last ms</th><th>trend</th></tr>\n")
	for _, g := range groups {
		if len(g.CompileMS) == 0 {
			continue
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%d</td>"+
			"<td class=\"num\">%.1f</td><td class=\"num\">%.1f</td><td class=\"spark\">%s</td></tr>\n",
			esc(g.Kernel+"@"+g.Arch), esc(g.Mapper), len(g.CompileMS),
			ledger.Median(g.CompileMS), g.CompileMS[len(g.CompileMS)-1],
			Sparkline(msSeries(g.CompileMS)))
	}
	b.WriteString("</table>\n")

	mappers, wins, comp := winMatrix(groups)
	if len(mappers) > 1 {
		b.WriteString("<h2>mapper win rate (row beats column on best II per combo)</h2>\n<table><tr><th></th>")
		for _, m := range mappers {
			fmt.Fprintf(&b, "<th>%s</th>", esc(m))
		}
		b.WriteString("</tr>\n")
		for i, m := range mappers {
			fmt.Fprintf(&b, "<tr><th>%s</th>", esc(m))
			for j := range mappers {
				fmt.Fprintf(&b, "<td class=\"num\">%s</td>", winCell(i, j, wins, comp))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// winnerCell renders a group's portfolio win-rate: the backend whose
// lane won most often and its share of wins ("rewire 80%"), "-" for
// single-mapper groups whose entries carry no winner.
func winnerCell(g ledger.Group) string {
	backend, share := g.TopWinner()
	if backend == "" {
		return "-"
	}
	return fmt.Sprintf("%s %.0f%%", backend, 100*share)
}

// msSeries quantises a compile-time series to whole milliseconds for
// the sparkline (which takes ints).
func msSeries(ms []float64) []int {
	out := make([]int, len(ms))
	for i, v := range ms {
		out[i] = int(v + 0.5)
	}
	return out
}

// winMatrix scores every mapper pair on the combos both attempted: a
// mapper wins a combo by succeeding where the other failed, or by a
// strictly lower best II. wins[i][j] counts row i's wins over column j
// out of comp[i][j] comparable combos (ties favour neither side).
func winMatrix(groups []ledger.Group) (mappers []string, wins, comp [][]int) {
	type comboBest struct {
		ok bool
		ii int
	}
	best := map[string]map[string]comboBest{} // combo -> mapper -> best
	seen := map[string]bool{}
	for _, g := range groups {
		combo := g.Kernel + "@" + g.Arch
		if best[combo] == nil {
			best[combo] = map[string]comboBest{}
		}
		best[combo][g.Mapper] = comboBest{ok: g.BestII > 0, ii: g.BestII}
		if !seen[g.Mapper] {
			seen[g.Mapper] = true
			mappers = append(mappers, g.Mapper)
		}
	}
	sort.Strings(mappers)
	wins = make([][]int, len(mappers))
	comp = make([][]int, len(mappers))
	for i := range mappers {
		wins[i] = make([]int, len(mappers))
		comp[i] = make([]int, len(mappers))
	}
	idx := map[string]int{}
	for i, m := range mappers {
		idx[m] = i
	}
	for _, byMapper := range best {
		for ma, a := range byMapper {
			for mb, bb := range byMapper {
				if ma == mb {
					continue
				}
				i, j := idx[ma], idx[mb]
				comp[i][j]++
				if (a.ok && !bb.ok) || (a.ok && bb.ok && a.ii < bb.ii) {
					wins[i][j]++
				}
			}
		}
	}
	return mappers, wins, comp
}

// winCell renders one matrix cell: "w/n" wins out of comparable combos,
// "-" on the diagonal or with nothing to compare.
func winCell(i, j int, wins, comp [][]int) string {
	if i == j || comp[i][j] == 0 {
		return fmt.Sprintf("%10s", "-")
	}
	return fmt.Sprintf("%10s", fmt.Sprintf("%d/%d", wins[i][j], comp[i][j]))
}
