package viz

import (
	"strings"
	"testing"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

func smallMapping(t *testing.T) *mapping.Mapping {
	t.Helper()
	g := dfg.New("tiny")
	ld := g.AddNode("ld", dfg.OpLoad)
	ad := g.AddNode("sum", dfg.OpAdd)
	st := g.AddNode("st", dfg.OpStore)
	g.AddEdge(ld, ad, 0)
	g.AddEdge(ad, st, 0)
	s := mapping.NewSession(mapping.New(g, arch.New4x4(2), 2))
	if err := s.PlaceNode(ld, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(ad, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(st, 4, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.RouteEdge(0, nil); err != nil {
		t.Fatal(err)
	}
	// ad (PE0@1) -> st (PE4@3): south link at t=2.
	if err := s.RouteEdge(1, []mrrg.Node{s.Graph.Link(0, arch.South, 2)}); err != nil {
		t.Fatal(err)
	}
	return s.M
}

func TestMappingGridShowsAllNodes(t *testing.T) {
	m := smallMapping(t)
	grid := MappingGrid(m)
	for _, want := range []string{"ld", "sum", "st", "cycle 0", "cycle 1", "II=2"} {
		if !strings.Contains(grid, want) {
			t.Fatalf("grid missing %q:\n%s", want, grid)
		}
	}
	// One grid block per cycle: rows = II * Rows + headers.
	if strings.Count(grid, "cycle ") != 2 {
		t.Fatalf("want 2 cycle blocks:\n%s", grid)
	}
}

func TestMappingGridSkipsUnplaced(t *testing.T) {
	m := smallMapping(t)
	m2 := m.Clone()
	m2.Routes[1] = nil
	m2.Routes[0] = nil
	m2.Place[2] = mapping.Unplaced
	m2.BankPorts[2] = mrrg.Invalid
	grid := MappingGrid(m2)
	if strings.Contains(grid, "st") {
		t.Fatalf("unplaced node rendered:\n%s", grid)
	}
}

func TestUtilisation(t *testing.T) {
	m := smallMapping(t)
	u, err := Utilisation(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fu", "link", "bank"} {
		if !strings.Contains(u, want) {
			t.Fatalf("utilisation missing %q:\n%s", want, u)
		}
	}
	// 3 placed ops of 32 FU slots.
	if !strings.Contains(u, "3/  32") {
		t.Fatalf("unexpected FU count:\n%s", u)
	}
}

func TestRouteTable(t *testing.T) {
	m := smallMapping(t)
	rt, err := RouteTable(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rt, "link(pe0,S)@0") && !strings.Contains(rt, "link(pe0,S)@") {
		t.Fatalf("route table missing link hop:\n%s", rt)
	}
	m2 := m.Clone()
	m2.Routes[1] = nil
	rt2, err := RouteTable(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rt2, "UNROUTED") {
		t.Fatalf("unrouted edge not flagged:\n%s", rt2)
	}
}

func TestMRRGDot(t *testing.T) {
	g := mrrg.New(arch.New("t", 2, 2, 1, 1, 0), 1)
	dot := MRRGDot(g)
	if !strings.HasPrefix(dot, "digraph mrrg") || !strings.Contains(dot, "fu(pe0)@0") {
		t.Fatalf("dot malformed:\n%.200s", dot)
	}
	if strings.Contains(dot, "bank(") {
		t.Fatal("bank ports should not be rendered")
	}
}
