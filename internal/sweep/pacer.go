package sweep

import (
	"context"
	"time"
)

// Pacer amortises deadline and cancellation polling in mapper inner
// loops. Checking time.Now() per candidate (PF*'s placement loop runs
// hundreds of candidates per remap) or per anneal move is measurable
// overhead; the Pacer performs the real check — context cancellation
// first, then the wall-clock deadline — only every Nth call and caches
// a positive answer forever. It is also where speculative-sweep
// cancellation lands in the hot loops: a cancelled attempt observes
// ctx.Done() within one check interval and unwinds within one
// remap/anneal/cluster iteration instead of draining its TimePerII
// budget.
//
// A Pacer is single-goroutine state, like the Router and the Session it
// paces. A nil *Pacer never expires, following the repo's nil-safe
// instrumentation idiom, so partially-constructed mapper state cannot
// trip on it.
type Pacer struct {
	ctx      context.Context
	deadline time.Time
	every    uint32
	calls    uint32
	expired  bool
}

// NewPacer builds a pacer that trips once deadline passes or ctx is
// cancelled, performing the real check every `every` calls to Expired.
// A nil ctx skips cancellation polling; a zero deadline never expires.
func NewPacer(ctx context.Context, deadline time.Time, every int) *Pacer {
	if every < 1 {
		every = 1
	}
	return &Pacer{ctx: ctx, deadline: deadline, every: uint32(every)}
}

// Expired reports whether the attempt should stop, performing the
// clock/context check only every Nth call. Once expired it stays
// expired (and costs one branch).
func (p *Pacer) Expired() bool {
	if p == nil {
		return false
	}
	if p.expired {
		return true
	}
	p.calls++
	if p.calls < p.every {
		return false
	}
	p.calls = 0
	return p.check()
}

// ExpiredNow performs the check immediately, for coarse loop boundaries
// (per remap, per restart, per cluster) where precision is worth one
// time.Now.
func (p *Pacer) ExpiredNow() bool {
	if p == nil {
		return false
	}
	if p.expired {
		return true
	}
	return p.check()
}

func (p *Pacer) check() bool {
	if p.ctx != nil && p.ctx.Err() != nil {
		p.expired = true
		return true
	}
	if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
		p.expired = true
		return true
	}
	return false
}
