// Package resultcache is a content-addressed cache of finished
// mappings: the result-level layer above the substrate caches (shared
// MRRG graphs, distance oracles). An entry is keyed by the canonical
// fingerprint triple of KeyFor — DFG fingerprint, architecture
// fingerprint, options fingerprint — so a hit turns a multi-second
// placement-and-routing run into a map lookup plus one deep copy.
//
// Isolation contract: the cache NEVER hands out a mapping it retains a
// reference to. Do and Get return a deep copy (mapping.Clone) of the
// stored entry, and the entry itself is a private deep copy of what the
// compile produced — mutating a returned Mapping's placements, routes
// or bank ports can never corrupt the cache, and mutating the mapping
// a compile returned can never corrupt later hits. The DFG and CGRA
// pointers inside a returned Mapping are shared with the compile that
// populated the entry (both are immutable after construction, the same
// ownership rule the MRRG cache relies on).
//
// Concurrency: all methods are safe for concurrent use, and Do
// collapses concurrent identical requests into a single compile
// (singleflight): one caller becomes the leader and runs the compute
// function, the rest wait and share the leader's result. A leader
// cancelled by its own context hands leadership to a surviving waiter
// instead of poisoning it with the spurious failure. Failed compiles
// (no valid mapping within budget) are shared with concurrent waiters
// but never stored: failure can be budget- and machine-dependent, so
// only successful mappings are content-addressable artifacts.
//
// A nil *Cache is the disabled cache, matching the repo's nil-safe
// observability idiom: Do degenerates to calling compute, Get always
// misses, Stats reads zero.
package resultcache

import (
	"container/list"
	"context"
	"sync"

	"rewire/internal/mapping"
	"rewire/internal/stats"
)

// DefaultCapacity bounds a cache built with New(0).
const DefaultCapacity = 512

// Cache is a bounded, LRU-evicting, singleflight-collapsing cache of
// finished mappings. Use New; the zero value is not ready.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*call

	hits, misses, evictions, shared int64
}

// entry is one cached result. m is the cache's private deep copy.
type entry struct {
	key string
	m   *mapping.Mapping
	res stats.Result
}

// call is one in-flight compile that concurrent identical requests
// wait on. Fields other than done are written by the leader before
// done is closed and read by waiters only after.
type call struct {
	done chan struct{}
	// stored is the cache-owned deep copy (nil when the compile failed).
	stored *mapping.Mapping
	res    stats.Result
	// canceled marks a leader torn down by its own context: waiters
	// must not adopt the spurious failure and instead retry, promoting
	// one of themselves to leader.
	canceled bool
}

// Outcome describes how a Do call was satisfied.
type Outcome struct {
	// Hit reports that the mapping came from the cache or from sharing
	// a concurrent identical compile — no compile ran for this caller.
	Hit bool
	// Shared reports that this caller waited on a concurrent identical
	// compile (the singleflight path) rather than reading a stored
	// entry.
	Shared bool
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits int64
	// Misses counts compiles the cache had to run (singleflight
	// leaders; waiters count under SingleflightShared, not Misses).
	Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// SingleflightShared counts requests that adopted a concurrent
	// identical compile's result instead of compiling.
	SingleflightShared int64
	// Entries and Capacity describe current occupancy.
	Entries  int
	Capacity int
}

// New returns an empty cache bounded to capacity entries (0 means
// DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*call),
	}
}

// Stats returns the current counters. Nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		SingleflightShared: c.shared,
		Entries:            c.lru.Len(), Capacity: c.capacity,
	}
}

// Len returns the number of stored entries. Nil-safe.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns a deep copy of the stored mapping for k, bumping its LRU
// position, or (nil, zero, false) on a miss. Nil-safe. Get does not
// join in-flight compiles; use Do for that.
func (c *Cache) Get(k Key) (*mapping.Mapping, stats.Result, bool) {
	if c == nil {
		return nil, stats.Result{}, false
	}
	key := k.String()
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, stats.Result{}, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	c.hits++
	c.mu.Unlock()
	return e.m.Clone(), e.res, true
}

// Put stores a deep copy of m under k (no-op for nil m or nil cache).
// Do is the normal write path; Put exists for pre-warming and tests.
func (c *Cache) Put(k Key, m *mapping.Mapping, res stats.Result) {
	if c == nil || m == nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(k.String(), m.Clone(), res)
	c.mu.Unlock()
}

// Do returns the cached mapping for k, or runs compute exactly once
// across all concurrent callers with the same key and shares the
// result. The returned mapping is always caller-owned (a deep copy on
// every hit; the compute function's own return value for the leader).
// compute reports failure by returning a nil mapping; failures are
// returned but never stored.
//
// ctx bounds only the wait on a concurrent identical compile — compute
// itself is expected to honour ctx internally (rewire.MapCtx does). A
// waiter whose ctx expires returns ctx.Err() with a nil mapping.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (*mapping.Mapping, stats.Result)) (*mapping.Mapping, stats.Result, Outcome, error) {
	if c == nil {
		m, res := compute()
		return m, res, Outcome{}, nil
	}
	key := k.String()
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*entry)
			c.hits++
			c.mu.Unlock()
			return e.m.Clone(), e.res, Outcome{Hit: true}, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, stats.Result{}, Outcome{}, ctx.Err()
			}
			if cl.canceled {
				// The leader was torn down by its own context; this
				// waiter is still alive, so retry — the next loop
				// iteration promotes it (or another waiter) to leader.
				continue
			}
			c.mu.Lock()
			c.shared++
			c.mu.Unlock()
			if cl.stored != nil {
				return cl.stored.Clone(), cl.res, Outcome{Hit: true, Shared: true}, nil
			}
			return nil, cl.res, Outcome{Shared: true}, nil
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.misses++
		c.mu.Unlock()

		m, res := compute()
		cl.res = res
		cl.canceled = m == nil && ctx.Err() != nil
		if m != nil {
			cl.stored = m.Clone()
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if cl.stored != nil {
			c.insertLocked(key, cl.stored, res)
		}
		c.mu.Unlock()
		close(cl.done)
		return m, res, Outcome{}, nil
	}
}

// insertLocked files a cache-owned mapping under key and enforces the
// capacity bound. Caller holds c.mu.
func (c *Cache) insertLocked(key string, m *mapping.Mapping, res stats.Result) {
	if el, ok := c.entries[key]; ok {
		// Refresh in place (a Put racing a Do, or repeated Puts).
		c.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.m, e.res = m, res
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, m: m, res: res})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.evictions++
	}
}
