package core

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/kernels"
)

// mapDigest maps one kernel and returns a digest of everything the
// mapper decided: success, II, the effort counters, and a hash over all
// placements and routes. Two runs of the same (kernel, seed) must
// produce equal digests no matter what state the scratch pools are in.
func mapDigest(t *testing.T, kernel string, seed int64) string {
	t.Helper()
	g := kernels.MustLoad(kernel)
	a := arch.New4x4(4)
	m, res := Map(g, a, Options{Seed: seed, TimePerII: time.Hour})
	h := sha256.New()
	if m != nil {
		for v, p := range m.Place {
			fmt.Fprintf(h, "%d:%d,%d;", v, p.PE, p.Time)
		}
		for eid, r := range m.Routes {
			fmt.Fprintf(h, "e%d:", eid)
			for _, n := range r {
				fmt.Fprintf(h, "%d,", n)
			}
		}
	}
	return fmt.Sprintf("ok=%v ii=%d amend=%d tried=%d verify=%d/%d exp=%d hash=%x",
		res.Success, res.II, res.ClusterAmendments, res.PlacementsTried,
		res.VerifySuccesses, res.VerifyAttempts, res.RouterExpansions, h.Sum(nil)[:8])
}

// TestDirtyPoolReuseDeterminism maps the same kernel before and after
// the scratch pools have been dirtied by unrelated runs. Every pooled
// buffer (amendScratch, propagations, flood scratch, MRRG state) is
// handed back full of stale data; if any consumer reads a recycled
// value before writing it, the second digest diverges.
func TestDirtyPoolReuseDeterminism(t *testing.T) {
	base := mapDigest(t, "mvt", 7)
	// Dirty the pools with differently-shaped work: another kernel and
	// another seed exercise different cluster sizes, propagation tables
	// and candidate counts, leaving maximally-foreign residue behind.
	mapDigest(t, "atax", 1)
	mapDigest(t, "gesummv", 42)
	if again := mapDigest(t, "mvt", 7); again != base {
		t.Fatalf("dirty-pool rerun diverged:\n  first: %s\n  again: %s", base, again)
	}
}

// TestConcurrentSessionsDeterministic hammers the pools from concurrent
// mapping sessions — kernels x seeds {1, 7, 42} all in flight at once —
// and requires every result to be bit-identical to its serial reference.
// Under -race this doubles as the data-race probe for the sync.Pool
// scratch sharing (CI runs this package with -race).
func TestConcurrentSessionsDeterministic(t *testing.T) {
	kernelNames := []string{"mvt", "atax"}
	seeds := []int64{1, 7, 42}

	type key struct {
		kernel string
		seed   int64
	}
	want := make(map[key]string)
	for _, k := range kernelNames {
		for _, s := range seeds {
			want[key{k, s}] = mapDigest(t, k, s)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make(map[key]string)
	for _, k := range kernelNames {
		for _, s := range seeds {
			wg.Add(1)
			go func(k string, s int64) {
				defer wg.Done()
				d := mapDigest(t, k, s)
				mu.Lock()
				got[key{k, s}] = d
				mu.Unlock()
			}(k, s)
		}
	}
	wg.Wait()

	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s seed=%d diverged under concurrency:\n  serial:     %s\n  concurrent: %s",
				k.kernel, k.seed, w, got[k])
		}
	}
}
