package interp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rewire/internal/dfg"
	"rewire/internal/kernelir"
)

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func mustDFG(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	prog, err := kernelir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := kernelir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		op   dfg.OpKind
		ops  []int64
		want int64
	}{
		{dfg.OpAdd, []int64{3, 4}, 7},
		{dfg.OpSub, []int64{3, 4}, -1},
		{dfg.OpMul, []int64{3, 4}, 12},
		{dfg.OpDiv, []int64{12, 4}, 3},
		{dfg.OpDiv, []int64{12, 0}, 0}, // guarded division
		{dfg.OpShl, []int64{1, 4}, 16},
		{dfg.OpShl, []int64{1, 64}, 1}, // shift masked to 6 bits
		{dfg.OpShr, []int64{-1, 60}, 15},
		{dfg.OpAnd, []int64{6, 3}, 2},
		{dfg.OpOr, []int64{6, 3}, 7},
		{dfg.OpXor, []int64{6, 3}, 5},
		{dfg.OpCmp, []int64{5, 3}, 1},
		{dfg.OpCmp, []int64{3, 5}, 0},
		{dfg.OpCmp, []int64{3, 3}, 0},
		{dfg.OpSelect, []int64{1, 10, 20}, 10},
		{dfg.OpSelect, []int64{0, 10, 20}, 20},
		{dfg.OpStore, []int64{42}, 42},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.ops); got != c.want {
			t.Errorf("Eval(%v, %v) = %d, want %d", c.op, c.ops, got, c.want)
		}
	}
}

func TestLoadAndImmDeterministic(t *testing.T) {
	if LoadValue("ld a[i]", 3) != LoadValue("ld a[i]", 3) {
		t.Fatal("LoadValue not deterministic")
	}
	if LoadValue("ld a[i]", 3) == LoadValue("ld b[i]", 3) {
		t.Fatal("different arrays should load different values")
	}
	if LoadValue("ld a[i]", 3) == LoadValue("ld a[i]", 4) {
		t.Fatal("different iterations should load different values")
	}
	if ImmValue("x", 0) == ImmValue("x", 1) {
		t.Fatal("different slots should give different immediates")
	}
}

func TestRunSimpleStream(t *testing.T) {
	// c[i] = a[i] + b[i]: the trace must be the element-wise sum of the
	// synthetic streams.
	g := mustDFG(t, "kernel k\nc[i] = a[i] + b[i]\n")
	tr, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var storeNode int
	for _, n := range g.Nodes {
		if n.Op == dfg.OpStore {
			storeNode = n.ID
		}
	}
	vals := tr.Stores[storeNode]
	if len(vals) != 4 {
		t.Fatalf("stores = %d, want 4", len(vals))
	}
	for i, v := range vals {
		want := LoadValue("ld a[i]", i) + LoadValue("ld b[i]", i)
		if v != want {
			t.Fatalf("iteration %d: %d, want %d", i, v, want)
		}
	}
}

func TestRunAccumulator(t *testing.T) {
	// s += a[i]; out[i] = s: running prefix sums.
	g := mustDFG(t, "kernel k\ns += a[i]\nout[i] = s\n")
	tr, err := Run(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	var storeNode int
	for _, n := range g.Nodes {
		if n.Op == dfg.OpStore {
			storeNode = n.ID
		}
	}
	var sum int64
	for i, v := range tr.Stores[storeNode] {
		sum += LoadValue("ld a[i]", i)
		if v != sum {
			t.Fatalf("iteration %d: %d, want prefix sum %d", i, v, sum)
		}
	}
}

func TestRunDelayedReadZeroFill(t *testing.T) {
	// out[i] = t + t@2: the first two iterations read zero-filled history.
	g := mustDFG(t, "kernel k\nt = a[i] + a[i]\nout[i] = t + t@2\n")
	tr, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var storeNode int
	for _, n := range g.Nodes {
		if n.Op == dfg.OpStore {
			storeNode = n.ID
		}
	}
	tv := func(i int) int64 { return 2 * LoadValue("ld a[i]", i) }
	want := []int64{tv(0), tv(1), tv(2) + tv(0), tv(3) + tv(1)}
	for i, v := range tr.Stores[storeNode] {
		if v != want[i] {
			t.Fatalf("iteration %d: %d, want %d", i, v, want[i])
		}
	}
}

func TestImmediateSlots(t *testing.T) {
	// t = a[i] * alpha: slot 1 is an immediate derived from the node name.
	g := mustDFG(t, "kernel k\nparam alpha\nout[i] = a[i] * alpha\n")
	tr, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mulName string
	var storeNode int
	for _, n := range g.Nodes {
		if n.Op == dfg.OpMul {
			mulName = n.Name
		}
		if n.Op == dfg.OpStore {
			storeNode = n.ID
		}
	}
	want := LoadValue("ld a[i]", 0) * ImmValue(mulName, 1)
	if tr.Stores[storeNode][0] != want {
		t.Fatalf("store = %d, want %d", tr.Stores[storeNode][0], want)
	}
}

func TestTraceEqual(t *testing.T) {
	a := &Trace{Stores: map[int][]int64{1: {10, 20}}}
	b := &Trace{Stores: map[int][]int64{1: {10, 20}}}
	if err := a.Equal(b); err != nil {
		t.Fatal(err)
	}
	b.Stores[1][1] = 21
	if err := a.Equal(b); err == nil || !strings.Contains(err.Error(), "iteration 1") {
		t.Fatalf("difference not localised: %v", err)
	}
	c := &Trace{Stores: map[int][]int64{2: {10, 20}}}
	if a.Equal(c) == nil {
		t.Fatal("different store nodes must differ")
	}
	d := &Trace{Stores: map[int][]int64{1: {10}}}
	if a.Equal(d) == nil {
		t.Fatal("different lengths must differ")
	}
}

func TestOperandsAssembly(t *testing.T) {
	g := dfg.New("t")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpSub)
	g.AddEdgeOp(a, b, 0, 1) // feed only slot 1
	ops := Operands(g, b, func(producer, dist int) int64 { return 100 })
	if len(ops) != 2 {
		t.Fatalf("len = %d", len(ops))
	}
	if ops[1] != 100 {
		t.Fatal("fed slot lost")
	}
	if ops[0] != ImmValue("b", 0) {
		t.Fatal("unfed slot must take the immediate")
	}
}

func TestArity(t *testing.T) {
	if Arity(dfg.OpSelect) != 3 || Arity(dfg.OpStore) != 1 || Arity(dfg.OpLoad) != 0 || Arity(dfg.OpMul) != 2 {
		t.Fatal("arity table wrong")
	}
}

// Property: the interpreter is deterministic and length-consistent on
// random DAGs.
func TestPropRunDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := randNew(seed)
		g := dfg.Random(rng, dfg.RandomConfig{Nodes: 2 + int(seed%17&15), EdgeProb: 0.2, MemFrac: 0.4, RecurProb: 0.2, MaxFanIn: 2})
		t1, err1 := Run(g, 5)
		t2, err2 := Run(g, 5)
		if err1 != nil || err2 != nil {
			return false
		}
		return t1.Equal(t2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
