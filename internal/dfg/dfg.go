// Package dfg defines the data-flow graph (DFG) representation of a
// compute-intensive loop kernel, together with the analyses the mappers
// need: topological ordering, ASAP/ALAP scheduling windows for a candidate
// initiation interval (II), and the recurrence- and resource-constrained
// minimum II bounds.
//
// A DFG node is one operation of the loop body; an edge is a data
// dependency. Edges carry an inter-iteration distance: distance 0 is a
// dependency within one iteration, distance d > 0 means the consumer reads
// the value produced d iterations earlier (a loop-carried dependency, e.g.
// an accumulator). Ignoring edges with distance > 0 the graph must be
// acyclic.
package dfg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// OpKind classifies the operation a DFG node performs. The mappers treat
// all ALU kinds identically; the only placement-relevant distinction is
// memory operations (Load/Store), which must run on memory-capable PEs and
// reserve a memory-bank port.
type OpKind int

// Operation kinds.
const (
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpDiv
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpCmp
	OpSelect
	OpConst
	OpLoad
	OpStore
	numOpKinds
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpCmp: "cmp", OpSelect: "select", OpConst: "const",
	OpLoad: "load", OpStore: "store",
}

// String returns the lower-case mnemonic of the operation kind.
func (k OpKind) String() string {
	if k >= 0 && int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// IsMem reports whether the operation accesses memory and therefore needs
// a memory-capable PE and a bank port.
func (k OpKind) IsMem() bool { return k == OpLoad || k == OpStore }

// IsMul reports whether the operation needs a multiplier unit.
func (k OpKind) IsMul() bool { return k == OpMul }

// IsDiv reports whether the operation needs a divider unit.
func (k OpKind) IsDiv() bool { return k == OpDiv }

// Node is one operation in the DFG.
type Node struct {
	// ID is the node's index in Graph.Nodes; assigned by AddNode.
	ID int
	// Name is a human-readable label ("t3", "load a[i]", ...).
	Name string
	// Op is the operation kind.
	Op OpKind
}

// Edge is a data dependency between two operations.
type Edge struct {
	// ID is the edge's index in Graph.Edges; assigned by AddEdge.
	ID int
	// From and To are node IDs: To consumes the value produced by From.
	From, To int
	// Dist is the inter-iteration distance: the consumer in iteration i
	// reads the value produced in iteration i-Dist.
	Dist int
	// Operand is the consumer's input slot this edge feeds (0-based).
	// Mapping ignores it; the functional interpreter and the simulator
	// need it for non-commutative operations. AddEdge assigns slots in
	// arrival order; AddEdgeOp sets one explicitly.
	Operand int
}

// Graph is a DFG. The zero value is an empty graph ready for use.
type Graph struct {
	// Name identifies the kernel this DFG was built from.
	Name string
	// Nodes and Edges are indexed by Node.ID / Edge.ID.
	Nodes []*Node
	Edges []*Edge

	outs [][]int // per node: out-edge IDs
	ins  [][]int // per node: in-edge IDs

	// Nodes and edges are stored in fixed-capacity chunks so each
	// AddNode/AddEdge amortises to 1/chunkSize allocations. A chunk is
	// never appended past its capacity, so the *Node/*Edge pointers in
	// Nodes/Edges stay stable for the life of the graph.
	nodeArena [][]Node
	edgeArena [][]Edge
	adjArena  []int // backing store for small outs/ins slices

	// frozen caches the derived adjacency (distinct parents/children per
	// node) and the topological order, both recomputed lazily whenever the
	// node or edge count has changed since the snapshot. Mappers query
	// Parents/Children/TopoOrder inside their hottest loops; once a graph
	// stops growing (after Validate at load time) every call hits this
	// snapshot. atomic.Pointer makes the cache safe under the concurrent
	// II-sweep goroutines that share one DFG: racing builders store
	// interchangeable snapshots.
	frozen atomic.Pointer[frozenAdj]
}

// frozenAdj is an immutable derived-topology snapshot of a Graph at a
// specific (node count, edge count).
type frozenAdj struct {
	numNodes, numEdges int
	parents, children  [][]int
	topo               []int
	topoErr            error
}

// snapshot returns the current derived-topology snapshot, rebuilding it
// if nodes or edges were added since the last one.
func (g *Graph) snapshot() *frozenAdj {
	if f := g.frozen.Load(); f != nil && f.numNodes == len(g.Nodes) && f.numEdges == len(g.Edges) {
		return f
	}
	f := &frozenAdj{numNodes: len(g.Nodes), numEdges: len(g.Edges)}
	f.parents = make([][]int, len(g.Nodes))
	f.children = make([][]int, len(g.Nodes))
	for v := range g.Nodes {
		f.parents[v] = g.distinctEnds(g.ins[v], func(e *Edge) int { return e.From })
		f.children[v] = g.distinctEnds(g.outs[v], func(e *Edge) int { return e.To })
	}
	f.topo, f.topoErr = g.topoOrder()
	g.frozen.Store(f)
	return f
}

// chunkSize is the node/edge arena granularity. Registry kernels run
// 13-44 nodes, so most graphs fit in one chunk per kind.
const chunkSize = 64

// New returns an empty named graph.
func New(name string) *Graph { return &Graph{Name: name} }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name string, op OpKind) int {
	id := len(g.Nodes)
	if g.Nodes == nil {
		// Pre-size the per-node slices to the arena granularity so the
		// common (sub-chunkSize) graph pays one allocation per slice
		// instead of a doubling-growth series.
		g.Nodes = make([]*Node, 0, chunkSize)
		g.outs = make([][]int, 0, chunkSize)
		g.ins = make([][]int, 0, chunkSize)
	}
	last := len(g.nodeArena) - 1
	if last < 0 || len(g.nodeArena[last]) == cap(g.nodeArena[last]) {
		g.nodeArena = append(g.nodeArena, make([]Node, 0, chunkSize))
		last++
	}
	chunk := &g.nodeArena[last]
	*chunk = append(*chunk, Node{ID: id, Name: name, Op: op})
	g.Nodes = append(g.Nodes, &(*chunk)[len(*chunk)-1])
	g.outs = append(g.outs, nil)
	g.ins = append(g.ins, nil)
	return id
}

// AddEdge appends a dependency edge with the given inter-iteration
// distance and returns its ID, assigning the consumer's next free operand
// slot. It panics on out-of-range node IDs or a negative distance;
// structural errors of that kind are programming bugs in the kernel
// definitions, not runtime conditions.
func (g *Graph) AddEdge(from, to, dist int) int {
	return g.AddEdgeOp(from, to, dist, len(g.ins[to]))
}

// AddEdgeOp is AddEdge with an explicit consumer operand slot.
func (g *Graph) AddEdgeOp(from, to, dist, operand int) int {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		panic(fmt.Sprintf("dfg: edge %d->%d out of range (have %d nodes)", from, to, len(g.Nodes)))
	}
	if dist < 0 {
		panic(fmt.Sprintf("dfg: negative edge distance %d", dist))
	}
	if operand < 0 {
		panic(fmt.Sprintf("dfg: negative operand slot %d", operand))
	}
	id := len(g.Edges)
	if g.Edges == nil {
		g.Edges = make([]*Edge, 0, chunkSize)
	}
	last := len(g.edgeArena) - 1
	if last < 0 || len(g.edgeArena[last]) == cap(g.edgeArena[last]) {
		g.edgeArena = append(g.edgeArena, make([]Edge, 0, chunkSize))
		last++
	}
	chunk := &g.edgeArena[last]
	*chunk = append(*chunk, Edge{ID: id, From: from, To: to, Dist: dist, Operand: operand})
	g.Edges = append(g.Edges, &(*chunk)[len(*chunk)-1])
	g.outs[from] = g.adjAppend(g.outs[from], id)
	g.ins[to] = g.adjAppend(g.ins[to], id)
	return id
}

// adjCap is the arena-carved capacity of a node's out/in edge-ID list.
// Registry nodes rarely exceed 4-degree; bigger lists spill to a normal
// heap-grown slice via append.
const adjCap = 4

// adjAppend appends an edge ID to an adjacency list, carving fresh lists
// out of a shared arena chunk. Carved lists are capacity-limited
// three-index subslices, so appending past adjCap copies out instead of
// overwriting a neighbouring list.
func (g *Graph) adjAppend(s []int, id int) []int {
	if s == nil {
		if cap(g.adjArena)-len(g.adjArena) < adjCap {
			g.adjArena = make([]int, 0, chunkSize*adjCap)
		}
		off := len(g.adjArena)
		g.adjArena = g.adjArena[:off+adjCap]
		s = g.adjArena[off : off : off+adjCap]
	}
	return append(s, id)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// OutEdges returns the IDs of edges leaving node v. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) OutEdges(v int) []int { return g.outs[v] }

// InEdges returns the IDs of edges entering node v. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) InEdges(v int) []int { return g.ins[v] }

// Parents returns the distinct IDs of nodes with an edge into v, in
// ascending order. The returned slice is owned by the graph's cached
// topology snapshot and must not be mutated or appended to.
func (g *Graph) Parents(v int) []int {
	return g.snapshot().parents[v]
}

// Children returns the distinct IDs of nodes with an edge from v, in
// ascending order. The returned slice is owned by the graph's cached
// topology snapshot and must not be mutated or appended to.
func (g *Graph) Children(v int) []int {
	return g.snapshot().children[v]
}

func (g *Graph) distinctEnds(edgeIDs []int, end func(*Edge) int) []int {
	seen := make(map[int]bool, len(edgeIDs))
	var out []int
	for _, eid := range edgeIDs {
		n := end(g.Edges[eid])
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// MemOps returns the number of Load/Store nodes.
func (g *Graph) MemOps() int {
	n := 0
	for _, v := range g.Nodes {
		if v.Op.IsMem() {
			n++
		}
	}
	return n
}

// TopoOrder returns the node IDs in a topological order of the
// distance-0 subgraph. It returns an error if the distance-0 edges form a
// cycle, which means the DFG is malformed (intra-iteration dependencies
// must be acyclic). The result is a fresh copy the caller may keep;
// hot paths that only iterate should use TopoOrderShared.
func (g *Graph) TopoOrder() ([]int, error) {
	order, err := g.TopoOrderShared()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(order))
	copy(out, order)
	return out, nil
}

// TopoOrderShared returns the cached topological order of the distance-0
// subgraph. The slice is owned by the graph's topology snapshot and must
// not be mutated.
func (g *Graph) TopoOrderShared() ([]int, error) {
	f := g.snapshot()
	return f.topo, f.topoErr
}

// topoOrder computes the order from scratch (see TopoOrder); snapshot
// caches its result.
func (g *Graph) topoOrder() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		if e.Dist == 0 {
			indeg[e.To]++
		}
	}
	// Process ready nodes in ascending ID order for determinism.
	var ready []int
	for v := range g.Nodes {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, len(g.Nodes))
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, eid := range g.outs[v] {
			e := g.Edges[eid]
			if e.Dist != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("dfg %q: distance-0 dependency cycle involving %d of %d nodes",
			g.Name, len(g.Nodes)-len(order), len(g.Nodes))
	}
	return order, nil
}

// Validate checks structural invariants: edge endpoints in range,
// non-negative distances, no self-loop with distance 0, and an acyclic
// distance-0 subgraph.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("dfg %q: edge %d endpoints %d->%d out of range", g.Name, e.ID, e.From, e.To)
		}
		if e.Dist < 0 {
			return fmt.Errorf("dfg %q: edge %d has negative distance %d", g.Name, e.ID, e.Dist)
		}
		if e.From == e.To && e.Dist == 0 {
			return fmt.Errorf("dfg %q: node %d has a distance-0 self loop", g.Name, e.From)
		}
	}
	// Cycle detection only: use the uncached order so validating a graph
	// mid-construction does not build (and then invalidate) the frozen
	// adjacency snapshot.
	return g.checkAcyclic()
}

// topoScratch recycles the working state of the acyclicity check across
// Validate calls; lowering validates every graph it builds, so the check
// runs once per kernel load.
type topoScratch struct{ indeg, ready, order []int }

var topoPool = sync.Pool{New: func() any { return new(topoScratch) }}

// checkAcyclic is topoOrder with pooled scratch and no retained order —
// the Validate hot path.
func (g *Graph) checkAcyclic() error {
	s := topoPool.Get().(*topoScratch)
	defer topoPool.Put(s)
	if cap(s.indeg) < len(g.Nodes) {
		s.indeg = make([]int, len(g.Nodes))
	}
	indeg := s.indeg[:len(g.Nodes)]
	clear(indeg)
	for _, e := range g.Edges {
		if e.Dist == 0 {
			indeg[e.To]++
		}
	}
	ready := s.ready[:0]
	for v := range g.Nodes {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	// Index-walk instead of pop-front so the backing array survives for
	// the next pooled use; sorting the unprocessed tail each round keeps
	// the visit order identical to topoOrder.
	head := 0
	for head < len(ready) {
		sort.Ints(ready[head:])
		v := ready[head]
		head++
		for _, eid := range g.outs[v] {
			e := g.Edges[eid]
			if e.Dist != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	s.ready = ready
	if head != len(g.Nodes) {
		return fmt.Errorf("dfg %q: distance-0 dependency cycle involving %d of %d nodes",
			g.Name, len(g.Nodes)-head, len(g.Nodes))
	}
	return nil
}

// Stats summarises the DFG for reports.
func (g *Graph) Stats() string {
	mem := g.MemOps()
	rec := 0
	for _, e := range g.Edges {
		if e.Dist > 0 {
			rec++
		}
	}
	return fmt.Sprintf("%s: %d nodes (%d mem), %d edges (%d loop-carried)",
		g.Name, len(g.Nodes), mem, len(g.Edges), rec)
}

// DOT renders the DFG in Graphviz dot syntax. Loop-carried edges are
// dashed and labelled with their distance.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n")
	for _, v := range g.Nodes {
		shape := "ellipse"
		if v.Op.IsMem() {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", v.ID, fmt.Sprintf("%s\\n%s", v.Name, v.Op), shape)
	}
	for _, e := range g.Edges {
		if e.Dist > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed label=\"d=%d\"];\n", e.From, e.To, e.Dist)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, v := range g.Nodes {
		c.AddNode(v.Name, v.Op)
	}
	for _, e := range g.Edges {
		c.AddEdgeOp(e.From, e.To, e.Dist, e.Operand)
	}
	return c
}
