package kernelir

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokComma    // ,
	tokAssign   // =
	tokAccum    // +=
	tokAt       // @
	tokOp       // + - * / & | ^ << >>
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokAccum:
		return "'+='"
	case tokAt:
		return "'@'"
	case tokOp:
		return "operator"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
}

// lex splits source text into tokens. Comments run from '#' to end of
// line. Newlines are significant (statement separators) and consecutive
// blank lines collapse into one tokNewline.
func lex(src string) ([]token, error) { return lexInto(nil, src) }

// lexInto is lex appending into a caller-provided buffer, so Parse can
// recycle the token slice across calls (tokens are never retained past
// the parse: AST strings are substrings of src, not of the tokens).
func lexInto(toks []token, src string) ([]token, error) {
	line := 1
	emit := func(k tokKind, text string) {
		// Collapse consecutive newlines.
		if k == tokNewline && (len(toks) == 0 || toks[len(toks)-1].kind == tokNewline) {
			return
		}
		toks = append(toks, token{kind: k, text: text, line: line})
	}
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\n':
			emit(tokNewline, "\n")
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			emit(tokNumber, src[i:j])
			i = j
		case c == '[':
			emit(tokLBracket, "[")
			i++
		case c == ']':
			emit(tokRBracket, "]")
			i++
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '@':
			emit(tokAt, "@")
			i++
		case c == '=':
			emit(tokAssign, "=")
			i++
		case c == '+':
			if i+1 < n && src[i+1] == '=' {
				emit(tokAccum, "+=")
				i += 2
			} else {
				emit(tokOp, "+")
				i++
			}
		case strings.ContainsRune("-*/&|^", rune(c)):
			emit(tokOp, string(c))
			i++
		case c == '<' || c == '>':
			if i+1 < n && src[i+1] == c {
				emit(tokOp, src[i:i+2])
				i += 2
			} else {
				return nil, fmt.Errorf("line %d: unexpected character %q (only << and >> shifts supported)", line, c)
			}
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	emit(tokNewline, "\n")
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
