// Command tracecheck validates trace files emitted by the mapping
// pipeline: Chrome trace_event documents (*.trace.json, the format
// Perfetto and chrome://tracing load) and structured JSONL traces
// (*.jsonl). CI runs it over a small traced mapping so a malformed
// exporter fails the build rather than the first person opening a trace.
//
// Usage:
//
//	tracecheck file.trace.json file.jsonl ...
//
// The format is picked per file by suffix (.jsonl vs anything else =
// Chrome). Exit status is non-zero if any file is invalid.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace files...>")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		var err error
		if strings.HasSuffix(path, ".jsonl") {
			err = checkJSONL(path)
		} else {
			err = checkChrome(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("tracecheck: %s ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// checkChrome verifies a Chrome trace_event JSON object: it parses, has
// events, and contains at least one complete ("X") span with a name and
// non-negative duration.
func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "" {
			return fmt.Errorf("complete event with empty name at ts=%v", ev.Ts)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("span %q has negative duration %v", ev.Name, ev.Dur)
		}
		spans++
	}
	if spans == 0 {
		return fmt.Errorf("no complete (ph=X) span events")
	}
	fmt.Printf("tracecheck: %s: %d events, %d spans\n", path, len(doc.TraceEvents), spans)
	return nil
}

// checkJSONL verifies a structured JSONL trace: every line is valid
// JSON, the first line is the rewire-trace-v1 meta record, and at least
// one span line follows.
func checkJSONL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, spans := 0, 0
	for sc.Scan() {
		line++
		var rec struct {
			Type   string `json:"type"`
			Format string `json:"format"`
			Name   string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		if line == 1 {
			if rec.Type != "meta" || rec.Format != "rewire-trace-v1" {
				return fmt.Errorf("line 1 is not a rewire-trace-v1 meta record")
			}
			continue
		}
		if rec.Type == "span" {
			if rec.Name == "" {
				return fmt.Errorf("line %d: span without a name", line)
			}
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("empty file")
	}
	if spans == 0 {
		return fmt.Errorf("no span records")
	}
	fmt.Printf("tracecheck: %s: %d lines, %d spans\n", path, line, spans)
	return nil
}
