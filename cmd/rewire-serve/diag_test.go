package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rewire"
)

// failingMapBody is a mapping request that reliably fails fast: a hard
// kernel on a register-starved fabric, capped at an II it cannot reach
// under a small budget. The post-mortem of exactly this kind of run is
// what the diagnostics surface exists for.
const failingMapBody = `{"kernel":"gramsch","arch":"4x4r1","mapper":"pathfinder","seed":1,"max_ii":4,"time_per_ii_ms":300}`

// submitJob posts to /map/submit and returns the parsed 202 answer.
func submitJob(t *testing.T, ts string, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts+"/map/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// pollResult polls /map/result/{id} until the job completes.
func pollResult(t *testing.T, ts string, sub submitResponse) mapResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts + sub.ResultURL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var out mapResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return out
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll = %d, want 200 or 202", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFailedJobResultCarriesReport is the failure-diagnostics
// regression test: a failed async job's result body must include the
// post-mortem summary — outcome, the IIs that were attempted, and at
// least one contested resource with its contenders — plus a report URL
// that serves the full document as valid schema-tagged JSON and HTML.
func TestFailedJobResultCarriesReport(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, FlightSize: 8})
	sub := submitJob(t, ts.URL, failingMapBody)
	out := pollResult(t, ts.URL, sub)
	if out.Success {
		t.Skip("gramsch unexpectedly mapped; cannot exercise the failure report")
	}
	if out.Error == "" {
		t.Fatalf("failed job has no error: %+v", out)
	}
	if out.Report == nil {
		t.Fatal("failed job's result body carries no report summary")
	}
	if out.Report.Outcome != "failed" || len(out.Report.IIsAttempted) == 0 {
		t.Fatalf("report summary = %+v, want failed with attempted IIs", out.Report)
	}
	if len(out.Report.TopContested) == 0 {
		t.Fatal("report summary names no contested resources")
	}
	if out.ReportURL == "" {
		t.Fatal("result body has no report_url")
	}

	// The full report downloads as valid JSON under the v1 schema.
	body, code := get(t, ts.URL+out.ReportURL)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d", out.ReportURL, code)
	}
	var report rewire.DiagReport
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != "rewire-report-v1" || report.Success {
		t.Fatalf("report schema=%q success=%v, want failed rewire-report-v1", report.Schema, report.Success)
	}
	if len(report.Contested) == 0 {
		t.Fatal("full report names no contested resources")
	}

	// The HTML rendering serves too.
	htmlBody, code := get(t, ts.URL+out.ReportURL+".html")
	if code != http.StatusOK || !strings.Contains(htmlBody, "<!DOCTYPE html>") {
		t.Fatalf("GET %s.html = %d, body %.60q", out.ReportURL, code, htmlBody)
	}

	// Unknown run: 404.
	if _, code := get(t, ts.URL+"/runs/doesnotexist/report"); code != http.StatusNotFound {
		t.Fatalf("missing report = %d, want 404", code)
	}

	// The diag metrics moved.
	mBody, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`rewire_diag_reports_total{outcome="failed"} 1`,
		"rewire_diag_contested_resources_units_bucket",
		"rewire_map_progress_events_total",
	} {
		if !strings.Contains(mBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id, event, data string
}

// readSSE consumes an SSE stream until the terminal "end" event or EOF,
// returning the frames.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			if cur.event == "end" {
				return out
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	return out
}

// TestEventsStreamsProgress: an async job's SSE stream delivers at
// least one progress event before the terminal frame, in publish
// order, and works for late subscribers via the retained replay.
func TestEventsStreamsProgress(t *testing.T) {
	ts := testServer(t, serverConfig{Workers: 2, FlightSize: 8})
	sub := submitJob(t, ts.URL, `{"kernel":"mvt","arch":"4x4r4","seed":1,"time_per_ii_ms":2000}`)
	if sub.EventsURL == "" {
		t.Fatal("submit answer has no events_url")
	}

	// Subscribe while the job runs (or just after — replay covers both).
	resp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", sub.EventsURL, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	evs := readSSE(t, resp)
	if len(evs) < 2 {
		t.Fatalf("stream delivered %d frames, want progress plus terminal", len(evs))
	}
	if evs[0].event != "run_start" {
		t.Fatalf("first frame = %q, want run_start", evs[0].event)
	}
	if evs[len(evs)-1].event != "end" {
		t.Fatalf("last frame = %q, want end", evs[len(evs)-1].event)
	}
	sawRunEnd := false
	for _, ev := range evs {
		if ev.event == "run_end" {
			sawRunEnd = true
		}
		if ev.event != "end" {
			var parsed rewire.ProgressEvent
			if err := json.Unmarshal([]byte(ev.data), &parsed); err != nil {
				t.Fatalf("frame %q data is not JSON: %v", ev.event, err)
			}
		}
	}
	if !sawRunEnd {
		t.Fatal("stream ended without a run_end event")
	}

	// The job result is intact alongside the stream.
	out := pollResult(t, ts.URL, sub)
	if !out.Success {
		t.Fatalf("job failed: %+v", out)
	}

	// A second (late) subscriber replays the retained events and ends.
	resp2, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	evs2 := readSSE(t, resp2)
	if len(evs2) < 2 || evs2[len(evs2)-1].event != "end" {
		t.Fatalf("late subscriber got %d frames, want full replay plus end", len(evs2))
	}

	// Unknown job: 404.
	r404, err := http.Get(ts.URL + "/map/events/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", r404.StatusCode)
	}

	// Published events landed on the counter once the job completed.
	mBody, _ := get(t, ts.URL+"/metrics")
	if strings.Contains(mBody, "rewire_map_progress_events_total 0") {
		t.Error("rewire_map_progress_events_total never moved")
	}
}
