package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rewire/internal/diag"
)

func entry(kernel, mapper string, ii int) Entry {
	return Entry{
		Source: "test", Kernel: kernel, Arch: "4x4r4", Mapper: mapper,
		Success: ii > 0, II: ii, MII: 2, CompileMS: 12.5,
		DFGFP: "aaaaaaaaaaaaaaaa", ArchFP: "bbbbbbbbbbbbbbbb", OptsFP: "cccccccccccccccc",
	}
}

// A file-backed ledger must round-trip: meta line first, then every
// appended run, readable by both ReadFile and ReadSnapshot.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry("mvt", "Rewire", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry("atax", "PF*", 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	es, meta, err := ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != FormatID {
		t.Errorf("meta format %q, want %q", meta.Format, FormatID)
	}
	if len(es) != 2 {
		t.Fatalf("read %d entries, want 2", len(es))
	}
	if es[0].Kernel != "mvt" || es[0].II != 3 || !es[0].Success {
		t.Errorf("entry 0 mangled: %+v", es[0])
	}
	// Mapper aliases are canonicalised on append.
	if es[0].Mapper != "rewire" || es[1].Mapper != "pathfinder" {
		t.Errorf("mappers not normalised: %q, %q", es[0].Mapper, es[1].Mapper)
	}
	if es[0].TSMS == 0 || es[1].TSMS < es[0].TSMS {
		t.Errorf("timestamps not stamped monotonically: %d, %d", es[0].TSMS, es[1].TSMS)
	}
	if es[0].Build.GoVersion == "" {
		t.Error("build info not stamped")
	}

	snap, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Errorf("snapshot read %d entries, want 2", len(snap))
	}
}

// Reopening an existing ledger must not write a second meta line, and
// must reload the previous entries into the in-memory mirror.
func TestReopenNoDuplicateMeta(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(entry("mvt", "rewire", 3))
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Entries()); got != 1 {
		t.Errorf("mirror holds %d entries after reopen, want 1", got)
	}
	l2.Append(entry("mvt", "rewire", 4))
	l2.Close()

	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	metas := strings.Count(string(data), `"type":"meta"`)
	if metas != 1 {
		t.Errorf("file has %d meta lines after reopen, want 1", metas)
	}
	es, _, err := ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Errorf("file has %d entries, want 2", len(es))
	}
}

// Concurrent appenders must never interleave bytes: every line of the
// resulting file must parse as exactly one JSON record. Run under
// -race this also proves the mutex discipline.
func TestConcurrentAppendsNoInterleave(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := entry(fmt.Sprintf("k%d", w), "rewire", 3)
				e.Seed = int64(i)
				if err := l.Append(e); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()

	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines, prevTS := 0, int64(0)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON (interleaved write?): %v\n%s", lines, err, sc.Text())
		}
		if m["type"] == "run" {
			ts := int64(m["ts_ms"].(float64))
			if ts < prevTS {
				t.Errorf("line %d: ts_ms %d < previous %d", lines, ts, prevTS)
			}
			prevTS = ts
		}
	}
	if want := 1 + writers*perWriter; lines != want {
		t.Errorf("file has %d lines, want %d", lines, want)
	}
}

// The nil ledger is the disabled ledger: every method must no-op.
func TestNilSafe(t *testing.T) {
	var l *Ledger
	if err := l.Append(entry("mvt", "rewire", 3)); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if es := l.Entries(); es != nil {
		t.Errorf("nil Entries = %v", es)
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if p := l.Path(); p != "" {
		t.Errorf("nil Path = %q", p)
	}
}

// A memory ledger keeps entries without a backing file.
func TestMemoryLedger(t *testing.T) {
	l := NewMemory()
	l.Append(entry("mvt", "rewire", 3))
	l.Append(entry("mvt", "rewire", 4))
	if got := len(l.Entries()); got != 2 {
		t.Errorf("memory ledger holds %d entries, want 2", got)
	}
	if l.Path() != "" {
		t.Errorf("memory ledger has path %q", l.Path())
	}
	if err := l.Close(); err != nil {
		t.Errorf("memory Close: %v", err)
	}
}

// Read must reject streams without the meta line, with a wrong format,
// and with malformed JSON.
func TestReadRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"no meta":      `{"type":"run","kernel":"mvt"}` + "\n",
		"wrong format": `{"type":"meta","format":"rewire-trace-v1"}` + "\n",
		"bad json":     `{"type":"meta","format":"rewire-ledger-v1"}` + "\n" + `{"type":"run",` + "\n",
		"empty":        "",
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted bad stream", name)
		}
	}
}

// ReadSnapshot over a directory must merge every *.jsonl and sort by
// timestamp.
func TestReadSnapshotDirMerge(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ts ...int64) {
		var b strings.Builder
		meta, _ := json.Marshal(Meta{Type: "meta", Format: FormatID})
		b.Write(meta)
		b.WriteByte('\n')
		for _, t := range ts {
			e := entry("mvt", "rewire", 3)
			e.Type = "run"
			e.TSMS = t
			line, _ := json.Marshal(e)
			b.Write(line)
			b.WriteByte('\n')
		}
		os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
	}
	write("a.jsonl", 30, 40)
	write("b.jsonl", 10, 20)

	es, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 4 {
		t.Fatalf("merged %d entries, want 4", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].TSMS < es[i-1].TSMS {
			t.Errorf("entries not sorted by ts: %d after %d", es[i].TSMS, es[i-1].TSMS)
		}
	}
}

// Aggregate groups by (kernel, arch, mapper), tracks best II, success
// rate and non-cached compile times, and sorts deterministically.
func TestAggregate(t *testing.T) {
	es := []Entry{
		entry("mvt", "rewire", 4),
		entry("mvt", "rewire", 3),
		entry("mvt", "rewire", 0),
		entry("atax", "pathfinder", 5),
	}
	es[1].CompileMS = 20
	es[2].Cached = true
	groups := Aggregate(es)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// Sorted by kernel: atax first.
	if groups[0].Kernel != "atax" || groups[1].Kernel != "mvt" {
		t.Errorf("groups not sorted: %q, %q", groups[0].Kernel, groups[1].Kernel)
	}
	g := groups[1]
	if g.Runs != 3 || g.Successes != 2 || g.BestII != 3 || g.MII != 2 {
		t.Errorf("mvt group wrong: %+v", g)
	}
	if got := g.SuccessRate(); got < 0.66 || got > 0.67 {
		t.Errorf("success rate = %v, want 2/3", got)
	}
	// The cached run's compile time is excluded.
	if len(g.CompileMS) != 2 {
		t.Errorf("compile times include cached run: %v", g.CompileMS)
	}
	if got := len(g.IIs); got != 2 {
		t.Errorf("II series has %d points, want 2", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

// AttachReport distils the diag post-mortem into the summary counters.
func TestAttachReport(t *testing.T) {
	r := &diag.Report{
		Attempts: []diag.AttemptReport{
			{II: 3, Rounds: 4}, {II: 4, Rounds: 6},
		},
		Contested:  []diag.ResourceReport{{Resource: "link(3,S)@t2"}},
		Unroutable: []diag.EdgeReport{{Edge: 1}, {Edge: 2}},
	}
	var e Entry
	e.AttachReport(r)
	if e.Attempts != 2 || e.Rounds != 10 || e.Contested != 1 || e.Unroutable != 2 {
		t.Errorf("summary wrong: %+v", e)
	}
	var clean Entry
	clean.AttachReport(nil)
	if clean.Attempts != 0 {
		t.Error("nil report mutated entry")
	}
}
