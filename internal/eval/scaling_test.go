package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLoadUnrolled(t *testing.T) {
	base := loadUnrolled("fir5", 1)
	big := loadUnrolled("fir5", 2)
	if big.NumNodes() <= base.NumNodes() {
		t.Fatalf("unrolled %d <= base %d", big.NumNodes(), base.NumNodes())
	}
	if big.Name != "fir5*2" {
		t.Fatalf("name = %q", big.Name)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	// Registry variants with built-in unrolling compose: dither(u) is
	// already 2-unrolled, extra 2 gives factor 4.
	quad := loadUnrolled("dither(u)", 2)
	if quad.NumNodes() <= loadUnrolled("dither(u)", 1).NumNodes() {
		t.Fatal("composed unroll did not grow")
	}
}

func TestScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study is slow")
	}
	var buf bytes.Buffer
	// Tiny budget: the table must render even when some cells fail.
	Scaling(Config{Seed: 1, TimePerII: 300 * time.Millisecond, MaxII: 10, Out: &buf}, &buf)
	out := buf.String()
	for _, want := range []string{"Scaling", "4x4r4", "10x10r4", "susan", "sobel x3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scaling output missing %q:\n%s", want, out)
		}
	}
}
