package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/route"
	"rewire/internal/stats"
	"rewire/internal/sweep"
)

// fixture builds an amender over an empty mapping at the given II with a
// few pre-placed anchor nodes.
type fixture struct {
	g    *dfg.Graph
	am   *amender
	sess *mapping.Session
}

// testCluster builds a cluster over numNodes DFG nodes from an explicit
// member list.
func testCluster(numNodes int, members ...int) *cluster {
	u := &cluster{}
	u.reset(numNodes)
	for _, v := range members {
		u.add(v)
	}
	return u
}

// diamondFixture: a -> {b, c} -> d, with a and d placed, b and c ill.
func diamondFixture(t *testing.T, ii int) *fixture {
	t.Helper()
	g := dfg.New("diamond")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	c := g.AddNode("c", dfg.OpMul)
	d := g.AddNode("d", dfg.OpAdd)
	g.AddEdge(a, b, 0)
	g.AddEdge(a, c, 0)
	g.AddEdge(b, d, 0)
	g.AddEdge(c, d, 0)
	m := mapping.New(g, arch.New4x4(2), ii)
	sess := mapping.NewSession(m)
	if err := sess.PlaceNode(a, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.PlaceNode(d, 6, 4); err != nil {
		t.Fatal(err)
	}
	res := &stats.Result{}
	am := &amender{
		g:      g,
		sess:   sess,
		router: route.ForSession(sess),
		rng:    rand.New(rand.NewSource(1)),
		res:    res,
		opt:    Options{}.withDefaults(),
	}
	return &fixture{g: g, am: am, sess: sess}
}

func TestPropagationTuplesForward(t *testing.T) {
	f := diamondFixture(t, 3)
	p := f.am.propagate(0, true, 6) // forward from node a at PE5@0
	// The seed tuple: a consumer on PE 5 one cycle later.
	if _, ok := p.hasCycle(5, 1); !ok {
		t.Fatal("missing seed tuple (own PE, 1 cycle)")
	}
	// East neighbour PE 6 reachable with 2 cycles (one link hop).
	if _, ok := p.hasCycle(6, 2); !ok {
		t.Fatal("missing adjacent tuple (PE6, 2 cycles)")
	}
	// Far corner PE 15: Manhattan 4 from PE5 -> at least 5 cycles.
	if _, ok := p.hasCycle(15, 3); ok {
		t.Fatal("impossible tuple at distant PE")
	}
	if _, ok := p.hasCycle(15, 5); !ok {
		t.Fatal("distant PE unreachable within rounds")
	}
}

func TestPropagationTuplesBackward(t *testing.T) {
	f := diamondFixture(t, 3)
	p := f.am.propagate(3, false, 6) // backward from node d at PE6@4
	// A producer on PE 6 one cycle earlier.
	if _, ok := p.hasCycle(6, 1); !ok {
		t.Fatal("missing backward seed tuple")
	}
	// West neighbour PE 5 with 2 cycles.
	if _, ok := p.hasCycle(5, 2); !ok {
		t.Fatal("missing backward adjacent tuple")
	}
}

func TestPropagationRespectsOccupancy(t *testing.T) {
	f := diamondFixture(t, 3)
	// Block every resource around PE 5 except the FU itself: occupy its
	// four links and both registers at all time slots with a foreign net.
	gph := f.sess.Graph
	for tt := 0; tt < 3; tt++ {
		for d := arch.Dir(0); d < arch.NumDirs; d++ {
			ln := gph.Link(5, d, tt)
			if gph.Valid(ln) {
				if err := f.sess.State.Reserve(ln, 99, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		for r := 0; r < 2; r++ {
			if err := f.sess.State.Reserve(gph.Reg(5, r, tt), 99, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	p := f.am.propagate(0, true, 6)
	// Only same-PE forwarding remains: the FU chain of PE 5.
	if _, ok := p.hasCycle(6, 2); ok {
		t.Fatal("probe escaped through blocked links")
	}
	if _, ok := p.hasCycle(5, 1); !ok {
		t.Fatal("FU forwarding chain should survive")
	}
}

func TestExtractPathMatchesRouteRules(t *testing.T) {
	f := diamondFixture(t, 3)
	p := f.am.propagate(0, true, 6)
	// Route a->b with latency 2 to PE 6 using the probe path.
	ar, ok := p.hasCycle(6, 2)
	if !ok {
		t.Fatal("no tuple")
	}
	path := p.extractPath(ar, 2)
	if err := f.sess.PlaceNode(1, 6, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.sess.RouteEdge(0, path); err != nil {
		t.Fatalf("probe path rejected: %v", err)
	}
}

func TestExtractPathBackward(t *testing.T) {
	f := diamondFixture(t, 3)
	p := f.am.propagate(3, false, 6)
	ar, ok := p.hasCycle(5, 2) // producer on PE5, 2 cycles before d
	if !ok {
		t.Fatal("no tuple")
	}
	path := p.extractPath(ar, 2)
	// Place node b on PE5 at time 2 (d executes at 4) and route b->d.
	if err := f.sess.PlaceNode(1, 5, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.sess.RouteEdge(2, path); err != nil {
		t.Fatalf("backward probe path rejected: %v", err)
	}
}

func TestIntersectionRequiresAllSources(t *testing.T) {
	f := diamondFixture(t, 3)
	u := testCluster(f.g.NumNodes(), 1, 2)
	u.refreshOrder(f.am)
	props := f.am.propagateAll(u)
	cands := f.am.intersect(u, props)
	// Every candidate of b must be reachable from a AND reach d with
	// consistent timing: T in (0, 4), i.e. latency from a >= 1 and to d
	// >= 1.
	for _, c := range cands[1] {
		if c.T <= 0 || c.T >= 4 {
			t.Fatalf("candidate %v violates anchor timing", c)
		}
		// Feasibility against both anchors (necessary conditions).
		if lat := c.T - 0; lat < f.g.NumNodes()/f.g.NumNodes() { // >= 1
			t.Fatalf("bad latency %d", lat)
		}
	}
	if len(cands[1]) == 0 || len(cands[2]) == 0 {
		t.Fatal("open fabric should give candidates for both ill nodes")
	}
}

func TestMapClusterRepairsDiamond(t *testing.T) {
	f := diamondFixture(t, 3)
	ill := f.sess.IllMapped()
	if len(ill) != 2 {
		t.Fatalf("ill = %v, want b and c", ill)
	}
	// b and c are not DFG-adjacent, so they amend as separate clusters;
	// amend drives the cluster loop to completion.
	f.am.pace = sweep.NewPacer(context.Background(), time.Now().Add(5*time.Second), paceEvery)
	if !f.am.amend() {
		t.Fatal("amendment failed on an open fabric")
	}
	if len(f.am.sess.IllMapped()) != 0 {
		t.Fatalf("still ill: %v", f.am.sess.IllMapped())
	}
	if err := mapping.Validate(f.am.sess.M); err != nil {
		t.Fatal(err)
	}
}

func TestGrowClusterAbsorbsNearest(t *testing.T) {
	f := diamondFixture(t, 3)
	u := testCluster(f.g.NumNodes(), 1)
	u.refreshOrder(f.am)
	if !f.am.growCluster(u) {
		t.Fatal("growth failed")
	}
	if u.size != 2 {
		t.Fatalf("cluster size = %d", u.size)
	}
	// The absorbed node is a DFG neighbour of b (a or d), and if it was
	// placed it must now be ripped.
	for v := range u.in {
		if !u.in[v] {
			continue
		}
		if v != 1 && v != 0 && v != 3 {
			t.Fatalf("absorbed non-neighbour %d", v)
		}
		if f.sess.M.Placed(v) {
			t.Fatalf("absorbed node %d still placed", v)
		}
	}
}

func TestRoundsHeuristics(t *testing.T) {
	f := diamondFixture(t, 3)
	u := testCluster(f.g.NumNodes(), 1, 2)
	u.refreshOrder(f.am)
	// Anchored: parents {a@0}, children {d@4} -> base 4, x3 = 12.
	r := f.am.rounds(u, []int{0}, []int{3})
	if r != 12 {
		t.Fatalf("anchored rounds = %d, want 12", r)
	}
	// Unanchored: longest path within U (b,c disconnected) = 0 -> base 1,
	// x5 = 5, floored at II+2.
	r = f.am.rounds(u, nil, []int{3})
	if r != 5 {
		t.Fatalf("half-anchored rounds = %d, want 5", r)
	}
}

func TestMapKernelEndToEnd(t *testing.T) {
	g := kernels.MustLoad("mvt")
	m, res := Map(g, arch.New4x4(4), Options{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil || !res.Success {
		t.Fatalf("failed: %v", res)
	}
	if err := mapping.Validate(m); err != nil {
		t.Fatal(err)
	}
	if res.II < res.MII {
		t.Fatalf("II %d below MII %d", res.II, res.MII)
	}
}

func TestAmendmentOnlyTouchesIllRegions(t *testing.T) {
	// Build a PF* initial mapping, remember the healthy placements, amend,
	// and check Rewire produced a valid mapping that kept II.
	g := kernels.MustLoad("gesummv")
	a := arch.New4x4(4)
	mii := g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts())
	res := stats.Result{}
	sess, router := pathfinder.BuildInitial(mapping.New(g, a, mii+1), 5, &res)
	am := &amender{
		g: g, sess: sess, router: router,
		rng: rand.New(rand.NewSource(5)), res: &res,
		opt:  Options{}.withDefaults(),
		pace: sweep.NewPacer(context.Background(), time.Now().Add(5*time.Second), paceEvery),
	}
	if !am.amend() {
		t.Skip("amendment did not converge at MII+1 with this seed")
	}
	if err := mapping.Validate(am.sess.M); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCountersTrackAttempts(t *testing.T) {
	g := kernels.MustLoad("lu")
	_, res := Map(g, arch.New4x4(4), Options{Seed: 2, TimePerII: 2 * time.Second})
	if !res.Success {
		t.Skip("no mapping in budget")
	}
	if res.VerifyAttempts == 0 || res.VerifySuccesses == 0 {
		t.Fatalf("verification counters empty: %+v", res)
	}
	if res.VerifySuccesses > res.VerifyAttempts {
		t.Fatal("successes exceed attempts")
	}
}

func TestBackwardKeyDistinct(t *testing.T) {
	for _, s := range []int{0, 1, 7, 100} {
		if backwardKey(s) == s || backwardKey(s) >= 0 {
			t.Fatalf("backwardKey(%d) = %d must be a distinct negative", s, backwardKey(s))
		}
	}
}

func TestPropOfSelectsDirection(t *testing.T) {
	props := map[int]*propagation{
		2:              {source: 2, forward: true},
		backwardKey(2): {source: 2, forward: false},
	}
	if p := propOf(props, 2, true); p == nil || !p.forward {
		t.Fatal("forward lookup failed")
	}
	if p := propOf(props, 2, false); p == nil || p.forward {
		t.Fatal("backward lookup failed")
	}
	if p := propOf(props, 9, true); p != nil {
		t.Fatal("missing anchor should be nil")
	}
}
