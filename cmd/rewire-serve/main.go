// Command rewire-serve is the online mapping daemon: it serves CGRA
// mapping requests over HTTP with a bounded worker pool, and exposes
// the telemetry a production deployment scrapes and alerts on —
// Prometheus metrics (request rates, latency and mapping-quality
// distributions, plus every offline trace counter folded per run),
// structured per-request logs tied to run IDs, pprof endpoints, and a
// flight recorder holding the last N runs with downloadable Chrome
// traces.
//
// Usage:
//
//	rewire-serve -addr :8080 -workers 8 -log-format json
//
// Endpoints:
//
//	POST /map              map a kernel (JSON in/out; see docs/OBSERVABILITY.md)
//	POST /map/batch        map up to -max-batch kernels in one call; identical
//	                       entries are fingerprint-deduplicated (docs/CACHING.md)
//	POST /map/submit       submit one mapping job asynchronously (202 + job_id)
//	GET  /map/result/{id}  poll an async job: 202 running, 200 done, 404 evicted
//	GET  /metrics          Prometheus text exposition (v0.0.4)
//	GET  /healthz          liveness
//	GET  /readyz           readiness (200 after kernel warmup)
//	GET  /qor              QoR ledger aggregates (runs, success rates, best II) as JSON
//	GET  /qor.html         the QoR dashboard as a self-contained page
//	GET  /runs             flight recorder: last N run summaries, newest first
//	GET  /runs/{id}/trace  one recorded run's Chrome trace (Perfetto-loadable)
//	GET  /debug/pprof/     CPU/heap/goroutine profiles (go tool pprof)
//
// Repeated identical requests are served from a result-level mapping
// cache (-result-cache, on by default): a warm hit skips placement and
// routing entirely and the response carries "cached": true.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"rewire/internal/buildinfo"
	"rewire/internal/ledger"
	"rewire/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", runtime.NumCPU(), "concurrent mapping runs (further requests queue)")
		timeout   = flag.Duration("request-timeout", 60*time.Second, "per-request wall-clock bound, queue wait included")
		maxTPI    = flag.Duration("max-time-per-ii", 10*time.Second, "largest per-II budget a request may ask for")
		maxII     = flag.Int("max-ii", 32, "largest II bound a request may ask for")
		flight    = flag.Int("flight", 64, "flight recorder size (last N runs kept with traces)")
		cacheCap  = flag.Int("result-cache", 512, "result-cache capacity in finished mappings (0 disables; repeated identical requests skip the compile)")
		maxBatch  = flag.Int("max-batch", 64, "largest number of entries one POST /map/batch may carry")
		jobTO     = flag.Duration("job-timeout", 5*time.Minute, "async job wall-clock bound (queue wait included)")
		jobCap    = flag.Int("job-capacity", 256, "async job table size (running plus retained completed jobs)")
		ledgerDir = flag.String("ledger", "", "append one QoR ledger entry per retired run to <dir>/ledger.jsonl (default: in-memory only; see docs/OBSERVABILITY.md)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		version   = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	lg, err := obs.Setup(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		obs.Default().Error("bad logging flags", "err", err)
		os.Exit(2)
	}

	var led *ledger.Ledger
	if *ledgerDir != "" {
		led, err = ledger.Open(*ledgerDir)
		if err != nil {
			lg.Error("cannot open QoR ledger", "dir", *ledgerDir, "err", err)
			os.Exit(1)
		}
		defer led.Close()
	}

	s := newServer(serverConfig{
		Workers:        *workers,
		RequestTimeout: *timeout,
		MaxTimePerII:   *maxTPI,
		MaxII:          *maxII,
		FlightSize:     *flight,
		CacheSize:      *cacheCap,
		MaxBatch:       *maxBatch,
		JobTimeout:     *jobTO,
		JobCapacity:    *jobCap,
		Ledger:         led,
	}, lg)
	go s.warmup()

	lg.Info("rewire-serve listening", "addr", *addr, "workers", s.cfg.Workers,
		"request_timeout", timeout.String(), "flight_size", s.cfg.FlightSize)
	if err := http.ListenAndServe(*addr, s.mux()); err != nil {
		lg.Error("server exited", "err", err)
		os.Exit(1)
	}
}
