package route

import (
	"fmt"

	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// ForSession builds a router sized for a mapping session's architecture
// and II.
func ForSession(s *mapping.Session) *Router {
	a := s.M.Arch
	return NewRouter(s.Graph, DefaultMaxLat(a.Rows, a.Cols, s.M.II))
}

// StrictFloor returns the exact lower bound on any step cost
// StrictCost(s.State, producer) can admit, which is what FindPath wants
// as its heuristic floor: the own-net sharing discount is only reachable
// once some edge of the producer's net is routed (the producer's own FU
// and bank-port reservations sit at phase 0, which a mid-path state can
// never match), so a net with no routed edges pays full unit cost on
// every step.
func StrictFloor(s *mapping.Session, producer int) float64 {
	for _, eid := range s.M.DFG.OutEdges(producer) {
		if s.M.Routed(eid) {
			return StrictSharedCost
		}
	}
	return 1
}

// Edge routes edge e of the session strictly (free or own-net resources
// only) and commits the route. Both endpoints must be placed.
func Edge(s *mapping.Session, r *Router, e int) error {
	ed := s.M.DFG.Edges[e]
	if !s.M.Placed(ed.From) || !s.M.Placed(ed.To) {
		return fmt.Errorf("route: edge %d endpoint unplaced", e)
	}
	lat := s.M.Latency(e)
	if lat < 1 {
		return fmt.Errorf("route: edge %d latency %d < 1", e, lat)
	}
	src := s.Graph.FU(s.M.Place[ed.From].PE, s.M.Place[ed.From].Time)
	dst := s.Graph.FU(s.M.Place[ed.To].PE, s.M.Place[ed.To].Time)
	path, ok := r.FindPath(src, dst, lat, StrictCost(s.State, mrrg.Net(ed.From)), StrictFloor(s, ed.From))
	if !ok {
		return fmt.Errorf("route: no conflict-free path for edge %d (lat %d, %s -> %s)",
			e, lat, s.Graph.String(src), s.Graph.String(dst))
	}
	return s.RouteEdge(e, path)
}

// NodeEdges strictly routes every edge of v whose other endpoint is
// placed, committing the routes; on the first failure it rips the routes
// it just made and reports the failing edge.
func NodeEdges(s *mapping.Session, r *Router, v int) error {
	var done []int
	tryAll := func(edges []int) error {
		for _, eid := range edges {
			ed := s.M.DFG.Edges[eid]
			other := ed.From
			if other == v {
				other = ed.To
			}
			if ed.From == v && ed.To == v {
				other = v // distance-1 self edge (single-node recurrence)
			}
			if !s.M.Placed(other) || s.M.Routed(eid) {
				continue
			}
			if err := Edge(s, r, eid); err != nil {
				return err
			}
			done = append(done, eid)
		}
		return nil
	}
	err := tryAll(s.M.DFG.InEdges(v))
	if err == nil {
		err = tryAll(s.M.DFG.OutEdges(v))
	}
	if err != nil {
		for _, eid := range done {
			s.UnrouteEdge(eid)
		}
		return err
	}
	return nil
}
