package mrrg

import (
	"strconv"
	"sync"
	"sync/atomic"

	"rewire/internal/arch"
)

// Graphs are immutable after New returns, so one Graph can back every
// session of the same (architecture, II) pair — across the II sweep of a
// single mapping run, across eval worker goroutines, and across
// rewire-serve requests — instead of being rebuilt per attempt. Shared
// implements that: an architecture+II-keyed, concurrency-safe cache.
//
// Invariants the cache relies on (see docs/PERFORMANCE.md):
//
//   - a Graph is never mutated after construction; all mutable occupancy
//     lives in State, which is per-session;
//   - an arch.CGRA must not be mutated after its first use in a session.
//     The key is a fingerprint of every field that feeds construction,
//     so mutating a CGRA and calling Shared again yields a fresh Graph —
//     but sessions built before the mutation keep the old one.
var shared struct {
	mu sync.Mutex
	m  map[string]*Graph
	// order remembers insertion order for the bounded eviction below.
	order []string

	hits, misses atomic.Int64
}

// maxSharedGraphs bounds the cache. An II sweep touches at most a few
// dozen (arch, II) pairs; the bound only matters for a long-lived server
// fed a stream of distinct custom architectures, where evicting the
// oldest entry (sessions holding it keep it alive; it is simply rebuilt
// if requested again) beats unbounded growth.
const maxSharedGraphs = 128

// CacheStats reports cumulative Shared hits and misses; the metrics
// exporter publishes them as rewire_mrrg_cache_{hits,misses}_total.
func CacheStats() (hits, misses int64) {
	return shared.hits.Load(), shared.misses.Load()
}

// Shared returns the MRRG of cgra time-extended to ii cycles, building
// it at most once per (architecture fingerprint, II) and sharing the
// immutable result across callers. Safe for concurrent use.
func Shared(cgra *arch.CGRA, ii int) *Graph {
	// The key is built into a stack buffer and looked up via the
	// no-copy map[string]([]byte) form, so the hit path allocates
	// nothing; the string is materialised only when storing a miss.
	var buf [512]byte
	kb := appendArchKey(buf[:0], cgra, ii)
	shared.mu.Lock()
	if g, ok := shared.m[string(kb)]; ok {
		shared.mu.Unlock()
		shared.hits.Add(1)
		return g
	}
	shared.mu.Unlock()
	// Build outside the lock: construction is the expensive part and two
	// racing builders of the same key produce interchangeable graphs.
	g := New(cgra, ii)
	key := string(kb)
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if cached, ok := shared.m[key]; ok {
		shared.hits.Add(1)
		return cached
	}
	shared.misses.Add(1)
	if shared.m == nil {
		shared.m = map[string]*Graph{}
	}
	for len(shared.order) >= maxSharedGraphs {
		delete(shared.m, shared.order[0])
		shared.order = shared.order[1:]
	}
	shared.m[key] = g
	shared.order = append(shared.order, key)
	return g
}

// ArchFingerprint canonically serialises every CGRA field that Graph
// construction (or a consumer of Graph.Arch) can observe. Name is
// included deliberately: two same-shape architectures with different
// names stay distinct, so Graph.Arch never aliases a CGRA the caller
// did not pass in. It is exported so the result-level mapping cache
// (internal/resultcache) keys on the exact same notion of architecture
// identity as the substrate caches.
func ArchFingerprint(c *arch.CGRA) string {
	return string(appendArchFingerprint(nil, c))
}

// appendArchFingerprint appends ArchFingerprint(c) to dst byte-for-byte.
// It exists so Shared can build its lookup key into a stack buffer and
// probe the cache without allocating on the hit path.
func appendArchFingerprint(dst []byte, c *arch.CGRA) []byte {
	dst = append(dst, c.Name...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(c.Rows), 10)
	dst = append(dst, 'x')
	dst = strconv.AppendInt(dst, int64(c.Cols), 10)
	dst = append(dst, "|r"...)
	dst = strconv.AppendInt(dst, int64(c.Regs), 10)
	dst = append(dst, "|b"...)
	dst = strconv.AppendInt(dst, int64(c.Banks), 10)
	dst = append(dst, "|t"...)
	dst = strconv.AppendBool(dst, c.Torus)
	dst = append(dst, "|m"...)
	for _, m := range c.MemPE {
		if m {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	}
	dst = append(dst, "|c"...)
	for _, m := range c.PECaps {
		dst = strconv.AppendUint(dst, uint64(m), 16)
		dst = append(dst, ',')
	}
	return dst
}

// archFingerprint is the Shared cache key: the architecture identity
// plus the II the graph is time-extended to.
func archFingerprint(c *arch.CGRA, ii int) string {
	return string(appendArchKey(nil, c, ii))
}

func appendArchKey(dst []byte, c *arch.CGRA, ii int) []byte {
	dst = appendArchFingerprint(dst, c)
	dst = append(dst, "|ii"...)
	return strconv.AppendInt(dst, int64(ii), 10)
}
