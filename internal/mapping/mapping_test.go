package mapping

import (
	"strings"
	"testing"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mrrg"
)

// chain builds load -> add -> store.
func chain() *dfg.Graph {
	g := dfg.New("chain")
	ld := g.AddNode("ld", dfg.OpLoad)
	ad := g.AddNode("add", dfg.OpAdd)
	st := g.AddNode("st", dfg.OpStore)
	g.AddEdge(ld, ad, 0)
	g.AddEdge(ad, st, 0)
	return g
}

func newSess(t *testing.T, g *dfg.Graph, ii int) *Session {
	t.Helper()
	return NewSession(New(g, arch.New4x4(2), ii))
}

func TestPlaceUnplaceRoundTrip(t *testing.T) {
	s := newSess(t, chain(), 2)
	if err := s.PlaceNode(1, 5, 3); err != nil {
		t.Fatal(err)
	}
	if !s.M.Placed(1) || s.M.Place[1] != (Placement{PE: 5, Time: 3}) {
		t.Fatalf("placement = %+v", s.M.Place[1])
	}
	// FU occupied mod II: slot t=1.
	if s.State.Free(s.Graph.FU(5, 1)) {
		t.Fatal("FU not reserved")
	}
	if err := s.PlaceNode(2, 5, 1); err == nil {
		t.Fatal("conflicting FU placement must fail (3 mod 2 == 1)")
	}
	s.UnplaceNode(1)
	if s.M.Placed(1) || !s.State.Free(s.Graph.FU(5, 1)) {
		t.Fatal("unplace did not clean up")
	}
}

func TestMemPlacementRules(t *testing.T) {
	s := newSess(t, chain(), 2)
	// PE 5 is not in the memory column (column 0) on the 4x4 preset.
	if err := s.PlaceNode(0, 5, 0); err == nil {
		t.Fatal("load on non-memory PE must fail")
	}
	if s.CanPlace(0, 5, 0) {
		t.Fatal("CanPlace must agree")
	}
	// PE 0 is memory-capable.
	if err := s.PlaceNode(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s.M.BankPorts[0] == mrrg.Invalid {
		t.Fatal("memory op got no bank port")
	}
	s.UnplaceNode(0)
	if s.State.CountOccupied() != 0 {
		t.Fatal("unplace leaked reservations")
	}
}

func TestBankPortExhaustion(t *testing.T) {
	// 2 banks * 2 ports = 4 accesses per cycle; the 4x4 preset has 4
	// memory PEs (0, 4, 8, 12), so at II=1 a fifth access cannot fit —
	// but there are only 4 mem PEs, so build a DFG with 4 mem ops and
	// verify the 4th still fits and FU exclusivity binds first.
	g := dfg.New("mem")
	for i := 0; i < 4; i++ {
		g.AddNode("ld", dfg.OpLoad)
	}
	s := NewSession(New(g, arch.New4x4(2), 1))
	pes := []int{0, 4, 8, 12}
	for i, pe := range pes {
		if err := s.PlaceNode(i, pe, 0); err != nil {
			t.Fatalf("mem op %d: %v", i, err)
		}
	}
	if s.State.FreeBankPort(0) != mrrg.Invalid {
		t.Fatal("expected all bank ports taken")
	}
}

func TestLatencyAndCheckPath(t *testing.T) {
	s := newSess(t, chain(), 2)
	// ld on PE0@0, add on PE1@2 (east neighbour, two hops in time).
	if err := s.PlaceNode(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if lat := s.M.Latency(0); lat != 2 {
		t.Fatalf("latency = %d, want 2", lat)
	}
	// Valid: east link of PE0 at t=1 (phase 1).
	good := []mrrg.Node{s.Graph.Link(0, arch.East, 1)}
	if err := s.CheckPath(0, good); err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := s.CheckPath(0, nil); err == nil {
		t.Fatal("short path accepted")
	}
	// Non-adjacent hop.
	bad := []mrrg.Node{s.Graph.Link(2, arch.East, 1)}
	if err := s.CheckPath(0, bad); err == nil {
		t.Fatal("non-adjacent path accepted")
	}
}

func TestRouteEdgeReservesAndReleases(t *testing.T) {
	s := newSess(t, chain(), 2)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 1, 2)
	path := []mrrg.Node{s.Graph.Link(0, arch.East, 1)}
	if err := s.RouteEdge(0, path); err != nil {
		t.Fatal(err)
	}
	if s.State.Free(path[0]) {
		t.Fatal("route did not reserve")
	}
	if err := s.RouteEdge(0, path); err == nil {
		t.Fatal("double-routing must fail")
	}
	s.UnrouteEdge(0)
	if !s.State.Free(path[0]) {
		t.Fatal("unroute did not release")
	}
}

func TestUnplaceWithRoutedEdgePanics(t *testing.T) {
	s := newSess(t, chain(), 2)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 0, 1)
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.UnplaceNode(0)
}

func TestRipNode(t *testing.T) {
	s := newSess(t, chain(), 3)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 0, 1)
	mustPlace(t, s, 2, 0, 2)
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := s.RouteEdge(1, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	s.RipNode(1)
	if s.M.Placed(1) || s.M.Routed(0) || s.M.Routed(1) {
		t.Fatal("rip incomplete")
	}
	if !s.M.Placed(0) || !s.M.Placed(2) {
		t.Fatal("rip damaged neighbours")
	}
}

func TestIllMapped(t *testing.T) {
	s := newSess(t, chain(), 2)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 0, 1)
	// Node 2 unplaced; edge 0 (between placed 0 and 1) unrouted.
	ill := s.IllMapped()
	want := []int{0, 1, 2}
	if len(ill) != 3 || ill[0] != want[0] || ill[1] != want[1] || ill[2] != want[2] {
		t.Fatalf("IllMapped = %v, want %v", ill, want)
	}
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	ill = s.IllMapped()
	if len(ill) != 1 || ill[0] != 2 {
		t.Fatalf("IllMapped = %v, want [2]", ill)
	}
}

func TestValidateAcceptsGoodMapping(t *testing.T) {
	s := newSess(t, chain(), 3)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 0, 1)
	mustPlace(t, s, 2, 0, 2)
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := s.RouteEdge(1, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(s.M); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	build := func() *Mapping {
		s := newSess(t, chain(), 3)
		mustPlace(t, s, 0, 0, 0)
		mustPlace(t, s, 1, 0, 1)
		mustPlace(t, s, 2, 0, 2)
		if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
			t.Fatal(err)
		}
		if err := s.RouteEdge(1, []mrrg.Node{}); err != nil {
			t.Fatal(err)
		}
		return s.M
	}
	m := build()
	m.Place[2] = Unplaced
	if err := Validate(m); err == nil || !strings.Contains(err.Error(), "unplaced") {
		t.Fatalf("unplaced node not caught: %v", err)
	}
	m = build()
	m.Routes[1] = nil
	if err := Validate(m); err == nil {
		t.Fatal("unrouted edge not caught")
	}
	m = build()
	m.Place[1] = Placement{PE: 0, Time: 2} // FU clash with node 2 and broken latency
	if err := Validate(m); err == nil {
		t.Fatal("FU conflict not caught")
	}
	m = build()
	m.BankPorts[1] = m.BankPorts[0] // non-mem node holding a port
	if err := Validate(m); err == nil {
		t.Fatal("bank port on ALU op not caught")
	}
}

func TestValidateRejectsNegativeLatency(t *testing.T) {
	s := newSess(t, chain(), 2)
	mustPlace(t, s, 0, 0, 5)
	mustPlace(t, s, 1, 1, 5) // same time as producer: latency 0
	if err := s.CheckPath(0, []mrrg.Node{}); err == nil {
		t.Fatal("latency-0 edge accepted")
	}
}

func TestSelfEdgeAccumulator(t *testing.T) {
	g := dfg.New("acc")
	a := g.AddNode("acc", dfg.OpAdd)
	g.AddEdge(a, a, 1)
	m := New(g, arch.New4x4(2), 2)
	s := NewSession(m)
	mustPlace(t, s, 0, 3, 0)
	// Latency = 0 - 0 + 1*2 = 2: one intermediate resource, e.g. reg dwell.
	if lat := m.Latency(0); lat != 2 {
		t.Fatalf("self-edge latency = %d", lat)
	}
	path := []mrrg.Node{s.Graph.Reg(3, 0, 1)}
	if err := s.RouteEdge(0, path); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestSelfEdgeAtIIOne(t *testing.T) {
	g := dfg.New("acc")
	a := g.AddNode("acc", dfg.OpAdd)
	g.AddEdge(a, a, 1)
	m := New(g, arch.New4x4(2), 1)
	s := NewSession(m)
	mustPlace(t, s, 0, 3, 0)
	// Latency 1, empty path, FU->FU forwarding self edge.
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndRestore(t *testing.T) {
	s := newSess(t, chain(), 3)
	mustPlace(t, s, 0, 0, 0)
	mustPlace(t, s, 1, 0, 1)
	mustPlace(t, s, 2, 0, 2)
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := s.RouteEdge(1, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	c := s.M.Clone()
	s.UnrouteEdge(0)
	if !c.Routed(0) {
		t.Fatal("clone shares route storage")
	}
	r, err := Restore(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r.M); err != nil {
		t.Fatal(err)
	}
}

func TestUnplacedNodesAndSummary(t *testing.T) {
	s := newSess(t, chain(), 2)
	mustPlace(t, s, 1, 0, 1)
	up := s.M.UnplacedNodes()
	if len(up) != 2 || up[0] != 0 || up[1] != 2 {
		t.Fatalf("UnplacedNodes = %v", up)
	}
	if !strings.Contains(s.M.Summary(), "1/3 placed") {
		t.Fatalf("summary = %q", s.M.Summary())
	}
	if s.M.Complete() {
		t.Fatal("incomplete mapping reported complete")
	}
}

func mustPlace(t *testing.T, s *Session, v, pe, T int) {
	t.Helper()
	if err := s.PlaceNode(v, pe, T); err != nil {
		t.Fatalf("place %d on (%d,%d): %v", v, pe, T, err)
	}
}

func TestPlaceNodeFUSlotModuloConflict(t *testing.T) {
	g := dfg.New("slots")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	s := NewSession(New(g, arch.New4x4(1), 3))
	mustPlace(t, s, a, 2, 1)
	// Same PE at time 4 = slot 1: must clash.
	if err := s.PlaceNode(b, 2, 4); err == nil {
		t.Fatal("modulo FU clash not detected")
	}
	// Time 5 = slot 2 is fine.
	if err := s.PlaceNode(b, 2, 5); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTimesSupported(t *testing.T) {
	// Absolute schedule times may be negative (amendment can place a
	// producer "before" the anchor frame); occupancy wraps correctly.
	g := dfg.New("neg")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	g.AddEdge(a, b, 0)
	s := NewSession(New(g, arch.New4x4(2), 3))
	mustPlace(t, s, a, 5, -2)
	mustPlace(t, s, b, 5, -1)
	if err := s.RouteEdge(0, []mrrg.Node{}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(s.M); err != nil {
		t.Fatal(err)
	}
	// -2 mod 3 = 1: the FU slot is taken.
	c := dfg.New("probe")
	_ = c
	if s.State.Free(s.Graph.FU(5, 1)) {
		t.Fatal("negative time not wrapped into slot 1")
	}
}

// TestSessionsShareGraph pins the MRRG cache integration: sessions over
// the same architecture and II reuse one immutable graph (concurrently
// too — each session still owns a private State), and Close returns the
// state to the pool without touching the shared graph.
func TestSessionsShareGraph(t *testing.T) {
	a := arch.New4x4(4)
	s1 := NewSession(New(chain(), a, 3))
	s2 := NewSession(New(chain(), a, 3))
	if s1.Graph != s2.Graph {
		t.Fatal("two sessions at the same arch+II built separate graphs")
	}
	if s3 := NewSession(New(chain(), a, 4)); s3.Graph == s1.Graph {
		t.Fatal("different II shared a graph")
	}
	// Private states: a reservation in one session is invisible to the other.
	n := s1.Graph.FU(3, 1)
	if err := s1.State.Reserve(n, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !s2.State.Free(n) {
		t.Fatal("states leaked between sessions sharing a graph")
	}
	g := s1.Graph
	s1.Close()
	s2.Close()
	if s1.State != nil || s2.State != nil {
		t.Fatal("Close did not detach the state")
	}
	if NewSession(New(chain(), a, 3)).Graph != g {
		t.Fatal("graph evicted by session close")
	}
}
