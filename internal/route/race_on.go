//go:build race

package route

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under instrumentation.
const raceEnabled = true
