// Package route implements routing over the MRRG: finding a minimum-cost
// chain of routing resources of an exact latency between a producer FU
// and a consumer FU. Latency is exact because in a modulo schedule the
// consumer's execution cycle is fixed by its placement; the value must
// arrive on that cycle, not merely by it.
//
// The search runs over layered states (resource, elapsed): every MRRG
// adjacency step advances elapsed by one cycle, so a route of latency L
// visits exactly L-1 intermediate resources at elapsed 1..L-1. The cost
// of a resource may depend on the phase (= elapsed) at which it is
// crossed, which lets PathFinder-style congestion negotiation and
// strict free-only routing share one engine.
package route

import (
	"math"

	"rewire/internal/mrrg"
	"rewire/internal/trace"
)

// CostFn prices using resource n at the given phase for the net being
// routed. ok=false forbids the resource entirely. Costs must be
// non-negative.
type CostFn func(n mrrg.Node, phase int) (cost float64, ok bool)

// StrictCost returns a CostFn admitting only resources that are free or
// already held by (net, phase), at unit cost — the final, conflict-free
// routing regime used by Rewire's verification and by committed routes.
func StrictCost(st *mrrg.State, net mrrg.Net) CostFn {
	return func(n mrrg.Node, phase int) (float64, bool) {
		if !st.Usable(n, net, phase) {
			return 0, false
		}
		if occ, _ := st.Occupant(n); occ == net {
			return 0.05, true // sharing an own-net resource is nearly free
		}
		return 1, true
	}
}

// Router finds exact-latency paths on one MRRG. It reuses internal
// buffers across calls, so a Router is not safe for concurrent use; give
// each goroutine its own Router (see docs/CONCURRENCY.md).
//
// The hot path is allocation-free apart from the returned path slice
// (which callers retain): the search state is epoch-stamped rather than
// cleared, the priority queue is a concrete-typed heap (no interface
// boxing), and the retry ban set and duplicate detector are epoch-stamped
// scratch slices instead of per-call maps.
type Router struct {
	g      *mrrg.Graph
	maxLat int

	dist  []float64
	from  []int32
	stamp []int32
	epoch int32
	pq    stateHeap

	// banStamp/banEpoch implement FindPath's per-call retry ban set;
	// nodeStamp/nodeEpoch back firstDuplicate. Both are per-node (not
	// per-state) scratch, stamped instead of cleared.
	banStamp  []int32
	banEpoch  int32
	nodeStamp []int32
	nodeEpoch int32

	// Expansions counts states popped from the queue across all calls;
	// the evaluation uses it as a hardware-independent work measure.
	Expansions int64

	// calls/found are tracer counters attached by Instrument; nil (the
	// default) makes FindPath's bookkeeping a pointer-check no-op.
	calls *trace.Counter
	found *trace.Counter
}

// maxRetainedPQ bounds the queue capacity a Router keeps between calls.
// One pathological search can grow the queue to the full state count;
// trimming afterwards keeps long-lived routers from pinning peak-size
// buffers.
const maxRetainedPQ = 4096

// NewRouter builds a router for g accepting latencies up to maxLat. A
// good bound is a few IIs plus the mesh diameter; latencies beyond that
// produce unprofitably long routes anyway.
func NewRouter(g *mrrg.Graph, maxLat int) *Router {
	if maxLat < 1 {
		maxLat = 1
	}
	n := g.NumNodes() * (maxLat + 1)
	return &Router{
		g:         g,
		maxLat:    maxLat,
		dist:      make([]float64, n),
		from:      make([]int32, n),
		stamp:     make([]int32, n),
		banStamp:  make([]int32, g.NumNodes()),
		nodeStamp: make([]int32, g.NumNodes()),
	}
}

// MaxLat returns the largest latency this router accepts.
func (r *Router) MaxLat() int { return r.maxLat }

// Instrument attaches per-call tracer counters (route.findpath.calls,
// route.findpath.found) to this router. The cost when attached is one
// atomic add per FindPath call — never per queue pop; the PQ-pop total
// stays in Expansions, which mappers fold into "router.expansions" at
// attempt boundaries. A nil tracer leaves the router uninstrumented.
func (r *Router) Instrument(tr *trace.Tracer) {
	if !tr.Enabled() {
		return
	}
	r.calls = tr.Counter("route.findpath.calls")
	r.found = tr.Counter("route.findpath.found")
}

// DefaultMaxLat is a reasonable routing-latency bound for an
// architecture at a given II: wandering longer than two full IIs plus
// the mesh diameter is never profitable in practice.
func DefaultMaxLat(rows, cols, ii int) int {
	d := rows + cols + 2*ii + 2
	if d < 8 {
		d = 8
	}
	return d
}

type state struct {
	node    mrrg.Node
	elapsed int32
	cost    float64
}

// stateHeap is a concrete-typed binary min-heap ordered by cost. It
// reproduces container/heap's sift order exactly (strict-less child
// promotion) so paths are bit-identical to the boxed implementation it
// replaced, without the per-push interface{} allocation.
type stateHeap []state

func (r *Router) pushState(s state) {
	h := append(r.pq, s)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(h[i].cost < h[p].cost) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	r.pq = h
}

func (r *Router) popState() state {
	h := r.pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rt := l + 1; rt < n && h[rt].cost < h[l].cost {
			m = rt
		}
		if !(h[m].cost < h[i].cost) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	r.pq = h
	return top
}

// bumpEpoch advances an epoch counter, clearing its stamp slice on the
// (astronomically rare) int32 wrap so stale stamps can never alias a
// fresh epoch.
func bumpEpoch(e *int32, stamps []int32) int32 {
	if *e == math.MaxInt32 {
		for i := range stamps {
			stamps[i] = 0
		}
		*e = 0
	}
	*e++
	return *e
}

// FindPath returns the minimum-cost chain of lat-1 routing resources
// carrying a value from the FU node src (where the producer executes) to
// the FU node dst (where the consumer executes, lat cycles later). The
// chain excludes both FUs. ok is false if no path of that exact latency
// exists under the cost function.
//
// The returned path never repeats a resource (a repeat would collide
// with a neighbouring iteration); when the cheapest path would repeat,
// up to three increasingly constrained retries look for a simple
// alternative.
func (r *Router) FindPath(src, dst mrrg.Node, lat int, cost CostFn) (path []mrrg.Node, ok bool) {
	r.calls.Add(1)
	if lat < 1 || lat > r.maxLat {
		return nil, false
	}
	defer func() {
		if cap(r.pq) > maxRetainedPQ {
			r.pq = nil
		}
	}()
	ban := bumpEpoch(&r.banEpoch, r.banStamp)
	for attempt := 0; attempt < 3; attempt++ {
		p, found := r.findOnce(src, dst, lat, cost, ban)
		if !found {
			return nil, false
		}
		if dup := r.firstDuplicate(p); dup != mrrg.Invalid {
			r.banStamp[dup] = ban
			continue
		}
		r.found.Add(1)
		return p, true
	}
	return nil, false
}

func (r *Router) findOnce(src, dst mrrg.Node, lat int, cost CostFn, ban int32) ([]mrrg.Node, bool) {
	bumpEpoch(&r.epoch, r.stamp)
	idx := func(n mrrg.Node, e int) int { return int(n)*(r.maxLat+1) + e }
	arch := r.g.Arch
	dstPE := r.g.PE(dst)
	// tooFar prunes states that cannot possibly reach the destination FU
	// in the remaining cycles: a value held by resource n needs at least
	// one cycle to enter a FU at FeedsPE(n), plus one registered mesh hop
	// per Manhattan step from there (admissible, so no path is lost).
	tooFar := func(n mrrg.Node, e int) bool {
		fp := r.g.FeedsPE(n)
		need := 1
		if fp != dstPE {
			need = arch.Manhattan(fp, dstPE) + 1
		}
		return e+need > lat
	}
	r.pq = r.pq[:0]
	r.pushState(state{node: src, elapsed: 0, cost: 0})
	si := idx(src, 0)
	r.stamp[si] = r.epoch
	r.dist[si] = 0
	r.from[si] = -1
	if tooFar(src, 0) {
		return nil, false
	}

	for len(r.pq) > 0 {
		cur := r.popState()
		r.Expansions++
		ci := idx(cur.node, int(cur.elapsed))
		if cur.cost > r.dist[ci] {
			continue // stale entry
		}
		if cur.node == dst && int(cur.elapsed) == lat {
			return r.reconstruct(src, dst, lat, idx), true
		}
		if int(cur.elapsed) >= lat {
			continue
		}
		nextE := int(cur.elapsed) + 1
		for _, nxt := range r.g.Succs(cur.node) {
			// The final hop must be exactly the destination FU; routing
			// through other FUs mid-path is allowed (move operations).
			if nextE == lat {
				if nxt != dst {
					continue
				}
				// Entering the consumer FU costs nothing extra: the
				// consumer's own placement already reserved it.
				r.relax(idx, nxt, nextE, cur, 0)
				continue
			}
			if nxt == dst && r.g.Kind(nxt) == mrrg.KindFU {
				// Passing through the consumer FU before the arrival
				// cycle would collide with the consumer's reservation.
				continue
			}
			if tooFar(nxt, nextE) || r.banStamp[nxt] == ban {
				continue
			}
			c, usable := cost(nxt, nextE)
			if !usable {
				continue
			}
			r.relax(idx, nxt, nextE, cur, c)
		}
	}
	return nil, false
}

func (r *Router) relax(idx func(mrrg.Node, int) int, nxt mrrg.Node, e int, cur state, c float64) {
	ni := idx(nxt, e)
	nc := cur.cost + c
	if r.stamp[ni] == r.epoch && r.dist[ni] <= nc {
		return
	}
	r.stamp[ni] = r.epoch
	r.dist[ni] = nc
	r.from[ni] = int32(idx(cur.node, int(cur.elapsed)))
	r.pushState(state{node: nxt, elapsed: int32(e), cost: nc})
}

func (r *Router) reconstruct(src, dst mrrg.Node, lat int, idx func(mrrg.Node, int) int) []mrrg.Node {
	path := make([]mrrg.Node, lat-1)
	cur := idx(dst, lat)
	for e := lat - 1; e >= 1; e-- {
		cur = int(r.from[cur])
		path[e-1] = mrrg.Node(cur / (r.maxLat + 1))
	}
	return path
}

// firstDuplicate returns the first resource repeated within path, using
// the router's epoch-stamped per-node scratch instead of a per-call map.
func (r *Router) firstDuplicate(path []mrrg.Node) mrrg.Node {
	if len(path) < 2 {
		return mrrg.Invalid
	}
	seen := bumpEpoch(&r.nodeEpoch, r.nodeStamp)
	for _, n := range path {
		if r.nodeStamp[n] == seen {
			return n
		}
		r.nodeStamp[n] = seen
	}
	return mrrg.Invalid
}
