package kernelir

import (
	"fmt"
	"strconv"
	"sync"

	"rewire/internal/dfg"
)

// Lower translates a parsed kernel into a data-flow graph.
//
// Lowering rules:
//   - every array read becomes one load node, deduplicated by canonical
//     subscript within the iteration (common-subexpression elimination of
//     loads, matching what a compiler frontend produces);
//   - every array write becomes a store node consuming the stored value;
//   - params and integer literals are immediates: no node, no edge;
//   - `x += e` lowers to an add node reading e and the final definition of
//     x from the previous iteration (a distance-1 edge — a self edge when
//     x has a single accumulator statement);
//   - `x@d` reads the final definition of x from d iterations ago
//     (a distance-d edge);
//   - min/max lower to a cmp node plus a select node.
func Lower(prog *Program) (*dfg.Graph, error) {
	lo := lowererPool.Get().(*lowerer)
	lo.prog = prog
	lo.g = dfg.New(prog.Name)
	defer func() {
		lo.prog, lo.g = nil, nil
		clear(lo.env)
		clear(lo.loads)
		lo.pending = lo.pending[:0]
		lowererPool.Put(lo)
	}()
	for si := range prog.Stmts {
		if err := lo.stmt(&prog.Stmts[si]); err != nil {
			return nil, err
		}
	}
	// Resolve delayed reads against the final definition of each scalar.
	for _, pe := range lo.pending {
		def, ok := lo.env[pe.name]
		if !ok {
			return nil, fmt.Errorf("kernel %q: delayed read of %q but the scalar is never assigned", prog.Name, pe.name)
		}
		lo.g.AddEdgeOp(def, pe.to, pe.delay, pe.slot)
	}
	if err := lo.g.Validate(); err != nil {
		return nil, fmt.Errorf("kernel %q lowered to invalid DFG: %w", prog.Name, err)
	}
	return lo.g, nil
}

// MustLower is Lower that panics on error; for static kernel definitions.
func MustLower(prog *Program) *dfg.Graph {
	g, err := Lower(prog)
	if err != nil {
		panic(err)
	}
	return g
}

// operand is the result of lowering a sub-expression.
type operand struct {
	kind  opndKind
	node  int    // nodeOpnd: producing DFG node
	name  string // deferOpnd: scalar read with delay
	delay int
}

type opndKind int

const (
	immOpnd   opndKind = iota // param or literal: contributes no edge
	nodeOpnd                  // value produced by a DFG node
	deferOpnd                 // delayed scalar read, resolved after lowering
)

type pendingEdge struct {
	name  string
	delay int
	to    int
	slot  int
}

type lowerer struct {
	prog    *Program
	g       *dfg.Graph
	env     map[string]int // scalar -> node of its latest definition
	loads   map[string]int // canonical array ref -> load node (CSE)
	pending []pendingEdge
}

// lowererPool recycles the per-call scratch of Lower — the scalar
// environment, the load-CSE table and the pending-edge list — across
// calls. Lowering runs on every registry load, so the scratch maps
// dominate its steady-state allocation profile without pooling.
var lowererPool = sync.Pool{New: func() any {
	return &lowerer{env: make(map[string]int), loads: make(map[string]int)}
}}

func (lo *lowerer) stmt(s *Stmt) error {
	if s.LHS.Name == lo.prog.Induction && !s.LHS.IsArray() {
		return fmt.Errorf("line %d: cannot assign to induction variable %q", s.Line, s.LHS.Name)
	}
	switch {
	case s.Acc:
		return lo.accum(s)
	case s.LHS.IsArray():
		return lo.store(s)
	default:
		op, err := lo.expr(s.RHS, s.Line)
		if err != nil {
			return err
		}
		if op.kind != nodeOpnd {
			return fmt.Errorf("line %d: assignment to %q computes nothing (constant or pure delayed read)", s.Line, s.LHS.Name)
		}
		lo.g.Nodes[op.node].Name = s.LHS.Name
		lo.env[s.LHS.Name] = op.node
		return nil
	}
}

func (lo *lowerer) accum(s *Stmt) error {
	rhs, err := lo.expr(s.RHS, s.Line)
	if err != nil {
		return err
	}
	n := lo.g.AddNode(s.LHS.Name, dfg.OpAdd)
	lo.attach(rhs, n, 0)
	// The accumulator also reads its own previous value: the definition
	// visible at this point if one exists in the current iteration,
	// otherwise the final definition of the previous iteration.
	if def, ok := lo.env[s.LHS.Name]; ok {
		lo.g.AddEdgeOp(def, n, 0, 1)
	} else {
		lo.pending = append(lo.pending, pendingEdge{name: s.LHS.Name, delay: 1, to: n, slot: 1})
	}
	lo.env[s.LHS.Name] = n
	return nil
}

func (lo *lowerer) store(s *Stmt) error {
	val, err := lo.expr(s.RHS, s.Line)
	if err != nil {
		return err
	}
	if val.kind == immOpnd {
		return fmt.Errorf("line %d: storing a loop-invariant value to %s", s.Line, s.LHS)
	}
	n := lo.g.AddNode("st "+refKey(s.LHS.Name, s.LHS.Index), dfg.OpStore)
	lo.attach(val, n, 0)
	return nil
}

// attach adds the dependency edge (or pending edge) feeding operand slot
// `slot` of node `to`. Immediates contribute nothing: their slot stays
// unfed, and the functional interpreter fills it with the node's
// name-derived constant.
func (lo *lowerer) attach(op operand, to, slot int) {
	switch op.kind {
	case nodeOpnd:
		lo.g.AddEdgeOp(op.node, to, 0, slot)
	case deferOpnd:
		lo.pending = append(lo.pending, pendingEdge{name: op.name, delay: op.delay, to: to, slot: slot})
	}
}

func (lo *lowerer) expr(e Expr, line int) (operand, error) {
	switch x := e.(type) {
	case Num:
		return operand{kind: immOpnd}, nil
	case Scalar:
		if lo.prog.Params[x.Name] {
			if x.Delay > 0 {
				return operand{}, fmt.Errorf("line %d: delayed read of param %q is meaningless", line, x.Name)
			}
			return operand{kind: immOpnd}, nil
		}
		if x.Delay > 0 {
			return operand{kind: deferOpnd, name: x.Name, delay: x.Delay}, nil
		}
		def, ok := lo.env[x.Name]
		if !ok {
			return operand{}, fmt.Errorf("line %d: use of undefined scalar %q (use %s@1 for the previous iteration's value)", line, x.Name, x.Name)
		}
		return operand{kind: nodeOpnd, node: def}, nil
	case ArrayRead:
		key := refKey(x.Array, x.Index)
		if n, ok := lo.loads[key]; ok {
			return operand{kind: nodeOpnd, node: n}, nil
		}
		n := lo.g.AddNode("ld "+key, dfg.OpLoad)
		lo.loads[key] = n
		return operand{kind: nodeOpnd, node: n}, nil
	case Bin:
		kind, ok := binOps[x.Op]
		if !ok {
			return operand{}, fmt.Errorf("line %d: unsupported operator %q", line, x.Op)
		}
		l, err := lo.expr(x.L, line)
		if err != nil {
			return operand{}, err
		}
		r, err := lo.expr(x.R, line)
		if err != nil {
			return operand{}, err
		}
		if l.kind == immOpnd && r.kind == immOpnd {
			return operand{}, fmt.Errorf("line %d: expression %s is loop-invariant; fold it into a param", line, x)
		}
		n := lo.g.AddNode(autoName(lo.g.NumNodes()), kind)
		lo.attach(l, n, 0)
		lo.attach(r, n, 1)
		return operand{kind: nodeOpnd, node: n}, nil
	case Call:
		return lo.call(x, line)
	default:
		return operand{}, fmt.Errorf("line %d: unknown expression %T", line, e)
	}
}

var binOps = map[string]dfg.OpKind{
	"+": dfg.OpAdd, "-": dfg.OpSub, "*": dfg.OpMul, "/": dfg.OpDiv,
	"&": dfg.OpAnd, "|": dfg.OpOr, "^": dfg.OpXor,
	"<<": dfg.OpShl, ">>": dfg.OpShr,
}

func (lo *lowerer) call(c Call, line int) (operand, error) {
	args := make([]operand, len(c.Args))
	allImm := true
	for i, a := range c.Args {
		op, err := lo.expr(a, line)
		if err != nil {
			return operand{}, err
		}
		args[i] = op
		if op.kind != immOpnd {
			allImm = false
		}
	}
	if allImm {
		return operand{}, fmt.Errorf("line %d: call %s is loop-invariant", line, c)
	}
	switch c.Fn {
	case "cmp":
		n := lo.g.AddNode(autoName(lo.g.NumNodes()), dfg.OpCmp)
		lo.attach(args[0], n, 0)
		lo.attach(args[1], n, 1)
		return operand{kind: nodeOpnd, node: n}, nil
	case "sel":
		n := lo.g.AddNode(autoName(lo.g.NumNodes()), dfg.OpSelect)
		for i, a := range args {
			lo.attach(a, n, i)
		}
		return operand{kind: nodeOpnd, node: n}, nil
	case "min", "max":
		// max(a,b) = sel(cmp(a,b), a, b); min swaps the data operands.
		cmp := lo.g.AddNode(autoName(lo.g.NumNodes()), dfg.OpCmp)
		lo.attach(args[0], cmp, 0)
		lo.attach(args[1], cmp, 1)
		sel := lo.g.AddNode(c.Fn, dfg.OpSelect)
		lo.g.AddEdgeOp(cmp, sel, 0, 0)
		hi, lo2 := 1, 2
		if c.Fn == "min" {
			hi, lo2 = 2, 1
		}
		lo.attach(args[0], sel, hi)
		lo.attach(args[1], sel, lo2)
		return operand{kind: nodeOpnd, node: sel}, nil
	default:
		return operand{}, fmt.Errorf("line %d: unknown function %q", line, c.Fn)
	}
}

// autoNames interns the generated names of the first IDs; registry
// kernels (unrolled included) stay under this bound, so the hot path
// never concatenates.
var autoNames = func() (a [128]string) {
	for i := range a {
		a[i] = "%" + strconv.Itoa(i)
	}
	return a
}()

func autoName(id int) string {
	if id >= 0 && id < len(autoNames) {
		return autoNames[id]
	}
	return "%" + strconv.Itoa(id)
}
