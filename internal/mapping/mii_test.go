package mapping

import (
	"testing"

	"rewire/internal/arch"
	"rewire/internal/dfg"
)

func TestClassOf(t *testing.T) {
	cases := map[dfg.OpKind]arch.OpClass{
		dfg.OpAdd:    arch.ClassALU,
		dfg.OpCmp:    arch.ClassALU,
		dfg.OpSelect: arch.ClassALU,
		dfg.OpMul:    arch.ClassMul,
		dfg.OpDiv:    arch.ClassDiv,
		dfg.OpLoad:   arch.ClassMem,
		dfg.OpStore:  arch.ClassMem,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func mulHeavy() *dfg.Graph {
	g := dfg.New("mulheavy")
	prev := g.AddNode("ld", dfg.OpLoad)
	for i := 0; i < 8; i++ {
		m := g.AddNode("m", dfg.OpMul)
		g.AddEdge(prev, m, 0)
		prev = m
	}
	st := g.AddNode("st", dfg.OpStore)
	g.AddEdge(prev, st, 0)
	return g
}

func TestMIIHomogeneousMatchesDFGBound(t *testing.T) {
	g := mulHeavy()
	a := arch.New4x4(2)
	if MII(g, a) != g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts()) {
		t.Fatal("homogeneous MII must equal the base bound")
	}
}

func TestMIIHeterogeneousMulBound(t *testing.T) {
	g := mulHeavy() // 8 muls
	a := arch.New4x4(2)
	a.StripClass(arch.ClassMul, 5, 6) // two multipliers
	// ceil(8 muls / 2 mul PEs) = 4.
	if got := MII(g, a); got != 4 {
		t.Fatalf("MII = %d, want 4", got)
	}
	a2 := arch.New4x4(2)
	a2.StripClass(arch.ClassMul) // no multipliers at all
	if got := MII(g, a2); got < 1<<19 {
		t.Fatalf("MII = %d, want effectively infinite", got)
	}
}

func TestCanPlaceRespectsCaps(t *testing.T) {
	g := mulHeavy()
	a := arch.New4x4(2)
	a.StripClass(arch.ClassMul, 5)
	s := NewSession(New(g, a, 4))
	// Node 1 is a mul: only PE 5 qualifies.
	if s.CanPlace(1, 6, 0) {
		t.Fatal("mul placed on stripped PE")
	}
	if !s.CanPlace(1, 5, 0) {
		t.Fatal("mul rejected on capable PE")
	}
	if err := s.PlaceNode(1, 6, 0); err == nil {
		t.Fatal("PlaceNode must enforce capabilities")
	}
	if err := s.PlaceNode(1, 5, 0); err != nil {
		t.Fatal(err)
	}
}
