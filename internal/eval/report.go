package eval

import (
	"fmt"
	"io"
	"math"
	"time"

	"rewire/internal/arch"
)

// Figure5 prints the mapping-quality comparison: one block per CGRA
// configuration, one row per benchmark, columns MII and each mapper's
// achieved II ("-" marks a failed mapping, as the paper's missing SA
// bars do).
func (r *Results) Figure5(w io.Writer) {
	fmt.Fprintln(w, "== Figure 5: mapping quality (II; lower is better; '-' = mapping failed) ==")
	for _, a := range r.archOrder() {
		fmt.Fprintf(w, "\n-- %s --\n", a)
		fmt.Fprintf(w, "%-12s %4s %8s %6s %6s\n", "benchmark", "MII", "Rewire", "PF*", "SA")
		for _, cb := range r.combosOn(a) {
			fmt.Fprintf(w, "%-12s %4d", cb.Kernel, MIIOf(cb))
			for _, m := range Mappers {
				res, ok := r.Get(m, cb)
				width := 6
				if m == "Rewire" {
					width = 8
				}
				fmt.Fprintf(w, " %*s", width, fmtII(res, ok))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// Figure6 prints the compilation-time comparison on the two
// architectures the paper plots (4x4 with two registers, 8x8 with four),
// in milliseconds (the paper's Y axis is log-scale seconds; shape, not
// absolute scale, is the comparison).
func (r *Results) Figure6(w io.Writer) {
	fmt.Fprintln(w, "== Figure 6: compilation time (ms; '-' = mapping failed) ==")
	for _, a := range r.archOrder() {
		if a.Name != "4x4r2" && a.Name != "8x8r4" {
			continue
		}
		fmt.Fprintf(w, "\n-- %s --\n", a)
		fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "benchmark", "Rewire", "PF*", "SA")
		for _, cb := range r.combosOn(a) {
			fmt.Fprintf(w, "%-12s", cb.Kernel)
			for _, m := range Mappers {
				res, ok := r.Get(m, cb)
				if !ok {
					fmt.Fprintf(w, " %10s", "-")
					continue
				}
				// Failed mappings report their termination time, as in
				// the paper ("we choose the termination time as the
				// compilation time").
				fmt.Fprintf(w, " %10.1f", float64(res.Duration.Microseconds())/1000)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// Table1 prints the single-node remapping iteration counts for PF* and
// SA on the 4x4 CGRAs with one and four registers per PE (Rewire has no
// single-node remapping; its cluster amendments are shown for context).
func (r *Results) Table1(w io.Writer) {
	fmt.Fprintln(w, "== Table I: single-node remapping iterations (and Rewire cluster amendments) ==")
	for _, name := range []string{"4x4r1", "4x4r4"} {
		a := r.archByName(name)
		if a == nil {
			continue // filtered out of this evaluation
		}
		fmt.Fprintf(w, "\n-- %s --\n", a.Name)
		fmt.Fprintf(w, "%-12s %6s %6s %14s\n", "benchmark", "PF*", "SA", "Rewire(amend)")
		for _, cb := range r.combosOn(a) {
			if name == "4x4r4" && !inTable1Set(cb.Kernel) {
				continue
			}
			pf, _ := r.Get("PF*", cb)
			saRes, _ := r.Get("SA", cb)
			rw, _ := r.Get("Rewire", cb)
			fmt.Fprintf(w, "%-12s %6d %6d %14d\n",
				cb.Kernel, pf.RemapIterations, saRes.RemapIterations, rw.ClusterAmendments)
		}
	}
	fmt.Fprintln(w)
}

// archByName finds an architecture in the result set, nil when the
// evaluation was filtered to combos that never touch it.
func (r *Results) archByName(name string) *arch.CGRA {
	for _, a := range r.archOrder() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// inTable1Set filters the 4x4r4 rows to the paper's Table I benchmarks
// (the same eight kernels as the 4x4r1 list).
func inTable1Set(kernel string) bool {
	for _, k := range []string{"gramsch", "ludcmp", "lu", "gemver", "cholesky", "gesummv", "atax", "bicg(u)"} {
		if k == kernel {
			return true
		}
	}
	return false
}

// Summary prints the §V aggregate claims: optimal/near-optimal counts,
// SA failures, geometric-mean performance (1/II) speedups and
// compilation-time ratios of Rewire over PF* and SA, and Rewire's
// Placement(U) verification success rate (§IV-D reports ~95%).
func (r *Results) Summary(w io.Writer) {
	fmt.Fprintln(w, "== Summary (paper §V-A / §V-B claims) ==")
	total := len(r.Combos)
	optimal, nearOpt := 0, 0
	fails := map[string]int{}
	var verifyOK, verifyAll int64
	for _, cb := range r.Combos {
		for _, m := range Mappers {
			res, _ := r.Get(m, cb)
			if !res.Success {
				fails[m]++
			}
			if m == "Rewire" {
				if res.Optimal() {
					optimal++
				}
				if res.NearOptimal() {
					nearOpt++
				}
				verifyOK += res.VerifySuccesses
				verifyAll += res.VerifyAttempts
			}
		}
	}
	fmt.Fprintf(w, "combos: %d\n", total)
	fmt.Fprintf(w, "Rewire optimal: %d, optimal-or-near-optimal: %d (paper: 38/47)\n", optimal, nearOpt)
	for _, m := range Mappers {
		fmt.Fprintf(w, "%-8s failed combos: %d\n", m, fails[m])
	}
	for _, base := range []string{"PF*", "SA"} {
		perf := r.geomeanSpeedup(base)
		ct := r.geomeanTimeReduction(base)
		fmt.Fprintf(w, "Rewire vs %-4s  performance speedup: %.2fx   compile-time reduction: %.2fx\n", base, perf, ct)
	}
	if verifyAll > 0 {
		fmt.Fprintf(w, "Rewire Placement(U) verification success: %.1f%% (paper: ~95%%)\n",
			100*float64(verifyOK)/float64(verifyAll))
	}
	fmt.Fprintln(w)
}

// geomeanSpeedup computes the geometric-mean ratio base.II / rewire.II
// over combos where both mappers succeeded; combos the baseline failed
// contribute the paper's convention of counting against the baseline via
// the largest observed ratio on that architecture — here they are
// excluded from the mean but reported via the failure counts.
func (r *Results) geomeanSpeedup(base string) float64 {
	logSum, n := 0.0, 0
	for _, cb := range r.Combos {
		rw, _ := r.Get("Rewire", cb)
		bs, _ := r.Get(base, cb)
		if !rw.Success || !bs.Success {
			continue
		}
		logSum += math.Log(float64(bs.II) / float64(rw.II))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// geomeanTimeReduction computes the geometric-mean ratio of baseline
// compile time to Rewire compile time over combos where Rewire
// succeeded (failed baselines report their termination time, as in the
// paper).
func (r *Results) geomeanTimeReduction(base string) float64 {
	logSum, n := 0.0, 0
	for _, cb := range r.Combos {
		rw, _ := r.Get("Rewire", cb)
		bs, _ := r.Get(base, cb)
		if !rw.Success || rw.Duration <= 0 || bs.Duration <= 0 {
			continue
		}
		logSum += math.Log(float64(bs.Duration) / float64(rw.Duration))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Report prints everything.
func (r *Results) Report(w io.Writer) {
	r.Figure5(w)
	r.Figure6(w)
	r.Table1(w)
	r.Summary(w)
	fmt.Fprintf(w, "total evaluation wall-clock: %s\n", r.Elapsed.Round(time.Millisecond))
}
