// Command rewire-experiments regenerates the paper's evaluation: the
// Figure 5 mapping-quality comparison, the Figure 6 compilation-time
// comparison, Table I's remapping-iteration counts, and the §V summary
// statistics, over the 47 benchmark-architecture combinations.
//
// Usage:
//
//	rewire-experiments                  # everything (fig5+fig6+table1+summary)
//	rewire-experiments -fig5            # just the mapping-quality table
//	rewire-experiments -time-per-ii 5s  # larger per-II budgets (closer to the paper's 1h)
//	rewire-experiments -j 8             # fan the runs across 8 workers (-j 1 = serial)
//
// Runs are deterministic in -seed at every -j: each worker builds its
// own mapping state and results are collected in canonical order, so
// only the wall-clock changes with the parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rewire/internal/eval"
)

func main() {
	var (
		fig5    = flag.Bool("fig5", false, "print only Figure 5 (mapping quality)")
		fig6    = flag.Bool("fig6", false, "print only Figure 6 (compilation time)")
		table1  = flag.Bool("table1", false, "print only Table I (remapping iterations)")
		summary = flag.Bool("summary", false, "print only the summary statistics")
		scaling = flag.Bool("scaling", false, "run the fabric-size scaling study instead of the main evaluation")
		seed    = flag.Int64("seed", 1, "random seed for all mappers")
		budget  = flag.Duration("time-per-ii", 2*time.Second, "per-II wall-clock budget per mapper")
		jobs    = flag.Int("j", runtime.NumCPU(), "concurrent mapper runs (1 = serial)")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	cfg := eval.Config{
		Seed:      *seed,
		TimePerII: *budget,
		Jobs:      *jobs,
		Verbose:   !*quiet,
		Out:       os.Stdout,
	}
	if *scaling {
		eval.Scaling(cfg, os.Stdout)
		return
	}
	// The -j 1 banner matches the historical serial harness byte for
	// byte; the worker count is only announced when there is a pool.
	workers := ""
	if *jobs > 1 {
		workers = fmt.Sprintf(", %d workers", *jobs)
	}
	fmt.Printf("running %d combos x %d mappers (budget %s per II, seed %d%s)...\n\n",
		len(eval.Combos()), len(eval.Mappers), *budget, *seed, workers)
	results := eval.RunAll(cfg)
	fmt.Println()

	specific := *fig5 || *fig6 || *table1 || *summary
	if !specific || *fig5 {
		results.Figure5(os.Stdout)
	}
	if !specific || *fig6 {
		results.Figure6(os.Stdout)
	}
	if !specific || *table1 {
		results.Table1(os.Stdout)
	}
	if !specific || *summary {
		results.Summary(os.Stdout)
	}
}
