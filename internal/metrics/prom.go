package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type the
// /metrics handler serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the Prometheus text
// exposition format v0.0.4: families sorted by name, one # HELP and
// # TYPE line each, children sorted by label values, histograms as
// cumulative _bucket series plus _sum and _count. The output is
// deterministic for a given registry state (the golden test relies on
// it). A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}

// write renders one family.
func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ.String())
	w.WriteByte('\n')

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, len(keys))
	for i, k := range keys {
		kids[i] = f.children[k]
	}
	f.mu.Unlock()

	for _, c := range kids {
		switch f.typ {
		case TypeCounter:
			w.WriteString(f.name)
			writeLabels(w, f.labels, c.values, "", 0)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatInt(int64(c.num.Load()), 10))
			w.WriteByte('\n')
		case TypeGauge, TypeFloatCounter:
			w.WriteString(f.name)
			writeLabels(w, f.labels, c.values, "", 0)
			w.WriteByte(' ')
			w.WriteString(formatFloat(math.Float64frombits(c.num.Load())))
			w.WriteByte('\n')
		case TypeHistogram:
			c.hmu.Lock()
			counts := append([]int64(nil), c.counts...)
			sum, count := c.sum, c.count
			c.hmu.Unlock()
			cum := int64(0)
			for i, b := range f.bounds {
				cum += counts[i]
				w.WriteString(f.name)
				w.WriteString("_bucket")
				writeLabels(w, f.labels, c.values, "le", b)
				w.WriteByte(' ')
				w.WriteString(strconv.FormatInt(cum, 10))
				w.WriteByte('\n')
			}
			cum += counts[len(counts)-1]
			w.WriteString(f.name)
			w.WriteString("_bucket")
			writeLabels(w, f.labels, c.values, "le", math.Inf(1))
			w.WriteByte(' ')
			w.WriteString(strconv.FormatInt(cum, 10))
			w.WriteByte('\n')
			w.WriteString(f.name)
			w.WriteString("_sum")
			writeLabels(w, f.labels, c.values, "", 0)
			w.WriteByte(' ')
			w.WriteString(formatFloat(sum))
			w.WriteByte('\n')
			w.WriteString(f.name)
			w.WriteString("_count")
			writeLabels(w, f.labels, c.values, "", 0)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatInt(count, 10))
			w.WriteByte('\n')
		}
	}
}

// writeLabels renders `{k="v",...}` — nothing when there are no labels
// and no le bound. leName is "le" for histogram bucket lines ("" to
// omit); the bound renders as "+Inf" for infinity.
func writeLabels(w *bufio.Writer, names, values []string, leName string, le float64) {
	if len(names) == 0 && leName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(leName)
		w.WriteString(`="`)
		if math.IsInf(le, 1) {
			w.WriteString("+Inf")
		} else {
			w.WriteString(formatFloat(le))
		}
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
