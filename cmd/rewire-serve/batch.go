package main

// The batch and async surfaces of the mapping daemon.
//
// POST /map/batch takes up to MaxBatch mapping requests in one body,
// fingerprints every entry up front with the result cache's canonical
// content address (rewire.CacheKey), and compiles each distinct
// fingerprint exactly once through the shared worker pool; duplicate
// entries copy the representative's result (Deduped=true, sharing its
// run_id and trace). Dedup works with or without the result cache —
// the fingerprint is pure — but with the cache on, entries already
// compiled by earlier traffic are hits too.
//
// POST /map/submit accepts one request, validates it synchronously
// (bad requests fail fast with 400), and runs it in the background
// under JobTimeout; GET /map/result/{id} polls it: 202 while running,
// 200 with the mapResponse once done, 404 once evicted or never known.
// Completed jobs retire into the same flight recorder ring as
// synchronous runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"rewire"
	"rewire/internal/obs"
)

// batchRequest is the POST /map/batch body.
type batchRequest struct {
	Requests []mapRequest `json:"requests"`
}

// batchResponse answers a batch: Results[i] corresponds to
// Requests[i], order preserved. Deduped counts entries answered by
// copying a same-fingerprint sibling.
type batchResponse struct {
	Results []mapResponse `json:"results"`
	Deduped int           `json:"deduped"`
}

// handleBatch serves POST /map/batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq batchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON body: " + err.Error()})
		return
	}
	if len(breq.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch: set requests to 1..N mapping requests"})
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds the server cap of %d entries", len(breq.Requests), s.cfg.MaxBatch)})
		return
	}
	s.mBatchReqs.Inc()
	s.mBatchEntries.Add(int64(len(breq.Requests)))

	// Parse and fingerprint every entry before compiling anything: the
	// canonical key is what collapses duplicates, and an invalid entry
	// fails only itself, not the batch.
	type parsed struct {
		g      *rewire.DFG
		cgra   *rewire.CGRA
		mapper rewire.MapperName
		key    string
		err    error
	}
	entries := make([]parsed, len(breq.Requests))
	for i := range breq.Requests {
		req := &breq.Requests[i]
		g, cgra, mapper, err := s.parseMapRequest(req)
		if err != nil {
			s.mReqs.With(strings.ToLower(req.Mapper), "invalid").Inc()
			entries[i] = parsed{err: err}
			continue
		}
		entries[i] = parsed{g: g, cgra: cgra, mapper: mapper,
			key: rewire.CacheKey(g, cgra, rewire.Options{
				Mapper: mapper, Seed: req.Seed, TimePerII: effectiveTPI(req), MaxII: req.MaxII,
			})}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// One compile per distinct fingerprint, all through the worker pool
	// concurrently; results land at their entry's index.
	results := make([]mapResponse, len(entries))
	rep := make(map[string]int, len(entries)) // fingerprint -> representative index
	var wg sync.WaitGroup
	for i := range entries {
		e := &entries[i]
		if e.err != nil {
			results[i] = mapResponse{Mapper: strings.ToLower(breq.Requests[i].Mapper), Error: e.err.Error()}
			continue
		}
		if _, dup := rep[e.key]; dup {
			continue // filled from the representative after the wait
		}
		rep[e.key] = i
		wg.Add(1)
		go func(i int, e *parsed) {
			defer wg.Done()
			runID := obs.NewRunID()
			results[i] = s.executeOne(ctx, s.lg.WithRun(runID), runID, &breq.Requests[i], e.g, e.cgra, e.mapper, nil)
		}(i, e)
	}
	wg.Wait()

	deduped := 0
	for i := range entries {
		if entries[i].err != nil {
			continue
		}
		if j := rep[entries[i].key]; j != i {
			results[i] = results[j]
			results[i].Deduped = true
			deduped++
		}
	}
	s.mBatchDeduped.Add(int64(deduped))
	s.lg.Info("batch served", "entries", len(breq.Requests), "unique", len(rep), "deduped", deduped)
	writeJSON(w, http.StatusOK, batchResponse{Results: results, Deduped: deduped})
}

// executeOne runs one validated mapping request synchronously through
// the worker pool — admission, cached compile, metrics fold, flight
// record — and returns its wire answer. ctx bounds both the admission
// wait and the run. It backs batch entries and async jobs; POST /map
// keeps its own flow for the detach-on-timeout semantics. bus, when
// non-nil, receives the run's live progress events (async jobs stream
// it via GET /map/events/{id}); the caller owns its lifecycle.
func (s *server) executeOne(ctx context.Context, lg *obs.Logger, runID string, req *mapRequest,
	g *rewire.DFG, cgra *rewire.CGRA, mapper rewire.MapperName, bus *rewire.ProgressBus) mapResponse {
	queued := time.Now()
	s.mQueued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.mQueued.Add(-1)
	case <-ctx.Done():
		s.mQueued.Add(-1)
		s.mReqs.With(string(mapper), "overload").Inc()
		lg.Warn("request expired waiting for a worker", "queue_wait_ms", time.Since(queued).Milliseconds())
		return mapResponse{RunID: runID, Mapper: string(mapper),
			Error: "no mapping worker became free within the deadline"}
	}
	s.mQueueDur.Observe(time.Since(queued).Seconds())
	s.mInflight.Add(1)
	defer func() {
		s.mInflight.Add(-1)
		<-s.sem
	}()

	opts := s.buildOpts(req, mapper, lg, bus)
	lg.Info("mapping request", "mapper", string(mapper), "kernel", g.Name,
		"arch", cgra.Name, "seed", req.Seed, "time_per_ii_ms", opts.TimePerII.Milliseconds(),
		"sweep_window", opts.SweepParallelism)
	m, res, cout, err := rewire.MapCached(ctx, g, cgra, opts)
	s.mReqs.With(string(mapper), boolOutcome(res.Success)).Inc()
	rec := s.recordRun(lg, runID, req, opts, g, cgra, res, cout)
	return buildMapResponse(runID, opts, m, res, rec, cout, err, req.Render)
}

// submitResponse is the POST /map/submit answer, and the 202 body of
// GET /map/result/{id} while the job still runs.
type submitResponse struct {
	JobID     string `json:"job_id"`
	Status    string `json:"status"` // running or done
	ResultURL string `json:"result_url"`
	// EventsURL is the job's live progress stream (Server-Sent Events);
	// see GET /map/events/{id}.
	EventsURL string `json:"events_url,omitempty"`
}

// handleSubmit serves POST /map/submit: validate now, map later.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	jobID := obs.NewRunID()
	lg := s.lg.WithRun(jobID)

	var req mapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON body: " + err.Error()})
		return
	}
	g, cgra, mapper, err := s.parseMapRequest(&req)
	if err != nil {
		s.mReqs.With(strings.ToLower(req.Mapper), "invalid").Inc()
		lg.Warn("invalid async mapping request", "err", err)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	bus := rewire.NewProgressBus(0)
	if !s.jobs.submit(jobID, bus) {
		s.mJobs.With("rejected").Inc()
		lg.Warn("job table full; submission rejected")
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("all %d job slots are running; retry later", s.cfg.JobCapacity)})
		return
	}
	s.mJobs.With("submitted").Inc()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
		defer cancel()
		resp := s.executeOne(ctx, lg, jobID, &req, g, cgra, mapper, bus)
		// Closing the bus is what ends every live SSE stream; late
		// subscribers still replay the retained tail. The published total
		// is read before more subscribers can race the counter.
		published, _ := bus.Stats()
		bus.Close()
		s.mDiagProgress.Add(int64(published))
		s.jobs.complete(jobID, resp)
		s.mJobs.With("completed").Inc()
		lg.Info("async job done", "success", resp.Success, "cached", resp.Cached,
			"progress_events", published)
	}()
	writeJSON(w, http.StatusAccepted, submitResponse{
		JobID: jobID, Status: "running", ResultURL: "/map/result/" + jobID,
		EventsURL: "/map/events/" + jobID,
	})
}

// handleEvents serves GET /map/events/{id}: the async job's progress
// stream as Server-Sent Events. Retained events replay first (the bus
// drops oldest beyond its capacity), then live events stream until the
// job ends; each SSE id is the event's monotonic sequence number, so a
// reconnecting client can detect gaps. Works on completed jobs too:
// the retained tail replays, then the stream ends.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	bus := s.jobs.bus(id)
	if bus == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("job %q is unknown or already evicted (table keeps the last %d jobs)", id, s.cfg.JobCapacity)})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := bus.Subscribe(64)
	defer cancel()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				fl.Flush()
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves GET /map/result/{id}.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, running, ok := s.jobs.get(id)
	switch {
	case !ok:
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("job %q is unknown or already evicted (table keeps the last %d jobs)", id, s.cfg.JobCapacity)})
	case running:
		writeJSON(w, http.StatusAccepted, submitResponse{
			JobID: id, Status: "running", ResultURL: "/map/result/" + id,
		})
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// jobTable tracks async jobs: bounded to capacity entries total, with
// completed jobs evicted oldest-first to make room for new
// submissions. A submission is rejected only when every slot is held
// by a still-running job.
type jobTable struct {
	mu       sync.Mutex
	jobs     map[string]*asyncJob
	doneIDs  []string // completed job IDs, oldest first
	capacity int
}

type asyncJob struct {
	running bool
	resp    mapResponse
	// progress is the job's live event bus; it stays readable after
	// completion (retained events replay to late subscribers) and is
	// dropped with the job at eviction.
	progress *rewire.ProgressBus
}

func newJobTable(capacity int) *jobTable {
	return &jobTable{jobs: make(map[string]*asyncJob), capacity: capacity}
}

// submit registers a running job with its progress bus, evicting
// completed jobs as needed. It returns false when the table is full of
// running jobs.
func (t *jobTable) submit(id string, bus *rewire.ProgressBus) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.jobs) >= t.capacity && len(t.doneIDs) > 0 {
		delete(t.jobs, t.doneIDs[0])
		t.doneIDs = t.doneIDs[1:]
	}
	if len(t.jobs) >= t.capacity {
		return false
	}
	t.jobs[id] = &asyncJob{running: true, progress: bus}
	return true
}

// bus returns a job's progress bus, nil when the job is unknown.
func (t *jobTable) bus(id string) *rewire.ProgressBus {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return nil
	}
	return j.progress
}

// complete retires a job with its result.
func (t *jobTable) complete(id string, resp mapResponse) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return // evicted while running cannot happen; defensive
	}
	j.running = false
	j.resp = resp
	t.doneIDs = append(t.doneIDs, id)
}

// get returns a job's result copy and whether it is still running.
func (t *jobTable) get(id string) (mapResponse, bool, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return mapResponse{}, false, false
	}
	return j.resp, j.running, true
}
