// Package placer provides the candidate-enumeration and scheduling-window
// helpers shared by all three mappers: which (PE, time) slots a DFG node
// may occupy given the placements of its already-mapped neighbours.
package placer

import (
	"math"

	"rewire/internal/dfg"
	"rewire/internal/mapping"
)

// Window is the inclusive absolute-time range a node may execute in.
type Window struct {
	Lo, Hi int
}

// Empty reports whether no time satisfies the window.
func (w Window) Empty() bool { return w.Lo > w.Hi }

// TimeWindow computes the schedule window for node v implied by its
// placed neighbours: every placed parent p with edge distance d forces
// T_v >= T_p + 1 - d*II, every placed child c forces T_v <= T_c - 1 + d*II.
// Unconstrained sides fall back to [base, base+slack]; the result is
// clamped to at most slack cycles wide starting from the lower bound.
func TimeWindow(s *mapping.Session, v, base, slack int) Window {
	g := s.M.DFG
	ii := s.M.II
	lo := math.MinInt32
	hi := math.MaxInt32
	for _, eid := range g.InEdges(v) {
		e := g.Edges[eid]
		if e.From == v {
			continue // self recurrence constrains nothing here
		}
		if s.M.Placed(e.From) {
			if b := s.M.Place[e.From].Time + dfg.OpLatency - e.Dist*ii; b > lo {
				lo = b
			}
		}
	}
	for _, eid := range g.OutEdges(v) {
		e := g.Edges[eid]
		if e.To == v {
			continue
		}
		if s.M.Placed(e.To) {
			if b := s.M.Place[e.To].Time - dfg.OpLatency + e.Dist*ii; b < hi {
				hi = b
			}
		}
	}
	if lo == math.MinInt32 {
		lo = base
	}
	if hi == math.MaxInt32 {
		hi = lo + slack
	}
	if hi > lo+slack {
		hi = lo + slack
	}
	return Window{Lo: lo, Hi: hi}
}

// Candidates lists every (PE, T) slot in the window where v could be
// placed under the current occupancy (free compatible FU, bank port for
// memory ops). The order is deterministic: time-major, then PE index.
func Candidates(s *mapping.Session, v int, w Window) []mapping.Placement {
	var out []mapping.Placement
	numPEs := s.M.Arch.NumPEs()
	for T := w.Lo; T <= w.Hi; T++ {
		for pe := 0; pe < numPEs; pe++ {
			if s.CanPlace(v, pe, T) {
				out = append(out, mapping.Placement{PE: pe, Time: T})
			}
		}
	}
	return out
}

// DefaultSlack is the scheduling window width the mappers explore per
// node: one full II of modulo slots plus room for routing detours.
func DefaultSlack(ii int) int { return ii + 3 }
