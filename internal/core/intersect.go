package core

import (
	"slices"

	"rewire/internal/placer"
)

// pcand is one placement candidate for one cluster node: a PE plus the
// absolute execution cycle implied by the intersected tuples (the
// "available execution cycle" Algorithm 2 sorts by).
type pcand struct {
	pe int
	T  int
}

// srcConstraint is one edge between a cluster node and a propagation
// anchor, either direct (the anchor is the literal parent/child) or
// representative (the anchor stands in for an unmapped relative found by
// DFS, §IV-D).
type srcConstraint struct {
	prop *propagation
	// For direct constraints, the implied execution time for a tuple with
	// L cycles is srcTime + L - dist*II (forward) or srcTime - L + dist*II
	// (backward); dist is the edge's inter-iteration distance.
	dist   int
	direct bool
}

// intersect computes PCandidates(v) for every v in U by intersecting the
// execution times implied by the propagation tuples of all of v's
// sources (Eq. 1): a PE qualifies only if every direct source has a
// tuple arriving there at the same implied execution cycle, and every
// representative source can reach it no later (forward) / no earlier
// (backward).
//
// The returned map and the candidate slices in it live in the amender's
// scratch: they stay valid through placement generation of this cluster
// iteration and are recycled by the next intersect call.
func (a *amender) intersect(u *cluster, props map[int]*propagation) map[int][]pcand {
	scr := a.scratch()
	out := scr.cands
	clear(out)
	for len(scr.candBufs) < len(u.nodes) {
		scr.candBufs = append(scr.candBufs, nil)
	}
	for i, v := range u.nodes {
		scr.candBufs[i] = a.candidatesFor(v, u, props, scr.candBufs[i][:0])
		out[v] = scr.candBufs[i]
	}
	return out
}

func (a *amender) candidatesFor(v int, u *cluster, props map[int]*propagation, cands []pcand) []pcand {
	fwd, bwd := a.sourceConstraints(v, u, props)
	numPEs := a.sess.M.Arch.NumPEs()

	hasDirect := false
	for _, c := range fwd {
		if c.direct {
			hasDirect = true
			break
		}
	}
	if !hasDirect {
		for _, c := range bwd {
			if c.direct {
				hasDirect = true
				break
			}
		}
	}

	for pe := 0; pe < numPEs; pe++ {
		var times []int
		switch {
		case hasDirect:
			times = a.directTimes(pe, fwd, bwd)
		case len(fwd)+len(bwd) > 0:
			times = a.repOnlyTimes(pe, fwd, bwd)
		default:
			// Fully unanchored node: fall back to the free slots of a
			// schedule window (handled after the loop for all PEs).
			continue
		}
		for _, T := range times {
			if a.sess.CanPlace(v, pe, T) {
				cands = append(cands, pcand{pe: pe, T: T})
			}
		}
	}
	if len(fwd)+len(bwd) == 0 {
		cands = a.fallbackCandidates(v, cands[:0])
	}
	// Algorithm 2 line 3: sort candidates by available execution cycle.
	// PEs within one cycle are shuffled so concurrently-placed cluster
	// nodes spread over the fabric instead of all contending for the
	// lowest-numbered PE. The comparator is a strict total order over the
	// unique (T, pe) pairs, so the (unstable) sort result is unique.
	perm := a.scratch().perm(a.rng, numPEs)
	slices.SortFunc(cands, func(x, y pcand) int {
		if x.T != y.T {
			if x.T < y.T {
				return -1
			}
			return 1
		}
		if perm[x.pe] != perm[y.pe] {
			if perm[x.pe] < perm[y.pe] {
				return -1
			}
			return 1
		}
		return 0
	})
	if len(cands) > a.opt.MaxCandidatesPerNode {
		cands = cands[:a.opt.MaxCandidatesPerNode]
	}
	return cands
}

// sourceConstraints gathers v's forward (parent-side) and backward
// (child-side) constraints. Direct edges to mapped anchors give exact
// constraints; edges to unmapped relatives are represented by the
// anchors a DFS reaches through unmapped nodes. The returned slices are
// scratch-backed and stay valid until the next call.
func (a *amender) sourceConstraints(v int, u *cluster, props map[int]*propagation) (fwd, bwd []srcConstraint) {
	scr := a.scratch()
	fwd, bwd = scr.fwdBuf[:0], scr.bwdBuf[:0]
	for _, eid := range a.g.InEdges(v) {
		e := a.g.Edges[eid]
		if e.From == v {
			continue // self recurrence: no placement constraint
		}
		if a.sess.M.Placed(e.From) {
			if p := propOf(props, e.From, true); p != nil {
				fwd = append(fwd, srcConstraint{prop: p, dist: e.Dist, direct: true})
			}
		} else {
			for _, s := range a.repAnchors(e.From, true) {
				if p := propOf(props, s, true); p != nil {
					fwd = append(fwd, srcConstraint{prop: p, direct: false})
				}
			}
		}
	}
	for _, eid := range a.g.OutEdges(v) {
		e := a.g.Edges[eid]
		if e.To == v {
			continue
		}
		if a.sess.M.Placed(e.To) {
			if p := propOf(props, e.To, false); p != nil {
				bwd = append(bwd, srcConstraint{prop: p, dist: e.Dist, direct: true})
			}
		} else {
			for _, s := range a.repAnchors(e.To, false) {
				if p := propOf(props, s, false); p != nil {
					bwd = append(bwd, srcConstraint{prop: p, direct: false})
				}
			}
		}
	}
	scr.fwdBuf, scr.bwdBuf = fwd, bwd
	return fwd, bwd
}

// repAnchors finds the mapped anchors that represent an unmapped
// relative: a DFS through unmapped nodes towards ancestors (forward) or
// descendants (backward), stopping at the first mapped node on each
// branch. At most two anchors are kept to bound the constraint count.
// The result is scratch-backed: consume it before the next call.
func (a *amender) repAnchors(start int, towardsParents bool) []int {
	scr := a.scratch()
	epoch := scr.beginMark()
	out := scr.repOut[:0]
	stack := scr.repStack[:0]
	scr.mark[start] = epoch
	stack = append(stack, start)
	for len(stack) > 0 && len(out) < 2 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var neigh []int
		if towardsParents {
			neigh = a.g.Parents(v)
		} else {
			neigh = a.g.Children(v)
		}
		for _, w := range neigh {
			if scr.mark[w] == epoch {
				continue
			}
			scr.mark[w] = epoch
			if a.sess.M.Placed(w) {
				out = append(out, w)
				if len(out) >= 2 {
					break
				}
			} else {
				stack = append(stack, w)
			}
		}
	}
	scr.repOut, scr.repStack = out, stack
	return out
}

// appendImpliedTimes appends, in ascending order, the execution times a
// direct constraint implies at pe. Tuple lists are sorted ascending by
// cycles and cycle counts are distinct per (PE, constraint), so the
// forward mapping T = srcTime + L - dist*II is strictly increasing and
// the backward one strictly decreasing (hence the reverse walk): each
// produced list is strictly ascending with no duplicates.
func appendImpliedTimes(dst []int, c srcConstraint, pe, ii int) []int {
	list := c.prop.cyclesAt(pe)
	if c.prop.forward {
		for _, ar := range list {
			dst = append(dst, c.prop.srcTime+ar.cycles-c.dist*ii)
		}
	} else {
		for i := len(list) - 1; i >= 0; i-- {
			dst = append(dst, c.prop.srcTime-list[i].cycles+c.dist*ii)
		}
	}
	return dst
}

// directTimes intersects the execution times implied by all direct
// constraints at one PE, then filters by the loose representative
// inequalities. The first direct constraint seeds the time set; each
// further direct constraint intersects it. Because each constraint's
// implied-time list is strictly ascending, the set intersection is a
// two-pointer merge over scratch slices — same ascending result the
// old map-then-sort produced, without the per-PE allocations. The
// returned slice is scratch-backed and valid until the next call.
func (a *amender) directTimes(pe int, fwd, bwd []srcConstraint) []int {
	scr := a.scratch()
	ii := a.sess.M.II
	times := scr.timesA[:0]
	seeded := false
	intersectWith := func(c srcConstraint) {
		if !seeded {
			times = appendImpliedTimes(times, c, pe, ii)
			seeded = true
			return
		}
		other := appendImpliedTimes(scr.timesB[:0], c, pe, ii)
		scr.timesB = other
		k, i, j := 0, 0, 0
		for i < len(times) && j < len(other) {
			switch {
			case times[i] < other[j]:
				i++
			case times[i] > other[j]:
				j++
			default:
				times[k] = times[i]
				k++
				i++
				j++
			}
		}
		times = times[:k]
	}
	for _, c := range fwd {
		if c.direct {
			intersectWith(c)
		}
	}
	for _, c := range bwd {
		if c.direct {
			intersectWith(c)
		}
	}
	k := 0
	for _, T := range times {
		if a.repsAdmit(pe, T, fwd, bwd) {
			times[k] = T
			k++
		}
	}
	times = times[:k]
	scr.timesA = times
	return times
}

// repOnlyTimes derives candidate times when v has only representative
// constraints: every time in the span the representatives admit. The
// returned slice is scratch-backed and valid until the next call.
func (a *amender) repOnlyTimes(pe int, fwd, bwd []srcConstraint) []int {
	lo, hi := a.repSpan(pe, fwd, bwd)
	if lo > hi {
		return nil
	}
	if hi-lo > 3*a.sess.M.II {
		hi = lo + 3*a.sess.M.II
	}
	scr := a.scratch()
	out := scr.timesA[:0]
	for T := lo; T <= hi; T++ {
		out = append(out, T)
	}
	scr.timesA = out
	return out
}

// repsAdmit applies the loose representative filters: a forward
// representative must have some tuple at pe arriving no later than T, a
// backward one some tuple departing no earlier than T.
func (a *amender) repsAdmit(pe, T int, fwd, bwd []srcConstraint) bool {
	for _, c := range fwd {
		if c.direct {
			continue
		}
		min := c.prop.minCycles(pe)
		if min < 0 || c.prop.srcTime+min > T {
			return false
		}
	}
	for _, c := range bwd {
		if c.direct {
			continue
		}
		min := c.prop.minCycles(pe)
		if min < 0 || c.prop.srcTime-min < T {
			return false
		}
	}
	return true
}

// repSpan derives the admissible [lo, hi] execution range at pe from
// representative constraints alone.
func (a *amender) repSpan(pe int, fwd, bwd []srcConstraint) (lo, hi int) {
	const big = int(^uint(0) >> 2)
	lo, hi = -big, big
	for _, c := range fwd {
		min := c.prop.minCycles(pe)
		if min < 0 {
			return 1, 0
		}
		if b := c.prop.srcTime + min; b > lo {
			lo = b
		}
	}
	for _, c := range bwd {
		min := c.prop.minCycles(pe)
		if min < 0 {
			return 1, 0
		}
		if b := c.prop.srcTime - min; b < hi {
			hi = b
		}
	}
	if lo == -big && hi == big {
		return 1, 0
	}
	if lo == -big {
		lo = hi - 2*a.sess.M.II
	}
	if hi == big {
		hi = lo + 2*a.sess.M.II
	}
	return lo, hi
}

// fallbackCandidates handles nodes with no reachable anchors at all (an
// entirely unmapped component): any free compatible slot in a default
// schedule window, appended to out.
func (a *amender) fallbackCandidates(v int, out []pcand) []pcand {
	base := 0
	if asap, err := a.g.ASAP(a.sess.M.II); err == nil {
		base = asap[v]
	}
	w := placer.TimeWindow(a.sess, v, base, placer.DefaultSlack(a.sess.M.II))
	for _, pl := range placer.Candidates(a.sess, v, w) {
		out = append(out, pcand{pe: pl.PE, T: pl.Time})
	}
	return out
}
