package placer

import (
	"testing"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
)

func triad(t *testing.T, ii int) *mapping.Session {
	t.Helper()
	g := dfg.New("triad")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpAdd)
	c := g.AddNode("c", dfg.OpStore)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 1)
	return mapping.NewSession(mapping.New(g, arch.New4x4(2), ii))
}

func TestTimeWindowUnconstrained(t *testing.T) {
	s := triad(t, 2)
	w := TimeWindow(s, 1, 5, 3)
	if w.Lo != 5 || w.Hi != 8 {
		t.Fatalf("window = %+v, want [5,8]", w)
	}
}

func TestTimeWindowParentBound(t *testing.T) {
	s := triad(t, 2)
	if err := s.PlaceNode(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	w := TimeWindow(s, 1, 0, 3)
	if w.Lo != 5 {
		t.Fatalf("lower bound = %d, want parent time+1 = 5", w.Lo)
	}
}

func TestTimeWindowChildBound(t *testing.T) {
	s := triad(t, 2)
	if err := s.PlaceNode(2, 0, 9); err != nil {
		t.Fatal(err)
	}
	w := TimeWindow(s, 1, 0, 20)
	if w.Hi != 8 {
		t.Fatalf("upper bound = %d, want child time-1 = 8", w.Hi)
	}
}

func TestTimeWindowRecurrenceEdgeUsesDistance(t *testing.T) {
	s := triad(t, 3)
	// Edge c->a has distance 1: placing a constrains c via
	// T_c <= T_a - 1 + II... from c's perspective (child a placed):
	if err := s.PlaceNode(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	w := TimeWindow(s, 2, 0, 20)
	if w.Hi != 2-1+3 {
		t.Fatalf("Hi = %d, want %d", w.Hi, 2-1+3)
	}
}

func TestTimeWindowEmpty(t *testing.T) {
	s := triad(t, 2)
	if err := s.PlaceNode(0, 0, 10); err != nil { // parent forces >= 11
		t.Fatal(err)
	}
	if err := s.PlaceNode(2, 4, 5); err != nil { // child forces <= 4
		t.Fatal(err)
	}
	if w := TimeWindow(s, 1, 0, 20); !w.Empty() {
		t.Fatalf("window should be empty, got %+v", w)
	}
}

func TestCandidatesRespectOccupancyAndMemRules(t *testing.T) {
	g := dfg.New("m")
	g.AddNode("ld", dfg.OpLoad)
	s := mapping.NewSession(mapping.New(g, arch.New4x4(1), 1))
	cands := Candidates(s, 0, Window{Lo: 0, Hi: 0})
	// Loads may only sit on the 4 left-column PEs.
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	for _, c := range cands {
		if c.PE%4 != 0 {
			t.Fatalf("candidate %v not in memory column", c)
		}
	}
	// Occupy one memory FU: one fewer candidate.
	if err := s.PlaceNode(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	g2 := dfg.New("m2")
	g2.AddNode("ld2", dfg.OpLoad)
	// Same session cannot place a foreign graph's node; instead re-check
	// candidates for a hypothetical second load via CanPlace semantics.
	s.UnplaceNode(0)
	if err := s.PlaceNode(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	_ = g2
}

func TestCandidatesOrderDeterministic(t *testing.T) {
	s := triad(t, 2)
	a := Candidates(s, 0, Window{Lo: 0, Hi: 1})
	b := Candidates(s, 0, Window{Lo: 0, Hi: 1})
	if len(a) != len(b) || len(a) != 32 {
		t.Fatalf("lengths %d/%d, want 32 (16 PEs x 2 times)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
	// Time-major ordering.
	if a[0].Time != 0 || a[len(a)-1].Time != 1 {
		t.Fatal("not time-major")
	}
}

func TestDefaultSlack(t *testing.T) {
	if DefaultSlack(4) != 7 {
		t.Fatalf("DefaultSlack(4) = %d", DefaultSlack(4))
	}
}
