package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/config"
	"rewire/internal/core"
	"rewire/internal/dfg"
	"rewire/internal/kernelir"
	"rewire/internal/kernels"
	"rewire/internal/pathfinder"
	"rewire/internal/sa"
)

// mapAndConfig maps a DFG with PF* (fast beam) and generates its config.
func mapAndConfig(t *testing.T, g *dfg.Graph, a *arch.CGRA) *config.Config {
	t.Helper()
	m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: 1, TimePerII: 3 * time.Second, CandidateBeam: 8})
	if m == nil {
		t.Fatalf("mapping failed: %v", res)
	}
	c, err := config.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fromIR(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	prog, err := kernelir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := kernelir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVerifySimpleStream(t *testing.T) {
	g := fromIR(t, "kernel k\nc[i] = a[i] + b[i]\n")
	c := mapAndConfig(t, g, arch.New4x4(2))
	if err := Verify(c, 8); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAccumulator(t *testing.T) {
	g := fromIR(t, "kernel k\ns += a[i]\nout[i] = s\n")
	c := mapAndConfig(t, g, arch.New4x4(2))
	if err := Verify(c, 10); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyNonCommutativeOps(t *testing.T) {
	// Subtraction and shifts catch swapped operand muxes instantly.
	g := fromIR(t, `
kernel k
t = a[i] - b[i]
u = t >> 1
v = b[i] - a[i]
out[i] = u - v
out2[i] = v
`)
	c := mapAndConfig(t, g, arch.New4x4(2))
	if err := Verify(c, 8); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDelayedReads(t *testing.T) {
	g := fromIR(t, `
kernel k
t = a[i] + a[i+1]
s += t * t
out[i] = s + t@2
`)
	c := mapAndConfig(t, g, arch.New4x4(4))
	if err := Verify(c, 12); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySelectAndMinMax(t *testing.T) {
	g := fromIR(t, `
kernel k
param thresh
c = cmp(a[i], b[i])
out[i] = sel(c, a[i], b[i])
out2[i] = max(a[i], b[i]) - min(a[i], b[i])
`)
	c := mapAndConfig(t, g, arch.New4x4(2))
	if err := Verify(c, 8); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRepresentativeKernelsAllMappers(t *testing.T) {
	a := arch.New4x4(4)
	for _, name := range []string{"mvt", "fft", "viterbi"} {
		g := kernels.MustLoad(name)
		// PF* (fast variant).
		c := mapAndConfig(t, g, a)
		if err := Verify(c, 6); err != nil {
			t.Errorf("%s via PF*: %v", name, err)
		}
		// Rewire.
		if m, res := core.Map(g, a, core.Options{Seed: 1, TimePerII: 2 * time.Second}); m != nil {
			cfg, err := config.Generate(m)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := Verify(cfg, 6); err != nil {
				t.Errorf("%s via Rewire: %v", name, err)
			}
		} else {
			t.Logf("%s: Rewire found no mapping in budget (%v)", name, res)
		}
		// SA.
		if m, _ := sa.Map(g, a, sa.Options{Seed: 1, TimePerII: 2 * time.Second}); m != nil {
			cfg, err := config.Generate(m)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := Verify(cfg, 6); err != nil {
				t.Errorf("%s via SA: %v", name, err)
			}
		}
	}
}

func TestRunTraceLengths(t *testing.T) {
	g := fromIR(t, "kernel k\nout[i] = a[i] + b[i]\nout2[i] = a[i] - b[i]\n")
	c := mapAndConfig(t, g, arch.New4x4(2))
	tr, err := Run(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 2 {
		t.Fatalf("store nodes = %d, want 2", len(tr.Stores))
	}
	for node, vals := range tr.Stores {
		if len(vals) != 5 {
			t.Fatalf("node %d: %d stores, want 5", node, len(vals))
		}
	}
	if _, err := Run(c, -1); err == nil {
		t.Fatal("negative iterations accepted")
	}
}

func TestVerifyDetectsCorruptedConfig(t *testing.T) {
	g := fromIR(t, "kernel k\nout[i] = a[i] - b[i]\n")
	c := mapAndConfig(t, g, arch.New4x4(2))
	// Swap the subtraction's operand muxes: the trace must differ.
	var pe, tt int
	found := false
	for p := range c.PEs {
		for ts := range c.PEs[p] {
			if c.PEs[p][ts].Node >= 0 && c.PEs[p][ts].Op == dfg.OpSub {
				pe, tt = p, ts
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no sub in config")
	}
	ops := c.PEs[pe][tt].Operands
	ops[0], ops[1] = ops[1], ops[0]
	err := Verify(c, 6)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestOppositeDir(t *testing.T) {
	pairs := map[arch.Dir]arch.Dir{
		arch.North: arch.South, arch.South: arch.North,
		arch.East: arch.West, arch.West: arch.East,
	}
	for d, o := range pairs {
		if oppositeDir(d) != o {
			t.Fatalf("opposite(%v) = %v", d, oppositeDir(d))
		}
	}
}

// Property-style sweep: random IR kernels map, configure, and verify.
func TestPropRandomKernelsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	rng := rand.New(rand.NewSource(11))
	a := arch.New4x4(4)
	for trial := 0; trial < 10; trial++ {
		src := randomKernel(rng)
		g := fromIR(t, src)
		m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: int64(trial), TimePerII: 2 * time.Second, CandidateBeam: 8})
		if m == nil {
			t.Logf("trial %d: unmappable (%v)\n%s", trial, res, src)
			continue
		}
		c, err := config.Generate(m)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if err := Verify(c, 7); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
	}
}

// randomKernel produces a small valid IR kernel with mixed op kinds,
// accumulators, and delayed reads.
func randomKernel(rng *rand.Rand) string {
	ops := []string{"+", "-", "*", "&", "^", ">>"}
	var b strings.Builder
	b.WriteString("kernel rnd\n")
	b.WriteString("t0 = a[i] + b[i]\n")
	n := 2 + rng.Intn(5)
	for s := 1; s <= n; s++ {
		prev := rng.Intn(s)
		op := ops[rng.Intn(len(ops))]
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "t%d = t%d %s c%d[i]\n", s, prev, op, rng.Intn(3))
		case 1:
			fmt.Fprintf(&b, "t%d = t%d %s t%d@%d\n", s, prev, op, prev, 1+rng.Intn(2))
		default:
			fmt.Fprintf(&b, "t%d = max(t%d, d[i-%d])\n", s, prev, rng.Intn(2))
		}
	}
	fmt.Fprintf(&b, "s += t%d\nout[i] = s\nout2[i] = t%d\n", n, n)
	return b.String()
}
