package mrrg

import (
	"sync"
	"testing"

	"rewire/internal/arch"
)

func TestSharedReturnsSameGraph(t *testing.T) {
	a := arch.New4x4(4)
	g1 := Shared(a, 4)
	g2 := Shared(a, 4)
	if g1 != g2 {
		t.Fatal("same arch+II built two graphs")
	}
	if g3 := Shared(a, 5); g3 == g1 {
		t.Fatal("different II shared a graph")
	}
	// An equivalent but distinct CGRA value hits too: the key is the
	// architecture fingerprint, not the pointer.
	if g4 := Shared(arch.New4x4(4), 4); g4 != g1 {
		t.Fatal("equal architecture missed the cache")
	}
}

func TestSharedHitAllocatesNoGraph(t *testing.T) {
	a := arch.New4x4(4)
	Shared(a, 3) // warm
	allocs := testing.AllocsPerRun(100, func() {
		Shared(a, 3)
	})
	// A hit costs only the fingerprint string; a Graph build costs
	// thousands of allocations. Anything beyond a handful means the
	// cache missed.
	if allocs > 4 {
		t.Fatalf("cache hit allocated %.0f objects per run", allocs)
	}
}

func TestSharedConcurrent(t *testing.T) {
	a := arch.New8x8(4)
	var wg sync.WaitGroup
	got := make([]*Graph, 32)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = Shared(a, 7)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different graph", i)
		}
	}
}

func TestCacheStatsMove(t *testing.T) {
	h0, m0 := CacheStats()
	a := arch.New("cachestats", 3, 3, 2, 2, 0)
	Shared(a, 2)
	Shared(a, 2)
	h1, m1 := CacheStats()
	if m1-m0 < 1 {
		t.Fatalf("miss not counted: %d -> %d", m0, m1)
	}
	if h1-h0 < 1 {
		t.Fatalf("hit not counted: %d -> %d", h0, h1)
	}
}

// TestStateRecycleReuse checks the sync.Pool contract: a recycled state
// comes back blank (as NewState promises) even after heavy mutation.
func TestStateRecycleReuse(t *testing.T) {
	g := Shared(arch.New4x4(2), 3)
	for round := 0; round < 8; round++ {
		s := NewState(g)
		for n := Node(0); int(n) < g.NumNodes(); n++ {
			if occ, _ := s.Occupant(n); occ != NoNet {
				t.Fatalf("round %d: recycled state not blank at %s", round, g.String(n))
			}
		}
		// Dirty a swath of resources, then recycle.
		for n := Node(0); int(n) < g.NumNodes(); n += 3 {
			if g.Valid(n) && s.Free(n) {
				if err := s.Reserve(n, Net(round), round%3); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Recycle()
	}
}
