package arch

import "strings"

// OpClass groups operations by the functional-unit feature they need.
// Homogeneous CGRAs support every class on every PE; heterogeneous
// fabrics (REVAMP-style) strip expensive units — multipliers, dividers —
// from most PEs to save area.
type OpClass uint8

// Operation classes.
const (
	// ClassALU covers add/sub, logic, shifts, compare and select.
	ClassALU OpClass = iota
	// ClassMul covers multiplication.
	ClassMul
	// ClassDiv covers division.
	ClassDiv
	// ClassMem covers loads and stores (also gated by MemPE).
	ClassMem
	NumOpClasses
)

// String names the class.
func (c OpClass) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassMem:
		return "mem"
	}
	return "?"
}

// CapMask is a bit set of supported OpClasses.
type CapMask uint8

// Has reports whether the mask includes class c.
func (m CapMask) Has(c OpClass) bool { return m&(1<<c) != 0 }

// With returns the mask extended by class c.
func (m CapMask) With(c OpClass) CapMask { return m | (1 << c) }

// AllCaps supports every operation class.
const AllCaps CapMask = 1<<NumOpClasses - 1

// String lists the supported classes, e.g. "alu+mul+mem".
func (m CapMask) String() string {
	var parts []string
	for c := OpClass(0); c < NumOpClasses; c++ {
		if m.Has(c) {
			parts = append(parts, c.String())
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Caps returns the capability mask of a PE. Architectures built without
// explicit capabilities are homogeneous: every PE supports everything.
func (c *CGRA) Caps(pe int) CapMask {
	if c.PECaps == nil {
		return AllCaps
	}
	return c.PECaps[pe]
}

// Supports reports whether the PE implements the class (memory class
// additionally requires MemPE).
func (c *CGRA) Supports(pe int, cl OpClass) bool {
	if cl == ClassMem && !c.MemPE[pe] {
		return false
	}
	return c.Caps(pe).Has(cl)
}

// CountSupporting returns how many PEs implement the class (memory class
// intersected with the memory-capable PEs).
func (c *CGRA) CountSupporting(cl OpClass) int {
	n := 0
	for pe := 0; pe < c.NumPEs(); pe++ {
		if c.Supports(pe, cl) {
			n++
		}
	}
	return n
}

// SetCaps makes the architecture heterogeneous: the listed PEs get the
// given mask. Call StripCaps first to initialise all PEs.
func (c *CGRA) SetCaps(mask CapMask, pes ...int) {
	c.ensureCaps()
	for _, pe := range pes {
		c.PECaps[pe] = mask
	}
}

// StripClass removes one capability class from every PE except the
// listed ones — e.g. StripClass(ClassMul, 0, 5, 10, 15) leaves
// multipliers only on the diagonal.
func (c *CGRA) StripClass(cl OpClass, keep ...int) {
	c.ensureCaps()
	keepSet := map[int]bool{}
	for _, pe := range keep {
		keepSet[pe] = true
	}
	for pe := range c.PECaps {
		if !keepSet[pe] {
			c.PECaps[pe] &^= 1 << cl
		}
	}
}

func (c *CGRA) ensureCaps() {
	if c.PECaps == nil {
		c.PECaps = make([]CapMask, c.NumPEs())
		for i := range c.PECaps {
			c.PECaps[i] = AllCaps
		}
	}
}
