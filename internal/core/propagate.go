package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rewire/internal/mrrg"
)

// propagation holds the probe flood from one source anchor: every MRRG
// resource reachable from (forward) or reaching (backward) the anchor's
// FU within the round budget, with parent pointers for path extraction,
// plus the per-PE arrival tuples.
//
// A tuple (source, direction, PE q, cycles L) means: a value produced by
// the source L cycles before consumption (forward), or consumed by the
// source L cycles after production (backward), can connect to an
// operation executing on PE q — i.e. a resource chain of length L-1
// exists between the anchor FU and q's FU. Tuples are deduplicated per
// (PE, cycles), exactly the paper's rule (same source, same routing
// cycle count, same direction → one tuple).
type propagation struct {
	source  int
	forward bool
	srcTime int // anchor's absolute execution time
	rounds  int

	g       *mrrg.Graph
	par     []int32 // state index -> predecessor state index (-1 = seed)
	visited []bool
	// arrive[pe] lists tuples sorted by cycles; endState points at the
	// final resource of the probe path for extraction. The table is
	// epoch-stamped (the PR 1 router-scratch idiom): arrive[pe] is live
	// only when arriveStamp[pe] == arriveEpoch, so a pooled propagation
	// starts with an empty table in O(1) while the per-PE tuple lists
	// keep their capacity across floods. nArrivePEs counts the PEs with
	// at least one live tuple (what len(arrive) used to report).
	arrive      [][]arrival
	arriveStamp []int64
	arriveEpoch int64
	nArrivePEs  int
	// frontA/frontB are the BFS frontier double-buffer.
	frontA, frontB []mrrg.Node
	// dedups counts tuples suppressed by the per-(PE, cycles) dedup rule;
	// a plain int because each flood is single-goroutine, folded into the
	// tracer's propagate.tuples_deduped counter afterwards.
	dedups int
}

// propPool recycles propagation headers together with their arrival
// tables and frontier buffers. Floods run on worker-pool goroutines, so
// the pool is global rather than part of amendScratch.
var propPool = sync.Pool{New: func() any { return new(propagation) }}

// getProp draws a propagation with an empty arrival table covering
// numPEs PEs.
func getProp(numPEs int) *propagation {
	p := propPool.Get().(*propagation)
	if len(p.arrive) < numPEs {
		p.arrive = make([][]arrival, numPEs)
		p.arriveStamp = make([]int64, numPEs)
		p.arriveEpoch = 0
	}
	p.arriveEpoch++
	p.nArrivePEs = 0
	p.dedups = 0
	return p
}

type arrival struct {
	cycles   int
	endState int32
}

func (p *propagation) stateIndex(n mrrg.Node, e int) int32 {
	return int32(int(n)*(p.rounds+1) + e)
}

func (p *propagation) stateNode(s int32) mrrg.Node {
	return mrrg.Node(int(s) / (p.rounds + 1))
}

// cyclesAt returns the tuple cycle counts present at PE q.
func (p *propagation) cyclesAt(q int) []arrival {
	if q >= len(p.arriveStamp) || p.arriveStamp[q] != p.arriveEpoch {
		return nil
	}
	return p.arrive[q]
}

// hasCycle reports whether a tuple with exactly the given cycle count
// exists at q, returning its arrival for path extraction.
func (p *propagation) hasCycle(q, cycles int) (arrival, bool) {
	for _, ar := range p.cyclesAt(q) {
		if ar.cycles == cycles {
			return ar, true
		}
		if ar.cycles > cycles {
			break
		}
	}
	return arrival{}, false
}

// minCycles returns the smallest tuple cycle count at q, or -1.
func (p *propagation) minCycles(q int) int {
	list := p.cyclesAt(q)
	if len(list) == 0 {
		return -1
	}
	return list[0].cycles
}

// propTask names one probe flood of a propagateAll dispatch.
type propTask struct {
	key     int // props map key (backwardKey for dual-role anchors)
	source  int
	forward bool
}

// propagateAll floods probes from every anchor of U: forward from
// Parents(U), backward from Children(U) (§IV-C). The returned map is
// keyed by anchor node ID.
//
// The map and the propagations in it are owned by the amender's scratch:
// they are invalidated by releaseProps and by the next propagateAll call
// on the same amender.
//
// The floods are independent by construction — each reads only the
// shared session (placements, occupancy, graph) and writes only its own
// propagation — and contention-blind by design (the paper continues
// propagation through resources other tuples traversed), so they run on
// a bounded worker pool. Results are bit-identical to the serial order:
// each flood is a deterministic function of (anchor, direction, rounds),
// and tasks land in pre-assigned slots regardless of completion order.
func (a *amender) propagateAll(u *cluster) map[int]*propagation {
	scr := a.scratch()
	scr.parentsBuf = a.anchorsInto(u, true, scr.parentsBuf[:0])
	scr.childrenBuf = a.anchorsInto(u, false, scr.childrenBuf[:0])
	parents, children := scr.parentsBuf, scr.childrenBuf
	rounds := a.rounds(u, parents, children)

	scr.tasks = scr.tasks[:0]
	for _, s := range parents {
		scr.tasks = append(scr.tasks, propTask{key: s, source: s, forward: true})
	}
	for _, s := range children {
		// An anchor can be both parent and child of U; the backward
		// flood is stored under the same key only if no forward one
		// exists (forward constraints are the more selective ones), so
		// keep both directions distinguishable via composite keys.
		key := s
		if sortedContains(parents, s) {
			key = backwardKey(s)
		}
		scr.tasks = append(scr.tasks, propTask{key: key, source: s, forward: false})
	}
	tasks := scr.tasks

	if cap(scr.results) < len(tasks) {
		scr.results = make([]*propagation, len(tasks))
	}
	results := scr.results[:len(tasks)]
	ps := a.tr.StartSpan(a.cur, "propagate").
		WithInt("anchors", int64(len(tasks))).WithInt("rounds", int64(rounds))
	// runTask floods one anchor under its own probe span. Span starts and
	// counter adds are tracer-synchronised, so the instrumentation is
	// worker-pool-safe; with tracing disabled every call is a nil check.
	runTask := func(i int, t propTask) {
		sp := a.tr.StartSpan(ps, "probe").
			WithInt("anchor", int64(t.source)).WithBool("forward", t.forward)
		p := a.propagate(t.source, t.forward, rounds)
		if a.tr.Enabled() {
			tuples := 0
			for q := range p.arriveStamp {
				if p.arriveStamp[q] == p.arriveEpoch {
					tuples += len(p.arrive[q])
				}
			}
			a.ctr.tuples.Add(int64(tuples))
			a.ctr.tuplesDeduped.Add(int64(p.dedups))
			sp.WithInt("tuples", int64(tuples)).WithInt("deduped", int64(p.dedups))
		}
		sp.End()
		results[i] = p
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if a.opt.SerialPropagation || workers <= 1 {
		for i, t := range tasks {
			runTask(i, t)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					runTask(i, tasks[i])
				}
			}()
		}
		wg.Wait()
	}
	ps.End()

	props := scr.props
	clear(props)
	for i, t := range tasks {
		props[t.key] = results[i]
	}
	return props
}

// releaseProps returns the flood scratch of a propagation set to the
// pools and empties the map. The propagations must not be used
// afterwards (extractPath would walk a recycled parent array); because
// the entries are deleted here, releasing the same map twice is a no-op.
func releaseProps(props map[int]*propagation) {
	for k, p := range props {
		delete(props, k)
		if p == nil {
			continue
		}
		if p.par != nil {
			putInt32Scratch(p.par)
			p.par = nil
		}
		p.g = nil
		propPool.Put(p)
	}
}

// Pools of flood scratch. A probe flood needs two NumNodes*(rounds+1)
// arrays (parent pointers and a visited set); reallocating them per
// anchor per amendment iteration dominated the allocation profile, so
// both are pooled: the visited set returns as soon as its flood
// finishes, the parent array when the cluster iteration is done with
// the propagation (releaseProps).
var (
	int32ScratchPool = sync.Pool{New: func() any { return new([]int32) }}
	boolScratchPool  = sync.Pool{New: func() any { return new([]bool) }}
)

func getInt32Scratch(n int) []int32 {
	p := int32ScratchPool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

func putInt32Scratch(s []int32) {
	int32ScratchPool.Put(&s)
}

// getBoolScratch returns an all-false slice of length n.
func getBoolScratch(n int) []bool {
	p := boolScratchPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
		return (*p)[:n]
	}
	s := (*p)[:n]
	clear(s)
	return s
}

func putBoolScratch(s []bool) {
	boolScratchPool.Put(&s)
}

// backwardKey disambiguates an anchor that needs both directions.
func backwardKey(s int) int { return -s - 1 }

// propOf fetches the propagation of anchor s in the wanted direction.
func propOf(props map[int]*propagation, s int, forward bool) *propagation {
	if p, ok := props[s]; ok && p.forward == forward {
		return p
	}
	if p, ok := props[backwardKey(s)]; ok && p.forward == forward {
		return p
	}
	return nil
}

// rounds computes the propagation round budget (§IV-C): three times the
// maximum cycle difference between Parents(U) and Children(U); when
// either side is empty, five times the longest path within U. The result
// is clamped to the router's latency bound so extracted paths stay
// routable, with a floor of II+2 so probes can always wrap one slot.
func (a *amender) rounds(u *cluster, parents, children []int) int {
	mult := a.opt.RoundsAnchored
	base := 0
	if len(parents) > 0 && len(children) > 0 {
		minP, maxC := int(^uint(0)>>1), -int(^uint(0)>>1)
		for _, p := range parents {
			if t := a.sess.M.Place[p].Time; t < minP {
				minP = t
			}
		}
		for _, c := range children {
			if t := a.sess.M.Place[c].Time; t > maxC {
				maxC = t
			}
		}
		base = maxC - minP
	} else {
		mult = a.opt.RoundsUnanchored
		base = a.g.LongestPathWithin(u.in) + 1
	}
	if base < 1 {
		base = 1
	}
	r := mult * base
	if min := a.sess.M.II + 2; r < min {
		r = min
	}
	if max := a.router.MaxLat() - 1; r > max {
		r = max
	}
	return r
}

// propagate floods probes from anchor s's FU. Forward probes walk MRRG
// successors using resources free or already held by s's own net at the
// matching phase (probes may ride s's existing route tree); backward
// probes walk predecessors over free resources (the future producer's
// net does not exist yet). Probes ignore contention BETWEEN sources —
// the paper continues propagation "even when hardware resources have
// been traversed by other propagation tuples" — which is why generated
// placements must later be verified by real routing.
func (a *amender) propagate(s int, forward bool, rounds int) *propagation {
	pl := a.sess.M.Place[s]
	states := a.sess.Graph.NumNodes() * (rounds + 1)
	p := getProp(a.sess.M.Arch.NumPEs())
	p.source = s
	p.forward = forward
	p.srcTime = pl.Time
	p.rounds = rounds
	p.g = a.sess.Graph
	p.par = getInt32Scratch(states)
	p.visited = getBoolScratch(states)
	seed := a.sess.Graph.FU(pl.PE, pl.Time)
	si := p.stateIndex(seed, 0)
	p.visited[si] = true
	p.par[si] = -1
	p.emit(seed, 0, si)

	frontier, next := p.frontA[:0], p.frontB[:0]
	frontier = append(frontier, seed)
	for e := 0; e < rounds && len(frontier) > 0; e++ {
		next = next[:0]
		for _, n := range frontier {
			cur := p.stateIndex(n, e)
			var adj []mrrg.Node
			if forward {
				adj = p.g.Succs(n)
			} else {
				adj = p.g.Preds(n)
			}
			for _, nn := range adj {
				ni := p.stateIndex(nn, e+1)
				if p.visited[ni] {
					continue
				}
				if !a.probeUsable(nn, s, forward, e+1) {
					continue
				}
				p.visited[ni] = true
				p.par[ni] = cur
				p.emit(nn, e+1, ni)
				next = append(next, nn)
			}
		}
		frontier, next = next, frontier
	}
	// Hand the (possibly grown) frontier buffers back to the pooled
	// propagation for the next flood.
	p.frontA, p.frontB = frontier, next
	// The visited set only guards the flood itself; the parent array
	// stays live for extractPath until releaseProps.
	putBoolScratch(p.visited)
	p.visited = nil
	return p
}

// probeUsable decides whether a probe may traverse resource n at step e.
func (a *amender) probeUsable(n mrrg.Node, s int, forward bool, e int) bool {
	if a.sess.Graph.Kind(n) == mrrg.KindBank {
		return false
	}
	if forward {
		return a.sess.State.Usable(n, mrrg.Net(s), e)
	}
	return a.sess.State.Free(n)
}

// emit records the arrival tuple for a visited state: a value can
// connect between the anchor and an operation on the adjacent PE with
// e+1 total cycles. Forward probes deliver to FeedsPE(n); backward
// probes connect to a producer on the resource's own PE.
func (p *propagation) emit(n mrrg.Node, e int, state int32) {
	var q int
	if p.forward {
		q = p.g.FeedsPE(n)
	} else {
		q = p.g.PE(n)
	}
	if q < 0 {
		return
	}
	cycles := e + 1
	var list []arrival
	if p.arriveStamp[q] == p.arriveEpoch {
		list = p.arrive[q]
	} else {
		// First tuple at q this flood: claim the slot, reusing the old
		// list's capacity.
		p.arriveStamp[q] = p.arriveEpoch
		list = p.arrive[q][:0]
		p.nArrivePEs++
	}
	// Dedup per (PE, cycles): BFS visits states in increasing e, so the
	// list stays sorted and the check is a tail comparison.
	if len(list) > 0 && list[len(list)-1].cycles == cycles {
		p.dedups++
		return
	}
	p.arrive[q] = append(list, arrival{cycles: cycles, endState: state})
}

// extractPath rebuilds the resource chain behind an arrival: lat-1
// resources ordered by phase (path[i] is occupied at phase i+1 relative
// to the producer). It is the "reuse of wire information" fast path —
// verification tries this chain before falling back to the router.
func (p *propagation) extractPath(ar arrival, lat int) []mrrg.Node {
	if lat <= 1 {
		return []mrrg.Node{}
	}
	path := make([]mrrg.Node, lat-1)
	state := ar.endState
	if p.forward {
		for e := lat - 1; e >= 1; e-- {
			path[e-1] = p.stateNode(state)
			state = p.par[state]
		}
	} else {
		// Backward states count from the consumer: the state at depth b
		// holds the resource at phase lat-b.
		for b := lat - 1; b >= 1; b-- {
			path[lat-1-b] = p.stateNode(state)
			state = p.par[state]
		}
	}
	return path
}
