package arch

import (
	"testing"
	"testing/quick"
)

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 {
		t.Fatalf("presets = %d, want 4", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"4x4r4", "8x8r4", "4x4r2", "4x4r1"} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
}

func Test4x4Preset(t *testing.T) {
	c := New4x4(4)
	if c.NumPEs() != 16 || c.Regs != 4 || c.Banks != 2 {
		t.Fatalf("bad 4x4 preset: %+v", c)
	}
	if c.NumMemPEs() != 4 {
		t.Fatalf("mem PEs = %d, want 4 (left column)", c.NumMemPEs())
	}
	// Left column only.
	for r := 0; r < 4; r++ {
		if !c.MemPE[c.PEIndex(r, 0)] {
			t.Fatalf("PE (%d,0) should access memory", r)
		}
		if c.MemPE[c.PEIndex(r, 3)] {
			t.Fatalf("PE (%d,3) should not access memory", r)
		}
	}
	if c.BankPorts() != 4 {
		t.Fatalf("bank ports = %d, want 4 (2 banks x 2 ports)", c.BankPorts())
	}
}

func Test8x8Preset(t *testing.T) {
	c := New8x8(4)
	if c.NumPEs() != 64 || c.Banks != 8 {
		t.Fatalf("bad 8x8 preset: %+v", c)
	}
	if c.NumMemPEs() != 16 {
		t.Fatalf("mem PEs = %d, want 16 (both outer columns)", c.NumMemPEs())
	}
}

func TestPEIndexRoundTrip(t *testing.T) {
	c := New(t.Name(), 5, 7, 1, 1, 0)
	for pe := 0; pe < c.NumPEs(); pe++ {
		r, col := c.PECoord(pe)
		if c.PEIndex(r, col) != pe {
			t.Fatalf("round trip failed for %d", pe)
		}
	}
}

func TestNeighborMesh(t *testing.T) {
	c := New4x4(1)
	// PE 5 = (1,1): all four neighbours exist.
	if c.Neighbor(5, North) != 1 || c.Neighbor(5, South) != 9 ||
		c.Neighbor(5, East) != 6 || c.Neighbor(5, West) != 4 {
		t.Fatal("interior neighbours wrong")
	}
	// Corners lose two links.
	if c.Neighbor(0, North) != -1 || c.Neighbor(0, West) != -1 {
		t.Fatal("corner must have boundary links")
	}
	if c.Neighbor(15, South) != -1 || c.Neighbor(15, East) != -1 {
		t.Fatal("far corner must have boundary links")
	}
}

func TestNeighborTorus(t *testing.T) {
	c := New("torus", 4, 4, 1, 1, 0)
	c.Torus = true
	if c.Neighbor(0, North) != 12 || c.Neighbor(0, West) != 3 {
		t.Fatalf("torus wrap wrong: N=%d W=%d", c.Neighbor(0, North), c.Neighbor(0, West))
	}
}

func TestManhattan(t *testing.T) {
	c := New4x4(1)
	if c.Manhattan(0, 15) != 6 || c.Manhattan(5, 5) != 0 || c.Manhattan(0, 3) != 3 {
		t.Fatal("Manhattan distances wrong")
	}
}

func TestDirString(t *testing.T) {
	if North.String() != "N" || East.String() != "E" || South.String() != "S" || West.String() != "W" {
		t.Fatal("direction names wrong")
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 0, 4, 1, 1) },
		func() { New("x", 4, 4, -1, 1) },
		func() { New("x", 4, 4, 1, 1, 9) }, // mem column out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Neighbor is symmetric on a mesh — if b is a's neighbour in
// direction d, then a is b's neighbour in the opposite direction.
func TestPropNeighborSymmetry(t *testing.T) {
	opposite := map[Dir]Dir{North: South, South: North, East: West, West: East}
	f := func(rowsRaw, colsRaw, peRaw uint8, dRaw uint8) bool {
		rows := 1 + int(rowsRaw%8)
		cols := 1 + int(colsRaw%8)
		c := New("p", rows, cols, 1, 1)
		pe := int(peRaw) % c.NumPEs()
		d := Dir(int(dRaw) % int(NumDirs))
		nbr := c.Neighbor(pe, d)
		if nbr < 0 {
			return true
		}
		return c.Neighbor(nbr, opposite[d]) == pe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
