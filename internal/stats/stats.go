// Package stats defines the instrumentation record every mapper fills in:
// mapping quality (II vs MII), compilation effort (wall-clock time,
// single-node remapping iterations, router work) and Rewire-specific
// counters (cluster amendments, Placement(U) verification rate). The
// evaluation harness aggregates these into the paper's figures and
// tables.
package stats

import (
	"fmt"
	"time"
)

// Result records one mapping run.
type Result struct {
	// Mapper, Kernel and Arch identify the run.
	Mapper string
	Kernel string
	Arch   string

	// Success reports whether a valid mapping was found.
	Success bool
	// II is the achieved initiation interval (meaningful when Success).
	II int
	// MII is the theoretical minimum II for this kernel/architecture.
	MII int

	// RemapIterations counts single-node remapping iterations for PF* and
	// SA (each iteration unmaps one node), matching Table I of the paper.
	RemapIterations int
	// ClusterAmendments counts Rewire's multi-node amendment rounds (one
	// per cluster mapped in one shot); Rewire's analogue of remapping.
	ClusterAmendments int
	// PlacementsTried counts candidate Placement(U) combinations Rewire
	// enumerated, and candidate evaluations for PF*/SA.
	PlacementsTried int64
	// VerifyAttempts / VerifySuccesses measure Rewire's Placement(U)
	// routing-verification success rate (the paper reports ~95%).
	VerifyAttempts  int64
	VerifySuccesses int64
	// RouterExpansions counts priority-queue pops in the router: a
	// hardware-independent proxy for routing work.
	RouterExpansions int64

	// Duration is the mapping wall-clock time.
	Duration time.Duration
}

// Optimal reports whether the mapping achieved the theoretical MII.
func (r Result) Optimal() bool { return r.Success && r.II == r.MII }

// NearOptimal reports whether the mapping is within one of MII (the
// paper's "near-optimal" criterion includes optimal).
func (r Result) NearOptimal() bool { return r.Success && r.II-r.MII <= 1 }

// VerifyRate returns the Placement(U) verification success rate in
// [0,1], or 0 when nothing was verified.
func (r Result) VerifyRate() float64 {
	if r.VerifyAttempts == 0 {
		return 0
	}
	return float64(r.VerifySuccesses) / float64(r.VerifyAttempts)
}

// String gives a compact one-line summary.
func (r Result) String() string {
	status := fmt.Sprintf("II=%d (MII=%d)", r.II, r.MII)
	if !r.Success {
		status = fmt.Sprintf("FAILED (MII=%d)", r.MII)
	}
	return fmt.Sprintf("%-8s %-12s %-8s %s  %8.1fms  remaps=%d amendments=%d",
		r.Mapper, r.Kernel, r.Arch, status,
		float64(r.Duration.Microseconds())/1000, r.RemapIterations, r.ClusterAmendments)
}
