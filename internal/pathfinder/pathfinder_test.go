package pathfinder

import (
	"math/rand"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/stats"
)

func tinyChain() *dfg.Graph {
	g := dfg.New("tiny")
	ld := g.AddNode("ld", dfg.OpLoad)
	m1 := g.AddNode("m1", dfg.OpMul)
	a1 := g.AddNode("a1", dfg.OpAdd)
	st := g.AddNode("st", dfg.OpStore)
	g.AddEdge(ld, m1, 0)
	g.AddEdge(m1, a1, 0)
	g.AddEdge(a1, st, 0)
	g.AddEdge(a1, a1, 1) // accumulator
	return g
}

func TestMapTinyChainReachesMII(t *testing.T) {
	m, res := Map(tinyChain(), arch.New4x4(4), Options{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil || !res.Success {
		t.Fatalf("mapping failed: %v", res)
	}
	if res.II != res.MII {
		t.Fatalf("II = %d, MII = %d; tiny chain should map optimally", res.II, res.MII)
	}
	if err := mapping.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestMapIsDeterministicPerSeed(t *testing.T) {
	// The budget must never bind for run-to-run equality to hold: mvt is
	// work-bounded (the remap budget terminates each II) in well under a
	// second natively, but the race job's ~20x slowdown makes a small
	// wall-clock budget bind and the runs diverge.
	g := kernels.MustLoad("mvt")
	a := arch.New4x4(4)
	_, r1 := Map(g, a, Options{Seed: 42, TimePerII: time.Hour})
	_, r2 := Map(g, a, Options{Seed: 42, TimePerII: time.Hour})
	if r1.II != r2.II || r1.RemapIterations != r2.RemapIterations {
		t.Fatalf("same seed diverged: %v vs %v", r1, r2)
	}
}

func TestMapRespectsMaxII(t *testing.T) {
	// An unsatisfiable setup: memory kernel on a fabric whose MaxII is
	// below any feasible II. crc has RecMII 8, so MaxII 2 must fail fast.
	g := kernels.MustLoad("crc")
	m, res := Map(g, arch.New4x4(4), Options{Seed: 1, MaxII: 2, TimePerII: time.Second})
	if m != nil || res.Success {
		t.Fatal("must fail when MaxII < RecMII")
	}
}

func TestBuildInitialPlacesMostNodes(t *testing.T) {
	g := kernels.MustLoad("fft")
	a := arch.New4x4(4)
	mii := g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts())
	var res stats.Result
	sess, router := BuildInitial(mapping.New(g, a, mii+1), 1, &res)
	if router == nil {
		t.Fatal("no router")
	}
	placed := 0
	for v := range sess.M.Place {
		if sess.M.Placed(v) {
			placed++
		}
	}
	if placed < g.NumNodes()*3/4 {
		t.Fatalf("initial placement too sparse: %d/%d", placed, g.NumNodes())
	}
}

func TestRemapIterationsCounted(t *testing.T) {
	g := kernels.MustLoad("gramsch")
	_, res := Map(g, arch.New4x4(4), Options{Seed: 1, TimePerII: 2 * time.Second})
	if !res.Success {
		t.Skip("gramsch did not map in budget")
	}
	if res.RemapIterations <= 0 {
		t.Fatalf("remap iterations = %d, expected > 0 for a non-trivial kernel", res.RemapIterations)
	}
}

func TestMinHops(t *testing.T) {
	a := arch.New4x4(1)
	p := newPerII(kernels.MustLoad("gramsch"), a, 4, rand.New(rand.NewSource(1)), &stats.Result{})
	if got := p.router.NeedCycles(3, 3); got != 1 {
		t.Fatalf("same-PE forwarding = %d, want 1 cycle", got)
	}
	if got := p.router.NeedCycles(0, 15); got != 7 {
		t.Fatalf("corner-to-corner = %d, want Manhattan(6)+1", got)
	}
}

func TestMapValidatedOutputsOnPresets(t *testing.T) {
	g := kernels.MustLoad("viterbi")
	for _, a := range arch.Presets() {
		m, res := Map(g, a, Options{Seed: 3, TimePerII: 2 * time.Second})
		if m == nil {
			t.Logf("%s: no mapping (%v)", a.Name, res)
			continue
		}
		if err := mapping.Validate(m); err != nil {
			t.Fatalf("%s: invalid mapping: %v", a.Name, err)
		}
		if res.II < res.MII {
			t.Fatalf("%s: II %d below MII %d", a.Name, res.II, res.MII)
		}
	}
}
