// Package obs is the structured-logging half of the observability
// layer: a nil-safe wrapper around log/slog that the mapping pipeline
// threads through every run, plus run-ID generation so a daemon can tie
// a log line, a metrics sample and a downloadable trace back to the
// same request.
//
// The design mirrors internal/trace: a nil *Logger is the disabled
// logger, and every method on it is a single pointer check. Call sites
// in warm code guard with On() before assembling attributes, so the
// disabled path performs no interface boxing and allocates nothing
// (pinned by TestDisabledLoggerZeroAlloc and BenchmarkLoggerDisabled).
// Logging inside the mappers happens only at run/II granularity — never
// per placement, tuple or PQ pop; see docs/OBSERVABILITY.md.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Logger is a nil-safe structured logger. A nil *Logger discards
// everything; construct enabled loggers with Setup or New.
type Logger struct {
	s *slog.Logger
}

// New wraps an existing slog.Logger. A nil argument yields the
// disabled logger.
func New(s *slog.Logger) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s}
}

// Setup builds a logger writing to w with the given level ("debug",
// "info", "warn", "error") and format ("text" or "json"). Both CLIs and
// the serve daemon share this so -log-level/-log-format mean the same
// thing everywhere.
func Setup(w io.Writer, level, format string) (*Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return &Logger{s: slog.New(h)}, nil
}

// defaultLogger backs Default(); built once on first use.
var (
	defaultOnce sync.Once
	defaultLg   *Logger
)

// Default returns a shared info-level text logger on stderr: the
// fallback for library code that must report an error even when the
// caller wired no logger (e.g. a trace-export failure in eval).
func Default() *Logger {
	defaultOnce.Do(func() {
		defaultLg, _ = Setup(os.Stderr, "info", "text")
	})
	return defaultLg
}

// On reports whether the logger records anything. Guard attribute
// assembly in warm code with it, exactly like trace.Tracer.Enabled:
//
//	if lg.On() {
//		lg.Debug("ii exhausted", "ii", ii)
//	}
func (l *Logger) On() bool { return l != nil }

// Slog returns the wrapped slog.Logger (nil for the disabled logger),
// for handing to APIs that want the stdlib type.
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.s
}

// With returns a logger that adds the given attributes to every record.
// On the disabled logger it returns nil, keeping the whole chain free.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// WithRun returns a logger stamping every record with the run ID — the
// same ID the flight recorder and trace download use.
func (l *Logger) WithRun(runID string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With("run_id", runID)}
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}

// runSeq breaks ties between run IDs generated in the same nanosecond.
var runSeq atomic.Uint64

// NewRunID returns a 16-hex-char identifier, unique within a process
// and sortable-ish by creation time (high bits are wall-clock nanos).
// It deliberately avoids crypto/rand: run IDs are correlation handles,
// not secrets, and the daemon mints one per request.
func NewRunID() string {
	n := uint64(time.Now().UnixNano())<<16 | (runSeq.Add(1) & 0xffff)
	// Mix so consecutive IDs differ in more than the low nibble digits.
	n ^= rand.Uint64() & 0xffff0000
	return fmt.Sprintf("%016x", n)
}
