package arch

import "testing"

func TestHomogeneousByDefault(t *testing.T) {
	c := New4x4(2)
	for pe := 0; pe < c.NumPEs(); pe++ {
		if c.Caps(pe) != AllCaps {
			t.Fatalf("PE %d caps = %v, want all", pe, c.Caps(pe))
		}
		if !c.Supports(pe, ClassALU) || !c.Supports(pe, ClassMul) || !c.Supports(pe, ClassDiv) {
			t.Fatalf("PE %d missing compute class", pe)
		}
	}
	// Memory still gated by the column, even with AllCaps.
	if c.Supports(1, ClassMem) {
		t.Fatal("non-memory PE claims memory support")
	}
	if !c.Supports(0, ClassMem) {
		t.Fatal("memory-column PE lost memory support")
	}
}

func TestStripClass(t *testing.T) {
	c := New4x4(2)
	c.StripClass(ClassMul, 0, 5, 10, 15) // multipliers on the diagonal only
	if c.CountSupporting(ClassMul) != 4 {
		t.Fatalf("mul PEs = %d, want 4", c.CountSupporting(ClassMul))
	}
	if !c.Supports(5, ClassMul) || c.Supports(6, ClassMul) {
		t.Fatal("strip kept/removed the wrong PEs")
	}
	// Other classes untouched.
	if c.CountSupporting(ClassALU) != 16 {
		t.Fatal("ALU class damaged")
	}
}

func TestSetCaps(t *testing.T) {
	c := New4x4(2)
	c.SetCaps(CapMask(0).With(ClassALU), 3)
	if c.Supports(3, ClassMul) || !c.Supports(3, ClassALU) {
		t.Fatalf("caps = %v", c.Caps(3))
	}
	if c.Caps(4) != AllCaps {
		t.Fatal("SetCaps leaked to other PEs")
	}
}

func TestCapMaskStrings(t *testing.T) {
	if AllCaps.String() != "alu+mul+div+mem" {
		t.Fatalf("AllCaps = %q", AllCaps.String())
	}
	if CapMask(0).String() != "none" {
		t.Fatalf("empty = %q", CapMask(0).String())
	}
	if got := CapMask(0).With(ClassMul).String(); got != "mul" {
		t.Fatalf("mul mask = %q", got)
	}
}

func TestCountSupportingMemIntersection(t *testing.T) {
	c := New4x4(2) // 4 memory PEs
	if c.CountSupporting(ClassMem) != 4 {
		t.Fatalf("mem PEs = %d", c.CountSupporting(ClassMem))
	}
	c.StripClass(ClassMem, 0) // mem hardware only on PE 0
	if c.CountSupporting(ClassMem) != 1 {
		t.Fatalf("mem PEs after strip = %d", c.CountSupporting(ClassMem))
	}
}
