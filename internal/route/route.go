// Package route implements routing over the MRRG: finding a minimum-cost
// chain of routing resources of an exact latency between a producer FU
// and a consumer FU. Latency is exact because in a modulo schedule the
// consumer's execution cycle is fixed by its placement; the value must
// arrive on that cycle, not merely by it.
//
// The search runs over layered states (resource, elapsed): every MRRG
// adjacency step advances elapsed by one cycle, so a route of latency L
// visits exactly L-1 intermediate resources at elapsed 1..L-1. The cost
// of a resource may depend on the phase (= elapsed) at which it is
// crossed, which lets PathFinder-style congestion negotiation and
// strict free-only routing share one engine.
//
// The search itself is A* guided by a precomputed distance oracle
// (package dist): states that provably cannot enter the destination FU
// in the remaining cycles are pruned exactly (including over torus wrap
// links, which the old Manhattan prune over-estimated), and the queue
// priority is g + h with h an admissible, consistent lower bound on the
// remaining cost, so returned path costs equal the uninformed Dijkstra
// baseline bit for bit. See docs/PERFORMANCE.md for the argument.
package route

import (
	"math"

	"rewire/internal/dist"
	"rewire/internal/mrrg"
	"rewire/internal/trace"
)

// CostFn prices using resource n at the given phase for the net being
// routed. ok=false forbids the resource entirely. Costs must be
// non-negative.
type CostFn func(n mrrg.Node, phase int) (cost float64, ok bool)

// StrictCost returns a CostFn admitting only resources that are free or
// already held by (net, phase), at unit cost — the final, conflict-free
// routing regime used by Rewire's verification and by committed routes.
func StrictCost(st *mrrg.State, net mrrg.Net) CostFn {
	return func(n mrrg.Node, phase int) (float64, bool) {
		if !st.Usable(n, net, phase) {
			return 0, false
		}
		if occ, _ := st.Occupant(n); occ == net {
			return 0.05, true // sharing an own-net resource is nearly free
		}
		return 1, true
	}
}

// StrictSharedCost is the minimum cost StrictCost can return: the
// own-net sharing discount. It is the correct FindPath floor whenever
// the routed net may already hold resources.
const StrictSharedCost = 0.05

// Router finds exact-latency paths on one MRRG. It reuses internal
// buffers across calls, so a Router is not safe for concurrent use; give
// each goroutine its own Router (see docs/CONCURRENCY.md). The distance
// oracle it embeds is immutable and shared between routers.
//
// The hot path is allocation-free apart from the returned path slice
// (which callers retain): the search state is epoch-stamped rather than
// cleared, the priority queue is a concrete-typed heap (no interface
// boxing), and the retry ban set and duplicate detector are epoch-stamped
// scratch slices instead of per-call maps.
type Router struct {
	g      *mrrg.Graph
	oracle *dist.Oracle
	maxLat int

	dist  []float64
	from  []int32
	stamp []int32
	epoch int32
	pq    stateHeap

	// banStamp/banEpoch implement FindPath's per-call retry ban set;
	// nodeStamp/nodeEpoch back firstDuplicate. Both are per-node (not
	// per-state) scratch, stamped instead of cleared.
	banStamp  []int32
	banEpoch  int32
	nodeStamp []int32
	nodeEpoch int32

	// Expansions counts states popped from the queue across all calls;
	// the evaluation uses it as a hardware-independent work measure.
	Expansions int64

	// calls/found are tracer counters attached by Instrument; nil (the
	// default) makes FindPath's bookkeeping a pointer-check no-op.
	calls *trace.Counter
	found *trace.Counter
}

// maxRetainedPQ bounds the queue capacity a Router keeps between calls.
// One pathological search can grow the queue to the full state count;
// trimming afterwards keeps long-lived routers from pinning peak-size
// buffers.
const maxRetainedPQ = 4096

// NewRouter builds a router for g accepting latencies up to maxLat. A
// good bound is a few IIs plus the mesh diameter; latencies beyond that
// produce unprofitably long routes anyway.
func NewRouter(g *mrrg.Graph, maxLat int) *Router {
	if maxLat < 1 {
		maxLat = 1
	}
	n := g.NumNodes() * (maxLat + 1)
	return &Router{
		g:         g,
		oracle:    dist.For(g),
		maxLat:    maxLat,
		dist:      make([]float64, n),
		from:      make([]int32, n),
		stamp:     make([]int32, n),
		banStamp:  make([]int32, g.NumNodes()),
		nodeStamp: make([]int32, g.NumNodes()),
	}
}

// MaxLat returns the largest latency this router accepts.
func (r *Router) MaxLat() int { return r.maxLat }

// NeedCycles returns the exact minimum latency of any route from a
// producer executing on fromPE to a consumer executing on toPE: the
// oracle hop count plus the final cycle entering the consumer's FU.
// Unlike a Manhattan bound it is exact on torus fabrics, so placement
// feasibility checks built on it never reject a routable candidate.
func (r *Router) NeedCycles(fromPE, toPE int) int {
	return r.oracle.NeedCycles(fromPE, toPE)
}

// Instrument attaches per-call tracer counters (route.findpath.calls,
// route.findpath.found) to this router. The cost when attached is one
// atomic add per FindPath call — never per queue pop; the PQ-pop total
// stays in Expansions, which mappers fold into "route.expansions" at
// attempt boundaries. A nil tracer leaves the router uninstrumented.
func (r *Router) Instrument(tr *trace.Tracer) {
	if !tr.Enabled() {
		return
	}
	r.calls = tr.Counter("route.findpath.calls")
	r.found = tr.Counter("route.findpath.found")
}

// DefaultMaxLat is a reasonable routing-latency bound for an
// architecture at a given II: wandering longer than two full IIs plus
// the mesh diameter is never profitable in practice.
func DefaultMaxLat(rows, cols, ii int) int {
	d := rows + cols + 2*ii + 2
	if d < 8 {
		d = 8
	}
	return d
}

// state is one queue entry: cost is the exact cost paid so far (g), f is
// the queue priority g + h.
type state struct {
	node    mrrg.Node
	elapsed int32
	cost    float64
	f       float64
}

// stateLess is the deterministic queue order: ascending priority f,
// then deeper states first (on the all-tie plateaus an exact floor
// produces, this turns the search into a dive straight at the goal),
// then ascending node id. Two entries comparing equal describe the same
// state, so pop order — and therefore every returned path — is a pure
// function of the inputs.
func stateLess(a, b state) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	if a.elapsed != b.elapsed {
		return a.elapsed > b.elapsed
	}
	return a.node < b.node
}

// stateHeap is a concrete-typed binary min-heap ordered by stateLess. It
// reproduces container/heap's sift order exactly (strict-less child
// promotion) so pop order is well defined, without the per-push
// interface{} allocation.
type stateHeap []state

func (r *Router) pushState(s state) {
	h := append(r.pq, s)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !stateLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	r.pq = h
}

func (r *Router) popState() state {
	h := r.pq
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rt := l + 1; rt < n && stateLess(h[rt], h[l]) {
			m = rt
		}
		if !stateLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	r.pq = h
	return top
}

// bumpEpoch advances an epoch counter, clearing its stamp slice on the
// (astronomically rare) int32 wrap so stale stamps can never alias a
// fresh epoch.
func bumpEpoch(e *int32, stamps []int32) int32 {
	if *e == math.MaxInt32 {
		for i := range stamps {
			stamps[i] = 0
		}
		*e = 0
	}
	*e++
	return *e
}

// sidx flattens a (node, elapsed) search state into the scratch arrays.
func (r *Router) sidx(n mrrg.Node, e int) int { return int(n)*(r.maxLat+1) + e }

// FindPath returns the minimum-cost chain of lat-1 routing resources
// carrying a value from the FU node src (where the producer executes) to
// the FU node dst (where the consumer executes, lat cycles later). The
// chain excludes both FUs. ok is false if no path of that exact latency
// exists under the cost function.
//
// floor must be a lower bound on every cost the CostFn can admit; it
// feeds the A* heuristic. An exact floor (the true minimum step cost)
// collapses the whole feasible cone into one priority plateau, which the
// deterministic deeper-first tie-break then crosses in about lat
// expansions; a smaller bound is still correct, merely less informed,
// and 0 degenerates to plain Dijkstra ordering. Since every exact-
// latency completion from elapsed e takes exactly lat-e further steps of
// which only the final FU entry is free, h = (lat-1-e)*floor never
// overestimates and shrinks by at most the step cost per hop, so the
// heuristic is admissible and consistent and the returned path cost
// equals the Dijkstra minimum bit for bit (see docs/PERFORMANCE.md).
//
// The returned path never repeats a resource (a repeat would collide
// with a neighbouring iteration); when the cheapest path would repeat,
// up to three increasingly constrained retries look for a simple
// alternative.
func (r *Router) FindPath(src, dst mrrg.Node, lat int, cost CostFn, floor float64) (path []mrrg.Node, ok bool) {
	r.calls.Add(1)
	if lat < 1 || lat > r.maxLat {
		return nil, false
	}
	if floor < 0 {
		floor = 0
	}
	defer func() {
		// Keep the steady-state buffer: dropping to nil here would make
		// the next call regrow the queue from zero through O(log n)
		// reallocations.
		if cap(r.pq) > maxRetainedPQ {
			r.pq = make(stateHeap, 0, maxRetainedPQ)
		}
	}()
	ban := bumpEpoch(&r.banEpoch, r.banStamp)
	for attempt := 0; attempt < 3; attempt++ {
		p, found := r.findOnce(src, dst, lat, cost, floor, ban)
		if !found {
			return nil, false
		}
		if dup := r.firstDuplicate(p); dup != mrrg.Invalid {
			r.banStamp[dup] = ban
			continue
		}
		r.found.Add(1)
		return p, true
	}
	return nil, false
}

func (r *Router) findOnce(src, dst mrrg.Node, lat int, cost CostFn, floor float64, ban int32) ([]mrrg.Node, bool) {
	bumpEpoch(&r.epoch, r.stamp)
	dstPE := r.g.PE(dst)
	// drow[p] is the exact minimum number of mesh links from PE p to the
	// destination PE (reverse-BFS table, so torus wrap links are counted
	// correctly — the Manhattan bound used before over-estimated them and
	// silently pruned reachable exact-latency states). A value held by
	// resource n needs drow[FeedsPE(n)]+1 cycles to be inside dst's FU.
	drow := r.oracle.Row(dstPE)
	r.pq = r.pq[:0]
	if int(drow[r.g.FeedsPE(src)])+1 > lat {
		return nil, false
	}
	h0 := 0.0
	if lat > 1 {
		h0 = floor * float64(lat-1)
	}
	si := r.sidx(src, 0)
	r.stamp[si] = r.epoch
	r.dist[si] = 0
	r.from[si] = -1
	r.pushState(state{node: src, elapsed: 0, cost: 0, f: h0})

	for len(r.pq) > 0 {
		cur := r.popState()
		r.Expansions++
		ci := r.sidx(cur.node, int(cur.elapsed))
		if cur.cost > r.dist[ci] {
			continue // stale entry
		}
		if cur.node == dst && int(cur.elapsed) == lat {
			return r.reconstruct(dst, lat), true
		}
		if int(cur.elapsed) >= lat {
			continue
		}
		nextE := int(cur.elapsed) + 1
		// Remaining cost after reaching elapsed nextE: at least one floor
		// per step except the final free hop into the destination FU.
		h := 0.0
		if rem := lat - 1 - nextE; rem > 0 {
			h = floor * float64(rem)
		}
		for _, nxt := range r.g.Succs(cur.node) {
			// The final hop must be exactly the destination FU; routing
			// through other FUs mid-path is allowed (move operations).
			if nextE == lat {
				if nxt != dst {
					continue
				}
				// Entering the consumer FU costs nothing extra: the
				// consumer's own placement already reserved it.
				r.relax(nxt, nextE, cur, 0, 0)
				continue
			}
			if nxt == dst && r.g.Kind(nxt) == mrrg.KindFU {
				// Passing through the consumer FU before the arrival
				// cycle would collide with the consumer's reservation.
				continue
			}
			if nextE+int(drow[r.g.FeedsPE(nxt)])+1 > lat || r.banStamp[nxt] == ban {
				continue
			}
			c, usable := cost(nxt, nextE)
			if !usable {
				continue
			}
			r.relax(nxt, nextE, cur, c, h)
		}
	}
	return nil, false
}

// relax records a strictly better cost to (nxt, e) and queues the state
// with priority cost-so-far + h.
func (r *Router) relax(nxt mrrg.Node, e int, cur state, c, h float64) {
	ni := r.sidx(nxt, e)
	nc := cur.cost + c
	if r.stamp[ni] == r.epoch && r.dist[ni] <= nc {
		return
	}
	r.stamp[ni] = r.epoch
	r.dist[ni] = nc
	r.from[ni] = int32(r.sidx(cur.node, int(cur.elapsed)))
	r.pushState(state{node: nxt, elapsed: int32(e), cost: nc, f: nc + h})
}

func (r *Router) reconstruct(dst mrrg.Node, lat int) []mrrg.Node {
	path := make([]mrrg.Node, lat-1)
	cur := r.sidx(dst, lat)
	for e := lat - 1; e >= 1; e-- {
		cur = int(r.from[cur])
		path[e-1] = mrrg.Node(cur / (r.maxLat + 1))
	}
	return path
}

// firstDuplicate returns the first resource repeated within path, using
// the router's epoch-stamped per-node scratch instead of a per-call map.
func (r *Router) firstDuplicate(path []mrrg.Node) mrrg.Node {
	if len(path) < 2 {
		return mrrg.Invalid
	}
	seen := bumpEpoch(&r.nodeEpoch, r.nodeStamp)
	for _, n := range path {
		if r.nodeStamp[n] == seen {
			return n
		}
		r.nodeStamp[n] = seen
	}
	return mrrg.Invalid
}
