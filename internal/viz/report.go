package viz

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"rewire/internal/diag"
)

// sparkRunes are the eight sparkline levels, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders an integer series as a one-line unicode sparkline,
// scaled to the series maximum. An empty series renders empty.
func Sparkline(series []int) string {
	if len(series) == 0 {
		return ""
	}
	max := 0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		i := 0
		if max > 0 {
			i = v * (len(sparkRunes) - 1) / max
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// pePressure folds a report's contested resources into per-PE totals.
func pePressure(r *diag.Report) (press []int, max int) {
	press = make([]int, r.Rows*r.Cols)
	for _, res := range r.Contested {
		if res.PE < 0 || res.PE >= len(press) {
			continue
		}
		press[res.PE] += res.TimesContested
		if press[res.PE] > max {
			max = press[res.PE]
		}
	}
	return press, max
}

// heatRunes shade a cell from cold to hot.
var heatRunes = []rune(" ░▒▓█")

// PressureHeatmap renders the report's contested-resource pressure as
// an ASCII heatmap over the fabric grid: one cell per PE, shaded by the
// total contention charged to that PE's resources (FU, outgoing links,
// registers), with the raw count alongside. Reports with no contention
// render a note instead of an empty grid.
func PressureHeatmap(r *diag.Report) string {
	if r == nil || r.Rows == 0 || r.Cols == 0 {
		return "no fabric geometry recorded\n"
	}
	press, max := pePressure(r)
	var b strings.Builder
	fmt.Fprintf(&b, "contention pressure on %s (%dx%d), hottest PE = %d clashes:\n",
		r.Arch, r.Rows, r.Cols, max)
	if max == 0 {
		b.WriteString("  (no contention recorded)\n")
		return b.String()
	}
	for row := 0; row < r.Rows; row++ {
		b.WriteString("  ")
		for col := 0; col < r.Cols; col++ {
			p := press[row*r.Cols+col]
			i := 0
			if p > 0 {
				// Nonzero pressure always shades at least one level.
				i = 1 + p*(len(heatRunes)-2)/max
				if i >= len(heatRunes) {
					i = len(heatRunes) - 1
				}
			}
			sh := string(heatRunes[i])
			fmt.Fprintf(&b, "%s%s%4d ", sh, sh, p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderReport renders the whole post-mortem as readable ASCII: run
// outcome, per-II attempt timeline with convergence sparklines, the
// pressure heatmap, the contested-resource table and the unroutable
// edges. Safe on nil.
func RenderReport(r *diag.Report) string {
	if r == nil {
		return "no diagnostics collected\n"
	}
	var b strings.Builder
	outcome := "FAILED"
	if r.Success {
		outcome = fmt.Sprintf("mapped at II=%d", r.II)
	}
	fmt.Fprintf(&b, "post-mortem: %s on %s via %s — %s (MII=%d", r.Kernel, r.Arch, r.Mapper, outcome, r.MII)
	if r.Cached {
		b.WriteString(", served from cache")
	}
	b.WriteString(")\n")

	if len(r.Attempts) > 0 {
		b.WriteString("\nattempts:\n")
		for _, a := range r.Attempts {
			fmt.Fprintf(&b, "  II=%-3d try %-2d %-9s %7.1fms rounds=%-5d contested=%-4d %s\n",
				a.II, a.Attempt, a.Outcome, a.DurMS, a.Rounds, a.Contested, Sparkline(a.Convergence))
		}
	}

	b.WriteByte('\n')
	b.WriteString(PressureHeatmap(r))

	if len(r.Contested) > 0 {
		b.WriteString("\nmost contested resources:\n")
		for _, res := range r.Contested {
			fmt.Fprintf(&b, "  %-18s %4dx", res.Resource, res.TimesContested)
			if len(res.Contenders) > 0 {
				fmt.Fprintf(&b, "  fought over by %s", strings.Join(res.Contenders, ", "))
			}
			if res.FinalOccupant != "" {
				fmt.Fprintf(&b, "  (held by %s)", res.FinalOccupant)
			}
			b.WriteByte('\n')
		}
	}
	if len(r.Unroutable) > 0 {
		b.WriteString("\nunroutable edges:\n")
		for _, e := range r.Unroutable {
			fmt.Fprintf(&b, "  e%-3d %s -> %s (lat=%d at II=%d)\n", e.Edge, e.From, e.To, e.Latency, e.II)
		}
	}
	return b.String()
}

// RenderReportHTML renders the post-mortem as a self-contained HTML
// page: the same content as RenderReport with a colour-graded heatmap
// table. Safe on nil.
func RenderReportHTML(r *diag.Report) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>rewire post-mortem</title>\n<style>\n")
	b.WriteString(`body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}
h1{font-size:1.3em} h2{font-size:1.1em;margin-top:1.5em}
table{border-collapse:collapse} td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
.heat td{width:3em;height:3em;text-align:center;font-weight:bold}
.spark{font-family:monospace} .ok{color:#0a0} .bad{color:#c00}
`)
	b.WriteString("</style></head><body>\n")
	if r == nil {
		b.WriteString("<h1>rewire post-mortem</h1><p>no diagnostics collected</p></body></html>\n")
		return b.String()
	}
	esc := html.EscapeString
	fmt.Fprintf(&b, "<h1>%s on %s via %s</h1>\n", esc(r.Kernel), esc(r.Arch), esc(r.Mapper))
	if r.Success {
		fmt.Fprintf(&b, "<p class=\"ok\">mapped at II=%d (MII=%d)", r.II, r.MII)
	} else {
		fmt.Fprintf(&b, "<p class=\"bad\">FAILED (MII=%d)", r.MII)
	}
	if r.Cached {
		b.WriteString(" — served from cache")
	}
	b.WriteString("</p>\n")

	if len(r.Attempts) > 0 {
		b.WriteString("<h2>II attempts</h2>\n<table><tr><th>II</th><th>try</th><th>outcome</th>" +
			"<th>ms</th><th>rounds</th><th>contested</th><th>convergence</th></tr>\n")
		for _, a := range r.Attempts {
			fmt.Fprintf(&b, "<tr><td>%d</td><td>%d</td><td>%s</td><td>%.1f</td><td>%d</td><td>%d</td>"+
				"<td class=\"spark\">%s</td></tr>\n",
				a.II, a.Attempt, esc(a.Outcome), a.DurMS, a.Rounds, a.Contested, Sparkline(a.Convergence))
		}
		b.WriteString("</table>\n")
	}

	if r.Rows > 0 && r.Cols > 0 {
		press, max := pePressure(r)
		fmt.Fprintf(&b, "<h2>contention heatmap (%dx%d, hottest PE = %d clashes)</h2>\n", r.Rows, r.Cols, max)
		b.WriteString("<table class=\"heat\">\n")
		for row := 0; row < r.Rows; row++ {
			b.WriteString("<tr>")
			for col := 0; col < r.Cols; col++ {
				p := press[row*r.Cols+col]
				heat := 0.0
				if max > 0 {
					heat = float64(p) / float64(max)
				}
				// White (cold) through red (hot).
				g := int(255 * (1 - heat))
				fmt.Fprintf(&b, "<td style=\"background:rgb(255,%d,%d)\">%d</td>", g, g, p)
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}

	if len(r.Contested) > 0 {
		b.WriteString("<h2>most contested resources</h2>\n<table><tr><th>resource</th><th>kind</th>" +
			"<th>clashes</th><th>contenders</th><th>final occupant</th></tr>\n")
		for _, res := range r.Contested {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n",
				esc(res.Resource), esc(res.Kind), res.TimesContested,
				esc(strings.Join(res.Contenders, ", ")), esc(res.FinalOccupant))
		}
		b.WriteString("</table>\n")
	}
	if len(r.Unroutable) > 0 {
		b.WriteString("<h2>unroutable edges</h2>\n<table><tr><th>edge</th><th>from</th><th>to</th>" +
			"<th>latency</th><th>II</th></tr>\n")
		es := append([]diag.EdgeReport(nil), r.Unroutable...)
		sort.Slice(es, func(i, j int) bool { return es[i].Edge < es[j].Edge })
		for _, e := range es {
			fmt.Fprintf(&b, "<tr><td>e%d</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td></tr>\n",
				e.Edge, esc(e.From), esc(e.To), e.Latency, e.II)
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
