package mrrg

import (
	"testing"
	"testing/quick"

	"rewire/internal/arch"
)

func build(t *testing.T, rows, cols, regs, ii int) *Graph {
	t.Helper()
	return New(arch.New("t", rows, cols, regs, 2, 0), ii)
}

func TestNodePackingRoundTrip(t *testing.T) {
	g := build(t, 4, 4, 4, 3)
	for pe := 0; pe < 16; pe++ {
		for tt := 0; tt < 3; tt++ {
			fu := g.FU(pe, tt)
			if g.Kind(fu) != KindFU || g.PE(fu) != pe || g.Time(fu) != tt {
				t.Fatalf("FU(%d,%d) mispacked: %s", pe, tt, g.String(fu))
			}
			for r := 0; r < 4; r++ {
				rg := g.Reg(pe, r, tt)
				if g.Kind(rg) != KindReg || g.PE(rg) != pe || g.Time(rg) != tt {
					t.Fatalf("Reg(%d,%d,%d) mispacked: %s", pe, r, tt, g.String(rg))
				}
			}
			for d := arch.Dir(0); d < arch.NumDirs; d++ {
				ln := g.Link(pe, d, tt)
				if g.Kind(ln) != KindLink || g.PE(ln) != pe {
					t.Fatalf("Link mispacked: %s", g.String(ln))
				}
			}
		}
	}
	for p := 0; p < g.Arch.BankPorts(); p++ {
		bk := g.Bank(p, 1)
		if g.Kind(bk) != KindBank || g.PE(bk) != -1 {
			t.Fatalf("Bank mispacked: %s", g.String(bk))
		}
	}
}

func TestNoDuplicateNodeIDs(t *testing.T) {
	g := build(t, 3, 3, 2, 2)
	seen := make(map[Node]bool)
	check := func(n Node) {
		if seen[n] {
			t.Fatalf("duplicate node id %d (%s)", n, g.String(n))
		}
		seen[n] = true
	}
	for pe := 0; pe < 9; pe++ {
		for tt := 0; tt < 2; tt++ {
			check(g.FU(pe, tt))
			for d := arch.Dir(0); d < arch.NumDirs; d++ {
				check(g.Link(pe, d, tt))
			}
			for r := 0; r < 2; r++ {
				check(g.Reg(pe, r, tt))
			}
		}
	}
	for p := 0; p < g.Arch.BankPorts(); p++ {
		for tt := 0; tt < 2; tt++ {
			check(g.Bank(p, tt))
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("enumerated %d nodes, graph has %d", len(seen), g.NumNodes())
	}
}

func TestBoundaryLinksInvalid(t *testing.T) {
	g := build(t, 4, 4, 1, 2)
	// PE 0 is the top-left corner: North and West links must be invalid.
	if g.Valid(g.Link(0, arch.North, 0)) || g.Valid(g.Link(0, arch.West, 0)) {
		t.Fatal("corner PE has valid links off the mesh")
	}
	if !g.Valid(g.Link(0, arch.East, 0)) || !g.Valid(g.Link(0, arch.South, 0)) {
		t.Fatal("corner PE lost its in-mesh links")
	}
	// Invalid links have no adjacency.
	if len(g.Succs(g.Link(0, arch.North, 0))) != 0 {
		t.Fatal("invalid link has successors")
	}
}

func TestFULinkAdjacency(t *testing.T) {
	g := build(t, 4, 4, 2, 4)
	// FU(5) at t=1 -> east link of PE 5 at t=2.
	fu := g.FU(5, 1)
	east := g.Link(5, arch.East, 2)
	if !contains(g.Succs(fu), east) {
		t.Fatalf("FU succs %v missing east link", names(g, g.Succs(fu)))
	}
	// East link of PE 5 feeds PE 6; its value can enter FU(6) at t=3.
	if g.FeedsPE(east) != 6 {
		t.Fatalf("east link feeds PE %d, want 6", g.FeedsPE(east))
	}
	if !contains(g.Succs(east), g.FU(6, 3)) {
		t.Fatal("link does not reach neighbour FU next cycle")
	}
	// Direct same-PE forwarding: FU(5)@1 -> FU(5)@2.
	if !contains(g.Succs(fu), g.FU(5, 2)) {
		t.Fatal("missing FU->FU forwarding edge")
	}
}

func TestRegisterDwellEdges(t *testing.T) {
	g := build(t, 2, 2, 3, 4)
	r0 := g.Reg(1, 0, 1)
	if !contains(g.Succs(r0), g.Reg(1, 0, 2)) {
		t.Fatal("register cannot dwell to next cycle")
	}
	if contains(g.Succs(r0), g.Reg(1, 1, 2)) {
		t.Fatal("value must not hop between registers")
	}
	if !contains(g.Succs(r0), g.FU(1, 2)) {
		t.Fatal("register cannot feed own FU")
	}
}

func TestWrapAround(t *testing.T) {
	g := build(t, 2, 2, 1, 3)
	// Resources at t=II-1 connect to resources at t=0.
	fu := g.FU(0, 2)
	if !contains(g.Succs(fu), g.FU(0, 0)) {
		t.Fatal("missing wrap-around edge t=II-1 -> t=0")
	}
}

func TestIIOneSelfLoopsOnlyOnFUs(t *testing.T) {
	// At II=1, register dwell and link self edges would collide with the
	// next iteration's value and must be absent; FU->FU forwarding stays
	// (the ALU output register holds each value exactly one cycle).
	g := build(t, 3, 3, 2, 1)
	fuSelf := 0
	for n := 0; n < g.NumNodes(); n++ {
		for _, s := range g.Succs(Node(n)) {
			if s == Node(n) {
				if g.Kind(s) != KindFU {
					t.Fatalf("illegal self loop on %s at II=1", g.String(Node(n)))
				}
				fuSelf++
			}
		}
	}
	if fuSelf != 9 {
		t.Fatalf("FU self loops = %d, want one per PE (9)", fuSelf)
	}
}

func TestBanksHaveNoAdjacency(t *testing.T) {
	g := build(t, 4, 4, 1, 2)
	for p := 0; p < g.Arch.BankPorts(); p++ {
		for tt := 0; tt < 2; tt++ {
			if len(g.Succs(g.Bank(p, tt))) != 0 || len(g.Preds(g.Bank(p, tt))) != 0 {
				t.Fatal("bank ports must not join the routing graph")
			}
		}
	}
}

func TestPredsMirrorSuccs(t *testing.T) {
	g := build(t, 4, 4, 4, 3)
	for n := 0; n < g.NumNodes(); n++ {
		for _, s := range g.Succs(Node(n)) {
			if !contains(g.Preds(s), Node(n)) {
				t.Fatalf("succ edge %s->%s missing from preds", g.String(Node(n)), g.String(s))
			}
		}
		for _, p := range g.Preds(Node(n)) {
			if !contains(g.Succs(p), Node(n)) {
				t.Fatalf("pred edge %s<-%s missing from succs", g.String(Node(n)), g.String(p))
			}
		}
	}
}

// Property: every adjacency edge advances modulo time by exactly one.
func TestPropEdgesAdvanceTimeByOne(t *testing.T) {
	f := func(rowsRaw, colsRaw, regsRaw, iiRaw uint8) bool {
		rows := 1 + int(rowsRaw%6)
		cols := 1 + int(colsRaw%6)
		regs := int(regsRaw % 5)
		ii := 1 + int(iiRaw%6)
		g := New(arch.New("p", rows, cols, regs, 1, 0), ii)
		for n := 0; n < g.NumNodes(); n++ {
			want := (g.Time(Node(n)) + 1) % ii
			for _, s := range g.Succs(Node(n)) {
				if g.Time(s) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: any valid non-FU resource can feed some FU next cycle, and
// FeedsPE is consistent with the succ set.
func TestPropFeedsPEConsistent(t *testing.T) {
	f := func(rowsRaw, regsRaw, iiRaw uint8) bool {
		rows := 2 + int(rowsRaw%4)
		regs := 1 + int(regsRaw%4)
		ii := 1 + int(iiRaw%4)
		g := New(arch.New("p", rows, rows, regs, 1, 0), ii)
		for n := 0; n < g.NumNodes(); n++ {
			nd := Node(n)
			if !g.Valid(nd) || g.Kind(nd) == KindBank {
				continue
			}
			fp := g.FeedsPE(nd)
			if fp < 0 {
				return false
			}
			target := g.FU(fp, g.Time(nd)+1)
			if target == nd {
				// II=1 self-forwarding is intentionally absent (it would
				// collide with the next iteration).
				continue
			}
			if !contains(g.Succs(nd), target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStateReserveRelease(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	s := NewState(g)
	n := g.FU(0, 0)
	if !s.Free(n) {
		t.Fatal("fresh state not free")
	}
	if err := s.Reserve(n, 7, 2); err != nil {
		t.Fatal(err)
	}
	if net, phase := s.Occupant(n); net != 7 || phase != 2 || s.Free(n) {
		t.Fatal("reserve did not take")
	}
	// Same net+phase may share; another net or phase may not.
	if !s.Usable(n, 7, 2) || s.Usable(n, 8, 2) || s.Usable(n, 7, 3) {
		t.Fatal("Usable wrong")
	}
	if err := s.Reserve(n, 8, 2); err == nil {
		t.Fatal("cross-net reserve must fail")
	}
	if err := s.Reserve(n, 7, 5); err == nil {
		t.Fatal("cross-phase reserve must fail")
	}
	if err := s.Reserve(n, 7, 2); err != nil {
		t.Fatal(err)
	}
	s.Release(n, 7)
	if s.Free(n) {
		t.Fatal("released too early: one reference remains")
	}
	s.Release(n, 7)
	if !s.Free(n) {
		t.Fatal("not freed after last release")
	}
}

func TestStateReleasePanicsOnForeignNet(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	s := NewState(g)
	n := g.FU(0, 0)
	if err := s.Reserve(n, 1, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Release(n, 2)
}

func TestStateReserveInvalidFails(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	s := NewState(g)
	bad := g.Link(0, arch.North, 0) // off the mesh
	if err := s.Reserve(bad, 1, 0); err == nil {
		t.Fatal("reserving an invalid link must fail")
	}
}

func TestReservePathRollsBack(t *testing.T) {
	g := build(t, 2, 2, 2, 2)
	s := NewState(g)
	blocker := g.Reg(0, 0, 1)
	if err := s.Reserve(blocker, 99, 0); err != nil {
		t.Fatal(err)
	}
	path := []Node{g.Reg(0, 1, 0), blocker, g.Reg(0, 0, 0)}
	if err := s.ReservePath(path, 5, 1); err == nil {
		t.Fatal("path through foreign resource must fail")
	}
	if !s.Free(path[0]) {
		t.Fatal("rollback did not release earlier path nodes")
	}
	if net, _ := s.Occupant(blocker); net != 99 {
		t.Fatal("rollback damaged the blocking net")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	s := NewState(g)
	n := g.FU(1, 1)
	if err := s.Reserve(n, 3, 0); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Release(n, 3)
	if s.Free(n) {
		t.Fatal("release on clone affected original")
	}
	if err := c.Reserve(g.FU(2, 0), 4, 0); err != nil {
		t.Fatal(err)
	}
	if !s.Free(g.FU(2, 0)) {
		t.Fatal("reserve on clone affected original")
	}
}

func TestFreeBankPort(t *testing.T) {
	g := build(t, 4, 4, 1, 2) // 2 banks -> 4 ports
	s := NewState(g)
	var got []Node
	for i := 0; i < g.Arch.BankPorts(); i++ {
		n := s.FreeBankPort(1)
		if n == Invalid {
			t.Fatalf("port %d: no free bank port", i)
		}
		if err := s.Reserve(n, Net(i), 0); err != nil {
			t.Fatal(err)
		}
		got = append(got, n)
	}
	if n := s.FreeBankPort(1); n != Invalid {
		t.Fatalf("expected exhaustion, got %s", g.String(n))
	}
	// Other time slots unaffected.
	if s.FreeBankPort(0) == Invalid {
		t.Fatal("time 0 ports should be free")
	}
	_ = got
}

func contains(ns []Node, x Node) bool {
	for _, n := range ns {
		if n == x {
			return true
		}
	}
	return false
}

func names(g *Graph, ns []Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = g.String(n)
	}
	return out
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	for _, f := range []func(){
		func() { g.LinkDir(g.FU(0, 0)) },
		func() { g.RegIndex(g.FU(0, 0)) },
		func() { g.BankIndex(g.FU(0, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessorsRecoverIndices(t *testing.T) {
	g := build(t, 3, 3, 2, 2)
	if g.LinkDir(g.Link(4, arch.West, 1)) != arch.West {
		t.Fatal("LinkDir wrong")
	}
	if g.RegIndex(g.Reg(4, 1, 0)) != 1 {
		t.Fatal("RegIndex wrong")
	}
	if g.BankIndex(g.Bank(3, 1)) != 3 {
		t.Fatal("BankIndex wrong")
	}
}

func TestStringForms(t *testing.T) {
	g := build(t, 2, 2, 1, 2)
	cases := map[Node]string{
		g.FU(1, 0):              "fu(pe1)@0",
		g.Link(0, arch.East, 1): "link(pe0,E)@1",
		g.Reg(2, 0, 1):          "reg(pe2,r0)@1",
		g.Bank(0, 0):            "bank(0)@0",
		Invalid:                 "node(-1)",
	}
	for n, want := range cases {
		if got := g.String(n); got != want {
			t.Errorf("String(%d) = %q, want %q", n, got, want)
		}
	}
}
