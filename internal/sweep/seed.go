package sweep

// SeedForII derives the RNG seed of one II attempt from the run seed.
// Every mapper derives its per-II randomness through this one function,
// which is what makes the speculative sweep deterministic: an attempt's
// random stream depends only on (run seed, II), never on how much work
// earlier IIs consumed or on which goroutine runs it, so serial and
// speculative sweeps produce bit-identical per-II outcomes.
//
// The mix is splitmix64: consecutive IIs land on statistically
// independent streams even though they differ in one input bit.
func SeedForII(seed int64, ii int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(uint(ii))+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SeedForBackend extends SeedForII to portfolio lanes: the seed of one
// (backend, II) lane is a pure function of (run seed, backend name, II),
// independent of lane scheduling order or parallelism width. The backend
// name is folded into the run seed with FNV-1a before the splitmix64 II
// mix, so a backend racing inside the portfolio draws the same stream it
// would draw running alone under seed^hash(backend) — distinct backends
// at the same II never share randomness.
func SeedForBackend(seed int64, backend string, ii int) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(backend); i++ {
		h ^= uint64(backend[i])
		h *= 1099511628211 // FNV-1a prime
	}
	return SeedForII(seed^int64(h), ii)
}
