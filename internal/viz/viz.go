// Package viz renders mappings and resource graphs for humans: per-cycle
// ASCII grids of the PE array showing which operation executes where, a
// resource-utilisation summary, and Graphviz dumps of the MRRG.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// MappingGrid renders a mapping as one PE-array grid per modulo cycle.
// Each cell shows the node name (truncated) executing on that PE at that
// cycle, or dots for an idle ALU.
func MappingGrid(m *mapping.Mapping) string {
	const cellW = 9
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s, II=%d\n", m.DFG.Name, m.Arch.Name, m.II)
	byCell := map[[2]int]string{} // (pe, t mod II) -> label
	for v := range m.Place {
		if !m.Placed(v) {
			continue
		}
		t := ((m.Place[v].Time % m.II) + m.II) % m.II
		byCell[[2]int{m.Place[v].PE, t}] = trim(m.DFG.Nodes[v].Name, cellW-1)
	}
	for t := 0; t < m.II; t++ {
		fmt.Fprintf(&b, "cycle %d:\n", t)
		for r := 0; r < m.Arch.Rows; r++ {
			for c := 0; c < m.Arch.Cols; c++ {
				label, ok := byCell[[2]int{m.Arch.PEIndex(r, c), t}]
				if !ok {
					label = "."
				}
				fmt.Fprintf(&b, "%-*s", cellW, label)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Utilisation summarises how full the fabric is: ALU slots in use, link
// and register slots held by routes, and bank-port pressure.
func Utilisation(m *mapping.Mapping) (string, error) {
	s, err := mapping.Restore(m)
	if err != nil {
		return "", err
	}
	counts := map[mrrg.Kind][2]int{} // kind -> [used, total]
	for n := 0; n < s.Graph.NumNodes(); n++ {
		nd := mrrg.Node(n)
		if !s.Graph.Valid(nd) {
			continue
		}
		k := s.Graph.Kind(nd)
		uc := counts[k]
		uc[1]++
		if !s.State.Free(nd) {
			uc[0]++
		}
		counts[k] = uc
	}
	kinds := []mrrg.Kind{mrrg.KindFU, mrrg.KindLink, mrrg.KindReg, mrrg.KindBank}
	var b strings.Builder
	fmt.Fprintf(&b, "utilisation of %s at II=%d:\n", m.Arch.Name, m.II)
	for _, k := range kinds {
		uc := counts[k]
		if uc[1] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-5s %4d/%4d (%5.1f%%)\n", k, uc[0], uc[1], 100*float64(uc[0])/float64(uc[1]))
	}
	return b.String(), nil
}

// RouteTable lists every edge's route in readable form, sorted by edge
// ID; useful when debugging a mapper or inspecting an example's output.
func RouteTable(m *mapping.Mapping) (string, error) {
	s, err := mapping.Restore(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	ids := make([]int, 0, len(m.Routes))
	for e := range m.Routes {
		ids = append(ids, e)
	}
	sort.Ints(ids)
	for _, e := range ids {
		ed := m.DFG.Edges[e]
		fmt.Fprintf(&b, "e%-3d %-10s -> %-10s lat=%d:", e,
			trim(m.DFG.Nodes[ed.From].Name, 10), trim(m.DFG.Nodes[ed.To].Name, 10), m.Latency(e))
		if m.Routes[e] == nil {
			b.WriteString(" UNROUTED\n")
			continue
		}
		for _, n := range m.Routes[e] {
			b.WriteString(" ")
			b.WriteString(s.Graph.String(n))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// MRRGDot renders the static MRRG adjacency in Graphviz dot syntax
// (valid nodes only). Intended for tiny fabrics; a 4x4 II=4 graph is
// already large.
func MRRGDot(g *mrrg.Graph) string {
	var b strings.Builder
	b.WriteString("digraph mrrg {\n  rankdir=LR;\n")
	for n := 0; n < g.NumNodes(); n++ {
		nd := mrrg.Node(n)
		if !g.Valid(nd) || g.Kind(nd) == mrrg.KindBank {
			continue
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n, g.String(nd))
	}
	for n := 0; n < g.NumNodes(); n++ {
		nd := mrrg.Node(n)
		if !g.Valid(nd) {
			continue
		}
		for _, s := range g.Succs(nd) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n, int(s))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
