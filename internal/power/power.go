// Package power estimates the dynamic energy and activity of a mapped
// kernel from its generated configuration: operation counts by class,
// link toggles, register-file writes and memory accesses per steady-state
// iteration, weighted by a per-event energy model. Numbers are
// normalised units (an ALU op = 1.0), in line with how CGRA papers
// compare mapping-induced routing overhead rather than absolute joules.
package power

import (
	"fmt"
	"sort"
	"strings"

	"rewire/internal/config"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
)

// Model is the per-event energy table, in units of one ALU operation.
type Model struct {
	ALUOp    float64
	MulOp    float64
	DivOp    float64
	MemOp    float64
	MoveOp   float64 // ALU used as a route hop
	LinkHop  float64
	RegWrite float64
	// ConfigFetch is charged once per active PE per cycle (context fetch
	// from the configuration memory).
	ConfigFetch float64
}

// DefaultModel reflects typical relative energies reported for CGRA
// fabrics: multiplies ~3x an add, memory ~4x, a mesh hop ~0.6x, a
// register write ~0.3x.
func DefaultModel() Model {
	return Model{
		ALUOp:       1.0,
		MulOp:       3.0,
		DivOp:       6.0,
		MemOp:       4.0,
		MoveOp:      0.5,
		LinkHop:     0.6,
		RegWrite:    0.3,
		ConfigFetch: 0.2,
	}
}

// Report is the activity/energy summary of one configuration.
type Report struct {
	II int
	// Counts of events per steady-state iteration.
	Ops       map[string]int // per op-kind mnemonic
	Moves     int
	LinkHops  int
	RegWrites int
	ActivePEs int // PE-cycles with any activity
	// Energy per iteration, total and by component.
	Energy    float64
	Breakdown map[string]float64
}

// Estimate computes the activity report of a configuration under a
// model.
func Estimate(c *config.Config, m Model) *Report {
	r := &Report{
		II:        c.II,
		Ops:       map[string]int{},
		Breakdown: map[string]float64{},
	}
	add := func(component string, e float64) {
		r.Energy += e
		r.Breakdown[component] += e
	}
	for pe := range c.PEs {
		for t := range c.PEs[pe] {
			pc := c.PEs[pe][t]
			active := false
			if pc.Node >= 0 {
				active = true
				op := c.DFG.Nodes[pc.Node].Op
				r.Ops[op.String()]++
				add("compute", opEnergy(m, op))
			} else if pc.Forward.Kind != config.SrcNone {
				active = true
				r.Moves++
				add("moves", m.MoveOp)
			}
			for d := range pc.Links {
				if pc.Links[d].Kind != config.SrcNone {
					active = true
					r.LinkHops++
					add("links", m.LinkHop)
				}
			}
			for _, src := range pc.Regs {
				if src.Kind != config.SrcNone && src.Kind != config.SrcKeep {
					active = true
					r.RegWrites++
					add("regfile", m.RegWrite)
				}
			}
			if active {
				r.ActivePEs++
				add("config", m.ConfigFetch)
			}
		}
	}
	return r
}

func opEnergy(m Model, op dfg.OpKind) float64 {
	switch {
	case op.IsMem():
		return m.MemOp
	case op.IsMul():
		return m.MulOp
	case op.IsDiv():
		return m.DivOp
	default:
		return m.ALUOp
	}
}

// EstimateMapping is a convenience wrapper: generate the configuration
// and estimate it under the default model.
func EstimateMapping(mp *mapping.Mapping) (*Report, error) {
	c, err := config.Generate(mp)
	if err != nil {
		return nil, err
	}
	return Estimate(c, DefaultModel()), nil
}

// RoutingOverhead returns the fraction of energy spent on data movement
// (links, moves, register writes) rather than computation — the metric
// that distinguishes a tight mapping from a sprawling one at equal II.
func (r *Report) RoutingOverhead() float64 {
	routing := r.Breakdown["links"] + r.Breakdown["moves"] + r.Breakdown["regfile"]
	if r.Energy == 0 {
		return 0
	}
	return routing / r.Energy
}

// EnergyPerIteration returns the total normalised energy per loop
// iteration.
func (r *Report) EnergyPerIteration() float64 { return r.Energy }

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "activity per iteration (II=%d):\n", r.II)
	var ops []string
	for k := range r.Ops {
		ops = append(ops, k)
	}
	sort.Strings(ops)
	for _, k := range ops {
		fmt.Fprintf(&b, "  %-8s x%d\n", k, r.Ops[k])
	}
	fmt.Fprintf(&b, "  moves    x%d\n  linkhops x%d\n  regwrite x%d\n  activePE x%d\n",
		r.Moves, r.LinkHops, r.RegWrites, r.ActivePEs)
	fmt.Fprintf(&b, "energy: %.1f units/iteration (routing overhead %.0f%%)\n",
		r.Energy, 100*r.RoutingOverhead())
	var comps []string
	for k := range r.Breakdown {
		comps = append(comps, k)
	}
	sort.Strings(comps)
	for _, k := range comps {
		fmt.Fprintf(&b, "  %-8s %6.1f\n", k, r.Breakdown[k])
	}
	return b.String()
}
