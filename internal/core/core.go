// Package core implements Rewire, the paper's consolidated-routing CGRA
// mapping paradigm. Rewire does not build mappings from scratch: it takes
// the (typically invalid) initial mapping produced by a conventional
// mapper (PF*'s initial-placement phase here, as in the paper), finds the
// ill-mapped nodes, and amends them in multi-node clusters:
//
//  1. Cluster: pick connected ill-mapped nodes U (capped, default 15).
//  2. Propagate: flood routing probes forward from the mapped parents of
//     U and backward from its mapped children, producing propagation
//     tuples (source, direction, PE, routing cycles), deduplicated per
//     PE — one network sweep shared by every node and edge of U.
//  3. Intersect: a PE becomes a placement candidate for v in U only if
//     tuples from all of v's (representative) sources imply a common
//     execution cycle (Eq. 1 of the paper).
//  4. Generate: enumerate Placement(U) in topological order under
//     execution-cycle data-dependency constraints (Algorithm 2), then
//     verify the survivor by actually routing every incident edge,
//     reusing the propagation paths where possible.
//  5. Grow: if U cannot be mapped, append the nearest connected node (by
//     DFS distance) and retry; at the size cap, give up and increase II.
package core

import (
	"context"
	"math/rand"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/obs"
	"rewire/internal/pathfinder"
	"rewire/internal/route"
	"rewire/internal/stats"
	"rewire/internal/sweep"
	"rewire/internal/trace"
)

// Options tunes Rewire. Zero values select the defaults (the paper's
// published constants).
type Options struct {
	// Seed drives randomized cluster seeding; runs are reproducible.
	Seed int64
	// MaxII caps the explored initiation intervals (default 32).
	MaxII int
	// TimePerII bounds the wall-clock per II (default 10s).
	TimePerII time.Duration
	// ClusterCap is the maximum cluster size (default 15, §IV-B).
	ClusterCap int
	// InitialClusterSize is how many connected ill nodes seed a cluster
	// before growth (default 4).
	InitialClusterSize int
	// RoundsAnchored multiplies the parent/child cycle difference to set
	// the propagation round count (default 3, §IV-C); RoundsUnanchored
	// multiplies the longest path within U when either side has no
	// anchors (default 5).
	RoundsAnchored   int
	RoundsUnanchored int
	// MaxCombos bounds Placement(U) combinations per generation attempt
	// (default 600, counting routed placement trials).
	MaxCombos int
	// MaxCandidatesPerNode truncates each node's candidate list (default
	// 64, sorted by execution cycle).
	MaxCandidatesPerNode int
	// ClusterFailBudget is how many cluster amendment attempts may fail
	// (reach the size cap unmapped) before the current initial mapping is
	// abandoned and a fresh one is drawn (default 6).
	ClusterFailBudget int
	// AttemptsPerII is how many fresh initial mappings are amended before
	// the II is declared unreachable (default 4). Together with
	// ClusterFailBudget it bounds the work per II well below the
	// wall-clock limit, which is what makes Rewire's compilation fast:
	// hopeless IIs are abandoned after bounded work instead of burning
	// the full per-II time budget.
	AttemptsPerII int

	// Ablation switches (benchmarked in bench_test.go; off in normal use).
	//
	// DisableTuplePaths turns off the reuse of propagation probe paths
	// during verification (every edge goes through the router instead) —
	// ablating the paper's "reuse of wire information".
	DisableTuplePaths bool
	// DisableCyclePruning turns off the execution-cycle constraint checks
	// of Algorithm 2, leaving all pruning to routing verification.
	DisableCyclePruning bool
	// SerialPropagation runs the per-anchor probe floods on the calling
	// goroutine instead of the worker pool. The floods are bit-identical
	// either way; the switch exists for the determinism test and for
	// single-core profiling.
	SerialPropagation bool

	// SweepParallelism is the speculative II-sweep window: how many II
	// attempts may run concurrently (see internal/sweep and
	// docs/CONCURRENCY.md). 0 or 1 is the serial sweep. Every per-II
	// attempt derives its randomness from sweep.SeedForII(Seed, II), so
	// the committed (II, mapping) is bit-identical at every width.
	SweepParallelism int

	// Tracer receives phase spans and work counters for the run (see
	// internal/trace and docs/OBSERVABILITY.md). nil disables tracing at
	// ~zero hot-path cost.
	Tracer *trace.Tracer
	// Logger receives run- and II-level structured log records (never
	// per-placement or per-tuple events). nil disables logging at one
	// pointer check per site, like the tracer.
	Logger *obs.Logger
	// Diag accumulates the post-mortem: the amendment-round convergence
	// series, contested-resource attribution on failed attempts, the
	// unroutable-edge list. nil disables collection at one pointer check
	// per site.
	Diag *diag.Collector
	// Progress receives coarse progress events (run, II-attempt and
	// amendment-round boundaries) for live streaming. nil disables
	// publishing at one pointer check per site.
	Progress *diag.Bus
	// Lane tags this run's diag attempts and progress events with a
	// portfolio lane label (see internal/portfolio); empty outside
	// portfolio runs.
	Lane string
}

func (o Options) withDefaults() Options {
	if o.MaxII == 0 {
		o.MaxII = 32
	}
	if o.TimePerII == 0 {
		o.TimePerII = 10 * time.Second
	}
	if o.ClusterCap == 0 {
		o.ClusterCap = 15
	}
	if o.InitialClusterSize == 0 {
		o.InitialClusterSize = 4
	}
	if o.RoundsAnchored == 0 {
		o.RoundsAnchored = 3
	}
	if o.RoundsUnanchored == 0 {
		o.RoundsUnanchored = 5
	}
	if o.MaxCombos == 0 {
		o.MaxCombos = 600
	}
	if o.MaxCandidatesPerNode == 0 {
		o.MaxCandidatesPerNode = 64
	}
	if o.ClusterFailBudget == 0 {
		o.ClusterFailBudget = 6
	}
	if o.AttemptsPerII == 0 {
		o.AttemptsPerII = 4
	}
	return o
}

// Map runs Rewire: per II, build PF*'s initial mapping, then amend it
// cluster by cluster until valid; on failure increase the II.
func Map(g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	return MapCtx(context.Background(), g, a, opt)
}

// iiOut is one II attempt's outcome: the mapping (nil on failure) and
// the attempt's private effort counters, merged into the run's
// stats.Result in ascending II order once the sweep commits.
type iiOut struct {
	m  *mapping.Mapping
	st stats.Result
}

// mergeEffort folds one II attempt's effort counters into the run total.
func mergeEffort(dst *stats.Result, src *stats.Result) {
	dst.ClusterAmendments += src.ClusterAmendments
	dst.PlacementsTried += src.PlacementsTried
	dst.VerifyAttempts += src.VerifyAttempts
	dst.VerifySuccesses += src.VerifySuccesses
	dst.RouterExpansions += src.RouterExpansions
}

// MapCtx is Map with cancellation: ctx aborts the II sweep (in-flight
// attempts unwind within one cluster iteration) and the run reports
// failure. Options.SweepParallelism > 1 additionally runs that many II
// attempts speculatively; the committed result is bit-identical to the
// serial sweep's (see internal/sweep).
func MapCtx(ctx context.Context, g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	opt = opt.withDefaults()
	res := stats.Result{Mapper: "Rewire", Kernel: g.Name, Arch: a.Name}
	res.MII = mapping.MII(g, a)
	start := time.Now()

	tr := opt.Tracer
	ctr := newCounters(tr)
	root := tr.StartSpan(nil, "rewire.map").
		WithStr("kernel", g.Name).WithStr("arch", a.Name).WithInt("mii", int64(res.MII))
	defer root.End()
	lg := opt.Logger.With("mapper", "rewire", "kernel", g.Name, "arch", a.Name)
	lg.Debug("map start", "mii", res.MII, "max_ii", opt.MaxII, "sweep_window", opt.SweepParallelism)
	opt.Diag.Begin(g, a, "Rewire", res.MII)
	opt.Progress.Publish(diag.Event{Type: "run_start", Mapper: "rewire",
		Kernel: g.Name, Arch: a.Name, MII: res.MII})

	runner := &iiRunner{g: g, a: a, opt: opt, tr: tr, ctr: ctr, root: root, lg: lg}
	attemptII := func(actx context.Context, ii int) (iiOut, bool) {
		return runner.attemptII(actx, ii, sweep.SeedForII(opt.Seed, ii))
	}

	win, winII, below, ok := sweep.Run(ctx, res.MII, opt.MaxII, attemptII, sweep.Options{
		Parallelism: opt.SweepParallelism, Tracer: tr, Parent: root, Logger: lg,
		Progress: opt.Progress,
	})
	for _, o := range below {
		mergeEffort(&res, &o.st)
	}
	if ok {
		mergeEffort(&res, &win.st)
		res.Success = true
		res.II = winII
		res.Duration = time.Since(start)
		opt.Diag.Commit(true, winII)
		opt.Progress.Publish(diag.Event{Type: "run_end", II: winII, Outcome: "ok"})
		lg.Info("mapped", "ii", winII, "mii", res.MII,
			"amendments", res.ClusterAmendments, "duration_ms", res.Duration.Milliseconds())
		return win.m, res
	}
	res.Duration = time.Since(start)
	opt.Diag.Commit(false, 0)
	opt.Progress.Publish(diag.Event{Type: "run_end", Outcome: "failed"})
	lg.Warn("mapping failed", "mii", res.MII, "max_ii", opt.MaxII,
		"duration_ms", res.Duration.Milliseconds())
	return nil, res
}

// iiRunner carries the run-scoped state one II attempt needs: the
// immutable inputs plus the run's instrumentation handles. MapCtx
// builds one per run; AttemptII builds a root-less one per lane.
type iiRunner struct {
	g    *dfg.Graph
	a    *arch.CGRA
	opt  Options
	tr   *trace.Tracer
	ctr  counters
	root *trace.Span
	lg   *obs.Logger
}

// attemptII runs one II attempt with the given seed: draw up to
// AttemptsPerII fresh PF* initial mappings and amend each cluster by
// cluster until one validates or the II's time budget expires.
func (r *iiRunner) attemptII(actx context.Context, ii int, iiSeed int64) (iiOut, bool) {
	g, a, opt, tr, lg := r.g, r.a, r.opt, r.tr, r.lg
	var out iiOut
	rng := rand.New(rand.NewSource(iiSeed))
	pace := sweep.NewPacer(actx, time.Now().Add(opt.TimePerII), paceEvery)
	iiSpan := tr.StartSpan(r.root, "ii").WithInt("ii", int64(ii))
	// Rewire amends whatever initial mapping it is given; initial
	// mappings vary a lot in amendability, so each II retries with a
	// few fresh PF* initial seeds (bounded by AttemptsPerII and the
	// time budget).
	for attempt := int64(0); attempt < int64(opt.AttemptsPerII) && (attempt == 0 || !pace.ExpiredNow()); attempt++ {
		aSpan := tr.StartSpan(iiSpan, "attempt").WithInt("attempt", attempt)
		m := mapping.New(g, a, ii)
		sess, router := pathfinder.BuildInitialTraced(actx, m, iiSeed^(attempt<<16), &out.st, tr, aSpan)
		att := opt.Diag.StartLane(ii, int(attempt), opt.Lane)
		opt.Progress.Publish(diag.Event{Type: "attempt_start", II: ii, Attempt: int(attempt), Lane: opt.Lane})
		am := &amender{
			g:      g,
			sess:   sess,
			router: router,
			rng:    rng,
			res:    &out.st,
			opt:    opt,
			pace:   pace,
			tr:     tr,
			ctr:    r.ctr,
			span:   aSpan,
			att:    att,
			bus:    opt.Progress,
		}
		ok := am.amend()
		// Router work is accumulated per attempt — failed attempts
		// spend real routing effort too, and each attempt owns a fresh
		// router, so a final-attempt snapshot would drop the rest.
		out.st.RouterExpansions += router.Expansions
		r.ctr.routerExpansions.Add(router.Expansions)
		aSpan.WithBool("ok", ok).End()
		if !ok {
			// Post-mortem: name what the leftover ill-mapped edges are
			// fighting over (diagnostic-only, nil-safe).
			route.AttributeFailures(att, am.sess, am.router)
		}
		att.Finish(ok, am.sess)
		if actx.Err() != nil {
			att.Cancelled()
		}
		opt.Progress.Publish(diag.Event{Type: "attempt_end", II: ii, Attempt: int(attempt),
			Outcome: outcomeWord(ok, actx.Err() != nil), Lane: opt.Lane})
		if !ok {
			am.sess.Close()
			continue
		}
		if err := mapping.Validate(am.sess.M); err != nil {
			panic("rewire: produced invalid mapping: " + err.Error())
		}
		iiSpan.WithBool("ok", true).End()
		out.m = am.sess.M
		am.sess.Close()
		return out, true
	}
	iiSpan.WithBool("ok", false).End()
	if lg.On() {
		lg.Debug("ii exhausted", "ii", ii)
	}
	return out, false
}

// AttemptII runs exactly one Rewire II attempt with an externally
// derived seed and returns the mapping (nil on failure), the attempt's
// private effort counters, and whether the II is feasible. It is the
// portfolio lane entry point (see internal/portfolio): the caller owns
// the run lifecycle — diag Begin/Commit, run_start/run_end events, MII
// — while AttemptII emits only per-attempt instrumentation, tagged
// with opt.Lane when set. Determinism matches MapCtx: the outcome is a
// pure function of (g, a, ii, seed, opt).
func AttemptII(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, opt Options) (*mapping.Mapping, stats.Result, bool) {
	opt = opt.withDefaults()
	tr := opt.Tracer
	r := &iiRunner{
		g: g, a: a, opt: opt, tr: tr, ctr: newCounters(tr),
		lg: opt.Logger.With("mapper", "rewire", "kernel", g.Name, "arch", a.Name),
	}
	out, ok := r.attemptII(ctx, ii, seed)
	st := out.st
	st.Mapper = "Rewire"
	st.Kernel = g.Name
	st.Arch = a.Name
	return out.m, st, ok
}

// outcomeWord is the progress-event outcome label for one attempt.
func outcomeWord(ok, cancelled bool) string {
	switch {
	case ok:
		return "ok"
	case cancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// paceEvery is how many generator recursion steps pass between real
// deadline/cancellation checks; see sweep.Pacer. Coarse enough that
// time.Now vanishes from the enumeration profile, fine enough that a
// cancelled speculative attempt unwinds within one cluster iteration.
const paceEvery = 16

// amender is the per-II amendment state.
type amender struct {
	g      *dfg.Graph
	sess   *mapping.Session
	router *route.Router
	rng    *rand.Rand
	res    *stats.Result
	opt    Options
	pace   *sweep.Pacer // amortised deadline + cancellation polling

	// tr/ctr/span instrument the amendment; all stay nil/zero when
	// tracing is disabled (every emit call is then a pointer check).
	tr   *trace.Tracer
	ctr  counters
	span *trace.Span // parent for cluster_amendment spans
	cur  *trace.Span // the open cluster_amendment span (parent of phase spans)

	// att/bus collect the post-mortem and progress stream; both are nil
	// (free no-ops) when diagnostics are disabled.
	att *diag.IIAttempt
	bus *diag.Bus

	// scr is the pooled per-amendment working memory (see scratch.go),
	// drawn lazily so tests can call the phase methods directly without
	// running amend. Single-goroutine like the rest of the amender.
	scr *amendScratch

	amendRounds int // amendment rounds completed (for round progress events)
}

// scratch returns the amender's pooled working memory, acquiring it on
// first use.
func (a *amender) scratch() *amendScratch {
	if a.scr == nil {
		a.scr = getAmendScratch(len(a.g.Nodes))
	}
	return a.scr
}

// amend repairs the initial mapping cluster by cluster (Algorithm 1,
// lines 5-15). A cluster that stays unmappable at the size cap counts as
// a failure; after ClusterFailBudget failures the II is declared
// unreachable. Re-seeding after a failure matters: the failed cluster's
// nodes are now unplaced and a different random seed groups them with
// different neighbours.
func (a *amender) amend() bool {
	a.scratch() // acquire the pooled working memory for the whole attempt
	defer func() { putAmendScratch(a.scr); a.scr = nil }()
	failures := 0
	for !a.pace.ExpiredNow() {
		ill := a.sess.IllMapped()
		if len(ill) == 0 {
			return true
		}
		a.amendRounds++
		a.att.Round(len(ill))
		a.bus.Publish(diag.Event{Type: "round", II: a.sess.M.II,
			Round: a.amendRounds, Ill: len(ill)})
		u := a.buildCluster(ill)
		if !a.mapCluster(u) {
			// Keep the rip-ups: a failed cluster leaves its nodes unmapped,
			// so the next (randomly re-seeded) cluster absorbs them together
			// with different neighbours. This progressive loosening lets the
			// amendment escape a structurally bad initial mapping instead of
			// retrying against the same frozen obstacles.
			failures++
			if failures >= a.opt.ClusterFailBudget {
				return false
			}
		}
	}
	return len(a.sess.IllMapped()) == 0
}

// mapCluster runs propagate → intersect → generate for one cluster,
// growing it on failure up to the cap (Algorithm 1, lines 7-13). The
// routed-trial budget is shared across the growth retries so one stubborn
// cluster cannot consume the whole II deadline.
func (a *amender) mapCluster(u *cluster) (ok bool) {
	cs := a.tr.StartSpan(a.span, "cluster_amendment").WithInt("initial_size", int64(len(u.nodes)))
	defer func() {
		cs.WithInt("final_size", int64(len(u.nodes))).WithBool("ok", ok).End()
	}()
	prevCur := a.cur
	a.cur = cs
	defer func() { a.cur = prevCur }()

	budget := a.opt.MaxCombos
	for {
		a.res.ClusterAmendments++
		a.ctr.clusterAmendments.Add(1)
		a.ctr.clusterSize.Observe(int64(len(u.nodes)))
		props := a.propagateAll(u)
		cands := a.intersectTraced(u, props)
		if a.generate(u, cands, props, &budget) {
			releaseProps(props)
			return true
		}
		if budget <= 0 || len(u.nodes) >= a.opt.ClusterCap {
			releaseProps(props)
			return false
		}
		// Prefer absorbing the anchor that is starving a candidate-less
		// node (it is boxed in on the fabric); otherwise the nearest
		// connected node.
		grew := a.growTowardsBlocker(u, cands, props) || a.growCluster(u)
		releaseProps(props)
		if !grew {
			return false
		}
		if a.pace.ExpiredNow() {
			return false
		}
	}
}

// intersectTraced wraps intersect in its phase span and records the
// PCandidate-set size metrics (Eq. 1's output: how constrained each
// cluster node is).
func (a *amender) intersectTraced(u *cluster, props map[int]*propagation) map[int][]pcand {
	is := a.tr.StartSpan(a.cur, "intersect").WithInt("nodes", int64(len(u.nodes)))
	cands := a.intersect(u, props)
	if a.tr.Enabled() {
		total := 0
		for _, v := range u.nodes {
			n := len(cands[v])
			total += n
			a.ctr.pcandsPerNode.Observe(int64(n))
		}
		a.ctr.pcands.Add(int64(total))
		is.WithInt("pcandidates", int64(total))
	}
	is.End()
	return cands
}
