package mapping

import (
	"fmt"

	"rewire/internal/mrrg"
)

// Session couples a Mapping with the live MRRG occupancy so mappers can
// place, route, and rip up incrementally while the resource state stays
// consistent with the mapping.
//
// Invariant maintained by all mutators: State holds exactly one FU
// reservation per placed node, one bank-port reservation per placed
// memory node, and one reservation per element of every stored route.
type Session struct {
	M     *Mapping
	Graph *mrrg.Graph
	State *mrrg.State

	// illMark is lazily-allocated per-DFG-node scratch for IllMapped,
	// reused across amendment rounds so the ill-set computation does not
	// churn a map per round. Sessions are single-goroutine (see
	// docs/CONCURRENCY.md), so unsynchronised scratch is safe.
	illMark []bool
}

// NewSession builds an empty mapping session for m.DFG on m.Arch at m.II.
// The MRRG comes from the shared arch+II-keyed cache (mrrg.Shared): it is
// immutable, so every session of the same architecture and II — across
// the II sweep, eval workers, and rewire-serve requests — reads one
// Graph. Only the occupancy State is per-session.
func NewSession(m *Mapping) *Session {
	g := mrrg.Shared(m.Arch, m.II)
	return &Session{M: m, Graph: g, State: mrrg.NewState(g)}
}

// Close releases the session's occupancy scratch back to the shared
// graph's recycle pool. The session must not be used afterwards. Closing
// is optional (a dropped session is garbage-collected normally) and the
// produced Mapping stays valid: it holds no reference to the State.
func (s *Session) Close() {
	if s.State != nil {
		s.State.Recycle()
		s.State = nil
	}
}

// Fork returns an independent snapshot of the session: the mapping and
// occupancy are deep-copied, the immutable MRRG is shared. Mappers use
// forks to roll back failed amendment attempts.
func (s *Session) Fork() *Session {
	return &Session{M: s.M.Clone(), Graph: s.Graph, State: s.State.Clone()}
}

// CanPlace reports whether node v could be placed on pe at absolute time
// T with the current occupancy (FU free or held by v's own net, memory
// capability, bank port availability). It does not consider routing.
func (s *Session) CanPlace(v, pe, T int) bool {
	op := s.M.DFG.Nodes[v].Op
	if !s.M.Arch.Supports(pe, ClassOf(op)) {
		return false
	}
	fu := s.Graph.FU(pe, T)
	if !s.State.Free(fu) {
		return false
	}
	if op.IsMem() && s.State.FreeBankPort(s.Graph.Time(fu)) == mrrg.Invalid {
		return false
	}
	return true
}

// PlaceNode reserves the FU (and a bank port for memory ops) for v at
// (pe, T). T is an absolute schedule time and may be negative: only
// relative times matter (dependencies) and occupancy is modulo II. The
// caller routes edges separately.
func (s *Session) PlaceNode(v, pe, T int) error {
	if s.M.Placed(v) {
		return fmt.Errorf("mapping: node %d already placed", v)
	}
	op := s.M.DFG.Nodes[v].Op
	if !s.M.Arch.Supports(pe, ClassOf(op)) {
		return fmt.Errorf("mapping: %s op %d needs a %s-capable PE, PE %d is not",
			op, v, ClassOf(op), pe)
	}
	fu := s.Graph.FU(pe, T)
	if err := s.State.Reserve(fu, mrrg.Net(v), 0); err != nil {
		return err
	}
	if op.IsMem() {
		port := s.State.FreeBankPort(s.Graph.Time(fu))
		if port == mrrg.Invalid {
			s.State.Release(fu, mrrg.Net(v))
			return fmt.Errorf("mapping: no free bank port at t=%d for node %d", T%s.M.II, v)
		}
		if err := s.State.Reserve(port, mrrg.Net(v), 0); err != nil {
			s.State.Release(fu, mrrg.Net(v))
			return err
		}
		s.M.BankPorts[v] = port
	}
	s.M.Place[v] = Placement{PE: pe, Time: T}
	return nil
}

// UnplaceNode releases v's FU and bank port. All routes touching v must
// already be ripped up (it panics otherwise, as that is a mapper bug that
// would silently corrupt occupancy).
func (s *Session) UnplaceNode(v int) {
	if !s.M.Placed(v) {
		return
	}
	for _, eid := range s.M.DFG.InEdges(v) {
		if s.M.Routed(eid) {
			panic(fmt.Sprintf("mapping: unplacing node %d with routed edge %d", v, eid))
		}
	}
	for _, eid := range s.M.DFG.OutEdges(v) {
		if s.M.Routed(eid) {
			panic(fmt.Sprintf("mapping: unplacing node %d with routed edge %d", v, eid))
		}
	}
	p := s.M.Place[v]
	s.State.Release(s.Graph.FU(p.PE, p.Time), mrrg.Net(v))
	if port := s.M.BankPorts[v]; port != mrrg.Invalid {
		s.State.Release(port, mrrg.Net(v))
		s.M.BankPorts[v] = mrrg.Invalid
	}
	s.M.Place[v] = Unplaced
}

// RouteEdge stores a route for edge e and reserves its resources under
// the producer's net. The path must already satisfy the structural rules
// (see CheckPath); they are re-checked here so a buggy router cannot
// corrupt the session.
func (s *Session) RouteEdge(e int, path []mrrg.Node) error {
	if s.M.Routed(e) {
		return fmt.Errorf("mapping: edge %d already routed", e)
	}
	if err := s.CheckPath(e, path); err != nil {
		return err
	}
	net := mrrg.Net(s.M.DFG.Edges[e].From)
	if err := s.State.ReservePath(path, net, 1); err != nil {
		return err
	}
	if path == nil {
		path = []mrrg.Node{}
	}
	s.M.Routes[e] = path
	return nil
}

// UnrouteEdge rips up edge e's route, releasing its resources.
func (s *Session) UnrouteEdge(e int) {
	if !s.M.Routed(e) {
		return
	}
	s.State.ReleasePath(s.M.Routes[e], mrrg.Net(s.M.DFG.Edges[e].From))
	s.M.Routes[e] = nil
}

// RipNode unroutes every edge incident to v and unplaces it: the rip-up
// primitive used by remapping iterations.
func (s *Session) RipNode(v int) {
	for _, eid := range s.M.DFG.InEdges(v) {
		s.UnrouteEdge(eid)
	}
	for _, eid := range s.M.DFG.OutEdges(v) {
		s.UnrouteEdge(eid)
	}
	s.UnplaceNode(v)
}

// CheckPath verifies the structural validity of a route for edge e
// without reserving anything: both endpoints placed, latency >= 1, path
// length = latency-1, adjacency holds from producer FU through the path
// to consumer FU, and no resource repeats.
func (s *Session) CheckPath(e int, path []mrrg.Node) error {
	ed := s.M.DFG.Edges[e]
	if !s.M.Placed(ed.From) || !s.M.Placed(ed.To) {
		return fmt.Errorf("mapping: routing edge %d with unplaced endpoint", e)
	}
	lat := s.M.Latency(e)
	if lat < 1 {
		return fmt.Errorf("mapping: edge %d has latency %d < 1 (producer t=%d, consumer t=%d, dist=%d, II=%d)",
			e, lat, s.M.Place[ed.From].Time, s.M.Place[ed.To].Time, ed.Dist, s.M.II)
	}
	if len(path) != lat-1 {
		return fmt.Errorf("mapping: edge %d route length %d, want latency-1 = %d", e, len(path), lat-1)
	}
	cur := s.Graph.FU(s.M.Place[ed.From].PE, s.M.Place[ed.From].Time)
	// Revisit detection uses the State's pooled epoch-stamped mark set;
	// CheckPath runs on every route attempt, so a map here would dominate
	// the routing allocation profile.
	s.State.MarkBegin()
	for i, n := range path {
		if s.State.Marked(n) {
			return fmt.Errorf("mapping: edge %d route revisits %s (iteration collision)", e, s.Graph.String(n))
		}
		s.State.Mark(n)
		if !adjacent(s.Graph, cur, n) {
			return fmt.Errorf("mapping: edge %d route hop %d: %s not adjacent to %s",
				e, i, s.Graph.String(n), s.Graph.String(cur))
		}
		cur = n
	}
	dst := s.Graph.FU(s.M.Place[ed.To].PE, s.M.Place[ed.To].Time)
	if s.State.Marked(dst) {
		return fmt.Errorf("mapping: edge %d route passes through its own consumer FU", e)
	}
	if !adjacent(s.Graph, cur, dst) {
		return fmt.Errorf("mapping: edge %d route ends at %s, cannot reach consumer %s",
			e, s.Graph.String(cur), s.Graph.String(dst))
	}
	return nil
}

func adjacent(g *mrrg.Graph, from, to mrrg.Node) bool {
	for _, s := range g.Succs(from) {
		if s == to {
			return true
		}
	}
	return false
}

// IllMapped returns the nodes that are unplaced or have an incident edge
// between placed endpoints that is unrouted — the nodes Rewire treats as
// needing amendment.
func (s *Session) IllMapped() []int {
	if len(s.illMark) < len(s.M.Place) {
		s.illMark = make([]bool, len(s.M.Place))
	} else {
		clear(s.illMark)
	}
	bad := s.illMark
	n := 0
	for v := range s.M.Place {
		if !s.M.Placed(v) {
			bad[v] = true
			n++
		}
	}
	for e, route := range s.M.Routes {
		if route != nil {
			continue
		}
		ed := s.M.DFG.Edges[e]
		if s.M.Placed(ed.From) && s.M.Placed(ed.To) {
			if !bad[ed.From] {
				bad[ed.From] = true
				n++
			}
			if !bad[ed.To] {
				bad[ed.To] = true
				n++
			}
		}
	}
	// Emitting in ascending node order keeps the result identical to the
	// previous map-then-sort implementation.
	out := make([]int, 0, n)
	for v, b := range bad {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// Restore rebuilds a live session from a stored mapping by replaying its
// placements and routes into a fresh copy (available as the returned
// session's M); it fails if the mapping is internally inconsistent. Bank
// ports may be re-assigned to equivalent free ports during the replay.
func Restore(m *Mapping) (*Session, error) {
	s := NewSession(New(m.DFG, m.Arch, m.II))
	for v := range m.Place {
		if !m.Placed(v) {
			continue
		}
		if err := s.PlaceNode(v, m.Place[v].PE, m.Place[v].Time); err != nil {
			s.Close()
			return nil, err
		}
	}
	for e, route := range m.Routes {
		if route == nil {
			continue
		}
		if err := s.RouteEdge(e, route); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// sortInts is a tiny insertion sort to avoid importing sort for hot small
// slices.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Validate independently checks a finished mapping: every node placed on
// a compatible, exclusively-held FU; every memory op holding a bank port
// at its execution slot; every edge routed with a structurally valid,
// conflict-free path. It rebuilds occupancy from scratch, so it cannot be
// fooled by mapper bookkeeping bugs.
func Validate(m *Mapping) error {
	if len(m.Place) != m.DFG.NumNodes() || len(m.Routes) != m.DFG.NumEdges() {
		return fmt.Errorf("mapping: shape mismatch with DFG %q", m.DFG.Name)
	}
	for v := range m.Place {
		if !m.Placed(v) {
			return fmt.Errorf("mapping: node %d (%s) unplaced", v, m.DFG.Nodes[v].Name)
		}
	}
	s, err := Restore(m)
	if err != nil {
		return err
	}
	defer s.Close()
	for e := range m.Routes {
		if !m.Routed(e) {
			ed := m.DFG.Edges[e]
			return fmt.Errorf("mapping: edge %d (%s->%s) unrouted", e,
				m.DFG.Nodes[ed.From].Name, m.DFG.Nodes[ed.To].Name)
		}
	}
	// Bank ports must sit at the right modulo time.
	for v := range m.Place {
		port := m.BankPorts[v]
		isMem := m.DFG.Nodes[v].Op.IsMem()
		switch {
		case isMem && port == mrrg.Invalid:
			return fmt.Errorf("mapping: memory op %d without bank port", v)
		case !isMem && port != mrrg.Invalid:
			return fmt.Errorf("mapping: non-memory op %d holds bank port", v)
		case isMem && s.Graph.Time(port) != ((m.Place[v].Time%m.II)+m.II)%m.II:
			return fmt.Errorf("mapping: node %d bank port at t=%d, executes at t=%d",
				v, s.Graph.Time(port), m.Place[v].Time%m.II)
		}
	}
	return nil
}
