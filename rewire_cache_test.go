package rewire

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestOptionsFingerprintHonesty keeps the cache key honest by
// construction: every field of Options must be explicitly classified
// in optionFingerprintClass as fingerprint-relevant or exempt. Adding
// a field without deciding whether it can change the committed mapping
// fails here, not as a silent wrong-hit in production.
func TestOptionsFingerprintHonesty(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	seen := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		if _, ok := optionFingerprintClass[name]; !ok {
			t.Errorf("Options.%s is not classified in optionFingerprintClass: "+
				"decide whether it can change the committed mapping (true) or is "+
				"wall-clock/observer-only (false), and prove it with a test", name)
		}
	}
	for name := range optionFingerprintClass {
		if !seen[name] {
			t.Errorf("optionFingerprintClass lists %q, which is not a field of Options", name)
		}
	}

	// Cross-check the classification against the key itself: flipping a
	// fingerprint-relevant field must move CacheKey; flipping an exempt
	// field must not.
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	base := Options{Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16}
	baseKey := CacheKey(g, cgra, base)

	variants := map[string]Options{
		"Mapper":           {Mapper: MapperSA, Seed: 1, TimePerII: time.Second, MaxII: 16},
		"Seed":             {Mapper: MapperRewire, Seed: 2, TimePerII: time.Second, MaxII: 16},
		"TimePerII":        {Mapper: MapperRewire, Seed: 1, TimePerII: 2 * time.Second, MaxII: 16},
		"MaxII":            {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 8},
		"SweepParallelism": {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16, SweepParallelism: 4},
		"Tracer":           {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16, Tracer: NewTracer()},
		"Cache":            {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16, Cache: NewResultCache(1)},
		"Diag":             {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16, Diag: NewDiagCollector()},
		"Progress":         {Mapper: MapperRewire, Seed: 1, TimePerII: time.Second, MaxII: 16, Progress: NewProgressBus(0)},
	}
	for field, relevant := range optionFingerprintClass {
		opt, ok := variants[field]
		if !ok {
			switch field {
			case "Logger":
				continue // needs a writer; observer-exemption is covered by Tracer
			case "PortfolioBackends", "PortfolioParallelism":
				continue // only meaningful under MapperPortfolio; checked below
			}
			t.Errorf("no variant exercises Options.%s; add one", field)
			continue
		}
		moved := CacheKey(g, cgra, opt) != baseKey
		if relevant && !moved {
			t.Errorf("Options.%s is classified fingerprint-relevant but does not change CacheKey", field)
		}
		if !relevant && moved {
			t.Errorf("Options.%s is classified exempt but changes CacheKey", field)
		}
	}

	// The portfolio fields key against a portfolio base: the backend
	// subset exists only under MapperPortfolio.
	pbase := Options{Mapper: MapperPortfolio, Seed: 1, TimePerII: time.Second, MaxII: 16}
	pbaseKey := CacheKey(g, cgra, pbase)
	if pbaseKey == baseKey {
		t.Error("portfolio requests must not share keys with single-mapper requests")
	}
	psub := pbase
	psub.PortfolioBackends = []string{"rewire", "sa"}
	if CacheKey(g, cgra, psub) == pbaseKey {
		t.Error("Options.PortfolioBackends is classified fingerprint-relevant but does not change CacheKey")
	}
	palias := pbase
	palias.PortfolioBackends = []string{"sa", "PF*", "Rewire"} // the full set, spelled badly
	if CacheKey(g, cgra, palias) != pbaseKey {
		t.Error("equivalent PortfolioBackends spellings must share a cache key")
	}
	pj := pbase
	pj.PortfolioParallelism = 8
	if CacheKey(g, cgra, pj) != pbaseKey {
		t.Error("Options.PortfolioParallelism is classified exempt but changes CacheKey")
	}
}

// TestMapCachedOutcomes drives the public MapCached API through the
// miss → hit cycle and checks hits are isolated caller-owned copies.
func TestMapCachedOutcomes(t *testing.T) {
	g, err := LoadKernel("mvt")
	if err != nil {
		t.Fatal(err)
	}
	cgra := New4x4(4)
	opt := Options{Seed: 1, TimePerII: 2 * time.Second, Cache: NewResultCache(8)}

	m1, res1, out1, err := MapCached(context.Background(), g, cgra, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Hit || out1.Shared {
		t.Fatalf("first call outcome = %+v, want a cold compile", out1)
	}
	m2, res2, out2, err := MapCached(context.Background(), g, cgra, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Hit || out2.Shared {
		t.Fatalf("second call outcome = %+v, want a stored-entry hit", out2)
	}
	if res1.II != res2.II || !reflect.DeepEqual(m1.Place, m2.Place) ||
		!reflect.DeepEqual(m1.Routes, m2.Routes) {
		t.Fatal("hit differs from the compile that populated it")
	}
	if m1 == m2 {
		t.Fatal("hit returned the same *Mapping as the compile")
	}
	// A hit is caller-owned: mutating it must not corrupt later hits.
	m2.Place[0].PE = 99
	m3, _, _, err := MapCached(context.Background(), g, cgra, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Place[0].PE == 99 {
		t.Fatal("mutating a hit leaked into the cache")
	}
	if err := Validate(m3); err != nil {
		t.Fatalf("cached mapping fails validation: %v", err)
	}
	if st := opt.Cache.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss and 2 hits", st)
	}
}
