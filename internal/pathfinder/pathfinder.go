// Package pathfinder implements PF*, the negotiated-congestion baseline
// mapper the paper compares against (its fine-tuned PathFinder variant,
// in the SPR family): an initial placement that picks, node by node in
// topological order, the candidate slot with the minimal routing cost,
// followed by single-node remapping iterations — rip up an ill-mapped
// node (and, when stuck, a blocking neighbour), bump the history cost of
// the contested resources, and re-place — until the mapping is feasible
// or the per-II budget runs out, at which point the II is incremented.
//
// Rewire reuses the initial-placement phase of this package as the
// "initial mapping from conventional approaches" its amendment loop
// starts from.
package pathfinder

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
	"rewire/internal/obs"
	"rewire/internal/placer"
	"rewire/internal/route"
	"rewire/internal/stats"
	"rewire/internal/sweep"
	"rewire/internal/trace"
)

// Options tunes the mapper. Zero values select the defaults.
type Options struct {
	// Seed drives all randomized tie-breaking; runs are reproducible per
	// seed.
	Seed int64
	// MaxII caps the explored initiation intervals (default 32).
	MaxII int
	// TimePerII bounds the wall-clock spent per II (default 10s; the
	// paper allowed one hour on a Xeon).
	TimePerII time.Duration
	// RemapsPerII bounds single-node remapping iterations per II
	// (default 40 per DFG node).
	RemapsPerII int
	// CandidateBeam is how many of the estimate-ranked placement
	// candidates get full trial routing per (re)placement. 0 (the
	// default) evaluates every candidate, as the paper describes PF*
	// doing ("PF* evaluates all the placement candidates for each
	// single-node remapping and selects the best one"); Rewire's
	// initial-mapping phase uses a narrow beam instead, since amendment
	// only needs a rough starting point.
	CandidateBeam int
	// SweepParallelism is the speculative II-sweep window: how many II
	// attempts may run concurrently (see internal/sweep and
	// docs/CONCURRENCY.md). 0 or 1 is the serial sweep. Every per-II
	// attempt derives its randomness from sweep.SeedForII(Seed, II), so
	// the committed (II, mapping) is bit-identical at every width.
	SweepParallelism int

	// Tracer receives phase spans and work counters for the run (see
	// internal/trace and docs/OBSERVABILITY.md). nil disables tracing at
	// ~zero hot-path cost.
	Tracer *trace.Tracer
	// Logger receives run- and II-level structured log records. nil
	// disables logging at one pointer check per site, like the tracer.
	Logger *obs.Logger
	// Diag accumulates the post-mortem: per-resource contention from the
	// rip-up/history loop, the per-II convergence series, unroutable
	// edges. nil disables collection at one pointer check per site.
	Diag *diag.Collector
	// Progress receives coarse progress events (run, II-attempt and
	// remap-round boundaries) for live streaming. nil disables
	// publishing at one pointer check per site.
	Progress *diag.Bus
	// Lane tags this run's diag attempts and progress events with a
	// portfolio lane label (see internal/portfolio); empty outside
	// portfolio runs.
	Lane string
}

func (o Options) withDefaults(n int) Options {
	if o.MaxII == 0 {
		o.MaxII = 32
	}
	if o.TimePerII == 0 {
		o.TimePerII = 10 * time.Second
	}
	if o.RemapsPerII == 0 {
		o.RemapsPerII = 40 * n
	}
	return o
}

// Map runs PF* to completion: II sweeps from MII upward until a valid
// mapping is found or the limits are hit.
func Map(g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	return MapCtx(context.Background(), g, a, opt)
}

// iiOutcome is one II attempt's result: the mapping (nil on failure)
// and the attempt's private effort counters, merged into the run's
// stats.Result in ascending II order once the sweep commits.
type iiOutcome struct {
	m      *mapping.Mapping
	st     stats.Result
	remaps int
}

// MapCtx is Map with cancellation: ctx aborts the II sweep (in-flight
// attempts unwind within one remap iteration) and the run reports
// failure. Options.SweepParallelism > 1 additionally runs that many II
// attempts speculatively; the committed result is bit-identical to the
// serial sweep's (see internal/sweep).
func MapCtx(ctx context.Context, g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	opt = opt.withDefaults(g.NumNodes())
	res := stats.Result{Mapper: "PF*", Kernel: g.Name, Arch: a.Name}
	res.MII = mapping.MII(g, a)
	start := time.Now()

	tr := opt.Tracer
	root := tr.StartSpan(nil, "pf.map").
		WithStr("kernel", g.Name).WithStr("arch", a.Name).WithInt("mii", int64(res.MII))
	defer root.End()
	lg := opt.Logger.With("mapper", "pathfinder", "kernel", g.Name, "arch", a.Name)
	lg.Debug("map start", "mii", res.MII, "max_ii", opt.MaxII, "sweep_window", opt.SweepParallelism)
	opt.Diag.Begin(g, a, "PF*", res.MII)
	opt.Progress.Publish(diag.Event{Type: "run_start", Mapper: "pathfinder",
		Kernel: g.Name, Arch: a.Name, MII: res.MII})

	runner := &iiRunner{g: g, a: a, opt: opt, tr: tr, root: root, lg: lg}
	attempt := func(actx context.Context, ii int) (iiOutcome, bool) {
		return runner.attemptII(actx, ii, sweep.SeedForII(opt.Seed, ii))
	}

	win, winII, below, ok := sweep.Run(ctx, res.MII, opt.MaxII, attempt, sweep.Options{
		Parallelism: opt.SweepParallelism, Tracer: tr, Parent: root, Logger: lg,
		Progress: opt.Progress,
	})
	totalRemaps := 0
	for _, o := range below {
		res.PlacementsTried += o.st.PlacementsTried
		res.RouterExpansions += o.st.RouterExpansions
		totalRemaps += o.remaps
	}
	iisExplored := len(below)
	if ok {
		res.PlacementsTried += win.st.PlacementsTried
		res.RouterExpansions += win.st.RouterExpansions
		totalRemaps += win.remaps
		iisExplored++
		res.Success = true
		res.II = winII
		res.Duration = time.Since(start)
		res.RemapIterations = totalRemaps / iisExplored
		opt.Diag.Commit(true, winII)
		opt.Progress.Publish(diag.Event{Type: "run_end", II: winII, Outcome: "ok"})
		lg.Info("mapped", "ii", winII, "mii", res.MII,
			"remaps", res.RemapIterations, "duration_ms", res.Duration.Milliseconds())
		return win.m, res
	}
	res.Duration = time.Since(start)
	if iisExplored > 0 {
		res.RemapIterations = totalRemaps / iisExplored
	}
	opt.Diag.Commit(false, 0)
	opt.Progress.Publish(diag.Event{Type: "run_end", Outcome: "failed"})
	lg.Warn("mapping failed", "mii", res.MII, "max_ii", opt.MaxII,
		"duration_ms", res.Duration.Milliseconds())
	return nil, res
}

// iiRunner carries the run-scoped state one II attempt needs: the
// immutable inputs plus the run's instrumentation handles. MapCtx
// builds one per run; AttemptII builds a root-less one per lane.
type iiRunner struct {
	g    *dfg.Graph
	a    *arch.CGRA
	opt  Options
	tr   *trace.Tracer
	root *trace.Span
	lg   *obs.Logger
}

// attemptII runs one II attempt with the given seed: initial placement
// followed by the rip-up/history negotiation loop until the mapping
// validates or the II's remap/time budgets expire.
func (r *iiRunner) attemptII(actx context.Context, ii int, iiSeed int64) (iiOutcome, bool) {
	g, a, opt, tr, lg := r.g, r.a, r.opt, r.tr, r.lg
	var out iiOutcome
	rng := rand.New(rand.NewSource(iiSeed))
	iiSpan := tr.StartSpan(r.root, "ii").WithInt("ii", int64(ii))
	ms := tr.StartSpan(iiSpan, "mrrg_build")
	p := newPerII(g, a, ii, rng, &out.st)
	ms.End()
	p.beam = opt.CandidateBeam
	p.instrument(tr, iiSpan)
	p.att = opt.Diag.StartLane(ii, 0, opt.Lane)
	p.bus = opt.Progress
	p.bus.Publish(diag.Event{Type: "attempt_start", II: ii, Lane: opt.Lane})
	ok := p.run(actx, opt)
	out.remaps = p.remaps
	// Each II owns a fresh router; accumulate its work win or lose so
	// RouterExpansions reflects the whole sweep, not the last II.
	out.st.RouterExpansions += p.router.Expansions
	p.ctr.routerExpansions.Add(p.router.Expansions)
	iiSpan.WithBool("ok", ok).WithInt("remaps", int64(p.remaps)).End()
	if ok {
		finalize(p.sess.M, &out.st)
		out.m = p.sess.M
	} else {
		// Post-mortem: name the resources the unroutable edges are
		// fighting over (diagnostic-only, nil-safe).
		route.AttributeFailures(p.att, p.sess, p.router)
	}
	p.att.Finish(ok, p.sess)
	if actx.Err() != nil {
		p.att.Cancelled()
	}
	p.bus.Publish(diag.Event{Type: "attempt_end", II: ii, Round: p.remaps,
		Outcome: outcomeWord(ok, actx.Err() != nil), Lane: opt.Lane})
	p.sess.Close()
	if !ok && lg.On() {
		lg.Debug("ii exhausted", "ii", ii, "remaps", p.remaps)
	}
	return out, ok
}

// AttemptII runs exactly one PF* II attempt with an externally derived
// seed and returns the mapping (nil on failure), the attempt's private
// effort counters (RemapIterations holds this attempt's remap count),
// and whether the II is feasible. It is the portfolio lane entry point
// (see internal/portfolio): the caller owns the run lifecycle — diag
// Begin/Commit, run_start/run_end events, MII — while AttemptII emits
// only per-attempt instrumentation, tagged with opt.Lane when set.
// Determinism matches MapCtx: the outcome is a pure function of
// (g, a, ii, seed, opt).
func AttemptII(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, opt Options) (*mapping.Mapping, stats.Result, bool) {
	opt = opt.withDefaults(g.NumNodes())
	tr := opt.Tracer
	r := &iiRunner{
		g: g, a: a, opt: opt, tr: tr,
		lg: opt.Logger.With("mapper", "pathfinder", "kernel", g.Name, "arch", a.Name),
	}
	out, ok := r.attemptII(ctx, ii, seed)
	st := out.st
	st.Mapper = "PF*"
	st.Kernel = g.Name
	st.Arch = a.Name
	st.RemapIterations = out.remaps
	return out.m, st, ok
}

// outcomeWord is the progress-event outcome label for one attempt.
func outcomeWord(ok, cancelled bool) string {
	switch {
	case ok:
		return "ok"
	case cancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// finalize validates the result defensively; an invalid "success" is a
// mapper bug and must surface immediately.
func finalize(m *mapping.Mapping, res *stats.Result) {
	if err := mapping.Validate(m); err != nil {
		panic("pathfinder: produced invalid mapping: " + err.Error())
	}
}

// BuildInitial runs only the initial-placement phase at the mapping's II
// and returns the (typically partial/ill) session and the router. Rewire
// amends this mapping, so a narrow candidate beam suffices: amendment
// only needs a rough starting point, not PF*'s exhaustive per-node
// candidate evaluation.
func BuildInitial(m *mapping.Mapping, seed int64, res *stats.Result) (*mapping.Session, *route.Router) {
	return BuildInitialTraced(context.Background(), m, seed, res, nil, nil)
}

// BuildInitialTraced is BuildInitial with cancellation and the
// initial-mapping phase recorded under parent: an initial_mapping span
// wrapping mrrg_build and initial_placement child spans. A nil tracer
// is the untraced path; a cancelled ctx stops the placement early and
// returns the partial session.
func BuildInitialTraced(ctx context.Context, m *mapping.Mapping, seed int64, res *stats.Result, tr *trace.Tracer, parent *trace.Span) (*mapping.Session, *route.Router) {
	rng := rand.New(rand.NewSource(seed))
	sp := tr.StartSpan(parent, "initial_mapping").WithInt("seed", seed)
	ms := tr.StartSpan(sp, "mrrg_build")
	p := newPerII(m.DFG, m.Arch, m.II, rng, res)
	ms.End()
	p.beam = 8
	p.instrument(tr, sp)
	p.pace = sweep.NewPacer(ctx, time.Now().Add(time.Minute), paceEvery)
	ps := tr.StartSpan(sp, "initial_placement")
	p.initialPlacement()
	ps.End()
	sp.End()
	return p.sess, p.router
}

// paceEvery is how many hot-loop iterations (placement candidates,
// placed nodes) pass between real deadline/cancellation checks; see
// sweep.Pacer. Coarse enough that time.Now vanishes from the candidate
// loop's profile, fine enough that a cancelled speculative attempt
// unwinds within one remap iteration.
const paceEvery = 16

// perII is the mapping state for one II attempt.
type perII struct {
	g      *dfg.Graph
	sess   *mapping.Session
	router *route.Router
	rng    *rand.Rand
	res    *stats.Result
	hist   []float64 // per MRRG node contention history
	slack  int
	asap   []int
	remaps int
	beam   int          // candidates fully routed per placement; 0 = all
	pace   *sweep.Pacer // amortised deadline + cancellation polling

	tr   *trace.Tracer
	span *trace.Span // parent for this II's phase spans
	ctr  pfCounters

	// att/bus collect the post-mortem and progress stream; both are nil
	// (free no-ops) when diagnostics are disabled.
	att *diag.IIAttempt
	bus *diag.Bus
}

// pfCounters caches the tracer's metric handles (nil when disabled; all
// methods are nil-safe no-ops then). Names are shared with the other
// mappers so one traced run aggregates coherently.
type pfCounters struct {
	placementsTried  *trace.Counter
	routerExpansions *trace.Counter
	remaps           *trace.Counter
}

// instrument attaches the tracer to this II's state. A nil tracer
// leaves everything nil — the untraced fast path.
func (p *perII) instrument(tr *trace.Tracer, span *trace.Span) {
	p.tr, p.span = tr, span
	p.router.Instrument(tr)
	if tr.Enabled() {
		p.ctr = pfCounters{
			placementsTried:  tr.Counter("placements.tried"),
			routerExpansions: tr.Counter("route.expansions"),
			remaps:           tr.Counter("pf.remaps"),
		}
	}
}

func newPerII(g *dfg.Graph, a *arch.CGRA, ii int, rng *rand.Rand, res *stats.Result) *perII {
	m := mapping.New(g, a, ii)
	sess := mapping.NewSession(m)
	asap, err := g.ASAP(ii)
	if err != nil {
		// II below RecMII: caller starts at MII, so this is unreachable,
		// but fall back to zeros to stay total.
		asap = make([]int, g.NumNodes())
	}
	return &perII{
		g:      g,
		sess:   sess,
		router: route.ForSession(sess),
		rng:    rng,
		res:    res,
		hist:   make([]float64, sess.Graph.NumNodes()),
		slack:  placer.DefaultSlack(ii),
		asap:   asap,
	}
}

// cost prices a resource for routing: unit base plus accumulated
// contention history, with own-net reuse nearly free (PathFinder's
// b(n) + h(n) with strict present-sharing).
func (p *perII) cost(net mrrg.Net) route.CostFn {
	st := p.sess.State
	return func(n mrrg.Node, phase int) (float64, bool) {
		if !st.Usable(n, net, phase) {
			return 0, false
		}
		if occ, _ := st.Occupant(n); occ == net {
			return 0.05, true
		}
		return 1 + p.hist[n], true
	}
}

func (p *perII) run(ctx context.Context, opt Options) bool {
	p.pace = sweep.NewPacer(ctx, time.Now().Add(opt.TimePerII), paceEvery)
	is := p.tr.StartSpan(p.span, "initial_placement")
	p.initialPlacement()
	is.End()
	rs := p.tr.StartSpan(p.span, "remap_loop")
	defer func() { rs.WithInt("remaps", int64(p.remaps)).End() }()
	for p.remaps < opt.RemapsPerII && !p.pace.ExpiredNow() {
		ill := p.sess.IllMapped()
		if len(ill) == 0 {
			return true
		}
		v := ill[p.rng.Intn(len(ill))]
		p.remaps++
		p.ctr.remaps.Add(1)
		p.att.Round(len(ill))
		// Progress stays coarse: one round event per 32 remap iterations
		// keeps a long negotiation visible without flooding the bus.
		if p.remaps&31 == 0 {
			p.bus.Publish(diag.Event{Type: "round", II: p.sess.M.II,
				Round: p.remaps, Ill: len(ill)})
		}
		p.ripWithHistory(v)
		if !p.placeNode(v, p.beam) {
			// Could not even place: evict a random placed node to open
			// room; it becomes ill and is remapped on a later iteration.
			p.evictRandom(v)
		}
	}
	return len(p.sess.IllMapped()) == 0
}

// initialPlacement maps nodes in topological order, each at its minimal
// routing-cost candidate; nodes whose edges cannot all be routed are
// still placed best-effort (leaving ill routes), matching the paper's
// "initial mapping" that Rewire amends. Exhaustive candidate evaluation
// on large fabrics can be slow, so the per-II pacer (deadline +
// cancellation) applies here too.
func (p *perII) initialPlacement() {
	order, err := p.g.TopoOrder()
	if err != nil {
		return
	}
	for _, v := range order {
		if p.pace.ExpiredNow() {
			return
		}
		p.placeNode(v, p.beam)
	}
}

// candidate is a slot plus its cheap cost estimate.
type candidate struct {
	pl  mapping.Placement
	est float64
}

// placeNode places v at the best candidate it can fully route; if none
// routes completely it commits the best partial candidate. Returns false
// if no candidate slot existed at all.
//
// With beam == 0 every candidate is trial-routed and the one with the
// minimal total route cost wins (the paper's PF*); with beam > 0 only
// the top estimate-ranked candidates are routed and the first fully
// routable one wins (the fast variant used for initial mappings).
func (p *perII) placeNode(v int, beam int) bool {
	cands := p.rankedCandidates(v)
	if len(cands) == 0 {
		return false
	}
	exhaustive := beam <= 0
	if exhaustive || beam > len(cands) {
		beam = len(cands)
	}
	type outcome struct {
		pl     mapping.Placement
		routed int
		cost   int
		ok     bool
	}
	best := outcome{routed: -1}
	bestFull := outcome{cost: int(^uint(0) >> 1), ok: false}
	for _, c := range cands[:beam] {
		// Amortised deadline/cancellation poll: the exhaustive PF*
		// candidate loop trial-routes every slot, so this is where a
		// per-candidate time.Now would cost and where a cancelled
		// speculative attempt bails. Committing the best candidate found
		// so far keeps the early exit a truncation, not a corruption.
		if p.pace.Expired() {
			break
		}
		p.res.PlacementsTried++
		p.ctr.placementsTried.Add(1)
		if err := p.sess.PlaceNode(v, c.pl.PE, c.pl.Time); err != nil {
			continue
		}
		routed, total := p.routeIncident(v)
		if routed == total {
			if !exhaustive {
				return true // fast variant: first full route wins
			}
			cost := p.routeCost(v)
			if cost < bestFull.cost {
				bestFull = outcome{pl: c.pl, cost: cost, ok: true}
			}
		} else if routed > best.routed {
			best = outcome{pl: c.pl, routed: routed}
		}
		p.ripRoutesOnly(v)
		p.sess.UnplaceNode(v)
	}
	commit := func(pl mapping.Placement) bool {
		if err := p.sess.PlaceNode(v, pl.PE, pl.Time); err != nil {
			return false
		}
		p.routeIncident(v)
		return true
	}
	if bestFull.ok {
		return commit(bestFull.pl)
	}
	if best.routed < 0 {
		return false
	}
	return commit(best.pl)
}

// routeCost totals the committed route lengths of v's incident edges.
func (p *perII) routeCost(v int) int {
	c := 0
	for _, eid := range append(append([]int{}, p.g.InEdges(v)...), p.g.OutEdges(v)...) {
		if p.sess.M.Routed(eid) {
			c += len(p.sess.M.Routes[eid]) + 1
		}
	}
	return c
}

// rankedCandidates enumerates v's feasible slots and sorts them by a
// cheap estimate: total edge latency slack, Manhattan-distance
// infeasibility penalties, FU history, and a small random jitter for
// tie-breaking diversity.
func (p *perII) rankedCandidates(v int) []candidate {
	w := placer.TimeWindow(p.sess, v, p.asap[v], p.slack)
	if w.Empty() {
		return nil
	}
	slots := placer.Candidates(p.sess, v, w)
	cands := make([]candidate, 0, len(slots))
	for _, pl := range slots {
		est, feasible := p.estimate(v, pl)
		if !feasible {
			continue
		}
		cands = append(cands, candidate{pl: pl, est: est + p.rng.Float64()*0.1})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].est < cands[j].est })
	return cands
}

// estimate prices a slot without routing: for each edge to a placed
// neighbour, latency must be >= 1 and >= the oracle's exact minimum
// routing latency (strictly necessary conditions, exact on torus wrap
// links too); the cost is the total latency plus FU history.
func (p *perII) estimate(v int, pl mapping.Placement) (float64, bool) {
	g := p.g
	ii := p.sess.M.II
	cost := p.hist[p.sess.Graph.FU(pl.PE, pl.Time)]
	for _, eid := range g.InEdges(v) {
		e := g.Edges[eid]
		if e.From == v || !p.sess.M.Placed(e.From) {
			continue
		}
		from := p.sess.M.Place[e.From]
		lat := pl.Time - from.Time + e.Dist*ii
		if lat < 1 || lat < p.router.NeedCycles(from.PE, pl.PE) {
			return 0, false
		}
		cost += float64(lat)
	}
	for _, eid := range g.OutEdges(v) {
		e := g.Edges[eid]
		if e.To == v || !p.sess.M.Placed(e.To) {
			continue
		}
		to := p.sess.M.Place[e.To]
		lat := to.Time - pl.Time + e.Dist*ii
		if lat < 1 || lat < p.router.NeedCycles(pl.PE, to.PE) {
			return 0, false
		}
		cost += float64(lat)
	}
	// Self recurrences need latency dist*II >= 1, always true.
	return cost, true
}

// routeIncident strictly routes v's edges whose other endpoint is placed,
// returning how many of them are now routed and the total needing routes.
func (p *perII) routeIncident(v int) (routed, total int) {
	g := p.g
	try := func(eid int) {
		e := g.Edges[eid]
		other := e.From + e.To - v
		if e.From == v && e.To == v {
			other = v
		}
		if !p.sess.M.Placed(other) {
			return
		}
		total++
		if p.sess.M.Routed(eid) {
			routed++
			return
		}
		if p.routeEdge(eid) {
			routed++
		}
	}
	for _, eid := range g.InEdges(v) {
		try(eid)
	}
	for _, eid := range g.OutEdges(v) {
		if e := g.Edges[eid]; e.From == v && e.To == v {
			continue // already handled from InEdges
		}
		try(eid)
	}
	return routed, total
}

func (p *perII) routeEdge(eid int) bool {
	e := p.g.Edges[eid]
	m := p.sess.M
	lat := m.Latency(eid)
	if lat < 1 {
		return false
	}
	src := p.sess.Graph.FU(m.Place[e.From].PE, m.Place[e.From].Time)
	dst := p.sess.Graph.FU(m.Place[e.To].PE, m.Place[e.To].Time)
	// The cost floor mirrors StrictFloor: own-net sharing (0.05) is only
	// reachable once the net has a routed edge; otherwise every admitted
	// step costs at least the unit base (history is non-negative).
	path, ok := p.router.FindPath(src, dst, lat, p.cost(mrrg.Net(e.From)), route.StrictFloor(p.sess, e.From))
	if !ok {
		return false
	}
	return p.sess.RouteEdge(eid, path) == nil
}

// ripRoutesOnly unroutes v's incident edges without unplacing it.
func (p *perII) ripRoutesOnly(v int) {
	for _, eid := range p.g.InEdges(v) {
		p.sess.UnrouteEdge(eid)
	}
	for _, eid := range p.g.OutEdges(v) {
		p.sess.UnrouteEdge(eid)
	}
}

// ripWithHistory rips v and charges history on every resource its routes
// held, so future routes negotiate away from contested regions.
func (p *perII) ripWithHistory(v int) {
	for _, eid := range append(append([]int{}, p.g.InEdges(v)...), p.g.OutEdges(v)...) {
		if p.sess.M.Routed(eid) {
			net := mrrg.Net(p.g.Edges[eid].From)
			for _, n := range p.sess.M.Routes[eid] {
				p.hist[n] += 0.5
				p.att.Contend(n, net)
			}
		}
	}
	if p.sess.M.Placed(v) {
		pl := p.sess.M.Place[v]
		fu := p.sess.Graph.FU(pl.PE, pl.Time)
		p.hist[fu] += 1
		p.att.Contend(fu, mrrg.Net(v))
	}
	p.sess.RipNode(v)
}

// evictRandom rips one random placed node (other than v) to open space.
func (p *perII) evictRandom(v int) {
	var placed []int
	for u := range p.sess.M.Place {
		if u != v && p.sess.M.Placed(u) {
			placed = append(placed, u)
		}
	}
	if len(placed) == 0 {
		return
	}
	u := placed[p.rng.Intn(len(placed))]
	p.ripWithHistory(u)
}
