package eval

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/stats"
)

// WriteJSON → ResultsFromJSON must be lossless: same combos (by kernel
// and architecture name), same per-run results, same Get() answers.
func TestResultsJSONRoundTrip(t *testing.T) {
	combos := []Combo{
		{Kernel: "mvt", Arch: arch.New4x4(4)},
		{Kernel: "bicg(u)", Arch: arch.New8x8(4)},
	}
	in := &Results{
		Combos:  combos,
		ByRun:   map[string]stats.Result{},
		Elapsed: 1234 * time.Millisecond,
	}
	for i, cb := range combos {
		for j, mapper := range Mappers {
			in.ByRun[runKey(mapper, cb)] = stats.Result{
				Mapper: mapper, Kernel: cb.Kernel, Arch: cb.Arch.Name,
				Success: true, II: 3 + i, MII: 2,
				RemapIterations: 10 * j, ClusterAmendments: i,
				PlacementsTried: int64(100*i + j), VerifyAttempts: 7, VerifySuccesses: 6,
				RouterExpansions: 9999, Duration: time.Duration(i+j) * time.Millisecond,
			}
		}
	}

	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ResultsFromJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("ResultsFromJSON: %v", err)
	}

	if out.Elapsed != in.Elapsed {
		t.Errorf("Elapsed = %v, want %v", out.Elapsed, in.Elapsed)
	}
	if len(out.Combos) != len(in.Combos) {
		t.Fatalf("got %d combos, want %d", len(out.Combos), len(in.Combos))
	}
	for i, cb := range out.Combos {
		if cb.Kernel != in.Combos[i].Kernel || cb.Arch.Name != in.Combos[i].Arch.Name {
			t.Errorf("combo %d = %s@%s, want %s@%s",
				i, cb.Kernel, cb.Arch.Name, in.Combos[i].Kernel, in.Combos[i].Arch.Name)
		}
	}
	if !reflect.DeepEqual(out.ByRun, in.ByRun) {
		t.Errorf("ByRun differs after round trip:\n got %+v\nwant %+v", out.ByRun, in.ByRun)
	}
	// The decoded architectures must be full presets, usable by reports.
	for _, cb := range out.Combos {
		res, ok := out.Get("Rewire", cb)
		if !ok || !res.Success {
			t.Errorf("Get(Rewire, %s@%s) lost the result", cb.Kernel, cb.Arch.Name)
		}
		if cb.Arch.NumMemPEs() == 0 {
			t.Errorf("rebuilt arch %s has no memory PEs", cb.Arch.Name)
		}
	}
}

// Every malformed-input path of ResultsFromJSON must return an error,
// never a half-decoded Results or a panic.
func TestResultsFromJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"truncated JSON":        "{",
		"empty input":           "",
		"JSON but not object":   `[1,2,3]`,
		"wrong field types":     `{"combos":"nope"}`,
		"bad combo arch":        `{"combos":[{"kernel":"x","arch":"weird"}]}`,
		"bad run arch":          `{"runs":[{"mapper":"Rewire","kernel":"x","arch":"not-a-grid","result":{}}]}`,
		"arch missing suffix":   `{"combos":[{"kernel":"x","arch":"4x4"}]}`,
		"arch empty name":       `{"combos":[{"kernel":"x","arch":""}]}`,
		"run result not object": `{"runs":[{"mapper":"Rewire","kernel":"x","arch":"4x4r4","result":7}]}`,
	}
	for name, in := range cases {
		if _, err := ResultsFromJSON([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// A valid document with zero runs decodes to an empty, usable Results —
// absence of data is not an error.
func TestResultsFromJSONEmptyDocument(t *testing.T) {
	out, err := ResultsFromJSON([]byte(`{"combos":[],"elapsed_ns":0,"runs":[]}`))
	if err != nil {
		t.Fatalf("empty document rejected: %v", err)
	}
	if len(out.Combos) != 0 || len(out.ByRun) != 0 {
		t.Errorf("empty document decoded to %+v", out)
	}
	if _, ok := out.Get("Rewire", Combo{Kernel: "mvt", Arch: arch.New4x4(4)}); ok {
		t.Error("Get on an empty Results claims a result")
	}
}
