package core

import "sort"

// cluster is the set of nodes U being amended together, with its mapped
// anchors (Parents(U) and Children(U) in the paper's notation).
type cluster struct {
	nodes []int        // topological order within the DFG order
	in    map[int]bool // membership
}

func (u *cluster) contains(v int) bool { return u.in[v] }

// buildCluster seeds a cluster from the ill-mapped set: a random ill node
// plus its connected ill neighbours (BFS over the DFG treated as
// undirected, restricted to ill nodes), capped at the initial size. The
// selected nodes are ripped from the mapping so their resources free up.
func (a *amender) buildCluster(ill []int) *cluster {
	illSet := make(map[int]bool, len(ill))
	for _, v := range ill {
		illSet[v] = true
	}
	seed := ill[a.rng.Intn(len(ill))]
	u := &cluster{in: map[int]bool{seed: true}}
	queue := []int{seed}
	for len(queue) > 0 && len(u.in) < a.opt.InitialClusterSize {
		v := queue[0]
		queue = queue[1:]
		for _, w := range append(a.g.Parents(v), a.g.Children(v)...) {
			if illSet[w] && !u.in[w] && len(u.in) < a.opt.InitialClusterSize {
				u.in[w] = true
				queue = append(queue, w)
			}
		}
	}
	u.refreshOrder(a)
	for _, v := range u.nodes {
		a.sess.RipNode(v)
	}
	return u
}

// growCluster appends the connected node with the least DFS distance to
// U (Algorithm 1, line 13), ripping it from the mapping. Returns false
// when U has no connected nodes left to absorb.
func (a *amender) growCluster(u *cluster) bool {
	dist := a.g.UndirectedDistances(u.in)
	bestDist := int(^uint(0) >> 1)
	for v := range a.g.Nodes {
		if !u.in[v] && dist[v] > 0 && dist[v] < bestDist {
			bestDist = dist[v]
		}
	}
	var tied []int
	for v := range a.g.Nodes {
		if !u.in[v] && dist[v] == bestDist {
			tied = append(tied, v)
		}
	}
	if len(tied) == 0 {
		return false
	}
	// Random tie-break among the nearest nodes: absorbing a different
	// neighbour each retry explores different rip-up frontiers (a mapped
	// neighbour frees its resources and gets re-placed with the cluster).
	best := tied[a.rng.Intn(len(tied))]
	a.sess.RipNode(best)
	u.in[best] = true
	u.refreshOrder(a)
	return true
}

// growTowardsBlocker absorbs the mapped anchor most responsible for a
// cluster node having no placement candidates: among the direct anchors
// of candidate-less nodes, the one whose propagation reached the fewest
// PEs (the most boxed-in producer or consumer). Ripping it frees its
// resources and turns its constraints into in-cluster ones. Returns
// false when no candidate-less node has a mapped anchor.
func (a *amender) growTowardsBlocker(u *cluster, cands map[int][]pcand, props map[int]*propagation) bool {
	best, bestTuples := -1, int(^uint(0)>>1)
	consider := func(anchor int, forward bool) {
		p := propOf(props, anchor, forward)
		if p == nil {
			return
		}
		n := len(p.arrive)
		if n < bestTuples {
			best, bestTuples = anchor, n
		}
	}
	for _, v := range u.nodes {
		if len(cands[v]) > 0 {
			continue
		}
		for _, w := range a.g.Parents(v) {
			if !u.in[w] && a.sess.M.Placed(w) {
				consider(w, true)
			}
		}
		for _, w := range a.g.Children(v) {
			if !u.in[w] && a.sess.M.Placed(w) {
				consider(w, false)
			}
		}
	}
	if best < 0 {
		return false
	}
	a.sess.RipNode(best)
	u.in[best] = true
	u.refreshOrder(a)
	return true
}

// refreshOrder recomputes the cluster's topological node order (the order
// Algorithm 2 assigns placements in).
func (u *cluster) refreshOrder(a *amender) {
	order, err := a.g.TopoOrder()
	if err != nil {
		// The DFG validated at load; an error here is unreachable, but
		// fall back to ID order to stay total.
		u.nodes = u.nodes[:0]
		for v := range u.in {
			u.nodes = append(u.nodes, v)
		}
		sort.Ints(u.nodes)
		return
	}
	u.nodes = u.nodes[:0]
	for _, v := range order {
		if u.in[v] {
			u.nodes = append(u.nodes, v)
		}
	}
}

// parents returns Parents(U): mapped nodes with an edge into U; children
// returns Children(U) likewise. Both are deduplicated and sorted.
func (a *amender) parents(u *cluster) []int {
	return a.anchors(u, true)
}

func (a *amender) children(u *cluster) []int {
	return a.anchors(u, false)
}

func (a *amender) anchors(u *cluster, parents bool) []int {
	set := map[int]bool{}
	for _, v := range u.nodes {
		var neigh []int
		if parents {
			neigh = a.g.Parents(v)
		} else {
			neigh = a.g.Children(v)
		}
		for _, w := range neigh {
			if !u.in[w] && a.sess.M.Placed(w) {
				set[w] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
