package core

import "slices"

// cluster is the set of nodes U being amended together, with its mapped
// anchors (Parents(U) and Children(U) in the paper's notation).
// Membership is a DFG-node-indexed bitmap plus a count; the single live
// cluster of an amendment is embedded in the amender's scratch and
// recycled across attempts.
type cluster struct {
	nodes []int  // topological order within the DFG order
	in    []bool // membership bitmap, indexed by DFG node ID
	size  int    // number of set bits in `in`
}

func (u *cluster) contains(v int) bool { return v < len(u.in) && u.in[v] }

// reset empties the cluster and sizes its bitmap for numNodes DFG nodes.
func (u *cluster) reset(numNodes int) {
	u.nodes = u.nodes[:0]
	if len(u.in) < numNodes {
		u.in = make([]bool, numNodes)
	} else {
		clear(u.in)
	}
	u.size = 0
}

// add puts v into the cluster (must not already be a member).
func (u *cluster) add(v int) {
	u.in[v] = true
	u.size++
}

// buildCluster seeds a cluster from the ill-mapped set: a random ill node
// plus its connected ill neighbours (BFS over the DFG treated as
// undirected, restricted to ill nodes), capped at the initial size. The
// selected nodes are ripped from the mapping so their resources free up.
// The returned cluster lives in the amender's scratch.
func (a *amender) buildCluster(ill []int) *cluster {
	scr := a.scratch()
	epoch := scr.beginMark()
	for _, v := range ill {
		scr.mark[v] = epoch
	}
	seed := ill[a.rng.Intn(len(ill))]
	u := &scr.u
	u.reset(len(a.g.Nodes))
	u.add(seed)
	queue := scr.queueBuf[:0]
	queue = append(queue, seed)
	for head := 0; head < len(queue) && u.size < a.opt.InitialClusterSize; head++ {
		v := queue[head]
		// Parents first, then children — the same neighbour order the old
		// concatenated walk used, with the size cap checked per absorb.
		for _, w := range a.g.Parents(v) {
			if scr.mark[w] == epoch && !u.in[w] && u.size < a.opt.InitialClusterSize {
				u.add(w)
				queue = append(queue, w)
			}
		}
		for _, w := range a.g.Children(v) {
			if scr.mark[w] == epoch && !u.in[w] && u.size < a.opt.InitialClusterSize {
				u.add(w)
				queue = append(queue, w)
			}
		}
	}
	scr.queueBuf = queue
	u.refreshOrder(a)
	for _, v := range u.nodes {
		a.sess.RipNode(v)
	}
	return u
}

// growCluster appends the connected node with the least DFS distance to
// U (Algorithm 1, line 13), ripping it from the mapping. Returns false
// when U has no connected nodes left to absorb.
func (a *amender) growCluster(u *cluster) bool {
	dist := a.g.UndirectedDistances(u.in)
	bestDist := int(^uint(0) >> 1)
	for v := range a.g.Nodes {
		if !u.in[v] && dist[v] > 0 && dist[v] < bestDist {
			bestDist = dist[v]
		}
	}
	scr := a.scratch()
	tied := scr.tiedBuf[:0]
	for v := range a.g.Nodes {
		if !u.in[v] && dist[v] == bestDist {
			tied = append(tied, v)
		}
	}
	scr.tiedBuf = tied
	if len(tied) == 0 {
		return false
	}
	// Random tie-break among the nearest nodes: absorbing a different
	// neighbour each retry explores different rip-up frontiers (a mapped
	// neighbour frees its resources and gets re-placed with the cluster).
	best := tied[a.rng.Intn(len(tied))]
	a.sess.RipNode(best)
	u.add(best)
	u.refreshOrder(a)
	return true
}

// growTowardsBlocker absorbs the mapped anchor most responsible for a
// cluster node having no placement candidates: among the direct anchors
// of candidate-less nodes, the one whose propagation reached the fewest
// PEs (the most boxed-in producer or consumer). Ripping it frees its
// resources and turns its constraints into in-cluster ones. Returns
// false when no candidate-less node has a mapped anchor.
func (a *amender) growTowardsBlocker(u *cluster, cands map[int][]pcand, props map[int]*propagation) bool {
	best, bestTuples := -1, int(^uint(0)>>1)
	consider := func(anchor int, forward bool) {
		p := propOf(props, anchor, forward)
		if p == nil {
			return
		}
		n := p.nArrivePEs
		if n < bestTuples {
			best, bestTuples = anchor, n
		}
	}
	for _, v := range u.nodes {
		if len(cands[v]) > 0 {
			continue
		}
		for _, w := range a.g.Parents(v) {
			if !u.contains(w) && a.sess.M.Placed(w) {
				consider(w, true)
			}
		}
		for _, w := range a.g.Children(v) {
			if !u.contains(w) && a.sess.M.Placed(w) {
				consider(w, false)
			}
		}
	}
	if best < 0 {
		return false
	}
	a.sess.RipNode(best)
	u.add(best)
	u.refreshOrder(a)
	return true
}

// refreshOrder recomputes the cluster's topological node order (the order
// Algorithm 2 assigns placements in).
func (u *cluster) refreshOrder(a *amender) {
	order, err := a.g.TopoOrderShared()
	if err != nil {
		// The DFG validated at load; an error here is unreachable, but
		// fall back to ID order to stay total (the bitmap scan is already
		// ascending, matching the old collect-and-sort).
		u.nodes = u.nodes[:0]
		for v, in := range u.in {
			if in {
				u.nodes = append(u.nodes, v)
			}
		}
		return
	}
	u.nodes = u.nodes[:0]
	for _, v := range order {
		if u.contains(v) {
			u.nodes = append(u.nodes, v)
		}
	}
}

// anchorsInto appends Parents(U) (parents=true) or Children(U) to out:
// mapped nodes with an edge into / out of U, deduplicated via the scratch
// mark set and sorted ascending — byte-identical to the old map-collect-
// then-sort result.
func (a *amender) anchorsInto(u *cluster, parents bool, out []int) []int {
	scr := a.scratch()
	epoch := scr.beginMark()
	for _, v := range u.nodes {
		var neigh []int
		if parents {
			neigh = a.g.Parents(v)
		} else {
			neigh = a.g.Children(v)
		}
		for _, w := range neigh {
			if scr.mark[w] != epoch && !u.contains(w) && a.sess.M.Placed(w) {
				scr.mark[w] = epoch
				out = append(out, w)
			}
		}
	}
	slices.Sort(out)
	return out
}
