package bundle

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/config"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/sim"
)

func sample(t *testing.T) *mapping.Mapping {
	t.Helper()
	g := kernels.MustLoad("mvt")
	m, res := pathfinder.Map(g, arch.New4x4(4), pathfinder.Options{Seed: 1, TimePerII: 3 * time.Second, CandidateBeam: 8})
	if m == nil {
		t.Fatalf("mapping failed: %v", res)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	m := sample(t)
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.II != m.II || m2.DFG.NumNodes() != m.DFG.NumNodes() {
		t.Fatal("shape changed")
	}
	for v := range m.Place {
		if m.Place[v] != m2.Place[v] {
			t.Fatalf("node %d placement changed: %+v vs %+v", v, m.Place[v], m2.Place[v])
		}
	}
	for e := range m.Routes {
		if len(m.Routes[e]) != len(m2.Routes[e]) {
			t.Fatalf("edge %d route changed", e)
		}
		for i := range m.Routes[e] {
			if m.Routes[e][i] != m2.Routes[e][i] {
				t.Fatalf("edge %d hop %d changed", e, i)
			}
		}
	}
	// The loaded mapping must behave identically end-to-end.
	c1, err := config.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := config.Generate(m2)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := sim.Run(c1, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sim.Run(c2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Equal(t2); err != nil {
		t.Fatalf("round-tripped mapping executes differently: %v", err)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	m := sample(t)
	m.Routes[0] = nil
	if _, err := Marshal(m); err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	m := sample(t)
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(string) string
	}{
		{"bad version", func(s string) string { return strings.Replace(s, "\"version\": 1", "\"version\": 99", 1) }},
		{"bad op", func(s string) string { return strings.Replace(s, "\"op\": \"mul\"", "\"op\": \"warp\"", 1) }},
		{"bad ii", func(s string) string { return strings.Replace(s, "\"ii\": "+itoa(m.II), "\"ii\": 0", 1) }},
		{"not json", func(s string) string { return s[:len(s)/2] }},
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c.mutate(string(data)))); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
}

func TestUnmarshalRevalidates(t *testing.T) {
	m := sample(t)
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// Move one placement to collide: structural validation must fire.
	s := string(data)
	s = strings.Replace(s, "\"placements\": [", "\"placements\": [\n{\"pe\": 99, \"time\": 0},", 1)
	// That also breaks the count (one extra), either way it must fail.
	if _, err := Unmarshal([]byte(s)); err == nil {
		t.Fatal("corrupted placements accepted")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
