package buildinfo

import (
	"strings"
	"testing"
)

// Under `go test` there is no VCS stamping, but Get must still return a
// usable identity: a Go version and "unknown" placeholders, never empty
// strings.
func TestGetNeverEmpty(t *testing.T) {
	i := Get()
	if i.GoVersion == "" {
		t.Error("GoVersion is empty")
	}
	if i.Revision == "" {
		t.Error("Revision is empty")
	}
	if i != Get() {
		t.Error("Get is not stable across calls")
	}
}

func TestShortRevision(t *testing.T) {
	long := Info{Revision: "0123456789abcdef0123"}
	if got := long.ShortRevision(); got != "0123456789ab" {
		t.Errorf("ShortRevision = %q, want %q", got, "0123456789ab")
	}
	short := Info{Revision: "abc"}
	if got := short.ShortRevision(); got != "abc" {
		t.Errorf("ShortRevision = %q, want %q", got, "abc")
	}
}

func TestStringMentionsModified(t *testing.T) {
	i := Info{GoVersion: "go1.22", Revision: "deadbeef", Modified: true}
	s := i.String()
	if !strings.Contains(s, "deadbeef") || !strings.Contains(s, "go1.22") || !strings.Contains(s, "modified") {
		t.Errorf("String() = %q misses a field", s)
	}
	clean := Info{GoVersion: "go1.22", Revision: "deadbeef"}
	if strings.Contains(clean.String(), "modified") {
		t.Errorf("String() = %q claims modified on a clean build", clean.String())
	}
}
