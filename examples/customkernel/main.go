// Customkernel: author a loop kernel in the bundled kernel IR — a small
// language for innermost loop bodies with array references, accumulators
// and cross-iteration reads — unroll it, and map both versions.
//
// The kernel below is a complex multiply-accumulate (the core of a
// direct-form FIR filter on complex samples).
package main

import (
	"fmt"
	"log"

	"rewire"
)

const firSrc = `
kernel cfir
param cr, ci
# complex multiply of sample by coefficient
xr = sr[i] * cr - si[i] * ci
xi = sr[i] * ci + si[i] * cr
# accumulate real/imaginary channels (loop-carried dependencies)
accr += xr
acci += xi
outr[i] = accr
outi[i] = acci
# power estimate uses the previous iteration's accumulators
p = accr@1 * accr@1 + acci@1 * acci@1
pow[i] = p
`

func main() {
	cgra := rewire.New4x4(4)
	for _, unroll := range []int{1, 2} {
		g, err := rewire.ParseKernel(firSrc, unroll)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unroll=%d: %s (MII %d)\n", unroll, g.Stats(), rewire.MII(g, cgra))

		m, res, err := rewire.Map(g, cgra, rewire.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  mapped at II=%d in %s (%d cluster amendments)\n\n",
			res.II, res.Duration.Round(1e6), res.ClusterAmendments)
		if unroll == 2 {
			fmt.Print(rewire.Render(m))
		}
	}
}
