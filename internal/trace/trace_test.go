package trace

import (
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndLanes(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "root").WithStr("kernel", "fft")
	child := tr.StartSpan(root, "child").WithInt("ii", 4)
	grand := tr.StartSpan(child, "grand")
	grand.End()
	child.End()
	sib := tr.StartSpan(root, "sibling").WithBool("ok", true)
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root's id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand parent = %d, want child's id %d", byName["grand"].Parent, byName["child"].ID)
	}
	// Sequential spans all share the root's lane: nesting renders as a
	// stack on one Chrome track.
	for _, n := range []string{"child", "grand", "sibling"} {
		if byName[n].Lane != byName["root"].Lane {
			t.Errorf("%s on lane %d, want root's lane %d", n, byName[n].Lane, byName["root"].Lane)
		}
	}
	// Every span nests inside its parent's interval.
	for _, n := range []string{"child", "grand", "sibling"} {
		s, p := byName[n], byName["root"]
		if s.Start < p.Start || s.Start+s.Dur > p.Start+p.Dur {
			t.Errorf("%s [%v,%v] outside root [%v,%v]", n, s.Start, s.Start+s.Dur, p.Start, p.Start+p.Dur)
		}
	}
	if a := byName["root"].Attrs; len(a) != 1 || a[0].Key != "kernel" || a[0].Value() != "fft" {
		t.Errorf("root attrs = %+v", a)
	}
}

func TestConcurrentSiblingsGetDistinctLanes(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "root")
	a := tr.StartSpan(root, "a")
	b := tr.StartSpan(root, "b") // concurrent with a: must not share a's lane
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("open spans exported early: %d", len(got))
	}
	b.End()
	a.End()
	root.End()
	spans := tr.Spans()
	lanes := map[string]int{}
	for _, s := range spans {
		lanes[s.Name] = s.Lane
	}
	if lanes["a"] == lanes["b"] {
		t.Errorf("concurrent siblings share lane %d", lanes["a"])
	}
	if lanes["a"] != lanes["root"] && lanes["b"] != lanes["root"] {
		t.Errorf("neither sibling reused the parent lane: a=%d b=%d root=%d",
			lanes["a"], lanes["b"], lanes["root"])
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "root")
	c := tr.Counter("work")
	h := tr.Histogram("sizes")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.StartSpan(root, "probe").WithInt("i", int64(i))
				c.Add(1)
				h.Observe(int64(i % 17))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != workers*per+1 {
		t.Errorf("got %d spans, want %d", got, workers*per+1)
	}
	if got := tr.CounterTotals()["work"]; got != workers*per {
		t.Errorf("counter total %d, want %d", got, workers*per)
	}
	hs := tr.HistogramStats()["sizes"]
	if hs.Count != workers*per {
		t.Errorf("histogram count %d, want %d", hs.Count, workers*per)
	}
	if hs.Min != 0 || hs.Max != 16 {
		t.Errorf("histogram min/max = %d/%d, want 0/16", hs.Min, hs.Max)
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartSpan(nil, "x").WithInt("k", 1).WithStr("s", "v").WithBool("b", true)
		child := tr.StartSpan(s, "y")
		child.End()
		s.End()
		tr.Counter("c").Add(1)
		tr.Histogram("h").Observe(7)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f allocs/op, want 0", allocs)
	}
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tr.CounterTotals() != nil || tr.HistogramStats() != nil || tr.Spans() != nil {
		t.Error("nil tracer exports non-nil snapshots")
	}
}

func TestHistogramBuckets(t *testing.T) {
	tr := New()
	h := tr.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	st := tr.HistogramStats()["h"]
	if st.Count != 6 || st.Sum != 110 || st.Min != 0 || st.Max != 100 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean < 18.3 || st.Mean > 18.4 {
		t.Errorf("mean = %v", st.Mean)
	}
}

func TestSpanDurations(t *testing.T) {
	tr := New()
	s := tr.StartSpan(nil, "sleep")
	time.Sleep(2 * time.Millisecond)
	s.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Dur < 2*time.Millisecond {
		t.Errorf("duration %v < slept 2ms", spans[0].Dur)
	}
}

// BenchmarkTracerDisabled pins the disabled-tracer guard path: the whole
// instrumented sequence must be allocation-free when the tracer is nil.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan(nil, "phase").WithInt("ii", 4)
		tr.Counter("route.expansions").Add(17)
		tr.Histogram("cluster.size").Observe(5)
		s.WithBool("ok", true).End()
	}
}

// BenchmarkTracerEnabled measures the enabled cost per span (for the
// overhead table in docs/OBSERVABILITY.md; not a regression gate).
func BenchmarkTracerEnabled(b *testing.B) {
	tr := New()
	c := tr.Counter("route.expansions")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan(nil, "phase").WithInt("ii", 4)
		c.Add(17)
		s.End()
	}
}
