package route

// The router's contribution to the mapping post-mortem layer (see
// internal/diag and docs/OBSERVABILITY.md): when an edge cannot route
// strictly, a relaxed re-search names the occupied resources standing
// in its way. Everything here is diagnostic-only — it runs on a failed
// attempt with diagnostics enabled, never on the mapping hot path, so
// it costs nothing when diagnostics are off.

import (
	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// blockerPenalty prices an occupied resource in the relaxed search:
// high enough that the cheapest relaxed path steals as few occupied
// resources as possible, low enough that long detours through free
// fabric still lose to a short contested corridor (which is the honest
// answer to "what is this edge fighting over").
const blockerPenalty = 64

// Blockers diagnoses why edge e cannot route strictly: it re-runs the
// search with occupied resources admitted at a high penalty and returns
// the occupied nodes on the cheapest relaxed path — the resources the
// edge's net would have to steal. An empty result with ok=true means
// the edge routes fine (no contention); ok=false means even the relaxed
// search failed, i.e. the edge is latency- or topology-infeasible at
// this placement, not congestion-blocked.
func Blockers(s *mapping.Session, r *Router, e int) (blocked []mrrg.Node, ok bool) {
	ed := s.M.DFG.Edges[e]
	if !s.M.Placed(ed.From) || !s.M.Placed(ed.To) {
		return nil, false
	}
	lat := s.M.Latency(e)
	if lat < 1 {
		return nil, false
	}
	net := mrrg.Net(ed.From)
	st := s.State
	relaxed := func(n mrrg.Node, phase int) (float64, bool) {
		if st.Usable(n, net, phase) {
			if occ, _ := st.Occupant(n); occ == net {
				return StrictSharedCost, true
			}
			return 1, true
		}
		// Occupied by a foreign net (or the wrong phase of our own):
		// admitted, at a price. Usable already rejected invalid nodes
		// only together with occupancy, so re-check validity.
		if occ, _ := st.Occupant(n); occ == mrrg.NoNet {
			return 0, false // invalid node, not contention
		}
		return blockerPenalty, true
	}
	src := s.Graph.FU(s.M.Place[ed.From].PE, s.M.Place[ed.From].Time)
	dst := s.Graph.FU(s.M.Place[ed.To].PE, s.M.Place[ed.To].Time)
	path, found := r.FindPath(src, dst, lat, relaxed, StrictSharedCost)
	if !found {
		return nil, false
	}
	for _, n := range path {
		if occ, _ := st.Occupant(n); occ != mrrg.NoNet && occ != net {
			blocked = append(blocked, n)
		}
	}
	return blocked, true
}

// maxAttributedEdges bounds the relaxed re-searches one failed attempt
// pays for: attribution is a post-mortem, not a search phase.
const maxAttributedEdges = 16

// AttributeFailures feeds a failed attempt's unroutable edges and the
// occupants blocking them into its diagnostics: for each unrouted edge
// between placed endpoints (capped), the relaxed search's blockers are
// charged as contention with the blocking occupant named as the
// contender. Call it on a failed attempt before att.Finish; it is a
// no-op when diagnostics are disabled.
func AttributeFailures(att *diag.IIAttempt, s *mapping.Session, r *Router) {
	if att == nil {
		return
	}
	edges := 0
	for e := range s.M.Routes {
		if s.M.Routed(e) {
			continue
		}
		ed := s.M.DFG.Edges[e]
		if !s.M.Placed(ed.From) || !s.M.Placed(ed.To) {
			continue
		}
		if edges >= maxAttributedEdges {
			return
		}
		edges++
		blocked, ok := Blockers(s, r, e)
		if !ok {
			continue
		}
		for _, n := range blocked {
			occ, _ := s.State.Occupant(n)
			att.Contend(n, occ)
			// The failing edge's own net fought for it too.
			att.Contend(n, mrrg.Net(ed.From))
		}
	}
}
