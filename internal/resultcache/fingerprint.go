package resultcache

import (
	"strconv"
	"strings"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mrrg"
)

// Request captures the fingerprint-relevant mapping options: the fields
// of a mapping request that can change the committed mapping. Wall-clock
// -only knobs (speculative sweep width, tracers, loggers) are
// deliberately absent — PR 5's determinism matrix proves the committed
// mapping and stats are bit-identical at every sweep width, and
// observers never feed back into the search. See docs/CACHING.md.
type Request struct {
	// Mapper is the algorithm name; aliases are canonicalised by
	// CanonicalMapper so "PF*", "pf" and "pathfinder" share a key.
	Mapper string
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
	// TimePerII bounds the wall-clock per attempted II. It is keyed
	// verbatim (zero means "mapper default"): a budget change can move
	// which II the sweep commits, so budgets may never share an entry.
	TimePerII time.Duration
	// MaxII caps the II sweep, same reasoning as TimePerII.
	MaxII int
	// Backends is the canonical comma-joined backend subset of a
	// portfolio request (see internal/portfolio); empty for single
	// mappers. Different subsets can commit different mappings (a
	// higher-priority backend may win a tie), so subsets never share an
	// entry. Must already be canonical (portfolio.Canonical) — the
	// fingerprint keys it verbatim.
	Backends string
}

// Key is the canonical fingerprint triple identifying one compile:
// what is mapped (DFG), onto what (Arch), and how (Opts). Two requests
// with equal keys commit bit-identical mappings, so a finished mapping
// is a content-addressed artifact.
type Key struct {
	DFG  string
	Arch string
	Opts string
}

// String joins the triple with a separator that cannot occur in any
// component (components use '|', ',' and '\x00' internally).
func (k Key) String() string { return k.DFG + "\x1f" + k.Arch + "\x1f" + k.Opts }

// KeyFor fingerprints one mapping request. The arch component reuses
// the canonical CGRA serialisation the shared MRRG cache keys on
// (mrrg.ArchFingerprint), so the two caches can never disagree about
// whether two architectures are "the same".
func KeyFor(g *dfg.Graph, a *arch.CGRA, req Request) Key {
	return Key{
		DFG:  DFGFingerprint(g),
		Arch: mrrg.ArchFingerprint(a),
		Opts: OptionsFingerprint(req),
	}
}

// CanonicalMapper canonicalises mapper-name aliases and is the single
// authority on which mapper names exist: the public API, the serve
// daemon and the eval harness spell the same algorithms differently
// ("rewire"/"Rewire", "pathfinder"/"pf"/"PF*", "sa"/"SA",
// "portfolio"/"Portfolio"), and an alias must never cause a spurious
// cache miss. Unknown names report ok=false so callers reject them at
// the boundary instead of silently fingerprinting a name no mapper
// answers to.
func CanonicalMapper(name string) (canonical string, ok bool) {
	switch s := strings.ToLower(name); s {
	case "", "rewire":
		return "rewire", true
	case "pf", "pf*", "pathfinder":
		return "pathfinder", true
	case "sa":
		return "sa", true
	case "portfolio":
		return "portfolio", true
	default:
		return s, false
	}
}

// NormalizeMapper is CanonicalMapper for trust-the-input callers:
// ledger ingestion reads mapper names from arbitrary on-disk records
// and must group them somehow, so unknown names are lower-cased and
// kept distinct rather than rejected. Fingerprinting paths must use
// CanonicalMapper (and reject !ok) instead.
func NormalizeMapper(name string) string {
	s, _ := CanonicalMapper(name)
	return s
}

// DFGFingerprint canonically serialises every DFG field a mapper (or a
// consumer of Mapping.DFG) can observe: name, per-node operation kinds
// and names, and per-edge endpoints, inter-iteration distances and
// operand slots. Node names are included because a cached Mapping
// shares the DFG of the compile that populated the entry, and rendered
// schedules print those names. No hashing: equal fingerprints mean
// byte-identical graphs, so sharing is exact.
func DFGFingerprint(g *dfg.Graph) string {
	var b strings.Builder
	b.Grow(len(g.Name) + 12*len(g.Nodes) + 16*len(g.Edges) + 16)
	b.WriteString(g.Name)
	b.WriteString("|n")
	b.WriteString(strconv.Itoa(len(g.Nodes)))
	for _, v := range g.Nodes {
		b.WriteByte('\x00')
		b.WriteString(v.Name)
		b.WriteByte('\x00')
		b.WriteString(strconv.Itoa(int(v.Op)))
	}
	b.WriteString("|e")
	b.WriteString(strconv.Itoa(len(g.Edges)))
	for _, e := range g.Edges {
		b.WriteByte('\x00')
		b.WriteString(strconv.Itoa(e.From))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.To))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.Dist))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.Operand))
	}
	return b.String()
}

// OptionsFingerprint canonically serialises the fingerprint-relevant
// options. The mapper name must be one CanonicalMapper accepts —
// fingerprinting a name no mapper answers to would cache-key garbage,
// so an unknown name panics (callers validate at their boundary, same
// as eval's unknown-mapper panic). The backend-subset component is
// appended only for portfolio requests, keeping every pre-portfolio
// fingerprint byte-identical to what it was.
func OptionsFingerprint(req Request) string {
	m, ok := CanonicalMapper(req.Mapper)
	if !ok {
		panic("resultcache: unknown mapper name " + strconv.Quote(req.Mapper))
	}
	var b strings.Builder
	b.Grow(48)
	b.WriteString("m=")
	b.WriteString(m)
	b.WriteString("|s=")
	b.WriteString(strconv.FormatInt(req.Seed, 10))
	b.WriteString("|t=")
	b.WriteString(strconv.FormatInt(int64(req.TimePerII), 10))
	b.WriteString("|ii=")
	b.WriteString(strconv.Itoa(req.MaxII))
	if req.Backends != "" {
		b.WriteString("|b=")
		b.WriteString(req.Backends)
	}
	return b.String()
}
