package viz

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update. Golden files pin the exact rendered text so
// formatting regressions (column widths, orderings, headers) surface
// as diffs instead of slipping through substring checks.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/viz -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s does not match golden file; run go test ./internal/viz -update if intended\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestUtilisationGolden(t *testing.T) {
	m := smallMapping(t)
	got, err := Utilisation(m)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "utilisation", got)
}

func TestRouteTableGolden(t *testing.T) {
	m := smallMapping(t)
	got, err := RouteTable(m)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "routetable", got)
}

func TestRouteTableGoldenUnrouted(t *testing.T) {
	m := smallMapping(t).Clone()
	m.Routes[1] = nil
	got, err := RouteTable(m)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "routetable_unrouted", got)
}
