// Quickstart: map a bundled benchmark kernel onto the paper's baseline
// 4x4 CGRA with the Rewire mapper and print the resulting modulo
// schedule.
package main

import (
	"fmt"
	"log"

	"rewire"
)

func main() {
	// Load the FFT butterfly kernel (MachSuite) as a data-flow graph.
	g, err := rewire.LoadKernel("fft")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Stats())

	// The paper's baseline fabric: 4x4 PEs, 4 registers each, two memory
	// banks reachable from the left column.
	cgra := rewire.New4x4(4)
	fmt.Println(cgra)
	fmt.Println("theoretical minimum II:", rewire.MII(g, cgra))

	// Map with Rewire (the default mapper). Seeded runs are reproducible.
	m, res, err := rewire.Map(g, cgra, rewire.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// The mapping is independently re-validated here as a demonstration;
	// Map already guarantees validity.
	if err := rewire.Validate(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(rewire.Render(m))

	util, err := rewire.RenderUtilisation(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(util)
}
