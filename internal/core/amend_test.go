package core

import (
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/pathfinder"
	"rewire/internal/stats"
)

func TestAmendRepairsForeignInitialMapping(t *testing.T) {
	// Build a partial mapping with PF*'s initial pass at a generous II,
	// then hand it to Amend as "someone else's" mapping.
	g := kernels.MustLoad("fft")
	a := arch.New4x4(4)
	mii := g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts())
	var tmp stats.Result
	sess, _ := pathfinder.BuildInitial(mapping.New(g, a, mii+2), 3, &tmp)
	initial := sess.M.Clone()

	// Generous budgets: the amendment is work-bounded (ClusterFailBudget),
	// and a tight wall-clock cutoff flakes under -race's ~20x slowdown.
	// Whether a given cluster draw repairs this particular initial mapping
	// is seed-sensitive, so the failure budget is raised well above the
	// production default: the test asserts Amend's repair capability, not
	// the luck of one draw.
	repaired, res, err := Amend(initial, Options{Seed: 1, TimePerII: time.Hour, ClusterFailBudget: 24})
	if err != nil {
		t.Fatalf("amend failed: %v", err)
	}
	if err := mapping.Validate(repaired); err != nil {
		t.Fatal(err)
	}
	if repaired.II != initial.II {
		t.Fatalf("amend changed II: %d -> %d", initial.II, repaired.II)
	}
	if !res.Success {
		t.Fatal("result not marked successful")
	}
	// The input must be untouched (still has its ill nodes, if any).
	if initial.Complete() != (len(initialIll(t, initial)) == 0) {
		t.Fatal("input mapping mutated")
	}
}

func initialIll(t *testing.T, m *mapping.Mapping) []int {
	t.Helper()
	s, err := mapping.Restore(m)
	if err != nil {
		t.Fatal(err)
	}
	return s.IllMapped()
}

func TestAmendRejectsCorruptMapping(t *testing.T) {
	g := kernels.MustLoad("mvt")
	a := arch.New4x4(4)
	m := mapping.New(g, a, 3)
	// Two nodes on the same FU slot: Restore must fail.
	m.Place[0] = mapping.Placement{PE: 0, Time: 0}
	m.Place[1] = mapping.Placement{PE: 0, Time: 3}
	if _, _, err := Amend(m, Options{Seed: 1, TimePerII: time.Second}); err == nil {
		t.Fatal("expected inconsistency error")
	}
}

func TestAmendAlreadyValidMappingIsNoOp(t *testing.T) {
	g := kernels.MustLoad("gesummv")
	a := arch.New4x4(4)
	m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil {
		t.Skipf("setup failed: %v", res)
	}
	repaired, ares, err := Amend(m, Options{Seed: 1, TimePerII: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ares.ClusterAmendments != 0 {
		t.Fatalf("valid mapping triggered %d amendments", ares.ClusterAmendments)
	}
	if err := mapping.Validate(repaired); err != nil {
		t.Fatal(err)
	}
}
