package viz

import (
	"strings"
	"testing"

	"rewire/internal/ledger"
)

func qorEntries() []ledger.Entry {
	e := func(kernel, mapper string, ii int, ms float64) ledger.Entry {
		return ledger.Entry{
			Kernel: kernel, Arch: "4x4r4", Mapper: mapper,
			Success: ii > 0, II: ii, MII: 2, CompileMS: ms,
		}
	}
	return []ledger.Entry{
		e("mvt", "rewire", 3, 10),
		e("mvt", "rewire", 2, 12),
		e("mvt", "pathfinder", 4, 30),
		e("atax", "rewire", 2, 8),
		e("atax", "pathfinder", 0, 50), // failed
	}
}

func TestRenderQoR(t *testing.T) {
	out := RenderQoR(qorEntries())
	for _, want := range []string{
		"5 runs in 4 groups",
		"mvt@4x4r4", "atax@4x4r4",
		"mapping quality", "compile-time trend", "win rate",
		// rewire beats pathfinder on both combos (lower best II on mvt,
		// success-vs-failure on atax).
		"2/2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII dashboard misses %q:\n%s", want, out)
		}
	}
	// The II series for mvt/rewire has two points: the sparkline must
	// not be empty.
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Error("dashboard has no sparklines")
	}
}

func TestRenderQoRHTML(t *testing.T) {
	out := RenderQoRHTML(qorEntries())
	for _, want := range []string{
		"<!DOCTYPE html>", "QoR dashboard",
		"mvt@4x4r4", "win rate", "2/2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML dashboard misses %q", want)
		}
	}
	// Kernel names are user input on the serve path: they must be
	// escaped.
	evil := []ledger.Entry{{Kernel: "<script>", Arch: "a", Mapper: "rewire", Success: true, II: 1, MII: 1}}
	if strings.Contains(RenderQoRHTML(evil), "<script>") {
		t.Error("HTML dashboard does not escape kernel names")
	}
}

func TestRenderQoREmpty(t *testing.T) {
	if out := RenderQoR(nil); !strings.Contains(out, "empty") {
		t.Errorf("empty ASCII dashboard: %q", out)
	}
	if out := RenderQoRHTML(nil); !strings.Contains(out, "empty") {
		t.Errorf("empty HTML dashboard: %q", out)
	}
}
