package eval

import (
	"fmt"
	"io"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/kernelir"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
)

// Scaling reruns the paper's scalability observation (§V-A: Rewire
// "scales with CGRA size ... by effectively pruning away infeasible
// candidates") as an explicit experiment: map kernels of growing size on
// fabrics from 4x4 to 10x10 and report II and compile time for Rewire
// and PF*.
func Scaling(cfg Config, w io.Writer) {
	cfg = cfg.withDefaults()
	// Real CGRAs bound II by configuration-memory depth; capping the
	// study keeps failure sweeps (a mapper climbing II after repeated
	// failures) from dominating its runtime.
	if cfg.MaxII > 16 {
		cfg.MaxII = 16
	}
	fabrics := []*arch.CGRA{
		arch.New4x4(4),
		arch.New("6x6r4", 6, 6, 4, 4, 0, 5),
		arch.New8x8(4),
		arch.New("10x10r4", 10, 10, 4, 10, 0, 9),
	}
	works := []struct {
		label  string
		kernel string
		unroll int // additional unrolling on top of the registry variant
	}{
		{"susan", "susan", 1},
		{"gesummv(u)", "gesummv(u)", 1},
		{"fir5 x2", "fir5", 2},
		{"sobel x3", "sobel", 3},
	}
	fmt.Fprintln(w, "== Scaling: Rewire vs PF* across fabric sizes (II / compile ms; '-' = failed) ==")
	for _, work := range works {
		g := loadUnrolled(work.kernel, work.unroll)
		fmt.Fprintf(w, "\n-- %s (%d nodes) --\n", work.label, g.NumNodes())
		fmt.Fprintf(w, "%-9s %4s %16s %16s\n", "fabric", "MII", "Rewire", "PF*")
		for _, a := range fabrics {
			fmt.Fprintf(w, "%-9s %4d", a.Name, mapping.MII(g, a))
			for _, m := range []string{"Rewire", "PF*"} {
				_, res := RunDFG(m, g, a, cfg)
				if res.Success {
					fmt.Fprintf(w, " %6d %8.0fms", res.II, float64(res.Duration.Microseconds())/1000)
				} else {
					fmt.Fprintf(w, " %6s %8s  ", "-", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// loadUnrolled builds a registry kernel with extra unrolling applied on
// top of the variant's own factor.
func loadUnrolled(name string, extra int) *dfg.Graph {
	k, err := kernels.Get(name)
	if err != nil {
		panic(err)
	}
	prog := kernelir.MustParse(k.Source)
	if total := k.Unroll * extra; total > 1 {
		prog = kernelir.MustUnroll(prog, total)
	}
	g := kernelir.MustLower(prog)
	if extra > 1 {
		g.Name = fmt.Sprintf("%s*%d", name, extra)
	} else {
		g.Name = name
	}
	return g
}
