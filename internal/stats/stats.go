// Package stats defines the instrumentation record every mapper fills in:
// mapping quality (II vs MII), compilation effort (wall-clock time,
// single-node remapping iterations, router work) and Rewire-specific
// counters (cluster amendments, Placement(U) verification rate). The
// evaluation harness aggregates these into the paper's figures and
// tables.
package stats

import (
	"fmt"
	"time"
)

// Result records one mapping run.
type Result struct {
	// Mapper, Kernel and Arch identify the run.
	Mapper string
	Kernel string
	Arch   string

	// Success reports whether a valid mapping was found.
	Success bool
	// II is the achieved initiation interval (meaningful when Success).
	II int
	// MII is the theoretical minimum II for this kernel/architecture.
	MII int

	// RemapIterations counts single-node remapping iterations for PF* and
	// SA (each iteration unmaps one node), matching Table I of the paper.
	RemapIterations int
	// ClusterAmendments counts Rewire's multi-node amendment rounds (one
	// per cluster mapped in one shot); Rewire's analogue of remapping.
	ClusterAmendments int
	// PlacementsTried counts candidate Placement(U) combinations Rewire
	// enumerated, and candidate evaluations for PF*/SA.
	PlacementsTried int64
	// VerifyAttempts / VerifySuccesses measure Rewire's Placement(U)
	// routing-verification success rate (the paper reports ~95%).
	VerifyAttempts  int64
	VerifySuccesses int64
	// RouterExpansions counts priority-queue pops in the router: a
	// hardware-independent proxy for routing work.
	RouterExpansions int64

	// Duration is the mapping wall-clock time.
	Duration time.Duration

	// Portfolio is the per-backend lane accounting of a portfolio run;
	// nil for single-mapper runs.
	Portfolio *PortfolioStats
}

// PortfolioStats describes one portfolio run: which backend's lane won
// and what every backend's lanes cost. WinnerBackend is deterministic
// (a pure function of seed, backends, and kernel); the lane tallies are
// wall-clock accounting and vary with parallelism width, like Duration.
type PortfolioStats struct {
	// WinnerBackend is the canonical name of the backend whose lane
	// produced the committed mapping; empty when the portfolio failed.
	WinnerBackend string
	// PerBackend holds one entry per racing backend in priority order.
	PerBackend []BackendLanes
}

// BackendLanes is one backend's lane accounting across a portfolio run.
type BackendLanes struct {
	// Backend is the canonical backend name ("rewire", "pathfinder", "sa").
	Backend string
	// Launched counts lanes started; Won is 1 for the winning backend;
	// Cancelled counts lanes torn down early because a better lane
	// committed first.
	Launched  int
	Won       int
	Cancelled int
	// WastedMS is the wall-clock spent on this backend's discarded lanes.
	WastedMS int64
}

// Optimal reports whether the mapping achieved the theoretical MII.
func (r Result) Optimal() bool { return r.Success && r.II == r.MII }

// NearOptimal reports whether the mapping is within one of MII (the
// paper's "near-optimal" criterion includes optimal).
func (r Result) NearOptimal() bool { return r.Success && r.II-r.MII <= 1 }

// VerifyRate returns the Placement(U) verification success rate in
// [0,1], or 0 when nothing was verified.
func (r Result) VerifyRate() float64 {
	if r.VerifyAttempts == 0 {
		return 0
	}
	return float64(r.VerifySuccesses) / float64(r.VerifyAttempts)
}

// String gives a compact one-line summary.
func (r Result) String() string {
	status := fmt.Sprintf("II=%d (MII=%d)", r.II, r.MII)
	if !r.Success {
		status = fmt.Sprintf("FAILED (MII=%d)", r.MII)
	}
	s := fmt.Sprintf("%-8s %-12s %-8s %s  %8.1fms  remaps=%d amendments=%d",
		r.Mapper, r.Kernel, r.Arch, status,
		float64(r.Duration.Microseconds())/1000, r.RemapIterations, r.ClusterAmendments)
	if r.Portfolio != nil && r.Portfolio.WinnerBackend != "" {
		s += " winner=" + r.Portfolio.WinnerBackend
	}
	return s
}
