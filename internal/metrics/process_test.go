package metrics

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

// RegisterProcess must expose the three process gauges and the
// build-info identity gauge, and Refresh must land real values in the
// exposition.
func TestProcessCollectorExposition(t *testing.T) {
	reg := NewRegistry()
	pc := RegisterProcess(reg)
	pc.Refresh()

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()

	for _, want := range []string{
		"rewire_build_info{",
		"rewire_process_uptime_seconds",
		"rewire_process_goroutines_units",
		"rewire_process_heap_alloc_bytes",
		"rewire_process_gc_pause_seconds_total",
		"rewire_process_gc_cycles_units",
		"rewire_process_next_gc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition misses %s:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "# TYPE rewire_process_gc_pause_seconds_total counter") {
		t.Errorf("gc pause total not typed as a counter:\n%s", body)
	}
	// The info gauge's value is pinned to 1 and its labels carry the
	// identity.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "rewire_build_info{") {
			if !strings.HasSuffix(line, " 1") {
				t.Errorf("build info gauge not pinned to 1: %q", line)
			}
			for _, l := range []string{"go_version=", "vcs_revision=", "modified="} {
				if !strings.Contains(line, l) {
					t.Errorf("build info gauge misses label %s: %q", l, line)
				}
			}
		}
		if strings.HasPrefix(line, "rewire_process_goroutines_units ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("goroutine gauge not refreshed: %q", line)
			}
		}
	}
}

// The _info suffix is an exception for gauges only; counters and
// histograms must still be rejected, as must malformed info names.
func TestInfoNameRule(t *testing.T) {
	if err := CheckName("rewire_build_info", TypeGauge); err != nil {
		t.Errorf("rewire_build_info rejected for a gauge: %v", err)
	}
	if err := CheckName("rewire_build_info", TypeCounter); err == nil {
		t.Error("rewire_build_info accepted for a counter")
	}
	if err := CheckName("rewire_info", TypeGauge); err == nil {
		t.Error("rewire_info (no name segment) accepted")
	}
}

// A nil collector (nil registry) must no-op.
func TestProcessCollectorNil(t *testing.T) {
	var reg *Registry
	pc := RegisterProcess(reg)
	pc.Refresh() // must not panic
}

// The GC metrics must carry real runtime values: forcing a collection
// bumps the cycle count, accrues (or at least never decreases) pause
// time, and leaves a positive next-GC target.
func TestProcessCollectorGCMetrics(t *testing.T) {
	reg := NewRegistry()
	pc := RegisterProcess(reg)
	pc.Refresh()
	cyclesBefore := pc.gcCycles.Value()
	pauseBefore := pc.gcPause.Value()

	runtime.GC()
	runtime.GC()
	pc.Refresh()

	if got := pc.gcCycles.Value(); got < cyclesBefore+2 {
		t.Errorf("gc cycles = %v after two forced GCs (was %v)", got, cyclesBefore)
	}
	if got := pc.gcPause.Value(); got < pauseBefore {
		t.Errorf("gc pause total went backwards: %v -> %v", pauseBefore, got)
	}
	if got := pc.nextGC.Value(); got <= 0 {
		t.Errorf("next GC target = %v, want > 0", got)
	}
	// Refresh with no new pauses must not inflate the counter.
	stable := pc.gcPause.Value()
	pc.Refresh()
	pc.Refresh()
	if got := pc.gcPause.Value(); got != stable && got < stable {
		t.Errorf("pause counter unstable across idle refreshes: %v -> %v", stable, got)
	}
}
