// Package arch describes the target coarse-grained reconfigurable array
// (CGRA): a rectangular grid of processing elements (PEs) connected by a
// mesh network-on-chip, with per-PE register files and a set of memory
// banks reachable from designated PE columns.
//
// The description is deliberately minimal: everything the mappers need is
// derivable from the grid dimensions, the per-PE register count, the set of
// memory-capable PEs, and the bank count. The time-extended view used for
// placement and routing lives in package mrrg.
package arch

import "fmt"

// Dir identifies one of the four mesh output directions of a PE.
type Dir int

// Mesh link directions. NumDirs is the number of physical output links per
// PE; boundary PEs simply have some directions unconnected.
const (
	North Dir = iota
	East
	South
	West
	NumDirs
)

// String returns the single-letter conventional name of the direction.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// CGRA is an immutable description of a CGRA instance.
type CGRA struct {
	// Name is a short human-readable identifier such as "4x4r4".
	Name string
	// Rows and Cols give the PE grid dimensions.
	Rows, Cols int
	// Regs is the number of registers in each PE's register file.
	Regs int
	// Banks is the number of on-chip memory banks. Each bank serves at
	// most one access per cycle.
	Banks int
	// MemPE marks, per PE index, whether that PE may execute memory
	// operations (loads and stores).
	MemPE []bool
	// PECaps optionally makes the fabric heterogeneous: per-PE operation
	// class support (see caps.go). nil means every PE supports every
	// class, which is the paper's (homogeneous) configuration.
	PECaps []CapMask
	// Torus enables wrap-around mesh links. The paper's architectures are
	// plain meshes, so presets leave this false.
	Torus bool
}

// New constructs a CGRA with the given grid, register file size and bank
// count. memCols lists the columns whose PEs can access memory.
func New(name string, rows, cols, regs, banks int, memCols ...int) *CGRA {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("arch: non-positive grid %dx%d", rows, cols))
	}
	if regs < 0 {
		panic("arch: negative register count")
	}
	c := &CGRA{
		Name:  name,
		Rows:  rows,
		Cols:  cols,
		Regs:  regs,
		Banks: banks,
		MemPE: make([]bool, rows*cols),
	}
	for _, col := range memCols {
		if col < 0 || col >= cols {
			panic(fmt.Sprintf("arch: memory column %d out of range [0,%d)", col, cols))
		}
		for r := 0; r < rows; r++ {
			c.MemPE[c.PEIndex(r, col)] = true
		}
	}
	return c
}

// PortsPerBank is the number of accesses each memory bank serves per
// cycle (the banks are dual-ported, one read port and one write port).
const PortsPerBank = 2

// NumPEs returns the total number of processing elements.
func (c *CGRA) NumPEs() int { return c.Rows * c.Cols }

// BankPorts returns the total memory accesses the fabric can issue per
// cycle across all banks.
func (c *CGRA) BankPorts() int { return c.Banks * PortsPerBank }

// NumMemPEs returns how many PEs can issue memory operations.
func (c *CGRA) NumMemPEs() int {
	n := 0
	for _, m := range c.MemPE {
		if m {
			n++
		}
	}
	return n
}

// PEIndex converts (row, col) coordinates to a flat PE index.
func (c *CGRA) PEIndex(row, col int) int { return row*c.Cols + col }

// PECoord converts a flat PE index back to (row, col) coordinates.
func (c *CGRA) PECoord(pe int) (row, col int) { return pe / c.Cols, pe % c.Cols }

// Neighbor returns the PE reached by leaving pe in direction d, or -1 if
// that link does not exist (mesh boundary with Torus disabled).
func (c *CGRA) Neighbor(pe int, d Dir) int {
	row, col := c.PECoord(pe)
	switch d {
	case North:
		row--
	case South:
		row++
	case East:
		col++
	case West:
		col--
	default:
		return -1
	}
	if c.Torus {
		row = (row + c.Rows) % c.Rows
		col = (col + c.Cols) % c.Cols
	} else if row < 0 || row >= c.Rows || col < 0 || col >= c.Cols {
		return -1
	}
	return c.PEIndex(row, col)
}

// Manhattan returns the mesh hop distance between two PEs (ignoring Torus
// shortcuts; it is used only as a heuristic placement cost).
func (c *CGRA) Manhattan(a, b int) int {
	ar, ac := c.PECoord(a)
	br, bc := c.PECoord(b)
	dr, dc := ar-br, ac-bc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// String implements fmt.Stringer.
func (c *CGRA) String() string {
	return fmt.Sprintf("%s (%dx%d, %d regs/PE, %d banks, %d mem PEs)",
		c.Name, c.Rows, c.Cols, c.Regs, c.Banks, c.NumMemPEs())
}

// The four architecture configurations evaluated in the paper (§V):
// 4x4 CGRAs with 4/2/1 registers per PE and two memory banks reachable
// from the left-most column, and an 8x8 CGRA with 4 registers per PE and
// eight banks reachable from the left-most and right-most columns.

// New4x4 builds a 4x4 CGRA with the given register-file size, two memory
// banks, and memory access on the left-most column.
func New4x4(regs int) *CGRA {
	return New(fmt.Sprintf("4x4r%d", regs), 4, 4, regs, 2, 0)
}

// New8x8 builds an 8x8 CGRA with the given register-file size, eight
// memory banks, and memory access on the left-most and right-most columns.
func New8x8(regs int) *CGRA {
	return New(fmt.Sprintf("8x8r%d", regs), 8, 8, regs, 8, 0, 7)
}

// Presets returns the four CGRA configurations used in the paper's
// evaluation, in the order they appear in Figure 5.
func Presets() []*CGRA {
	return []*CGRA{New4x4(4), New8x8(4), New4x4(2), New4x4(1)}
}
