// Package eval is the experiment harness: it reruns the paper's full
// evaluation — Figure 5 (mapping quality as II across four CGRA
// configurations), Figure 6 (compilation time), Table I (single-node
// remapping iterations) and the §V summary statistics — over the three
// mappers (Rewire, PF*, SA) and prints the same rows/series the paper
// reports.
package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rewire/internal/arch"
	"rewire/internal/core"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/kernels"
	"rewire/internal/ledger"
	"rewire/internal/mapping"
	"rewire/internal/obs"
	"rewire/internal/pathfinder"
	"rewire/internal/portfolio"
	"rewire/internal/resultcache"
	"rewire/internal/sa"
	"rewire/internal/stats"
	"rewire/internal/trace"
	"rewire/internal/viz"
)

// Config tunes an evaluation run.
type Config struct {
	// Seed makes the whole evaluation reproducible.
	Seed int64
	// TimePerII is each mapper's per-II budget (the paper allowed one
	// hour on a Xeon; the default here is 2s, which preserves the
	// comparison's shape at laptop scale).
	TimePerII time.Duration
	// MaxII caps the II sweep (default 32).
	MaxII int
	// Jobs is the number of mapper runs executed concurrently (default
	// GOMAXPROCS). Every run is deterministic in Config.Seed and owns its
	// MRRG, router and mapping state, so results are identical at every
	// job count; Jobs=1 reproduces the serial harness exactly. See
	// docs/CONCURRENCY.md.
	Jobs int
	// SweepParallelism is each run's speculative II-sweep window (0 or 1
	// is the serial sweep). Speculation changes wall-clock only, never the
	// committed IIs or mappings, so report tables are unaffected; combine
	// with Jobs thoughtfully — total concurrency is roughly Jobs times
	// this window. See docs/CONCURRENCY.md, "Layer 3".
	SweepParallelism int
	// Verbose streams one line per finished run to Out, in canonical
	// combo order regardless of Jobs.
	Verbose bool
	// Out receives progress and reports (required).
	Out io.Writer
	// Tracer, when non-nil, receives phase spans and counters from every
	// run dispatched through Run/RunDFG. A nil tracer costs one pointer
	// check per instrumentation point (see docs/OBSERVABILITY.md).
	Tracer *trace.Tracer
	// Logger, when non-nil, receives structured run-level log records
	// from the dispatched mappers and the harness itself. Errors the
	// harness must not lose (e.g. a failed trace export) fall back to a
	// default stderr logger when Logger is nil.
	Logger *obs.Logger
	// TraceDir, when non-empty, makes RunCombos give every mapper run its
	// own tracer and export it to <TraceDir>/<mapper>_<kernel>@<arch>
	// .trace.json (Chrome trace_event, Perfetto-loadable) and .jsonl
	// (structured spans/counters). Per-run tracers keep the counter
	// totals attributable to a single run even under Jobs>1.
	TraceDir string
	// ReportDir, when non-empty, makes RunCombos give every mapper run
	// its own diagnostics collector and export the post-mortem to
	// <ReportDir>/<mapper>_<kernel>@<arch>.report.json (schema
	// "rewire-report-v1") and .report.html. Per-run collectors keep the
	// attribution per run even under Jobs>1; failed runs are exactly the
	// ones whose reports matter.
	ReportDir string
	// Diag, when non-nil, is a shared diagnostics collector for runs
	// dispatched through Run/RunDFG directly (RunCombos uses per-run
	// collectors via ReportDir instead). nil disables collection.
	Diag *diag.Collector
	// Cache, when non-nil, routes every dispatched run through a
	// result-level mapping cache: repeated (kernel, arch, options)
	// requests — e.g. re-running a report after tweaking one arch, or a
	// sweep whose combos overlap — are served as deep copies instead of
	// recompiling. Results are bit-identical with or without the cache.
	// See docs/CACHING.md.
	Cache *resultcache.Cache
	// Ledger, when non-nil, receives one QoR entry per run dispatched
	// through Run/RunDFG: achieved II vs MII, compile time, cache
	// outcome and an attempt/contention summary, fingerprinted like the
	// result cache. When Diag is nil each run gets a private collector
	// so the summary is attributable to that run alone; a shared Diag
	// collector is used as-is and its summary is cumulative. nil
	// disables recording at the cost of one pointer check.
	Ledger *ledger.Ledger
	// Mappers, when non-empty, restricts RunCombos to the listed mappers
	// (display names, e.g. "Rewire" or "Portfolio"). Empty runs the
	// paper's three. Reports render missing runs as "-".
	Mappers []string
	// PortfolioBackends selects the backends raced by "Portfolio" runs
	// (canonicalised — priority order, aliases folded). Empty races the
	// full registry. Part of the result fingerprint: a subset explores a
	// different schedule and may commit a different mapping.
	PortfolioBackends []string
	// PortfolioParallelism is the lane width of "Portfolio" runs (0 races
	// one lane per backend; 1 is the priority-ordered serial schedule).
	// Wall-clock only — the committed result is width-independent — so
	// it is exempt from the fingerprint. See docs/CONCURRENCY.md,
	// "Layer 4".
	PortfolioParallelism int
}

func (c Config) withDefaults() Config {
	if c.TimePerII == 0 {
		c.TimePerII = 2 * time.Second
	}
	if c.MaxII == 0 {
		c.MaxII = 32
	}
	if c.Jobs == 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	return c
}

// Combo is one benchmark-architecture configuration of the evaluation.
type Combo struct {
	Kernel string
	Arch   *arch.CGRA
}

// Combos returns the 47 benchmark-architecture configurations evaluated
// in the paper (§V: "This evaluation uses 47 different DFG and
// architecture combinations"), distributed over the four CGRA presets.
// The 4x4 one-register list is exactly Table I's benchmark set; unrolled
// kernels concentrate on the 8x8 fabric, as in the paper.
func Combos() []Combo {
	lists := []struct {
		a       *arch.CGRA
		kernels []string
	}{
		{arch.New4x4(4), []string{
			"atax", "bicg(u)", "cholesky", "crc", "doitgen", "fft", "gemver",
			"gesummv", "gramsch", "lu", "ludcmp", "mvt", "stencil2d", "viterbi",
		}},
		{arch.New8x8(4), []string{
			"atax", "bicg(u)", "cholesky", "doitgen", "fft", "gemm", "gemver",
			"gesummv(u)", "gramsch", "lu", "ludcmp", "spmv", "susan",
		}},
		{arch.New4x4(2), []string{
			"atax", "cholesky", "doitgen", "fft", "gemm", "gesummv",
			"gramsch", "lu", "ludcmp", "mvt", "spmv", "viterbi",
		}},
		{arch.New4x4(1), []string{
			"gramsch", "ludcmp", "lu", "gemver", "cholesky", "gesummv",
			"atax", "bicg(u)",
		}},
	}
	var out []Combo
	for _, l := range lists {
		for _, k := range l.kernels {
			out = append(out, Combo{Kernel: k, Arch: l.a})
		}
	}
	return out
}

// Mappers in the order the paper reports them. The "Portfolio" racer is
// not part of the paper's comparison and runs only when selected via
// Config.Mappers.
var Mappers = []string{"Rewire", "PF*", "SA"}

// mappers resolves the Config.Mappers filter against the default set.
func (c Config) mappers() []string {
	if len(c.Mappers) > 0 {
		return c.Mappers
	}
	return Mappers
}

// cacheRequest builds the fingerprint request for one run. Portfolio
// runs additionally key on the canonical backend subset, matching the
// public rewire.CacheKey, so eval-populated caches and ledgers are
// interoperable with API and serve traffic.
func cacheRequest(mapper string, cfg Config) resultcache.Request {
	req := resultcache.Request{
		Mapper: mapper, Seed: cfg.Seed, TimePerII: cfg.TimePerII, MaxII: cfg.MaxII,
	}
	if mapper == "Portfolio" {
		csv, err := portfolio.Canonical(cfg.PortfolioBackends)
		if err != nil {
			panic("eval: " + err.Error())
		}
		req.Backends = csv
	}
	return req
}

// Run maps one combo with one mapper under the config's budgets.
func Run(mapper string, cb Combo, cfg Config) (*mapping.Mapping, stats.Result) {
	sp := cfg.Tracer.StartSpan(nil, "dfg_load").WithStr("kernel", cb.Kernel)
	g := kernels.MustLoad(cb.Kernel)
	sp.WithInt("nodes", int64(g.NumNodes())).End()
	return RunDFG(mapper, g, cb.Arch, cfg)
}

// RunDFG maps an arbitrary DFG (not necessarily a registry kernel) on an
// architecture with one of the three mappers. With Config.Cache set the
// compile is content-addressed: the key is built after defaults are
// resolved, so a cached entry and a fresh run always agree on the
// effective budgets.
func RunDFG(mapper string, g *dfg.Graph, a *arch.CGRA, cfg Config) (*mapping.Mapping, stats.Result) {
	cfg = cfg.withDefaults()
	// With a ledger but no caller-supplied collector, give the run a
	// private one so the recorded attempt/contention summary is
	// attributable to this run alone.
	if cfg.Ledger != nil && cfg.Diag == nil {
		cfg.Diag = diag.NewCollector()
	}
	var (
		m      *mapping.Mapping
		res    stats.Result
		cached bool
	)
	if cfg.Cache != nil {
		key := resultcache.KeyFor(g, a, cacheRequest(mapper, cfg))
		var out resultcache.Outcome
		m, res, out, _ = cfg.Cache.Do(context.Background(), key, func() (*mapping.Mapping, stats.Result) {
			return runDFGUncached(mapper, g, a, cfg)
		})
		cached = out.Hit || out.Shared
	} else {
		m, res = runDFGUncached(mapper, g, a, cfg)
	}
	appendLedger(cfg, g, a, mapper, res, cached)
	return m, res
}

// appendLedger records one finished run in the QoR ledger. Append
// failures are logged, never propagated: observability must not fail a
// mapping that succeeded.
func appendLedger(cfg Config, g *dfg.Graph, a *arch.CGRA, mapper string, res stats.Result, cached bool) {
	if cfg.Ledger == nil {
		return
	}
	dfgFP, archFP, optsFP := ledger.Fingerprints(g, a, cacheRequest(mapper, cfg))
	kernel := res.Kernel
	if kernel == "" {
		kernel = g.Name
	}
	e := ledger.Entry{
		Source: "eval",
		Kernel: kernel, Arch: a.Name, Mapper: mapper, Seed: cfg.Seed,
		Success: res.Success, Cached: cached, II: res.II, MII: res.MII,
		CompileMS: float64(res.Duration) / float64(time.Millisecond),
		DFGFP:     dfgFP, ArchFP: archFP, OptsFP: optsFP,
	}
	if res.Portfolio != nil {
		e.WinnerBackend = res.Portfolio.WinnerBackend
	}
	e.AttachReport(cfg.Diag.Report())
	if err := cfg.Ledger.Append(e); err != nil {
		lg := cfg.Logger
		if lg == nil {
			lg = obs.Default()
		}
		lg.Error("ledger append failed", "kernel", kernel, "arch", a.Name, "err", err)
	}
}

// runDFGUncached dispatches to the selected mapper.
func runDFGUncached(mapper string, g *dfg.Graph, a *arch.CGRA, cfg Config) (*mapping.Mapping, stats.Result) {
	switch mapper {
	case "Rewire":
		return core.Map(g, a, core.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
			SweepParallelism: cfg.SweepParallelism,
			Tracer:           cfg.Tracer, Logger: cfg.Logger, Diag: cfg.Diag,
		})
	case "PF*":
		return pathfinder.Map(g, a, pathfinder.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
			SweepParallelism: cfg.SweepParallelism,
			Tracer:           cfg.Tracer, Logger: cfg.Logger, Diag: cfg.Diag,
		})
	case "SA":
		return sa.Map(g, a, sa.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
			SweepParallelism: cfg.SweepParallelism,
			Tracer:           cfg.Tracer, Logger: cfg.Logger, Diag: cfg.Diag,
		})
	case "Portfolio":
		return portfolio.Map(g, a, portfolio.Options{
			Seed: cfg.Seed, MaxII: cfg.MaxII, TimePerII: cfg.TimePerII,
			Backends: cfg.PortfolioBackends, Parallelism: cfg.PortfolioParallelism,
			Tracer: cfg.Tracer, Logger: cfg.Logger, Diag: cfg.Diag,
		})
	default:
		panic("eval: unknown mapper " + mapper)
	}
}

// Results is the full evaluation outcome, indexed by mapper then combo
// key.
type Results struct {
	Combos  []Combo
	ByRun   map[string]stats.Result // key: mapper + "|" + comboKey
	Elapsed time.Duration
}

func comboKey(cb Combo) string { return cb.Kernel + "@" + cb.Arch.Name }

func runKey(mapper string, cb Combo) string { return mapper + "|" + comboKey(cb) }

// Get returns the recorded result for a mapper/combo pair.
func (r *Results) Get(mapper string, cb Combo) (stats.Result, bool) {
	res, ok := r.ByRun[runKey(mapper, cb)]
	return res, ok
}

// RunAll executes every mapper on every combo, fanning the runs across
// Config.Jobs workers.
func RunAll(cfg Config) *Results {
	return RunCombos(cfg, Combos())
}

// RunCombos executes every mapper on the given combos on a worker pool
// of Config.Jobs goroutines. Each run constructs its own mapping state
// (DFG, MRRG, router, RNG seeded from Config.Seed), so nothing mutable
// is shared between workers and the per-combo results are identical at
// every job count. Results are collected — and verbose progress lines
// printed — in the canonical (combo, mapper) order, so reports are
// byte-stable apart from measured durations.
func RunCombos(cfg Config, combos []Combo) *Results {
	cfg = cfg.withDefaults()
	mappers := cfg.mappers()
	out := &Results{Combos: combos, ByRun: make(map[string]stats.Result, len(combos)*len(mappers))}
	start := time.Now()

	type task struct {
		mapper string
		cb     Combo
	}
	tasks := make([]task, 0, len(combos)*len(mappers))
	for _, cb := range combos {
		for _, mapper := range mappers {
			tasks = append(tasks, task{mapper: mapper, cb: cb})
		}
	}
	results := make([]stats.Result, len(tasks))

	jobs := cfg.Jobs
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	if jobs <= 1 {
		// Serial path: identical to the historical harness, line for line.
		for i, t := range tasks {
			res := runOne(t.mapper, t.cb, cfg)
			results[i] = res
			if cfg.Verbose {
				fmt.Fprintln(cfg.Out, res)
			}
		}
	} else {
		type done struct {
			i   int
			res stats.Result
		}
		var next atomic.Int64
		ch := make(chan done, jobs)
		var wg sync.WaitGroup
		wg.Add(jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					ch <- done{i: i, res: runOne(tasks[i].mapper, tasks[i].cb, cfg)}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(ch)
		}()
		// In-order flush: a finished run's line prints only once every
		// earlier run has printed, keeping the stream deterministic.
		ready := make([]bool, len(tasks))
		flushed := 0
		for d := range ch {
			results[d.i] = d.res
			ready[d.i] = true
			for flushed < len(tasks) && ready[flushed] {
				if cfg.Verbose {
					fmt.Fprintln(cfg.Out, results[flushed])
				}
				flushed++
			}
		}
	}

	for i, t := range tasks {
		out.ByRun[runKey(t.mapper, t.cb)] = results[i]
	}
	out.Elapsed = time.Since(start)
	return out
}

// runOne executes one mapper run for RunCombos. With Config.TraceDir set
// the run gets a private tracer whose spans and counters are exported to
// a pair of files named after the run; otherwise the shared Config.Tracer
// (usually nil) is used as-is. Export failures are reported on stderr —
// never on Config.Out, which the in-order flush owns.
func runOne(mapper string, cb Combo, cfg Config) stats.Result {
	if cfg.TraceDir == "" && cfg.ReportDir == "" {
		_, res := Run(mapper, cb, cfg)
		return res
	}
	var tr *trace.Tracer
	if cfg.TraceDir != "" {
		tr = trace.New()
		cfg.Tracer = tr
	}
	var dc *diag.Collector
	if cfg.ReportDir != "" {
		dc = diag.NewCollector()
		cfg.Diag = dc
	}
	_, res := Run(mapper, cb, cfg)
	// Surface export failures through the structured logger; with no
	// logger wired, fall back to the shared stderr default rather than
	// losing the error (Config.Out is owned by the in-order progress
	// flush and stays untouched).
	lg := cfg.Logger
	if lg == nil {
		lg = obs.Default()
	}
	if tr != nil {
		if err := exportTrace(tr, cfg.TraceDir, mapper, cb); err != nil {
			lg.Error("trace export failed", "mapper", mapper, "combo", comboKey(cb), "err", err)
		}
	}
	if dc != nil {
		if err := exportReport(dc, cfg.ReportDir, mapper, cb); err != nil {
			lg.Error("report export failed", "mapper", mapper, "combo", comboKey(cb), "err", err)
		}
	}
	return res
}

// exportReport writes one run's post-mortem as <base>.report.json and
// <base>.report.html under dir.
func exportReport(dc *diag.Collector, dir, mapper string, cb Combo) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r := dc.Report()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	base := traceFileBase(mapper, cb)
	if err := os.WriteFile(filepath.Join(dir, base+".report.json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, base+".report.html"), []byte(viz.RenderReportHTML(r)), 0o644)
}

// exportTrace writes one run's tracer as <base>.trace.json (Chrome
// trace_event) and <base>.jsonl (structured) under dir.
func exportTrace(tr *trace.Tracer, dir, mapper string, cb Combo) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := traceFileBase(mapper, cb)
	chrome, err := os.Create(filepath.Join(dir, base+".trace.json"))
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(chrome); err != nil {
		chrome.Close()
		return err
	}
	if err := chrome.Close(); err != nil {
		return err
	}
	jsonl, err := os.Create(filepath.Join(dir, base+".jsonl"))
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(jsonl); err != nil {
		jsonl.Close()
		return err
	}
	return jsonl.Close()
}

// traceFileBase derives a filesystem-safe file stem from a run's
// identity: "PF*" and "bicg(u)" carry characters that shells and some
// filesystems dislike, so anything outside [A-Za-z0-9@._-] becomes '_'.
func traceFileBase(mapper string, cb Combo) string {
	return sanitizeFilename(mapper + "_" + comboKey(cb))
}

func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '@', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// MIIOf computes the theoretical minimum II of a combo.
func MIIOf(cb Combo) int {
	g := kernels.MustLoad(cb.Kernel)
	return mapping.MII(g, cb.Arch)
}

// archOrder returns the distinct architectures in evaluation order.
func (r *Results) archOrder() []*arch.CGRA {
	var order []*arch.CGRA
	seen := map[string]bool{}
	for _, cb := range r.Combos {
		if !seen[cb.Arch.Name] {
			seen[cb.Arch.Name] = true
			order = append(order, cb.Arch)
		}
	}
	return order
}

// combosOn returns the combos for one architecture, kernel-sorted.
func (r *Results) combosOn(a *arch.CGRA) []Combo {
	var out []Combo
	for _, cb := range r.Combos {
		if cb.Arch.Name == a.Name {
			out = append(out, cb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// fmtII renders an II cell: the value, "-" for a failed mapping.
func fmtII(res stats.Result, ok bool) string {
	if !ok || !res.Success {
		return "-"
	}
	return fmt.Sprintf("%d", res.II)
}
