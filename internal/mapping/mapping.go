// Package mapping defines the result of CGRA mapping — operation
// placements with absolute schedule times, edge routes through the MRRG,
// and memory-bank port assignments — plus a mutable Session used by the
// mappers and an independent validator used by tests and by mappers to
// certify results.
package mapping

import (
	"fmt"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mrrg"
)

// Placement is where and when a DFG node executes. Time is the absolute
// schedule cycle (not reduced modulo II): dependencies constrain absolute
// times, while resource occupancy is modulo II.
type Placement struct {
	PE   int
	Time int
}

// Unplaced marks a node without a placement.
var Unplaced = Placement{PE: -1, Time: 0}

// Mapping is the mapping of one DFG onto one CGRA at one II.
type Mapping struct {
	DFG  *dfg.Graph
	Arch *arch.CGRA
	II   int

	// Place is indexed by node ID; Place[v].PE < 0 means unplaced.
	Place []Placement
	// Routes is indexed by edge ID: the chain of routing resources
	// between producer FU and consumer FU (length = latency-1, so a
	// same-PE latency-1 edge has an empty but non-nil route). nil means
	// unrouted.
	Routes [][]mrrg.Node
	// BankPorts is indexed by node ID: the bank-port resource reserved by
	// a placed memory operation, mrrg.Invalid otherwise.
	BankPorts []mrrg.Node
}

// New returns an empty mapping for d on a at the given II.
func New(d *dfg.Graph, a *arch.CGRA, ii int) *Mapping {
	m := &Mapping{
		DFG:       d,
		Arch:      a,
		II:        ii,
		Place:     make([]Placement, d.NumNodes()),
		Routes:    make([][]mrrg.Node, d.NumEdges()),
		BankPorts: make([]mrrg.Node, d.NumNodes()),
	}
	for i := range m.Place {
		m.Place[i] = Unplaced
		m.BankPorts[i] = mrrg.Invalid
	}
	return m
}

// Placed reports whether node v has a placement.
func (m *Mapping) Placed(v int) bool { return m.Place[v].PE >= 0 }

// Routed reports whether edge e has a route.
func (m *Mapping) Routed(e int) bool { return m.Routes[e] != nil }

// Complete reports whether every node is placed and every edge routed.
func (m *Mapping) Complete() bool {
	for v := range m.Place {
		if !m.Placed(v) {
			return false
		}
	}
	for e := range m.Routes {
		if !m.Routed(e) {
			return false
		}
	}
	return true
}

// Latency returns the cycles the value of edge e spends in flight:
// consumerTime - producerTime + distance*II. Both endpoints must be
// placed. A valid mapping has Latency >= 1 for every edge.
func (m *Mapping) Latency(e int) int {
	ed := m.DFG.Edges[e]
	return m.Place[ed.To].Time - m.Place[ed.From].Time + ed.Dist*m.II
}

// Clone deep-copies the mapping (sharing the DFG and architecture).
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{DFG: m.DFG, Arch: m.Arch, II: m.II}
	c.Place = append([]Placement(nil), m.Place...)
	c.BankPorts = append([]mrrg.Node(nil), m.BankPorts...)
	c.Routes = make([][]mrrg.Node, len(m.Routes))
	for i, r := range m.Routes {
		if r != nil {
			c.Routes[i] = append([]mrrg.Node{}, r...)
		}
	}
	return c
}

// UnplacedNodes returns the IDs of nodes without placements.
func (m *Mapping) UnplacedNodes() []int {
	var out []int
	for v := range m.Place {
		if !m.Placed(v) {
			out = append(out, v)
		}
	}
	return out
}

// Summary is a one-line description for logs.
func (m *Mapping) Summary() string {
	placed, routed := 0, 0
	for v := range m.Place {
		if m.Placed(v) {
			placed++
		}
	}
	for e := range m.Routes {
		if m.Routed(e) {
			routed++
		}
	}
	return fmt.Sprintf("%s on %s II=%d: %d/%d placed, %d/%d routed",
		m.DFG.Name, m.Arch.Name, m.II, placed, len(m.Place), routed, len(m.Routes))
}
