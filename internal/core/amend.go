package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/route"
	"rewire/internal/stats"
	"rewire/internal/sweep"
)

// Amend repairs an arbitrary (possibly invalid) mapping at its own II —
// the paper's orthogonality claim: "Rewire ... can take any initial
// mapping from other mappers". The input mapping is not modified; the
// repaired copy is returned. It fails if the mapping's internal
// bookkeeping is inconsistent or if no valid amendment is found within
// the time budget.
func Amend(m *mapping.Mapping, opt Options) (*mapping.Mapping, stats.Result, error) {
	opt = opt.withDefaults()
	res := stats.Result{Mapper: "Rewire(amend)", Kernel: m.DFG.Name, Arch: m.Arch.Name}
	res.MII = mapping.MII(m.DFG, m.Arch)
	start := time.Now()

	sess, err := mapping.Restore(m)
	if err != nil {
		return nil, res, fmt.Errorf("rewire: initial mapping is inconsistent: %w", err)
	}
	tr := opt.Tracer
	root := tr.StartSpan(nil, "rewire.amend").
		WithStr("kernel", m.DFG.Name).WithStr("arch", m.Arch.Name).WithInt("ii", int64(m.II))
	defer root.End()
	opt.Diag.Begin(m.DFG, m.Arch, "Rewire(amend)", res.MII)
	opt.Progress.Publish(diag.Event{Type: "run_start", Mapper: "rewire",
		Kernel: m.DFG.Name, Arch: m.Arch.Name, MII: res.MII})
	att := opt.Diag.StartII(m.II, 0)
	am := &amender{
		g:      m.DFG,
		sess:   sess,
		router: route.ForSession(sess),
		rng:    rand.New(rand.NewSource(opt.Seed)),
		res:    &res,
		opt:    opt,
		pace:   sweep.NewPacer(context.Background(), time.Now().Add(opt.TimePerII), paceEvery),
		tr:     tr,
		ctr:    newCounters(tr),
		span:   root,
		att:    att,
		bus:    opt.Progress,
	}
	am.router.Instrument(tr)
	ok := am.amend()
	if !ok {
		route.AttributeFailures(att, am.sess, am.router)
	}
	att.Finish(ok, am.sess)
	committedII := 0
	if ok {
		committedII = m.II
	}
	opt.Diag.Commit(ok, committedII)
	opt.Progress.Publish(diag.Event{Type: "run_end", II: committedII, Outcome: outcomeWord(ok, false)})
	// Count router work on failure too (the audit contract: effort
	// counters are filled on every path, not only successes).
	res.RouterExpansions = am.router.Expansions
	am.ctr.routerExpansions.Add(am.router.Expansions)
	defer am.sess.Close()
	if !ok {
		res.Duration = time.Since(start)
		return nil, res, fmt.Errorf("rewire: could not amend %q on %s at II=%d within %s",
			m.DFG.Name, m.Arch.Name, m.II, opt.TimePerII)
	}
	res.Success = true
	res.II = m.II
	res.Duration = time.Since(start)
	if err := mapping.Validate(am.sess.M); err != nil {
		panic("rewire: amend produced invalid mapping: " + err.Error())
	}
	return am.sess.M, res, nil
}
