// Benchmarks regenerating the paper's tables and figures. Each
// Benchmark* corresponds to one evaluation artifact:
//
//	BenchmarkFig5_*   — mapping quality (II) per architecture (Figure 5)
//	BenchmarkFig6_*   — compilation time per mapper (Figure 6)
//	BenchmarkTable1   — single-node remapping iterations (Table I)
//	BenchmarkAblation — design-choice sweeps called out in DESIGN.md
//	BenchmarkSub*     — substrate micro-benchmarks (router, propagation,
//	                    MRRG construction, kernel lowering)
//
// Quality numbers are exposed via b.ReportMetric: sumII (total achieved
// II over the architecture's kernels, lower is better), fails, and
// per-mapper compile milliseconds. Budgets are scaled down (500ms per
// II) so the full suite runs in minutes; cmd/rewire-experiments runs the
// same comparison with larger budgets and pretty tables.
package rewire

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/core"
	"rewire/internal/diag"
	"rewire/internal/eval"
	"rewire/internal/kernels"
	"rewire/internal/ledger"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
	"rewire/internal/pathfinder"
	"rewire/internal/route"
	"rewire/internal/sa"
	"rewire/internal/stats"
)

const benchBudget = 300 * time.Millisecond

// benchCfg is the scaled-down evaluation config used by all benches.
func benchCfg() eval.Config {
	return eval.Config{Seed: 1, TimePerII: benchBudget, MaxII: 32}
}

// runFigure5 maps every kernel of one architecture with one mapper and
// reports aggregate quality metrics.
func runFigure5(b *testing.B, archName, mapper string) {
	var combos []eval.Combo
	for _, cb := range eval.Combos() {
		if cb.Arch.Name == archName {
			combos = append(combos, cb)
		}
	}
	if len(combos) == 0 {
		b.Fatalf("no combos for %s", archName)
	}
	for i := 0; i < b.N; i++ {
		sumII, fails := 0, 0
		for _, cb := range combos {
			_, res := eval.Run(mapper, cb, benchCfg())
			if res.Success {
				sumII += res.II
			} else {
				fails++
			}
		}
		b.ReportMetric(float64(sumII), "sumII")
		b.ReportMetric(float64(fails), "fails")
	}
}

func BenchmarkFig5_4x4r4_Rewire(b *testing.B) { runFigure5(b, "4x4r4", "Rewire") }
func BenchmarkFig5_4x4r4_PF(b *testing.B)     { runFigure5(b, "4x4r4", "PF*") }
func BenchmarkFig5_4x4r4_SA(b *testing.B)     { runFigure5(b, "4x4r4", "SA") }

func BenchmarkFig5_8x8r4_Rewire(b *testing.B) { runFigure5(b, "8x8r4", "Rewire") }
func BenchmarkFig5_8x8r4_PF(b *testing.B)     { runFigure5(b, "8x8r4", "PF*") }
func BenchmarkFig5_8x8r4_SA(b *testing.B)     { runFigure5(b, "8x8r4", "SA") }

func BenchmarkFig5_4x4r2_Rewire(b *testing.B) { runFigure5(b, "4x4r2", "Rewire") }
func BenchmarkFig5_4x4r2_PF(b *testing.B)     { runFigure5(b, "4x4r2", "PF*") }
func BenchmarkFig5_4x4r2_SA(b *testing.B)     { runFigure5(b, "4x4r2", "SA") }

func BenchmarkFig5_4x4r1_Rewire(b *testing.B) { runFigure5(b, "4x4r1", "Rewire") }
func BenchmarkFig5_4x4r1_PF(b *testing.B)     { runFigure5(b, "4x4r1", "PF*") }
func BenchmarkFig5_4x4r1_SA(b *testing.B)     { runFigure5(b, "4x4r1", "SA") }

// runFigure6 measures compile time (the benchmark's own ns/op is the
// figure: total mapping wall-clock for the architecture's kernel set).
func runFigure6(b *testing.B, archName, mapper string) {
	runFigure6Cfg(b, archName, mapper, benchCfg())
}

func runFigure6Cfg(b *testing.B, archName, mapper string, cfg eval.Config) {
	var combos []eval.Combo
	for _, cb := range eval.Combos() {
		if cb.Arch.Name == archName {
			combos = append(combos, cb)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cb := range combos {
			eval.Run(mapper, cb, cfg)
		}
	}
}

func BenchmarkFig6_4x4r2_Rewire(b *testing.B) { runFigure6(b, "4x4r2", "Rewire") }
func BenchmarkFig6_4x4r2_PF(b *testing.B)     { runFigure6(b, "4x4r2", "PF*") }
func BenchmarkFig6_4x4r2_SA(b *testing.B)     { runFigure6(b, "4x4r2", "SA") }

func BenchmarkFig6_8x8r4_Rewire(b *testing.B) { runFigure6(b, "8x8r4", "Rewire") }
func BenchmarkFig6_8x8r4_PF(b *testing.B)     { runFigure6(b, "8x8r4", "PF*") }
func BenchmarkFig6_8x8r4_SA(b *testing.B)     { runFigure6(b, "8x8r4", "SA") }

// BenchmarkFig6SweepSpeculative is BenchmarkFig6_8x8r4_PF with a width-4
// speculative II-sweep window: the ns/op ratio between the two is the
// wall-clock the speculation reclaims from kernels whose first feasible
// II sits above their MII (several 8x8r4 kernels fail multiple IIs, or
// the whole sweep, before committing — serially that is a stack of
// sequential per-II budgets). The committed IIs and mappings are
// bit-identical to the serial run (see internal/sweep), so the speedup
// line bench.sh prints is a pure latency comparison.
func BenchmarkFig6SweepSpeculative(b *testing.B) {
	cfg := benchCfg()
	cfg.SweepParallelism = 4
	runFigure6Cfg(b, "8x8r4", "PF*", cfg)
}

// BenchmarkFig6Portfolio runs the Figure 6 4x4r2 kernel set through the
// portfolio racer (all three backends, one lane each). Each kernel
// commits the lowest II any backend reaches, so the quality-matched
// wall-clock baseline is BenchmarkFig6_4x4r2_Rewire — the highest-
// priority lane (SA alone is faster only by settling for worse IIs,
// and a deeper lane window oversubscribes the box: width 9 measured
// ~1.2x slower than the default). Racing must cost barely more than
// Rewire alone; bench.sh prints the ratio with a <= 1.1x target, met
// with idle cores for the rival lanes (a single-core box time-shares
// them against the winner and lands at ~1.1-1.2x instead).
func BenchmarkFig6Portfolio(b *testing.B) {
	runFigure6Cfg(b, "4x4r2", "Portfolio", benchCfg())
}

// BenchmarkTable1 reports the average single-node remapping iterations of
// PF* and SA over the Table I benchmark set (4x4, one register per PE —
// the paper's hardest routing regime — and four registers).
func BenchmarkTable1(b *testing.B) {
	set := []string{"gramsch", "ludcmp", "lu", "gemver", "cholesky", "gesummv", "atax", "bicg(u)"}
	for i := 0; i < b.N; i++ {
		for _, regs := range []int{1, 4} {
			a := arch.New4x4(regs)
			pfIters, saIters := 0, 0
			for _, k := range set {
				g := kernels.MustLoad(k)
				_, pr := pathfinder.Map(g, a, pathfinder.Options{Seed: 1, TimePerII: benchBudget})
				_, sr := sa.Map(g, a, sa.Options{Seed: 1, TimePerII: benchBudget})
				pfIters += pr.RemapIterations
				saIters += sr.RemapIterations
			}
			suffix := "r4"
			if regs == 1 {
				suffix = "r1"
			}
			b.ReportMetric(float64(pfIters)/float64(len(set)), "PFremaps_"+suffix)
			b.ReportMetric(float64(saIters)/float64(len(set)), "SAremaps_"+suffix)
		}
	}
}

// BenchmarkAblationClusterCap sweeps the cluster size cap (the paper
// fixes it at 15, §IV-B) on a mid-sized kernel set.
func BenchmarkAblationClusterCap(b *testing.B) {
	for _, cap := range []int{4, 8, 15, 30} {
		b.Run(bname("cap", cap), func(b *testing.B) {
			ablationRun(b, core.Options{ClusterCap: cap})
		})
	}
}

// BenchmarkAblationRounds sweeps the propagation-round multiplier (the
// paper uses x3 anchored / x5 unanchored, §IV-C).
func BenchmarkAblationRounds(b *testing.B) {
	for _, mult := range []int{1, 3, 6} {
		b.Run(bname("mult", mult), func(b *testing.B) {
			ablationRun(b, core.Options{RoundsAnchored: mult, RoundsUnanchored: mult + 2})
		})
	}
}

// BenchmarkAblationCandidates sweeps the per-node candidate list bound.
func BenchmarkAblationCandidates(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128} {
		b.Run(bname("cands", n), func(b *testing.B) {
			ablationRun(b, core.Options{MaxCandidatesPerNode: n})
		})
	}
}

var ablationKernels = []string{"atax", "fft", "lu", "stencil2d", "viterbi"}

func ablationRun(b *testing.B, opt core.Options) {
	opt.Seed = 1
	opt.TimePerII = benchBudget
	a := arch.New4x4(4)
	for i := 0; i < b.N; i++ {
		sumII, fails := 0, 0
		for _, k := range ablationKernels {
			g := kernels.MustLoad(k)
			_, res := core.Map(g, a, opt)
			if res.Success {
				sumII += res.II
			} else {
				fails++
			}
		}
		b.ReportMetric(float64(sumII), "sumII")
		b.ReportMetric(float64(fails), "fails")
	}
}

func bname(k string, v int) string {
	return fmt.Sprintf("%s=%s", k, strconv.Itoa(v))
}

// --- substrate micro-benchmarks ---

// BenchmarkSubRouter measures the exact-latency router on an 8x8 fabric.
// expansions/op (priority-queue pops) is the hardware-independent work
// measure the A* heuristic is meant to shrink; benchdiff gates it like
// ns/op.
func BenchmarkSubRouter(b *testing.B) {
	b.ReportAllocs()
	g := mrrg.New(arch.New8x8(4), 4)
	st := mrrg.NewState(g)
	r := route.NewRouter(g, route.DefaultMaxLat(8, 8, 4))
	cost := route.StrictCost(st, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	start := r.Expansions
	for i := 0; i < b.N; i++ {
		srcPE := rng.Intn(64)
		dstPE := rng.Intn(64)
		lat := 1 + rng.Intn(10)
		r.FindPath(g.FU(srcPE, 0), g.FU(dstPE, lat%4), lat, cost, 1)
	}
	b.ReportMetric(float64(r.Expansions-start)/float64(b.N), "expansions/op")
}

// BenchmarkFindPathCongested measures the router on a fabric whose
// resources are half-occupied by foreign nets — the regime PathFinder
// negotiation and strict verification actually run in, where the cost
// surface is rugged and the A* plateau dive pays or doesn't.
func BenchmarkFindPathCongested(b *testing.B) {
	b.ReportAllocs()
	g := mrrg.New(arch.New8x8(4), 4)
	st := mrrg.NewState(g)
	rng := rand.New(rand.NewSource(2))
	for n := mrrg.Node(0); int(n) < g.NumNodes(); n++ {
		if g.Valid(n) && g.Kind(n) != mrrg.KindFU && rng.Intn(2) == 0 {
			if err := st.Reserve(n, 999, rng.Intn(4)); err != nil {
				b.Fatal(err)
			}
		}
	}
	r := route.NewRouter(g, route.DefaultMaxLat(8, 8, 4))
	cost := route.StrictCost(st, 1)
	b.ResetTimer()
	start := r.Expansions
	for i := 0; i < b.N; i++ {
		srcPE := rng.Intn(64)
		dstPE := rng.Intn(64)
		lat := 1 + rng.Intn(10)
		r.FindPath(g.FU(srcPE, 0), g.FU(dstPE, lat%4), lat, cost, 1)
	}
	b.ReportMetric(float64(r.Expansions-start)/float64(b.N), "expansions/op")
}

// BenchmarkMRRGCacheHit measures the shared-graph fast path: a session
// acquiring an already-built MRRG plus a pooled state. The absence of a
// Graph rebuild is what makes II sweeps and eval fleets cheap; allocs/op
// here is the fingerprint string plus pool bookkeeping, never the graph.
func BenchmarkMRRGCacheHit(b *testing.B) {
	b.ReportAllocs()
	a := arch.New8x8(4)
	mrrg.Shared(a, 4) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mrrg.Shared(a, 4)
		st := mrrg.NewState(g)
		st.Recycle()
	}
}

// BenchmarkResultCacheHit measures the result-cache fast path: serving
// an already-compiled mapping is one canonical-fingerprint build, one
// map lookup and one deep copy. ns/op here against the cold compile
// (reported once as the cold_ns metric — deliberately not /op-suffixed,
// so benchdiff does not gate mapper wall-clock noise) is the speedup a
// warm cache delivers; the acceptance bar is three orders of magnitude.
func BenchmarkResultCacheHit(b *testing.B) {
	b.ReportAllocs()
	g := kernels.MustLoad("fft")
	a := arch.New4x4(4)
	opt := Options{Seed: 1, TimePerII: 2 * time.Second, Cache: NewResultCache(8)}
	coldStart := time.Now()
	m, _, out, err := MapCached(context.Background(), g, a, opt)
	cold := time.Since(coldStart)
	if err != nil || m == nil || out.Hit {
		b.Fatalf("cold compile failed: %v (outcome %+v)", err, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hm, _, hout, err := MapCached(context.Background(), g, a, opt)
		if err != nil || hm == nil || !hout.Hit {
			b.Fatalf("warm call missed: %v (outcome %+v)", err, hout)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cold.Nanoseconds()), "cold_ns")
}

// BenchmarkSubMRRGBuild measures modulo-resource-graph construction.
func BenchmarkSubMRRGBuild(b *testing.B) {
	b.ReportAllocs()
	a := arch.New8x8(4)
	for i := 0; i < b.N; i++ {
		mrrg.New(a, 6)
	}
}

// BenchmarkSubKernelLowering measures IR parse+unroll+lower for the whole
// registry.
func BenchmarkSubKernelLowering(b *testing.B) {
	b.ReportAllocs()
	names := kernels.Names()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			kernels.MustLoad(n)
		}
	}
}

// BenchmarkSubPFInitial measures the initial-mapping phase Rewire amends.
func BenchmarkSubPFInitial(b *testing.B) {
	b.ReportAllocs()
	g := kernels.MustLoad("gemver")
	a := arch.New4x4(4)
	mii := g.MII(a.NumPEs(), a.NumMemPEs(), a.BankPorts())
	for i := 0; i < b.N; i++ {
		var res stats.Result
		pathfinder.BuildInitial(mapping.New(g, a, mii), int64(i), &res)
	}
}

// BenchmarkSubValidate measures the independent mapping validator.
func BenchmarkSubValidate(b *testing.B) {
	b.ReportAllocs()
	g := kernels.MustLoad("mvt")
	a := arch.New4x4(4)
	m, res := pathfinder.Map(g, a, pathfinder.Options{Seed: 1, TimePerII: 2 * time.Second})
	if m == nil {
		b.Fatalf("setup mapping failed: %v", res)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mapping.Validate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubDiagDisabled pins the disabled-diagnostics contract: with
// no collector and no progress bus (the Options zero value), every
// instrumentation point the mappers hit per negotiation step — attempt
// handle, round tick, contention charge, progress publish — must cost a
// pointer check and nothing else. benchdiff gates allocs/op at 0.
func BenchmarkSubDiagDisabled(b *testing.B) {
	b.ReportAllocs()
	var dc *diag.Collector
	var bus *diag.Bus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		att := dc.StartII(4, 1)
		bus.Publish(diag.Event{Type: "attempt_start", II: 4, Attempt: 1})
		att.Round(7)
		att.Contend(mrrg.Node(i&1023), mrrg.Net(i&63))
		att.Finish(false, nil)
		bus.Publish(diag.Event{Type: "attempt_end", II: 4, Attempt: 1})
	}
}

// BenchmarkSubLedgerDisabled pins the disabled-ledger contract: with no
// ledger configured (a nil *ledger.Ledger), recording a completed run
// must cost a pointer check and nothing else — no marshaling, no lock,
// no allocation. benchdiff gates allocs/op at 0.
func BenchmarkSubLedgerDisabled(b *testing.B) {
	b.ReportAllocs()
	var l *ledger.Ledger
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(ledger.Entry{
			Source: "bench", Kernel: "mvt", Arch: "4x4r4", Mapper: "rewire",
			Success: true, II: 3, MII: 2, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubRecMII measures the recurrence-bound computation.
func BenchmarkSubRecMII(b *testing.B) {
	b.ReportAllocs()
	g := kernels.MustLoad("crc")
	for i := 0; i < b.N; i++ {
		if g.RecMII() != 8 {
			b.Fatal("wrong RecMII")
		}
	}
}

// BenchmarkAblationMechanisms toggles Rewire's two signature mechanisms:
// tuple-path reuse during verification ("reuse of wire information") and
// the execution-cycle constraint pruning of Algorithm 2.
func BenchmarkAblationMechanisms(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		ablationRun(b, core.Options{})
	})
	b.Run("noTuplePaths", func(b *testing.B) {
		ablationRun(b, core.Options{DisableTuplePaths: true})
	})
	b.Run("noCyclePruning", func(b *testing.B) {
		ablationRun(b, core.Options{DisableCyclePruning: true})
	})
}
