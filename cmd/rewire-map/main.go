// Command rewire-map maps one benchmark kernel onto one CGRA
// configuration with a chosen mapper and prints the resulting modulo
// schedule, route table and fabric utilisation.
//
// Usage:
//
//	rewire-map -kernel fft -arch 4x4r4 -mapper rewire -seed 1
//	rewire-map -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rewire"
	"rewire/internal/buildinfo"
	"rewire/internal/obs"
)

// log writes structured diagnostics to stderr; stdout stays reserved
// for the mapping report. Replaced in main once the flags are parsed.
var log = obs.Default()

func main() {
	var (
		kernel   = flag.String("kernel", "fft", "benchmark kernel name (see -list)")
		archStr  = flag.String("arch", "4x4r4", "architecture: 4x4rN, 8x8rN, or RxCrN")
		archFile = flag.String("arch-file", "", "path to an ADL architecture spec (overrides -arch)")
		mapper   = flag.String("mapper", "rewire", "mapper: rewire, pathfinder, sa, or portfolio (races the backends, lowest II wins)")
		seed     = flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		budget   = flag.Duration("time-per-ii", 5*time.Second, "wall-clock budget per attempted II")
		maxII    = flag.Int("max-ii", 32, "largest II to attempt")
		sweepJ   = flag.Int("sweep-j", 1, "speculative II-sweep window: II attempts run concurrently (1 = serial; results are bit-identical at any width)")
		pfolioB  = flag.String("portfolio-backends", "", "comma-separated backend subset for -mapper portfolio (default: every registered backend, rewire,pathfinder,sa)")
		pfolioJ  = flag.Int("portfolio-j", 0, "portfolio lane window: racing lanes run concurrently (0 = one lane per backend, 1 = serial priority order; the committed result is bit-identical at any width)")
		cacheCap = flag.Int("result-cache", 0, "result-cache capacity in finished mappings (0 disables; a warm hit skips the compile entirely)")
		routes   = flag.Bool("routes", false, "also print the per-edge route table")
		energy   = flag.Bool("energy", false, "also print the activity/energy estimate")
		simIter  = flag.Int("simulate", 0, "functionally verify the mapping over N simulated iterations")
		saveTo   = flag.String("save", "", "write the mapping as a JSON bundle to this path")
		list     = flag.Bool("list", false, "list bundled kernels and exit")
		version  = flag.Bool("version", false, "print the build identity and exit")

		traceOut   = flag.String("trace", "", "write a Chrome trace_event file of the mapping run to this path (open in Perfetto / chrome://tracing)")
		traceJSONL = flag.String("trace-jsonl", "", "write the structured JSONL trace (spans, counters, histograms) to this path")
		reportDir  = flag.String("report", "", "write the mapping post-mortem into this directory: report.json, report.html, report.txt and the progress-event log events.jsonl")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path (inspect with: go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path (inspect with: go tool pprof)")

		logLevel  = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "stderr log format: text or json")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	lg, lerr := rewire.NewLogger(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		log.Error("bad logging flags", "err", lerr)
		os.Exit(2)
	}
	log = lg

	if *list {
		for _, n := range rewire.Kernels() {
			g, err := rewire.LoadKernel(n)
			if err != nil {
				fatalf("load %s: %v", n, err)
			}
			fmt.Printf("%-12s %s\n", n, g.Stats())
		}
		return
	}

	var (
		cgra *rewire.CGRA
		err  error
	)
	if *archFile != "" {
		text, rerr := os.ReadFile(*archFile)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		cgra, err = rewire.ParseArch(string(text))
	} else {
		cgra, err = parseArch(*archStr)
	}
	if err != nil {
		fatalf("%v", err)
	}
	g, err := rewire.LoadKernel(*kernel)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("kernel: %s\narch:   %s\nMII:    %d\n\n", g.Stats(), cgra, rewire.MII(g, cgra))

	var tr *rewire.Tracer
	if *traceOut != "" || *traceJSONL != "" {
		tr = rewire.NewTracer()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
	}
	var cache *rewire.ResultCache
	if *cacheCap > 0 {
		cache = rewire.NewResultCache(*cacheCap)
	}
	var (
		diag *rewire.DiagCollector
		bus  *rewire.ProgressBus
	)
	if *reportDir != "" {
		diag = rewire.NewDiagCollector()
		bus = rewire.NewProgressBus(0)
	}
	m, res, err := rewire.Map(g, cgra, rewire.Options{
		Mapper:               rewire.MapperName(*mapper),
		Seed:                 *seed,
		TimePerII:            *budget,
		MaxII:                *maxII,
		SweepParallelism:     *sweepJ,
		PortfolioBackends:    splitCSV(*pfolioB),
		PortfolioParallelism: *pfolioJ,
		Tracer:               tr,
		Logger:               log,
		Cache:                cache,
		Diag:                 diag,
		Progress:             bus,
	})
	// Profiles and traces are written before the success check: a failed
	// mapping run is exactly the one worth profiling.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatalf("memprofile: %v", ferr)
		}
		runtime.GC()
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatalf("memprofile: %v", ferr)
		}
		f.Close()
	}
	writeTrace(tr, *traceOut, *traceJSONL)
	writeReport(diag, bus, *reportDir)
	fmt.Println(res)
	if res.Portfolio != nil {
		for _, b := range res.Portfolio.PerBackend {
			fmt.Printf("  lane %-10s launched=%d won=%d cancelled=%d wasted=%dms\n",
				b.Backend, b.Launched, b.Won, b.Cancelled, b.WastedMS)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println()
	fmt.Print(rewire.Render(m))
	util, err := rewire.RenderUtilisation(m)
	if err != nil {
		fatalf("utilisation: %v", err)
	}
	fmt.Println()
	fmt.Print(util)
	if *routes {
		rt, err := rewire.RenderRoutes(m)
		if err != nil {
			fatalf("routes: %v", err)
		}
		fmt.Println()
		fmt.Print(rt)
	}
	if *energy {
		rep, err := rewire.EstimateEnergy(m)
		if err != nil {
			fatalf("energy: %v", err)
		}
		fmt.Println()
		fmt.Print(rep)
	}
	if *simIter > 0 {
		if err := rewire.VerifyExecution(m, *simIter); err != nil {
			fatalf("simulation: %v", err)
		}
		fmt.Printf("\nsimulated %d iterations: store streams match the reference interpreter\n", *simIter)
	}
	if *saveTo != "" {
		data, err := rewire.SaveMapping(m)
		if err != nil {
			fatalf("save: %v", err)
		}
		if err := os.WriteFile(*saveTo, data, 0o644); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("\nmapping bundle written to %s\n", *saveTo)
	}
}

// splitCSV parses a comma-separated flag into its non-empty fields.
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseArch accepts "4x4r4"-style names: ROWSxCOLSrREGS. The presets use
// the paper's memory configuration; other grids get two banks on the
// left column (and the right column too when wider than four).
func parseArch(s string) (*rewire.CGRA, error) {
	var rows, cols, regs int
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%dr%d", &rows, &cols, &regs); err != nil {
		return nil, fmt.Errorf("bad -arch %q (want e.g. 4x4r4): %v", s, err)
	}
	switch {
	case rows == 4 && cols == 4:
		return rewire.New4x4(regs), nil
	case rows == 8 && cols == 8:
		return rewire.New8x8(regs), nil
	case cols > 4:
		return rewire.NewCGRA(s, rows, cols, regs, rows, 0, cols-1), nil
	default:
		return rewire.NewCGRA(s, rows, cols, regs, 2, 0), nil
	}
}

// writeTrace exports the run's tracer in the requested formats.
func writeTrace(tr *rewire.Tracer, chromePath, jsonlPath string) {
	if tr == nil {
		return
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fatalf("trace: %v", err)
		}
		f.Close()
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			fatalf("trace-jsonl: %v", err)
		}
		if err := tr.WriteJSONL(f); err != nil {
			fatalf("trace-jsonl: %v", err)
		}
		f.Close()
	}
}

// writeReport renders the run's post-mortem into dir. Written before
// the success check, like the traces: a failed mapping run is exactly
// the one whose report matters.
func writeReport(diag *rewire.DiagCollector, bus *rewire.ProgressBus, dir string) {
	if diag == nil {
		return
	}
	bus.Close()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("report: %v", err)
	}
	r := diag.Report()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatalf("report: %v", err)
	}
	for name, body := range map[string][]byte{
		"report.json": append(data, '\n'),
		"report.html": []byte(rewire.RenderReportHTML(r)),
		"report.txt":  []byte(rewire.RenderReport(r)),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			fatalf("report: %v", err)
		}
	}
	f, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		fatalf("report: %v", err)
	}
	if err := bus.WriteJSONL(f); err != nil {
		fatalf("report: %v", err)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "post-mortem written to %s\n", dir)
}

func fatalf(format string, args ...interface{}) {
	log.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
