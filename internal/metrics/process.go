package metrics

import (
	"runtime"
	"strconv"
	"time"

	"rewire/internal/buildinfo"
)

// ProcessCollector owns the process-health gauges every rewire daemon
// exports — uptime, live goroutines, allocated heap — plus the
// rewire_build_info identity gauge. Registering once and calling
// Refresh from the scrape handler keeps the gauges current without a
// background goroutine; the build-info gauge is constant (value 1, the
// identity lives in its labels) and needs no refresh.
//
// A nil *ProcessCollector (from registering on a nil registry) is the
// disabled collector: Refresh is a no-op.
type ProcessCollector struct {
	start  time.Time
	uptime *Gauge
	goros  *Gauge
	heap   *Gauge
}

// RegisterProcess registers the process gauges on reg and returns the
// collector whose Refresh updates them. The build-info gauge is set
// here, once, from the binary's own build metadata.
func RegisterProcess(reg *Registry) *ProcessCollector {
	if reg == nil {
		return nil
	}
	bi := buildinfo.Get()
	reg.NewGaugeVec("rewire_build_info",
		"Build identity of the running binary (value is always 1; the identity is in the labels).",
		"go_version", "vcs_revision", "modified").
		With(bi.GoVersion, bi.Revision, strconv.FormatBool(bi.Modified)).Set(1)
	return &ProcessCollector{
		start: time.Now(),
		uptime: reg.NewGauge("rewire_process_uptime_seconds",
			"Seconds since the process started."),
		goros: reg.NewGauge("rewire_process_goroutines_units",
			"Live goroutines."),
		heap: reg.NewGauge("rewire_process_heap_alloc_bytes",
			"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc)."),
	}
}

// Refresh snapshots the process state into the gauges. Call it from the
// scrape handler, before rendering. Safe on nil.
func (p *ProcessCollector) Refresh() {
	if p == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.uptime.Set(time.Since(p.start).Seconds())
	p.goros.Set(float64(runtime.NumGoroutine()))
	p.heap.Set(float64(ms.HeapAlloc))
}
