// Command tracecheck validates trace files emitted by the mapping
// pipeline: Chrome trace_event documents (*.trace.json, the format
// Perfetto and chrome://tracing load), and JSONL streams — structured
// traces, progress-event logs and QoR ledgers, told apart by their
// meta record's format field (rewire-trace-v1, rewire-progress-v1,
// rewire-ledger-v1). CI runs it over a small traced mapping so a
// malformed exporter fails the build rather than the first person
// opening a trace.
//
// Usage:
//
//	tracecheck file.trace.json file.jsonl events.jsonl ...
//
// The format is picked per file by suffix (.jsonl vs anything else =
// Chrome). Exit status is non-zero if any file is invalid.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace files...>")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		var err error
		if strings.HasSuffix(path, ".jsonl") {
			err = checkJSONL(path)
		} else {
			err = checkChrome(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("tracecheck: %s ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// checkChrome verifies a Chrome trace_event JSON object: it parses, has
// events, and contains at least one complete ("X") span with a name and
// non-negative duration.
func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "" {
			return fmt.Errorf("complete event with empty name at ts=%v", ev.Ts)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("span %q has negative duration %v", ev.Name, ev.Dur)
		}
		spans++
	}
	if spans == 0 {
		return fmt.Errorf("no complete (ph=X) span events")
	}
	fmt.Printf("tracecheck: %s: %d events, %d spans\n", path, len(doc.TraceEvents), spans)
	return nil
}

// checkJSONL verifies a structured JSONL file, dispatching on its meta
// record's format field: rewire-trace-v1 (spans/counters) or
// rewire-progress-v1 (progress events).
func checkJSONL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("empty file")
	}
	var meta struct {
		Type    string `json:"type"`
		Format  string `json:"format"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return fmt.Errorf("line 1: invalid JSON: %w", err)
	}
	if meta.Type != "meta" {
		return fmt.Errorf("line 1 is not a meta record")
	}
	switch meta.Format {
	case "rewire-trace-v1":
		return checkTraceJSONL(path, sc)
	case "rewire-progress-v1":
		return checkProgressJSONL(path, sc, meta.Dropped)
	case "rewire-ledger-v1":
		return checkLedgerJSONL(path, sc)
	default:
		return fmt.Errorf("unknown JSONL format %q (want rewire-trace-v1, rewire-progress-v1 or rewire-ledger-v1)", meta.Format)
	}
}

// checkLedgerJSONL verifies a QoR ledger after its meta line: every
// run entry parses, carries its identity (kernel, arch, mapper) and
// the three content fingerprints, and timestamps never go backwards
// (the ledger stamps them monotonically under its append lock, so a
// violation means hand-edited or corrupted history).
func checkLedgerJSONL(path string, sc *bufio.Scanner) error {
	line, runs := 1, 0
	var lastTS int64
	for sc.Scan() {
		line++
		var e struct {
			Type   string `json:"type"`
			TSMS   int64  `json:"ts_ms"`
			Source string `json:"source"`
			Kernel string `json:"kernel"`
			Arch   string `json:"arch"`
			Mapper string `json:"mapper"`
			MII    int    `json:"mii"`
			DFGFP  string `json:"dfg_fp"`
			ArchFP string `json:"arch_fp"`
			OptsFP string `json:"opts_fp"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		if e.Type != "run" {
			continue // future record types are allowed
		}
		if e.Kernel == "" || e.Arch == "" || e.Mapper == "" {
			return fmt.Errorf("line %d: run without kernel/arch/mapper identity", line)
		}
		if e.Source == "" {
			return fmt.Errorf("line %d: run without a source", line)
		}
		if e.DFGFP == "" || e.ArchFP == "" || e.OptsFP == "" {
			return fmt.Errorf("line %d: run without content fingerprints", line)
		}
		if e.TSMS <= 0 {
			return fmt.Errorf("line %d: run without a timestamp", line)
		}
		if e.TSMS < lastTS {
			return fmt.Errorf("line %d: ts_ms %d goes backwards past %d", line, e.TSMS, lastTS)
		}
		lastTS = e.TSMS
		runs++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if runs == 0 {
		return fmt.Errorf("no run entries")
	}
	fmt.Printf("tracecheck: %s: %d ledger entries\n", path, runs)
	return nil
}

// checkTraceJSONL verifies a structured trace after its meta line:
// every line is valid JSON and at least one named span follows.
func checkTraceJSONL(path string, sc *bufio.Scanner) error {
	line, spans := 1, 0
	for sc.Scan() {
		line++
		var rec struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		if rec.Type == "span" {
			if rec.Name == "" {
				return fmt.Errorf("line %d: span without a name", line)
			}
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if spans == 0 {
		return fmt.Errorf("no span records")
	}
	fmt.Printf("tracecheck: %s: %d lines, %d spans\n", path, line, spans)
	return nil
}

// checkProgressJSONL verifies a progress-event log after its meta
// line: every event parses, sequence numbers strictly increase, and
// attempt boundaries nest correctly. When the bus dropped nothing the
// stream is complete, so the checks tighten: the first sequence is 1,
// every attempt_end closes a seen attempt_start, and a run_end (when
// present) is the final event. A dropped-oldest stream (meta.dropped >
// 0) is a tail, so an end without its start is legitimate there.
func checkProgressJSONL(path string, sc *bufio.Scanner, dropped uint64) error {
	type attemptKey struct{ ii, attempt int }
	open := map[attemptKey]bool{}
	var (
		line     = 1
		events   = 0
		lastSeq  uint64
		lastType string
	)
	for sc.Scan() {
		line++
		var ev struct {
			Seq     uint64  `json:"seq"`
			MS      float64 `json:"ms"`
			Type    string  `json:"type"`
			II      int     `json:"ii"`
			Attempt int     `json:"attempt"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		if ev.Type == "" {
			return fmt.Errorf("line %d: event without a type", line)
		}
		if ev.MS < 0 {
			return fmt.Errorf("line %d: negative timestamp %v", line, ev.MS)
		}
		if events == 0 {
			if dropped == 0 && ev.Seq != 1 {
				return fmt.Errorf("line %d: complete stream starts at seq %d, want 1", line, ev.Seq)
			}
		} else if ev.Seq <= lastSeq {
			return fmt.Errorf("line %d: seq %d does not increase past %d", line, ev.Seq, lastSeq)
		}
		if lastType == "run_end" {
			return fmt.Errorf("line %d: event after run_end", line)
		}
		k := attemptKey{ev.II, ev.Attempt}
		switch ev.Type {
		case "attempt_start":
			if open[k] {
				return fmt.Errorf("line %d: attempt II=%d #%d started twice", line, ev.II, ev.Attempt)
			}
			open[k] = true
		case "attempt_end":
			if !open[k] && dropped == 0 {
				return fmt.Errorf("line %d: attempt II=%d #%d ends without a start", line, ev.II, ev.Attempt)
			}
			delete(open, k)
		}
		lastSeq, lastType = ev.Seq, ev.Type
		events++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 {
		return fmt.Errorf("no progress events")
	}
	if lastType == "run_end" && len(open) > 0 {
		return fmt.Errorf("run ended with %d attempts still open", len(open))
	}
	fmt.Printf("tracecheck: %s: %d progress events (%d dropped upstream)\n", path, events, dropped)
	return nil
}
