// Package diag is the mapping post-mortem layer: it turns a failed (or
// successful) mapping run into an explanation. The mappers' negotiation
// loops — PF*'s rip-up/history bumps, Rewire's cluster amendment, SA's
// periodic full-routing attempts — feed per-resource contention into a
// Collector; on completion the Collector emits a structured Report:
// the per-II attempt timeline, the top-K contested PEs/links together
// with the DFG operations that fought over them, the unroutable-edge
// list, and the amendment-round convergence series.
//
// Like internal/trace and internal/obs, the whole package is nil-safe
// and free when off: a nil *Collector (and the nil *IIAttempt handles
// it hands out) makes every recording call a single pointer check with
// zero allocations, so instrumented mapper code needs no guards. A live
// Collector is safe for the speculative II sweep: StartII may be called
// from concurrent attempt goroutines; each IIAttempt handle is then
// owned by its attempt goroutine alone.
package diag

import (
	"sort"
	"sync"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// SchemaID identifies the Report JSON schema.
const SchemaID = "rewire-report-v1"

// Caps keep a pathological run's diagnostics bounded: the convergence
// series stores at most maxConvergence points per attempt (later rounds
// still count via Rounds), each contested resource remembers at most
// maxContenders distinct nets, and Finish records at most
// maxUnroutable unroutable edges per attempt.
const (
	maxConvergence = 512
	maxContenders  = 8
	maxUnroutable  = 16
	// DefaultTopK is how many contested resources a Report keeps when
	// the caller does not choose.
	DefaultTopK = 10
)

// Collector accumulates diagnostics across one mapping run. Create one
// with NewCollector and pass it through Options.Diag; nil disables
// collection everywhere.
type Collector struct {
	mu       sync.Mutex
	kernel   string
	archName string
	rows     int
	cols     int
	mapper   string
	mii      int
	g        *dfg.Graph
	attempts []*IIAttempt
	success  bool
	cached   bool
	ii       int
	winner   string
	started  time.Time
}

// NewCollector returns an enabled collector.
func NewCollector() *Collector { return &Collector{started: time.Now()} }

// Enabled reports whether diagnostics are being collected.
func (c *Collector) Enabled() bool { return c != nil }

// Begin records the run's identity; each mapper calls it once at map
// start. Safe on nil.
func (c *Collector) Begin(g *dfg.Graph, a *arch.CGRA, mapper string, mii int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.kernel, c.archName, c.mapper, c.mii = g.Name, a.Name, mapper, mii
	c.rows, c.cols = a.Rows, a.Cols
	c.g = g
	c.mu.Unlock()
}

// Commit records the run's final outcome. Safe on nil.
func (c *Collector) Commit(success bool, ii int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.success, c.ii = success, ii
	c.mu.Unlock()
}

// MarkCached records that the run was served from the result cache:
// the report then describes the populating compile (or nothing, when
// the mappers never ran) with Cached set. Safe on nil.
func (c *Collector) MarkCached() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cached = true
	c.mu.Unlock()
}

// StartII opens one II attempt's diagnostic handle. The handle is
// single-goroutine (owned by the attempt); only its registration here
// takes the collector lock, so concurrent sweep attempts never contend
// while recording. Safe on nil (returns a nil handle, whose methods are
// all no-ops).
func (c *Collector) StartII(ii, attempt int) *IIAttempt {
	return c.StartLane(ii, attempt, "")
}

// StartLane is StartII with a portfolio lane tag: the attempt's row in
// the report timeline carries the backend label, so racing lanes at the
// same II stay distinguishable. An empty lane is a plain StartII. Safe
// on nil.
func (c *Collector) StartLane(ii, attempt int, lane string) *IIAttempt {
	if c == nil {
		return nil
	}
	a := &IIAttempt{ii: ii, attempt: attempt, lane: lane, started: time.Now(), c: c}
	c.mu.Lock()
	c.attempts = append(c.attempts, a)
	c.mu.Unlock()
	return a
}

// SetWinner records which portfolio backend produced the committed
// mapping; single-mapper runs never call it. Safe on nil.
func (c *Collector) SetWinner(backend string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.winner = backend
	c.mu.Unlock()
}

// resStat is one contested resource's running tally.
type resStat struct {
	times      int
	contenders []mrrg.Net // distinct, capped at maxContenders
}

// IIAttempt records one II attempt's diagnostics. All methods are
// nil-safe no-ops, so mapper code calls them unconditionally.
type IIAttempt struct {
	ii      int
	attempt int
	lane    string
	started time.Time
	c       *Collector

	rounds      int
	convergence []int
	contested   map[mrrg.Node]*resStat

	done    bool
	outcome string
	durMS   float64
	// Resolved at Finish, while the session is still alive.
	resources  []ResourceReport
	unroutable []EdgeReport
}

// Round records one negotiation round (an amendment round, a PF* remap
// iteration, an SA routing attempt) and the ill-mapped node count after
// it — the convergence series.
func (a *IIAttempt) Round(ill int) {
	if a == nil {
		return
	}
	a.rounds++
	if len(a.convergence) < maxConvergence {
		a.convergence = append(a.convergence, ill)
	}
}

// Contend charges one unit of contention on resource n by net: the
// resource was ripped, history-bumped, or found blocking a route.
func (a *IIAttempt) Contend(n mrrg.Node, net mrrg.Net) {
	if a == nil {
		return
	}
	if a.contested == nil {
		a.contested = make(map[mrrg.Node]*resStat)
	}
	st := a.contested[n]
	if st == nil {
		st = &resStat{}
		a.contested[n] = st
	}
	st.times++
	for _, c := range st.contenders {
		if c == net {
			return
		}
	}
	if len(st.contenders) < maxContenders {
		st.contenders = append(st.contenders, net)
	}
}

// Finish closes the attempt: it resolves every contested resource's
// label, kind, PE and final occupant against the still-live session,
// and on failure records the unroutable edges (placed endpoints, no
// route). Call it before sess.Close(); after Finish the session may be
// discarded. Safe on nil.
func (a *IIAttempt) Finish(ok bool, sess *mapping.Session) {
	if a == nil {
		return
	}
	a.done = true
	a.durMS = float64(time.Since(a.started).Microseconds()) / 1e3
	a.outcome = "failed"
	if ok {
		a.outcome = "mapped"
	}
	if sess == nil {
		return
	}
	g := a.c.dfg()
	a.resources = make([]ResourceReport, 0, len(a.contested))
	for n, st := range a.contested {
		rr := ResourceReport{
			Resource:       sess.Graph.String(n),
			Kind:           sess.Graph.Kind(n).String(),
			PE:             sess.Graph.PE(n),
			Time:           sess.Graph.Time(n),
			TimesContested: st.times,
		}
		for _, net := range st.contenders {
			rr.Contenders = append(rr.Contenders, netName(g, net))
		}
		sort.Strings(rr.Contenders)
		if occ, _ := sess.State.Occupant(n); occ != mrrg.NoNet {
			rr.FinalOccupant = netName(g, occ)
		}
		a.resources = append(a.resources, rr)
	}
	sortResources(a.resources)
	if !ok {
		m := sess.M
		for e := range m.Routes {
			if m.Routed(e) {
				continue
			}
			ed := m.DFG.Edges[e]
			if !m.Placed(ed.From) || !m.Placed(ed.To) {
				continue
			}
			if len(a.unroutable) >= maxUnroutable {
				break
			}
			a.unroutable = append(a.unroutable, EdgeReport{
				Edge: e, II: a.ii,
				From: m.DFG.Nodes[ed.From].Name, To: m.DFG.Nodes[ed.To].Name,
				Latency: m.Latency(e),
			})
		}
		sort.Slice(a.unroutable, func(i, j int) bool { return a.unroutable[i].Edge < a.unroutable[j].Edge })
	}
}

// Cancelled marks a speculative attempt that was cancelled by the sweep
// (a lower II succeeded); its diagnostics are kept but labelled so the
// timeline reads honestly. Safe on nil.
func (a *IIAttempt) Cancelled() {
	if a == nil || !a.done {
		return
	}
	if a.outcome == "failed" {
		a.outcome = "cancelled"
	}
}

func (c *Collector) dfg() *dfg.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.g
}

func netName(g *dfg.Graph, net mrrg.Net) string {
	if g == nil || int(net) < 0 || int(net) >= len(g.Nodes) {
		return ""
	}
	return g.Nodes[int(net)].Name
}

// Report is the post-mortem document, JSON-stable. See
// docs/OBSERVABILITY.md for the schema.
type Report struct {
	Schema  string `json:"schema"`
	Kernel  string `json:"kernel"`
	Arch    string `json:"arch"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Mapper  string `json:"mapper"`
	Success bool   `json:"success"`
	Cached  bool   `json:"cached,omitempty"`
	II      int    `json:"ii,omitempty"`
	MII     int    `json:"mii"`
	// WinnerBackend names the portfolio backend whose lane produced the
	// committed mapping; empty for single-mapper runs.
	WinnerBackend string `json:"winner_backend,omitempty"`

	// Attempts is the per-II timeline in (II, attempt) order.
	Attempts []AttemptReport `json:"attempts"`
	// Contested is the top-K contested resources across all attempts,
	// most contested first.
	Contested []ResourceReport `json:"contested"`
	// Unroutable lists edges that never found a route on failed
	// attempts (deduplicated across attempts, capped).
	Unroutable []EdgeReport `json:"unroutable,omitempty"`
}

// AttemptReport is one II attempt in the timeline.
type AttemptReport struct {
	II      int    `json:"ii"`
	Attempt int    `json:"attempt"`
	Outcome string `json:"outcome"` // mapped, failed, cancelled, running
	// Lane is the portfolio backend this attempt ran under; empty for
	// single-mapper runs.
	Lane  string  `json:"lane,omitempty"`
	DurMS float64 `json:"dur_ms"`
	// Rounds counts negotiation rounds; Convergence is the ill-mapped
	// node count after each round (capped, earliest rounds first).
	Rounds      int   `json:"rounds"`
	Convergence []int `json:"convergence,omitempty"`
	// Contested is how many distinct resources this attempt contested.
	Contested int `json:"contested"`
}

// ResourceReport is one contested fabric resource.
type ResourceReport struct {
	Resource       string   `json:"resource"` // e.g. "link(3,S)@t2"
	Kind           string   `json:"kind"`     // fu, link, reg, bank
	PE             int      `json:"pe"`
	Time           int      `json:"time"`
	TimesContested int      `json:"times_contested"`
	Contenders     []string `json:"contenders,omitempty"` // DFG op names
	FinalOccupant  string   `json:"final_occupant,omitempty"`
}

// EdgeReport is one DFG edge that never routed.
type EdgeReport struct {
	Edge    int    `json:"edge"`
	From    string `json:"from"`
	To      string `json:"to"`
	II      int    `json:"ii"`
	Latency int    `json:"latency"`
}

// Report builds the post-mortem with the default top-K. Safe on nil
// (returns nil).
func (c *Collector) Report() *Report { return c.ReportTopK(DefaultTopK) }

// ReportTopK builds the post-mortem keeping the k most contested
// resources. Safe on nil.
func (c *Collector) ReportTopK(k int) *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{
		Schema: SchemaID, Kernel: c.kernel, Arch: c.archName,
		Rows: c.rows, Cols: c.cols,
		Mapper: c.mapper, Success: c.success, Cached: c.cached,
		II: c.ii, MII: c.mii, WinnerBackend: c.winner,
		// Empty-but-present arrays: JSON consumers get [] rather than
		// null (a cached hit legitimately has zero attempts).
		Attempts:  []AttemptReport{},
		Contested: []ResourceReport{},
	}
	attempts := append([]*IIAttempt(nil), c.attempts...)
	sort.SliceStable(attempts, func(i, j int) bool {
		if attempts[i].ii != attempts[j].ii {
			return attempts[i].ii < attempts[j].ii
		}
		if attempts[i].lane != attempts[j].lane {
			return attempts[i].lane < attempts[j].lane
		}
		return attempts[i].attempt < attempts[j].attempt
	})
	merged := map[string]*ResourceReport{}
	seenEdge := map[int]bool{}
	for _, a := range attempts {
		ar := AttemptReport{
			II: a.ii, Attempt: a.attempt, Outcome: a.outcome, Lane: a.lane, DurMS: a.durMS,
			Rounds: a.rounds, Convergence: a.convergence, Contested: len(a.contested),
		}
		if !a.done {
			ar.Outcome = "running"
		}
		r.Attempts = append(r.Attempts, ar)
		for i := range a.resources {
			rr := &a.resources[i]
			m := merged[rr.Resource]
			if m == nil {
				cp := *rr
				cp.Contenders = append([]string(nil), rr.Contenders...)
				merged[rr.Resource] = &cp
				continue
			}
			m.TimesContested += rr.TimesContested
			// Later attempts see fresher occupancy; keep the last one.
			if rr.FinalOccupant != "" {
				m.FinalOccupant = rr.FinalOccupant
			}
			for _, cd := range rr.Contenders {
				if !containsStr(m.Contenders, cd) && len(m.Contenders) < maxContenders {
					m.Contenders = append(m.Contenders, cd)
				}
			}
		}
		for _, e := range a.unroutable {
			if !seenEdge[e.Edge] && len(r.Unroutable) < maxUnroutable {
				seenEdge[e.Edge] = true
				r.Unroutable = append(r.Unroutable, e)
			}
		}
	}
	for _, m := range merged {
		sort.Strings(m.Contenders)
		r.Contested = append(r.Contested, *m)
	}
	sortResources(r.Contested)
	if k > 0 && len(r.Contested) > k {
		r.Contested = r.Contested[:k]
	}
	sort.Slice(r.Unroutable, func(i, j int) bool { return r.Unroutable[i].Edge < r.Unroutable[j].Edge })
	return r
}

// Summary is the top-line failure attribution embedded in error bodies
// so async clients get the "why" without a second round-trip.
type Summary struct {
	Outcome      string   `json:"outcome"` // mapped or failed
	IIsAttempted []int    `json:"iis_attempted,omitempty"`
	TopContested []string `json:"top_contested,omitempty"` // "resource (N× by a, b)"
	Unroutable   int      `json:"unroutable_edges,omitempty"`
}

// Summary condenses a report to its top line. Safe on nil.
func (r *Report) Summary() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{Outcome: "failed", Unroutable: len(r.Unroutable)}
	if r.Success {
		s.Outcome = "mapped"
	}
	seen := map[int]bool{}
	for _, a := range r.Attempts {
		if !seen[a.II] {
			seen[a.II] = true
			s.IIsAttempted = append(s.IIsAttempted, a.II)
		}
	}
	sort.Ints(s.IIsAttempted)
	for i, rr := range r.Contested {
		if i == 3 {
			break
		}
		line := rr.Resource
		if len(rr.Contenders) > 0 {
			line += " (" + itoa(rr.TimesContested) + "x by " + joinMax(rr.Contenders, 4) + ")"
		} else {
			line += " (" + itoa(rr.TimesContested) + "x)"
		}
		s.TopContested = append(s.TopContested, line)
	}
	return s
}

func sortResources(rs []ResourceReport) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].TimesContested != rs[j].TimesContested {
			return rs[i].TimesContested > rs[j].TimesContested
		}
		return rs[i].Resource < rs[j].Resource
	})
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func joinMax(ss []string, n int) string {
	if len(ss) > n {
		ss = ss[:n]
	}
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// itoa avoids strconv for the two tiny call sites.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
