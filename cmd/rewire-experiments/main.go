// Command rewire-experiments regenerates the paper's evaluation: the
// Figure 5 mapping-quality comparison, the Figure 6 compilation-time
// comparison, Table I's remapping-iteration counts, and the §V summary
// statistics, over the 47 benchmark-architecture combinations.
//
// Usage:
//
//	rewire-experiments                  # everything (fig5+fig6+table1+summary)
//	rewire-experiments -fig5            # just the mapping-quality table
//	rewire-experiments -time-per-ii 5s  # larger per-II budgets (closer to the paper's 1h)
//	rewire-experiments -j 8             # fan the runs across 8 workers (-j 1 = serial)
//
// Runs are deterministic in -seed at every -j: each worker builds its
// own mapping state and results are collected in canonical order, so
// only the wall-clock changes with the parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rewire/internal/buildinfo"
	"rewire/internal/eval"
	"rewire/internal/ledger"
	"rewire/internal/obs"
	"rewire/internal/portfolio"
	"rewire/internal/resultcache"
)

// log writes structured diagnostics to stderr; the result tables on
// stdout are untouched. Replaced in main once the flags are parsed.
var log = obs.Default()

func main() {
	var (
		fig5     = flag.Bool("fig5", false, "print only Figure 5 (mapping quality)")
		fig6     = flag.Bool("fig6", false, "print only Figure 6 (compilation time)")
		table1   = flag.Bool("table1", false, "print only Table I (remapping iterations)")
		summary  = flag.Bool("summary", false, "print only the summary statistics")
		scaling  = flag.Bool("scaling", false, "run the fabric-size scaling study instead of the main evaluation")
		seed     = flag.Int64("seed", 1, "random seed for all mappers")
		budget   = flag.Duration("time-per-ii", 2*time.Second, "per-II wall-clock budget per mapper")
		jobs     = flag.Int("j", runtime.NumCPU(), "concurrent mapper runs (1 = serial)")
		sweepJ   = flag.Int("sweep-j", 1, "speculative II-sweep window per run (1 = serial; IIs and mappings are bit-identical at any width)")
		mapperF  = flag.String("mapper", "", "comma-separated mapper filter: rewire, pathfinder, sa, portfolio (default: the paper's three)")
		pfolioB  = flag.String("portfolio-backends", "", "backend subset raced by portfolio runs (default: every registered backend)")
		pfolioJ  = flag.Int("portfolio-j", 0, "portfolio lane window (0 = one lane per backend, 1 = serial priority order; committed results are width-independent)")
		cacheCap = flag.Int("result-cache", 0, "result-cache capacity in finished mappings (0 disables; overlapping combos across studies are served from cache, results unchanged)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		version  = flag.Bool("version", false, "print the build identity and exit")

		ledgerDir  = flag.String("ledger", "", "append one QoR ledger entry per run to <dir>/ledger.jsonl (the canonical quality record; see docs/OBSERVABILITY.md)")
		kernelsCSV = flag.String("kernels", "", "comma-separated kernel filter (default: all 47 combos)")
		archsCSV   = flag.String("archs", "", "comma-separated arch-name filter, e.g. 4x4r4 (default: all)")

		jsonOut    = flag.String("json", "", "write the aggregated result set as JSON to this path")
		traceDir   = flag.String("trace-dir", "", "write one Chrome trace + JSONL trace per mapper run into this directory")
		reportDir  = flag.String("report", "", "write one post-mortem report (.report.json + .report.html) per mapper run into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole evaluation to this path (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path (go tool pprof)")

		logLevel  = flag.String("log-level", "info", "stderr log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "stderr log format: text or json")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	lg, lerr := obs.Setup(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		log.Error("bad logging flags", "err", lerr)
		os.Exit(2)
	}
	log = lg

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memProfile)

	mappers, merr := parseMappers(*mapperF)
	if merr != nil {
		log.Error("bad -mapper filter", "err", merr)
		os.Exit(2)
	}
	cfg := eval.Config{
		Seed:                 *seed,
		TimePerII:            *budget,
		Jobs:                 *jobs,
		SweepParallelism:     *sweepJ,
		Mappers:              mappers,
		PortfolioBackends:    splitCSV(*pfolioB),
		PortfolioParallelism: *pfolioJ,
		Verbose:              !*quiet,
		Out:                  os.Stdout,
		TraceDir:             *traceDir,
		ReportDir:            *reportDir,
		Logger:               log,
	}
	if _, err := portfolio.Canonical(cfg.PortfolioBackends); err != nil {
		log.Error("bad -portfolio-backends", "err", err)
		os.Exit(2)
	}
	if *cacheCap > 0 {
		cfg.Cache = resultcache.New(*cacheCap)
	}
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir)
		if err != nil {
			fatal(err)
		}
		defer led.Close()
		cfg.Ledger = led
	}
	if *scaling {
		eval.Scaling(cfg, os.Stdout)
		return
	}
	combos := filterCombos(eval.Combos(), *kernelsCSV, *archsCSV)
	if len(combos) == 0 {
		log.Error("no combos match the -kernels/-archs filter")
		os.Exit(2)
	}
	// The -j 1 banner matches the historical serial harness byte for
	// byte; the worker count is only announced when there is a pool.
	workers := ""
	if *jobs > 1 {
		workers = fmt.Sprintf(", %d workers", *jobs)
	}
	nMappers := len(eval.Mappers)
	if len(mappers) > 0 {
		nMappers = len(mappers)
	}
	fmt.Printf("running %d combos x %d mappers (budget %s per II, seed %d%s)...\n\n",
		len(combos), nMappers, *budget, *seed, workers)
	results := eval.RunCombos(cfg, combos)
	fmt.Println()

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := results.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("results written to %s\n\n", *jsonOut)
	}

	specific := *fig5 || *fig6 || *table1 || *summary
	if !specific || *fig5 {
		results.Figure5(os.Stdout)
	}
	if !specific || *fig6 {
		results.Figure6(os.Stdout)
	}
	if !specific || *table1 {
		results.Table1(os.Stdout)
	}
	if !specific || *summary {
		results.Summary(os.Stdout)
	}
}

// parseMappers resolves the -mapper CSV to eval display names, accepting
// any alias the result cache canonicalises ("pf" → "PF*"). Empty means
// the default set (the paper's three).
func parseMappers(csv string) ([]string, error) {
	display := map[string]string{
		"rewire": "Rewire", "pathfinder": "PF*", "sa": "SA", "portfolio": "Portfolio",
	}
	var out []string
	seen := map[string]bool{}
	for _, f := range splitCSV(csv) {
		canon, ok := resultcache.CanonicalMapper(f)
		if !ok {
			return nil, fmt.Errorf("unknown mapper %q (want rewire, pathfinder, sa or portfolio)", f)
		}
		if name := display[canon]; !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// filterCombos keeps the combos whose kernel / arch name appear in the
// respective CSV filter; an empty filter keeps everything. The small CI
// qor-gate matrix is carved out this way.
func filterCombos(combos []eval.Combo, kernelsCSV, archsCSV string) []eval.Combo {
	csvSet := func(s string) map[string]bool {
		if s == "" {
			return nil
		}
		set := map[string]bool{}
		for _, f := range strings.Split(s, ",") {
			if f = strings.TrimSpace(f); f != "" {
				set[f] = true
			}
		}
		return set
	}
	wantK, wantA := csvSet(kernelsCSV), csvSet(archsCSV)
	if wantK == nil && wantA == nil {
		return combos
	}
	var out []eval.Combo
	for _, cb := range combos {
		if (wantK == nil || wantK[cb.Kernel]) && (wantA == nil || wantA[cb.Arch.Name]) {
			out = append(out, cb)
		}
	}
	return out
}

func fatal(err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}

// writeMemProfile snapshots the heap after the evaluation (post-GC, so
// the profile shows retained memory, not garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}
