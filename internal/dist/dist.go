// Package dist precomputes exact PE-to-PE routing distances for the
// router's A* heuristic and feasibility prune: a distance oracle.
//
// The oracle answers "how many routing cycles does a value held at PE p
// need, at minimum, to be inside the FU of PE q?" — exactly, including
// torus wrap links, which arch.Manhattan deliberately ignores. It is
// derived by reverse breadth-first search over the MRRG's PE-level
// topology (the quotient of the routing-resource graph under FeedsPE:
// every resource held "at" a PE — its FU, its registers, the inbound
// halves of its links — exits to the same set of next-cycle resources,
// so resource classes collapse onto their feeding PE and the exact
// per-resource distance is peDist[FeedsPE(n)][dst] + 1).
//
// Distances are II-independent: MRRG adjacency is time-uniform, so the
// minimum cycle count between PEs does not depend on the initiation
// interval. One table therefore serves every II of an architecture. The
// table is computed once per architecture fingerprint (a canonical
// serialisation of the PE adjacency actually wired into the graph) and
// shared from a concurrency-safe cache.
package dist

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"rewire/internal/arch"
	"rewire/internal/mrrg"
)

// Unreachable is the hop count reported for PE pairs with no routing
// path (it cannot occur on the connected mesh/torus fabrics the presets
// build, but keeps the oracle honest on degenerate topologies).
const Unreachable = int(^uint16(0))

// Oracle holds the all-pairs minimum-hop table of one PE topology. It is
// immutable after construction and safe for concurrent use.
type Oracle struct {
	numPEs int
	// d[dst*numPEs+src] is the minimum number of mesh links on a route
	// from src to dst, computed by reverse BFS from dst. Row-major by
	// destination so one routing search touches a single contiguous row.
	d []uint16
}

// NumPEs returns the PE count of the topology the oracle was built for.
func (o *Oracle) NumPEs() int { return o.numPEs }

// Hops returns the minimum number of mesh links from PE from to PE to
// (0 when equal, Unreachable when no path exists).
func (o *Oracle) Hops(from, to int) int { return int(o.d[to*o.numPEs+from]) }

// Row returns the distance row of destination dst: Row(dst)[src] is the
// hop count src -> dst. The slice is owned by the oracle; callers must
// not modify it. Hot loops use it to avoid recomputing the row offset.
func (o *Oracle) Row(dst int) []uint16 {
	return o.d[dst*o.numPEs : (dst+1)*o.numPEs]
}

// NeedCycles returns the exact minimum routing latency from a producer
// executing on PE from to a consumer executing on PE to: one cycle to
// enter a resource per mesh hop, plus the final cycle entering the
// consumer's FU. It is 1 for same-PE pairs and Unreachable (saturated,
// not +1) for disconnected pairs.
func (o *Oracle) NeedCycles(from, to int) int {
	h := o.Hops(from, to)
	if h >= Unreachable {
		return Unreachable
	}
	return h + 1
}

// cache holds one oracle per architecture fingerprint. Entries are tiny
// (2 bytes per PE pair) and topologies per process are few, so there is
// no eviction.
var cache struct {
	mu sync.Mutex
	m  map[string]*Oracle

	hits, misses atomic.Int64
}

// CacheStats reports cumulative oracle-cache hits and misses (used by
// tests and the metrics exporter).
func CacheStats() (hits, misses int64) {
	return cache.hits.Load(), cache.misses.Load()
}

// For returns the distance oracle for g's PE topology, computing it on
// first use and serving every later request for the same fingerprint
// from the cache. Safe for concurrent use.
//
// The fingerprint is derived from the adjacency wired into g itself (the
// valid link resources and the PEs they feed), not from the arch.CGRA
// fields, so the oracle always agrees with the graph the router searches
// even if the architecture value was mutated between constructions.
func For(g *mrrg.Graph) *Oracle {
	adj := peAdjacency(g)
	key := fingerprint(adj)
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if o, ok := cache.m[key]; ok {
		cache.hits.Add(1)
		return o
	}
	cache.misses.Add(1)
	o := compute(adj)
	if cache.m == nil {
		cache.m = map[string]*Oracle{}
	}
	cache.m[key] = o
	return o
}

// peAdjacency extracts the PE-level topology from the graph: adj[p]
// lists the PEs reachable from p over one valid output link. Link
// resources are time-uniform, so the t=0 slice describes every cycle.
func peAdjacency(g *mrrg.Graph) [][]int32 {
	n := g.Arch.NumPEs()
	adj := make([][]int32, n)
	for pe := 0; pe < n; pe++ {
		for d := arch.Dir(0); d < arch.NumDirs; d++ {
			ln := g.Link(pe, d, 0)
			if !g.Valid(ln) {
				continue
			}
			adj[pe] = append(adj[pe], int32(g.FeedsPE(ln)))
		}
	}
	return adj
}

// fingerprint canonically serialises a PE adjacency. Two graphs with the
// same fingerprint have byte-identical topologies, so sharing an oracle
// between them is exact (no hashing, no collisions).
func fingerprint(adj [][]int32) string {
	var b strings.Builder
	b.Grow(8 * len(adj))
	b.WriteString(strconv.Itoa(len(adj)))
	for _, row := range adj {
		b.WriteByte('|')
		for i, q := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(q)))
		}
	}
	return b.String()
}

// compute runs one reverse BFS per destination PE over the reversed
// adjacency, filling the destination's distance row. O(PEs^2) time and
// space; a 64-PE fabric is a 8 KiB table.
func compute(adj [][]int32) *Oracle {
	n := len(adj)
	radj := make([][]int32, n)
	for p, row := range adj {
		for _, q := range row {
			radj[q] = append(radj[q], int32(p))
		}
	}
	o := &Oracle{numPEs: n, d: make([]uint16, n*n)}
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		row := o.d[dst*n : (dst+1)*n]
		for i := range row {
			row[i] = uint16(Unreachable)
		}
		row[dst] = 0
		queue = append(queue[:0], int32(dst))
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			next := row[cur] + 1
			for _, p := range radj[cur] {
				if row[p] <= next {
					continue
				}
				row[p] = next
				queue = append(queue, p)
			}
		}
	}
	return o
}
