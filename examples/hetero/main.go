// Hetero: map a multiplier-heavy kernel onto heterogeneous fabrics where
// only some PEs carry a multiplier (REVAMP-style area-reduced CGRAs) and
// watch the class-aware MII bound and achieved II react — then verify
// the mapping functionally on the simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"rewire"
	"rewire/internal/arch"
)

func main() {
	g, err := rewire.LoadKernel("md") // Lennard-Jones force: 9 multiplies
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Stats())
	fmt.Println()

	muls := 0
	for _, n := range g.Nodes {
		if n.Op.IsMul() {
			muls++
		}
	}
	fmt.Printf("multiplies per iteration: %d\n\n", muls)
	fmt.Printf("%-22s %4s %4s %10s\n", "fabric", "MII", "II", "compile")

	configs := []struct {
		label string
		mulPE []int
	}{
		{"16 multipliers (all)", nil},
		{"8 multipliers", []int{0, 2, 5, 7, 8, 10, 13, 15}},
		{"4 multipliers", []int{5, 6, 9, 10}},
		{"2 multipliers", []int{5, 10}},
	}
	for _, c := range configs {
		cgra := rewire.New4x4(4)
		if c.mulPE != nil {
			cgra.StripClass(arch.ClassMul, c.mulPE...)
		}
		m, res, err := rewire.Map(g, cgra, rewire.Options{Seed: 5, TimePerII: 2 * time.Second})
		if err != nil {
			fmt.Printf("%-22s %4d %4s %10s\n", c.label, res.MII, "-", "failed")
			continue
		}
		// End-to-end check: the heterogeneous mapping still computes the
		// right answer on the cycle-accurate simulator.
		if err := rewire.VerifyExecution(m, 6); err != nil {
			log.Fatalf("%s: functional verification failed: %v", c.label, err)
		}
		fmt.Printf("%-22s %4d %4d %10s\n", c.label, res.MII, res.II, res.Duration.Round(time.Millisecond))
	}
	fmt.Println("\n(all mappings re-verified on the cycle-accurate simulator)")
}
