package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressSchemaID identifies the progress-event JSONL stream format
// (validated by scripts/tracecheck).
const ProgressSchemaID = "rewire-progress-v1"

// Event is one progress record. Events are coarse — sweep, attempt and
// amendment-round boundaries, never per-placement — so a long compile
// emits tens to hundreds of them, not millions.
type Event struct {
	// Seq is the bus-assigned monotonic sequence number (1-based).
	Seq uint64 `json:"seq"`
	// MS is milliseconds since the bus was created.
	MS float64 `json:"ms"`
	// Type is the event kind: run_start, ii_start, ii_end,
	// attempt_start, round, attempt_end, run_end.
	Type string `json:"type"`

	Mapper string `json:"mapper,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	Arch   string `json:"arch,omitempty"`
	MII    int    `json:"mii,omitempty"`

	II      int    `json:"ii,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Round   int    `json:"round,omitempty"`
	Ill     int    `json:"ill,omitempty"`
	Outcome string `json:"outcome,omitempty"` // ok, failed, cancelled
	// Lane names the portfolio lane (backend) an event belongs to.
	// Empty outside portfolio runs.
	Lane string `json:"lane,omitempty"`
}

// Bus is a bounded, drop-oldest progress-event bus. Producers (the
// mappers and the sweep engine) Publish; consumers either Subscribe for
// a live stream (the SSE endpoint) or snapshot the retained ring with
// Events (the JSONL export). A nil *Bus is the disabled bus: Publish is
// one pointer check and zero allocations, so instrumentation points
// need no guards. All methods are safe for concurrent use.
type Bus struct {
	mu        sync.Mutex
	buf       []Event // fixed-capacity ring
	head      int     // index of the oldest retained event
	n         int     // retained count
	seq       uint64
	dropped   uint64
	published uint64
	start     time.Time
	subs      map[int]chan Event
	nextSub   int
	closed    bool
}

// DefaultBusCapacity bounds the retained ring when the caller passes 0.
const DefaultBusCapacity = 1024

// NewBus returns an enabled bus retaining at most capacity events
// (drop-oldest beyond that; 0 selects DefaultBusCapacity).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{buf: make([]Event, capacity), start: time.Now(), subs: map[int]chan Event{}}
}

// Enabled reports whether the bus is live.
func (b *Bus) Enabled() bool { return b != nil }

// Publish stamps the event with its sequence number and timestamp,
// retains it (dropping the oldest retained event when full), and
// fans it out to subscribers (non-blocking: a slow subscriber loses
// events rather than stalling the mapper). Safe on nil.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	b.published++
	e.Seq = b.seq
	e.MS = float64(time.Since(b.start).Microseconds()) / 1e3
	if b.n == len(b.buf) {
		b.head = (b.head + 1) % len(b.buf)
		b.n--
		b.dropped++
	}
	b.buf[(b.head+b.n)%len(b.buf)] = e
	b.n++
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop rather than block the mapper
		}
	}
	b.mu.Unlock()
}

// Subscribe returns a channel that first replays every retained event
// and then streams new ones, plus a cancel func that unregisters (and
// closes) the channel. The channel is closed after the bus closes once
// the retained replay and any buffered live events are drained.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if b == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	b.mu.Lock()
	snapshot := b.retainedLocked()
	ch := make(chan Event, len(snapshot)+buffer+1)
	for _, e := range snapshot {
		ch <- e
	}
	if b.closed {
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	id := b.nextSub
	b.nextSub++
	b.subs[id] = ch
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, live := b.subs[id]; live {
				delete(b.subs, id)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close marks the stream complete (typically right after the run_end
// event) and closes every subscriber channel. Publish after Close is a
// no-op. Safe on nil; idempotent.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for id, ch := range b.subs {
			delete(b.subs, id)
			close(ch)
		}
	}
	b.mu.Unlock()
}

// Events snapshots the retained ring, oldest first. Safe on nil.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retainedLocked()
}

func (b *Bus) retainedLocked() []Event {
	out := make([]Event, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(b.head+i)%len(b.buf)])
	}
	return out
}

// Stats reports how many events were published and how many of the
// published events the drop-oldest ring has discarded. Safe on nil.
func (b *Bus) Stats() (published, dropped uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped
}

// WriteJSONL exports the retained events as a progress-event JSONL
// stream: line 1 is a meta record carrying the format ID, the published
// and dropped totals (so a validator can tell truncation from
// corruption), then one event per line in sequence order.
func (b *Bus) WriteJSONL(w io.Writer) error {
	if b == nil {
		return fmt.Errorf("diag: cannot export a disabled (nil) progress bus")
	}
	b.mu.Lock()
	events := b.retainedLocked()
	published, dropped := b.published, b.dropped
	b.mu.Unlock()
	enc := json.NewEncoder(w)
	meta := struct {
		Type      string `json:"type"` // "meta"
		Format    string `json:"format"`
		Events    int    `json:"events"`
		Published uint64 `json:"published"`
		Dropped   uint64 `json:"dropped"`
	}{Type: "meta", Format: ProgressSchemaID, Events: len(events), Published: published, Dropped: dropped}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
