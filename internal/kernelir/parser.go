package kernelir

import (
	"fmt"
	"strconv"
	"sync"
)

// tokenPool recycles the token buffer between Parse calls. The returned
// Program keeps substrings of src only, never the tokens themselves, so
// the buffer is free for reuse the moment Parse returns.
var tokenPool = sync.Pool{New: func() any {
	s := make([]token, 0, 256)
	return &s
}}

// Parse parses kernel IR source into a Program. See the package comment
// for the language.
func Parse(src string) (*Program, error) {
	tp := tokenPool.Get().(*[]token)
	defer tokenPool.Put(tp)
	toks, err := lexInto((*tp)[:0], src)
	if err != nil {
		return nil, err
	}
	*tp = toks // keep a grown backing array for the next call
	p := &parser{toks: toks}
	prog := &Program{
		Name:      "kernel",
		Induction: "i",
		Params:    make(map[string]bool),
	}
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			break
		}
		if err := p.parseLine(prog); err != nil {
			return nil, err
		}
	}
	if len(prog.Stmts) == 0 {
		return nil, fmt.Errorf("kernel %q: empty loop body", prog.Name)
	}
	return prog, nil
}

// MustParse is Parse that panics on error; intended for the static kernel
// definitions in package kernels, where a parse error is a build bug.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.peek().kind, p.peek().text)
	}
	return p.next(), nil
}

// parseLine handles one directive or statement, consuming the trailing
// newline.
func (p *parser) parseLine(prog *Program) error {
	t := p.peek()
	if t.kind != tokIdent {
		return p.errf("expected directive or assignment, found %s %q", t.kind, t.text)
	}
	switch t.text {
	case "kernel":
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		prog.Name = name.text
		return p.endLine()
	case "param":
		p.next()
		for {
			name, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			prog.Params[name.text] = true
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		return p.endLine()
	case "induction":
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		prog.Induction = name.text
		return p.endLine()
	}
	return p.parseStmt(prog)
}

func (p *parser) endLine() error {
	if k := p.peek().kind; k != tokNewline && k != tokEOF {
		return p.errf("unexpected %s %q at end of line", p.peek().kind, p.peek().text)
	}
	if p.peek().kind == tokNewline {
		p.next()
	}
	return nil
}

func (p *parser) parseStmt(prog *Program) error {
	line := p.peek().line
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	lhs := Ref{Name: name.text}
	if p.peek().kind == tokLBracket {
		idx, err := p.parseSubscripts()
		if err != nil {
			return err
		}
		lhs.Index = idx
	}
	acc := false
	switch p.peek().kind {
	case tokAssign:
		p.next()
	case tokAccum:
		if lhs.IsArray() {
			return p.errf("'+=' target must be a scalar, not array element %s", lhs)
		}
		acc = true
		p.next()
	default:
		return p.errf("expected '=' or '+=' after %s", lhs)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.endLine(); err != nil {
		return err
	}
	if prog.Params[lhs.Name] && !lhs.IsArray() {
		return fmt.Errorf("line %d: cannot assign to param %q", line, lhs.Name)
	}
	prog.Stmts = append(prog.Stmts, Stmt{LHS: lhs, Acc: acc, RHS: rhs, Line: line})
	return nil
}

// parseSubscripts parses one or more [index] groups.
func (p *parser) parseSubscripts() ([]Index, error) {
	var out []Index
	for p.peek().kind == tokLBracket {
		p.next()
		ix, err := p.parseIndex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		out = append(out, ix)
	}
	return out, nil
}

// parseIndex parses an affine subscript: a signed sum of identifiers and
// integers, e.g. "i", "i+1", "j-2", "3". Terms come out sorted by
// variable name (the canonical form Index.String relies on).
func (p *parser) parseIndex() (Index, error) {
	var ix Index
	addTerm := func(name string, coeff int) {
		for i := range ix.Terms {
			if ix.Terms[i].Var == name {
				ix.Terms[i].Coeff += coeff
				return
			}
		}
		// Insert keeping Terms sorted by Var; subscripts have 1-2 terms,
		// so the linear insertion never matters.
		at := len(ix.Terms)
		for i, t := range ix.Terms {
			if name < t.Var {
				at = i
				break
			}
		}
		ix.Terms = append(ix.Terms, Term{})
		copy(ix.Terms[at+1:], ix.Terms[at:])
		ix.Terms[at] = Term{Var: name, Coeff: coeff}
	}
	sign := 1
	if p.peek().kind == tokOp && p.peek().text == "-" {
		sign = -1
		p.next()
	}
	for {
		switch t := p.peek(); t.kind {
		case tokIdent:
			p.next()
			addTerm(t.text, sign)
		case tokNumber:
			p.next()
			v, err := strconv.Atoi(t.text)
			if err != nil {
				return ix, p.errf("bad number %q", t.text)
			}
			ix.Const += sign * v
		default:
			return ix, p.errf("expected index term, found %s %q", t.kind, t.text)
		}
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			if t.text == "+" {
				sign = 1
			} else {
				sign = -1
			}
			p.next()
			continue
		}
		return ix, nil
	}
}

// smallNums pre-boxes the common small literals so parsePrimary returns
// a shared Expr instead of allocating a fresh interface box per literal.
var smallNums = func() (a [65]Expr) {
	for i := range a {
		a[i] = Num{Val: i}
	}
	return a
}()

// Operator precedence (low to high): | ^ & ; + - ; * / << >>.
var precedence = map[string]int{
	"|": 1, "^": 1, "&": 1,
	"+": 2, "-": 2,
	"*": 3, "/": 3, "<<": 3, ">>": 3,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		left = Bin{Op: t.text, L: left, R: right}
	}
}

// builtin functions and their arities.
var builtins = map[string]int{"min": 2, "max": 2, "cmp": 2, "sel": 3}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		if v >= 0 && v < len(smallNums) {
			return smallNums[v], nil
		}
		return Num{Val: v}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.next()
		switch p.peek().kind {
		case tokLBracket:
			idx, err := p.parseSubscripts()
			if err != nil {
				return nil, err
			}
			return ArrayRead{Array: t.text, Index: idx}, nil
		case tokLParen:
			arity, ok := builtins[t.text]
			if !ok {
				return nil, p.errf("unknown function %q (builtins: cmp, max, min, sel)", t.text)
			}
			p.next()
			var args []Expr
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if len(args) != arity {
				return nil, p.errf("%s takes %d arguments, got %d", t.text, arity, len(args))
			}
			return Call{Fn: t.text, Args: args}, nil
		case tokAt:
			p.next()
			d, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			delay, err := strconv.Atoi(d.text)
			if err != nil || delay < 1 {
				return nil, p.errf("delay in %s@%s must be a positive integer", t.text, d.text)
			}
			return Scalar{Name: t.text, Delay: delay}, nil
		default:
			return Scalar{Name: t.text}, nil
		}
	default:
		return nil, p.errf("expected expression, found %s %q", t.kind, t.text)
	}
}
