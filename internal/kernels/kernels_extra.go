package kernels

// Additional benchmark kernels beyond the paper's core evaluation set:
// more PolyBench solvers/stencils, MiBench signal- and image-processing
// loops, and MachSuite molecular dynamics. They widen the library's
// coverage (deep arithmetic, bitwise chains, select-heavy control,
// multiplier pressure for heterogeneous-fabric experiments) without
// changing the 47-combo evaluation.
func init() {
	// Jacobi 1D: two 3-point relaxation rows plus residual tracking.
	register("jacobi1d", "polybench", `
kernel jacobi1d
param c3
t0 = (a[i-1] + a[i] + a[i+1]) * c3
b[i] = t0
t1 = (bp[i-1] + bp[i] + bp[i+1]) * c3
a2[i] = t1
u0 = (a[i+1] + a[i+2] + a[i+3]) * c3
b[i+1] = u0
d = t0 - t1
s += d * d
err[i] = s
mx = max(t0, t1)
m[i] = mx
`, 1)

	// Gauss-Seidel 2D: five-point sweep over two adjacent points with a
	// shared residual accumulator.
	register("seidel", "polybench", `
kernel seidel
param w
v = (p[i-1][j] + p[i][j-1] + p[i][j+1] + p[i+1][j] + p[i][j]) * w
pout[i][j] = v
r = v - p[i][j]
res += r * r
rout[i][j] = res
v2 = (p[i-1][j+1] + p[i][j] + p[i][j+2] + p[i+1][j+1] + p[i][j+1]) * w
pout[i][j+1] = v2
`, 1)

	// TRMM: four triangular rows of B against one column of A.
	register("trmm", "polybench", `
kernel trmm
param alpha
s0 += a0[i] * b[i]
s1 += a1[i] * b[i]
s2 += a2[i] * b[i]
s3 += a3[i] * b[i]
c0[i] = s0@1 * alpha
c1[i] = s1@1 * alpha
c2[i] = s2@1 * alpha
c3[i] = s3@1 * alpha
d = s0@1 + s1@1 + s2@1 + s3@1
dsum[i] = d
`, 1)

	// SYRK: symmetric rank-k update of a 2x2 tile plus trace tracking.
	register("syrk", "polybench", `
kernel syrk
param beta
acc0 += a[i] * a[i]
acc1 += a[i] * b[i]
acc2 += b[i] * b[i]
c00[i] = c0in[i] * beta + acc0@1
c01[i] = c1in[i] * beta + acc1@1
c11[i] = c2in[i] * beta + acc2@1
tr = acc0@1 + acc2@1
t[i] = tr
`, 1)

	// --- MiBench ---

	// ADPCM decode: two channels of sign/magnitude reconstruction with
	// step-size adaptation (loop-carried predictor and step).
	register("adpcm", "mibench", `
kernel adpcm
param stepmul
delta = code[i] & 7
sign = code[i] >> 3
diff = delta * step@1 + (step@1 >> 1)
t = pred@1 + diff
neg = pred@1 - diff
c = cmp(sign, 0)
pred = sel(c, neg, t)
out[i] = pred
step = step@1 * stepmul + idx[i]
sout[i] = step
delta2 = code2[i] & 7
sign2 = code2[i] >> 3
diff2 = delta2 * step2@1 + (step2@1 >> 1)
t2 = pred2@1 + diff2
neg2 = pred2@1 - diff2
c2 = cmp(sign2, 0)
pred2 = sel(c2, neg2, t2)
out2[i] = pred2
step2 = step2@1 * stepmul + idx2[i]
sout2[i] = step2
`, 1)

	// Sobel: 3x3 gradient magnitudes with shift-based scaling.
	register("sobel", "mibench", `
kernel sobel
gx = p00[i] - p02[i] + (p10[i] << 1) - (p12[i] << 1) + p20[i] - p22[i]
gy = p00[i] + (p01[i] << 1) + p02[i] - p20[i] - (p21[i] << 1) - p22[i]
ax = max(gx, 0 - gx)
ay = max(gy, 0 - gy)
g = ax + ay
out[i] = g
s += g
sout[i] = s
`, 1)

	// Floyd-Steinberg dithering: threshold, quantise, diffuse the error
	// into the next iteration. Registered 2-unrolled, like bicg(u).
	register("dither(u)", "mibench", `
kernel dither
param half
old = img[i] + e@1
c = cmp(old, half)
new = sel(c, 255, 0)
out[i] = new
e = old - new
q = e >> 1
enext[i] = q
s += e * e
snoise[i] = s
`, 2)

	// 5-tap FIR with two coefficient banks sharing the delay line.
	register("fir5", "mibench", `
kernel fir5
param c0, c1, c2, c3, c4, d0, d1, d2, d3, d4
t = x[i] * c0 + x[i-1] * c1 + x[i-2] * c2 + x[i-3] * c3 + x[i-4] * c4
y[i] = t
u = x[i] * d0 + x[i-1] * d1 + x[i-2] * d2 + x[i-3] * d3 + x[i-4] * d4
z[i] = u
s += t
e[i] = s
hp = x[i] - x[i-1]
h[i] = hp
`, 1)

	// Dijkstra edge relaxation, two edges per iteration, with a change
	// counter (cmp/select control flow).
	register("relax", "mibench", `
kernel relax
alt = du[i] + w[i]
c = cmp(dist[i], alt)
nd = sel(c, alt, dist[i])
dout[i] = nd
chg = dist[i] - nd
cnt += cmp(chg, 0)
cout[i] = cnt
p = sel(c, u[i], prev[i])
pout[i] = p
alt2 = du2[i] + w2[i]
c2 = cmp(dist2[i], alt2)
nd2 = sel(c2, alt2, dist2[i])
dout2[i] = nd2
p2 = sel(c2, u2[i], prev2[i])
pout2[i] = p2
`, 1)

	// --- MachSuite ---

	// KMP-style pattern scoring: three-position bitwise match with a hit
	// accumulator and a packed score.
	register("kmp", "machsuite", `
kernel kmp
m0 = txt[i] ^ pat0[i]
h0 = cmp(1, m0)
m1 = txt[i+1] ^ pat1[i]
h1 = cmp(1, m1)
m2 = txt[i+2] ^ pat2[i]
h2 = cmp(1, m2)
hit = h0 & h1 & h2
hits += hit
hout[i] = hits
score = (h0 << 2) + (h1 << 1) + h2
sout[i] = score
`, 1)

	// Molecular dynamics: Lennard-Jones-style pairwise force with three
	// force accumulators (multiplier heavy; the heterogeneous-fabric
	// stress kernel).
	register("md", "machsuite", `
kernel md
dx = x[i] - xn[i]
dy = y[i] - yn[i]
dz = z[i] - zn[i]
r2 = dx * dx + dy * dy + dz * dz
r6 = r2 * r2 * r2
force = r6 - r2
fx += force * dx
fy += force * dy
fz += force * dz
fxo[i] = fx
fyo[i] = fy
fzo[i] = fz
`, 1)
}
