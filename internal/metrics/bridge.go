package metrics

import (
	"strings"

	"rewire/internal/trace"
)

// This file is the offline→online name bridge. internal/trace names
// its counters with dots ("route.expansions" in the JSONL export);
// the online registry names metrics per the Prometheus convention
// (rewire_route_expansions_total). The mapping is mechanical — one
// string function each way of the fold, no lookup table — so a
// dashboard built on the online names can always be traced back to the
// offline JSONL records and vice versa. TestBridgeNamesFollowConvention
// audits the pipeline's actual counter catalog against it.

// BridgeCounterName maps an offline trace counter name to its online
// Prometheus name: dots become underscores, the rewire_ prefix and the
// _total counter unit are appended.
//
//	route.expansions        -> rewire_route_expansions_total
//	route.findpath.calls     -> rewire_route_findpath_calls_total
//	propagate.tuples_deduped -> rewire_propagate_tuples_deduped_total
func BridgeCounterName(traceName string) string {
	return "rewire_" + strings.ReplaceAll(traceName, ".", "_") + "_total"
}

// BridgeHistogramName maps an offline trace histogram name to its
// online Prometheus name. Trace histograms record dimensionless counts
// (cluster sizes, candidates per node), so the unit segment is _units.
//
//	cluster.size -> rewire_cluster_size_units
func BridgeHistogramName(traceName string) string {
	return "rewire_" + strings.ReplaceAll(traceName, ".", "_") + "_units"
}

// bridgeBuckets matches internal/trace's power-of-two histogram: the
// inclusive upper bound of trace bucket i is 2^(i+1)-1. Sixteen finite
// buckets cover every distribution the pipeline records (cluster sizes
// cap at 15, candidate sets at 64); larger values land in +Inf.
var bridgeBuckets = Pow2Buckets(16)

// FoldTracer folds a finished run's counters and histograms into the
// registry: every trace counter total is added to the bridged counter
// family, every trace histogram's bucket counts are merged into the
// bridged histogram family. Call it once per run, after the mapper
// returns — fold deltas accumulate across runs, which is exactly what
// a scraped counter wants. Nil registry or nil tracer is a no-op.
func FoldTracer(r *Registry, tr *trace.Tracer) {
	if r == nil || tr == nil {
		return
	}
	for name, total := range tr.CounterTotals() {
		r.NewCounter(BridgeCounterName(name),
			"Folded offline trace counter "+name+" (see docs/OBSERVABILITY.md).").Add(total)
	}
	for name, st := range tr.HistogramStats() {
		h := r.NewHistogram(BridgeHistogramName(name),
			"Folded offline trace histogram "+name+" (power-of-two buckets).", bridgeBuckets)
		h.addRaw(st.Buckets, float64(st.Sum), st.Count)
	}
}
