package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rewire/internal/arch"
	"rewire/internal/stats"
)

// The JSON form of a full evaluation. Runs are serialised in canonical
// (combo, mapper) order with their eval-level mapper name spelled out,
// so a decoded Results answers Get() exactly like the original — the
// stats.Result.Mapper field alone is not enough ("Rewire(amend)" vs the
// harness key "Rewire").
type resultsJSON struct {
	Combos  []comboJSON `json:"combos"`
	Elapsed int64       `json:"elapsed_ns"`
	Runs    []runJSON   `json:"runs"`
}

type comboJSON struct {
	Kernel string `json:"kernel"`
	Arch   string `json:"arch"`
}

type runJSON struct {
	Mapper string       `json:"mapper"`
	Kernel string       `json:"kernel"`
	Arch   string       `json:"arch"`
	Result stats.Result `json:"result"`
}

// WriteJSON serialises the full result set — combos, elapsed wall-clock,
// every recorded run — as indented JSON. Runs from mappers outside the
// paper's three (e.g. "Portfolio") are serialised after them, so a
// filtered evaluation round-trips losslessly.
func (r *Results) WriteJSON(w io.Writer) error {
	out := resultsJSON{Elapsed: int64(r.Elapsed)}
	mappers := r.mapperOrder()
	for _, cb := range r.Combos {
		out.Combos = append(out.Combos, comboJSON{Kernel: cb.Kernel, Arch: cb.Arch.Name})
		for _, mapper := range mappers {
			if res, ok := r.Get(mapper, cb); ok {
				out.Runs = append(out.Runs, runJSON{
					Mapper: mapper, Kernel: cb.Kernel, Arch: cb.Arch.Name, Result: res,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// mapperOrder lists every mapper with at least one recorded run: the
// paper's three in report order first, then any extras (sorted) such as
// "Portfolio".
func (r *Results) mapperOrder() []string {
	known := make(map[string]bool, len(Mappers))
	var out []string
	for _, m := range Mappers {
		known[m] = true
		out = append(out, m)
	}
	var extra []string
	seen := map[string]bool{}
	for key := range r.ByRun {
		m := key[:strings.Index(key, "|")]
		if !known[m] && !seen[m] {
			seen[m] = true
			extra = append(extra, m)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// ResultsFromJSON decodes a WriteJSON document back into a Results,
// rebuilding each architecture from its "RxCrN" name (4x4 and 8x8 names
// resolve to the paper presets with their memory configuration).
func ResultsFromJSON(data []byte) (*Results, error) {
	var in resultsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("eval: decode results: %w", err)
	}
	archs := map[string]*arch.CGRA{}
	lookup := func(name string) (*arch.CGRA, error) {
		if a, ok := archs[name]; ok {
			return a, nil
		}
		a, err := archFromName(name)
		if err != nil {
			return nil, err
		}
		archs[name] = a
		return a, nil
	}
	out := &Results{
		ByRun:   make(map[string]stats.Result, len(in.Runs)),
		Elapsed: time.Duration(in.Elapsed),
	}
	for _, cb := range in.Combos {
		a, err := lookup(cb.Arch)
		if err != nil {
			return nil, err
		}
		out.Combos = append(out.Combos, Combo{Kernel: cb.Kernel, Arch: a})
	}
	for _, run := range in.Runs {
		a, err := lookup(run.Arch)
		if err != nil {
			return nil, err
		}
		out.ByRun[runKey(run.Mapper, Combo{Kernel: run.Kernel, Arch: a})] = run.Result
	}
	return out, nil
}

// archFromName rebuilds an architecture from its canonical "RxCrN" name,
// mirroring the grids rewire-map accepts: the 4x4/8x8 paper presets, and
// the generic banks-on-the-outer-columns construction otherwise.
func archFromName(name string) (*arch.CGRA, error) {
	var rows, cols, regs int
	if _, err := fmt.Sscanf(strings.ToLower(name), "%dx%dr%d", &rows, &cols, &regs); err != nil {
		return nil, fmt.Errorf("eval: architecture name %q is not RxCrN: %v", name, err)
	}
	switch {
	case rows == 4 && cols == 4:
		return arch.New4x4(regs), nil
	case rows == 8 && cols == 8:
		return arch.New8x8(regs), nil
	case cols > 4:
		return arch.New(name, rows, cols, regs, rows, 0, cols-1), nil
	default:
		return arch.New(name, rows, cols, regs, 2, 0), nil
	}
}
