package core

import (
	"math/rand"
	"testing"
)

// BenchmarkSubAmendScratch measures the pooled amendment-scratch cycle:
// acquiring a scratch, starting a mark epoch, drawing the candidate
// permutation, taking and releasing a propagation, and recycling the
// scratch. This is the per-amendment fixed cost the sync.Pool rework
// drove to zero steady-state allocations; the benchmark is pinned at
// 0 allocs/op (benchdiff fails any increase from a zero baseline).
func BenchmarkSubAmendScratch(b *testing.B) {
	b.ReportAllocs()
	const numNodes, numPEs = 256, 16
	rng := rand.New(rand.NewSource(1))
	// Warm the pools so the measured loop is the steady state.
	warm := getAmendScratch(numNodes)
	warm.perm(rng, numPEs)
	putAmendScratch(warm)
	p := getProp(numPEs)
	warmProps := map[int]*propagation{0: p}
	releaseProps(warmProps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := getAmendScratch(numNodes)
		e := s.beginMark()
		s.mark[0], s.mark[numNodes-1] = e, e
		s.perm(rng, numPEs)
		p := getProp(numPEs)
		s.props[0] = p
		releaseProps(s.props)
		putAmendScratch(s)
	}
}
