package dist

import (
	"sync"
	"testing"

	"rewire/internal/arch"
	"rewire/internal/mrrg"
)

func TestMeshHopsEqualManhattan(t *testing.T) {
	a := arch.New4x4(2)
	o := For(mrrg.New(a, 2))
	for from := 0; from < a.NumPEs(); from++ {
		for to := 0; to < a.NumPEs(); to++ {
			if got, want := o.Hops(from, to), a.Manhattan(from, to); got != want {
				t.Fatalf("mesh Hops(%d,%d) = %d, want Manhattan %d", from, to, got, want)
			}
		}
	}
}

func TestTorusHopsBeatManhattan(t *testing.T) {
	a := arch.New("tor", 4, 4, 1, 2, 0)
	a.Torus = true
	o := For(mrrg.New(a, 2))
	// One wrap hop across the row.
	if got := o.Hops(0, 3); got != 1 {
		t.Fatalf("Hops(0,3) on torus = %d, want 1", got)
	}
	// Opposite corners: two wrap hops.
	if got := o.Hops(0, 15); got != 2 {
		t.Fatalf("Hops(0,15) on torus = %d, want 2", got)
	}
	// The torus is vertex-transitive: distance <= (rows+cols)/2.
	for from := 0; from < 16; from++ {
		for to := 0; to < 16; to++ {
			if o.Hops(from, to) > 4 {
				t.Fatalf("Hops(%d,%d) = %d exceeds torus diameter 4", from, to, o.Hops(from, to))
			}
		}
	}
}

func TestNeedCycles(t *testing.T) {
	o := For(mrrg.New(arch.New4x4(1), 3))
	if got := o.NeedCycles(5, 5); got != 1 {
		t.Fatalf("same-PE NeedCycles = %d, want 1", got)
	}
	if got := o.NeedCycles(0, 15); got != 7 {
		t.Fatalf("corner NeedCycles = %d, want Manhattan(6)+1", got)
	}
}

// TestCacheSharesOracle checks that graphs with the same wired topology
// share one oracle, across IIs (distances are II-independent) and
// concurrent callers.
func TestCacheSharesOracle(t *testing.T) {
	a := arch.New4x4(4)
	o1 := For(mrrg.New(a, 2))
	o2 := For(mrrg.New(a, 6)) // different II, same topology
	if o1 != o2 {
		t.Fatal("same topology at different IIs did not share the oracle")
	}
	h0, m0 := CacheStats()
	var wg sync.WaitGroup
	got := make([]*Oracle, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = For(mrrg.New(arch.New4x4(4), 3))
		}(i)
	}
	wg.Wait()
	for i, o := range got {
		if o != o1 {
			t.Fatalf("goroutine %d got a different oracle", i)
		}
	}
	h1, m1 := CacheStats()
	if h1-h0 != 16 || m1 != m0 {
		t.Fatalf("cache stats moved by hits=%d misses=%d, want 16/0", h1-h0, m1-m0)
	}

	// A different topology must not collide.
	b := arch.New("tor", 4, 4, 4, 2, 0)
	b.Torus = true
	if For(mrrg.New(b, 2)) == o1 {
		t.Fatal("torus and mesh shared a fingerprint")
	}
}
