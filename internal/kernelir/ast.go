// Package kernelir implements a small loop-kernel intermediate
// representation: a textual language for the body of an innermost loop,
// with array references, scalar temporaries, accumulators (loop-carried
// dependencies) and explicit cross-iteration reads. Programs are parsed,
// optionally unrolled, and lowered to data-flow graphs (package dfg).
//
// It substitutes for the LLVM-based DFG extraction the paper uses: the
// mappers only consume the resulting DFG, so a kernel written in this IR
// with the same operation mix and dependency structure exercises exactly
// the same mapping code paths.
//
// Example kernel (dot product with two accumulators):
//
//	kernel dotp
//	param alpha
//	t = a[i] * b[i]
//	s += t * alpha
//	c[i] = t + s@1
//
// Semantics:
//   - Array reads become load nodes (deduplicated per iteration by
//     canonical index), array writes become store nodes. Address
//     computation is folded into the memory units, as in HyCube/Morpher
//     DFGs, so the induction variable generates no nodes.
//   - `param` names are loop-invariant immediates: they generate no nodes
//     and no edges.
//   - `x += e` makes x an accumulator: the new value depends on e and on
//     the final value of x from the previous iteration (distance-1 edge).
//   - `x@d` reads the final value x had d iterations ago (distance-d edge).
package kernelir

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is a parsed kernel: a loop body plus declarations.
type Program struct {
	// Name is the kernel name from the `kernel` directive.
	Name string
	// Induction is the induction variable name (default "i").
	Induction string
	// Params holds loop-invariant scalar names.
	Params map[string]bool
	// Stmts is the loop body in source order.
	Stmts []Stmt
}

// Stmt is one assignment in the loop body.
type Stmt struct {
	// LHS receives the value: a scalar temporary or an array element.
	LHS Ref
	// Acc marks a `+=` accumulator update (LHS must be a scalar).
	Acc bool
	// RHS is the value expression.
	RHS Expr
	// Line is the 1-based source line, for error messages.
	Line int
}

// Ref is an assignable location.
type Ref struct {
	// Name is the scalar or array name.
	Name string
	// Index is non-nil for array references (one entry per subscript).
	Index []Index
}

// IsArray reports whether the reference is an array element.
func (r Ref) IsArray() bool { return r.Index != nil }

// String renders the reference in source syntax.
func (r Ref) String() string {
	if !r.IsArray() {
		return r.Name
	}
	var b strings.Builder
	b.WriteString(r.Name)
	for _, ix := range r.Index {
		fmt.Fprintf(&b, "[%s]", ix.String())
	}
	return b.String()
}

// Term is one variable of an affine subscript: Coeff*Var.
type Term struct {
	Var   string
	Coeff int
}

// Index is a canonical affine subscript: a sum of integer-scaled variables
// plus a constant, e.g. i+1 is {Terms:[{i,1}], Const:1}. Terms is kept
// sorted by variable name and treated as immutable once built, which lets
// index transforms that only move the constant (Shift) share the slice
// instead of copying it.
type Index struct {
	Terms []Term
	Const int
}

// Coeff returns v's coefficient in the index (0 when v does not appear).
func (ix Index) Coeff(v string) int {
	for _, t := range ix.Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return 0
}

// Shift returns the index with variable v substituted by v+by. The
// substitution only moves the constant, so the result shares Terms.
func (ix Index) Shift(v string, by int) Index {
	return Index{Terms: ix.Terms, Const: ix.Const + ix.Coeff(v)*by}
}

// String renders the index canonically (sorted variables, then constant),
// which makes it usable as a deduplication key for loads.
func (ix Index) String() string {
	// Fast path for the dominant "a[i]" shape: one unit-coefficient
	// variable and no constant renders as the variable name itself.
	if len(ix.Terms) == 1 && ix.Const == 0 && ix.Terms[0].Coeff == 1 {
		return ix.Terms[0].Var
	}
	var b strings.Builder
	for _, t := range ix.Terms {
		k, c := t.Var, t.Coeff
		if c == 0 {
			continue
		}
		if b.Len() > 0 && c > 0 {
			b.WriteByte('+')
		}
		switch {
		case c == 1:
			b.WriteString(k)
		case c == -1:
			b.WriteByte('-')
			b.WriteString(k)
		default:
			b.WriteString(strconv.Itoa(c))
			b.WriteString(k)
		}
	}
	if ix.Const != 0 || b.Len() == 0 {
		if b.Len() > 0 && ix.Const > 0 {
			b.WriteByte('+')
		}
		b.WriteString(strconv.Itoa(ix.Const))
	}
	return b.String()
}

// Expr is a node of the expression AST.
type Expr interface {
	isExpr()
	// String renders the expression in source syntax.
	String() string
}

// Num is an integer literal (an immediate: generates no DFG node).
type Num struct{ Val int }

// Scalar reads a scalar temporary, a param, or an accumulator. Delay > 0
// reads the value from Delay iterations ago (`x@d`).
type Scalar struct {
	Name  string
	Delay int
}

// ArrayRead loads an array element.
type ArrayRead struct {
	Array string
	Index []Index
}

// Bin is a binary arithmetic/logic operation.
type Bin struct {
	Op   string // one of + - * / & | ^ << >>
	L, R Expr
}

// Call is a builtin: min, max (lowered to cmp+select), sel (3-arg select),
// cmp (2-arg compare).
type Call struct {
	Fn   string
	Args []Expr
}

func (Num) isExpr()       {}
func (Scalar) isExpr()    {}
func (ArrayRead) isExpr() {}
func (Bin) isExpr()       {}
func (Call) isExpr()      {}

func (n Num) String() string { return strconv.Itoa(n.Val) }

func (s Scalar) String() string {
	if s.Delay > 0 {
		return fmt.Sprintf("%s@%d", s.Name, s.Delay)
	}
	return s.Name
}

func (a ArrayRead) String() string {
	var b strings.Builder
	b.WriteString(a.Array)
	for _, ix := range a.Index {
		fmt.Fprintf(&b, "[%s]", ix.String())
	}
	return b.String()
}

func (x Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", x.L.String(), x.Op, x.R.String())
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// refKey returns the canonical deduplication key of an array reference.
func refKey(array string, index []Index) string {
	var b strings.Builder
	b.WriteString(array)
	for _, ix := range index {
		b.WriteByte('[')
		b.WriteString(ix.String())
		b.WriteByte(']')
	}
	return b.String()
}
