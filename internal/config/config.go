// Package config lowers a placed-and-routed mapping to the cycle-by-cycle
// hardware configuration the CGRA actually executes: per PE and per
// modulo cycle, the ALU operation and its operand mux selects, the drive
// source of each output link, and the write source of each register —
// plus the memory-bank port schedule. This is the "cycle-by-cycle
// configurations for the programmable units" of the paper's Figure 1.
//
// The generated configuration is self-contained: the simulator (package
// sim) executes it without looking at the mapping, so config generation
// itself is covered by the end-to-end functional verification against
// the reference interpreter.
package config

import (
	"fmt"
	"sort"
	"strings"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// SrcKind says where a functional unit input, link driver, or register
// write takes its value from within one PE.
type SrcKind uint8

// Source kinds.
const (
	// SrcNone: nothing drives the input (idle link, untouched register,
	// immediate operand).
	SrcNone SrcKind = iota
	// SrcALU: the PE's own ALU output latch (last cycle's result).
	SrcALU
	// SrcIn: the input latch fed by the neighbour in direction Dir.
	SrcIn
	// SrcReg: register Reg of the PE's register file.
	SrcReg
	// SrcKeep: register retains its value (registers only).
	SrcKeep
)

// Src is one mux select.
type Src struct {
	Kind SrcKind
	Dir  arch.Dir // for SrcIn: which neighbour the value arrives from
	Reg  int      // for SrcReg
}

// String renders the select compactly: "-", "alu", "in.N", "r2", "keep".
func (s Src) String() string {
	switch s.Kind {
	case SrcNone:
		return "-"
	case SrcALU:
		return "alu"
	case SrcIn:
		return "in." + s.Dir.String()
	case SrcReg:
		return fmt.Sprintf("r%d", s.Reg)
	case SrcKeep:
		return "keep"
	}
	return "?"
}

// PECycle is one PE's configuration word for one modulo cycle.
type PECycle struct {
	// Node is the DFG node executing here (-1: no operation; the ALU may
	// still forward, see Forward).
	Node int
	// Op is the operation when Node >= 0.
	Op dfg.OpKind
	// NodeTime is the node's absolute start cycle; the PE idles at this
	// slot during earlier (prologue) cycles. -1 when Node < 0.
	NodeTime int
	// Operands are the ALU input selects when Node >= 0 (one per slot;
	// SrcNone marks an immediate slot filled from the configuration).
	Operands []Src
	// Forward is the pass-through source when the ALU slot is used as a
	// route hop instead of an operation (move), SrcNone otherwise.
	Forward Src
	// Links select what drives each output link this cycle.
	Links [arch.NumDirs]Src
	// Regs select what each register loads this cycle (SrcKeep retains,
	// SrcNone means the register holds no live value).
	Regs []Src
}

// Config is a complete CGRA configuration for one loop kernel.
type Config struct {
	Arch *arch.CGRA
	DFG  *dfg.Graph
	II   int
	// PEs is indexed [pe][t].
	PEs [][]PECycle
	// Banks is the port schedule: Banks[port][t] = memory node ID or -1.
	Banks [][]int
}

// Generate lowers a valid mapping to its configuration. The mapping is
// re-validated first: configurations must never be emitted from broken
// mappings.
func Generate(m *mapping.Mapping) (*Config, error) {
	if err := mapping.Validate(m); err != nil {
		return nil, fmt.Errorf("config: refusing invalid mapping: %w", err)
	}
	sess, err := mapping.Restore(m)
	if err != nil {
		return nil, err
	}
	g := sess.Graph
	a := m.Arch
	c := &Config{Arch: a, DFG: m.DFG, II: m.II}
	c.PEs = make([][]PECycle, a.NumPEs())
	for pe := range c.PEs {
		c.PEs[pe] = make([]PECycle, m.II)
		for t := range c.PEs[pe] {
			c.PEs[pe][t] = PECycle{
				Node:     -1,
				NodeTime: -1,
				Regs:     make([]Src, a.Regs),
			}
		}
	}
	c.Banks = make([][]int, a.BankPorts())
	for p := range c.Banks {
		c.Banks[p] = make([]int, m.II)
		for t := range c.Banks[p] {
			c.Banks[p][t] = -1
		}
	}

	// Operations and bank ports.
	for v := range m.Place {
		pl := m.Place[v]
		t := wrap(pl.Time, m.II)
		pc := &c.PEs[pl.PE][t]
		pc.Node = v
		pc.Op = m.DFG.Nodes[v].Op
		pc.NodeTime = pl.Time
		pc.Operands = make([]Src, operandSlots(m.DFG, v))
		if port := m.BankPorts[v]; port != mrrg.Invalid {
			c.Banks[g.BankIndex(port)][g.Time(port)] = v
		}
	}

	// Operand muxes: each in-edge's value arrives from the last resource
	// of its route (or straight from the producer FU for latency-1).
	for eid, route := range m.Routes {
		e := m.DFG.Edges[eid]
		consumer := m.Place[e.To]
		var feeder mrrg.Node
		if len(route) == 0 {
			feeder = g.FU(m.Place[e.From].PE, m.Place[e.From].Time)
		} else {
			feeder = route[len(route)-1]
		}
		src, err := srcFor(a, g, consumer.PE, feeder)
		if err != nil {
			return nil, fmt.Errorf("config: edge %d operand: %w", eid, err)
		}
		pc := &c.PEs[consumer.PE][wrap(consumer.Time, m.II)]
		if e.Operand >= len(pc.Operands) {
			grown := make([]Src, e.Operand+1)
			copy(grown, pc.Operands)
			pc.Operands = grown
		}
		pc.Operands[e.Operand] = src
	}

	// Routing resources: every hop of every route programs the mux that
	// writes it. Hops shared across a net's route tree may be reached by
	// different feeders: occupancy guarantees equal net and phase, so the
	// feeders carry the same value instance and the first programmed
	// source is kept (see programHop).
	for eid, route := range m.Routes {
		e := m.DFG.Edges[eid]
		prev := g.FU(m.Place[e.From].PE, m.Place[e.From].Time)
		for _, hop := range route {
			if err := c.programHop(g, prev, hop); err != nil {
				return nil, fmt.Errorf("config: edge %d: %w", eid, err)
			}
			prev = hop
		}
	}
	return c, nil
}

func wrap(t, ii int) int {
	t %= ii
	if t < 0 {
		t += ii
	}
	return t
}

// operandSlots returns how many operand selects node v's configuration
// carries: at least the op's arity, more if edges use higher slots.
func operandSlots(g *dfg.Graph, v int) int {
	n := arity(g.Nodes[v].Op)
	for _, eid := range g.InEdges(v) {
		if s := g.Edges[eid].Operand + 1; s > n {
			n = s
		}
	}
	return n
}

func arity(op dfg.OpKind) int {
	switch op {
	case dfg.OpSelect:
		return 3
	case dfg.OpLoad, dfg.OpConst:
		return 0
	case dfg.OpStore:
		return 1
	default:
		return 2
	}
}

// srcFor translates "value held by MRRG resource feeder, consumed at PE
// pe one cycle later" into the PE-local mux select.
func srcFor(a *arch.CGRA, g *mrrg.Graph, pe int, feeder mrrg.Node) (Src, error) {
	switch g.Kind(feeder) {
	case mrrg.KindFU:
		if g.PE(feeder) != pe {
			return Src{}, fmt.Errorf("FU feeder %s not local to PE %d", g.String(feeder), pe)
		}
		return Src{Kind: SrcALU}, nil
	case mrrg.KindReg:
		if g.PE(feeder) != pe {
			return Src{}, fmt.Errorf("register feeder %s not local to PE %d", g.String(feeder), pe)
		}
		return Src{Kind: SrcReg, Reg: g.RegIndex(feeder)}, nil
	case mrrg.KindLink:
		// The link is the neighbour's output wire arriving at pe: find
		// the direction of the sender as seen from pe.
		sender := g.PE(feeder)
		for d := arch.Dir(0); d < arch.NumDirs; d++ {
			if a.Neighbor(pe, d) == sender {
				return Src{Kind: SrcIn, Dir: d}, nil
			}
		}
		return Src{}, fmt.Errorf("link feeder %s does not arrive at PE %d", g.String(feeder), pe)
	default:
		return Src{}, fmt.Errorf("resource %s cannot feed a PE", g.String(feeder))
	}
}

// programHop configures the mux that writes resource hop from resource
// prev (one cycle earlier).
func (c *Config) programHop(g *mrrg.Graph, prev, hop mrrg.Node) error {
	pe := g.PE(hop)
	t := g.Time(hop)
	pc := &c.PEs[pe][t]
	switch g.Kind(hop) {
	case mrrg.KindLink:
		src, err := srcFor(c.Arch, g, pe, prev)
		if err != nil {
			return err
		}
		d := g.LinkDir(hop)
		if pc.Links[d].Kind != SrcNone {
			// Already driven. The MRRG reserves each resource for one
			// (net, phase), so a second feeder necessarily carries the
			// same value instance via an equal-length path; either mux
			// select is functionally identical — keep the first.
			return nil
		}
		pc.Links[d] = src
		return nil
	case mrrg.KindReg:
		r := g.RegIndex(hop)
		var src Src
		if g.Kind(prev) == mrrg.KindReg && g.PE(prev) == pe && g.RegIndex(prev) == r {
			src = Src{Kind: SrcKeep}
		} else {
			var err error
			src, err = srcFor(c.Arch, g, pe, prev)
			if err != nil {
				return err
			}
		}
		if pc.Regs[r].Kind != SrcNone {
			return nil // same value by (net, phase) equality; keep the first
		}
		pc.Regs[r] = src
		return nil
	case mrrg.KindFU:
		// Route-through: the ALU forwards a value (move op).
		src, err := srcFor(c.Arch, g, pe, prev)
		if err != nil {
			return err
		}
		if pc.Node >= 0 {
			return fmt.Errorf("FU %s used as route hop while executing node %d", g.String(hop), pc.Node)
		}
		if pc.Forward.Kind != SrcNone {
			return nil // same value by (net, phase) equality; keep the first
		}
		pc.Forward = src
		return nil
	default:
		return fmt.Errorf("cannot program hop %s", g.String(hop))
	}
}

// Disassemble renders the configuration as human-readable per-cycle
// config words (idle PEs omitted).
func (c *Config) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config %s on %s, II=%d\n", c.DFG.Name, c.Arch.Name, c.II)
	for t := 0; t < c.II; t++ {
		fmt.Fprintf(&b, "cycle %d:\n", t)
		for pe := 0; pe < c.Arch.NumPEs(); pe++ {
			pc := c.PEs[pe][t]
			if pc.Node < 0 && pc.Forward.Kind == SrcNone && allNone(pc.Links[:]) && allIdleRegs(pc.Regs) {
				continue
			}
			fmt.Fprintf(&b, "  pe%-3d", pe)
			switch {
			case pc.Node >= 0:
				ops := make([]string, len(pc.Operands))
				for i, s := range pc.Operands {
					if s.Kind == SrcNone {
						ops[i] = "imm"
					} else {
						ops[i] = s.String()
					}
				}
				fmt.Fprintf(&b, " %-6s %-12q (%s) @%d", pc.Op, c.DFG.Nodes[pc.Node].Name, strings.Join(ops, ","), pc.NodeTime)
			case pc.Forward.Kind != SrcNone:
				fmt.Fprintf(&b, " %-6s %-14s (%s)", "move", "", pc.Forward)
			default:
				fmt.Fprintf(&b, " %-6s %-14s", "nop", "")
			}
			for d := arch.Dir(0); d < arch.NumDirs; d++ {
				if pc.Links[d].Kind != SrcNone {
					fmt.Fprintf(&b, "  out.%s<=%s", d, pc.Links[d])
				}
			}
			for r, s := range pc.Regs {
				if s.Kind != SrcNone && s.Kind != SrcKeep {
					fmt.Fprintf(&b, "  r%d<=%s", r, s)
				} else if s.Kind == SrcKeep {
					fmt.Fprintf(&b, "  r%d<=keep", r)
				}
			}
			b.WriteByte('\n')
		}
	}
	// Bank schedule.
	used := false
	for p := range c.Banks {
		for t := range c.Banks[p] {
			if c.Banks[p][t] >= 0 {
				used = true
			}
		}
	}
	if used {
		b.WriteString("bank ports:\n")
		for p := range c.Banks {
			var cells []string
			for t := range c.Banks[p] {
				if v := c.Banks[p][t]; v >= 0 {
					cells = append(cells, fmt.Sprintf("t%d:%s", t, c.DFG.Nodes[v].Name))
				}
			}
			if len(cells) > 0 {
				sort.Strings(cells)
				fmt.Fprintf(&b, "  port%d  %s\n", p, strings.Join(cells, "  "))
			}
		}
	}
	return b.String()
}

func allNone(ss []Src) bool {
	for _, s := range ss {
		if s.Kind != SrcNone {
			return false
		}
	}
	return true
}

func allIdleRegs(ss []Src) bool {
	for _, s := range ss {
		if s.Kind != SrcNone {
			return false
		}
	}
	return true
}
