package metrics

import (
	"bufio"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one of everything the daemon
// exposes — labelled and unlabelled counters, a gauge, histograms with
// and without labels, a bridged trace fold, and label values that need
// escaping — with fixed values so the render is byte-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()

	reqs := r.NewCounterVec("rewire_map_requests_total",
		"Total POST /map requests by mapper and outcome.", "mapper", "outcome")
	reqs.With("rewire", "ok").Add(3)
	reqs.With("rewire", "failed").Add(1)
	reqs.With("sa", "ok").Add(2)

	esc := r.NewCounterVec("rewire_serve_errors_total",
		"Errors by kind.\nSecond help line with a \\ backslash.", "kind")
	esc.With("bad\"quote").Inc()
	esc.With(`back\slash`).Inc()
	esc.With("new\nline").Inc()

	g := r.NewGauge("rewire_serve_inflight_requests",
		"Mapping requests currently being served.")
	g.Set(2)

	dur := r.NewHistogramVec("rewire_map_duration_seconds",
		"Wall-clock time of one mapping run.", []float64{0.1, 0.5, 1, 5}, "mapper")
	for _, v := range []float64{0.05, 0.3, 0.7, 4, 30} {
		dur.With("rewire").Observe(v)
	}

	ii := r.NewHistogram("rewire_map_ii_units",
		"Achieved initiation interval.", Pow2Buckets(6))
	for _, v := range []float64{2, 4, 4, 7, 40} {
		ii.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/metrics -run Golden -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionInvariants parses the rendered text and checks the
// structural rules every Prometheus client library guarantees: HELP and
// TYPE precede samples of each family, histogram buckets are cumulative
// and end at +Inf == _count, and every line is well-formed.
func TestExpositionInvariants(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	type histState struct {
		last    int64
		infSeen bool
		inf     int64
	}
	hists := map[string]*histState{} // keyed by family+labels (minus le)
	helped := map[string]bool{}
	typed := map[string]bool{}

	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if !helped[f[2]] {
				t.Errorf("TYPE before HELP for %s", f[2])
			}
			typed[f[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("sample %q has bad value %q", series, valStr)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[base] && !typed[name] {
			t.Errorf("sample %s before its TYPE line", name)
		}

		if strings.HasSuffix(name, "_bucket") {
			le, rest := extractLE(t, series)
			v, _ := strconv.ParseInt(valStr, 10, 64)
			st := hists[rest]
			if st == nil {
				st = &histState{}
				hists[rest] = st
			}
			if v < st.last {
				t.Errorf("%s: bucket counts not cumulative (%d after %d)", rest, v, st.last)
			}
			st.last = v
			if math.IsInf(le, 1) {
				st.infSeen = true
				st.inf = v
			}
		}
		if strings.HasSuffix(name, "_count") {
			key := strings.TrimSuffix(name, "_count") + "_bucket" + labelsOf(series)
			st := hists[key]
			if st == nil {
				t.Errorf("%s: _count without buckets", series)
				continue
			}
			if !st.infSeen {
				t.Errorf("%s: no +Inf bucket", series)
			}
			c, _ := strconv.ParseInt(valStr, 10, 64)
			if st.inf != c {
				t.Errorf("%s: +Inf bucket %d != _count %d", series, st.inf, c)
			}
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series found")
	}
}

// extractLE pulls the le label out of a _bucket series and returns the
// bound plus the series identity with le removed.
func extractLE(t *testing.T, series string) (float64, string) {
	t.Helper()
	i := strings.Index(series, `le="`)
	if i < 0 {
		t.Fatalf("bucket series %q has no le label", series)
	}
	j := strings.Index(series[i+4:], `"`)
	leStr := series[i+4 : i+4+j]
	var le float64
	if leStr == "+Inf" {
		le = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le %q", leStr)
		}
		le = v
	}
	rest := series[:i] + series[i+4+j+1:]
	rest = strings.ReplaceAll(rest, `{,`, `{`)
	rest = strings.ReplaceAll(rest, `,}`, `}`)
	rest = strings.TrimSuffix(rest, "{}")
	return le, rest
}

// labelsOf returns the {..} block of a series, "" when unlabelled.
func labelsOf(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}
