package sweep

// SeedForII derives the RNG seed of one II attempt from the run seed.
// Every mapper derives its per-II randomness through this one function,
// which is what makes the speculative sweep deterministic: an attempt's
// random stream depends only on (run seed, II), never on how much work
// earlier IIs consumed or on which goroutine runs it, so serial and
// speculative sweeps produce bit-identical per-II outcomes.
//
// The mix is splitmix64: consecutive IIs land on statistically
// independent streams even though they differ in one input bit.
func SeedForII(seed int64, ii int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(uint(ii))+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
