package stats

import (
	"strings"
	"testing"
	"time"
)

func TestOptimalAndNearOptimal(t *testing.T) {
	r := Result{Success: true, II: 4, MII: 4}
	if !r.Optimal() || !r.NearOptimal() {
		t.Fatal("II==MII must be optimal and near-optimal")
	}
	r.II = 5
	if r.Optimal() || !r.NearOptimal() {
		t.Fatal("II==MII+1 must be near-optimal only")
	}
	r.II = 6
	if r.NearOptimal() {
		t.Fatal("II==MII+2 is not near-optimal")
	}
	r.Success = false
	r.II = r.MII
	if r.Optimal() || r.NearOptimal() {
		t.Fatal("failed runs are never optimal")
	}
}

func TestVerifyRate(t *testing.T) {
	r := Result{}
	if r.VerifyRate() != 0 {
		t.Fatal("empty rate should be 0")
	}
	r.VerifyAttempts = 20
	r.VerifySuccesses = 19
	if got := r.VerifyRate(); got != 0.95 {
		t.Fatalf("rate = %v, want 0.95", got)
	}
}

func TestStringFormats(t *testing.T) {
	r := Result{Mapper: "Rewire", Kernel: "fft", Arch: "4x4r4", Success: true, II: 4, MII: 3,
		Duration: 12 * time.Millisecond, ClusterAmendments: 7}
	s := r.String()
	if !strings.Contains(s, "II=4 (MII=3)") || !strings.Contains(s, "amendments=7") {
		t.Fatalf("String = %q", s)
	}
	r.Success = false
	if !strings.Contains(r.String(), "FAILED") {
		t.Fatalf("String = %q", r.String())
	}
}
