// Command benchdiff compares two BENCH_<date>.json files (the
// scripts/benchjson format) and fails when the newer run regresses:
//
//   - ns/op worse than the baseline by more than -threshold (default
//     15%, absorbing CI-runner noise), or
//   - any custom per-op metric (a "<unit>/op" key other than B/op and
//     allocs/op, e.g. the router's expansions/op) worse than the
//     baseline by more than -threshold — these count deterministic work,
//     so they regress by algorithm changes, not runner noise, but the
//     shared threshold still absorbs seed-level wobble, or
//   - any allocs/op increase on a bench whose baseline allocs/op is 0 —
//     the zero-alloc pins (disabled tracer/logger/metrics hot paths)
//     must stay exactly zero, with no noise allowance, or
//   - allocs/op worse than a non-zero baseline by more than -threshold —
//     allocation counts are deterministic per op, so a jump past the
//     threshold is a real regression (a lost pool, a new per-op copy),
//     not runner noise, or
//   - B/op worse than a non-zero baseline by more than -threshold (or any
//     increase from a zero baseline) — bytes per op are as deterministic
//     as the allocation count, and catch the case where each allocation
//     quietly gets bigger while the count stays flat.
//
// Benchmarks present in only one file are reported but never fail the
// diff: renames and additions are routine between PRs.
//
// Usage:
//
//	benchdiff [-threshold 0.15] BASELINE.json CURRENT.json
//
// Exit status: 0 clean, 1 regression, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// sortedKeys keeps the custom-metric notes and regressions in a stable
// order regardless of map iteration.
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Record mirrors scripts/benchjson's per-benchmark output.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output mirrors scripts/benchjson's file format.
type Output struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// regression is one failed comparison.
type regression struct {
	Name   string
	Metric string
	Base   float64
	Cur    float64
}

func (r regression) String() string {
	if (r.Metric == "allocs/op" || r.Metric == "B/op") && r.Base == 0 {
		return fmt.Sprintf("%s: %s %g -> %g (zero-alloc pin broken)", r.Name, r.Metric, r.Base, r.Cur)
	}
	return fmt.Sprintf("%s: %s %.0f -> %.0f (%+.1f%%)", r.Name, r.Metric, r.Base, r.Cur, 100*(r.Cur-r.Base)/r.Base)
}

// diff compares current against baseline and returns every regression
// plus human-readable notes (missing/new benches, per-bench deltas).
func diff(base, cur Output, threshold float64) (regs []regression, notes []string) {
	curBy := make(map[string]Record, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	seen := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		seen[b.Name] = true
		c, ok := curBy[b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("only in baseline: %s", b.Name))
			continue
		}
		bNS, cNS := b.Metrics["ns/op"], c.Metrics["ns/op"]
		if bNS > 0 && cNS > 0 {
			delta := (cNS - bNS) / bNS
			notes = append(notes, fmt.Sprintf("%-44s ns/op %14.0f -> %14.0f  %+6.1f%%", b.Name, bNS, cNS, 100*delta))
			if delta > threshold {
				regs = append(regs, regression{b.Name, "ns/op", bNS, cNS})
			}
		}
		if bAllocs, ok := b.Metrics["allocs/op"]; ok {
			cAllocs := c.Metrics["allocs/op"]
			switch {
			case bAllocs == 0:
				// Zero-alloc pins get no noise allowance at all.
				if cAllocs > 0 {
					regs = append(regs, regression{b.Name, "allocs/op", bAllocs, cAllocs})
				}
			case cAllocs > 0:
				delta := (cAllocs - bAllocs) / bAllocs
				notes = append(notes, fmt.Sprintf("%-44s allocs/op %10.0f -> %10.0f  %+6.1f%%", b.Name, bAllocs, cAllocs, 100*delta))
				if delta > threshold {
					regs = append(regs, regression{b.Name, "allocs/op", bAllocs, cAllocs})
				}
			}
		}
		// B/op is as deterministic as allocs/op (bytes requested, not
		// heap growth), so gate it with the same threshold: a count of
		// allocations can stay flat while each one gets bigger.
		if bBytes, ok := b.Metrics["B/op"]; ok {
			cBytes := c.Metrics["B/op"]
			switch {
			case bBytes == 0:
				if cBytes > 0 {
					regs = append(regs, regression{b.Name, "B/op", bBytes, cBytes})
				}
			case cBytes > 0:
				delta := (cBytes - bBytes) / bBytes
				notes = append(notes, fmt.Sprintf("%-44s B/op %15.0f -> %15.0f  %+6.1f%%", b.Name, bBytes, cBytes, 100*delta))
				if delta > threshold {
					regs = append(regs, regression{b.Name, "B/op", bBytes, cBytes})
				}
			}
		}
		for _, m := range sortedKeys(b.Metrics) {
			if !strings.HasSuffix(m, "/op") || m == "ns/op" || m == "B/op" || m == "allocs/op" {
				continue
			}
			bV := b.Metrics[m]
			cV, ok := c.Metrics[m]
			if !ok || bV <= 0 || cV <= 0 {
				continue
			}
			delta := (cV - bV) / bV
			notes = append(notes, fmt.Sprintf("%-44s %s %11.0f -> %11.0f  %+6.1f%%", b.Name, m, bV, cV, 100*delta))
			if delta > threshold {
				regs = append(regs, regression{b.Name, m, bV, cV})
			}
		}
	}
	for _, c := range cur.Benchmarks {
		if !seen[c.Name] {
			notes = append(notes, fmt.Sprintf("only in current: %s", c.Name))
		}
	}
	return regs, notes
}

func load(path string) (Output, error) {
	var out Output
	f, err := os.Open(path)
	if err != nil {
		return out, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "ns/op regression tolerance (0.15 = +15%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regs, notes := diff(base, cur, *threshold)
	fmt.Printf("baseline %s (%s) vs current %s (%s), threshold +%.0f%%\n\n",
		flag.Arg(0), base.Date, flag.Arg(1), cur.Date, *threshold*100)
	for _, n := range notes {
		fmt.Println(n)
	}
	if len(regs) > 0 {
		fmt.Printf("\n%d regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Println("  FAIL", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}
