package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/trace"
)

// The counters-audit contract: every mapper fills the effort counters of
// stats.Result on every path, and the tracer's counter totals mirror the
// stats.Result fields exactly — each res increment has an adjacent
// Counter.Add, so any drift between the two is an instrumentation bug.
func TestCountersNonzeroAndMatchTracer(t *testing.T) {
	cb := Combo{Kernel: "mvt", Arch: arch.New4x4(4)}
	for _, mapper := range Mappers {
		mapper := mapper
		t.Run(mapper, func(t *testing.T) {
			tr := trace.New()
			cfg := Config{Seed: 1, TimePerII: 2 * time.Second, Out: io.Discard, Tracer: tr}
			_, res := Run(mapper, cb, cfg)
			if res.RouterExpansions == 0 {
				t.Errorf("%s: RouterExpansions = 0, want > 0", mapper)
			}
			if res.PlacementsTried == 0 {
				t.Errorf("%s: PlacementsTried = 0, want > 0", mapper)
			}
			tot := tr.CounterTotals()
			if got := tot["route.expansions"]; got != res.RouterExpansions {
				t.Errorf("%s: counter route.expansions = %d, stats says %d", mapper, got, res.RouterExpansions)
			}
			if got := tot["placements.tried"]; got != res.PlacementsTried {
				t.Errorf("%s: counter placements.tried = %d, stats says %d", mapper, got, res.PlacementsTried)
			}
			if mapper != "Rewire" {
				return
			}
			if res.VerifyAttempts == 0 || res.VerifySuccesses == 0 {
				t.Errorf("Rewire: VerifyAttempts=%d VerifySuccesses=%d, want both > 0",
					res.VerifyAttempts, res.VerifySuccesses)
			}
			if got := tot["verify.attempts"]; got != res.VerifyAttempts {
				t.Errorf("counter verify.attempts = %d, stats says %d", got, res.VerifyAttempts)
			}
			if got := tot["verify.successes"]; got != res.VerifySuccesses {
				t.Errorf("counter verify.successes = %d, stats says %d", got, res.VerifySuccesses)
			}
			if got := tot["cluster.amendments"]; got != int64(res.ClusterAmendments) {
				t.Errorf("counter cluster.amendments = %d, stats says %d", got, res.ClusterAmendments)
			}
		})
	}
}

// A failed run must still report mapping effort (the audit caught
// mappers recording RouterExpansions only on success). ludcmp on the
// 1-register 4x4 fabric at MaxII=MII with a 100ms budget fails for all
// three mappers while burning real work first. SA's router only fires
// once its placement-cost estimate clears the infeasibility penalty —
// which it may never do on a failing run — so its guaranteed failure
// effort is PlacementsTried, not expansions.
func TestCountersFilledOnFailure(t *testing.T) {
	cb := Combo{Kernel: "ludcmp", Arch: arch.New4x4(1)}
	mii := MIIOf(cb)
	for _, mapper := range Mappers {
		mapper := mapper
		t.Run(mapper, func(t *testing.T) {
			cfg := Config{Seed: 1, TimePerII: 100 * time.Millisecond, MaxII: mii, Out: io.Discard}
			_, res := Run(mapper, cb, cfg)
			if res.Success {
				t.Skipf("%s mapped ludcmp@4x4r1 at MII in 100ms; no failure path to check", mapper)
			}
			if res.PlacementsTried == 0 {
				t.Errorf("%s: failed run reports PlacementsTried = 0, want > 0", mapper)
			}
			if mapper != "SA" && res.RouterExpansions == 0 {
				t.Errorf("%s: failed run reports RouterExpansions = 0, want > 0", mapper)
			}
		})
	}
}

// RunCombos with TraceDir writes one Chrome trace and one JSONL trace
// per run, with names safe for "PF*" and parenthesised kernels, and both
// files parse.
func TestRunCombosTraceDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Seed: 1, TimePerII: 2 * time.Second, Jobs: 2,
		Out: io.Discard, TraceDir: dir,
	}
	combos := []Combo{{Kernel: "mvt", Arch: arch.New4x4(4)}}
	RunCombos(cfg, combos)

	for _, mapper := range Mappers {
		base := traceFileBase(mapper, combos[0])
		chrome := filepath.Join(dir, base+".trace.json")
		data, err := os.ReadFile(chrome)
		if err != nil {
			t.Fatalf("missing Chrome trace: %v", err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: invalid Chrome trace JSON: %v", chrome, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("%s: no trace events", chrome)
		}

		jf, err := os.Open(filepath.Join(dir, base+".jsonl"))
		if err != nil {
			t.Fatalf("missing JSONL trace: %v", err)
		}
		sc := bufio.NewScanner(jf)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lines := 0
		for sc.Scan() {
			var v map[string]any
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				t.Fatalf("%s.jsonl line %d: invalid JSON: %v", base, lines+1, err)
			}
			lines++
		}
		jf.Close()
		if lines < 2 {
			t.Errorf("%s.jsonl: only %d lines, want meta + spans", base, lines)
		}
	}
	if base := traceFileBase("PF*", Combo{Kernel: "bicg(u)", Arch: arch.New4x4(4)}); base != "PF__bicg_u_@4x4r4" {
		t.Errorf("sanitized base = %q", base)
	}
}

// RunCombos with ReportDir writes one schema-tagged post-mortem (JSON +
// HTML) per mapper run, each attributed to its own run even under
// parallel jobs.
func TestRunCombosReportDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Seed: 1, TimePerII: 2 * time.Second, Jobs: 2,
		Out: io.Discard, ReportDir: dir,
	}
	combos := []Combo{{Kernel: "mvt", Arch: arch.New4x4(4)}}
	RunCombos(cfg, combos)

	for _, mapper := range Mappers {
		base := traceFileBase(mapper, combos[0])
		data, err := os.ReadFile(filepath.Join(dir, base+".report.json"))
		if err != nil {
			t.Fatalf("missing report: %v", err)
		}
		var r struct {
			Schema   string `json:"schema"`
			Kernel   string `json:"kernel"`
			Mapper   string `json:"mapper"`
			Attempts []any  `json:"attempts"`
		}
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("%s.report.json: invalid JSON: %v", base, err)
		}
		if r.Schema != "rewire-report-v1" || r.Kernel != "mvt" || r.Mapper != mapper {
			t.Errorf("%s: report identity = %+v", base, r)
		}
		if len(r.Attempts) == 0 {
			t.Errorf("%s: report has no attempt timeline", base)
		}
		html, err := os.ReadFile(filepath.Join(dir, base+".report.html"))
		if err != nil {
			t.Fatalf("missing HTML report: %v", err)
		}
		if !bytes.Contains(html, []byte("<!DOCTYPE html>")) {
			t.Errorf("%s.report.html is not an HTML page", base)
		}
	}
}
