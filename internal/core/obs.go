package core

import "rewire/internal/trace"

// counters caches the tracer's metric handles so the amendment loops pay
// one nil-safe atomic Add instead of a name lookup. Every field is nil
// when tracing is disabled, and all the Add/Observe methods are no-ops
// on nil, so call sites never branch.
//
// Counter names are shared with the other mappers (see
// docs/OBSERVABILITY.md): a run's counter totals mirror its
// stats.Result — every stats increment has a counter Add next to it.
type counters struct {
	placementsTried   *trace.Counter
	placementsPruned  *trace.Counter
	verifyAttempts    *trace.Counter
	verifySuccesses   *trace.Counter
	clusterAmendments *trace.Counter
	routerExpansions  *trace.Counter
	tuples            *trace.Counter
	tuplesDeduped     *trace.Counter
	pcands            *trace.Counter
	clusterSize       *trace.Histogram
	pcandsPerNode     *trace.Histogram
}

func newCounters(tr *trace.Tracer) counters {
	if !tr.Enabled() {
		return counters{}
	}
	return counters{
		placementsTried:   tr.Counter("placements.tried"),
		placementsPruned:  tr.Counter("placements.pruned"),
		verifyAttempts:    tr.Counter("verify.attempts"),
		verifySuccesses:   tr.Counter("verify.successes"),
		clusterAmendments: tr.Counter("cluster.amendments"),
		routerExpansions:  tr.Counter("route.expansions"),
		tuples:            tr.Counter("propagate.tuples"),
		tuplesDeduped:     tr.Counter("propagate.tuples_deduped"),
		pcands:            tr.Counter("intersect.pcandidates"),
		clusterSize:       tr.Histogram("cluster.size"),
		pcandsPerNode:     tr.Histogram("intersect.pcandidates_per_node"),
	}
}
