package config

import (
	"strings"
	"testing"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/kernels"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
	"rewire/internal/pathfinder"
)

// handMapping builds a small mapping by hand: ld(PE0@0) -> add(PE1@2)
// -> st(PE0@4), with the add also reading itself (accumulator).
func handMapping(t *testing.T) *mapping.Mapping {
	t.Helper()
	g := dfg.New("hand")
	ld := g.AddNode("ld a[i]", dfg.OpLoad)
	ad := g.AddNode("acc", dfg.OpAdd)
	st := g.AddNode("st o[i]", dfg.OpStore)
	g.AddEdgeOp(ld, ad, 0, 0)
	g.AddEdgeOp(ad, ad, 1, 1) // self recurrence
	g.AddEdgeOp(ad, st, 0, 0)
	s := mapping.NewSession(mapping.New(g, arch.New4x4(2), 3))
	if err := s.PlaceNode(ld, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(ad, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(st, 0, 4); err != nil {
		t.Fatal(err)
	}
	// ld -> add: east link at t=1.
	if err := s.RouteEdge(0, []mrrg.Node{s.Graph.Link(0, arch.East, 1)}); err != nil {
		t.Fatal(err)
	}
	// acc self edge, latency II=3: reg dwell then feed back.
	if err := s.RouteEdge(1, []mrrg.Node{s.Graph.Reg(1, 0, 0), s.Graph.Reg(1, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	// add -> st, latency 2: west link at t=0 (time 3 mod 3).
	if err := s.RouteEdge(2, []mrrg.Node{s.Graph.Link(1, arch.West, 3)}); err != nil {
		t.Fatal(err)
	}
	return s.M
}

func TestGenerateHandMapping(t *testing.T) {
	c, err := Generate(handMapping(t))
	if err != nil {
		t.Fatal(err)
	}
	// The load executes on PE0 slot 0 and holds a bank port there.
	if c.PEs[0][0].Node != 0 || c.PEs[0][0].Op != dfg.OpLoad {
		t.Fatalf("PE0@0 = %+v", c.PEs[0][0])
	}
	foundPort := false
	for p := range c.Banks {
		if c.Banks[p][0] == 0 {
			foundPort = true
		}
	}
	if !foundPort {
		t.Fatal("load's bank port not scheduled")
	}
	// The add on PE1 slot 2 reads operand 0 from the west input latch
	// (value sent by PE0) and operand 1 from register 0.
	addPC := c.PEs[1][2]
	if addPC.Node != 1 {
		t.Fatalf("PE1@2 = %+v", addPC)
	}
	if addPC.Operands[0] != (Src{Kind: SrcIn, Dir: arch.West}) {
		t.Fatalf("operand 0 = %v, want in.W", addPC.Operands[0])
	}
	if addPC.Operands[1] != (Src{Kind: SrcReg, Reg: 0}) {
		t.Fatalf("operand 1 = %v, want r0", addPC.Operands[1])
	}
	// PE0's east link at t=1 is driven by PE0's ALU latch.
	if c.PEs[0][1].Links[arch.East] != (Src{Kind: SrcALU}) {
		t.Fatalf("PE0 east link = %v", c.PEs[0][1].Links[arch.East])
	}
	// The register dwell: r0 written from ALU at t=0, kept at t=1.
	if c.PEs[1][0].Regs[0] != (Src{Kind: SrcALU}) {
		t.Fatalf("PE1 r0@0 = %v, want alu", c.PEs[1][0].Regs[0])
	}
	if c.PEs[1][1].Regs[0] != (Src{Kind: SrcKeep}) {
		t.Fatalf("PE1 r0@1 = %v, want keep", c.PEs[1][1].Regs[0])
	}
	// The store reads from its east input latch (PE1 sent west).
	stPC := c.PEs[0][1] // time 4 mod 3 = 1
	if stPC.Node != 2 || stPC.Operands[0] != (Src{Kind: SrcIn, Dir: arch.East}) {
		t.Fatalf("store word = %+v", stPC)
	}
}

func TestGenerateRejectsInvalidMapping(t *testing.T) {
	m := handMapping(t)
	m.Routes[1] = nil // break it
	if _, err := Generate(m); err == nil || !strings.Contains(err.Error(), "invalid mapping") {
		t.Fatalf("err = %v", err)
	}
}

func TestDisassembleMentionsEverything(t *testing.T) {
	c, err := Generate(handMapping(t))
	if err != nil {
		t.Fatal(err)
	}
	d := c.Disassemble()
	for _, want := range []string{"load", "add", "store", "out.E<=alu", "r0<=keep", "bank ports", "in.W"} {
		if !strings.Contains(d, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestGenerateFromRealMapper(t *testing.T) {
	g := kernels.MustLoad("mvt")
	m, res := pathfinder.Map(g, arch.New4x4(4), pathfinder.Options{Seed: 1, TimePerII: 3 * time.Second})
	if m == nil {
		t.Fatalf("mapping failed: %v", res)
	}
	c, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every node appears exactly once across the configuration.
	seen := map[int]int{}
	for pe := range c.PEs {
		for tt := range c.PEs[pe] {
			if n := c.PEs[pe][tt].Node; n >= 0 {
				seen[n]++
			}
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("scheduled %d of %d nodes", len(seen), g.NumNodes())
	}
	for n, count := range seen {
		if count != 1 {
			t.Fatalf("node %d scheduled %d times", n, count)
		}
	}
	// Every memory op holds exactly one bank slot.
	memScheduled := 0
	for p := range c.Banks {
		for tt := range c.Banks[p] {
			if c.Banks[p][tt] >= 0 {
				memScheduled++
			}
		}
	}
	if memScheduled != g.MemOps() {
		t.Fatalf("bank slots = %d, mem ops = %d", memScheduled, g.MemOps())
	}
}

func TestSrcString(t *testing.T) {
	cases := map[string]Src{
		"-":    {Kind: SrcNone},
		"alu":  {Kind: SrcALU},
		"in.N": {Kind: SrcIn, Dir: arch.North},
		"r2":   {Kind: SrcReg, Reg: 2},
		"keep": {Kind: SrcKeep},
	}
	for want, src := range cases {
		if src.String() != want {
			t.Errorf("String(%+v) = %q, want %q", src, src.String(), want)
		}
	}
}

func TestOperandSlotsAndArity(t *testing.T) {
	g := dfg.New("t")
	a := g.AddNode("a", dfg.OpAdd)
	sel := g.AddNode("s", dfg.OpSelect)
	g.AddEdgeOp(a, sel, 0, 2)
	if operandSlots(g, sel) != 3 {
		t.Fatalf("select slots = %d", operandSlots(g, sel))
	}
	if arity(dfg.OpStore) != 1 || arity(dfg.OpLoad) != 0 {
		t.Fatal("arity wrong")
	}
}

// TestSharedHopDifferentFeeders reproduces a route tree where two
// equal-phase branches of one net reach the same link through different
// feeders (a register dwell on one branch, a held-forward on the other).
// Occupancy guarantees both carry the same value instance, so config
// generation keeps the first mux select instead of failing; the
// simulator must still produce correct values through the kept feeder.
func TestSharedHopDifferentFeeders(t *testing.T) {
	g := dfg.New("sharedhop")
	u := g.AddNode("u", dfg.OpAdd)
	v1 := g.AddNode("v1", dfg.OpAdd)
	v2 := g.AddNode("v2", dfg.OpAdd)
	g.AddEdge(u, v1, 0)
	g.AddEdge(u, v2, 0)
	s := mapping.NewSession(mapping.New(g, arch.New4x4(2), 4))
	// u on PE2@0; both consumers read via L(6,S)@3 at phase 3, but the
	// two routes take different equal-length prefixes.
	if err := s.PlaceNode(u, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(v1, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceNode(v2, 10, 5); err != nil {
		t.Fatal(err)
	}
	gph := s.Graph
	// Route 1: FU(2)@0 -> L(2,S)@1 -> reg(6)@2 -> L(6,S)@3 -> FU(10)@4.
	r1 := []mrrg.Node{gph.Link(2, arch.South, 1), gph.Reg(6, 0, 2), gph.Link(6, arch.South, 3)}
	if err := s.RouteEdge(0, r1); err != nil {
		t.Fatal(err)
	}
	// Route 2: FU(2)@0 -> FU(2)@1 (ALU forward) -> L(2,S)@2 -> L(6,S)@3
	// (entering from in.N where route 1 entered from r0) -> reg(10)@0.
	r2 := []mrrg.Node{gph.FU(2, 1), gph.Link(2, arch.South, 2), gph.Link(6, arch.South, 3), gph.Reg(10, 0, 0)}
	if err := s.RouteEdge(1, r2); err != nil {
		t.Fatal(err)
	}
	if err := mapping.Validate(s.M); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(s.M)
	if err != nil {
		t.Fatalf("shared hop with different feeders rejected: %v", err)
	}
	// Exactly one mux select survives on the shared link.
	if c.PEs[6][3].Links[arch.South].Kind == SrcNone {
		t.Fatal("shared link not programmed")
	}
}
