// Comparemappers: run all three mappers — Rewire, the PathFinder-style
// PF* baseline, and simulated annealing — head-to-head on one kernel and
// architecture, reproducing in miniature the comparison behind the
// paper's Figures 5 and 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rewire"
)

func main() {
	kernel := flag.String("kernel", "susan", "bundled kernel to map")
	regs := flag.Int("regs", 2, "registers per PE on the 4x4 fabric")
	flag.Parse()

	g, err := rewire.LoadKernel(*kernel)
	if err != nil {
		log.Fatal(err)
	}
	cgra := rewire.New4x4(*regs)
	fmt.Printf("%s on %s (MII %d)\n\n", g.Stats(), cgra, rewire.MII(g, cgra))

	fmt.Printf("%-12s %4s %10s %12s %12s\n", "mapper", "II", "compile", "remap iters", "amendments")
	for _, name := range []rewire.MapperName{rewire.MapperRewire, rewire.MapperPathFinder, rewire.MapperSA} {
		_, res, err := rewire.Map(g, cgra, rewire.Options{
			Mapper:    name,
			Seed:      1,
			TimePerII: 2 * time.Second,
		})
		ii := "-"
		if err == nil {
			ii = fmt.Sprint(res.II)
		}
		fmt.Printf("%-12s %4s %10s %12d %12d\n",
			name, ii, res.Duration.Round(time.Millisecond),
			res.RemapIterations, res.ClusterAmendments)
	}
	fmt.Println("\n(lower II is better; remap iters count single-node rip-up/re-place steps,")
	fmt.Println(" amendments count Rewire's one-shot multi-node cluster repairs)")
}
