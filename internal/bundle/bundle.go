// Package bundle serialises mappings to a self-contained JSON document —
// the DFG, the architecture (as ADL text), the II, placements, routes and
// bank ports — and loads them back, re-validating on the way in. Bundles
// let a mapping produced by one tool invocation be inspected, simulated,
// or amended by another, and serve as golden files in regression tests.
package bundle

import (
	"encoding/json"
	"fmt"

	"rewire/internal/adl"
	"rewire/internal/dfg"
	"rewire/internal/mapping"
	"rewire/internal/mrrg"
)

// Version identifies the bundle format.
const Version = 1

// Document is the on-disk form of a mapping.
type Document struct {
	Version int        `json:"version"`
	Arch    string     `json:"arch"` // ADL text
	Graph   GraphDoc   `json:"dfg"`
	II      int        `json:"ii"`
	Places  []PlaceDoc `json:"placements"`
	Routes  [][]int32  `json:"routes"`     // per edge; nil = unrouted
	Ports   []int32    `json:"bank_ports"` // per node; -1 = none
}

// GraphDoc serialises a DFG.
type GraphDoc struct {
	Name  string    `json:"name"`
	Nodes []NodeDoc `json:"nodes"`
	Edges []EdgeDoc `json:"edges"`
}

// NodeDoc is one DFG node.
type NodeDoc struct {
	Name string `json:"name"`
	Op   string `json:"op"`
}

// EdgeDoc is one DFG edge.
type EdgeDoc struct {
	From    int `json:"from"`
	To      int `json:"to"`
	Dist    int `json:"dist,omitempty"`
	Operand int `json:"operand,omitempty"`
}

// PlaceDoc is one placement.
type PlaceDoc struct {
	PE   int `json:"pe"`
	Time int `json:"time"`
}

// Marshal encodes a mapping (which must validate) into bundle JSON.
func Marshal(m *mapping.Mapping) ([]byte, error) {
	if err := mapping.Validate(m); err != nil {
		return nil, fmt.Errorf("bundle: refusing invalid mapping: %w", err)
	}
	doc := Document{
		Version: Version,
		Arch:    adl.Format(m.Arch),
		II:      m.II,
		Graph:   encodeGraph(m.DFG),
	}
	for _, p := range m.Place {
		doc.Places = append(doc.Places, PlaceDoc{PE: p.PE, Time: p.Time})
	}
	doc.Routes = make([][]int32, len(m.Routes))
	for e, route := range m.Routes {
		if route == nil {
			continue
		}
		enc := make([]int32, len(route))
		for i, n := range route {
			enc[i] = int32(n)
		}
		doc.Routes[e] = enc
	}
	for _, p := range m.BankPorts {
		doc.Ports = append(doc.Ports, int32(p))
	}
	return json.MarshalIndent(doc, "", "  ")
}

func encodeGraph(g *dfg.Graph) GraphDoc {
	doc := GraphDoc{Name: g.Name}
	for _, n := range g.Nodes {
		doc.Nodes = append(doc.Nodes, NodeDoc{Name: n.Name, Op: n.Op.String()})
	}
	for _, e := range g.Edges {
		doc.Edges = append(doc.Edges, EdgeDoc{From: e.From, To: e.To, Dist: e.Dist, Operand: e.Operand})
	}
	return doc
}

// opByName inverts dfg.OpKind.String.
func opByName(name string) (dfg.OpKind, error) {
	for k := dfg.OpAdd; k <= dfg.OpStore; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("bundle: unknown op %q", name)
}

// Unmarshal decodes bundle JSON into a fully validated mapping.
func Unmarshal(data []byte) (*mapping.Mapping, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("bundle: unsupported version %d", doc.Version)
	}
	a, err := adl.Parse(doc.Arch)
	if err != nil {
		return nil, fmt.Errorf("bundle: architecture: %w", err)
	}
	g := dfg.New(doc.Graph.Name)
	for _, n := range doc.Graph.Nodes {
		op, err := opByName(n.Op)
		if err != nil {
			return nil, err
		}
		g.AddNode(n.Name, op)
	}
	for _, e := range doc.Graph.Edges {
		if e.From < 0 || e.From >= g.NumNodes() || e.To < 0 || e.To >= g.NumNodes() || e.Dist < 0 || e.Operand < 0 {
			return nil, fmt.Errorf("bundle: edge %d->%d out of range", e.From, e.To)
		}
		g.AddEdgeOp(e.From, e.To, e.Dist, e.Operand)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if doc.II < 1 {
		return nil, fmt.Errorf("bundle: bad II %d", doc.II)
	}
	if len(doc.Places) != g.NumNodes() || len(doc.Routes) != g.NumEdges() || len(doc.Ports) != g.NumNodes() {
		return nil, fmt.Errorf("bundle: placement/route/port counts do not match the DFG")
	}
	m := mapping.New(g, a, doc.II)
	for v, p := range doc.Places {
		m.Place[v] = mapping.Placement{PE: p.PE, Time: p.Time}
	}
	for e, route := range doc.Routes {
		if route == nil {
			continue
		}
		dec := make([]mrrg.Node, len(route))
		for i, n := range route {
			dec[i] = mrrg.Node(n)
		}
		m.Routes[e] = dec
	}
	for v, p := range doc.Ports {
		m.BankPorts[v] = mrrg.Node(p)
	}
	if err := mapping.Validate(m); err != nil {
		return nil, fmt.Errorf("bundle: loaded mapping invalid: %w", err)
	}
	return m, nil
}
