// Package sa implements the simulated-annealing baseline mapper the paper
// compares against (as used in CGRA-ME-, Morpher- and DSAGen-style
// flows). It anneals over placements (random single-node moves and pair
// swaps with Metropolis acceptance, VPR-style) against a smooth
// routability estimate, periodically attempting a full conflict-free
// routing of the current placement; it succeeds when a routing attempt
// completes, and gives up on an II after the paper's stopping rule — no
// cost improvement for a patience window — exhausts its restarts.
//
// Unlike PF*, SA picks one random candidate per move instead of
// evaluating all candidates — the paper attributes SA's much larger
// remapping-iteration counts (Table I) exactly to this.
package sa

import (
	"context"
	"math"
	"math/rand"
	"time"

	"rewire/internal/arch"
	"rewire/internal/dfg"
	"rewire/internal/diag"
	"rewire/internal/mapping"
	"rewire/internal/obs"
	"rewire/internal/placer"
	"rewire/internal/route"
	"rewire/internal/stats"
	"rewire/internal/sweep"
	"rewire/internal/trace"
)

// Options tunes the annealer. Zero values select the defaults.
type Options struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// MaxII caps the explored initiation intervals (default 32).
	MaxII int
	// TimePerII bounds the wall-clock per II (default 10s).
	TimePerII time.Duration
	// Patience is the non-improving move budget per annealing round
	// (default 100, the paper's stopping rule).
	Patience int
	// InitTemp and Cooling control the annealing schedule (defaults 20
	// and 0.99 per move).
	InitTemp float64
	Cooling  float64
	// Restarts is how many annealing rounds run per II before giving up
	// (default 6); each draws a fresh random initial placement.
	Restarts int
	// RouteEvery is how often (in moves) a full routing attempt is made
	// when the placement estimate looks feasible (default 25).
	RouteEvery int
	// SweepParallelism is the speculative II-sweep window: how many II
	// attempts may run concurrently (see internal/sweep and
	// docs/CONCURRENCY.md). 0 or 1 is the serial sweep. Every per-II
	// attempt derives its randomness from sweep.SeedForII(Seed, II), so
	// the committed (II, mapping) is bit-identical at every width.
	SweepParallelism int

	// Tracer receives phase spans and work counters for the run (see
	// internal/trace and docs/OBSERVABILITY.md). nil disables tracing at
	// ~zero hot-path cost.
	Tracer *trace.Tracer
	// Logger receives run- and II-level structured log records. nil
	// disables logging at one pointer check per site, like the tracer.
	Logger *obs.Logger
	// Diag accumulates the post-mortem: per-restart routing-attempt
	// convergence, contested-resource attribution on failed restarts,
	// the unroutable-edge list. nil disables collection at one pointer
	// check per site.
	Diag *diag.Collector
	// Progress receives coarse progress events (run, II-attempt and
	// routing-attempt boundaries) for live streaming. nil disables
	// publishing at one pointer check per site.
	Progress *diag.Bus
	// Lane tags this run's diag attempts and progress events with a
	// portfolio lane label (see internal/portfolio); empty outside
	// portfolio runs.
	Lane string
}

func (o Options) withDefaults() Options {
	if o.MaxII == 0 {
		o.MaxII = 32
	}
	if o.TimePerII == 0 {
		o.TimePerII = 10 * time.Second
	}
	if o.Patience == 0 {
		o.Patience = 100
	}
	if o.InitTemp == 0 {
		o.InitTemp = 20
	}
	if o.Cooling == 0 {
		o.Cooling = 0.99
	}
	if o.Restarts == 0 {
		o.Restarts = 6
	}
	if o.RouteEvery == 0 {
		o.RouteEvery = 25
	}
	return o
}

// Map runs the annealer, sweeping II from MII upward.
func Map(g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	return MapCtx(context.Background(), g, a, opt)
}

// paceEvery is how many anneal moves pass between real deadline and
// cancellation checks; see sweep.Pacer. The anneal loop used to call
// time.Now() per move, which is measurable at millions of moves per II.
const paceEvery = 32

// iiOut is one II attempt's outcome: the mapping (nil on failure) and
// the attempt's private effort counters, merged into the run's
// stats.Result in ascending II order once the sweep commits.
type iiOut struct {
	m     *mapping.Mapping
	st    stats.Result
	moves int
}

// MapCtx is Map with cancellation: ctx aborts the II sweep (in-flight
// attempts unwind within one anneal check interval) and the run reports
// failure. Options.SweepParallelism > 1 additionally runs that many II
// attempts speculatively; the committed result is bit-identical to the
// serial sweep's (see internal/sweep).
func MapCtx(ctx context.Context, g *dfg.Graph, a *arch.CGRA, opt Options) (*mapping.Mapping, stats.Result) {
	opt = opt.withDefaults()
	res := stats.Result{Mapper: "SA", Kernel: g.Name, Arch: a.Name}
	res.MII = mapping.MII(g, a)
	start := time.Now()

	tr := opt.Tracer
	ctr := newCounters(tr)
	root := tr.StartSpan(nil, "sa.map").
		WithStr("kernel", g.Name).WithStr("arch", a.Name).WithInt("mii", int64(res.MII))
	defer root.End()
	lg := opt.Logger.With("mapper", "sa", "kernel", g.Name, "arch", a.Name)
	lg.Debug("map start", "mii", res.MII, "max_ii", opt.MaxII, "sweep_window", opt.SweepParallelism)
	opt.Diag.Begin(g, a, "SA", res.MII)
	opt.Progress.Publish(diag.Event{Type: "run_start", Mapper: "sa",
		Kernel: g.Name, Arch: a.Name, MII: res.MII})

	runner := &iiRunner{g: g, a: a, opt: opt, tr: tr, ctr: ctr, root: root, lg: lg}
	attempt := func(actx context.Context, ii int) (iiOut, bool) {
		return runner.attemptII(actx, ii, sweep.SeedForII(opt.Seed, ii))
	}

	win, winII, below, ok := sweep.Run(ctx, res.MII, opt.MaxII, attempt, sweep.Options{
		Parallelism: opt.SweepParallelism, Tracer: tr, Parent: root, Logger: lg,
		Progress: opt.Progress,
	})
	totalMoves := 0
	for _, o := range below {
		res.PlacementsTried += o.st.PlacementsTried
		res.RouterExpansions += o.st.RouterExpansions
		totalMoves += o.moves
	}
	iisExplored := len(below)
	if ok {
		res.PlacementsTried += win.st.PlacementsTried
		res.RouterExpansions += win.st.RouterExpansions
		totalMoves += win.moves
		iisExplored++
		res.Success = true
		res.II = winII
		res.Duration = time.Since(start)
		res.RemapIterations = totalMoves / iisExplored
		opt.Diag.Commit(true, winII)
		opt.Progress.Publish(diag.Event{Type: "run_end", II: winII, Outcome: "ok"})
		lg.Info("mapped", "ii", winII, "mii", res.MII,
			"moves", res.RemapIterations, "duration_ms", res.Duration.Milliseconds())
		return win.m, res
	}
	res.Duration = time.Since(start)
	if iisExplored > 0 {
		res.RemapIterations = totalMoves / iisExplored
	}
	opt.Diag.Commit(false, 0)
	opt.Progress.Publish(diag.Event{Type: "run_end", Outcome: "failed"})
	lg.Warn("mapping failed", "mii", res.MII, "max_ii", opt.MaxII,
		"duration_ms", res.Duration.Milliseconds())
	return nil, res
}

// iiRunner carries the run-scoped state one II attempt needs: the
// immutable inputs plus the run's instrumentation handles. MapCtx
// builds one per run; AttemptII builds a root-less one per lane.
type iiRunner struct {
	g    *dfg.Graph
	a    *arch.CGRA
	opt  Options
	tr   *trace.Tracer
	ctr  saCounters
	root *trace.Span
	lg   *obs.Logger
}

// attemptII runs one II attempt with the given seed: up to Restarts
// annealing rounds, each from a fresh random initial placement, until
// one validates or the II's time budget expires.
func (r *iiRunner) attemptII(actx context.Context, ii int, iiSeed int64) (iiOut, bool) {
	g, a, opt, tr, lg := r.g, r.a, r.opt, r.tr, r.lg
	var out iiOut
	// One rng per II attempt, shared by its restarts in sequence:
	// the attempt's random stream depends only on the attempt seed.
	rng := rand.New(rand.NewSource(iiSeed))
	pace := sweep.NewPacer(actx, time.Now().Add(opt.TimePerII), paceEvery)
	iiSpan := tr.StartSpan(r.root, "ii").WithInt("ii", int64(ii))
	for restart := 0; restart < opt.Restarts && !pace.ExpiredNow(); restart++ {
		rSpan := tr.StartSpan(iiSpan, "anneal").WithInt("restart", int64(restart))
		ms := tr.StartSpan(rSpan, "mrrg_build")
		an := newAnnealer(g, a, ii, rng, &out.st)
		ms.End()
		an.tr, an.span, an.ctr = tr, rSpan, r.ctr
		an.att = opt.Diag.StartLane(ii, restart, opt.Lane)
		an.bus = opt.Progress
		an.bus.Publish(diag.Event{Type: "attempt_start", II: ii, Attempt: restart, Lane: opt.Lane})
		an.router.Instrument(tr)
		ok := an.run(opt, pace)
		out.moves += an.moves
		r.ctr.moves.Add(int64(an.moves))
		// Each restart owns a fresh router; fold its work in win or
		// lose so RouterExpansions covers the whole search.
		out.st.RouterExpansions += an.router.Expansions
		r.ctr.routerExpansions.Add(an.router.Expansions)
		rSpan.WithBool("ok", ok).WithInt("moves", int64(an.moves)).End()
		an.att.Finish(ok, an.sess)
		if actx.Err() != nil {
			an.att.Cancelled()
		}
		an.bus.Publish(diag.Event{Type: "attempt_end", II: ii, Attempt: restart,
			Round: an.moves, Outcome: outcomeWord(ok, actx.Err() != nil), Lane: opt.Lane})
		if !ok {
			an.sess.Close()
			continue
		}
		if err := mapping.Validate(an.sess.M); err != nil {
			panic("sa: produced invalid mapping: " + err.Error())
		}
		iiSpan.WithBool("ok", true).End()
		out.m = an.sess.M
		an.sess.Close()
		return out, true
	}
	iiSpan.WithBool("ok", false).End()
	if lg.On() {
		lg.Debug("ii exhausted", "ii", ii)
	}
	return out, false
}

// AttemptII runs exactly one SA II attempt with an externally derived
// seed and returns the mapping (nil on failure), the attempt's private
// effort counters (RemapIterations holds this attempt's move count),
// and whether the II is feasible. It is the portfolio lane entry point
// (see internal/portfolio): the caller owns the run lifecycle — diag
// Begin/Commit, run_start/run_end events, MII — while AttemptII emits
// only per-attempt instrumentation, tagged with opt.Lane when set.
// Determinism matches MapCtx: the outcome is a pure function of
// (g, a, ii, seed, opt).
func AttemptII(ctx context.Context, g *dfg.Graph, a *arch.CGRA, ii int, seed int64, opt Options) (*mapping.Mapping, stats.Result, bool) {
	opt = opt.withDefaults()
	tr := opt.Tracer
	r := &iiRunner{
		g: g, a: a, opt: opt, tr: tr, ctr: newCounters(tr),
		lg: opt.Logger.With("mapper", "sa", "kernel", g.Name, "arch", a.Name),
	}
	out, ok := r.attemptII(ctx, ii, seed)
	st := out.st
	st.Mapper = "SA"
	st.Kernel = g.Name
	st.Arch = a.Name
	st.RemapIterations = out.moves
	return out.m, st, ok
}

// outcomeWord is the progress-event outcome label for one attempt.
func outcomeWord(ok, cancelled bool) string {
	switch {
	case ok:
		return "ok"
	case cancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

type annealer struct {
	g      *dfg.Graph
	sess   *mapping.Session
	router *route.Router
	rng    *rand.Rand
	res    *stats.Result
	asap   []int
	slack  int
	moves  int

	tr   *trace.Tracer
	span *trace.Span // this restart's anneal span
	ctr  saCounters

	// att/bus collect the post-mortem and progress stream; both are nil
	// (free no-ops) when diagnostics are disabled.
	att *diag.IIAttempt
	bus *diag.Bus
}

// saCounters caches the tracer's metric handles (nil-safe no-ops when
// tracing is disabled). Names are shared with the other mappers.
type saCounters struct {
	placementsTried  *trace.Counter
	routerExpansions *trace.Counter
	moves            *trace.Counter
}

func newCounters(tr *trace.Tracer) saCounters {
	if !tr.Enabled() {
		return saCounters{}
	}
	return saCounters{
		placementsTried:  tr.Counter("placements.tried"),
		routerExpansions: tr.Counter("route.expansions"),
		moves:            tr.Counter("sa.moves"),
	}
}

func newAnnealer(g *dfg.Graph, a *arch.CGRA, ii int, rng *rand.Rand, res *stats.Result) *annealer {
	sess := mapping.NewSession(mapping.New(g, a, ii))
	asap, err := g.ASAP(ii)
	if err != nil {
		asap = make([]int, g.NumNodes())
	}
	return &annealer{
		g:      g,
		sess:   sess,
		router: route.ForSession(sess),
		rng:    rng,
		res:    res,
		asap:   asap,
		slack:  placer.DefaultSlack(ii),
	}
}

func (an *annealer) run(opt Options, pace *sweep.Pacer) bool {
	an.initialRandom()
	cost := an.totalCost()
	best := cost
	sinceImprove := 0
	temp := opt.InitTemp

	for sinceImprove < opt.Patience && !pace.Expired() {
		an.moves++
		delta, revert := an.move()
		if delta <= 0 || an.rng.Float64() < math.Exp(-float64(delta)/temp) {
			cost += delta
		} else if revert != nil {
			revert()
		}
		if cost < best {
			best = cost
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		temp *= opt.Cooling
		if temp < 0.5 {
			temp = 0.5
		}
		// When the placement estimate carries no infeasibility penalties,
		// try to actually route everything.
		if an.moves%opt.RouteEvery == 0 && cost < penaltyUnroutable {
			if an.routeAll() {
				return true
			}
			// Each full-routing attempt is one negotiation round of the
			// convergence series (ill count only when diag is on — the
			// IllMapped scan is not free).
			if an.att != nil {
				an.att.Round(len(an.sess.IllMapped()))
				an.bus.Publish(diag.Event{Type: "round", II: an.sess.M.II,
					Round: an.moves, Ill: len(an.sess.IllMapped())})
			}
		}
	}
	if cost < penaltyUnroutable && an.routeAll() {
		return true
	}
	an.attributeFailure()
	an.clearRoutes()
	return false
}

// attributeFailure feeds the post-mortem on a failed restart: it
// best-effort re-routes the current placement (routeAll rips all routes
// on its first conflict, which would leave nothing to attribute), then
// names the resources blocking whatever stayed unroutable.
// Diagnostic-only — a no-op unless diagnostics are enabled.
func (an *annealer) attributeFailure() {
	if an.att == nil || len(an.sess.M.UnplacedNodes()) > 0 {
		return
	}
	for e := range an.g.Edges {
		if !an.sess.M.Routed(e) {
			_ = route.Edge(an.sess, an.router, e)
		}
	}
	route.AttributeFailures(an.att, an.sess, an.router)
}

const (
	penaltyUnplaced   = 5000
	penaltyUnroutable = 1000
)

// edgeCost estimates edge e's routing cost from placements alone: its
// latency when feasible, a large penalty plus the feasibility deficit
// when the latency cannot possibly route.
func (an *annealer) edgeCost(e int) int {
	ed := an.g.Edges[e]
	m := an.sess.M
	if !m.Placed(ed.From) || !m.Placed(ed.To) {
		return 0 // charged via the unplaced node
	}
	lat := m.Latency(e)
	need := an.router.NeedCycles(m.Place[ed.From].PE, m.Place[ed.To].PE)
	if lat < 1 || lat < need {
		deficit := need - lat
		if deficit < 1 {
			deficit = 1
		}
		return penaltyUnroutable + 10*deficit
	}
	return lat
}

func (an *annealer) totalCost() int {
	c := 0
	for v := range an.sess.M.Place {
		if !an.sess.M.Placed(v) {
			c += penaltyUnplaced
		}
	}
	for e := range an.g.Edges {
		c += an.edgeCost(e)
	}
	return c
}

// nodeLocalCost sums the cost terms the given nodes participate in.
func (an *annealer) nodeLocalCost(vs ...int) int {
	c := 0
	seen := map[int]bool{}
	for _, v := range vs {
		if !an.sess.M.Placed(v) {
			c += penaltyUnplaced
		}
		for _, eid := range append(append([]int{}, an.g.InEdges(v)...), an.g.OutEdges(v)...) {
			if !seen[eid] {
				seen[eid] = true
				c += an.edgeCost(eid)
			}
		}
	}
	return c
}

// initialRandom places every node at a random feasible slot, in
// topological order so dependency windows are meaningful. No routes are
// committed during annealing.
func (an *annealer) initialRandom() {
	order, err := an.g.TopoOrder()
	if err != nil {
		return
	}
	for _, v := range order {
		w := placer.TimeWindow(an.sess, v, an.asap[v], an.slack)
		if w.Empty() {
			continue
		}
		cands := placer.Candidates(an.sess, v, w)
		if len(cands) == 0 {
			continue
		}
		pl := cands[an.rng.Intn(len(cands))]
		an.res.PlacementsTried++
		an.ctr.placementsTried.Add(1)
		_ = an.sess.PlaceNode(v, pl.PE, pl.Time)
	}
}

// move perturbs the placement: relocate one random node to one random
// candidate slot, or swap two nodes' slots. Returns the cost delta and a
// revert closure (nil if the move was a no-op).
func (an *annealer) move() (int, func()) {
	v := an.rng.Intn(an.g.NumNodes())
	if an.sess.M.Placed(v) && an.rng.Float64() < 0.3 {
		return an.swapMove(v)
	}
	return an.relocateMove(v)
}

func (an *annealer) relocateMove(v int) (int, func()) {
	before := an.nodeLocalCost(v)
	oldPl := an.sess.M.Place[v]
	if an.sess.M.Placed(v) {
		an.sess.UnplaceNode(v)
	}
	// SA "selects one candidate randomly" (§V, Table I discussion): half
	// the moves draw from the dependency-feasible window, half from the
	// node's whole static schedule window — the blind draws are what make
	// SA need so many more iterations than PF*.
	w := placer.TimeWindow(an.sess, v, an.asap[v], an.slack)
	if an.rng.Intn(2) == 0 || w.Empty() {
		w = placer.Window{Lo: an.asap[v], Hi: an.asap[v] + an.slack}
	}
	if !w.Empty() {
		if cands := placer.Candidates(an.sess, v, w); len(cands) > 0 {
			pl := cands[an.rng.Intn(len(cands))]
			an.res.PlacementsTried++
			an.ctr.placementsTried.Add(1)
			_ = an.sess.PlaceNode(v, pl.PE, pl.Time)
		}
	}
	after := an.nodeLocalCost(v)
	return after - before, func() {
		if an.sess.M.Placed(v) {
			an.sess.UnplaceNode(v)
		}
		if oldPl.PE >= 0 {
			if err := an.sess.PlaceNode(v, oldPl.PE, oldPl.Time); err != nil {
				panic("sa: revert failed: " + err.Error())
			}
		}
	}
}

func (an *annealer) swapMove(v int) (int, func()) {
	u := an.rng.Intn(an.g.NumNodes())
	if u == v || !an.sess.M.Placed(u) || !an.sess.M.Placed(v) {
		return 0, nil
	}
	pv, pu := an.sess.M.Place[v], an.sess.M.Place[u]
	before := an.nodeLocalCost(v, u)
	an.sess.UnplaceNode(v)
	an.sess.UnplaceNode(u)
	an.res.PlacementsTried++
	an.ctr.placementsTried.Add(1)
	if an.sess.PlaceNode(v, pu.PE, pu.Time) != nil || an.sess.PlaceNode(u, pv.PE, pv.Time) != nil {
		// Incompatible swap (memory rules or bank ports): undo outright.
		an.forcePlaceBack(v, pv, u, pu)
		return 0, nil
	}
	after := an.nodeLocalCost(v, u)
	return after - before, func() {
		an.sess.UnplaceNode(v)
		an.sess.UnplaceNode(u)
		an.forcePlaceBack(v, pv, u, pu)
	}
}

func (an *annealer) forcePlaceBack(v int, pv mapping.Placement, u int, pu mapping.Placement) {
	if an.sess.M.Placed(v) {
		an.sess.UnplaceNode(v)
	}
	if an.sess.M.Placed(u) {
		an.sess.UnplaceNode(u)
	}
	if err := an.sess.PlaceNode(v, pv.PE, pv.Time); err != nil {
		panic("sa: swap revert failed: " + err.Error())
	}
	if err := an.sess.PlaceNode(u, pu.PE, pu.Time); err != nil {
		panic("sa: swap revert failed: " + err.Error())
	}
}

// routeAll attempts a complete strict routing of the current placement;
// on failure every route is ripped again and the annealing continues.
func (an *annealer) routeAll() (ok bool) {
	rs := an.tr.StartSpan(an.span, "route_all").WithInt("move", int64(an.moves))
	defer func() { rs.WithBool("ok", ok).End() }()
	if len(an.sess.M.UnplacedNodes()) > 0 {
		return false
	}
	for e := range an.g.Edges {
		if err := route.Edge(an.sess, an.router, e); err != nil {
			an.clearRoutes()
			return false
		}
	}
	return true
}

func (an *annealer) clearRoutes() {
	for e := range an.g.Edges {
		an.sess.UnrouteEdge(e)
	}
}
