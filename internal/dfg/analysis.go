package dfg

import (
	"fmt"
	"math"
)

// OpLatency is the execution latency, in cycles, of every operation. The
// modelled CGRA (like HyCube and the DRESC-family MRRG architectures the
// paper targets) executes each operation in a single cycle.
const OpLatency = 1

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II such that every dependency cycle c satisfies
// sum(latency) <= II * sum(distance). With no loop-carried edges the
// result is 1.
//
// It is computed by binary search on II, testing feasibility of the
// difference-constraint system T_v >= T_u + latency - II*dist via
// Bellman-Ford positive-cycle detection (a positive cycle in the
// constraint graph means the II is too small).
func (g *Graph) RecMII() int {
	hasRec := false
	for _, e := range g.Edges {
		if e.Dist > 0 {
			hasRec = true
			break
		}
	}
	if !hasRec {
		return 1
	}
	// Upper bound: II = sum of all latencies always satisfies every cycle
	// (each cycle has at least one edge with dist >= 1).
	lo, hi := 1, len(g.Nodes)*OpLatency
	if hi < 1 {
		hi = 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if g.iiFeasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// iiFeasible reports whether the dependency difference constraints admit a
// schedule at the given II (no positive-weight cycle with weights
// latency - II*dist).
func (g *Graph) iiFeasible(ii int) bool {
	_, err := g.relaxLongest(ii)
	return err == nil
}

// relaxLongest computes longest-path distances from virtual time 0 under
// the constraints T_v >= T_u + latency - II*dist, returning an error if
// the constraints are infeasible at this II. All nodes start at time 0,
// which yields the ASAP schedule.
func (g *Graph) relaxLongest(ii int) ([]int, error) {
	n := len(g.Nodes)
	t := make([]int, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges {
			lb := t[e.From] + OpLatency - ii*e.Dist
			if lb > t[e.To] {
				t[e.To] = lb
				changed = true
			}
		}
		if !changed {
			return t, nil
		}
	}
	// One more pass: any further relaxation proves a positive cycle.
	for _, e := range g.Edges {
		if t[e.From]+OpLatency-ii*e.Dist > t[e.To] {
			return nil, fmt.Errorf("dfg %q: no schedule exists at II=%d (recurrence violated)", g.Name, ii)
		}
	}
	return t, nil
}

// ResMII returns the resource-constrained minimum initiation interval for
// a fabric with numPEs processing elements, of which numMemPEs can access
// memory through numBanks single-ported banks.
func (g *Graph) ResMII(numPEs, numMemPEs, numBanks int) int {
	mii := ceilDiv(len(g.Nodes), numPEs)
	mem := g.MemOps()
	if mem > 0 {
		if numMemPEs <= 0 || numBanks <= 0 {
			return math.MaxInt32 // unmappable: memory ops but no memory path
		}
		if v := ceilDiv(mem, numMemPEs); v > mii {
			mii = v
		}
		if v := ceilDiv(mem, numBanks); v > mii {
			mii = v
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// MII returns max(RecMII, ResMII): the theoretical minimum II the paper
// reports as "MII" in Figure 5.
func (g *Graph) MII(numPEs, numMemPEs, numBanks int) int {
	r := g.ResMII(numPEs, numMemPEs, numBanks)
	if rec := g.RecMII(); rec > r {
		return rec
	}
	return r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ASAP returns the as-soon-as-possible schedule times for every node at
// the given II: the component-wise least solution of
// T_v >= T_u + latency - II*dist with all times >= 0. It returns an error
// if II < RecMII (no schedule exists).
func (g *Graph) ASAP(ii int) ([]int, error) {
	return g.relaxLongest(ii)
}

// ALAP returns the as-late-as-possible schedule times at the given II
// such that no node is scheduled later than horizon and every dependency
// constraint holds. Typically horizon = max(ASAP) + slack.
func (g *Graph) ALAP(ii, horizon int) ([]int, error) {
	n := len(g.Nodes)
	t := make([]int, n)
	for i := range t {
		t[i] = horizon
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges {
			ub := t[e.To] - OpLatency + ii*e.Dist
			if ub < t[e.From] {
				t[e.From] = ub
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, e := range g.Edges {
		if t[e.To]-OpLatency+ii*e.Dist < t[e.From] {
			return nil, fmt.Errorf("dfg %q: ALAP infeasible at II=%d", g.Name, ii)
		}
	}
	for _, v := range t {
		if v < 0 {
			return nil, fmt.Errorf("dfg %q: ALAP horizon %d too small at II=%d", g.Name, horizon, ii)
		}
	}
	return t, nil
}

// CriticalPathLen returns the longest distance-0 dependency chain length
// in nodes. It is the schedule length lower bound and is used by the
// propagation-round heuristic when a cluster has no mapped neighbours.
func (g *Graph) CriticalPathLen() int {
	order, err := g.TopoOrderShared()
	if err != nil {
		return len(g.Nodes)
	}
	depth := make([]int, len(g.Nodes))
	best := 0
	for _, v := range order {
		if depth[v] == 0 {
			depth[v] = 1
		}
		if depth[v] > best {
			best = depth[v]
		}
		for _, eid := range g.outs[v] {
			e := g.Edges[eid]
			if e.Dist != 0 {
				continue
			}
			if depth[v]+1 > depth[e.To] {
				depth[e.To] = depth[v] + 1
			}
		}
	}
	return best
}

// LongestPathWithin returns the length (in edges) of the longest
// distance-0 path that stays inside the node set `within` (indexed by
// node ID; IDs at or beyond len(within) are outside). Used by the
// paper's propagation-round heuristic ("length of the longest path within
// U multiplied by five").
func (g *Graph) LongestPathWithin(within []bool) int {
	member := func(v int) bool { return v < len(within) && within[v] }
	order, err := g.TopoOrderShared()
	if err != nil {
		n := 0
		for _, m := range within {
			if m {
				n++
			}
		}
		return n
	}
	depth := make(map[int]int)
	best := 0
	for _, v := range order {
		if !member(v) {
			continue
		}
		for _, eid := range g.outs[v] {
			e := g.Edges[eid]
			if e.Dist != 0 || !member(e.To) {
				continue
			}
			if depth[v]+1 > depth[e.To] {
				depth[e.To] = depth[v] + 1
			}
			if depth[e.To] > best {
				best = depth[e.To]
			}
		}
	}
	return best
}

// UndirectedDistances returns, for every node, its BFS hop distance to the
// nearest node in the seed set (indexed by node ID), treating every edge
// as undirected. Nodes unreachable from the seeds get distance
// math.MaxInt32. Rewire uses this to pick which connected node to append
// to a cluster.
func (g *Graph) UndirectedDistances(seeds []bool) []int {
	const inf = math.MaxInt32
	dist := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = inf
	}
	var queue []int
	for v, in := range seeds {
		if in && v < len(g.Nodes) {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.outs[v] {
			w := g.Edges[eid].To
			if dist[w] > dist[v]+1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
		for _, eid := range g.ins[v] {
			w := g.Edges[eid].From
			if dist[w] > dist[v]+1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
