package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rewire/internal/trace"
)

// attemptLog records which IIs ran, thread-safely.
type attemptLog struct {
	mu  sync.Mutex
	ran []int
}

func (l *attemptLog) add(ii int) {
	l.mu.Lock()
	l.ran = append(l.ran, ii)
	l.mu.Unlock()
}

func (l *attemptLog) has(ii int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.ran {
		if r == ii {
			return true
		}
	}
	return false
}

// feasibleAt builds an attempt that succeeds exactly at IIs >= first,
// returning the II as its value.
func feasibleAt(first int, log *attemptLog) Attempt[int] {
	return func(_ context.Context, ii int) (int, bool) {
		if log != nil {
			log.add(ii)
		}
		return ii, ii >= first
	}
}

func TestRunCommitsLowestFeasible(t *testing.T) {
	for _, w := range []int{0, 1, 2, 4, 8} {
		win, winII, below, ok := Run(context.Background(), 2, 10, feasibleAt(5, nil), Options{Parallelism: w})
		if !ok || winII != 5 || win != 5 {
			t.Fatalf("w=%d: committed (%d,%d,%v), want II 5", w, win, winII, ok)
		}
		if len(below) != 3 || below[0] != 2 || below[1] != 3 || below[2] != 4 {
			t.Fatalf("w=%d: below = %v, want [2 3 4]", w, below)
		}
	}
}

func TestRunAllFail(t *testing.T) {
	for _, w := range []int{1, 3} {
		_, _, below, ok := Run(context.Background(), 1, 4, feasibleAt(100, nil), Options{Parallelism: w})
		if ok {
			t.Fatalf("w=%d: sweep succeeded, want failure", w)
		}
		if len(below) != 4 {
			t.Fatalf("w=%d: below = %v, want all four attempted IIs", w, below)
		}
		for i, b := range below {
			if b != i+1 {
				t.Fatalf("w=%d: below = %v, want ascending [1 2 3 4]", w, below)
			}
		}
	}
}

func TestRunEmptyRange(t *testing.T) {
	_, _, below, ok := Run(context.Background(), 5, 4, feasibleAt(0, nil), Options{})
	if ok || below != nil {
		t.Fatal("empty range must fail without attempts")
	}
}

func TestRunFirstIIWins(t *testing.T) {
	log := &attemptLog{}
	_, winII, below, ok := Run(context.Background(), 3, 32, feasibleAt(3, log), Options{Parallelism: 4})
	if !ok || winII != 3 || len(below) != 0 {
		t.Fatalf("committed (%d,%v) below=%v, want II 3 with empty below", winII, ok, below)
	}
	// The window may have speculated a few IIs above 3, but never beyond
	// the initial window: once 3 succeeds no new launches may happen.
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, ii := range log.ran {
		if ii > 6 {
			t.Fatalf("attempt launched at II %d, beyond the initial window [3,6]", ii)
		}
	}
}

func TestRunNeverLaunchesAboveKnownFeasible(t *testing.T) {
	// II 4 succeeds instantly; IIs 2 and 3 block until released. No
	// attempt above 4 may launch once 4's success is known.
	release := make(chan struct{})
	log := &attemptLog{}
	attempt := func(_ context.Context, ii int) (int, bool) {
		log.add(ii)
		if ii < 4 {
			<-release
			return ii, false
		}
		return ii, ii == 4
	}
	var winII int
	var ok bool
	done := make(chan struct{})
	go func() {
		_, winII, _, ok = Run(context.Background(), 2, 32, attempt, Options{Parallelism: 3})
		close(done)
	}()
	// Give the engine time to observe 4's success and (incorrectly)
	// launch something above it.
	time.Sleep(50 * time.Millisecond)
	if log.has(5) || log.has(6) {
		t.Fatal("attempt above a known-feasible II was launched")
	}
	close(release)
	<-done
	if !ok || winII != 4 {
		t.Fatalf("committed (%d,%v), want II 4", winII, ok)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	started := make(chan struct{}, 64)
	attempt := func(actx context.Context, ii int) (int, bool) {
		calls.Add(1)
		started <- struct{}{}
		<-actx.Done() // block until torn down
		return ii, false
	}
	done := make(chan bool)
	go func() {
		_, _, _, ok := Run(ctx, 1, 32, attempt, Options{Parallelism: 2})
		done <- ok
	}()
	<-started
	<-started
	cancel()
	if ok := <-done; ok {
		t.Fatal("cancelled sweep reported success")
	}
	// The initial window launched, nothing after cancellation.
	if n := calls.Load(); n > 2 {
		t.Fatalf("launched %d attempts after cancellation, want the initial window only", n)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, _, _, ok := Run(ctx, 1, 8, func(context.Context, int) (int, bool) {
		ran = true
		return 0, true
	}, Options{Parallelism: 4})
	if ok || ran {
		t.Fatal("pre-cancelled sweep must not launch attempts")
	}
}

func TestRunCountersAndSpans(t *testing.T) {
	tr := trace.New()
	_, winII, _, ok := Run(context.Background(), 2, 10, feasibleAt(4, nil), Options{Parallelism: 3, Tracer: tr})
	if !ok || winII != 4 {
		t.Fatalf("committed (%d,%v), want II 4", winII, ok)
	}
	totals := tr.CounterTotals()
	if totals["sweep.attempts"] < 3 {
		t.Fatalf("sweep.attempts = %d, want >= 3 (IIs 2,3,4)", totals["sweep.attempts"])
	}
	if totals["sweep.speculative"] < 1 {
		t.Fatalf("sweep.speculative = %d, want >= 1 under a width-3 window", totals["sweep.speculative"])
	}
	if _, have := totals["sweep.cancelled"]; !have {
		t.Fatal("sweep.cancelled counter missing")
	}
	if _, have := totals["sweep.wasted_ms"]; !have {
		t.Fatal("sweep.wasted_ms counter missing")
	}
}

func TestRunSerialHasNoSpeculation(t *testing.T) {
	tr := trace.New()
	Run(context.Background(), 1, 8, feasibleAt(5, nil), Options{Parallelism: 1, Tracer: tr})
	totals := tr.CounterTotals()
	if totals["sweep.speculative"] != 0 || totals["sweep.cancelled"] != 0 {
		t.Fatalf("serial sweep recorded speculation: %v", totals)
	}
	if totals["sweep.attempts"] != 5 {
		t.Fatalf("sweep.attempts = %d, want 5", totals["sweep.attempts"])
	}
}

func TestSeedForIIDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for ii := 1; ii <= 64; ii++ {
		s := SeedForII(42, ii)
		if s2 := SeedForII(42, ii); s2 != s {
			t.Fatalf("SeedForII not stable at ii=%d", ii)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between II %d and %d", prev, ii)
		}
		seen[s] = ii
	}
	if SeedForII(1, 3) == SeedForII(2, 3) {
		t.Fatal("different run seeds produced the same per-II seed")
	}
}

func TestPacerAmortisesAndLatches(t *testing.T) {
	p := NewPacer(context.Background(), time.Now().Add(-time.Second), 8)
	// Calls 1..7 skip the real check; call 8 performs it and trips.
	for i := 0; i < 7; i++ {
		if p.Expired() {
			t.Fatalf("expired on amortised call %d", i+1)
		}
	}
	if !p.Expired() {
		t.Fatal("did not expire on the checking call")
	}
	if !p.Expired() || !p.ExpiredNow() {
		t.Fatal("expiry must latch")
	}
}

func TestPacerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPacer(ctx, time.Now().Add(time.Hour), 1)
	if p.Expired() {
		t.Fatal("expired before cancellation")
	}
	cancel()
	if !p.Expired() {
		t.Fatal("cancellation not observed")
	}
}

func TestPacerNilSafety(t *testing.T) {
	var p *Pacer
	if p.Expired() || p.ExpiredNow() {
		t.Fatal("nil pacer must never expire")
	}
}

func TestPacerZeroDeadlineNeverExpires(t *testing.T) {
	p := NewPacer(context.Background(), time.Time{}, 1)
	for i := 0; i < 100; i++ {
		if p.Expired() {
			t.Fatal("zero-deadline pacer expired")
		}
	}
}
