package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rewire/internal/ledger"
)

func group(kernel, mapper string, bestII, runs, successes int, ms ...float64) ledger.Group {
	return ledger.Group{
		Kernel: kernel, Arch: "4x4r4", Mapper: mapper,
		Runs: runs, Successes: successes, BestII: bestII, MII: 2, CompileMS: ms,
	}
}

// Identical snapshots must diff clean — the HEAD-vs-HEAD CI gate.
func TestDiffIdenticalIsClean(t *testing.T) {
	gs := []ledger.Group{
		group("mvt", "rewire", 3, 2, 2, 120, 130),
		group("atax", "rewire", 2, 1, 1, 88),
	}
	regs, _ := diff(gs, gs, 0.5)
	if len(regs) != 0 {
		t.Fatalf("identical snapshots regressed: %v", regs)
	}
}

// Any best-II increase is a regression; a decrease is an improvement
// note, not a failure.
func TestDiffIIRegression(t *testing.T) {
	base := []ledger.Group{group("mvt", "rewire", 3, 1, 1, 100)}
	worse := []ledger.Group{group("mvt", "rewire", 4, 1, 1, 100)}
	regs, _ := diff(base, worse, 0.5)
	if len(regs) != 1 || regs[0].What != "best II" {
		t.Fatalf("II 3->4 not flagged: %v", regs)
	}
	better := []ledger.Group{group("mvt", "rewire", 2, 1, 1, 100)}
	regs, notes := diff(base, better, 0.5)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
	if !strings.Contains(strings.Join(notes, "\n"), "improved") {
		t.Errorf("improvement not noted: %v", notes)
	}
}

// Losing all successes on a group that used to map is a regression.
func TestDiffSuccessLost(t *testing.T) {
	base := []ledger.Group{group("atax", "rewire", 2, 1, 1, 88)}
	cur := []ledger.Group{group("atax", "rewire", 0, 1, 0, 412)}
	regs, _ := diff(base, cur, 0.5)
	found := false
	for _, r := range regs {
		if r.What == "success" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost success not flagged: %v", regs)
	}
}

// A success-rate drop fails even when the best run still lands.
func TestDiffSuccessRateDrop(t *testing.T) {
	base := []ledger.Group{group("mvt", "rewire", 3, 4, 4, 100, 100, 100, 100)}
	cur := []ledger.Group{group("mvt", "rewire", 3, 4, 3, 100, 100, 100)}
	regs, _ := diff(base, cur, 0.5)
	if len(regs) != 1 || regs[0].What != "success rate" {
		t.Fatalf("success-rate drop 100%%->75%% not flagged: %v", regs)
	}
}

// Median compile time fails only past the threshold.
func TestDiffCompileTimeThreshold(t *testing.T) {
	base := []ledger.Group{group("mvt", "rewire", 3, 1, 1, 100)}
	slow := []ledger.Group{group("mvt", "rewire", 3, 1, 1, 160)}
	if regs, _ := diff(base, slow, 0.5); len(regs) != 1 || regs[0].What != "median compile ms" {
		t.Fatalf("+60%% compile time not flagged at +50%% threshold: %v", regs)
	}
	okish := []ledger.Group{group("mvt", "rewire", 3, 1, 1, 140)}
	if regs, _ := diff(base, okish, 0.5); len(regs) != 0 {
		t.Fatalf("+40%% compile time flagged at +50%% threshold: %v", regs)
	}
}

// Coverage changes are notes, never failures.
func TestDiffCoverageChangesAreNotes(t *testing.T) {
	base := []ledger.Group{group("mvt", "rewire", 3, 1, 1, 100)}
	cur := []ledger.Group{group("atax", "rewire", 2, 1, 1, 88)}
	regs, notes := diff(base, cur, 0.5)
	if len(regs) != 0 {
		t.Fatalf("coverage change failed the diff: %v", regs)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "only in baseline") || !strings.Contains(joined, "only in current") {
		t.Errorf("coverage notes missing: %v", notes)
	}
}

// Pre-portfolio snapshots carry no winner_backend field; snapshots
// written after it exists must still diff clean against them when the
// quality is unchanged — the field is informational, never a gate.
func TestWinnerBackendIgnoredForOldSnapshots(t *testing.T) {
	const meta = `{"type":"meta","format":"rewire-ledger-v1","created_ms":1754600000000}` + "\n"
	const oldRun = `{"type":"run","ts_ms":1754600001000,"source":"eval","kernel":"mvt","arch":"4x4r4","mapper":"portfolio","seed":1,"success":true,"ii":3,"mii":2,"compile_ms":120.5}` + "\n"
	const newRun = `{"type":"run","ts_ms":1754600002000,"source":"eval","kernel":"mvt","arch":"4x4r4","mapper":"portfolio","seed":1,"success":true,"ii":3,"mii":2,"compile_ms":121.0,"winner_backend":"rewire"}` + "\n"
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	if err := os.WriteFile(oldPath, []byte(meta+oldRun), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(meta+newRun), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadGroups(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadGroups(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := diff(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("winner_backend made an old-vs-new diff dirty: %v", regs)
	}
	if regs, _ := diff(cur, base, 0.5); len(regs) != 0 {
		t.Fatalf("winner_backend made a new-vs-old diff dirty: %v", regs)
	}
}

// The checked-in fixture pair must reproduce the synthetic regression:
// base vs regress flags the II jump and the lost success; base vs base
// is clean. CI's qor-gate drives the binary over the same files.
func TestFixtures(t *testing.T) {
	base, err := loadGroups("testdata/base.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadGroups("testdata/regress.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := diff(base, base, 0.5); len(regs) != 0 {
		t.Fatalf("base vs base regressed: %v", regs)
	}
	regs, _ := diff(base, cur, 0.5)
	kinds := map[string]bool{}
	for _, r := range regs {
		kinds[r.What] = true
	}
	if !kinds["best II"] || !kinds["success"] {
		t.Fatalf("fixture pair misses expected regressions (best II + success): %v", regs)
	}
}
