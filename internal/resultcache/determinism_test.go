package resultcache_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rewire"
	"rewire/internal/kernels"
)

// detBudget mirrors internal/sweep's determinism tests: the per-II
// wall clock must never bind (the mappers' own work bounds terminate
// these kernels quickly), because a binding budget would make results
// timing-dependent. An hour absorbs the race detector's ~20x slowdown.
const detBudget = time.Hour

// TestCachedMappingDeterminism is the race-CI contract of the result
// cache: under concurrent identical and near-identical requests,
// exactly one compile runs per unique fingerprint, and every caller —
// cache hit, singleflight waiter, or leader — receives a mapping
// bit-identical to a cache-disabled run of the same request.
func TestCachedMappingDeterminism(t *testing.T) {
	type request struct {
		kernel string
		seed   int64
	}
	var reqs []request
	for _, kernel := range []string{"mvt", "atax"} {
		for _, seed := range []int64{1, 7, 42} {
			reqs = append(reqs, request{kernel, seed})
		}
	}
	const callersPerReq = 3

	cache := rewire.NewResultCache(0)
	cgra := rewire.New4x4(4)
	opts := func(seed int64, c *rewire.ResultCache) rewire.Options {
		return rewire.Options{Seed: seed, TimePerII: detBudget, Cache: c}
	}

	type answer struct {
		m   *rewire.Mapping
		res rewire.Result
	}
	got := make([]answer, len(reqs)*callersPerReq)
	var wg sync.WaitGroup
	for i, rq := range reqs {
		for j := 0; j < callersPerReq; j++ {
			wg.Add(1)
			go func(slot int, rq request) {
				defer wg.Done()
				// Fresh graph per caller: identity must come from content
				// fingerprints, never pointer equality.
				g := kernels.MustLoad(rq.kernel)
				m, res, _, err := rewire.MapCached(context.Background(), g, cgra, opts(rq.seed, cache))
				if err != nil {
					t.Errorf("%s seed %d: %v", rq.kernel, rq.seed, err)
					return
				}
				got[slot] = answer{m, res}
			}(i*callersPerReq+j, rq)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := cache.Stats()
	if st.Misses != int64(len(reqs)) {
		t.Errorf("compiles (misses) = %d, want exactly %d (one per unique fingerprint)",
			st.Misses, len(reqs))
	}
	wantServed := int64(len(reqs) * (callersPerReq - 1))
	if st.Hits+st.SingleflightShared != wantServed {
		t.Errorf("hits+shared = %d+%d, want %d callers served without compiling",
			st.Hits, st.SingleflightShared, wantServed)
	}

	for i, rq := range reqs {
		rq := rq
		t.Run(fmt.Sprintf("%s/seed%d", rq.kernel, rq.seed), func(t *testing.T) {
			// Cache-disabled baseline of the same request.
			g := kernels.MustLoad(rq.kernel)
			base, baseRes, err := rewire.Map(g, cgra, opts(rq.seed, nil))
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			for j := 0; j < callersPerReq; j++ {
				a := got[i*callersPerReq+j]
				if a.m == nil {
					t.Fatalf("caller %d got no mapping", j)
				}
				if a.res.II != baseRes.II || a.m.II != base.II {
					t.Fatalf("caller %d II = %d (res %d), baseline %d (res %d)",
						j, a.m.II, a.res.II, base.II, baseRes.II)
				}
				if !reflect.DeepEqual(a.m.Place, base.Place) {
					t.Fatalf("caller %d placements differ from cache-disabled run", j)
				}
				if !reflect.DeepEqual(a.m.Routes, base.Routes) {
					t.Fatalf("caller %d routes differ from cache-disabled run", j)
				}
				if !reflect.DeepEqual(a.m.BankPorts, base.BankPorts) {
					t.Fatalf("caller %d bank ports differ from cache-disabled run", j)
				}
			}
			// Near-identical request (different seed) must not collide
			// with any cached entry: same kernel, unseen seed, fresh cache
			// stats would be a miss. Checking via the key is cheap and
			// deterministic.
			k1 := rewire.CacheKey(g, cgra, opts(rq.seed, nil))
			k2 := rewire.CacheKey(g, cgra, opts(rq.seed+1000, nil))
			if k1 == k2 {
				t.Fatal("near-identical requests (seed +1000) share a fingerprint")
			}
		})
	}
}
