// Command qordiff compares two QoR ledger snapshots (rewire-ledger-v1
// JSONL files, or directories of them) per (kernel, arch, mapper)
// group and fails when the newer snapshot regresses:
//
//   - best II worse than the baseline by ANY amount — II is the paper's
//     primary quality metric and is deterministic per seed, so an
//     increase is a real mapping-quality regression, never noise, or
//   - a group that mapped successfully in the baseline and never
//     succeeds in the current snapshot (success lost), or
//   - success rate below the baseline's — flakiness introduced by a
//     change is a regression even when the best run still lands, or
//   - median compile time (non-cached runs only) worse than the
//     baseline by more than -time-threshold (default 50%, absorbing
//     machine noise; wall-clock is the only non-deterministic axis).
//
// Groups present in only one snapshot are reported but never fail the
// diff: coverage changes between runs are routine. Improvements are
// reported too.
//
// Usage:
//
//	qordiff [-time-threshold 0.5] BASELINE CURRENT
//
// where BASELINE and CURRENT are ledger files or directories. Exit
// status: 0 clean, 1 regression, 2 usage or parse error — benchdiff's
// convention, so CI gates the same way on both.
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/ledger"
)

// regression is one failed comparison.
type regression struct {
	Group  string // kernel@arch/mapper
	What   string
	Base   string
	Cur    string
	Detail string
}

func (r regression) String() string {
	s := fmt.Sprintf("%s: %s %s -> %s", r.Group, r.What, r.Base, r.Cur)
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

// diff compares the current snapshot's groups against the baseline's.
// Both Aggregate outputs are sorted by (kernel, arch, mapper), so the
// walk — and therefore every line of output — is deterministic.
func diff(base, cur []ledger.Group, timeThreshold float64) (regs []regression, notes []string) {
	key := func(g ledger.Group) string { return g.Kernel + "@" + g.Arch + "/" + g.Mapper }
	curBy := make(map[string]ledger.Group, len(cur))
	for _, g := range cur {
		curBy[key(g)] = g
	}
	seen := make(map[string]bool, len(base))
	for _, b := range base {
		k := key(b)
		seen[k] = true
		c, ok := curBy[k]
		if !ok {
			notes = append(notes, "only in baseline: "+k)
			continue
		}

		switch {
		case b.BestII > 0 && c.BestII == 0:
			regs = append(regs, regression{k, "success", "mapped", "never maps",
				fmt.Sprintf("baseline best II=%d", b.BestII)})
		case b.BestII > 0 && c.BestII > b.BestII:
			regs = append(regs, regression{k, "best II",
				fmt.Sprintf("%d", b.BestII), fmt.Sprintf("%d", c.BestII),
				fmt.Sprintf("MII=%d", c.MII)})
		case b.BestII > 0 && c.BestII < b.BestII:
			notes = append(notes, fmt.Sprintf("%-40s best II %d -> %d (improved)", k, b.BestII, c.BestII))
		case b.BestII == 0 && c.BestII > 0:
			notes = append(notes, fmt.Sprintf("%-40s now maps at II=%d (baseline never did)", k, c.BestII))
		}

		if br, cr := b.SuccessRate(), c.SuccessRate(); cr < br {
			regs = append(regs, regression{k, "success rate",
				fmt.Sprintf("%.0f%%", 100*br), fmt.Sprintf("%.0f%%", 100*cr),
				fmt.Sprintf("%d/%d -> %d/%d runs", b.Successes, b.Runs, c.Successes, c.Runs)})
		}

		bMS, cMS := ledger.Median(b.CompileMS), ledger.Median(c.CompileMS)
		if bMS > 0 && cMS > 0 {
			delta := (cMS - bMS) / bMS
			notes = append(notes, fmt.Sprintf("%-40s median compile %9.1fms -> %9.1fms  %+6.1f%%",
				k, bMS, cMS, 100*delta))
			if delta > timeThreshold {
				regs = append(regs, regression{k, "median compile ms",
					fmt.Sprintf("%.1f", bMS), fmt.Sprintf("%.1f", cMS),
					fmt.Sprintf("%+.1f%% > +%.0f%% threshold", 100*delta, 100*timeThreshold)})
			}
		}
	}
	for _, c := range cur {
		if !seen[key(c)] {
			notes = append(notes, "only in current: "+key(c))
		}
	}
	return regs, notes
}

func loadGroups(path string) ([]ledger.Group, error) {
	entries, err := ledger.ReadSnapshot(path)
	if err != nil {
		return nil, err
	}
	return ledger.Aggregate(entries), nil
}

func main() {
	timeThreshold := flag.Float64("time-threshold", 0.5,
		"median compile-time regression tolerance (0.5 = +50%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: qordiff [-time-threshold 0.5] BASELINE CURRENT  (ledger files or directories)")
		os.Exit(2)
	}
	base, err := loadGroups(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qordiff:", err)
		os.Exit(2)
	}
	cur, err := loadGroups(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "qordiff:", err)
		os.Exit(2)
	}

	regs, notes := diff(base, cur, *timeThreshold)
	fmt.Printf("baseline %s (%d groups) vs current %s (%d groups), compile threshold +%.0f%%\n\n",
		flag.Arg(0), len(base), flag.Arg(1), len(cur), *timeThreshold*100)
	for _, n := range notes {
		fmt.Println(n)
	}
	if len(regs) > 0 {
		fmt.Printf("\n%d QoR regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Println("  FAIL", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nno QoR regressions")
}
